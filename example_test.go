package flatnet_test

import (
	"fmt"
	"log"

	"flatnet"
)

// ExampleNewFlatFly builds the paper's 32-ary 2-flat.
func ExampleNewFlatFly() {
	ff, err := flatnet.NewFlatFly(32, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ff.Name(), "nodes:", ff.NumNodes, "routers:", ff.NumRouters, "radix:", ff.Radix)
	// Output: 32-ary 2-flat nodes: 1024 routers: 32 radix: 63
}

// ExampleConfigsForN reproduces Table 4: the flattened-butterfly
// configurations of a 4K-node network.
func ExampleConfigsForN() {
	for _, c := range flatnet.ConfigsForN(4096) {
		fmt.Printf("k=%d n=%d k'=%d n'=%d\n", c.K, c.N, c.KPrime, c.NPrime)
	}
	// Output:
	// k=64 n=2 k'=127 n'=1
	// k=16 n=3 k'=46 n'=2
	// k=8 n=4 k'=29 n'=3
	// k=4 n=6 k'=19 n'=5
	// k=2 n=12 k'=13 n'=11
}

// ExampleCompareCost prices the four topologies of the paper's Fig. 11 at
// 4K nodes.
func ExampleCompareCost() {
	c, err := flatnet.CompareCost(4096, flatnet.DefaultCostModel(), flatnet.DefaultPackaging())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flattened butterfly saves %.0f%% vs the folded Clos at N=4096\n", 100*c.SavingsVsClos())
	// Output: flattened butterfly saves 47% vs the folded Clos at N=4096
}

// ExampleFixedRadixConfig selects a configuration per §5.1.2.
func ExampleFixedRadixConfig() {
	nPrime, kPrime, maxNodes, err := flatnet.FixedRadixConfig(64, 65536)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("radix-64 routers reach %d nodes with n'=%d (k'=%d)\n", maxNodes, nPrime, kPrime)
	// Output: radix-64 routers reach 65536 nodes with n'=3 (k'=61)
}
