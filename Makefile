# Standard targets for the flatnet reproduction.

GO ?= go

.PHONY: all build vet fmtcheck test race check checksweep nocd-smoke bench benchall benchguard figs quickfigs fuzz clean

# Tier-1 flow: build, static checks, tests, then the race detector over
# the whole module — the sweep engine's worker pool must stay race-clean.
all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmtcheck fails if any file needs gofmt.
fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# checksweep drives a short sanitized grid end to end: all five
# flattened-butterfly algorithms on benign and adversarial traffic with
# the runtime invariant checker attached to every job.
checksweep:
	$(GO) run ./cmd/sweep -check -k 4 -n 2 -loads 0.2,0.6 \
		-warmup 200 -measure 200 -sat=false >/dev/null

check: build vet fmtcheck test race checksweep

# nocd-smoke builds the real nocd binary, launches it on an ephemeral
# port, drives open -> batch_estimate -> stats -> close through the
# nocsvc/client package, and asserts the estimates agree with a direct
# flatnet.Run of the same configuration.
nocd-smoke:
	$(GO) test -run 'TestNocd' -count=1 -v ./cmd/nocd/

# bench refreshes the committed hot-loop baselines (BENCH_baseline.json)
# after intentional performance changes; CI's bench-guard job holds
# BenchmarkSimulatorCycles and BenchmarkSimulatorCyclesParallel to them
# (<=10% slower, 0 allocs/op each).
bench:
	$(GO) run ./cmd/benchguard -update

# benchguard compares the hot loop against the committed baseline,
# exactly as CI does.
benchguard:
	$(GO) run ./cmd/benchguard

# benchall runs the full benchmark suite (paper figures + ablations).
benchall:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table and figure at full scale (tens of minutes
# sequentially; the worker pool and result cache cut re-runs down sharply).
figs:
	$(GO) run ./cmd/paperfigs -out results -cache results/simcache.jsonl

# Reduced-scale smoke regeneration (~1 minute).
quickfigs:
	$(GO) run ./cmd/paperfigs -quick -out results

fuzz:
	$(GO) test -fuzz=FuzzReadTrace -fuzztime=30s ./internal/sim/
	$(GO) test -fuzz=FuzzTraceReplay -fuzztime=30s ./internal/sim/
	$(GO) test -fuzz=FuzzInvariants -fuzztime=30s ./internal/sim/
	$(GO) test -fuzz=FuzzShardEquivalence -fuzztime=30s ./internal/sim/
	$(GO) test -fuzz=FuzzSnapshotRoundTrip -fuzztime=30s ./internal/sim/
	$(GO) test -fuzz=FuzzDecodeRequest -fuzztime=30s ./internal/nocsvc/
	$(GO) test -fuzz=FuzzSlimFlyGraph -fuzztime=30s ./internal/topo/

clean:
	$(GO) clean ./...
