# Standard targets for the flatnet reproduction.

GO ?= go

.PHONY: all build vet test race bench figs quickfigs fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table and figure at full scale (tens of minutes).
figs:
	$(GO) run ./cmd/paperfigs -out results

# Reduced-scale smoke regeneration (~1 minute).
quickfigs:
	$(GO) run ./cmd/paperfigs -quick -out results

fuzz:
	$(GO) test -fuzz=FuzzReadTrace -fuzztime=30s ./internal/sim/

clean:
	$(GO) clean ./...
