package flatnet

import "fmt"

// Option configures one flatnet.Run measurement. Options are applied in
// order; later options override earlier ones.
type Option func(*runOptions)

type runOptions struct {
	cfg      Config
	rc       RunConfig
	loadSet  bool
	check    *CheckConfig
	checkErr func() error
}

// WithLoad sets the offered load in flits per node per cycle (fraction
// of capacity for unit-capacity networks). Default 0.5.
func WithLoad(load float64) Option {
	return func(o *runOptions) { o.rc.Load = load; o.loadSet = true }
}

// WithPattern sets the traffic pattern, injected under the default
// Bernoulli arrival process. Default: uniform random over the
// topology's terminals.
func WithPattern(p Pattern) Option {
	return func(o *runOptions) { o.rc.Pattern = p }
}

// WithSource installs a full workload source — arrival process and
// destination process together (NewOnOffSource, BuildWorkload, or any
// Source implementation). It takes precedence over WithPattern and is
// mutually exclusive with WithBurst.
func WithSource(src Source) Option {
	return func(o *runOptions) { o.rc.Source = src }
}

// WithWarmup sets the warm-up window in cycles. Default 1000.
func WithWarmup(cycles int) Option {
	return func(o *runOptions) { o.rc.Warmup = cycles }
}

// WithMeasure sets the measurement window in cycles. Default 1000.
func WithMeasure(cycles int) Option {
	return func(o *runOptions) { o.rc.Measure = cycles }
}

// WithMaxCycles bounds the total simulation; a run whose labeled packets
// have not drained by then reports Saturated. Default: the RunLoadPoint
// default of 20x the warm-up plus measurement windows.
func WithMaxCycles(cycles int) Option {
	return func(o *runOptions) { o.rc.MaxCycles = cycles }
}

// WithConfig replaces the router microarchitecture configuration
// (buffering, switch speedup, packet size, seed). Default:
// DefaultConfig, the paper's §3.2 router.
func WithConfig(cfg Config) Option {
	return func(o *runOptions) { o.cfg = cfg }
}

// WithSeed sets the seed driving every random stream of the run,
// keeping the rest of the configuration.
func WithSeed(seed uint64) Option {
	return func(o *runOptions) { o.cfg.Seed = seed }
}

// WithWorkers partitions the run's cycle core across n worker
// goroutines (router shards exchanging flits at per-cycle barriers).
// Results are bit-identical at every worker count; n <= 1 selects the
// sequential scheduler. Runs with telemetry, tracing or checking
// attached always execute sequentially.
func WithWorkers(n int) Option {
	return func(o *runOptions) { o.rc.Workers = n }
}

// WithBurst switches injection from Bernoulli to the on/off bursty
// process: ON states inject at peak flits per node per cycle with mean
// duration avgBurst cycles, at the same long-run average load.
func WithBurst(peak, avgBurst float64) Option {
	return func(o *runOptions) { o.rc.Burst = &BurstConfig{Peak: peak, AvgBurst: avgBurst} }
}

// WithStop installs a cancellation hook, polled every few hundred
// cycles; returning true aborts the run with an error wrapping
// ErrStopped.
func WithStop(stop func() bool) Option {
	return func(o *runOptions) { o.rc.Stop = stop }
}

// WithCheck runs the whole simulation under the runtime invariant
// sanitizer (flit conservation, credit round trips, virtual-channel
// ownership, wholeness, progress). Any violation surfaces as an error
// from Run. Checking observes without perturbing: the measured results
// are bit-identical to an unchecked run.
func WithCheck(cfg CheckConfig) Option {
	return func(o *runOptions) { c := cfg; o.check = &c }
}

// WithTelemetry attaches router-pipeline probes (per-VC occupancy,
// credit-stall and allocator counters, windowed per-channel loads) to
// the run's network; read them back via WithObserve and Network.Probes.
func WithTelemetry(cfg ProbeConfig) Option {
	return func(o *runOptions) { c := cfg; o.rc.Probes = &c }
}

// WithTracer streams every flit pipeline event of the run into tr.
func WithTracer(tr *Tracer) Option {
	return func(o *runOptions) { o.rc.Tracer = tr }
}

// WithObserve installs an end-of-run inspection hook, called with the
// run's network after it completes (drained or saturated).
func WithObserve(f func(n *Network)) Option {
	return func(o *runOptions) { o.rc.Observe = f }
}

// Run measures one load point on a topology with a routing algorithm,
// using the paper's §3.2 warm-up/measure/drain methodology. With no
// options it simulates 50% uniform-random load on the default router
// configuration for 1000 warm-up and 1000 measured cycles:
//
//	ff, _ := flatnet.NewFlatFly(32, 2)
//	res, err := flatnet.Run(ff, flatnet.NewClosAD(ff),
//	    flatnet.WithLoad(0.8),
//	    flatnet.WithPattern(flatnet.NewWorstCase(ff.K, ff.NumRouters)),
//	    flatnet.WithCheck(flatnet.CheckConfig{}))
//
// Run is a convenience front end over RunLoadPoint; sweeps and batch
// experiments use LoadSweep and RunBatch directly.
func Run(t Topology, alg Algorithm, opts ...Option) (LoadPointResult, error) {
	if t == nil {
		return LoadPointResult{}, fmt.Errorf("flatnet: nil topology")
	}
	if alg == nil {
		return LoadPointResult{}, fmt.Errorf("flatnet: nil algorithm")
	}
	g := t.Graph()
	o := runOptions{cfg: DefaultConfig()}
	o.rc.Load = 0.5
	o.rc.Warmup = 1000
	o.rc.Measure = 1000
	for _, opt := range opts {
		opt(&o)
	}
	if o.rc.Pattern == nil && o.rc.Source == nil {
		o.rc.Pattern = NewUniform(g.NumNodes)
	}
	if o.check != nil {
		o.checkErr = ArmCheck(&o.rc, *o.check)
	}
	res, err := RunLoadPoint(g, alg, o.cfg, o.rc)
	if err != nil {
		return res, err
	}
	if o.checkErr != nil {
		if cerr := o.checkErr(); cerr != nil {
			return res, fmt.Errorf("flatnet: run completed but the sanitizer found violations: %w", cerr)
		}
	}
	return res, nil
}
