// Benchmarks: one per table and figure of the paper's evaluation. Each
// benchmark executes the corresponding experiment (at reduced "quick"
// scale for the simulation figures so iterations stay tractable) and
// reports the headline quantity of that figure via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as a regression harness for the
// reproduction. cmd/paperfigs runs the same experiments at paper scale.
package flatnet_test

import (
	"bytes"
	"testing"

	"flatnet"
	"flatnet/internal/experiments"
)

// BenchmarkFig02_Scalability evaluates the N(k', n') scaling relationship
// across the Fig. 2 design space.
func BenchmarkFig02_Scalability(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for kp := 4; kp <= 256; kp += 4 {
			for np := 1; np <= 4; np++ {
				sink += flatnet.NetworkSize(float64(kp), np)
			}
		}
	}
	b.ReportMetric(flatnet.NetworkSize(61, 3), "nodes_k61_n3")
	_ = sink
}

// BenchmarkFig04a_RoutingUR runs the five routing algorithms on uniform
// random traffic (quick scale) and reports CLOS AD's saturation
// throughput (paper: ~100% for all but VAL).
func BenchmarkFig04a_RoutingUR(b *testing.B) {
	var last []experiments.AlgSeries
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig4("UR", experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	reportAlg(b, last, "CLOS AD", "clos_ad_ur_sat")
	reportAlg(b, last, "VAL", "val_ur_sat")
}

// BenchmarkFig04b_RoutingWC runs the worst-case pattern and reports the
// minimal-vs-non-minimal gap (paper: ~1/k vs ~50%).
func BenchmarkFig04b_RoutingWC(b *testing.B) {
	var last []experiments.AlgSeries
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig4("WC", experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	reportAlg(b, last, "MIN AD", "min_ad_wc_sat")
	reportAlg(b, last, "CLOS AD", "clos_ad_wc_sat")
}

func reportAlg(b *testing.B, series []experiments.AlgSeries, name, metric string) {
	b.Helper()
	for _, s := range series {
		if s.Algorithm == name {
			b.ReportMetric(s.SaturationThroughput, metric)
			return
		}
	}
}

// BenchmarkFig05_DynamicResponse runs the batch experiments and reports
// greedy UGAL's and CLOS AD's normalized latency at the smallest batch
// (paper: UGAL much worse due to transient load imbalance).
func BenchmarkFig05_DynamicResponse(b *testing.B) {
	var last []experiments.BatchSeries
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig5(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	for _, s := range last {
		switch s.Algorithm {
		case "UGAL":
			b.ReportMetric(s.Points[0].NormalizedLatency, "ugal_small_batch")
		case "CLOS AD":
			b.ReportMetric(s.Points[0].NormalizedLatency, "clos_ad_small_batch")
		}
	}
}

// BenchmarkFig06a_TopoUR compares the four topologies on uniform traffic
// and reports the tapered folded Clos's ~50% cap.
func BenchmarkFig06a_TopoUR(b *testing.B) {
	var last []experiments.TopoSeries
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig6("UR", experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	for _, s := range last {
		if s.Algorithm == "adaptive sequential" {
			b.ReportMetric(s.SaturationThroughput, "clos_ur_sat")
		}
	}
}

// BenchmarkFig06b_TopoWC compares the four topologies on the worst-case
// pattern and reports the butterfly's collapse and the FB's 50%.
func BenchmarkFig06b_TopoWC(b *testing.B) {
	var last []experiments.TopoSeries
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig6("WC", experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	for _, s := range last {
		switch s.Algorithm {
		case "destination":
			b.ReportMetric(s.SaturationThroughput, "butterfly_wc_sat")
		case "CLOS AD":
			b.ReportMetric(s.SaturationThroughput, "flatfly_wc_sat")
		}
	}
}

// BenchmarkFig07_CableCost evaluates the cable cost curve.
func BenchmarkFig07_CableCost(b *testing.B) {
	m := flatnet.DefaultCostModel()
	var sink float64
	for i := 0; i < b.N; i++ {
		for l := 0.5; l <= 20; l += 0.25 {
			sink += m.CableCostPerSignal(l)
		}
	}
	b.ReportMetric(m.CableCostPerSignal(2), "usd_per_signal_2m")
	_ = sink
}

var costBenchSizes = []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

// BenchmarkFig10_LinkCostRatio runs the link-fraction / cable-length
// sweep of Fig. 10.
func BenchmarkFig10_LinkCostRatio(b *testing.B) {
	m, p := flatnet.DefaultCostModel(), flatnet.DefaultPackaging()
	var last []flatnet.CostComparison
	for i := 0; i < b.N; i++ {
		rows, err := flatnet.CostSweep(costBenchSizes, m, p)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	b.ReportMetric(last[len(last)-1].FlatFly.LinkFraction, "fb_link_fraction_64k")
}

// BenchmarkFig11_CostPerNode runs the Fig. 11 cost sweep and reports the
// flattened butterfly's savings versus the folded Clos at 4K (paper: ~53%).
func BenchmarkFig11_CostPerNode(b *testing.B) {
	m, p := flatnet.DefaultCostModel(), flatnet.DefaultPackaging()
	var at4k float64
	for i := 0; i < b.N; i++ {
		rows, err := flatnet.CostSweep(costBenchSizes, m, p)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.N == 4096 {
				at4k = r.SavingsVsClos()
			}
		}
	}
	b.ReportMetric(at4k, "fb_savings_vs_clos_4k")
}

// BenchmarkFig12a_FixedN_VAL runs the fixed-N dimensionality study under
// VAL (throughput flat at ~50%, latency rising with n').
func BenchmarkFig12a_FixedN_VAL(b *testing.B) {
	var last []experiments.ConfigSeries
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig12("VAL", 256, []float64{0.1, 0.3}, experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	b.ReportMetric(last[0].SaturationThroughput, "val_sat_nprime1")
	b.ReportMetric(last[len(last)-1].SaturationThroughput, "val_sat_max_nprime")
}

// BenchmarkFig12b_FixedN_MINAD runs the fixed-N study under MIN AD with
// 64 flits of storage per physical channel split across n' VCs.
func BenchmarkFig12b_FixedN_MINAD(b *testing.B) {
	var last []experiments.ConfigSeries
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig12("MIN AD", 256, []float64{0.2, 0.5}, experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	b.ReportMetric(last[0].SaturationThroughput, "minad_sat_nprime1")
	b.ReportMetric(last[len(last)-1].SaturationThroughput, "minad_sat_max_nprime")
}

// BenchmarkFig13_FixedNCost prices the Table 4 configurations of a 4K
// network (cost rising steeply with n').
func BenchmarkFig13_FixedNCost(b *testing.B) {
	m, p := flatnet.DefaultCostModel(), flatnet.DefaultPackaging()
	var first, last float64
	for i := 0; i < b.N; i++ {
		for _, c := range flatnet.ConfigsForN(4096) {
			bom := flatnet.FlatFlyBOMForConfig(4096, c.K, c.NPrime, p)
			br := flatnet.PriceBOM(bom, m, p)
			if c.NPrime == 1 {
				first = br.TotalPerNode
			}
			last = br.TotalPerNode
		}
	}
	b.ReportMetric(last/first, "cost_ratio_maxnprime_vs_1")
}

// BenchmarkFig14_Variants builds the extra-port variants and measures the
// doubled-channel worst-case throughput gain.
func BenchmarkFig14_Variants(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		base, err := flatnet.NewFlatFly(8, 2)
		if err != nil {
			b.Fatal(err)
		}
		wide, err := flatnet.NewFlatFly(8, 2, flatnet.WithMultiplicity(2))
		if err != nil {
			b.Fatal(err)
		}
		wc := flatnet.NewWorstCase(8, 8)
		a1, _ := flatnet.NewFlatFlyAlgorithm("min", base)
		a2, _ := flatnet.NewFlatFlyAlgorithm("min", wide)
		t1, err := flatnet.SaturationThroughput(base.Graph(), a1, flatnet.DefaultConfig(), wc, 300, 600)
		if err != nil {
			b.Fatal(err)
		}
		t2, err := flatnet.SaturationThroughput(wide.Graph(), a2, flatnet.DefaultConfig(), wc, 300, 600)
		if err != nil {
			b.Fatal(err)
		}
		gain = t2 / t1
	}
	b.ReportMetric(gain, "wc_throughput_gain_x2_channels")
}

// BenchmarkFig15_Power runs the Fig. 15 power sweep and reports the FB's
// savings versus the folded Clos at 4K (paper: ~48%).
func BenchmarkFig15_Power(b *testing.B) {
	m, p := flatnet.DefaultPowerModel(), flatnet.DefaultPackaging()
	var at4k float64
	for i := 0; i < b.N; i++ {
		rows, err := flatnet.PowerSweep(costBenchSizes, m, p)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.N == 4096 {
				at4k = r.SavingsVsClos()
			}
		}
	}
	b.ReportMetric(at4k, "fb_power_savings_vs_clos_4k")
}

// BenchmarkTable4_Configs enumerates the 4K configurations.
func BenchmarkTable4_Configs(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(flatnet.ConfigsForN(4096))
	}
	b.ReportMetric(float64(n), "configs")
}

// BenchmarkSimulatorCycles measures the simulator's raw cycle rate on the
// paper's 32-ary 2-flat under CLOS AD at 50% uniform load — a
// performance baseline for the engine itself rather than a paper figure.
// A warmup reaches steady state before the timer starts so the allocation
// figure reflects the hot path's zero-alloc contract (pools and calendar
// slots are grown during warmup, then recycled forever after).
func BenchmarkSimulatorCycles(b *testing.B) {
	ff, err := flatnet.NewFlatFly(32, 2)
	if err != nil {
		b.Fatal(err)
	}
	n, err := flatnet.NewNetwork(ff.Graph(), flatnet.NewClosAD(ff), flatnet.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	n.SetPattern(flatnet.NewUniform(ff.NumNodes))
	for i := 0; i < 2000; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
	}
	b.ReportMetric(float64(ff.NumNodes), "nodes")
}

// BenchmarkSimulatorCyclesParallel measures the sharded scheduler's cycle
// rate: the 64-ary 2-flat (4096 terminals) under CLOS AD at 50% uniform
// load, partitioned across 8 workers. The workload is bit-identical to a
// sequential run of the same network — only the wall clock differs — so
// the figure of merit is speedup over the single-worker rate on the same
// topology, with the steady state still allocation-free (the per-shard
// arenas and mailboxes are grown during warmup, then recycled).
func BenchmarkSimulatorCyclesParallel(b *testing.B) {
	ff, err := flatnet.NewFlatFly(64, 2)
	if err != nil {
		b.Fatal(err)
	}
	n, err := flatnet.NewNetwork(ff.Graph(), flatnet.NewClosAD(ff), flatnet.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	if err := n.SetWorkers(8); err != nil {
		b.Fatal(err)
	}
	n.SetPattern(flatnet.NewUniform(ff.NumNodes))
	// The 4096-terminal network needs a longer warmup than the 1024-node
	// baseline before every slice capacity (request queues, calendar
	// slots, mailboxes) reaches its high-water mark; 2000 cycles leaves
	// residual growth that shows up as ~1 alloc/op.
	for i := 0; i < 12000; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
	}
	b.ReportMetric(float64(ff.NumNodes), "nodes")
}

// BenchmarkSourceOverhead prices the workload-engine indirection: the
// exact BenchmarkSimulatorCycles workload driven through the Source
// interface (a Bernoulli-wrapped uniform pattern installed with
// SetSource, injected by Generate) instead of the direct
// GenerateBernoulli call. The interface dispatch must stay
// allocation-free in steady state and within noise of the direct path.
func BenchmarkSourceOverhead(b *testing.B) {
	ff, err := flatnet.NewFlatFly(32, 2)
	if err != nil {
		b.Fatal(err)
	}
	n, err := flatnet.NewNetwork(ff.Graph(), flatnet.NewClosAD(ff), flatnet.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := n.SetSource(flatnet.NewBernoulliSource(flatnet.NewUniform(ff.NumNodes))); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := n.Generate(0.5); err != nil {
			b.Fatal(err)
		}
		n.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Generate(0.5); err != nil {
			b.Fatal(err)
		}
		n.Step()
	}
	b.ReportMetric(float64(ff.NumNodes), "nodes")
}

// BenchmarkSnapshotRestore measures the checkpoint/restore round trip
// on the §3.2 network: one op serializes the warmed 1024-terminal
// 32-ary 2-flat (Network.Snapshot) and rebuilds an identical network
// from the bytes (Restore). This is the cost a warm-start sweep pays
// instead of re-running warm-up, so it must stay far below the warm-up
// it replaces. Restore materializes a whole network, so the op
// allocates by design — benchguard exempts it from the zero-alloc gate
// and holds ns/op only.
func BenchmarkSnapshotRestore(b *testing.B) {
	ff, err := flatnet.NewFlatFly(32, 2)
	if err != nil {
		b.Fatal(err)
	}
	alg := flatnet.NewClosAD(ff)
	n, err := flatnet.NewNetwork(ff.Graph(), alg, flatnet.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	n.SetPattern(flatnet.NewUniform(ff.NumNodes))
	for i := 0; i < 2000; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
	}
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	size := buf.Len()
	b.ReportAllocs()
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := n.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
		r, err := flatnet.Restore(bytes.NewReader(buf.Bytes()), ff.Graph(), alg, flatnet.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
	b.ReportMetric(float64(size), "snapshot_bytes")
}

// BenchmarkTelemetryOff is the zero-overhead-when-off guard: the exact
// BenchmarkSimulatorCycles workload on a network with no probes or
// tracer attached, exercising every telemetry nil-check in the pipeline.
// Compare against BenchmarkSimulatorCycles from the pre-telemetry seed;
// the two must stay within noise (~2%) of each other.
func BenchmarkTelemetryOff(b *testing.B) {
	ff, err := flatnet.NewFlatFly(32, 2)
	if err != nil {
		b.Fatal(err)
	}
	n, err := flatnet.NewNetwork(ff.Graph(), flatnet.NewClosAD(ff), flatnet.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	n.SetPattern(flatnet.NewUniform(ff.NumNodes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
	}
	b.ReportMetric(float64(ff.NumNodes), "nodes")
}

// BenchmarkTelemetryProbes measures the same workload with the probe
// registry attached at the default stride — the instrumented-on cost.
func BenchmarkTelemetryProbes(b *testing.B) {
	ff, err := flatnet.NewFlatFly(32, 2)
	if err != nil {
		b.Fatal(err)
	}
	n, err := flatnet.NewNetwork(ff.Graph(), flatnet.NewClosAD(ff), flatnet.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	n.SetPattern(flatnet.NewUniform(ff.NumNodes))
	p := n.AttachProbes(flatnet.ProbeConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
	}
	b.ReportMetric(float64(p.Samples), "probe_samples")
}

// BenchmarkChecksOff is the invariant sanitizer's zero-overhead-when-off
// guard: the exact BenchmarkSimulatorCycles workload with no sanitizer
// attached, exercising every check nil-test in the flit pipeline.
// Compare against BenchmarkSimulatorCycles; the two must stay within
// noise (~2%) of each other.
func BenchmarkChecksOff(b *testing.B) {
	ff, err := flatnet.NewFlatFly(32, 2)
	if err != nil {
		b.Fatal(err)
	}
	n, err := flatnet.NewNetwork(ff.Graph(), flatnet.NewClosAD(ff), flatnet.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	n.SetPattern(flatnet.NewUniform(ff.NumNodes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
	}
	b.ReportMetric(float64(ff.NumNodes), "nodes")
}

// BenchmarkChecksOn measures the same workload with the sanitizer
// attached — the price of a fully audited run.
func BenchmarkChecksOn(b *testing.B) {
	ff, err := flatnet.NewFlatFly(32, 2)
	if err != nil {
		b.Fatal(err)
	}
	n, err := flatnet.NewNetwork(ff.Graph(), flatnet.NewClosAD(ff), flatnet.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	n.SetPattern(flatnet.NewUniform(ff.NumNodes))
	s := flatnet.AttachChecker(n, flatnet.CheckConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
	}
	b.StopTimer()
	if len(s.Violations()) != 0 {
		b.Fatalf("sanitizer tripped during benchmark: %v", s.Err())
	}
}

// --- Ablation benchmarks: the design choices DESIGN.md calls out. ---

// BenchmarkAblation_GreedyVsSequential quantifies the sequential
// allocator's benefit (§3.1): the ratio of greedy UGAL to UGAL-S
// normalized latency on a small worst-case batch.
func BenchmarkAblation_GreedyVsSequential(b *testing.B) {
	ff, err := flatnet.NewFlatFly(16, 2)
	if err != nil {
		b.Fatal(err)
	}
	wc := flatnet.NewWorstCase(ff.K, ff.NumRouters)
	var ratio float64
	for i := 0; i < b.N; i++ {
		greedy, err := flatnet.RunBatch(ff.Graph(), flatnet.NewUGAL(ff), flatnet.DefaultConfig(),
			flatnet.BatchConfig{Pattern: wc, BatchSize: 2})
		if err != nil {
			b.Fatal(err)
		}
		seq, err := flatnet.RunBatch(ff.Graph(), flatnet.NewUGALS(ff), flatnet.DefaultConfig(),
			flatnet.BatchConfig{Pattern: wc, BatchSize: 2})
		if err != nil {
			b.Fatal(err)
		}
		ratio = greedy.NormalizedLatency / seq.NormalizedLatency
	}
	b.ReportMetric(ratio, "greedy_vs_sequential_latency_x")
}

// BenchmarkAblation_SwitchSpeedup quantifies the §3.2 "sufficient switch
// speedup" assumption: uniform-random saturation throughput with the
// crossbar limited to one grant per port per cycle versus unlimited.
func BenchmarkAblation_SwitchSpeedup(b *testing.B) {
	ff, err := flatnet.NewFlatFly(16, 2)
	if err != nil {
		b.Fatal(err)
	}
	ur := flatnet.NewUniform(ff.NumNodes)
	alg := flatnet.NewMinAD(ff)
	var limited, unlimited float64
	for i := 0; i < b.N; i++ {
		cfg := flatnet.DefaultConfig()
		cfg.Speedup = 1
		var err error
		limited, err = flatnet.SaturationThroughput(ff.Graph(), alg, cfg, ur, 400, 800)
		if err != nil {
			b.Fatal(err)
		}
		unlimited, err = flatnet.SaturationThroughput(ff.Graph(), alg, flatnet.DefaultConfig(), ur, 400, 800)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(limited, "sat_speedup1")
	b.ReportMetric(unlimited, "sat_unlimited")
}

// BenchmarkAblation_BufferDepth quantifies the effect of per-port
// buffering on adversarial throughput (the knob behind Fig 12(b)).
func BenchmarkAblation_BufferDepth(b *testing.B) {
	ff, err := flatnet.NewFlatFly(16, 2)
	if err != nil {
		b.Fatal(err)
	}
	wc := flatnet.NewWorstCase(ff.K, ff.NumRouters)
	var shallow, deep float64
	for i := 0; i < b.N; i++ {
		cfg := flatnet.DefaultConfig()
		cfg.BufPerPort = 8
		var err error
		shallow, err = flatnet.SaturationThroughput(ff.Graph(), flatnet.NewClosAD(ff), cfg, wc, 400, 800)
		if err != nil {
			b.Fatal(err)
		}
		deep, err = flatnet.SaturationThroughput(ff.Graph(), flatnet.NewClosAD(ff), flatnet.DefaultConfig(), wc, 400, 800)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(shallow, "sat_buf8")
	b.ReportMetric(deep, "sat_buf32")
}

// BenchmarkAblation_PacketSize quantifies the §3.2 note-2 claim at the
// benchmark level: worst-case saturation throughput of CLOS AD at packet
// sizes 1 and 4.
func BenchmarkAblation_PacketSize(b *testing.B) {
	ff, err := flatnet.NewFlatFly(16, 2)
	if err != nil {
		b.Fatal(err)
	}
	wc := flatnet.NewWorstCase(ff.K, ff.NumRouters)
	var s1, s4 float64
	for i := 0; i < b.N; i++ {
		var err error
		s1, err = flatnet.SaturationThroughput(ff.Graph(), flatnet.NewClosAD(ff), flatnet.DefaultConfig(), wc, 400, 800)
		if err != nil {
			b.Fatal(err)
		}
		cfg := flatnet.DefaultConfig()
		cfg.PacketSize = 4
		s4, err = flatnet.SaturationThroughput(ff.Graph(), flatnet.NewClosAD(ff), cfg, wc, 400, 800)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s1, "sat_size1")
	b.ReportMetric(s4, "sat_size4")
}
