// Command nocd serves NoC latency estimates as a service: the nocsvc
// newline-delimited JSON protocol (open_session / estimate /
// batch_estimate / checkpoint_session / clone_session / stats /
// close_session) answered from live, warmed
// flatnet simulations. An execution-driven host simulator opens a
// session describing topology, routing and background load, then asks
// for congestion-aware transfer latencies the way uPIMulator consults
// BookSim2.
//
// Usage:
//
//	nocd [-stdio] [-listen addr] [-max-sessions 64] [-max-inflight 64] \
//	     [-idle-timeout 5m] [-open-wait 0] [-budget 65536] \
//	     [-max-nodes 4096] [-telemetry addr]
//
// With -listen, nocd is a shared daemon: any number of TCP clients
// multiplex sessions over it. With -stdio (the default when -listen is
// absent), nocd is a child process speaking the protocol over
// stdin/stdout, one host simulator per daemon. Both modes may run at
// once. -telemetry serves /debug/vars and /debug/pprof with live
// service counters (sessions, queue depths, service-latency quantiles).
//
// SIGINT or SIGTERM shuts down gracefully — listeners stop, sessions
// drain and close; a second signal forces immediate exit with status
// 130.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flatnet/internal/nocsvc"
	"flatnet/internal/telemetry"
)

func main() {
	var (
		stdio       = flag.Bool("stdio", false, "serve the protocol over stdin/stdout (default when -listen is absent)")
		listen      = flag.String("listen", "", "serve the protocol on this TCP address (e.g. 127.0.0.1:9920, or :0 for an OS-assigned port)")
		maxSessions = flag.Int("max-sessions", 64, "session cap; opens past it are rejected (or queued, see -open-wait)")
		maxInflight = flag.Int("max-inflight", 64, "per-session inflight request queue bound")
		idleTimeout = flag.Duration("idle-timeout", 5*time.Minute, "evict sessions idle this long (<0 disables)")
		openWait    = flag.Duration("open-wait", 0, "how long an open may wait for a session slot at the cap before rejecting")
		budget      = flag.Int("budget", 1<<16, "per-estimate cycle budget before reporting saturation")
		maxNodes    = flag.Int("max-nodes", 4096, "reject session topologies with more terminals than this (<0 disables)")
		workers     = flag.Int("workers", 1, "default cycle-core worker goroutines per session (opens may override; estimates are bit-identical at any count)")
		maxCkpts    = flag.Int("max-checkpoints", 16, "server-side session checkpoint store cap (oldest evicted first)")
		telemAddr   = flag.String("telemetry", "", "serve live metrics (/debug/vars, /debug/pprof) on this address")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "nocd: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *listen == "" {
		*stdio = true
	}

	srv := nocsvc.NewServer(nocsvc.ServerConfig{
		MaxSessions:    *maxSessions,
		MaxInflight:    *maxInflight,
		IdleTimeout:    *idleTimeout,
		OpenWait:       *openWait,
		EstimateBudget: *budget,
		MaxNodes:       *maxNodes,
		DefaultWorkers: *workers,
		MaxCheckpoints: *maxCkpts,
	})

	if *telemAddr != "" {
		reg := telemetry.NewRegistry()
		srv.Register(reg)
		if err := reg.Publish("nocd"); err != nil {
			fmt.Fprintln(os.Stderr, "nocd:", err)
			os.Exit(1)
		}
		ts, err := telemetry.Serve(*telemAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocd:", err)
			os.Exit(1)
		}
		defer ts.Close()
		fmt.Fprintf(os.Stderr, "nocd: serving metrics on http://%s/debug/vars\n", ts.Addr())
	}

	// done carries each serving mode's exit; the process ends when every
	// active mode has.
	modes := 0
	done := make(chan error)

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocd:", err)
			os.Exit(1)
		}
		// The bound address line is machine-readable on purpose: harness
		// scripts pass -listen 127.0.0.1:0 and scrape the port.
		fmt.Fprintf(os.Stderr, "nocd: listening on %s\n", ln.Addr())
		modes++
		go func() { done <- srv.Serve(ln) }()
	}
	if *stdio {
		modes++
		go func() {
			err := srv.ServeConn(stdioConn{})
			done <- err
		}()
	}

	// First SIGINT/SIGTERM: graceful shutdown. Second: forced exit 130.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "nocd: shutting down (signal again to force)")
		go func() {
			<-sigs
			fmt.Fprintln(os.Stderr, "nocd: forced exit")
			os.Exit(130)
		}()
		srv.Close()
	}()

	code := 0
	for i := 0; i < modes; i++ {
		if err := <-done; err != nil && !isClosedErr(err) {
			fmt.Fprintln(os.Stderr, "nocd:", err)
			code = 1
		}
	}
	srv.Close()
	os.Exit(code)
}

// stdioConn adapts the process's stdin/stdout into the single
// io.ReadWriter ServeConn wants.
type stdioConn struct{}

func (stdioConn) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (stdioConn) Write(p []byte) (int, error) { return os.Stdout.Write(p) }

// isClosedErr reports errors that just mean "shutdown won the race":
// reads off a stdin or socket that Close tore down.
func isClosedErr(err error) bool {
	if err == nil || errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrClosed) {
		return true
	}
	return strings.Contains(err.Error(), "use of closed network connection") ||
		strings.Contains(err.Error(), "file already closed")
}
