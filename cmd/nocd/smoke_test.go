package main

import (
	"bufio"
	"io"
	"math"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"flatnet"
	"flatnet/nocsvc/client"
)

// buildNocd compiles the real binary into the test's temp dir.
func buildNocd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nocd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestNocdSmoke is the end-to-end exercise behind `make nocd-smoke`: it
// launches the daemon on an ephemeral TCP port, drives
// open -> batch_estimate -> stats -> close through the client package,
// checks the estimates against a direct flatnet.Run of the same
// configuration, and shuts the daemon down with SIGINT expecting a
// clean exit.
func TestNocdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the real binary")
	}
	bin := buildNocd(t)

	cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-max-sessions", "8")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // no-op after the clean Wait below

	// The daemon announces its bound address on stderr.
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never announced its address: %v", sc.Err())
	}
	go io.Copy(io.Discard, stderr) //nolint:errcheck // drain shutdown chatter

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const k, n, load = 4, 2, 0.05
	sess, err := c.OpenSession(client.OpenParams{
		Topology: "flatfly", K: k, N: n, Routing: "min", Load: load,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := sess.Info().Nodes

	// A spread of uniform single-flit transfers through the service...
	var items []client.EstimateParams
	for i := 0; len(items) < 512; i++ {
		src := (i * 5) % nodes
		dst := (i*11 + 3) % nodes
		if src == dst {
			continue
		}
		items = append(items, client.EstimateParams{Src: src, Dst: dst, Bytes: 8})
	}
	results, err := sess.BatchEstimate(items)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, r := range results {
		if r.Saturated || r.Cycles <= 0 {
			t.Fatalf("item %d: unusable estimate %+v", i, r)
		}
		sum += float64(r.Cycles)
	}
	svcAvg := sum / float64(len(results))

	// ...must agree with a direct library run of the same network at the
	// same load. Both average uniform single-flit latencies far from
	// saturation, so they match to within a couple of cycles.
	ff, err := flatnet.NewFlatFly(k, n)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := flatnet.Run(ff, flatnet.NewMinAD(ff), flatnet.WithLoad(load))
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(svcAvg - direct.AvgLatency); diff > 2.0 {
		t.Fatalf("service avg %.2f vs direct flatnet.Run %.2f: |diff| %.2f > 2 cycles",
			svcAvg, direct.AvgLatency, diff)
	}

	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.Estimates != int64(len(items)) {
		t.Fatalf("server counted %d estimates, want %d", st.Server.Estimates, len(items))
	}
	if st.Session == nil || st.Session.Estimates != int64(len(items)) {
		t.Fatalf("session detail missing or wrong: %+v", st.Session)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// SIGINT: the daemon closes sessions and exits zero.
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("daemon exited nonzero after SIGINT: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGINT")
	}
}

// stdioPipe adapts a child process's stdout/stdin into one ReadWriter
// for the client.
type stdioPipe struct {
	io.Reader
	io.Writer
}

// TestNocdStdioMode drives the child-process mode: protocol over
// stdin/stdout, clean exit on EOF.
func TestNocdStdioMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the real binary")
	}
	bin := buildNocd(t)
	cmd := exec.Command(bin, "-stdio")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck

	c := client.NewClient(stdioPipe{Reader: stdout, Writer: stdin})
	sess, err := c.OpenSession(client.OpenParams{Topology: "flatfly", K: 2, N: 2, Warmup: -1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Estimate(0, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatalf("stdio estimate: %+v", res)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	// EOF on stdin ends the child cleanly.
	stdin.Close()
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("stdio daemon exited nonzero on EOF: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stdio daemon did not exit on EOF")
	}
}
