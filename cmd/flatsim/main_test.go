package main

import (
	"os"
	"path/filepath"
	"testing"

	"flatnet"
)

// opts returns a baseline runOpts the tests tweak per case.
func opts() runOpts {
	return runOpts{
		topo: "ff", k: 8, n: 2, dims: 6, taper: 2,
		alg: "clos", pattern: "uniform",
		load: 0.2, warmup: 200, measure: 200, seed: 1, buf: 32,
		traceCap: 1 << 14,
	}
}

func TestRunOpenLoop(t *testing.T) {
	for _, topo := range []string{"ff", "butterfly", "clos", "hypercube"} {
		o := opts()
		o.topo = topo
		if err := run(o); err != nil {
			t.Errorf("%s: %v", topo, err)
		}
	}
}

func TestRunSweepAndBatch(t *testing.T) {
	o := opts()
	o.k, o.alg, o.pattern, o.load = 4, "ugal-s", "worstcase", 0
	o.sweep = true
	o.warmup, o.measure = 100, 100
	if err := run(o); err != nil {
		t.Errorf("sweep: %v", err)
	}
	o = opts()
	o.k, o.alg, o.pattern, o.load = 4, "clos", "worstcase", 0
	o.batch = 4
	o.warmup, o.measure = 100, 100
	if err := run(o); err != nil {
		t.Errorf("batch: %v", err)
	}
}

func TestRunPatterns(t *testing.T) {
	for _, p := range []string{"uniform", "worstcase", "bitcomp", "tornado"} {
		o := opts()
		o.k, o.alg, o.pattern, o.load = 4, "min", p, 0.1
		o.warmup, o.measure = 100, 100
		if err := run(o); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	o := opts()
	o.topo = "bogus"
	if err := run(o); err == nil {
		t.Error("unknown topology accepted")
	}
	o = opts()
	o.alg = "bogus"
	if err := run(o); err == nil {
		t.Error("unknown algorithm accepted")
	}
	o = opts()
	o.pattern = "bogus"
	if err := run(o); err == nil {
		t.Error("unknown pattern accepted")
	}
	o = opts()
	o.topo, o.taper = "clos", 0
	if err := run(o); err == nil {
		t.Error("zero taper accepted")
	}
}

func TestRunCheckpointRestore(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "warm.snap")
	o := opts()
	o.k, o.warmup, o.measure = 4, 100, 100
	o.checkpoint = snap
	if err := run(o); err != nil {
		t.Fatalf("checkpoint run: %v", err)
	}
	if fi, err := os.Stat(snap); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint file: %v (size %v)", err, fi)
	}
	o = opts()
	o.k, o.warmup, o.measure = 4, 100, 100
	o.restore = snap
	if err := run(o); err != nil {
		t.Fatalf("restore run: %v", err)
	}
	// Restoring with mismatched build flags must fail, not misreport.
	o.seed = 99
	if err := run(o); err == nil {
		t.Fatal("restore with a mismatched seed accepted")
	}

	o = opts()
	o.checkpoint, o.sweep = snap, true
	if err := run(o); err == nil {
		t.Fatal("-checkpoint with -sweep accepted")
	}
	o = opts()
	o.restore, o.check = snap, true
	if err := run(o); err == nil {
		t.Fatal("-restore with -check accepted")
	}
}

func TestRunTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	if err := os.WriteFile(path, []byte("# test\n0 0 15\n1 3 8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := opts()
	o.k, o.load = 4, 0
	o.warmup, o.measure = 100, 100
	o.trace = path
	if err := run(o); err != nil {
		t.Errorf("trace replay: %v", err)
	}
	o.trace = filepath.Join(dir, "missing")
	if err := run(o); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestRunWorkloads(t *testing.T) {
	// Every registry name (and the sweep aliases) is accepted.
	for _, p := range []string{"hotspot", "incast", "shuffle", "transpose", "randperm", "HS", "UR"} {
		o := opts()
		o.k, o.alg, o.pattern, o.load = 4, "min", p, 0.1
		o.warmup, o.measure = 100, 100
		if err := run(o); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
	o := opts()
	o.k, o.alg, o.pattern, o.load = 4, "min", "hotspot", 0.1
	o.hot, o.hotfrac = "1,3", 0.3
	o.warmup, o.measure = 100, 100
	if err := run(o); err != nil {
		t.Errorf("parameterized hotspot: %v", err)
	}
	o.hot = "1,x"
	if err := run(o); err == nil {
		t.Error("malformed -hot accepted")
	}
	o = opts()
	o.k, o.load = 4, 0.2
	o.burstPeak, o.burstLen = 0.8, 12
	o.warmup, o.measure = 100, 100
	if err := run(o); err != nil {
		t.Errorf("bursty point: %v", err)
	}
	o.load = 0.9 // exceeds the on/off peak rate
	if err := run(o); err == nil {
		t.Error("load above -burst-peak accepted")
	}
	if err := run(runOpts{pattern: "help"}); err != nil {
		t.Errorf("-pattern help: %v", err)
	}
}

func TestRunCollectives(t *testing.T) {
	o := opts()
	o.k, o.alg = 4, "min"
	o.collective, o.chunk = "alltoall", 2
	if err := run(o); err != nil {
		t.Errorf("quiet alltoall: %v", err)
	}
	o = opts()
	o.k, o.alg = 4, "min"
	o.collective = "allreduce"
	o.load, o.loadSet = 0.2, true
	o.warmup = 100
	o.check = true
	if err := run(o); err != nil {
		t.Errorf("loaded allreduce: %v", err)
	}
	o.collective = "bogus"
	if err := run(o); err == nil {
		t.Error("unknown collective accepted")
	}
}

func TestRunWorkloadTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wl.jsonl")
	o := opts()
	o.k, o.load = 4, 0.2
	o.warmup, o.measure = 100, 100
	o.traceOut = path
	if err := run(o); err != nil {
		t.Fatalf("record: %v", err)
	}
	o = opts()
	o.k = 4
	o.traceIn = path
	o.workers = 4
	if err := run(o); err != nil {
		t.Fatalf("replay: %v", err)
	}
	o.traceIn = filepath.Join(dir, "missing.jsonl")
	if err := run(o); err == nil {
		t.Error("missing -trace-in accepted")
	}
	o.traceIn, o.sweep = path, true
	if err := run(o); err == nil {
		t.Error("-trace-in with -sweep accepted")
	}
}

func TestRunClosedLoop(t *testing.T) {
	o := opts()
	o.k, o.load = 4, 0
	o.window = 2
	o.warmup, o.measure = 200, 400
	if err := run(o); err != nil {
		t.Errorf("closed loop: %v", err)
	}
}

// TestRunFlitTrace exercises the -flittrace path in both formats and
// checks the Chrome export round-trips.
func TestRunFlitTrace(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"t.json", "t.jsonl"} {
		path := filepath.Join(dir, name)
		o := opts()
		o.k, o.load = 4, 0.1
		o.warmup, o.measure = 100, 100
		o.flitTrace = path
		if err := run(o); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		var events []flatnet.FlitEvent
		if filepath.Ext(path) == ".jsonl" {
			events, err = flatnet.ReadTraceJSONL(f)
		} else {
			events, err = flatnet.ReadChromeTrace(f)
		}
		f.Close()
		if err != nil {
			t.Fatalf("%s: read back: %v", name, err)
		}
		if len(events) == 0 {
			t.Errorf("%s: empty flit trace", name)
		}
	}
}

// TestRunListen checks the metrics endpoint wiring does not break a run
// (the endpoint itself is covered in internal/telemetry).
func TestRunListen(t *testing.T) {
	o := opts()
	o.k = 4
	o.warmup, o.measure = 100, 100
	o.listen = "127.0.0.1:0"
	if err := run(o); err != nil {
		t.Errorf("listen: %v", err)
	}
	// A second run must tolerate the expvar name already being published.
	if err := run(o); err != nil {
		t.Errorf("listen (second run): %v", err)
	}
}
