package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunOpenLoop(t *testing.T) {
	for _, topo := range []string{"ff", "butterfly", "clos", "hypercube"} {
		if err := run(topo, 8, 2, 6, 2, "clos", "uniform", "",
			0.2, false, 0, 0, 200, 200, 1, 32); err != nil {
			t.Errorf("%s: %v", topo, err)
		}
	}
}

func TestRunSweepAndBatch(t *testing.T) {
	if err := run("ff", 4, 2, 6, 2, "ugal-s", "worstcase", "",
		0, true, 0, 0, 100, 100, 1, 32); err != nil {
		t.Errorf("sweep: %v", err)
	}
	if err := run("ff", 4, 2, 6, 2, "clos", "worstcase", "",
		0, false, 4, 0, 100, 100, 1, 32); err != nil {
		t.Errorf("batch: %v", err)
	}
}

func TestRunPatterns(t *testing.T) {
	for _, p := range []string{"uniform", "worstcase", "bitcomp", "tornado"} {
		if err := run("ff", 4, 2, 6, 2, "min", p, "", 0.1, false, 0, 0, 100, 100, 1, 32); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 8, 2, 6, 2, "clos", "uniform", "", 0.2, false, 0, 0, 100, 100, 1, 32); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run("ff", 8, 2, 6, 2, "bogus", "uniform", "", 0.2, false, 0, 0, 100, 100, 1, 32); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run("ff", 8, 2, 6, 2, "clos", "bogus", "", 0.2, false, 0, 0, 100, 100, 1, 32); err == nil {
		t.Error("unknown pattern accepted")
	}
	if err := run("clos", 8, 2, 6, 0, "clos", "uniform", "", 0.2, false, 0, 0, 100, 100, 1, 32); err == nil {
		t.Error("zero taper accepted")
	}
}

func TestRunTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	if err := os.WriteFile(path, []byte("# test\n0 0 15\n1 3 8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("ff", 4, 2, 6, 2, "clos", "uniform", path, 0, false, 0, 0, 100, 100, 1, 32); err != nil {
		t.Errorf("trace replay: %v", err)
	}
	if err := run("ff", 4, 2, 6, 2, "clos", "uniform", filepath.Join(dir, "missing"), 0, false, 0, 0, 100, 100, 1, 32); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestRunClosedLoop(t *testing.T) {
	if err := run("ff", 4, 2, 6, 2, "clos", "uniform", "",
		0, false, 0, 2, 200, 400, 1, 32); err != nil {
		t.Errorf("closed loop: %v", err)
	}
}
