// Command flatsim runs one cycle-accurate simulation: a topology, a
// routing algorithm, a traffic pattern and an offered load (or a load
// sweep), printing latency and throughput.
//
// Examples:
//
//	flatsim -topo ff -k 32 -n 2 -alg clos -pattern worstcase -load 0.45
//	flatsim -topo ff -k 16 -n 2 -alg ugal -pattern uniform -sweep
//	flatsim -topo hypercube -dims 10 -pattern uniform -load 0.8
//	flatsim -topo clos -k 32 -taper 2 -pattern worstcase -load 0.4
//	flatsim -topo butterfly -k 32 -n 2 -pattern uniform -load 0.9
//	flatsim -topo ff -k 32 -n 2 -alg ugal-s -pattern worstcase -batch 16
//	flatsim -topo ff -k 32 -n 2 -alg clos -window 4            # request-reply
//	flatsim -topo ff -k 16 -n 2 -pattern uniform -burst-peak 0.9 -burst-len 24 -load 0.3
//	flatsim -topo ff -k 16 -n 2 -pattern hotspot -hot 0,5 -hotfrac 0.2 -load 0.3
//	flatsim -topo ff -k 8 -n 2 -alg ugal -collective allreduce -chunk 4
//	flatsim -topo ff -k 16 -n 2 -trace run.trace               # replay a trace
//	flatsim -topo ff -k 8 -n 2 -load 0.4 -trace-out wl.jsonl   # record a workload
//	flatsim -topo ff -k 8 -n 2 -trace-in wl.jsonl -workers 4   # replay it
//	flatsim -pattern help                                      # list the registry
//	flatsim -topo ff -k 8 -n 2 -load 0.4 -flittrace run.json   # flit trace
//	flatsim -topo ff -k 16 -n 2 -sweep -listen localhost:6060  # live metrics
//	flatsim -topo sf -q 5 -alg ugal -pattern uniform -load 0.5 # Slim Fly
//	flatsim -topo df -gh 4 -alg min -pattern worstcase -load 0.1
//	flatsim -topo sf -q 43 -analytic                           # 122k nodes, no simulation
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"flatnet"
	"flatnet/internal/sim"
)

func main() {
	var o runOpts
	flag.StringVar(&o.topo, "topo", "ff", "topology: ff | butterfly | clos | hypercube | sf | df")
	flag.IntVar(&o.k, "k", 32, "ary (terminals per router for ff/clos groups)")
	flag.IntVar(&o.n, "n", 2, "stages (ff/butterfly: network has k^n nodes)")
	flag.IntVar(&o.dims, "dims", 10, "hypercube dimensions")
	flag.IntVar(&o.taper, "taper", 2, "folded-Clos taper (terminals/uplinks ratio)")
	flag.IntVar(&o.q, "q", 5, "Slim Fly field size (odd prime power)")
	flag.IntVar(&o.gh, "gh", 2, "dragonfly global channels per router")
	flag.IntVar(&o.ga, "ga", 0, "dragonfly routers per group (0 = balanced 2h)")
	flag.IntVar(&o.conc, "p", 0, "sf/df terminals per router (0 = balanced default)")
	flag.StringVar(&o.alg, "alg", "clos", "ff algorithm: min | val | ugal | ugal-s | clos (sf/df: min | val | ugal | ugal-s)")
	flag.StringVar(&o.pattern, "pattern", "uniform", "traffic pattern from the registry ('help' lists every name and alias)")
	flag.StringVar(&o.hot, "hot", "", "comma-separated hot terminals for the hotspot pattern / incast sink (default 0)")
	flag.Float64Var(&o.hotfrac, "hotfrac", 0, "fraction of hotspot traffic directed at the hot set (0 = default 0.1)")
	flag.Float64Var(&o.burstPeak, "burst-peak", 0, "bursty on/off arrivals: peak injection rate while ON (0 = Bernoulli)")
	flag.Float64Var(&o.burstLen, "burst-len", 16, "mean burst length in cycles for -burst-peak")
	flag.Float64Var(&o.load, "load", 0.5, "offered load (fraction of capacity)")
	flag.BoolVar(&o.sweep, "sweep", false, "sweep loads 0.1..0.95 instead of one point")
	flag.IntVar(&o.batch, "batch", 0, "run a batch experiment of this size instead of open-loop")
	flag.StringVar(&o.collective, "collective", "", "run a collective schedule to completion: alltoall | allreduce (-load adds background traffic)")
	flag.IntVar(&o.chunk, "chunk", 1, "packets per transfer for -collective")
	flag.StringVar(&o.trace, "trace", "", "replay a text trace file (cycle src dst per line) instead of synthetic traffic")
	flag.StringVar(&o.traceIn, "trace-in", "", "replay a JSONL workload trace (one {\"cycle\",\"src\",\"dst\",\"size\"} object per line), streamed with bounded memory")
	flag.StringVar(&o.traceOut, "trace-out", "", "record the run's injections to this JSONL workload trace (single -load runs)")
	flag.IntVar(&o.window, "window", 0, "run a closed-loop request-reply workload with this many outstanding requests per node")
	flag.IntVar(&o.warmup, "warmup", 1000, "warm-up cycles")
	flag.IntVar(&o.measure, "measure", 1000, "measurement cycles")
	flag.Uint64Var(&o.seed, "seed", 1, "simulation seed")
	flag.IntVar(&o.buf, "buf", 32, "flit buffers per port")
	flag.StringVar(&o.listen, "listen", "", "serve live metrics (/debug/vars, /debug/pprof) on this address during the run")
	flag.StringVar(&o.flitTrace, "flittrace", "", "write a flit event trace of an open-loop run to this file (.jsonl for JSON lines, anything else for Chrome trace JSON)")
	flag.IntVar(&o.traceCap, "tracecap", 1<<16, "flit tracer ring capacity in events (oldest evicted when full)")
	flag.BoolVar(&o.analytic, "analytic", false, "evaluate the topology graph-analytically (diameter, avg hops, path diversity, bisection bounds) instead of simulating")
	flag.BoolVar(&o.check, "check", false, "run under the runtime invariant sanitizer (open-loop -load/-sweep/-batch runs)")
	flag.IntVar(&o.workers, "workers", 1, "cycle-core worker goroutines (results are bit-identical at any count; >1 disables probe reporting)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "write a snapshot of the warmed network to this file when the measurement window opens (single -load runs; disables probe reporting)")
	flag.StringVar(&o.restore, "restore", "", "restore the network from a -checkpoint snapshot instead of warming up (single -load runs; pass the same topology/-seed/-buf/-warmup as the checkpointing run)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "load" {
			o.loadSet = true
		}
	})

	// First SIGINT/SIGTERM asks the run to stop at the next poll (the
	// runner returns an error wrapping sim.ErrStopped); a second signal
	// forces immediate exit.
	var interrupted atomic.Bool
	o.stop = interrupted.Load
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		interrupted.Store(true)
		fmt.Fprintln(os.Stderr, "flatsim: interrupted, stopping (signal again to force)")
		<-sigs
		fmt.Fprintln(os.Stderr, "flatsim: forced exit")
		os.Exit(130)
	}()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "flatsim:", err)
		os.Exit(1)
	}
}

// runOpts collects every flag; run is pure in it, which is what the
// tests drive.
type runOpts struct {
	topo       string
	k, n       int
	dims       int
	taper      int
	q          int
	gh, ga     int
	conc       int
	analytic   bool
	alg        string
	pattern    string
	hot        string
	hotfrac    float64
	burstPeak  float64
	burstLen   float64
	trace      string
	traceIn    string
	traceOut   string
	collective string
	chunk      int
	load       float64
	loadSet    bool
	sweep      bool
	batch      int
	window     int
	warmup     int
	measure    int
	seed       uint64
	buf        int
	listen     string
	flitTrace  string
	traceCap   int
	check      bool
	workers    int
	checkpoint string
	restore    string
	stop       func() bool // polled cancellation hook (nil = never stop)
}

// telemetryReg is process-global: the expvar namespace is write-once,
// so every run in the process shares one registry.
var telemetryReg = flatnet.NewTelemetryRegistry()

func run(o runOpts) error {
	if o.pattern == "help" || o.pattern == "list" {
		byName := map[string]string{}
		for a, name := range flatnet.PatternAliases() {
			byName[name] = a
		}
		fmt.Println("patterns (every name builds from the topology and seed alone):")
		for _, name := range flatnet.PatternNames() {
			if a, ok := byName[name]; ok {
				fmt.Printf("  %-10s (alias %s)\n", name, a)
			} else {
				fmt.Printf("  %s\n", name)
			}
		}
		return nil
	}
	if o.listen != "" {
		telemetryReg.Gauge("sim_live", func() any { return sim.Live.Snapshot() })
		if err := telemetryReg.Publish("flatnet"); err != nil {
			return err
		}
		srv, err := flatnet.ServeTelemetry(o.listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "flatsim: serving metrics on http://%s/debug/vars\n", srv.Addr())
	}

	if o.analytic {
		if o.sweep || o.batch > 0 || o.trace != "" || o.window > 0 || o.check ||
			o.flitTrace != "" || o.checkpoint != "" || o.restore != "" {
			return fmt.Errorf("-analytic is a pure graph evaluation; drop the simulation flags")
		}
		return runAnalytic(o)
	}

	var (
		g     *flatnet.Graph
		alg   flatnet.Algorithm
		nodes int
		conc  int // concentration for group patterns
		err   error
	)
	switch o.topo {
	case "ff":
		ff, e := flatnet.NewFlatFly(o.k, o.n)
		if e != nil {
			return e
		}
		alg, err = flatnet.NewFlatFlyAlgorithm(o.alg, ff)
		if err != nil {
			return err
		}
		g, nodes, conc = ff.Graph(), ff.NumNodes, ff.K
		fmt.Printf("topology: %s (N=%d, routers=%d, radix k'=%d), routing: %s\n",
			ff.Name(), ff.NumNodes, ff.NumRouters, ff.Radix, alg.Name())
	case "butterfly":
		b, e := flatnet.NewButterfly(o.k, o.n)
		if e != nil {
			return e
		}
		alg = flatnet.NewButterflyDest(b)
		g, nodes, conc = b.Graph(), b.NumNodes, b.K
		fmt.Printf("topology: %s (N=%d), routing: destination-based\n", b.Name(), b.NumNodes)
	case "clos":
		if o.taper < 1 {
			return fmt.Errorf("taper must be >= 1")
		}
		fc, e := flatnet.NewFoldedClos(o.k, o.k/o.taper, o.k, max(1, o.k/(2*o.taper)))
		if e != nil {
			return e
		}
		alg = flatnet.NewFoldedClosAdaptive(fc)
		g, nodes, conc = fc.Graph(), fc.NumNodes, fc.Terminals
		fmt.Printf("topology: %s (N=%d), routing: adaptive sequential\n", fc.Name(), fc.NumNodes)
	case "hypercube":
		h, e := flatnet.NewHypercube(o.dims)
		if e != nil {
			return e
		}
		alg = flatnet.NewECube(h)
		g, nodes, conc = h.Graph(), h.NumNodes, 1
		fmt.Printf("topology: %s (N=%d), routing: e-cube\n", h.Name(), h.NumNodes)
	case "sf":
		s, e := flatnet.NewSlimFly(o.q, o.conc)
		if e != nil {
			return e
		}
		alg, err = flatnet.NewSlimFlyAlgorithm(o.alg, s)
		if err != nil {
			return err
		}
		g, nodes, conc = s.Graph(), s.NumNodes, s.P
		fmt.Printf("topology: %s (N=%d, routers=%d, degree k'=%d, diameter %d), routing: %s\n",
			s.Name(), s.NumNodes, s.NumRouters, s.NetworkDegree, s.Diameter(), alg.Name())
	case "df":
		d, e := flatnet.NewDragonfly(o.conc, o.ga, o.gh)
		if e != nil {
			return e
		}
		alg, err = flatnet.NewDragonflyAlgorithm(o.alg, d)
		if err != nil {
			return err
		}
		// Group patterns treat one group's terminals as the unit, which is
		// what makes -pattern worstcase the dragonfly adversary.
		g, nodes, conc = d.Graph(), d.NumNodes, d.A*d.P
		fmt.Printf("topology: %s (N=%d, routers=%d, groups=%d), routing: %s\n",
			d.Name(), d.NumNodes, d.NumRouters, d.Groups, alg.Name())
	default:
		return fmt.Errorf("unknown topology %q", o.topo)
	}

	hot, err := parseHotList(o.hot)
	if err != nil {
		return err
	}
	p, err := flatnet.BuildPattern(o.pattern, flatnet.PatternCtx{
		Nodes: nodes, Seed: o.seed, Concentration: conc,
		HotSet: hot, HotFraction: o.hotfrac,
	})
	if err != nil {
		return fmt.Errorf("%w (try -pattern help)", err)
	}

	cfg := flatnet.Config{Seed: o.seed, BufPerPort: o.buf}

	if o.check && (o.trace != "" || o.traceIn != "" || o.window > 0) {
		return fmt.Errorf("-check applies to open-loop runs (-load, -sweep, -batch, -collective)")
	}
	if o.burstPeak > 0 {
		if o.batch > 0 || o.window > 0 || o.trace != "" || o.traceIn != "" {
			return fmt.Errorf("-burst-peak applies to open-loop runs (-load, -sweep, -collective)")
		}
		if o.burstPeak > 1 {
			return fmt.Errorf("-burst-peak must be in (0, 1], got %g", o.burstPeak)
		}
	}
	if o.traceIn != "" && (o.sweep || o.batch > 0 || o.window > 0 || o.trace != "" ||
		o.flitTrace != "" || o.checkpoint != "" || o.restore != "" || o.traceOut != "") {
		return fmt.Errorf("-trace-in replays a recorded workload; drop the synthetic-traffic flags")
	}
	if o.traceOut != "" && (o.sweep || o.batch > 0 || o.window > 0 || o.trace != "" || o.collective != "") {
		return fmt.Errorf("-trace-out records single-point open-loop runs (-load)")
	}
	if o.collective != "" && (o.sweep || o.batch > 0 || o.window > 0 || o.trace != "" ||
		o.traceIn != "" || o.checkpoint != "" || o.restore != "" || o.flitTrace != "") {
		return fmt.Errorf("-collective runs one schedule to completion; drop the other mode flags")
	}
	// Instrumented runs force the sequential scheduler: say so instead of
	// silently ignoring -workers.
	if o.workers > 1 {
		switch {
		case o.check:
			fmt.Fprintln(os.Stderr, "flatsim: -check forces the sequential scheduler; ignoring -workers")
			o.workers = 1
		case o.flitTrace != "":
			fmt.Fprintln(os.Stderr, "flatsim: -flittrace forces the sequential scheduler; ignoring -workers")
			o.workers = 1
		case o.trace != "":
			fmt.Fprintln(os.Stderr, "flatsim: text trace replay is sequential; ignoring -workers (-trace-in replays in parallel)")
			o.workers = 1
		case o.traceOut != "":
			fmt.Fprintln(os.Stderr, "flatsim: -trace-out forces the sequential scheduler; ignoring -workers")
			o.workers = 1
		}
	}
	if o.checkpoint != "" || o.restore != "" {
		if o.sweep || o.batch > 0 || o.trace != "" || o.window > 0 {
			return fmt.Errorf("-checkpoint/-restore apply to single-point open-loop runs (-load)")
		}
		if o.check || o.flitTrace != "" || o.traceOut != "" {
			return fmt.Errorf("-checkpoint/-restore cannot run with -check, -flittrace or -trace-out (the snapshot would be unfaithful)")
		}
	}

	if o.trace != "" {
		return runTrace(g, alg, cfg, o.trace, o.stop)
	}

	if o.traceIn != "" {
		return runTraceJSONL(g, alg, cfg, o)
	}

	if o.collective != "" {
		return runCollective(g, alg, cfg, p, o)
	}

	if o.window > 0 {
		res, err := flatnet.RunClosedLoop(g, alg, cfg, flatnet.ClosedLoopConfig{
			Window: o.window, Pattern: p, Warmup: o.warmup, Measure: o.measure,
			Workers: o.workers,
		})
		if err != nil {
			return err
		}
		fmt.Printf("closed loop, window %d: avg round trip %.2f cycles (p99 %d), %.4f requests/node/cycle\n",
			o.window, res.AvgRoundTrip, res.P99RoundTrip, res.RequestRate)
		return nil
	}

	if o.batch > 0 {
		var san *flatnet.Sanitizer
		var attach func(*flatnet.Network)
		if o.check {
			attach = func(n *flatnet.Network) { san = flatnet.AttachChecker(n, flatnet.CheckConfig{}) }
		}
		res, err := sim.RunBatch(g, alg, cfg, sim.BatchConfig{
			Pattern: p, BatchSize: o.batch, Attach: attach, Stop: o.stop,
			Workers: o.workers,
		})
		if err != nil {
			return err
		}
		if san != nil {
			if err := san.Finalize(); err != nil {
				return err
			}
		}
		fmt.Printf("batch %d per node: completed in %d cycles (normalized latency %.2f)\n",
			res.BatchSize, res.CompletionCycles, res.NormalizedLatency)
		return nil
	}

	if !o.sweep {
		return runPoint(g, alg, cfg, p, o)
	}

	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
	if o.burstPeak > 0 {
		// The on/off process cannot offer more than its peak rate; sweep
		// the feasible prefix.
		kept := loads[:0]
		for _, l := range loads {
			if l <= o.burstPeak {
				kept = append(kept, l)
			}
		}
		loads = kept
	}
	rc := flatnet.RunConfig{Pattern: p, Burst: burstConfig(o), Warmup: o.warmup, Measure: o.measure, Stop: o.stop, Workers: o.workers}
	checked := func() error { return nil }
	if o.check {
		checked = flatnet.ArmCheck(&rc, flatnet.CheckConfig{})
	}
	results, err := flatnet.LoadSweep(g, alg, cfg, rc, loads)
	if err != nil {
		return err
	}
	if err := checked(); err != nil {
		return err
	}
	fmt.Printf("%-6s  %-12s  %-6s  %-6s  %-6s  %-6s  %-10s  %s\n",
		"load", "avg latency", "p50", "p95", "p99", "max", "accepted", "status")
	for _, r := range results {
		status := "ok"
		if r.Saturated {
			status = "saturated"
		}
		fmt.Printf("%-6.2f  %-12.2f  %-6d  %-6d  %-6d  %-6d  %-10.3f  %s\n",
			r.Load, r.AvgLatency, r.P50Latency, r.P95Latency, r.P99Latency, r.MaxLatency,
			r.AcceptedRate, status)
	}
	return nil
}

// runAnalytic evaluates the selected topology graph-analytically —
// no simulation, so instances far beyond cycle-accurate reach (100k+
// endpoints) report in well under a second.
func runAnalytic(o runOpts) error {
	var (
		tp  flatnet.Topology
		err error
	)
	switch o.topo {
	case "ff":
		tp, err = flatnet.NewFlatFly(o.k, o.n)
	case "butterfly":
		tp, err = flatnet.NewButterfly(o.k, o.n)
	case "clos":
		if o.taper < 1 {
			return fmt.Errorf("taper must be >= 1")
		}
		tp, err = flatnet.NewFoldedClos(o.k, o.k/o.taper, o.k, max(1, o.k/(2*o.taper)))
	case "hypercube":
		tp, err = flatnet.NewHypercube(o.dims)
	case "sf":
		tp, err = flatnet.NewSlimFly(o.q, o.conc)
	case "df":
		tp, err = flatnet.NewDragonfly(o.conc, o.ga, o.gh)
	default:
		return fmt.Errorf("unknown topology %q", o.topo)
	}
	if err != nil {
		return err
	}
	start := time.Now()
	m, err := flatnet.AnalyzeTopology(tp)
	if err != nil {
		return err
	}
	fmt.Printf("topology: %s (analytic, %v)\n", tp.Name(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  terminals %d, routers %d, network channels %d\n", m.Nodes, m.Routers, m.Channels)
	fmt.Printf("  diameter %d, avg min hops %.4f, path diversity %.3f\n", m.Diameter, m.AvgHops, m.PathDiversity)
	if m.BisectionLowerChannels > 0 {
		fmt.Printf("  bisection: %.0f..%.0f unidirectional channels (spectral lower .. best cut found)\n",
			m.BisectionLowerChannels, m.BisectionUpperChannels)
	} else {
		fmt.Printf("  bisection: <= %.0f unidirectional channels (best cut found)\n", m.BisectionUpperChannels)
	}
	return nil
}

// runPoint measures a single open-loop load point with probes attached,
// reporting latency percentiles and the hottest channels, and optionally
// recording a flit trace.
func runPoint(g *flatnet.Graph, alg flatnet.Algorithm, cfg flatnet.Config, p flatnet.Pattern, o runOpts) error {
	rc := flatnet.RunConfig{
		Load: o.load, Pattern: p, Burst: burstConfig(o),
		Warmup: o.warmup, Measure: o.measure,
		Stop: o.stop, Workers: o.workers,
	}
	var recorded *[]flatnet.TraceEntry
	if o.traceOut != "" {
		rc.Attach = func(n *flatnet.Network) { recorded = n.RecordTrace() }
	}
	var tracer *flatnet.Tracer
	if o.flitTrace != "" {
		tracer = flatnet.NewTracer(o.traceCap)
		rc.Tracer = tracer
	}
	var ckptFile *os.File
	if o.restore != "" {
		f, err := os.Open(o.restore)
		if err != nil {
			return err
		}
		defer f.Close()
		rc.Resume = f
	}
	if o.checkpoint != "" {
		f, err := os.Create(o.checkpoint)
		if err != nil {
			return err
		}
		ckptFile = f
		rc.Checkpoint = f
	}
	var top []flatnet.ProbeChannel
	var probes *flatnet.Probes
	switch {
	case o.workers > 1:
		// Probes force the sequential scheduler, so a parallel run skips
		// them (and the pipeline/top-channel report they feed).
		fmt.Fprintln(os.Stderr, "flatsim: -workers > 1 disables probes; skipping the pipeline/top-channel report")
	case o.checkpoint != "":
		// A probed network refuses to snapshot (the probes would be
		// dropped silently on restore), so checkpointing runs unprobed.
		fmt.Fprintln(os.Stderr, "flatsim: -checkpoint disables probes; skipping the pipeline/top-channel report")
	default:
		rc.Probes = &flatnet.ProbeConfig{}
		rc.Observe = func(n *flatnet.Network) {
			probes = n.Probes()
			top = probes.TopChannels(5)
		}
	}
	checked := func() error { return nil }
	if o.check {
		checked = flatnet.ArmCheck(&rc, flatnet.CheckConfig{})
	}
	r, err := flatnet.RunLoadPoint(g, alg, cfg, rc)
	if ckptFile != nil {
		if cerr := ckptFile.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if o.restore != "" {
		fmt.Printf("restored warm state from %s (measurement started at cycle %d)\n", o.restore, o.warmup)
	}
	if o.checkpoint != "" {
		fmt.Printf("warm checkpoint -> %s\n", o.checkpoint)
	}
	if err := checked(); err != nil {
		return err
	}
	status := ""
	if r.Saturated {
		status = " [saturated]"
	}
	fmt.Printf("load %.2f: avg latency %.2f cycles (p50 %d, p95 %d, p99 %d, max %d), accepted %.3f%s\n",
		r.Load, r.AvgLatency, r.P50Latency, r.P95Latency, r.P99Latency, r.MaxLatency,
		r.AcceptedRate, status)
	if probes != nil {
		fmt.Printf("pipeline: %d grants, %d conflicts, %d credit stalls, %d vc stalls, mean buffered %.1f flits\n",
			probes.Grants, probes.Conflicts, probes.CreditStalls, probes.VCStalls,
			probes.MeanBufferedFlits())
	}
	if len(top) > 0 {
		fmt.Println("hottest channels (probed flits over retained window):")
		for _, c := range top {
			fmt.Printf("  router %d port %d: %d flits (%.3f flits/cycle)\n",
				c.Router, c.Port, c.Flits, c.Rate)
		}
	}
	if tracer != nil {
		if err := writeFlitTrace(o.flitTrace, tracer); err != nil {
			return err
		}
		fmt.Printf("flit trace: %d events (%d evicted) -> %s\n",
			tracer.Len(), tracer.Dropped(), o.flitTrace)
	}
	if recorded != nil {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		werr := flatnet.WriteWorkloadJSONL(f, *recorded)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("workload trace: %d packets -> %s\n", len(*recorded), o.traceOut)
	}
	return nil
}

// writeFlitTrace serializes a tracer's events: JSON lines for .jsonl
// paths, Chrome trace JSON otherwise.
func writeFlitTrace(path string, t *flatnet.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".jsonl") {
		werr = flatnet.WriteTraceJSONL(f, t.Events())
	} else {
		werr = flatnet.WriteChromeTrace(f, t.Events())
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// parseHotList parses the -hot comma-separated terminal list.
func parseHotList(s string) ([]flatnet.NodeID, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	hot := make([]flatnet.NodeID, 0, len(parts))
	for _, part := range parts {
		var id int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &id); err != nil || id < 0 {
			return nil, fmt.Errorf("-hot: bad terminal %q (want a comma-separated list of node ids)", part)
		}
		hot = append(hot, flatnet.NodeID(id))
	}
	return hot, nil
}

// burstConfig returns the on/off arrival process selected by
// -burst-peak/-burst-len, nil for the default Bernoulli process.
func burstConfig(o runOpts) *flatnet.BurstConfig {
	if o.burstPeak <= 0 {
		return nil
	}
	return &flatnet.BurstConfig{Peak: o.burstPeak, AvgBurst: o.burstLen}
}

// runCollective executes one collective schedule to completion,
// optionally contending with background traffic at -load.
func runCollective(g *flatnet.Graph, alg flatnet.Algorithm, cfg flatnet.Config, p flatnet.Pattern, o runOpts) error {
	cc := flatnet.CollectiveConfig{
		Kind: o.collective, Packets: o.chunk,
		Warmup: o.warmup, Stop: o.stop, Workers: o.workers,
	}
	if o.loadSet && o.load > 0 {
		cc.Load = o.load
		if bc := burstConfig(o); bc != nil {
			src, err := flatnet.NewOnOffSource(p, bc.Peak, bc.AvgBurst)
			if err != nil {
				return err
			}
			cc.Source = src
		} else {
			cc.Pattern = p
		}
	}
	var san *flatnet.Sanitizer
	if o.check {
		cc.Attach = func(n *flatnet.Network) { san = flatnet.AttachChecker(n, flatnet.CheckConfig{}) }
	}
	res, err := flatnet.RunCollective(g, alg, cfg, cc)
	if err != nil {
		return err
	}
	if san != nil {
		if err := san.Finalize(); err != nil {
			return err
		}
	}
	bg := "quiet network"
	if cc.Load > 0 {
		bg = fmt.Sprintf("background %s at load %.2f", o.pattern, cc.Load)
	}
	fmt.Printf("%s over %d nodes (%s): %d phases, %d transfers, %d packets\n",
		res.Kind, res.Nodes, bg, res.Phases, res.Transfers, res.Packets)
	fmt.Printf("completed in %d cycles (max phase %d, avg phase %.1f)\n",
		res.Cycles, res.MaxPhaseCycles, res.AvgPhaseCycles)
	return nil
}

// runTraceJSONL streams a JSONL workload trace through the network —
// bounded memory, any worker count — and reports delivery latency.
func runTraceJSONL(g *flatnet.Graph, alg flatnet.Algorithm, cfg flatnet.Config, o runOpts) error {
	f, err := os.Open(o.traceIn)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := flatnet.NewNetwork(g, alg, cfg)
	if err != nil {
		return err
	}
	defer n.Close()
	if o.workers > 1 {
		if err := n.SetWorkers(o.workers); err != nil {
			return err
		}
	}
	var latSum float64
	var delivered int64
	n.OnDeliver(func(p *flatnet.Packet, cycle int64) {
		latSum += float64(cycle - p.InjectCycle)
		delivered++
	})
	injected, err := n.ReplayTrace(flatnet.NewTraceScanner(f), 0)
	if err != nil {
		return err
	}
	avg := 0.0
	if delivered > 0 {
		avg = latSum / float64(delivered)
	}
	fmt.Printf("replayed %d packets in %d cycles; avg latency %.2f cycles\n",
		injected, n.Cycle(), avg)
	return nil
}

// runTrace replays a recorded trace to completion and reports latency.
func runTrace(g *flatnet.Graph, alg flatnet.Algorithm, cfg flatnet.Config, path string, stop func() bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := flatnet.ReadTrace(f)
	if err != nil {
		return err
	}
	n, err := flatnet.NewNetwork(g, alg, cfg)
	if err != nil {
		return err
	}
	var latSum float64
	var delivered int64
	n.OnDeliver(func(p *flatnet.Packet, cycle int64) {
		latSum += float64(cycle - p.InjectCycle)
		delivered++
	})
	if err := n.LoadTrace(entries); err != nil {
		return err
	}
	limit := int64(len(entries))*100 + 10000
	for delivered < int64(len(entries)) && n.Cycle() < limit {
		if stop != nil && n.Cycle()&0xff == 0 && stop() {
			return fmt.Errorf("trace replay at cycle %d: %w", n.Cycle(), sim.ErrStopped)
		}
		n.Step()
	}
	if delivered < int64(len(entries)) {
		return fmt.Errorf("trace did not complete: %d/%d delivered by cycle %d", delivered, len(entries), n.Cycle())
	}
	fmt.Printf("replayed %d packets in %d cycles; avg latency %.2f cycles\n",
		delivered, n.Cycle(), latSum/float64(delivered))
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
