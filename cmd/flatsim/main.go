// Command flatsim runs one cycle-accurate simulation: a topology, a
// routing algorithm, a traffic pattern and an offered load (or a load
// sweep), printing latency and throughput.
//
// Examples:
//
//	flatsim -topo ff -k 32 -n 2 -alg clos -pattern worstcase -load 0.45
//	flatsim -topo ff -k 16 -n 2 -alg ugal -pattern uniform -sweep
//	flatsim -topo hypercube -dims 10 -pattern uniform -load 0.8
//	flatsim -topo clos -k 32 -taper 2 -pattern worstcase -load 0.4
//	flatsim -topo butterfly -k 32 -n 2 -pattern uniform -load 0.9
//	flatsim -topo ff -k 32 -n 2 -alg ugal-s -pattern worstcase -batch 16
//	flatsim -topo ff -k 32 -n 2 -alg clos -window 4            # request-reply
//	flatsim -topo ff -k 16 -n 2 -trace run.trace               # replay a trace
package main

import (
	"flag"
	"fmt"
	"os"

	"flatnet"
)

func main() {
	var (
		topoName = flag.String("topo", "ff", "topology: ff | butterfly | clos | hypercube")
		k        = flag.Int("k", 32, "ary (terminals per router for ff/clos groups)")
		n        = flag.Int("n", 2, "stages (ff/butterfly: network has k^n nodes)")
		dims     = flag.Int("dims", 10, "hypercube dimensions")
		taper    = flag.Int("taper", 2, "folded-Clos taper (terminals/uplinks ratio)")
		algName  = flag.String("alg", "clos", "ff algorithm: min | val | ugal | ugal-s | clos")
		pattern  = flag.String("pattern", "uniform", "traffic: uniform | worstcase | bitcomp | tornado")
		load     = flag.Float64("load", 0.5, "offered load (fraction of capacity)")
		sweep    = flag.Bool("sweep", false, "sweep loads 0.1..0.95 instead of one point")
		batch    = flag.Int("batch", 0, "run a batch experiment of this size instead of open-loop")
		trace    = flag.String("trace", "", "replay a text trace file (cycle src dst per line) instead of synthetic traffic")
		window   = flag.Int("window", 0, "run a closed-loop request-reply workload with this many outstanding requests per node")
		warmup   = flag.Int("warmup", 1000, "warm-up cycles")
		measure  = flag.Int("measure", 1000, "measurement cycles")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		buf      = flag.Int("buf", 32, "flit buffers per port")
	)
	flag.Parse()

	if err := run(*topoName, *k, *n, *dims, *taper, *algName, *pattern, *trace,
		*load, *sweep, *batch, *window, *warmup, *measure, *seed, *buf); err != nil {
		fmt.Fprintln(os.Stderr, "flatsim:", err)
		os.Exit(1)
	}
}

func run(topoName string, k, n, dims, taper int, algName, patternName, traceFile string,
	load float64, sweep bool, batch, window, warmup, measure int, seed uint64, buf int) error {

	var (
		g     *flatnet.Graph
		alg   flatnet.Algorithm
		nodes int
		conc  int // concentration for group patterns
		err   error
	)
	switch topoName {
	case "ff":
		ff, e := flatnet.NewFlatFly(k, n)
		if e != nil {
			return e
		}
		alg, err = flatnet.NewFlatFlyAlgorithm(algName, ff)
		if err != nil {
			return err
		}
		g, nodes, conc = ff.Graph(), ff.NumNodes, ff.K
		fmt.Printf("topology: %s (N=%d, routers=%d, radix k'=%d), routing: %s\n",
			ff.Name(), ff.NumNodes, ff.NumRouters, ff.Radix, alg.Name())
	case "butterfly":
		b, e := flatnet.NewButterfly(k, n)
		if e != nil {
			return e
		}
		alg = flatnet.NewButterflyDest(b)
		g, nodes, conc = b.Graph(), b.NumNodes, b.K
		fmt.Printf("topology: %s (N=%d), routing: destination-based\n", b.Name(), b.NumNodes)
	case "clos":
		if taper < 1 {
			return fmt.Errorf("taper must be >= 1")
		}
		fc, e := flatnet.NewFoldedClos(k, k/taper, k, max(1, k/(2*taper)))
		if e != nil {
			return e
		}
		alg = flatnet.NewFoldedClosAdaptive(fc)
		g, nodes, conc = fc.Graph(), fc.NumNodes, fc.Terminals
		fmt.Printf("topology: %s (N=%d), routing: adaptive sequential\n", fc.Name(), fc.NumNodes)
	case "hypercube":
		h, e := flatnet.NewHypercube(dims)
		if e != nil {
			return e
		}
		alg = flatnet.NewECube(h)
		g, nodes, conc = h.Graph(), h.NumNodes, 1
		fmt.Printf("topology: %s (N=%d), routing: e-cube\n", h.Name(), h.NumNodes)
	default:
		return fmt.Errorf("unknown topology %q", topoName)
	}

	var p flatnet.Pattern
	switch patternName {
	case "uniform":
		p = flatnet.NewUniform(nodes)
	case "worstcase":
		if conc < 1 {
			conc = 1
		}
		p = flatnet.NewWorstCase(conc, nodes/conc)
	case "bitcomp":
		p = flatnet.NewBitComplement(nodes)
	case "tornado":
		p = flatnet.NewTornado(conc, nodes/conc)
	default:
		return fmt.Errorf("unknown pattern %q", patternName)
	}

	cfg := flatnet.Config{Seed: seed, BufPerPort: buf}

	if traceFile != "" {
		return runTrace(g, alg, cfg, traceFile)
	}

	if window > 0 {
		res, err := flatnet.RunClosedLoop(g, alg, cfg, flatnet.ClosedLoopConfig{
			Window: window, Pattern: p, Warmup: warmup, Measure: measure,
		})
		if err != nil {
			return err
		}
		fmt.Printf("closed loop, window %d: avg round trip %.2f cycles (p99 %d), %.4f requests/node/cycle\n",
			window, res.AvgRoundTrip, res.P99RoundTrip, res.RequestRate)
		return nil
	}

	if batch > 0 {
		res, err := flatnet.RunBatch(g, alg, cfg, p, batch, 0)
		if err != nil {
			return err
		}
		fmt.Printf("batch %d per node: completed in %d cycles (normalized latency %.2f)\n",
			res.BatchSize, res.CompletionCycles, res.NormalizedLatency)
		return nil
	}

	loads := []float64{load}
	if sweep {
		loads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
	}
	rc := flatnet.RunConfig{Pattern: p, Warmup: warmup, Measure: measure}
	results, err := flatnet.LoadSweep(g, alg, cfg, rc, loads)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s  %-12s  %-8s  %-10s  %s\n", "load", "avg latency", "p99", "accepted", "status")
	for _, r := range results {
		status := "ok"
		if r.Saturated {
			status = "saturated"
		}
		fmt.Printf("%-6.2f  %-12.2f  %-8d  %-10.3f  %s\n",
			r.Load, r.AvgLatency, r.P99Latency, r.AcceptedRate, status)
	}
	return nil
}

// runTrace replays a recorded trace to completion and reports latency.
func runTrace(g *flatnet.Graph, alg flatnet.Algorithm, cfg flatnet.Config, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := flatnet.ReadTrace(f)
	if err != nil {
		return err
	}
	n, err := flatnet.NewNetwork(g, alg, cfg)
	if err != nil {
		return err
	}
	var latSum float64
	var delivered int64
	n.OnDeliver(func(p *flatnet.Packet, cycle int64) {
		latSum += float64(cycle - p.InjectCycle)
		delivered++
	})
	if err := n.LoadTrace(entries); err != nil {
		return err
	}
	limit := int64(len(entries))*100 + 10000
	for delivered < int64(len(entries)) && n.Cycle() < limit {
		n.Step()
	}
	if delivered < int64(len(entries)) {
		return fmt.Errorf("trace did not complete: %d/%d delivered by cycle %d", delivered, len(entries), n.Cycle())
	}
	fmt.Printf("replayed %d packets in %d cycles; avg latency %.2f cycles\n",
		delivered, n.Cycle(), latSum/float64(delivered))
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
