package main

import (
	"fmt"
	"os"

	"flatnet"
)

// fig2 emits the network-size scalability curves: N as a function of
// switch radix k' for n' in {1, 2, 3, 4}.
func fig2(w *os.File, _ bool) error {
	fmt.Fprintln(w, "# Fig 2: network size N vs switch radix k' for dimensions n'")
	fmt.Fprintln(w, "kprime\tnp1\tnp2\tnp3\tnp4")
	for kp := 4; kp <= 256; kp += 4 {
		fmt.Fprintf(w, "%d", kp)
		for np := 1; np <= 4; np++ {
			fmt.Fprintf(w, "\t%.0f", flatnet.NetworkSize(float64(kp), np))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// fig3 emits the §2.3 comparison behind Figure 3: the cost of a 1K-node
// generalized hypercube — one terminal per router, full-bandwidth
// inter-router channels — against the flattened butterfly, whose k-way
// concentration cuts cost by roughly a factor of k.
func fig3(w *os.File, _ bool) error {
	m, p := flatnet.DefaultCostModel(), flatnet.DefaultPackaging()
	ffBOM, err := flatnet.FlatFlyBOM(1024, p)
	if err != nil {
		return err
	}
	fb := flatnet.PriceBOM(ffBOM, m, p)
	ghc := flatnet.PriceBOM(flatnet.GHCBOM(1024, []int{8, 8, 16}, p), m, p)
	fmt.Fprintln(w, "# Fig 3 / §2.3: flattened butterfly vs (8,8,16) generalized hypercube at N=1024")
	fmt.Fprintln(w, "network\tchannels_per_node\tcost_per_node")
	fmt.Fprintf(w, "flattened butterfly (k=32, n'=1)\t%.2f\t$%.1f\n", 31.0/32, fb.TotalPerNode)
	fmt.Fprintf(w, "generalized hypercube (8,8,16)\t%d\t$%.1f\n", 29, ghc.TotalPerNode)
	fmt.Fprintf(w, "# concentration advantage: %.1fx\n", ghc.TotalPerNode/fb.TotalPerNode)
	return nil
}

// table1 emits the §3.3 topology/routing configuration.
func table1(w *os.File, _ bool) error {
	fmt.Fprintln(w, "# Table 1: topology and routing used in the performance comparison")
	fmt.Fprintln(w, "topology\trouting\tVCs")
	fmt.Fprintln(w, "flattened butterfly\tCLOS AD\t2")
	fmt.Fprintln(w, "conventional butterfly\tdestination-based\t1")
	fmt.Fprintln(w, "folded Clos\tadaptive sequential\t1")
	fmt.Fprintln(w, "hypercube\te-cube\t1")
	return nil
}

// table2 emits the cost-model constants.
func table2(w *os.File, _ bool) error {
	m := flatnet.DefaultCostModel()
	fmt.Fprintln(w, "# Table 2: cost breakdown of an interconnection network")
	fmt.Fprintln(w, "component\tcost")
	fmt.Fprintf(w, "router\t$%.0f\n", m.RouterChip+m.RouterDev)
	fmt.Fprintf(w, "router chip\t$%.0f\n", m.RouterChip)
	fmt.Fprintf(w, "development (amortized)\t$%.0f\n", m.RouterDev)
	fmt.Fprintf(w, "backplane link ($/signal)\t$%.2f\n", m.BackplanePerSignal)
	fmt.Fprintf(w, "electrical cable ($/signal)\t$%.2f + $%.2f/m\n", m.CableOverheadPerSignal, m.CablePerMeterPerSignal)
	fmt.Fprintf(w, "optical link ($/signal)\t$%.2f\n", m.OpticalPerSignal)
	fmt.Fprintf(w, "repeater spacing\t%.0f m\n", m.RepeaterSpacing)
	return nil
}

// table3 emits the packaging assumptions.
func table3(w *os.File, _ bool) error {
	p := flatnet.DefaultPackaging()
	fmt.Fprintln(w, "# Table 3: technology and packaging assumptions")
	fmt.Fprintln(w, "parameter\tvalue")
	fmt.Fprintf(w, "radix\t%d\n", p.Radix)
	fmt.Fprintf(w, "pairs per port\t%d\n", p.SignalsPerPort)
	fmt.Fprintf(w, "nodes per cabinet\t%d\n", p.NodesPerCabinet)
	fmt.Fprintf(w, "density (nodes/m^2)\t%.0f\n", p.Density)
	fmt.Fprintf(w, "cable overhead\t%.0f m\n", p.CableOverhead)
	return nil
}

// table4 emits the (k, n) configurations of a 4K-node network.
func table4(w *os.File, _ bool) error {
	fmt.Fprintln(w, "# Table 4: flattened-butterfly configurations for N = 4K")
	fmt.Fprintln(w, "k\tn\tkprime\tnprime")
	for _, c := range flatnet.ConfigsForN(4096) {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\n", c.K, c.N, c.KPrime, c.NPrime)
	}
	return nil
}

// table5 emits the power-model constants.
func table5(w *os.File, _ bool) error {
	m := flatnet.DefaultPowerModel()
	fmt.Fprintln(w, "# Table 5: power consumption of router components")
	fmt.Fprintln(w, "component\tpower")
	fmt.Fprintf(w, "P_switch\t%.0f W\n", m.SwitchW)
	fmt.Fprintf(w, "P_link_gg\t%.0f mW\n", m.LinkGlobalW*1000)
	fmt.Fprintf(w, "P_link_gl\t%.0f mW\n", m.LinkGlobalLocalW*1000)
	fmt.Fprintf(w, "P_link_ll\t%.0f mW\n", m.LinkLocalW*1000)
	return nil
}

// fig7 emits the cable cost curve with the repeater step.
func fig7(w *os.File, _ bool) error {
	m := flatnet.DefaultCostModel()
	fmt.Fprintln(w, "# Fig 7: cable cost per signal vs length (electrical, with repeaters past 6 m)")
	fmt.Fprintln(w, "length_m\tcost_per_signal")
	for l := 0.5; l <= 20.01; l += 0.5 {
		fmt.Fprintf(w, "%.1f\t%.2f\n", l, m.CableCostPerSignal(l))
	}
	return nil
}

// fig89 emits the measured packaging study behind Figs 8-9 and §5.2: a
// 1024-node flattened butterfly and folded Clos placed into cabinets on a
// simulated machine-room floor, with actual Manhattan cable lengths and
// the local-traffic wire-delay comparison.
func fig89(w *os.File, _ bool) error {
	p := flatnet.DefaultPackaging()
	ff, err := flatnet.NewFlatFly(32, 2)
	if err != nil {
		return err
	}
	fc, err := flatnet.NewFoldedClos(32, 16, 32, 8)
	if err != nil {
		return err
	}
	hc, err := flatnet.NewHypercube(10)
	if err != nil {
		return err
	}
	plFF, err := flatnet.PlaceFlatFly(ff, p)
	if err != nil {
		return err
	}
	plFC, err := flatnet.PlaceFoldedClos(fc, p)
	if err != nil {
		return err
	}
	plHC, err := flatnet.PlaceHypercube(hc, p)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Figs 8-9: measured cabinet packaging at N=1024 (Manhattan cable lengths)")
	fmt.Fprintln(w, "topology\tchannels\tbackplane\tcables\tavg_m\tmax_m")
	for _, row := range []struct {
		name string
		st   flatnet.CableStats
	}{
		{ff.Name(), plFF.Stats()},
		{fc.Name(), plFC.Stats()},
		{hc.Name(), plHC.Stats()},
	} {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.2f\t%.2f\n",
			row.name, row.st.Channels, row.st.Backplane, row.st.Cables, row.st.AvgLength, row.st.MaxLength)
	}
	cmp, err := flatnet.CompareWireDelay(ff, fc, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# §5.2 wire delay, local (worst-case) traffic: FB %.2f m direct vs folded Clos %.2f m via middle cabinets (%.2fx)\n",
		cmp.FlatFlyAvgMeters, cmp.FoldedClosAvgMeters, cmp.Ratio)
	return nil
}

// costSizes is the N sweep used for Figs 10, 11 and 15.
var costSizes = []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

// fig10 emits the link-cost fraction and average global cable length.
func fig10(w *os.File, _ bool) error {
	m, p := flatnet.DefaultCostModel(), flatnet.DefaultPackaging()
	rows, err := flatnet.CostSweep(costSizes, m, p)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Fig 10a: link cost / total cost; Fig 10b: average global cable length (m, overhead excluded)")
	fmt.Fprintln(w, "N\tlinkfrac_fb\tlinkfrac_clos\tlinkfrac_bfly\tlinkfrac_hcube\tlavg_fb\tlavg_clos\tlavg_bfly\tlavg_hcube")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.N,
			r.FlatFly.LinkFraction, r.FoldedClos.LinkFraction, r.Butterfly.LinkFraction, r.Hypercube.LinkFraction,
			r.FlatFly.AvgCableLength, r.FoldedClos.AvgCableLength, r.Butterfly.AvgCableLength, r.Hypercube.AvgCableLength)
	}
	return nil
}

// fig11 emits cost per node for the four topologies.
func fig11(w *os.File, _ bool) error {
	m, p := flatnet.DefaultCostModel(), flatnet.DefaultPackaging()
	rows, err := flatnet.CostSweep(costSizes, m, p)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Fig 11: cost per node ($) vs network size")
	fmt.Fprintln(w, "N\tflatfly\tfolded_clos\tbutterfly\thypercube\tfb_savings_vs_clos")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f%%\n",
			r.N, r.FlatFly.TotalPerNode, r.FoldedClos.TotalPerNode,
			r.Butterfly.TotalPerNode, r.Hypercube.TotalPerNode, 100*r.SavingsVsClos())
	}
	return nil
}

// fig13 emits the cost of the Table 4 configurations of a 4K network.
func fig13(w *os.File, _ bool) error {
	m, p := flatnet.DefaultCostModel(), flatnet.DefaultPackaging()
	fmt.Fprintln(w, "# Fig 13: cost per node of N=4K flattened butterflies vs dimensionality")
	fmt.Fprintln(w, "nprime\tk\tcost_per_node\tavg_cable_m")
	for _, c := range flatnet.ConfigsForN(4096) {
		b := flatnet.FlatFlyBOMForConfig(4096, c.K, c.NPrime, p)
		br := flatnet.PriceBOM(b, m, p)
		fmt.Fprintf(w, "%d\t%d\t%.1f\t%.2f\n", c.NPrime, c.K, br.TotalPerNode, br.AvgCableLength)
	}
	return nil
}

// fig15 emits power per node for the four topologies.
func fig15(w *os.File, _ bool) error {
	m, p := flatnet.DefaultPowerModel(), flatnet.DefaultPackaging()
	rows, err := flatnet.PowerSweep(costSizes, m, p)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Fig 15: power per node (W) vs network size")
	fmt.Fprintln(w, "N\tflatfly\tfolded_clos\tbutterfly\thypercube\tfb_savings_vs_clos")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f%%\n",
			r.N, r.FlatFly.TotalPerNode, r.FoldedClos.TotalPerNode,
			r.Butterfly.TotalPerNode, r.Hypercube.TotalPerNode, 100*r.SavingsVsClos())
	}
	return nil
}
