package main

import (
	"fmt"
	"math"
	"os"

	"flatnet"
	"flatnet/internal/experiments"
	"flatnet/internal/report"
	"flatnet/internal/sweep"
)

// engine is the sweep engine the simulation figures run on for the
// duration of a run() call; nil means the sequential reference path.
var engine *sweep.Engine

// simWorkers is the per-simulation cycle-core worker count (-simworkers)
// applied to every job a figure schedules; results are bit-identical at
// any count.
var simWorkers int

func scale(quick bool) experiments.Scale {
	s := experiments.Full()
	if quick {
		s = experiments.Quick()
	}
	s.SimWorkers = simWorkers
	return s
}

// writeLoadSeries prints latency-vs-load points for a set of labeled
// series, followed by each series' saturation throughput.
func writeLoadSeries(w *os.File, label string, names []string, pts [][]flatnet.LoadPointResult, sats []float64) {
	fmt.Fprintf(w, "# %s\n", label)
	fmt.Fprint(w, "load")
	for _, n := range names {
		fmt.Fprintf(w, "\tlat_%s", sanitize(n))
	}
	fmt.Fprintln(w)
	if len(pts) > 0 {
		for i := range pts[0] {
			fmt.Fprintf(w, "%.2f", pts[0][i].Load)
			for s := range pts {
				p := pts[s][i]
				if p.Saturated {
					fmt.Fprint(w, "\tsat")
				} else {
					fmt.Fprintf(w, "\t%.2f", p.AvgLatency)
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "# saturation throughput (accepted fraction of capacity at full offered load)")
	for i, n := range names {
		fmt.Fprintf(w, "# %s\t%.3f\n", n, sats[i])
	}
	// Append an ASCII rendering of the latency curves; saturated points
	// render as gaps, and the latency axis is capped to keep the
	// interesting region visible.
	var series []report.Series
	for i, n := range names {
		s := report.Series{Label: n}
		for _, p := range pts[i] {
			y := p.AvgLatency
			if p.Saturated {
				y = math.NaN()
			}
			s.X = append(s.X, p.Load)
			s.Y = append(s.Y, y)
		}
		series = append(series, s)
	}
	fmt.Fprintln(w)
	chart := report.Chart{Title: "latency (cycles, capped at 50) vs offered load", XLabel: "offered load", YCap: 50}
	if err := chart.Render(w, series); err != nil {
		fmt.Fprintf(w, "# chart error: %v\n", err)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '-' || r == '(' || r == ')' || r == ',' || r == '=':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// fig4 runs the five routing algorithms on UR or WC traffic.
func fig4(w *os.File, quick bool, pattern string) error {
	s := scale(quick)
	series, err := experiments.Fig4On(engine, pattern, s)
	if err != nil {
		return err
	}
	names := make([]string, len(series))
	pts := make([][]flatnet.LoadPointResult, len(series))
	sats := make([]float64, len(series))
	for i, a := range series {
		names[i], pts[i], sats[i] = a.Algorithm, a.Points, a.SaturationThroughput
	}
	writeLoadSeries(w, fmt.Sprintf("Fig 4 (%s): routing algorithms on the %d-ary %d-flat, latency (cycles) vs offered load", pattern, s.K, s.N), names, pts, sats)
	return nil
}

// fig5 runs the batch dynamic-response experiment.
func fig5(w *os.File, quick bool) error {
	s := scale(quick)
	series, err := experiments.Fig5On(engine, s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Fig 5: batch latency normalized to batch size, worst-case traffic, %d-ary %d-flat\n", s.K, s.N)
	fmt.Fprint(w, "batch")
	for _, a := range series {
		fmt.Fprintf(w, "\t%s", sanitize(a.Algorithm))
	}
	fmt.Fprintln(w)
	for i := range series[0].Points {
		fmt.Fprintf(w, "%d", series[0].Points[i].BatchSize)
		for _, a := range series {
			fmt.Fprintf(w, "\t%.2f", a.Points[i].NormalizedLatency)
		}
		fmt.Fprintln(w)
	}
	var chartSeries []report.Series
	for _, a := range series {
		s := report.Series{Label: a.Algorithm}
		for _, p := range a.Points {
			s.X = append(s.X, math.Log2(float64(p.BatchSize)))
			s.Y = append(s.Y, p.NormalizedLatency)
		}
		chartSeries = append(chartSeries, s)
	}
	fmt.Fprintln(w)
	chart := report.Chart{Title: "normalized batch latency vs log2(batch size)", XLabel: "log2(batch)"}
	if err := chart.Render(w, chartSeries); err != nil {
		fmt.Fprintf(w, "# chart error: %v\n", err)
	}
	return nil
}

// fig6 runs the four-topology comparison.
func fig6(w *os.File, quick bool, pattern string) error {
	s := scale(quick)
	series, err := experiments.Fig6On(engine, pattern, s)
	if err != nil {
		return err
	}
	names := make([]string, len(series))
	pts := make([][]flatnet.LoadPointResult, len(series))
	sats := make([]float64, len(series))
	for i, t := range series {
		names[i], pts[i], sats[i] = t.Topology, t.Points, t.SaturationThroughput
	}
	writeLoadSeries(w, fmt.Sprintf("Fig 6 (%s): topology comparison at equal bisection bandwidth, latency vs offered load", pattern), names, pts, sats)
	return nil
}

// fig12 runs the fixed-N configuration study under VAL or MIN AD.
func fig12(w *os.File, quick bool, alg string) error {
	s := scale(quick)
	nodes := 4096
	loads := []float64{0.1, 0.3}
	if alg == "MIN AD" {
		loads = []float64{0.2, 0.4}
	}
	if quick {
		nodes = 256
	}
	series, err := experiments.Fig12On(engine, alg, nodes, loads, s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Fig 12 (%s): N=%d flattened butterflies across dimensionality\n", alg, nodes)
	fmt.Fprintln(w, "k\tnprime\tkprime\tsat_throughput\tlat_at_low_load")
	for _, c := range series {
		low := c.Points[0]
		lat := fmt.Sprintf("%.2f", low.AvgLatency)
		if low.Saturated {
			lat = "sat"
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%.3f\t%s\n", c.Config.K, c.Config.NPrime, c.Config.KPrime, c.SaturationThroughput, lat)
	}
	return nil
}

// fig14 demonstrates the extra-port variants: expanded scalability and
// doubled local channels.
func fig14(w *os.File, quick bool) error {
	fmt.Fprintln(w, "# Fig 14: extra-port organizations of a 4-ary 2-flat on radix-8 routers")
	base, err := flatnet.NewFlatFly(4, 2)
	if err != nil {
		return err
	}
	wide, err := flatnet.NewFlatFly(4, 2, flatnet.WithMultiplicity(2))
	if err != nil {
		return err
	}
	expanded, err := flatnet.NewOneDimFB(5, 4)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "variant\tnodes\tradix_used\tchannels")
	fmt.Fprintf(w, "baseline 4-ary 2-flat\t%d\t%d\t%d\n", base.NumNodes, base.Radix, base.Graph().CountChannels())
	fmt.Fprintf(w, "(a) redundant channels\t%d\t%d\t%d\n", wide.NumNodes, base.Radix+4, wide.Graph().CountChannels())
	fmt.Fprintf(w, "(b) expanded scalability\t%d\t%d\t%d\n", expanded.NumNodes, expanded.Radix, expanded.Graph().CountChannels())

	// Measured effect of (a): doubled channels double worst-case minimal
	// throughput.
	warm, meas := 500, 1000
	if quick {
		warm, meas = 200, 400
	}
	wc := flatnet.NewWorstCase(4, 4)
	t1, err := flatnet.SaturationThroughput(base.Graph(), mustAlg(flatnet.NewFlatFlyAlgorithm("min", base)), flatnet.DefaultConfig(), wc, warm, meas)
	if err != nil {
		return err
	}
	t2, err := flatnet.SaturationThroughput(wide.Graph(), mustAlg(flatnet.NewFlatFlyAlgorithm("min", wide)), flatnet.DefaultConfig(), wc, warm, meas)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# WC minimal throughput: baseline %.3f, redundant channels %.3f\n", t1, t2)
	return nil
}

func mustAlg(a flatnet.Algorithm, err error) flatnet.Algorithm {
	if err != nil {
		panic(err)
	}
	return a
}
