// Command paperfigs regenerates every table and figure of the paper's
// evaluation and writes the data series to text files.
//
// Usage:
//
//	paperfigs [-fig all|2|t1|t2|t3|t4|t5|4a|4b|5|6a|6b|7|10|11|12a|12b|13|14|15]
//	          [-out results] [-quick] [-parallel] [-workers N] [-cache file]
//
// -fig also accepts a comma-separated list (e.g. -fig 4a,4b,5). Analytic
// figures (2, 7, 10, 11, 13, 15 and the tables) are exact and cheap.
// Simulation figures (4, 5, 6, 12) run the cycle-accurate simulator
// through the internal/sweep engine: -parallel (default on) fans
// independent load points across a worker pool sized by -workers
// (default: GOMAXPROCS, at least 2) with bit-identical results to a
// sequential run, and -cache names a JSON-lines result cache so re-runs
// skip already-computed points. -quick substitutes a reduced-scale
// network for a fast smoke run. Output columns are tab-separated with a
// header row. Failures are collected per figure and reported together
// rather than aborting the remaining figures.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"flatnet/internal/sim"
	"flatnet/internal/sweep"
	"flatnet/internal/telemetry"
)

func main() {
	fig := flag.String("fig", "all", "figure/table id (or comma-separated ids) to regenerate, or 'all'")
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "reduced-scale smoke run for simulation figures")
	parallel := flag.Bool("parallel", true, "run simulation jobs on a worker pool")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, at least 2)")
	simW := flag.Int("simworkers", 0, "cycle-core worker goroutines inside each simulation job (bit-identical at any count; 0/1 = sequential)")
	cachePath := flag.String("cache", "", "JSON-lines result cache file ('' disables caching; also enables the warm-snapshot store beside it)")
	listen := flag.String("listen", "", "serve live metrics (/debug/vars, /debug/pprof) on this address during the run")
	flag.Parse()

	eng, closeCache, err := newEngine(*parallel, *workers, *cachePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
	if *listen != "" {
		srv, err := serveTelemetry(*listen, eng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "paperfigs: serving metrics on http://%s/debug/vars\n", srv.Addr())
	}
	simWorkers = *simW
	runErr := run(*fig, *out, *quick, eng)
	reportEngine(eng)
	closeCache()
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", runErr)
		os.Exit(1)
	}
}

// newEngine builds the sweep engine the simulation figures share. With
// -parallel off the pool is a single worker: the sequential reference
// path. The default parallel pool is never smaller than two workers so
// pool behavior is exercised even on single-core hosts.
func newEngine(parallel bool, workers int, cachePath string) (eng *sweep.Engine, closeCache func(), err error) {
	w := 1
	if parallel {
		w = workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
			if w < 2 {
				w = 2
			}
		}
	}
	eng = &sweep.Engine{Workers: w, Progress: os.Stderr}
	closeCache = func() {}
	if cachePath != "" {
		cache, err := sweep.OpenCache(cachePath)
		if err != nil {
			return nil, nil, err
		}
		eng.Cache = cache
		closeCache = func() { cache.Close() }
		// The warm-snapshot store lives beside the JSONL cache: each
		// load point's warm-up is simulated once, then restored on
		// every re-measurement of that point.
		ws, err := sweep.OpenWarmStore(cachePath + ".warm")
		if err != nil {
			closeCache()
			return nil, nil, err
		}
		eng.Warm = ws
	}
	return eng, closeCache, nil
}

// telemetryReg is process-global: the expvar namespace is write-once,
// so every run in the process shares one registry.
var telemetryReg = telemetry.NewRegistry()

// serveTelemetry publishes the engine's live counters and the simulator's
// process-wide counters, then starts the metrics endpoint.
func serveTelemetry(addr string, eng *sweep.Engine) (*telemetry.Server, error) {
	eng.PublishVars(telemetryReg)
	telemetryReg.Gauge("sim_live", func() any { return sim.Live.Snapshot() })
	if err := telemetryReg.Publish("flatnet"); err != nil {
		return nil, err
	}
	return telemetry.Serve(addr)
}

// reportEngine logs the engine's lifetime job and per-worker accounting,
// the evidence trail for parallel utilization and cache effectiveness.
func reportEngine(eng *sweep.Engine) {
	st := eng.Stats()
	if st.Jobs == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "paperfigs: engine totals: %d jobs — %d simulated, %d cache hits, %d deduped, %d skipped, %d failed\n",
		st.Jobs, st.Simulated, st.CacheHits, st.Deduped, st.Skipped, st.Failed)
	if eng.Cache != nil {
		cs := eng.Cache.Stats()
		fmt.Fprintf(os.Stderr, "paperfigs: cache: %d hits, %d misses, %d entries, %d corrupt lines dropped\n",
			cs.Hits, cs.Misses, cs.Entries, cs.Corrupt)
	}
	if eng.Warm != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: warm snapshots: %d restores, %d saved, %d warm-up cycles skipped\n",
			st.WarmHits, st.WarmPuts, st.WarmCyclesSaved)
	}
	busy := 0
	for _, w := range st.Workers {
		if w.Jobs > 0 {
			busy++
		}
	}
	fmt.Fprintf(os.Stderr, "paperfigs: workers utilized: %d of %d\n", busy, len(st.Workers))
}

// figures maps figure ids to generator functions.
var figures = map[string]func(w *os.File, quick bool) error{
	"2":   fig2,
	"3":   fig3,
	"t1":  table1,
	"t2":  table2,
	"t3":  table3,
	"t4":  table4,
	"t5":  table5,
	"4a":  func(w *os.File, q bool) error { return fig4(w, q, "UR") },
	"4b":  func(w *os.File, q bool) error { return fig4(w, q, "WC") },
	"5":   fig5,
	"6a":  func(w *os.File, q bool) error { return fig6(w, q, "UR") },
	"6b":  func(w *os.File, q bool) error { return fig6(w, q, "WC") },
	"7":   fig7,
	"89":  fig89,
	"10":  fig10,
	"11":  fig11,
	"12a": func(w *os.File, q bool) error { return fig12(w, q, "VAL") },
	"12b": func(w *os.File, q bool) error { return fig12(w, q, "MIN AD") },
	"13":  fig13,
	"14":  fig14,
	"15":  fig15,
}

// order lists figure ids in paper order for -fig all.
var order = []string{
	"2", "3", "t1", "4a", "4b", "5", "6a", "6b", "t2", "7", "t3", "89", "10",
	"11", "t4", "12a", "12b", "13", "14", "t5", "15",
}

// run regenerates the requested figures into outDir using eng for the
// simulation figures (nil = sequential). A failing figure does not stop
// the rest: every failure is collected and the aggregate returned.
func run(fig, outDir string, quick bool, eng *sweep.Engine) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	prev := engine
	engine = eng
	defer func() { engine = prev }()

	var ids []string
	for _, id := range strings.Split(fig, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = order
	}
	var errs []error
	for _, id := range ids {
		if err := runOne(id, outDir, quick); err != nil {
			errs = append(errs, err)
			fmt.Fprintf(os.Stderr, "paperfigs: figure %s failed: %v (continuing)\n", id, err)
		}
	}
	return errors.Join(errs...)
}

// runOne regenerates a single figure.
func runOne(id, outDir string, quick bool) error {
	gen, ok := figures[id]
	if !ok {
		known := make([]string, 0, len(figures))
		for k := range figures {
			known = append(known, k)
		}
		sort.Strings(known)
		return fmt.Errorf("unknown figure %q (known: %s)", id, strings.Join(known, " "))
	}
	name := filepath.Join(outDir, "fig"+id+".txt")
	if strings.HasPrefix(id, "t") {
		name = filepath.Join(outDir, "table"+id[1:]+".txt")
	}
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generating %s -> %s\n", id, name)
	if err := gen(f, quick); err != nil {
		f.Close()
		return fmt.Errorf("figure %s: %w", id, err)
	}
	return f.Close()
}
