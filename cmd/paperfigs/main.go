// Command paperfigs regenerates every table and figure of the paper's
// evaluation and writes the data series to text files.
//
// Usage:
//
//	paperfigs [-fig all|2|t1|t2|t3|t4|t5|4a|4b|5|6a|6b|7|10|11|12a|12b|13|14|15] [-out results] [-quick]
//
// Analytic figures (2, 7, 10, 11, 13, 15 and the tables) are exact and
// cheap. Simulation figures (4, 5, 6, 12) run the cycle-accurate
// simulator; -quick substitutes a reduced-scale network for a fast smoke
// run. Output columns are tab-separated with a header row.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	fig := flag.String("fig", "all", "figure/table id to regenerate, or 'all'")
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "reduced-scale smoke run for simulation figures")
	flag.Parse()

	if err := run(*fig, *out, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

// figures maps figure ids to generator functions.
var figures = map[string]func(w *os.File, quick bool) error{
	"2":   fig2,
	"3":   fig3,
	"t1":  table1,
	"t2":  table2,
	"t3":  table3,
	"t4":  table4,
	"t5":  table5,
	"4a":  func(w *os.File, q bool) error { return fig4(w, q, "UR") },
	"4b":  func(w *os.File, q bool) error { return fig4(w, q, "WC") },
	"5":   fig5,
	"6a":  func(w *os.File, q bool) error { return fig6(w, q, "UR") },
	"6b":  func(w *os.File, q bool) error { return fig6(w, q, "WC") },
	"7":   fig7,
	"89":  fig89,
	"10":  fig10,
	"11":  fig11,
	"12a": func(w *os.File, q bool) error { return fig12(w, q, "VAL") },
	"12b": func(w *os.File, q bool) error { return fig12(w, q, "MIN AD") },
	"13":  fig13,
	"14":  fig14,
	"15":  fig15,
}

// order lists figure ids in paper order for -fig all.
var order = []string{
	"2", "3", "t1", "4a", "4b", "5", "6a", "6b", "t2", "7", "t3", "89", "10",
	"11", "t4", "12a", "12b", "13", "14", "t5", "15",
}

func run(fig, outDir string, quick bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ids := []string{fig}
	if fig == "all" {
		ids = order
	}
	for _, id := range ids {
		gen, ok := figures[id]
		if !ok {
			known := make([]string, 0, len(figures))
			for k := range figures {
				known = append(known, k)
			}
			sort.Strings(known)
			return fmt.Errorf("unknown figure %q (known: %s)", id, strings.Join(known, " "))
		}
		name := filepath.Join(outDir, "fig"+id+".txt")
		if strings.HasPrefix(id, "t") {
			name = filepath.Join(outDir, "table"+id[1:]+".txt")
		}
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "generating %s -> %s\n", id, name)
		if err := gen(f, quick); err != nil {
			f.Close()
			return fmt.Errorf("figure %s: %w", id, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
