package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunAnalyticFigures generates every non-simulation figure into a
// temp directory and checks the outputs are non-empty and well-formed.
func TestRunAnalyticFigures(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"2", "3", "t1", "t2", "t3", "t4", "t5", "7", "89", "10", "11", "13"} {
		if err := run(id, dir, true, nil); err != nil {
			t.Fatalf("fig %s: %v", id, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 12 {
		t.Fatalf("expected 12 output files, got %d", len(entries))
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", e.Name())
		}
		if !strings.HasPrefix(string(data), "#") {
			t.Errorf("%s missing comment header", e.Name())
		}
	}
}

// TestRunQuickSimFigure generates one simulation figure at quick scale.
func TestRunQuickSimFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation figure in -short mode")
	}
	dir := t.TempDir()
	if err := run("14", dir, true, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig14.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "expanded scalability") {
		t.Errorf("fig14 content unexpected:\n%s", data)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("zz", t.TempDir(), true, nil); err == nil {
		t.Error("unknown figure accepted")
	}
}

// TestRunAggregatesFailures checks that one failing figure does not stop
// the rest and that every failure is reported in the aggregate error.
func TestRunAggregatesFailures(t *testing.T) {
	dir := t.TempDir()
	err := run("zz, t1 ,yy", dir, true, nil)
	if err == nil {
		t.Fatal("expected aggregated error for unknown figures")
	}
	for _, want := range []string{`"zz"`, `"yy"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregate error missing %s: %v", want, err)
		}
	}
	// The valid figure in the middle of the list was still generated.
	if _, statErr := os.Stat(filepath.Join(dir, "table1.txt")); statErr != nil {
		t.Errorf("table1.txt not generated despite failures around it: %v", statErr)
	}
}

func TestFigureRegistryCoversOrder(t *testing.T) {
	for _, id := range order {
		if _, ok := figures[id]; !ok {
			t.Errorf("order lists %q but no generator is registered", id)
		}
	}
	if len(order) != len(figures) {
		t.Errorf("order has %d entries, registry %d — keep them in sync", len(order), len(figures))
	}
}
