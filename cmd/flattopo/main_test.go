package main

import "testing"

func TestRunSummary(t *testing.T) {
	for _, topo := range []string{"ff", "butterfly", "clos", "hypercube", "torus", "ghc"} {
		if err := run(topo, 4, 2, 4, 2, false); err != nil {
			t.Errorf("%s: %v", topo, err)
		}
	}
}

func TestRunDOT(t *testing.T) {
	if err := run("ff", 4, 2, 4, 2, true); err != nil {
		t.Errorf("dot: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 4, 2, 4, 2, false); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run("ff", 1, 2, 4, 2, false); err == nil {
		t.Error("invalid parameters accepted")
	}
}
