// Command flattopo inspects a topology: prints its parameters, channel
// census and hop-count profile, or emits the router graph as Graphviz DOT.
//
// Examples:
//
//	flattopo -topo ff -k 8 -n 2
//	flattopo -topo ff -k 4 -n 3 -dot > ff.dot
//	flattopo -topo hypercube -dims 6
//	flattopo -topo torus -k 4 -n 3
package main

import (
	"flag"
	"fmt"
	"os"

	"flatnet"
	"flatnet/internal/topo"
)

func main() {
	var (
		topoName = flag.String("topo", "ff", "topology: ff | butterfly | clos | hypercube | torus | ghc")
		k        = flag.Int("k", 8, "ary")
		n        = flag.Int("n", 2, "stages / dimensions+1")
		dims     = flag.Int("dims", 6, "hypercube dimensions")
		taper    = flag.Int("taper", 2, "folded-Clos taper")
		dot      = flag.Bool("dot", false, "emit Graphviz DOT instead of a summary")
	)
	flag.Parse()
	if err := run(*topoName, *k, *n, *dims, *taper, *dot); err != nil {
		fmt.Fprintln(os.Stderr, "flattopo:", err)
		os.Exit(1)
	}
}

func run(topoName string, k, n, dims, taper int, dot bool) error {
	var t flatnet.Topology
	switch topoName {
	case "ff":
		ff, err := flatnet.NewFlatFly(k, n)
		if err != nil {
			return err
		}
		t = ff
	case "butterfly":
		b, err := flatnet.NewButterfly(k, n)
		if err != nil {
			return err
		}
		t = b
	case "clos":
		fc, err := flatnet.NewFoldedClos(k, k/taper, k, maxInt(1, k/(2*taper)))
		if err != nil {
			return err
		}
		t = fc
	case "hypercube":
		h, err := flatnet.NewHypercube(dims)
		if err != nil {
			return err
		}
		t = h
	case "torus":
		tr, err := flatnet.NewTorus(k, n)
		if err != nil {
			return err
		}
		t = tr
	case "ghc":
		g, err := flatnet.NewGHC([]int{k, k})
		if err != nil {
			return err
		}
		t = g
	default:
		return fmt.Errorf("unknown topology %q", topoName)
	}
	g := t.Graph()
	if dot {
		return topo.WriteDOT(os.Stdout, g)
	}
	fmt.Printf("topology:   %s\n", t.Name())
	fmt.Printf("nodes:      %d\n", g.NumNodes)
	fmt.Printf("routers:    %d\n", g.NumRouters())
	fmt.Printf("channels:   %d unidirectional\n", g.CountChannels())
	maxDeg := 0
	for r := 0; r < g.NumRouters(); r++ {
		if d := g.Degree(flatnet.RouterID(r)); d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("max degree: %d ports\n", maxDeg)
	if err := g.Validate(); err != nil {
		return fmt.Errorf("graph INVALID: %w", err)
	}
	fmt.Println("graph:      valid")
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
