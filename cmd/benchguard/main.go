// Command benchguard holds the simulator's hot loops to their committed
// performance baselines. It runs the guarded benchmarks (several times,
// keeping each benchmark's best run), parses the results, and compares
// them against BENCH_baseline.json at the repository root:
//
//   - more than zero allocations per cycle fails — the hot path's
//     zero-alloc contract (DESIGN.md §10) is absolute, for the sequential
//     and the sharded-parallel scheduler alike. Benchmarks in allocExempt
//     (whole-network construction per op, e.g. snapshot restore) are held
//     to ns/op only;
//   - ns/op more than the tolerance (default 10%) above a benchmark's
//     baseline fails — the cycle rate may not silently regress. The
//     parallel benchmark's tolerance is widened (see tolScale): with
//     more workers than cores its wall time is OS-scheduling noise, so
//     its gate only catches gross regressions.
//
// Guarded benchmarks: BenchmarkSimulatorCycles (the sequential cycle
// core) and BenchmarkSimulatorCyclesParallel (the 8-worker sharded
// scheduler). Absolute ns/op and the parallel speedup depend on the host
// core count, so baselines are machine-local contracts: refresh after an
// intentional performance change (or on a new machine) with `make bench`
// (or `go run ./cmd/benchguard -update`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// benchNames are the guarded benchmarks, in baseline-file order.
var benchNames = []string{
	"BenchmarkSimulatorCycles",
	"BenchmarkSimulatorCyclesParallel",
	"BenchmarkSourceOverhead",
	"BenchmarkSnapshotRestore",
}

// allocExempt marks benchmarks whose op is allocation-bearing by design
// — snapshot restore materializes an entire network per op — so the
// zero-alloc gate does not apply; their ns/op gate still does.
var allocExempt = map[string]bool{
	"BenchmarkSnapshotRestore": true,
}

// tolScale widens the ns/op tolerance for benchmarks whose wall time is
// inherently noisy. The parallel benchmark runs 8 worker goroutines; on
// hosts with fewer cores the OS scheduler's interleaving dominates its
// wall time, with run-to-run swings far beyond the default 10%. Its
// gate therefore catches gross regressions only — the fine-grained
// performance contract is the sequential benchmark, and correctness is
// held by the bit-identity tests. The zero-alloc gate remains absolute
// for every benchmark regardless of scale.
var tolScale = map[string]float64{
	"BenchmarkSimulatorCyclesParallel": 5,
}

// baseline is the committed performance contract for one benchmark.
type baseline struct {
	Benchmark   string  `json:"benchmark"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Note        string  `json:"note,omitempty"`
}

// result is one parsed benchmark measurement.
type result struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
}

func main() {
	var (
		update    = flag.Bool("update", false, "rewrite the baseline from current measurements")
		file      = flag.String("baseline", "BENCH_baseline.json", "baseline file path")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional ns/op regression")
		count     = flag.Int("count", 3, "benchmark repetitions (best run is kept)")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime value")
	)
	flag.Parse()
	if err := run(*update, *file, *tolerance, *count, *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(update bool, file string, tolerance float64, count int, benchtime string) error {
	best, err := measure(count, benchtime)
	if err != nil {
		return err
	}
	for _, name := range benchNames {
		r := best[name]
		fmt.Printf("%s: %.0f ns/op, %.0f B/op, %g allocs/op (best of %d)\n",
			name, r.nsPerOp, r.bytesPerOp, r.allocsPerOp, count)
	}

	if update {
		out := make([]baseline, 0, len(benchNames))
		for _, name := range benchNames {
			r := best[name]
			out = append(out, baseline{
				Benchmark:   name,
				NsPerOp:     r.nsPerOp,
				BytesPerOp:  r.bytesPerOp,
				AllocsPerOp: r.allocsPerOp,
				Note:        "refresh with `make bench` after intentional performance changes",
			})
		}
		raw, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(file, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("baseline updated:", file)
		return nil
	}

	bases, err := readBaselines(file)
	if err != nil {
		return err
	}
	for _, name := range benchNames {
		r := best[name]
		base, ok := bases[name]
		if !ok {
			return fmt.Errorf("baseline %s has no entry for %s (refresh it with `make bench`)", file, name)
		}
		if r.allocsPerOp > 0 && !allocExempt[name] {
			return fmt.Errorf("%s allocates: %g allocs/op, the steady-state contract is 0", name, r.allocsPerOp)
		}
		tol := tolerance
		if s, ok := tolScale[name]; ok {
			tol *= s
		}
		limit := base.NsPerOp * (1 + tol)
		if r.nsPerOp > limit {
			return fmt.Errorf("%s regressed: %.0f ns/op vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
				name, r.nsPerOp, base.NsPerOp, 100*(r.nsPerOp/base.NsPerOp-1), 100*tol)
		}
		fmt.Printf("%s within baseline: %.0f ns/op vs %.0f (%+.1f%%), %g allocs/op\n",
			name, r.nsPerOp, base.NsPerOp, 100*(r.nsPerOp/base.NsPerOp-1), r.allocsPerOp)
	}
	return nil
}

// readBaselines parses the baseline file, accepting both the current
// JSON-array form and the legacy single-object form (one benchmark).
func readBaselines(file string) (map[string]baseline, error) {
	raw, err := os.ReadFile(file)
	if err != nil {
		return nil, fmt.Errorf("%w (generate it with `make bench`)", err)
	}
	var list []baseline
	if err := json.Unmarshal(raw, &list); err != nil {
		var one baseline
		if oerr := json.Unmarshal(raw, &one); oerr != nil {
			return nil, fmt.Errorf("corrupt baseline %s: %w", file, err)
		}
		list = []baseline{one}
	}
	out := make(map[string]baseline, len(list))
	for _, b := range list {
		out[b.Benchmark] = b
	}
	return out, nil
}

// measure runs every guarded benchmark count times and returns each
// benchmark's fastest run (minimum ns/op), the least noisy estimator of
// its true cost.
func measure(count int, benchtime string) (map[string]result, error) {
	pattern := "^(" + strings.Join(benchNames, "|") + ")$"
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench failed: %v\n%s", err, out)
	}
	best := make(map[string]result, len(benchNames))
	for _, line := range strings.Split(string(out), "\n") {
		name, r, ok := parseLine(line)
		if !ok {
			continue
		}
		if prev, found := best[name]; !found || r.nsPerOp < prev.nsPerOp {
			best[name] = r
			// The alloc figures accompany the fastest run; steady-state
			// allocations do not vary between runs anyway.
		}
	}
	for _, name := range benchNames {
		if _, found := best[name]; !found {
			return nil, fmt.Errorf("no %s result in go test output:\n%s", name, out)
		}
	}
	return best, nil
}

// parseLine extracts a benchmark name and its (ns/op, B/op, allocs/op)
// from one `go test -bench` output line, e.g.:
//
//	BenchmarkSimulatorCycles-8  3114  371962 ns/op  1024 nodes  259 B/op  0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so names match exactly (prefix
// matching would conflate BenchmarkSimulatorCycles with its Parallel
// sibling).
func parseLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", result{}, false
	}
	name, _, _ := strings.Cut(fields[0], "-")
	known := false
	for _, b := range benchNames {
		if name == b {
			known = true
			break
		}
	}
	if !known {
		return "", result{}, false
	}
	var r result
	seen := 0
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.nsPerOp = v
			seen++
		case "B/op":
			r.bytesPerOp = v
			seen++
		case "allocs/op":
			r.allocsPerOp = v
			seen++
		}
	}
	return name, r, seen == 3
}
