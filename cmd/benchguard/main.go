// Command benchguard holds the simulator's hot loop to its committed
// performance baseline. It runs BenchmarkSimulatorCycles (several times,
// keeping the best run), parses the result, and compares it against
// BENCH_baseline.json at the repository root:
//
//   - more than zero allocations per cycle always fails — the hot path's
//     zero-alloc contract (DESIGN.md §10) is absolute;
//   - ns/op more than the tolerance (default 10%) above the baseline
//     fails — the cycle rate may not silently regress.
//
// Refresh the baseline after an intentional performance change with
// `make bench` (or `go run ./cmd/benchguard -update`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

const benchName = "BenchmarkSimulatorCycles"

// baseline is the committed performance contract for one benchmark.
type baseline struct {
	Benchmark   string  `json:"benchmark"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Note        string  `json:"note,omitempty"`
}

// result is one parsed benchmark measurement.
type result struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
}

func main() {
	var (
		update    = flag.Bool("update", false, "rewrite the baseline from current measurements")
		file      = flag.String("baseline", "BENCH_baseline.json", "baseline file path")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional ns/op regression")
		count     = flag.Int("count", 3, "benchmark repetitions (best run is kept)")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime value")
	)
	flag.Parse()
	if err := run(*update, *file, *tolerance, *count, *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(update bool, file string, tolerance float64, count int, benchtime string) error {
	best, err := measure(count, benchtime)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %.0f ns/op, %.0f B/op, %g allocs/op (best of %d)\n",
		benchName, best.nsPerOp, best.bytesPerOp, best.allocsPerOp, count)

	if update {
		b := baseline{
			Benchmark:   benchName,
			NsPerOp:     best.nsPerOp,
			BytesPerOp:  best.bytesPerOp,
			AllocsPerOp: best.allocsPerOp,
			Note:        "refresh with `make bench` after intentional performance changes",
		}
		out, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(file, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("baseline updated:", file)
		return nil
	}

	raw, err := os.ReadFile(file)
	if err != nil {
		return fmt.Errorf("%w (generate it with `make bench`)", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("corrupt baseline %s: %w", file, err)
	}
	if base.Benchmark != benchName {
		return fmt.Errorf("baseline %s pins %q, want %q", file, base.Benchmark, benchName)
	}
	if best.allocsPerOp > 0 {
		return fmt.Errorf("hot loop allocates: %g allocs/op, the steady-state contract is 0", best.allocsPerOp)
	}
	limit := base.NsPerOp * (1 + tolerance)
	if best.nsPerOp > limit {
		return fmt.Errorf("hot loop regressed: %.0f ns/op vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
			best.nsPerOp, base.NsPerOp, 100*(best.nsPerOp/base.NsPerOp-1), 100*tolerance)
	}
	fmt.Printf("within baseline: %.0f ns/op vs %.0f (%+.1f%%), 0 allocs/op\n",
		best.nsPerOp, base.NsPerOp, 100*(best.nsPerOp/base.NsPerOp-1))
	return nil
}

// measure runs the benchmark count times and returns the fastest run
// (minimum ns/op), which is the least noisy estimator of the true cost.
func measure(count int, benchtime string) (result, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+benchName+"$", "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return result{}, fmt.Errorf("go test -bench failed: %v\n%s", err, out)
	}
	var best result
	found := false
	for _, line := range strings.Split(string(out), "\n") {
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		if !found || r.nsPerOp < best.nsPerOp {
			best = r
			// The alloc figures accompany the fastest run; steady-state
			// allocations do not vary between runs anyway.
		}
		found = true
	}
	if !found {
		return result{}, fmt.Errorf("no %s result in go test output:\n%s", benchName, out)
	}
	return best, nil
}

// parseLine extracts (ns/op, B/op, allocs/op) from one `go test -bench`
// output line, e.g.:
//
//	BenchmarkSimulatorCycles  3114  371962 ns/op  1024 nodes  259 B/op  0 allocs/op
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], benchName) {
		return result{}, false
	}
	var r result
	seen := 0
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.nsPerOp = v
			seen++
		case "B/op":
			r.bytesPerOp = v
			seen++
		case "allocs/op":
			r.allocsPerOp = v
			seen++
		}
	}
	return r, seen == 3
}
