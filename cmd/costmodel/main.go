// Command costmodel prints the paper's §4 cost comparison and §5.3 power
// comparison for a set of network sizes, plus the fixed-N dimensionality
// study of Fig. 13.
//
// Examples:
//
//	costmodel                       # the standard sweep
//	costmodel -sizes 1024,4096
//	costmodel -fixedn 4096          # Fig 13: cost vs dimensionality
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flatnet"
)

func main() {
	sizes := flag.String("sizes", "512,1024,2048,4096,8192,16384,32768,65536", "comma-separated node counts")
	fixedN := flag.Int("fixedn", 0, "run the Fig 13 fixed-N dimensionality study at this size instead")
	flag.Parse()

	if err := run(*sizes, *fixedN); err != nil {
		fmt.Fprintln(os.Stderr, "costmodel:", err)
		os.Exit(1)
	}
}

func run(sizesCSV string, fixedN int) error {
	cm, pm, pk := flatnet.DefaultCostModel(), flatnet.DefaultPowerModel(), flatnet.DefaultPackaging()
	if fixedN > 0 {
		cfgs := flatnet.ConfigsForN(fixedN)
		if len(cfgs) == 0 {
			return fmt.Errorf("no flattened-butterfly configurations for N=%d", fixedN)
		}
		fmt.Printf("Fig 13: N=%d flattened butterflies as dimensionality increases\n", fixedN)
		fmt.Printf("%-4s %-4s %-7s %-14s %-14s\n", "n'", "k", "k'", "$/node", "avg cable (m)")
		for _, c := range cfgs {
			b := flatnet.FlatFlyBOMForConfig(fixedN, c.K, c.NPrime, pk)
			br := flatnet.PriceBOM(b, cm, pk)
			fmt.Printf("%-4d %-4d %-7d %-14.1f %-14.2f\n", c.NPrime, c.K, c.KPrime, br.TotalPerNode, br.AvgCableLength)
		}
		return nil
	}

	var sizes []int
	for _, s := range strings.Split(sizesCSV, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad size %q: %w", s, err)
		}
		sizes = append(sizes, v)
	}
	costs, err := flatnet.CostSweep(sizes, cm, pk)
	if err != nil {
		return err
	}
	powers, err := flatnet.PowerSweep(sizes, pm, pk)
	if err != nil {
		return err
	}
	fmt.Println("Cost per node ($), Fig 11:")
	fmt.Printf("%-8s %-10s %-12s %-11s %-11s %-8s\n", "N", "flatfly", "folded-clos", "butterfly", "hypercube", "savings")
	for _, r := range costs {
		fmt.Printf("%-8d %-10.1f %-12.1f %-11.1f %-11.1f %.1f%%\n",
			r.N, r.FlatFly.TotalPerNode, r.FoldedClos.TotalPerNode,
			r.Butterfly.TotalPerNode, r.Hypercube.TotalPerNode, 100*r.SavingsVsClos())
	}
	fmt.Println()
	fmt.Println("Power per node (W), Fig 15:")
	fmt.Printf("%-8s %-10s %-12s %-11s %-11s %-8s\n", "N", "flatfly", "folded-clos", "butterfly", "hypercube", "savings")
	for _, r := range powers {
		fmt.Printf("%-8d %-10.2f %-12.2f %-11.2f %-11.2f %.1f%%\n",
			r.N, r.FlatFly.TotalPerNode, r.FoldedClos.TotalPerNode,
			r.Butterfly.TotalPerNode, r.Hypercube.TotalPerNode, 100*r.SavingsVsClos())
	}
	return nil
}
