package main

import "testing"

func TestRunSweep(t *testing.T) {
	if err := run("1024,4096", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunFixedN(t *testing.T) {
	if err := run("", 4096); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("abc", 0); err == nil {
		t.Error("bad size list accepted")
	}
	if err := run("", 17); err == nil {
		t.Error("size with no configurations accepted")
	}
	if err := run("1099511627776", 0); err == nil {
		t.Error("impossible size accepted")
	}
}
