// Command sweep runs a grid of independent simulation jobs — the cross
// product of routing algorithms, traffic patterns and offered loads on
// one network — through the internal/sweep orchestration engine, and
// emits tab-separated series in the same format as results/*.txt.
//
// Usage:
//
//	sweep [-net flatfly] [-k 16] [-n 2] \
//	      [-algs "MIN AD,VAL,UGAL,UGAL-S,CLOS AD"] [-patterns UR,WC] \
//	      [-loads 0.1,0.3,0.5,0.7,0.9] [-warmup 400] [-measure 400] \
//	      [-maxcycles 4000] [-seed 1] [-buf 32] [-sat] \
//	      [-workers N] [-cache file] [-timeout 0] [-out file]
//
// Every (algorithm, pattern, load) tuple is one job with a stable
// content hash; -cache names a JSON-lines file where results persist, so
// re-running a grid recomputes only the points whose spec changed.
// -workers sizes the pool (0 = GOMAXPROCS); results are bit-identical at
// any worker count. -sat appends a saturation-throughput measurement per
// series. Progress, ETA and per-worker throughput go to stderr.
//
// -analytic replaces the simulation grid with one graph-analytic
// evaluation of the network (algorithms, patterns and loads are
// ignored): diameter, average hops, path diversity, bisection bounds
// and the zero-load latency, in the same Result shape — and the same
// cache — the simulated jobs use. Slim Fly and dragonfly networks take
// -net slimfly -q Q [-p P] and -net dragonfly -gh H [-ga A] [-p P].
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flatnet/internal/sim"
	"flatnet/internal/sweep"
	"flatnet/internal/telemetry"
)

// cliConfig carries the parsed grid spec.
type cliConfig struct {
	net        string
	k, n       int
	q          int
	ga, gh     int
	conc       int
	analytic   bool
	algs       []string
	patterns   []string
	loads      []float64
	warmup     int
	measure    int
	maxCycles  int
	seed       uint64
	buf        int
	sat        bool
	workers    int
	simWorkers int
	cachePath  string
	jobTimeout time.Duration
	listen     string
	check      bool
}

func main() {
	var (
		cfg      cliConfig
		algs     = flag.String("algs", "MIN AD,VAL,UGAL,UGAL-S,CLOS AD", "comma-separated routing algorithms")
		patterns = flag.String("patterns", "UR,WC", "comma-separated traffic patterns (UR,WC,BC,TP,SH,TOR,RP)")
		loads    = flag.String("loads", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,0.95,0.98", "comma-separated offered loads, ascending")
		seed     = flag.Uint64("seed", 1, "simulation seed (every job derives its RNG from this)")
		outPath  = flag.String("out", "", "output file ('' = stdout)")
	)
	flag.StringVar(&cfg.net, "net", "flatfly", "network constructor: flatfly, butterfly, foldedclos, hypercube, slimfly, dragonfly")
	flag.IntVar(&cfg.k, "k", 16, "network ary k")
	flag.IntVar(&cfg.n, "n", 2, "network dimension count n")
	flag.IntVar(&cfg.q, "q", 0, "slimfly: MMS field size (odd prime power)")
	flag.IntVar(&cfg.gh, "gh", 0, "dragonfly: global channels per router h")
	flag.IntVar(&cfg.ga, "ga", 0, "dragonfly: routers per group a (0 = balanced 2h)")
	flag.IntVar(&cfg.conc, "p", 0, "slimfly/dragonfly: terminals per router (0 = balanced default)")
	flag.BoolVar(&cfg.analytic, "analytic", false, "evaluate the network graph-analytically instead of running the simulation grid")
	flag.IntVar(&cfg.warmup, "warmup", 400, "warmup window in cycles")
	flag.IntVar(&cfg.measure, "measure", 400, "measurement window in cycles")
	flag.IntVar(&cfg.maxCycles, "maxcycles", 4000, "per-job cycle budget (0 = simulator default)")
	flag.IntVar(&cfg.buf, "buf", 32, "flit buffering per input port")
	flag.BoolVar(&cfg.sat, "sat", true, "measure saturation throughput per series")
	flag.IntVar(&cfg.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.simWorkers, "simworkers", 1, "cycle-core worker goroutines inside each simulation (results are bit-identical at any count; excluded from cache hashes)")
	flag.StringVar(&cfg.cachePath, "cache", "", "JSON-lines result cache file ('' disables caching)")
	flag.DurationVar(&cfg.jobTimeout, "timeout", 0, "per-job wall-clock budget (0 = none)")
	flag.StringVar(&cfg.listen, "listen", "", "serve live metrics (/debug/vars, /debug/pprof) on this address during the run")
	flag.BoolVar(&cfg.check, "check", false, "run every job under the runtime invariant sanitizer (violations fail the job; cache hits are served unchecked)")
	flag.Parse()

	cfg.algs = splitList(*algs)
	cfg.patterns = splitList(*patterns)
	cfg.seed = *seed
	var err error
	if cfg.loads, err = parseLoads(*loads); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	// First SIGINT/SIGTERM cancels the grid — in-flight jobs stop at
	// their next poll and the JSONL result cache flushes what completed;
	// a second signal forces immediate exit.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "sweep: interrupted, flushing cache (signal again to force)")
		cancel()
		<-sigs
		fmt.Fprintln(os.Stderr, "sweep: forced exit")
		os.Exit(130)
	}()

	if err := run(ctx, cfg, out, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// telemetryReg is process-global: the expvar namespace is write-once,
// so every run in the process shares one registry.
var telemetryReg = telemetry.NewRegistry()

// run executes the grid and writes one series block per pattern.
func run(ctx context.Context, cfg cliConfig, out, progress io.Writer) error {
	if cfg.analytic {
		return runAnalytic(ctx, cfg, out)
	}
	if len(cfg.algs) == 0 || len(cfg.patterns) == 0 || len(cfg.loads) == 0 {
		return fmt.Errorf("grid is empty: need at least one algorithm, pattern and load")
	}
	eng := &sweep.Engine{Workers: cfg.workers, Progress: progress, JobTimeout: cfg.jobTimeout, Check: cfg.check}
	if cfg.cachePath != "" {
		cache, err := sweep.OpenCache(cfg.cachePath)
		if err != nil {
			return err
		}
		defer cache.Close()
		eng.Cache = cache
	}
	if cfg.listen != "" {
		eng.PublishVars(telemetryReg)
		telemetryReg.Gauge("sim_live", func() any { return sim.Live.Snapshot() })
		if err := telemetryReg.Publish("flatnet"); err != nil {
			return err
		}
		srv, err := telemetry.Serve(cfg.listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(progress, "sweep: serving metrics on http://%s/debug/vars\n", srv.Addr())
	}

	// One series per (pattern, algorithm), all submitted as a single
	// batch so the whole grid shares the worker pool.
	var specs []sweep.SeriesSpec
	for _, pat := range cfg.patterns {
		for _, alg := range cfg.algs {
			specs = append(specs, sweep.SeriesSpec{
				Base: sweep.Job{
					Net: cfg.net, K: cfg.k, N: cfg.n,
					Q: cfg.q, A: cfg.ga, H: cfg.gh, P: cfg.conc,
					Alg: alg, Pattern: pat,
					Warmup: cfg.warmup, Measure: cfg.measure, MaxCycles: cfg.maxCycles,
					Seed: cfg.seed, BufPerPort: cfg.buf,
					Workers: cfg.simWorkers,
				},
				Loads:      cfg.loads,
				Saturation: cfg.sat,
			})
		}
	}
	res, err := eng.RunSeries(ctx, specs)
	if err != nil {
		return err
	}

	for pi, pat := range cfg.patterns {
		if pi > 0 {
			fmt.Fprintln(out)
		}
		block := res[pi*len(cfg.algs) : (pi+1)*len(cfg.algs)]
		fmt.Fprintf(out, "# sweep: %s %s pattern %s seed %d\n", cfg.net, cfg.describe(), pat, cfg.seed)
		fmt.Fprint(out, "load")
		for _, alg := range cfg.algs {
			fmt.Fprintf(out, "\tlat_%s", sanitize(alg))
		}
		fmt.Fprintln(out)
		for li, l := range cfg.loads {
			fmt.Fprintf(out, "%.2f", l)
			for ai := range cfg.algs {
				p := block[ai].Points[li]
				if p.Saturated {
					fmt.Fprint(out, "\tsat")
				} else {
					fmt.Fprintf(out, "\t%.2f", p.AvgLatency)
				}
			}
			fmt.Fprintln(out)
		}
		if cfg.sat {
			fmt.Fprintln(out, "# saturation throughput (accepted fraction of capacity at full offered load)")
			for ai, alg := range cfg.algs {
				fmt.Fprintf(out, "# %s\t%.3f\n", alg, block[ai].SaturationThroughput)
			}
		}
	}

	st := eng.Stats()
	fmt.Fprintf(progress, "sweep: grid done: %d jobs — %d simulated, %d cache hits, %d skipped\n",
		st.Jobs, st.Simulated, st.CacheHits, st.Skipped)
	return nil
}

// describe renders the network parameters that matter for cfg.net,
// with balanced defaults resolved the same way the jobs resolve them.
func (cfg cliConfig) describe() string {
	j := sweep.Job{Net: cfg.net, K: cfg.k, N: cfg.n, Q: cfg.q, A: cfg.ga, H: cfg.gh, P: cfg.conc}.Normalize()
	switch j.Net {
	case "slimfly":
		return fmt.Sprintf("q=%d p=%d", j.Q, j.P)
	case "dragonfly":
		return fmt.Sprintf("h=%d a=%d p=%d", j.H, j.A, j.P)
	default:
		return fmt.Sprintf("k=%d n=%d", j.K, j.N)
	}
}

// runAnalytic evaluates the network as a single graph-analytic job —
// through the same engine, so -cache and -workers behave as usual.
func runAnalytic(ctx context.Context, cfg cliConfig, out io.Writer) error {
	eng := &sweep.Engine{Workers: cfg.workers, JobTimeout: cfg.jobTimeout}
	if cfg.cachePath != "" {
		cache, err := sweep.OpenCache(cfg.cachePath)
		if err != nil {
			return err
		}
		defer cache.Close()
		eng.Cache = cache
	}
	job := sweep.Job{
		Net: cfg.net, K: cfg.k, N: cfg.n,
		Q: cfg.q, A: cfg.ga, H: cfg.gh, P: cfg.conc,
		Mode: sweep.ModeAnalytic, Seed: cfg.seed,
	}
	start := time.Now()
	res, err := eng.Run(ctx, []sweep.Job{job})
	if err != nil {
		return err
	}
	r := res[0]
	m := r.Analytic
	if m == nil {
		return fmt.Errorf("job %s returned no analytic metrics", r.Hash[:12])
	}
	fmt.Fprintf(out, "# analytic: %s (job %s, %v)\n", cfg.net, r.Job.Hash()[:12], time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "nodes\t%d\n", m.Nodes)
	fmt.Fprintf(out, "routers\t%d\n", m.Routers)
	fmt.Fprintf(out, "channels\t%d\n", m.Channels)
	fmt.Fprintf(out, "diameter\t%d\n", m.Diameter)
	fmt.Fprintf(out, "avg_hops\t%.4f\n", m.AvgHops)
	fmt.Fprintf(out, "path_diversity\t%.3f\n", m.PathDiversity)
	fmt.Fprintf(out, "bisection_lower\t%.0f\n", m.BisectionLowerChannels)
	fmt.Fprintf(out, "bisection_upper\t%.0f\n", m.BisectionUpperChannels)
	fmt.Fprintf(out, "zero_load_latency\t%.2f\n", r.Point.AvgLatency)
	return nil
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseLoads parses the ascending offered-load list.
func parseLoads(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		l, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad load %q: %w", part, err)
		}
		if l < 0 || l > 1 {
			return nil, fmt.Errorf("load %v out of [0,1]", l)
		}
		if len(out) > 0 && l <= out[len(out)-1] {
			return nil, fmt.Errorf("loads must be strictly ascending (%v after %v)", l, out[len(out)-1])
		}
		out = append(out, l)
	}
	return out, nil
}

// sanitize maps a series label to a header-safe column name, matching
// the results/*.txt convention.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '-' || r == '(' || r == ')' || r == ',' || r == '=':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
