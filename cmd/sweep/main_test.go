package main

import (
	"bytes"
	"context"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

// tinyGrid is a sub-second grid: 2 algorithms x 2 patterns x 2 loads on
// the 4-ary 2-flat.
func tinyGrid(cachePath string) cliConfig {
	return cliConfig{
		net: "flatfly", k: 4, n: 2,
		algs:     []string{"MIN AD", "CLOS AD"},
		patterns: []string{"UR", "WC"},
		loads:    []float64{0.2, 0.5},
		warmup:   100, measure: 100, maxCycles: 2000,
		seed: 1, buf: 32, sat: true,
		workers: 2, cachePath: cachePath,
	}
}

func TestRunEmitsSeriesBlocks(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), tinyGrid(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# sweep: flatfly k=4 n=2 pattern UR seed 1",
		"# sweep: flatfly k=4 n=2 pattern WC seed 1",
		"load\tlat_MIN_AD\tlat_CLOS_AD",
		"# saturation throughput",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Two data rows per pattern block, tab-separated with one column per
	// algorithm — the results/*.txt shape.
	rows := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "0.") {
			rows++
			if got := len(strings.Split(line, "\t")); got != 3 {
				t.Errorf("row %q has %d columns, want 3", line, got)
			}
		}
	}
	if rows != 4 {
		t.Errorf("expected 4 data rows, got %d", rows)
	}
}

func TestRunWarmCacheRerunIsIdentical(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "grid.jsonl")
	var cold, warm bytes.Buffer
	var coldLog, warmLog bytes.Buffer
	if err := run(context.Background(), tinyGrid(cache), &cold, &coldLog); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), tinyGrid(cache), &warm, &warmLog); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Errorf("warm-cache output differs from cold output:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
	if !strings.Contains(warmLog.String(), "0 simulated") {
		t.Errorf("warm re-run should simulate nothing:\n%s", warmLog.String())
	}
}

func TestRunRejectsEmptyGrid(t *testing.T) {
	cfg := tinyGrid("")
	cfg.loads = nil
	if err := run(context.Background(), cfg, io.Discard, io.Discard); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestParseLoads(t *testing.T) {
	if got, err := parseLoads("0.1, 0.5,0.9"); err != nil || len(got) != 3 {
		t.Errorf("parseLoads: %v %v", got, err)
	}
	for _, bad := range []string{"0.5,0.1", "1.5", "x"} {
		if _, err := parseLoads(bad); err == nil {
			t.Errorf("parseLoads accepted %q", bad)
		}
	}
}
