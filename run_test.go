package flatnet_test

import (
	"testing"

	"flatnet"
)

// TestRunDefaults exercises the zero-option form: 50% uniform load on
// the default router configuration.
func TestRunDefaults(t *testing.T) {
	ff, err := flatnet.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := flatnet.Run(ff, flatnet.NewClosAD(ff))
	if err != nil {
		t.Fatal(err)
	}
	if res.Load != 0.5 {
		t.Fatalf("default load = %v, want 0.5", res.Load)
	}
	if res.Saturated {
		t.Fatal("50% uniform load saturated CLOS AD")
	}
	if res.MeasuredDelivered == 0 || res.MeasuredDelivered != res.MeasuredCreated {
		t.Fatalf("measured packets not drained: %d/%d", res.MeasuredDelivered, res.MeasuredCreated)
	}
}

// TestRunMatchesRunLoadPoint pins Run as a pure front end: the same
// options must give bit-identical results to the positional RunLoadPoint
// call it wraps.
func TestRunMatchesRunLoadPoint(t *testing.T) {
	ff, err := flatnet.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	wc := flatnet.NewWorstCase(ff.K, ff.NumRouters)
	got, err := flatnet.Run(ff, flatnet.NewUGALS(ff),
		flatnet.WithLoad(0.3),
		flatnet.WithPattern(wc),
		flatnet.WithWarmup(300),
		flatnet.WithMeasure(300),
		flatnet.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := flatnet.DefaultConfig()
	cfg.Seed = 7
	want, err := flatnet.RunLoadPoint(ff.Graph(), flatnet.NewUGALS(ff), cfg, flatnet.RunConfig{
		Load: 0.3, Pattern: wc, Warmup: 300, Measure: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Run diverged from RunLoadPoint:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunWithCheckAndTelemetry exercises the instrumentation options
// together: the sanitizer must stay silent on a clean run and the probes
// must be observable, without perturbing the measured results.
func TestRunWithCheckAndTelemetry(t *testing.T) {
	ff, err := flatnet.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := flatnet.Run(ff, flatnet.NewMinAD(ff),
		flatnet.WithLoad(0.4), flatnet.WithWarmup(300), flatnet.WithMeasure(300))
	if err != nil {
		t.Fatal(err)
	}
	var probed *flatnet.Probes
	res, err := flatnet.Run(ff, flatnet.NewMinAD(ff),
		flatnet.WithLoad(0.4), flatnet.WithWarmup(300), flatnet.WithMeasure(300),
		flatnet.WithCheck(flatnet.CheckConfig{}),
		flatnet.WithTelemetry(flatnet.ProbeConfig{}),
		flatnet.WithObserve(func(n *flatnet.Network) { probed = n.Probes() }))
	if err != nil {
		t.Fatal(err)
	}
	if res != base {
		t.Fatalf("instrumentation perturbed the run:\n got %+v\nwant %+v", res, base)
	}
	if probed == nil || probed.Samples == 0 {
		t.Fatal("probes not attached or never sampled")
	}
}

// TestRunStop verifies the cancellation hook aborts with ErrStopped.
func TestRunStop(t *testing.T) {
	ff, err := flatnet.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = flatnet.Run(ff, flatnet.NewMinAD(ff), flatnet.WithStop(func() bool { return true }))
	if err == nil {
		t.Fatal("stop hook did not abort the run")
	}
}

// TestRunValidation covers nil arguments.
func TestRunValidation(t *testing.T) {
	ff, err := flatnet.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flatnet.Run(nil, flatnet.NewMinAD(ff)); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := flatnet.Run(ff, nil); err == nil {
		t.Error("nil algorithm accepted")
	}
}
