// Quickstart: build the paper's 32-ary 2-flat flattened butterfly
// (1024 nodes on 32 radix-63 routers), route it with CLOS AD, and measure
// latency and throughput at a moderate uniform-random load.
package main

import (
	"fmt"
	"log"

	"flatnet"
)

func main() {
	// A k-ary n-flat: k terminals per router, k^(n-1) routers, n-1
	// inter-router dimensions. The 32-ary 2-flat is the network of the
	// paper's §3.2 evaluation.
	ff, err := flatnet.NewFlatFly(32, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d nodes, %d routers, radix k' = %d, %d minimal route(s) between distant routers\n",
		ff.Name(), ff.NumNodes, ff.NumRouters, ff.Radix, ff.MinimalRouteCount(0, 1))

	// CLOS AD is the paper's best routing algorithm: globally adaptive,
	// non-minimal when beneficial, sequential allocation.
	alg := flatnet.NewClosAD(ff)

	// flatnet.Run applies the §3.2 warm-up/measure/drain methodology;
	// unset options default to uniform-random traffic on the paper's
	// router configuration.
	res, err := flatnet.Run(ff, alg,
		flatnet.WithLoad(0.5),
		flatnet.WithWarmup(1000),
		flatnet.WithMeasure(1000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offered load 0.50 (uniform random): avg latency %.2f cycles (p99 %d), accepted %.3f flits/node/cycle\n",
		res.AvgLatency, res.P99Latency, res.AcceptedRate)

	// The same network saturates near 100% of capacity on benign traffic.
	sat, err := flatnet.SaturationThroughput(ff.Graph(), alg, flatnet.DefaultConfig(),
		flatnet.NewUniform(ff.NumNodes), 1000, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saturation throughput on uniform random: %.3f of capacity\n", sat)
}
