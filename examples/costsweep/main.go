// Cost and power sweep (the paper's §4/§5.3, Figs. 11 and 15): price the
// four topologies across machine sizes with the Table 2/3/5 models, and
// show the fixed-N dimensionality trade-off of Fig. 13.
package main

import (
	"fmt"
	"log"

	"flatnet"
)

func main() {
	cm, pwm, pk := flatnet.DefaultCostModel(), flatnet.DefaultPowerModel(), flatnet.DefaultPackaging()
	sizes := []int{1024, 4096, 16384, 65536}

	fmt.Println("cost per node ($) at constant bisection bandwidth (Fig 11):")
	fmt.Printf("%-8s %-9s %-12s %-10s %-10s %s\n", "N", "flatfly", "folded-clos", "butterfly", "hypercube", "FB savings")
	costs, err := flatnet.CostSweep(sizes, cm, pk)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range costs {
		fmt.Printf("%-8d %-9.1f %-12.1f %-10.1f %-10.1f %.0f%%\n", c.N,
			c.FlatFly.TotalPerNode, c.FoldedClos.TotalPerNode,
			c.Butterfly.TotalPerNode, c.Hypercube.TotalPerNode, 100*c.SavingsVsClos())
	}

	fmt.Println("\npower per node (W), dedicated SerDes for local links (Fig 15):")
	fmt.Printf("%-8s %-9s %-12s %-10s %-10s %s\n", "N", "flatfly", "folded-clos", "butterfly", "hypercube", "FB savings")
	powers, err := flatnet.PowerSweep(sizes, pwm, pk)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range powers {
		fmt.Printf("%-8d %-9.2f %-12.2f %-10.2f %-10.2f %.0f%%\n", p.N,
			p.FlatFly.TotalPerNode, p.FoldedClos.TotalPerNode,
			p.Butterfly.TotalPerNode, p.Hypercube.TotalPerNode, 100*p.SavingsVsClos())
	}

	fmt.Println("\nfixed N = 4096: the dimensionality trade-off (Fig 13 / Table 4):")
	fmt.Printf("%-5s %-5s %-5s %-10s %s\n", "n'", "k", "k'", "$/node", "avg cable (m)")
	for _, c := range flatnet.ConfigsForN(4096) {
		b := flatnet.FlatFlyBOMForConfig(4096, c.K, c.NPrime, pk)
		br := flatnet.PriceBOM(b, cm, pk)
		fmt.Printf("%-5d %-5d %-5d %-10.1f %.2f\n", c.NPrime, c.K, c.KPrime, br.TotalPerNode, br.AvgCableLength)
	}
	fmt.Println("\nthe lowest dimensionality (highest radix) gives both the lowest cost and the")
	fmt.Println("lowest latency: high-radix routers are what make the flattened butterfly work.")
}
