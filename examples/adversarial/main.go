// Adversarial-traffic study (the paper's §3.2 evaluation in miniature):
// run all five flattened-butterfly routing algorithms on the worst-case
// pattern — every node attached to router R_i sends to a random node on
// router R_{i+1} — and show that minimal routing collapses to ~1/k of
// capacity while non-minimal global adaptive routing sustains ~50%; then
// run small worst-case batches to expose the transient load imbalance of
// greedy allocation (Fig. 5).
package main

import (
	"fmt"
	"log"

	"flatnet"
)

func main() {
	ff, err := flatnet.NewFlatFly(16, 2) // 256 nodes: quick to simulate
	if err != nil {
		log.Fatal(err)
	}
	wc := flatnet.NewWorstCase(ff.K, ff.NumRouters)
	cfg := flatnet.DefaultConfig()

	fmt.Printf("%s, worst-case traffic (router i -> router i+1)\n\n", ff.Name())
	fmt.Printf("%-8s  %-22s  %-14s\n", "alg", "saturation throughput", "latency @ 0.3")
	for _, name := range []string{"min", "val", "ugal", "ugal-s", "clos"} {
		alg, err := flatnet.NewFlatFlyAlgorithm(name, ff)
		if err != nil {
			log.Fatal(err)
		}
		sat, err := flatnet.SaturationThroughput(ff.Graph(), alg, cfg, wc, 500, 1000)
		if err != nil {
			log.Fatal(err)
		}
		res, err := flatnet.RunLoadPoint(ff.Graph(), alg, cfg, flatnet.RunConfig{
			Load: 0.3, Pattern: wc, Warmup: 500, Measure: 500, MaxCycles: 4000,
		})
		if err != nil {
			log.Fatal(err)
		}
		lat := fmt.Sprintf("%.2f cycles", res.AvgLatency)
		if res.Saturated {
			lat = "saturated"
		}
		fmt.Printf("%-8s  %-22.3f  %-14s\n", alg.Name(), sat, lat)
	}

	fmt.Println("\nbatch dynamic response (normalized completion latency, lower is better):")
	fmt.Printf("%-8s", "batch")
	algs := []string{"val", "ugal", "ugal-s", "clos"}
	for _, a := range algs {
		fmt.Printf("  %-8s", a)
	}
	fmt.Println()
	for _, batch := range []int{2, 8, 32} {
		fmt.Printf("%-8d", batch)
		for _, name := range algs {
			alg, _ := flatnet.NewFlatFlyAlgorithm(name, ff)
			r, err := flatnet.RunBatch(ff.Graph(), alg, cfg,
				flatnet.BatchConfig{Pattern: wc, BatchSize: batch})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8.2f", r.NormalizedLatency)
		}
		fmt.Println()
	}
	fmt.Println("\ngreedy UGAL is worst on small batches: all inputs pick the short minimal queue")
	fmt.Println("before the queue state updates; CLOS AD's adaptive intermediate choice is best.")
}
