// Low-radix versus high-radix (the paper's §1 motivation): with router
// bandwidth fixed, a k-ary n-cube torus spends it on a few wide ports and
// pays a large hop count; a flattened butterfly spends it on many narrow
// ports and reaches any router in one or two hops. Compare a 4-ary
// 3-cube, an 8-dimensional hypercube-like torus, and flattened
// butterflies at the same node counts.
package main

import (
	"fmt"
	"log"

	"flatnet"
)

func measure(name string, g *flatnet.Graph, alg flatnet.Algorithm, nodes int) {
	res, err := flatnet.RunLoadPoint(g, alg, flatnet.DefaultConfig(), flatnet.RunConfig{
		Load:    0.15,
		Pattern: flatnet.NewUniform(nodes),
		Warmup:  800,
		Measure: 800,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s  %8.2f  %8.2f\n", name, res.AvgHops, res.AvgLatency)
}

func main() {
	fmt.Println("uniform random at 15% load: average hops and latency (cycles)")
	fmt.Printf("%-22s  %8s  %8s\n", "network", "hops", "latency")

	// 64 nodes.
	tor, err := flatnet.NewTorus(4, 3)
	if err != nil {
		log.Fatal(err)
	}
	measure(tor.Name(), tor.Graph(), flatnet.NewTorusDOR(tor), tor.NumNodes)

	ff64, err := flatnet.NewFlatFly(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	measure(ff64.Name(), ff64.Graph(), flatnet.NewMinAD(ff64), ff64.NumNodes)

	// 256 nodes.
	tor2, err := flatnet.NewTorus(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	measure(tor2.Name(), tor2.Graph(), flatnet.NewTorusDOR(tor2), tor2.NumNodes)

	ff256, err := flatnet.NewFlatFly(16, 2)
	if err != nil {
		log.Fatal(err)
	}
	measure(ff256.Name(), ff256.Graph(), flatnet.NewMinAD(ff256), ff256.NumNodes)

	fmt.Println()
	fmt.Println("the torus needs several hops per packet where the flattened butterfly")
	fmt.Println("needs (at most) one inter-router hop — the same router pin bandwidth,")
	fmt.Println("spent as many narrow ports instead of a few wide ones (§1 of the paper).")
}
