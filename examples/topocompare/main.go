// Topology comparison (the paper's §3.3 / Fig. 6 in miniature): at equal
// bisection bandwidth, compare the flattened butterfly, conventional
// butterfly, 2:1-tapered folded Clos, and hypercube on benign and
// adversarial traffic.
package main

import (
	"fmt"
	"log"

	"flatnet"
)

func main() {
	const k = 16 // 256 nodes: quick to simulate
	ff, err := flatnet.NewFlatFly(k, 2)
	if err != nil {
		log.Fatal(err)
	}
	bf, err := flatnet.NewButterfly(k, 2)
	if err != nil {
		log.Fatal(err)
	}
	fc, err := flatnet.NewFoldedClos(k, k/2, k, k/4) // 2:1 taper = equal bisection
	if err != nil {
		log.Fatal(err)
	}
	hc, err := flatnet.NewHypercube(8)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name string
		g    *flatnet.Graph
		alg  flatnet.Algorithm
	}
	rows := []row{
		{ff.Name() + " / CLOS AD", ff.Graph(), flatnet.NewClosAD(ff)},
		{bf.Name() + " / destination", bf.Graph(), flatnet.NewButterflyDest(bf)},
		{fc.Name() + " / adaptive", fc.Graph(), flatnet.NewFoldedClosAdaptive(fc)},
		{hc.Name() + " / e-cube", hc.Graph(), flatnet.NewECube(hc)},
	}

	n := ff.NumNodes
	cfg := flatnet.DefaultConfig()
	ur := flatnet.NewUniform(n)
	wc := flatnet.NewWorstCase(k, n/k)

	fmt.Printf("%d-node topologies at equal bisection bandwidth\n\n", n)
	fmt.Printf("%-40s  %-12s  %-12s  %-14s\n", "topology / routing", "UR sat", "WC sat", "UR lat @ 0.2")
	for _, r := range rows {
		urSat, err := flatnet.SaturationThroughput(r.g, r.alg, cfg, ur, 500, 1000)
		if err != nil {
			log.Fatal(err)
		}
		wcSat, err := flatnet.SaturationThroughput(r.g, r.alg, cfg, wc, 500, 1000)
		if err != nil {
			log.Fatal(err)
		}
		res, err := flatnet.RunLoadPoint(r.g, r.alg, cfg, flatnet.RunConfig{
			Load: 0.2, Pattern: ur, Warmup: 500, Measure: 500,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s  %-12.3f  %-12.3f  %.2f cycles\n", r.name, urSat, wcSat, res.AvgLatency)
	}
	fmt.Println("\nthe flattened butterfly matches the butterfly on benign traffic (the tapered")
	fmt.Println("Clos is capped at ~50%) and matches the Clos on adversarial traffic (where the")
	fmt.Println("butterfly collapses to ~1/k); the hypercube pays its diameter in latency.")
}
