// Trace record and replay: run a bursty workload on the flattened
// butterfly while recording every packet, then replay the identical trace
// under a different routing algorithm to compare them on exactly the same
// traffic — the methodology production network simulators use for
// apples-to-apples routing studies.
package main

import (
	"fmt"
	"log"

	"flatnet"
)

func main() {
	ff, err := flatnet.NewFlatFly(16, 2)
	if err != nil {
		log.Fatal(err)
	}
	wc := flatnet.NewWorstCase(ff.K, ff.NumRouters)

	// Record: UGAL-S under bursty worst-case traffic.
	rec, err := flatnet.NewNetwork(ff.Graph(), flatnet.NewUGALS(ff), flatnet.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	src, err := flatnet.NewOnOffSource(wc, 1.0, 20)
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.SetSource(src); err != nil {
		log.Fatal(err)
	}
	trace := rec.RecordTrace()
	var latRec float64
	var nRec int64
	rec.OnDeliver(func(p *flatnet.Packet, cycle int64) {
		latRec += float64(cycle - p.InjectCycle)
		nRec++
	})
	for i := 0; i < 2000; i++ {
		if err := rec.Generate(0.25); err != nil {
			log.Fatal(err)
		}
		rec.Step()
	}
	for i := 0; i < 20000; i++ {
		rec.Step()
		if inj, del := rec.Totals(); inj == del {
			break
		}
	}
	fmt.Printf("recorded %d packets (bursty worst-case, UGAL-S): avg latency %.2f cycles\n",
		len(*trace), latRec/float64(nRec))

	// Replay the identical packet sequence under CLOS AD.
	for _, alg := range []flatnet.Algorithm{flatnet.NewClosAD(ff), flatnet.NewValiant(ff)} {
		rep, err := flatnet.NewNetwork(ff.Graph(), alg, flatnet.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		var latSum float64
		var n int64
		rep.OnDeliver(func(p *flatnet.Packet, cycle int64) {
			latSum += float64(cycle - p.InjectCycle)
			n++
		})
		if err := rep.LoadTrace(*trace); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 100000 && n < int64(len(*trace)); i++ {
			rep.Step()
		}
		if n < int64(len(*trace)) {
			log.Fatalf("%s: replay incomplete (%d/%d)", alg.Name(), n, len(*trace))
		}
		fmt.Printf("replayed under %-8s: avg latency %.2f cycles over the identical traffic\n",
			alg.Name(), latSum/float64(n))
	}
	fmt.Println("\nCLOS AD's adaptive intermediate choice absorbs the bursts best; VAL pays")
	fmt.Println("its doubled hop count on every packet (§3.1-3.2 of the paper).")
}
