package flatnet_test

import (
	"testing"

	"flatnet"
)

// TestFacadeQuickstart exercises the documented public-API path end to
// end: build the topology, run a load point, check the numbers.
func TestFacadeQuickstart(t *testing.T) {
	ff, err := flatnet.NewFlatFly(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ff.NumNodes != 64 || ff.Radix != 15 {
		t.Fatalf("unexpected topology: %+v", ff)
	}
	alg := flatnet.NewClosAD(ff)
	res, err := flatnet.RunLoadPoint(ff.Graph(), alg, flatnet.DefaultConfig(), flatnet.RunConfig{
		Load:    0.4,
		Pattern: flatnet.NewUniform(ff.NumNodes),
		Warmup:  400,
		Measure: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated || res.AvgLatency <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.AcceptedRate < 0.35 || res.AcceptedRate > 0.45 {
		t.Fatalf("accepted rate %.3f, want ~0.4", res.AcceptedRate)
	}
}

// TestFacadeCostAndPower exercises the analytic models through the
// façade.
func TestFacadeCostAndPower(t *testing.T) {
	cm, pm, pk := flatnet.DefaultCostModel(), flatnet.DefaultPowerModel(), flatnet.DefaultPackaging()
	c, err := flatnet.CompareCost(4096, cm, pk)
	if err != nil {
		t.Fatal(err)
	}
	if c.SavingsVsClos() < 0.35 {
		t.Fatalf("4K cost savings %.2f, want > 0.35", c.SavingsVsClos())
	}
	p, err := flatnet.ComparePower(4096, pm, pk)
	if err != nil {
		t.Fatal(err)
	}
	if p.SavingsVsClos() < 0.35 {
		t.Fatalf("4K power savings %.2f, want > 0.35", p.SavingsVsClos())
	}
}

// TestFacadeScalingMath exercises the §5.1.2 helpers.
func TestFacadeScalingMath(t *testing.T) {
	np, kp, max, err := flatnet.FixedRadixConfig(64, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if np != 3 || kp != 61 || max != 65536 {
		t.Fatalf("FixedRadixConfig(64, 64K) = (%d, %d, %d)", np, kp, max)
	}
	if len(flatnet.ConfigsForN(4096)) != 5 {
		t.Fatal("Table 4 should list 5 configurations")
	}
	if flatnet.MaxNodesForRadix(64, 1) != 1024 {
		t.Fatal("radix-64 1-D network should scale to 1024")
	}
}

// TestFacadeTopologies builds each comparison topology through the
// façade and validates its graph.
func TestFacadeTopologies(t *testing.T) {
	ff, err := flatnet.NewFlatFly(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := flatnet.NewButterfly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := flatnet.TaperedClosForNodes(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := flatnet.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	gh, err := flatnet.NewGHC([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []flatnet.Topology{ff, bf, fc, hc, gh} {
		if err := topo.Graph().Validate(); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

// TestFacadeBatch exercises the batch harness.
func TestFacadeBatch(t *testing.T) {
	ff, err := flatnet.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := flatnet.NewFlatFlyAlgorithm("ugal-s", ff)
	if err != nil {
		t.Fatal(err)
	}
	res, err := flatnet.RunBatch(ff.Graph(), alg, flatnet.DefaultConfig(),
		flatnet.BatchConfig{Pattern: flatnet.NewWorstCase(4, 4), BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionCycles <= 0 {
		t.Fatal("batch did not run")
	}
}
