// Package client is the Go client for the nocsvc protocol (see
// internal/nocsvc): it speaks newline-delimited JSON to a nocd daemon
// over TCP, or over any byte stream such as a child process's
// stdin/stdout. Calls are safe for concurrent use; requests pipeline
// over one connection and responses are correlated by id.
package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"flatnet/internal/nocsvc"
)

// Re-exported protocol types so callers need not import the internal
// package.
type (
	// OpenParams describes the session to open.
	OpenParams = nocsvc.OpenParams
	// EstimateParams is one transfer to estimate.
	EstimateParams = nocsvc.EstimateParams
	// EstimateResult is one estimate's answer.
	EstimateResult = nocsvc.EstimateResult
	// SessionInfo describes an opened session.
	SessionInfo = nocsvc.SessionInfo
	// Stats is the stats verb's payload.
	Stats = nocsvc.Stats
	// Error is a structured server-side failure.
	Error = nocsvc.Error
)

// Client is one protocol connection. Create with Dial or NewClient.
type Client struct {
	wmu sync.Mutex
	w   *bufio.Writer
	rwc io.Closer

	mu      sync.Mutex
	nextID  int64
	pending map[int64]chan nocsvc.Response
	err     error // terminal read-loop error, set once
	done    chan struct{}
}

// Dial connects to a nocd daemon's TCP listener.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient speaks the protocol over an existing stream — a net.Conn,
// or a pipe pair to a nocd child process. The client owns rw and closes
// it on Close (or on read failure) if it implements io.Closer.
func NewClient(rw io.ReadWriter) *Client {
	c := &Client{
		w:       bufio.NewWriter(rw),
		pending: make(map[int64]chan nocsvc.Response),
		done:    make(chan struct{}),
	}
	if rwc, ok := rw.(io.Closer); ok {
		c.rwc = rwc
	}
	go c.readLoop(rw)
	return c
}

// readLoop distributes response lines to their callers by id.
func (c *Client) readLoop(r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), nocsvc.MaxLineBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		resp, err := nocsvc.DecodeResponse(line)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
	err := sc.Err()
	if err == nil {
		err = io.EOF
	}
	c.fail(err)
}

// fail marks the connection dead and wakes every in-flight call.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	c.pending = make(map[int64]chan nocsvc.Response)
	c.mu.Unlock()
	if c.rwc != nil {
		c.rwc.Close()
	}
}

// Close tears the connection down; in-flight calls fail.
func (c *Client) Close() error {
	c.fail(errors.New("nocsvc client: closed"))
	return nil
}

// call sends one request and blocks for its response.
func (c *Client) call(req nocsvc.Request) (nocsvc.Response, error) {
	ch := make(chan nocsvc.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nocsvc.Response{}, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	req.Version = nocsvc.ProtocolVersion
	b, err := encodeRequest(&req)
	if err != nil {
		c.drop(req.ID)
		return nocsvc.Response{}, err
	}
	c.wmu.Lock()
	_, werr := c.w.Write(b)
	if werr == nil {
		werr = c.w.WriteByte('\n')
	}
	if werr == nil {
		werr = c.w.Flush()
	}
	c.wmu.Unlock()
	if werr != nil {
		c.drop(req.ID)
		return nocsvc.Response{}, werr
	}

	select {
	case resp := <-ch:
		if resp.Err != nil {
			return resp, resp.Err
		}
		return resp, nil
	case <-c.done:
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nocsvc.Response{}, err
	}
}

// drop abandons a pending id after a send-side failure.
func (c *Client) drop(id int64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func encodeRequest(req *nocsvc.Request) ([]byte, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("nocsvc client: encoding request: %w", err)
	}
	return b, nil
}

// Session is an open server-side session, returned by OpenSession.
type Session struct {
	c    *Client
	id   string
	info SessionInfo
}

// ID returns the server-assigned session id.
func (s *Session) ID() string { return s.id }

// Info returns the opened session's description.
func (s *Session) Info() SessionInfo { return s.info }

// OpenSession opens a warmed simulation session on the server.
func (c *Client) OpenSession(p OpenParams) (*Session, error) {
	resp, err := c.call(nocsvc.Request{Verb: nocsvc.VerbOpen, Open: &p})
	if err != nil {
		return nil, err
	}
	if resp.Session == "" || resp.Info == nil {
		return nil, errors.New("nocsvc client: open response missing session")
	}
	return &Session{c: c, id: resp.Session, info: *resp.Info}, nil
}

// Estimate asks for one transfer's congestion-aware latency.
func (s *Session) Estimate(src, dst, bytes int) (EstimateResult, error) {
	resp, err := s.c.call(nocsvc.Request{
		Verb:    nocsvc.VerbEstimate,
		Session: s.id,
		Est:     &EstimateParams{Src: src, Dst: dst, Bytes: bytes},
	})
	if err != nil {
		return EstimateResult{}, err
	}
	if resp.Est == nil {
		return EstimateResult{}, errors.New("nocsvc client: estimate response missing result")
	}
	return *resp.Est, nil
}

// BatchEstimate estimates several transfers in one round trip; results
// are in item order.
func (s *Session) BatchEstimate(items []EstimateParams) ([]EstimateResult, error) {
	resp, err := s.c.call(nocsvc.Request{
		Verb:    nocsvc.VerbBatch,
		Session: s.id,
		Batch:   items,
	})
	if err != nil {
		return nil, err
	}
	if len(resp.Batch) != len(items) {
		return nil, fmt.Errorf("nocsvc client: batch answered %d of %d items", len(resp.Batch), len(items))
	}
	return resp.Batch, nil
}

// Stats fetches server-wide counters plus this session's detail.
func (s *Session) Stats() (Stats, error) {
	return s.c.stats(s.id)
}

// Checkpoint snapshots the session's warmed network into the server's
// checkpoint store and returns the checkpoint id. The snapshot is taken
// between simulation steps, so it captures a consistent state; the
// session continues unaffected.
func (s *Session) Checkpoint() (string, error) {
	resp, err := s.c.call(nocsvc.Request{Verb: nocsvc.VerbCheckpoint, Session: s.id})
	if err != nil {
		return "", err
	}
	if resp.Checkpoint == "" {
		return "", errors.New("nocsvc client: checkpoint response missing id")
	}
	return resp.Checkpoint, nil
}

// CloneSession opens a new session restored from a stored checkpoint.
// The clone skips warm-up: it starts at the checkpointed cycle,
// bit-identical to the session the checkpoint was taken from.
func (c *Client) CloneSession(checkpoint string) (*Session, error) {
	resp, err := c.call(nocsvc.Request{Verb: nocsvc.VerbClone, Checkpoint: checkpoint})
	if err != nil {
		return nil, err
	}
	if resp.Session == "" || resp.Info == nil {
		return nil, errors.New("nocsvc client: clone response missing session")
	}
	return &Session{c: c, id: resp.Session, info: *resp.Info}, nil
}

// Close closes the session on the server.
func (s *Session) Close() error {
	_, err := s.c.call(nocsvc.Request{Verb: nocsvc.VerbClose, Session: s.id})
	return err
}

// Stats fetches server-wide counters.
func (c *Client) Stats() (Stats, error) {
	return c.stats("")
}

func (c *Client) stats(session string) (Stats, error) {
	resp, err := c.call(nocsvc.Request{Verb: nocsvc.VerbStats, Session: session})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("nocsvc client: stats response missing payload")
	}
	return *resp.Stats, nil
}
