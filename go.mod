module flatnet

go 1.22
