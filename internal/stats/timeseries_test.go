package stats

import "testing"

func TestTimeSeriesBucketing(t *testing.T) {
	ts := NewTimeSeries(10, 4)
	ts.Record(0, 2)
	ts.Record(5, 3)  // same window [0,10)
	ts.Record(10, 1) // next window
	if ts.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ts.Len())
	}
	b := ts.Buckets()
	if b[0].Start != 0 || b[0].Count != 5 {
		t.Errorf("bucket 0 = %+v, want {0 5}", b[0])
	}
	if b[1].Start != 10 || b[1].Count != 1 {
		t.Errorf("bucket 1 = %+v, want {10 1}", b[1])
	}
	if ts.Total() != 6 || ts.Retained() != 6 {
		t.Errorf("Total/Retained = %d/%d, want 6/6", ts.Total(), ts.Retained())
	}
}

func TestTimeSeriesSparse(t *testing.T) {
	// Idle windows occupy no bucket but still dilute Rate.
	ts := NewTimeSeries(10, 8)
	ts.Record(0, 10)
	ts.Record(90, 10) // windows 10..80 are empty
	if ts.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (sparse)", ts.Len())
	}
	// Span is [0, 100): 20 events over 100 cycles.
	if got := ts.Rate(); got != 0.2 {
		t.Errorf("Rate = %v, want 0.2", got)
	}
	if got := ts.LatestRate(); got != 1.0 {
		t.Errorf("LatestRate = %v, want 1.0", got)
	}
}

func TestTimeSeriesEviction(t *testing.T) {
	ts := NewTimeSeries(10, 3)
	for i := int64(0); i < 5; i++ {
		ts.Record(i*10, 1+i)
	}
	// Buckets 0 (count 1) and 10 (count 2) evicted; 20, 30, 40 retained.
	if ts.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ts.Len())
	}
	b := ts.Buckets()
	for i, want := range []int64{20, 30, 40} {
		if b[i].Start != want {
			t.Errorf("bucket %d start = %d, want %d", i, b[i].Start, want)
		}
	}
	if ts.Total() != 15 {
		t.Errorf("Total = %d, want 15", ts.Total())
	}
	if ts.Retained() != 12 {
		t.Errorf("Retained = %d, want 12 (3+4+5)", ts.Retained())
	}
	// Rate covers [20, 50): 12 events / 30 cycles.
	if got := ts.Rate(); got != 0.4 {
		t.Errorf("Rate = %v, want 0.4", got)
	}
}

func TestTimeSeriesLateSampleFolds(t *testing.T) {
	ts := NewTimeSeries(10, 4)
	ts.Record(25, 1)
	ts.Record(12, 2) // older than the current window: folds into it
	if ts.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ts.Len())
	}
	if b := ts.Buckets()[0]; b.Start != 20 || b.Count != 3 {
		t.Errorf("bucket = %+v, want {20 3}", b)
	}
}

func TestTimeSeriesResetAndClamp(t *testing.T) {
	ts := NewTimeSeries(0, 0) // clamps to window 1, depth 1
	if ts.Window() != 1 {
		t.Errorf("Window = %d, want 1", ts.Window())
	}
	ts.Record(3, 7)
	ts.Record(4, 1) // evicts the only bucket
	if ts.Retained() != 1 || ts.Total() != 8 {
		t.Errorf("Retained/Total = %d/%d, want 1/8", ts.Retained(), ts.Total())
	}
	ts.Reset()
	if ts.Len() != 0 || ts.Total() != 0 || ts.Rate() != 0 || ts.LatestRate() != 0 {
		t.Error("Reset did not clear the series")
	}
	ts.Record(5, 2)
	if ts.Retained() != 2 {
		t.Errorf("post-reset Retained = %d, want 2", ts.Retained())
	}
}
