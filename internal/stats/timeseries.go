package stats

// TimeSeries accumulates a cycle-stamped event counter into fixed-width
// windows ("buckets"), retaining only the most recent buckets in a ring.
// It is the storage behind windowed telemetry — per-channel load over
// time, probe sample series — where a long simulation must expose its
// recent history at bounded memory.
//
// Buckets are sparse: a window in which nothing was recorded occupies no
// storage. Cycles must be recorded in non-decreasing order (a late
// sample for an already-current window folds into it; a sample older
// than the current window folds into the current window rather than
// resurrecting an evicted one).
type TimeSeries struct {
	window  int64
	buckets []TimeBucket // ring once len == cap
	head    int          // index of the oldest retained bucket
	total   int64        // lifetime events, evicted buckets included
	evicted int64        // events that were in evicted buckets
}

// TimeBucket is one window of a TimeSeries.
type TimeBucket struct {
	// Start is the first cycle the bucket covers; it spans
	// [Start, Start+window).
	Start int64
	// Count is the number of events recorded in the window.
	Count int64
}

// NewTimeSeries returns a series with the given window width in cycles,
// retaining at most depth buckets. Window and depth are clamped to 1.
func NewTimeSeries(window int64, depth int) *TimeSeries {
	if window < 1 {
		window = 1
	}
	if depth < 1 {
		depth = 1
	}
	return &TimeSeries{window: window, buckets: make([]TimeBucket, 0, depth)}
}

// Window returns the bucket width in cycles.
func (t *TimeSeries) Window() int64 { return t.window }

// Len returns the number of retained buckets.
func (t *TimeSeries) Len() int { return len(t.buckets) }

// Total returns the lifetime event count, including evicted buckets.
func (t *TimeSeries) Total() int64 { return t.total }

// Retained returns the event count over the retained buckets only.
func (t *TimeSeries) Retained() int64 { return t.total - t.evicted }

// latest returns the most recent bucket; call only when Len() > 0.
func (t *TimeSeries) latest() *TimeBucket {
	return &t.buckets[(t.head+len(t.buckets)-1)%len(t.buckets)]
}

// Record adds count events at the given cycle, rolling to a new bucket
// when the cycle crosses a window boundary and evicting the oldest
// bucket once the ring is full.
func (t *TimeSeries) Record(cycle, count int64) {
	t.total += count
	start := cycle - cycle%t.window
	if len(t.buckets) > 0 && start <= t.latest().Start {
		t.latest().Count += count
		return
	}
	b := TimeBucket{Start: start, Count: count}
	if len(t.buckets) < cap(t.buckets) {
		t.buckets = append(t.buckets, b)
		return
	}
	t.evicted += t.buckets[t.head].Count
	t.buckets[t.head] = b
	t.head = (t.head + 1) % len(t.buckets)
}

// Buckets returns the retained buckets, oldest first.
func (t *TimeSeries) Buckets() []TimeBucket {
	out := make([]TimeBucket, 0, len(t.buckets))
	for i := 0; i < len(t.buckets); i++ {
		out = append(out, t.buckets[(t.head+i)%len(t.buckets)])
	}
	return out
}

// Rate returns retained events per cycle over the span from the oldest
// retained bucket's start through the end of the newest one, or 0 for an
// empty series. Because buckets are sparse, idle windows inside the span
// still count toward the denominator.
func (t *TimeSeries) Rate() float64 {
	if len(t.buckets) == 0 {
		return 0
	}
	oldest := t.buckets[t.head]
	span := t.latest().Start + t.window - oldest.Start
	return float64(t.Retained()) / float64(span)
}

// LatestRate returns the event rate of the most recent bucket alone, or
// 0 for an empty series. The newest bucket may still be filling, so this
// is a lower bound on the current rate.
func (t *TimeSeries) LatestRate() float64 {
	if len(t.buckets) == 0 {
		return 0
	}
	return float64(t.latest().Count) / float64(t.window)
}

// Reset discards all buckets and counts, keeping window and depth.
func (t *TimeSeries) Reset() {
	t.buckets = t.buckets[:0]
	t.head = 0
	t.total, t.evicted = 0, 0
}
