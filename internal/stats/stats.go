// Package stats provides the measurement accumulators used by the
// simulator: running means, histograms, percentiles and rate meters.
//
// The simulator records per-packet latencies and per-node delivery counts;
// this package turns those raw observations into the latency and throughput
// figures reported in the paper's evaluation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator collects scalar samples and reports summary statistics.
// The zero value is an empty accumulator ready for use.
type Accumulator struct {
	n        int
	sum      float64
	sumSq    float64
	min, max float64
}

// Add records one sample.
func (a *Accumulator) Add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	a.sum += v
	a.sumSq += v * v
}

// Count returns the number of samples recorded.
func (a *Accumulator) Count() int { return a.n }

// Sum returns the total of all samples.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Variance returns the population variance, or 0 with fewer than two samples.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := a.sumSq/float64(a.n) - m*m
	if v < 0 { // guard against floating-point cancellation
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample, or 0 for an empty accumulator.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest sample, or 0 for an empty accumulator.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// Reset discards all samples.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// Merge folds the samples of other into a.
func (a *Accumulator) Merge(other *Accumulator) {
	if other.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *other
		return
	}
	if other.min < a.min {
		a.min = other.min
	}
	if other.max > a.max {
		a.max = other.max
	}
	a.n += other.n
	a.sum += other.sum
	a.sumSq += other.sumSq
}

// String summarises the accumulator for logs and debug output.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		a.n, a.Mean(), a.StdDev(), a.Min(), a.Max())
}

// Histogram counts integer-valued samples (e.g. packet latencies in cycles)
// in unit-width bins so that exact percentiles can be extracted.
type Histogram struct {
	bins     []int64 // bins[i] counts samples with value i, up to cap
	overflow int64   // samples >= len(bins)
	n        int64
	total    int64 // sum of all sample values, including overflowed ones
	max      int   // largest sample seen, exact even for overflowed samples
}

// NewHistogram returns a histogram covering [0, maxValue]; larger samples
// are tallied in a single overflow bin (their exact values still contribute
// to the mean).
func NewHistogram(maxValue int) *Histogram {
	if maxValue < 0 {
		maxValue = 0
	}
	return &Histogram{bins: make([]int64, maxValue+1)}
}

// Add records a sample. Negative samples clamp to 0.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v < len(h.bins) {
		h.bins[v]++
	} else {
		h.overflow++
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.total += int64(v)
}

// Max returns the largest sample recorded, exact even for samples beyond
// the histogram range, or 0 for an empty histogram.
func (h *Histogram) Max() int { return h.max }

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 { return h.n }

// Overflow returns the number of samples beyond the histogram range.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Mean returns the exact sample mean (overflowed samples included).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.total) / float64(h.n)
}

// Percentile returns the smallest value v such that at least p (0..1) of the
// samples are <= v. Overflowed samples report as maxValue+1.
func (h *Histogram) Percentile(p float64) int {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(math.Ceil(p * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for v, c := range h.bins {
		cum += c
		if cum >= target {
			return v
		}
	}
	return len(h.bins)
}

// Reset discards all samples, keeping the bin range.
func (h *Histogram) Reset() {
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.overflow, h.n, h.total, h.max = 0, 0, 0, 0
}

// RateMeter measures an event rate over a window of cycles, e.g. accepted
// flits per node per cycle for throughput measurement.
type RateMeter struct {
	events int64
	start  int64
	end    int64
}

// NewRateMeter returns a meter measuring from cycle start (inclusive).
func NewRateMeter(start int64) *RateMeter {
	return &RateMeter{start: start, end: start}
}

// Record counts n events at the given cycle.
func (m *RateMeter) Record(cycle int64, n int) {
	m.events += int64(n)
	if cycle+1 > m.end {
		m.end = cycle + 1
	}
}

// Events returns the number of recorded events.
func (m *RateMeter) Events() int64 { return m.events }

// Window returns the number of cycles covered, at least 0.
func (m *RateMeter) Window() int64 {
	if m.end < m.start {
		return 0
	}
	return m.end - m.start
}

// Rate returns events per cycle over the observed window.
func (m *RateMeter) Rate() float64 {
	w := m.Window()
	if w == 0 {
		return 0
	}
	return float64(m.events) / float64(w)
}

// Series is an ordered set of (x, y) points, used to assemble the data
// behind a paper figure. X values are kept in insertion order.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds a point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value for the first point with the given x, and whether
// one exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// MaxY returns the largest y value, or 0 for an empty series.
func (s *Series) MaxY() float64 {
	max := 0.0
	for i, y := range s.Y {
		if i == 0 || y > max {
			max = y
		}
	}
	return max
}

// Quantile returns the q-th (0..1) quantile of data by linear interpolation.
// It copies and sorts the input. An empty slice yields 0.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return 0
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
