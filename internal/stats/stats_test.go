package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Min() != 0 || a.Max() != 0 || a.Count() != 0 {
		t.Fatal("zero accumulator should report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(v)
	}
	if a.Count() != 8 {
		t.Fatalf("count = %d", a.Count())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", a.Mean())
	}
	if !almostEqual(a.StdDev(), 2, 1e-9) {
		t.Fatalf("stddev = %v", a.StdDev())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorReset(t *testing.T) {
	var a Accumulator
	a.Add(10)
	a.Reset()
	if a.Count() != 0 || a.Sum() != 0 {
		t.Fatal("Reset did not clear accumulator")
	}
}

func TestAccumulatorMerge(t *testing.T) {
	var a, b, all Accumulator
	vals := []float64{1, 2, 3, 4, 5, 6}
	for i, v := range vals {
		all.Add(v)
		if i < 3 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || !almostEqual(a.Mean(), all.Mean(), 1e-12) ||
		a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge mismatch: %v vs %v", a.String(), all.String())
	}
	var empty Accumulator
	a.Merge(&empty)
	if a.Count() != all.Count() {
		t.Fatal("merging empty changed count")
	}
	var dst Accumulator
	dst.Merge(&all)
	if dst.Count() != all.Count() || dst.Mean() != all.Mean() {
		t.Fatal("merge into empty failed")
	}
}

// bounded maps an arbitrary generated float into a numerically sane range
// so that sums and squares cannot overflow to +/-Inf.
func bounded(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	check := func(xs, ys []float64) bool {
		var a, b, seq Accumulator
		for _, v := range xs {
			v = bounded(v)
			a.Add(v)
			seq.Add(v)
		}
		for _, v := range ys {
			v = bounded(v)
			b.Add(v)
			seq.Add(v)
		}
		a.Merge(&b)
		return a.Count() == seq.Count() &&
			almostEqual(a.Sum(), seq.Sum(), 1e-6*(1+math.Abs(seq.Sum()))) &&
			a.Min() == seq.Min() && a.Max() == seq.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceNonNegative(t *testing.T) {
	check := func(xs []float64) bool {
		var a Accumulator
		for _, v := range xs {
			a.Add(bounded(v))
		}
		return a.Variance() >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{0, 1, 1, 2, 3, 5, 8, 10} {
		h.Add(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	wantMean := float64(0+1+1+2+3+5+8+10) / 8
	if !almostEqual(h.Mean(), wantMean, 1e-12) {
		t.Fatalf("mean = %v want %v", h.Mean(), wantMean)
	}
	if p := h.Percentile(0.5); p != 2 {
		t.Fatalf("p50 = %d, want 2", p)
	}
	if p := h.Percentile(1.0); p != 10 {
		t.Fatalf("p100 = %d, want 10", p)
	}
	if p := h.Percentile(0); p != 0 {
		t.Fatalf("p0 = %d, want 0", p)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(4)
	h.Add(100)
	h.Add(2)
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	if !almostEqual(h.Mean(), 51, 1e-12) {
		t.Fatalf("mean should include overflow values exactly, got %v", h.Mean())
	}
	if p := h.Percentile(1.0); p != 5 {
		t.Fatalf("overflowed percentile = %d, want maxValue+1 = 5", p)
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	h := NewHistogram(4)
	h.Add(-3)
	if h.Count() != 1 || h.Percentile(1) != 0 {
		t.Fatal("negative sample should clamp to 0")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(4)
	h.Add(3)
	h.Add(99)
	h.Reset()
	if h.Count() != 0 || h.Overflow() != 0 || h.Mean() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	check := func(vals []uint8) bool {
		h := NewHistogram(255)
		for _, v := range vals {
			h.Add(int(v))
		}
		prev := -1
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			p := h.Percentile(q)
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter(100)
	m.Record(100, 2)
	m.Record(101, 1)
	m.Record(103, 1)
	if m.Events() != 4 {
		t.Fatalf("events = %d", m.Events())
	}
	if m.Window() != 4 {
		t.Fatalf("window = %d", m.Window())
	}
	if !almostEqual(m.Rate(), 1.0, 1e-12) {
		t.Fatalf("rate = %v", m.Rate())
	}
}

func TestRateMeterEmpty(t *testing.T) {
	m := NewRateMeter(5)
	if m.Rate() != 0 || m.Window() != 0 {
		t.Fatal("empty meter should report zero rate")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "test"
	s.Append(0.1, 10)
	s.Append(0.2, 30)
	s.Append(0.3, 20)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if y, ok := s.YAt(0.2); !ok || y != 30 {
		t.Fatalf("YAt(0.2) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(0.5); ok {
		t.Fatal("YAt should miss for absent x")
	}
	if s.MaxY() != 30 {
		t.Fatalf("MaxY = %v", s.MaxY())
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(data, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) should be 0")
	}
	// Interpolated case: quantile 0.5 of {1,2} is 1.5.
	if got := Quantile([]float64{2, 1}, 0.5); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("interpolated quantile = %v, want 1.5", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	data := []float64{3, 1, 2}
	Quantile(data, 0.5)
	if data[0] != 3 || data[1] != 1 || data[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestAccumulatorString(t *testing.T) {
	var a Accumulator
	a.Add(2)
	a.Add(4)
	s := a.String()
	if s == "" || !strings.Contains(s, "n=2") || !strings.Contains(s, "mean=3.000") {
		t.Fatalf("String() = %q", s)
	}
}
