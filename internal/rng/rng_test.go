package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values in 100 draws", same)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(7)
	a.Uint64()
	a.Reseed(99)
	b := New(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Reseed stream differs from New at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 63, 1024} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test over 16 buckets; threshold is the 99.9% quantile of
	// chi2 with 15 dof (~37.7), generous enough to avoid flakes while
	// catching gross bias.
	r := New(12345)
	const buckets, draws = 16, 160000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Fatalf("chi2 = %.2f exceeds 37.7; counts = %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(11)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(17)
	const n = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) rate = %v", p, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := New(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(5)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make(map[int]bool)
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", vals)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(1)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p2 := New(1)
	p2.Uint64() // consume the draw Split used
	match := 0
	for i := 0; i < 64; i++ {
		if child.Uint64() == p2.Uint64() {
			match++
		}
	}
	if match > 2 {
		t.Fatalf("child stream tracks parent stream (%d/64 matches)", match)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Intn(63)
	}
}
