// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Simulation results must be reproducible from a seed alone, independent of
// Go release or platform, so the simulator does not use math/rand. The
// generator is xoshiro256** seeded via SplitMix64, the combination
// recommended by Blackman and Vigna. It is not safe for concurrent use; each
// concurrent simulation owns its own *Source.
package rng

// Source is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed using SplitMix64 so that
// nearby seeds produce unrelated streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed re-initialises the generator state from seed, as if freshly
// constructed with New(seed).
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro256** state must not be all zero; SplitMix64 guarantees this
	// for any seed, but guard against future edits breaking the property.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method, which avoids modulo bias.
func (r *Source) boundedUint64(n uint64) uint64 {
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p. Values of p outside [0, 1]
// clamp to always-false / always-true.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniform random permutation of [0, n) using Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new Source whose stream is deterministically derived from
// this one, for handing independent streams to sub-components.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// State returns the generator's raw xoshiro256** state, for
// checkpointing. Restoring it with SetState resumes the stream exactly.
func (r *Source) State() [4]uint64 {
	return r.s
}

// SetState replaces the generator state with a value previously obtained
// from State. An all-zero state is invalid for xoshiro256** and is
// normalised to a minimal non-zero state rather than poisoning the stream.
func (r *Source) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 1
	}
	r.s = s
}
