package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Add("alpha", "1")
	tb.Add("b", "22222")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), sb.String())
	}
	// The value column must start at the same offset in every row.
	idx := strings.Index(lines[0], "value")
	if idx < 0 {
		t.Fatal("header missing")
	}
	if lines[2][idx:idx+1] != "1" {
		t.Errorf("row 1 misaligned: %q", lines[2])
	}
	if lines[3][idx:idx+1] != "2" {
		t.Errorf("row 2 misaligned: %q", lines[3])
	}
}

func TestTableAddF(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddF("%d\t%.2f", 5, 1.5)
	if len(tb.Rows) != 1 || tb.Rows[0][0] != "5" || tb.Rows[0][1] != "1.50" {
		t.Fatalf("AddF produced %v", tb.Rows)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a")
	tb.Add("x", "extra")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "extra") {
		t.Error("extra cell dropped")
	}
}

func TestChartBasics(t *testing.T) {
	c := Chart{Title: "test", XLabel: "load", Width: 40, Height: 10}
	var sb strings.Builder
	err := c.Render(&sb, []Series{
		{Label: "one", X: []float64{0, 0.5, 1}, Y: []float64{1, 2, 4}},
		{Label: "two", X: []float64{0, 0.5, 1}, Y: []float64{4, 2, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "test") || !strings.Contains(out, "*=one") || !strings.Contains(out, "o=two") {
		t.Fatalf("missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("missing data glyphs")
	}
	// Exactly Height plot rows plus axis and labels.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+10+1+1+1 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestChartHandlesNaNAndCap(t *testing.T) {
	c := Chart{Width: 20, Height: 8, YCap: 100}
	var sb strings.Builder
	err := c.Render(&sb, []Series{
		{Label: "lat", X: []float64{0.1, 0.5, 0.9}, Y: []float64{3, math.NaN(), 1e9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "100") {
		t.Errorf("capped axis should read 100:\n%s", sb.String())
	}
}

func TestChartEmpty(t *testing.T) {
	c := Chart{Title: "none"}
	var sb strings.Builder
	if err := c.Render(&sb, []Series{{Label: "x", X: []float64{1}, Y: []float64{math.NaN()}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestChartDefaults(t *testing.T) {
	c := Chart{}
	var sb strings.Builder
	if err := c.Render(&sb, []Series{{Label: "s", X: []float64{0, 1}, Y: []float64{0, 1}}}); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) == 0 {
		t.Fatal("no output")
	}
}

func TestChartSingleXValue(t *testing.T) {
	c := Chart{Width: 10, Height: 5}
	var sb strings.Builder
	if err := c.Render(&sb, []Series{{Label: "pt", X: []float64{2}, Y: []float64{3}}}); err != nil {
		t.Fatal(err)
	}
}
