// Package report renders experiment results as aligned text tables and
// ASCII line charts, so cmd/paperfigs output files carry a human-readable
// picture of each figure next to the raw data columns.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a column-aligned text table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given headers.
func NewTable(headers ...string) *Table {
	return &Table{Headers: headers}
}

// Add appends one row; missing cells render empty, extra cells are kept.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddF appends one row of formatted values.
func (t *Table) AddF(format string, vals ...interface{}) {
	t.Add(strings.Split(fmt.Sprintf(format, vals...), "\t")...)
}

// Render writes the table with two-space column separation.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			sb.WriteString(cell)
			if i < cols-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)+2))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if len(t.Headers) > 0 {
		if err := writeRow(t.Headers); err != nil {
			return err
		}
		var sb strings.Builder
		for i := 0; i < cols; i++ {
			sb.WriteString(strings.Repeat("-", widths[i]))
			if i < cols-1 {
				sb.WriteString("  ")
			}
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Series is one labeled line on a chart. NaN values mark gaps (e.g.
// saturated load points).
type Series struct {
	Label string
	X, Y  []float64
}

// Chart is a multi-series ASCII line chart.
type Chart struct {
	Title  string
	YLabel string
	XLabel string
	Width  int     // plot columns (default 60)
	Height int     // plot rows (default 16)
	YCap   float64 // clip Y above this value (0 = no cap); useful for latency blow-ups
}

// seriesGlyphs mark the points of up to eight series.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (c *Chart) Render(w io.Writer, series []Series) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	var xMin, xMax, yMax float64
	xMin = math.Inf(1)
	xMax = math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			y := s.Y[i]
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			if c.YCap > 0 && y > c.YCap {
				y = c.YCap
			}
			any = true
			if s.X[i] < xMin {
				xMin = s.X[i]
			}
			if s.X[i] > xMax {
				xMax = s.X[i]
			}
			if y > yMax {
				yMax = y
			}
		}
	}
	if !any {
		_, err := fmt.Fprintln(w, c.Title+" (no data)")
		return err
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == 0 {
		yMax = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for i := range s.X {
			y := s.Y[i]
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			if c.YCap > 0 && y > c.YCap {
				y = c.YCap
			}
			col := int(math.Round((s.X[i] - xMin) / (xMax - xMin) * float64(width-1)))
			row := height - 1 - int(math.Round(y/yMax*float64(height-1)))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = glyph
			}
		}
	}
	if c.Title != "" {
		if _, err := fmt.Fprintln(w, c.Title); err != nil {
			return err
		}
	}
	axisLabel := fmt.Sprintf("%.4g", yMax)
	pad := len(axisLabel)
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = axisLabel
		case height - 1:
			label = fmt.Sprintf("%*s", pad, "0")
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*.4g%*.4g  (%s)\n",
		strings.Repeat(" ", pad), width/2, xMin, width-width/2, xMax, c.XLabel); err != nil {
		return err
	}
	// Legend.
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", seriesGlyphs[si%len(seriesGlyphs)], s.Label))
	}
	_, err := fmt.Fprintln(w, "  "+strings.Join(legend, "  "))
	return err
}
