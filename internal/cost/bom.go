package cost

import (
	"fmt"
	"math"

	"flatnet/internal/core"
)

// LinkGroup is one homogeneous set of unidirectional channels in a
// topology's bill of materials.
type LinkGroup struct {
	// Label identifies the group for reporting, e.g. "dim-2".
	Label string
	// Class determines pricing and SerDes power.
	Class LinkClass
	// PerNode is the number of unidirectional channels per node.
	PerNode float64
	// Length is the cable length in meters (0 for backplane links).
	Length float64
}

// BOM is a topology's bill of materials at a given size, expressed per
// node so that partially-populated networks scale smoothly (the paper's
// Figs. 10/11/15 sweep N continuously through each configuration band).
type BOM struct {
	Topology string
	N        int
	// RoutersPerNode is the router count divided by N.
	RoutersPerNode float64
	// RouterPortsUsed is the number of ports used on each router, for
	// pin-proportional router pricing.
	RouterPortsUsed int
	Links           []LinkGroup
}

// TerminalGroup returns the terminal (processor-router) link group common
// to all topologies: one bidirectional backplane link per node, i.e. two
// unidirectional channels. The paper notes these local links are not
// reduced by any topology choice and dominate small networks (§4.3).
func TerminalGroup() LinkGroup {
	return LinkGroup{Label: "terminal", Class: Backplane, PerNode: 2}
}

// FlatFlyBOM builds the flattened-butterfly bill of materials for n nodes
// using routers of the packaging radix (§5.1.2 configuration selection:
// smallest dimensionality that scales to n). Dimension 1 is packaged
// locally — within a pair of adjacent cabinets — when its subsystem (k^2
// nodes) fits in 4 cabinets or fewer; otherwise its cables span the
// dimension-1 subsystem's own region of the floor. Dimensions >= 2 are
// global cables of average length E/3 (§4.2).
func FlatFlyBOM(n int, p Packaging) (BOM, error) {
	nPrime, kPrime, _, err := core.FixedRadixConfig(p.Radix, n)
	if err != nil {
		return BOM{}, err
	}
	k := p.Radix / (nPrime + 1)
	b := BOM{
		Topology:        "flattened butterfly",
		N:               n,
		RoutersPerNode:  1.0 / float64(k),
		RouterPortsUsed: kPrime,
	}
	b.Links = append(b.Links, TerminalGroup())
	// Each router has (k-1) channels per dimension; per node that is
	// (k-1)/k unidirectional channels per dimension.
	perDim := float64(k-1) / float64(k)
	dim1Nodes := k * k
	if dim1Nodes <= 4*p.NodesPerCabinet {
		b.Links = append(b.Links, LinkGroup{
			Label: "dim-1", Class: LocalCable, PerNode: perDim, Length: p.LocalCableLength,
		})
	} else {
		// The dimension-1 subsystem occupies its own contiguous region of
		// the floor; its cables average a third of that region's edge.
		l := math.Sqrt(float64(dim1Nodes)/p.Density)/3 + p.CableOverhead
		b.Links = append(b.Links, LinkGroup{
			Label: "dim-1", Class: GlobalCable, PerNode: perDim, Length: l,
		})
	}
	for d := 2; d <= nPrime; d++ {
		b.Links = append(b.Links, LinkGroup{
			Label:   fmt.Sprintf("dim-%d", d),
			Class:   GlobalCable,
			PerNode: perDim,
			Length:  p.GlobalCableLength(n, 1.0/3),
		})
	}
	return b, nil
}

// FlatFlyBOMForConfig builds the bill of materials for an explicit (k, n')
// flattened-butterfly configuration — used by the Fig. 13 fixed-N study,
// which compares the Table 4 configurations of a 4K network.
func FlatFlyBOMForConfig(n, k, nPrime int, p Packaging) BOM {
	b := BOM{
		Topology:        fmt.Sprintf("flattened butterfly (k=%d,n'=%d)", k, nPrime),
		N:               n,
		RoutersPerNode:  1.0 / float64(k),
		RouterPortsUsed: (nPrime+1)*(k-1) + 1,
	}
	b.Links = append(b.Links, TerminalGroup())
	perDim := float64(k-1) / float64(k)
	for d := 1; d <= nPrime; d++ {
		group := LinkGroup{Label: fmt.Sprintf("dim-%d", d), PerNode: perDim}
		sub := 1
		for i := 0; i <= d; i++ {
			sub *= k
		}
		switch {
		case d == 1 && k*k <= 4*p.NodesPerCabinet:
			group.Class = LocalCable
			group.Length = p.LocalCableLength
		case sub < n:
			// Intermediate dimension: cables span the dimension's own
			// subsystem region.
			group.Class = GlobalCable
			group.Length = math.Sqrt(float64(sub)/p.Density)/3 + p.CableOverhead
		default:
			group.Class = GlobalCable
			group.Length = p.GlobalCableLength(n, 1.0/3)
		}
		b.Links = append(b.Links, group)
	}
	return b
}

// closLevels returns the number of router levels a folded Clos of
// half-radix modules (32 down / 32 up on a radix-64 part) needs: the
// smallest L with (radix/2)^L >= n. This reproduces the paper's stage
// steps (radix-64: 1K fits 2 levels, 2K forces 3 — §4.3).
func closLevels(n, radix int) int {
	half := radix / 2
	capacity := 1
	for l := 1; ; l++ {
		capacity *= half
		if capacity >= n || l > 30 {
			return l
		}
	}
}

// FoldedClosBOM builds the (full-bisection) folded-Clos bill of materials:
// L levels of 32-down/32-up modules with every inter-router link routed to
// a central router cabinet as a global cable of average length E/4 (§4.2,
// Fig. 9(a)). The top level uses the router's full radix downward.
func FoldedClosBOM(n int, p Packaging) BOM {
	half := p.Radix / 2
	levels := closLevels(n, p.Radix)
	b := BOM{
		Topology:        "folded Clos",
		N:               n,
		RouterPortsUsed: p.Radix,
	}
	// Levels 1..L-1 have n/half routers each; the top level has n/radix.
	b.RoutersPerNode = float64(levels-1)/float64(half) + 1.0/float64(p.Radix)
	b.Links = append(b.Links, TerminalGroup())
	// Full bisection: n uplinks (bidirectional) per level boundary, i.e.
	// 2 unidirectional channels per node per boundary.
	for l := 1; l < levels; l++ {
		b.Links = append(b.Links, LinkGroup{
			Label:   fmt.Sprintf("level-%d", l),
			Class:   GlobalCable,
			PerNode: 2,
			Length:  p.GlobalCableLength(n, 1.0/4),
		})
	}
	if levels == 1 {
		// A single router: no inter-router links.
		b.RoutersPerNode = 1.0 / float64(p.Radix)
	}
	return b
}

// ButterflyBOM builds the conventional-butterfly bill of materials: s =
// ceil(log_radix n) stages; each inter-stage boundary carries one
// unidirectional channel per node, all global cables of average length
// E/3 (§4.2 — the butterfly's channels are the flattened butterfly's,
// before flattening).
func ButterflyBOM(n int, p Packaging) BOM {
	stages := 1
	capacity := p.Radix
	for capacity < n {
		capacity *= p.Radix
		stages++
	}
	b := BOM{
		Topology:        "conventional butterfly",
		N:               n,
		RoutersPerNode:  float64(stages) / float64(p.Radix),
		RouterPortsUsed: p.Radix,
	}
	b.Links = append(b.Links, TerminalGroup())
	for s := 1; s < stages; s++ {
		b.Links = append(b.Links, LinkGroup{
			Label:   fmt.Sprintf("stage-%d", s),
			Class:   GlobalCable,
			PerNode: 1,
			Length:  p.GlobalCableLength(n, 1.0/3),
		})
	}
	return b
}

// GHCBOM builds the generalized-hypercube bill of materials for the given
// per-dimension radices: one router per node (no concentration) with a
// complete graph per dimension, every inter-router channel at full
// terminal bandwidth — the §2.3 configuration whose cost motivates the
// flattened butterfly's k-way concentration ("reducing its cost by a
// factor of k"). Dimensions whose cumulative subsystem fits in a cabinet
// are backplane links; the rest are global cables spanning their
// subsystem's region.
func GHCBOM(n int, radices []int, p Packaging) BOM {
	label := "GHC("
	for i, m := range radices {
		if i > 0 {
			label += ","
		}
		label += fmt.Sprint(m)
	}
	label += ")"
	degree := 1 // terminal
	for _, m := range radices {
		degree += m - 1
	}
	b := BOM{
		Topology:        label,
		N:               n,
		RoutersPerNode:  1,
		RouterPortsUsed: degree,
	}
	b.Links = append(b.Links, TerminalGroup())
	sub := 1
	for d, m := range radices {
		sub *= m
		group := LinkGroup{
			Label:   fmt.Sprintf("dim-%d", d+1),
			PerNode: float64(m - 1), // each router has m-1 channels per dimension
		}
		if sub <= p.NodesPerCabinet {
			group.Class = Backplane
		} else {
			group.Class = GlobalCable
			group.Length = math.Sqrt(float64(sub)/p.Density)/3 + p.CableOverhead
		}
		b.Links = append(b.Links, group)
	}
	return b
}

// DilatedButterflyBOM builds the bill of materials for a dilated
// butterfly (Kruskal & Snir; the paper's §6 related work): every
// inter-stage channel of the conventional butterfly is replicated
// `dilation` times, multiplying both the inter-router link count and the
// router bandwidth (billed as proportionally more router silicon). The
// paper's §6 point — that dilation buys path diversity at a steep cost
// the flattened butterfly avoids — falls directly out of this model.
func DilatedButterflyBOM(n, dilation int, p Packaging) BOM {
	b := ButterflyBOM(n, p)
	if dilation <= 1 {
		return b
	}
	b.Topology = fmt.Sprintf("dilated butterfly (x%d)", dilation)
	b.RoutersPerNode *= float64(dilation)
	for i := range b.Links {
		if b.Links[i].Label == "terminal" {
			continue
		}
		b.Links[i].PerNode *= float64(dilation)
	}
	return b
}

// HypercubeBOM builds the binary-hypercube bill of materials: one router
// per node with ceil(log2 n) dimensions. Dimensions that fit within one
// cabinet are backplane links; higher dimensions are global cables with
// geometrically decreasing lengths (§4.2, Fig. 9(b)). Router cost is
// pin-scaled (the paper adjusts the hypercube router cost by pins).
func HypercubeBOM(n int, p Packaging) BOM {
	dims := 0
	for c := 1; c < n; c <<= 1 {
		dims++
	}
	b := BOM{
		Topology:        "hypercube",
		N:               n,
		RoutersPerNode:  1,
		RouterPortsUsed: dims + 1,
	}
	b.Links = append(b.Links, TerminalGroup())
	localDims := dims
	global := p.HypercubeCableLengths(n, dims)
	localDims = dims - len(global)
	if localDims > 0 {
		b.Links = append(b.Links, LinkGroup{
			Label: "local-dims", Class: Backplane, PerNode: float64(localDims),
		})
	}
	for i, l := range global {
		b.Links = append(b.Links, LinkGroup{
			Label:   fmt.Sprintf("global-dim-%d", dims-i),
			Class:   GlobalCable,
			PerNode: 1,
			Length:  l,
		})
	}
	return b
}
