package cost

import "math"

// Packaging holds the Table 3 technology and packaging assumptions,
// representative of the Cray BlackWidow.
type Packaging struct {
	// Radix is the reference router radix (64).
	Radix int
	// SignalsPerPort is the number of differential pairs per port per
	// direction (3), so a unidirectional channel carries SignalsPerPort
	// signals and a bidirectional link twice that.
	SignalsPerPort int
	// NodesPerCabinet is the packaging density per cabinet (128).
	NodesPerCabinet int
	// Density is the floor density in nodes per square meter (75),
	// already accounting for aisle spacing between cabinet rows.
	Density float64
	// CableOverhead is the extra cable length (meters) added to every
	// inter-cabinet cable for the vertical runs at each end (2 m).
	CableOverhead float64
	// LocalCableLength is the assumed length of a short cable between
	// adjacent cabinets; at 2 m the Table 2 electrical model prices it at
	// the paper's quoted $5.34 per signal.
	LocalCableLength float64
}

// DefaultPackaging returns the Table 3 values.
func DefaultPackaging() Packaging {
	return Packaging{
		Radix:            64,
		SignalsPerPort:   3,
		NodesPerCabinet:  128,
		Density:          75,
		CableOverhead:    2,
		LocalCableLength: 2,
	}
}

// Edge returns E, the length of one edge of the 2-D cabinet layout for n
// nodes: E = sqrt(N/D) (§4.2).
func (p Packaging) Edge(n int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Sqrt(float64(n) / p.Density)
}

// GlobalCableLength returns the average length of a global cable in a
// machine of n nodes for the given topology family's routing of cables:
// the paper's §4.2 estimates are E/3 for the flattened butterfly and
// conventional butterfly (cables run within the 2-D layout) and E/4 for
// the folded Clos (cables only run to a central router cabinet, Lmax =
// E/2). Cable overhead is added on top.
func (p Packaging) GlobalCableLength(n int, fraction float64) float64 {
	return p.Edge(n)*fraction + p.CableOverhead
}

// HypercubeCableLengths returns the per-dimension cable lengths of a
// hypercube with the given total dimensions: dimensions that fit within a
// cabinet are backplane links (length 0 here; priced as backplane), and
// the remaining global dimensions have geometrically decreasing lengths
// E/2, E/4, ... (§4.2), plus overhead. The returned slice has one entry
// per global dimension, longest first.
func (p Packaging) HypercubeCableLengths(n, dims int) []float64 {
	localDims := bits(p.NodesPerCabinet)
	if dims <= localDims {
		return nil
	}
	e := p.Edge(n)
	out := make([]float64, 0, dims-localDims)
	frac := 2.0
	for d := dims; d > localDims; d-- {
		out = append(out, e/frac+p.CableOverhead)
		frac *= 2
	}
	return out
}

// HypercubeAvgGlobalLength evaluates the paper's closed-form estimate of
// the hypercube's average cable length, (E-1)/log2(E), used in Fig 10(b).
func (p Packaging) HypercubeAvgGlobalLength(n int) float64 {
	e := p.Edge(n)
	if e <= 1 {
		return e
	}
	return (e - 1) / math.Log2(e)
}

// bits returns floor(log2(v)).
func bits(v int) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}
