// Package cost implements the paper's §4 interconnection-network cost
// model: router cost (recurring silicon + amortized development), link
// cost by packaging level (backplane, short electrical cable, long
// electrical cable with repeaters), the Fig. 7 cable cost curve, the
// cabinet packaging geometry of §4.2, and the per-topology bill of
// materials used for the Fig. 10/11/13 comparisons.
package cost

import "math"

// Model holds the Table 2 cost constants. All link costs are dollars per
// differential signal; router costs are dollars per router.
type Model struct {
	// RouterChip is the recurring silicon cost per router (MPR model for a
	// TSMC 0.13um 17x17mm chip including packaging and test).
	RouterChip float64
	// RouterDev is the non-recurring development cost amortized per router
	// (~$6M over 20k parts).
	RouterDev float64
	// BackplanePerSignal is the cost of one backplane signal, including
	// the connector ($3000 for 1536 signals).
	BackplanePerSignal float64
	// CableOverheadPerSignal is the y-intercept of the electrical cable
	// cost curve: connectors, shielding, assembly, test.
	CableOverheadPerSignal float64
	// CablePerMeterPerSignal is the copper cost slope.
	CablePerMeterPerSignal float64
	// OpticalPerSignal is the cost of one optical signal (cable plus
	// transceiver share); quoted for reference, the analysis uses
	// electrical cables with repeaters instead (§4.1).
	OpticalPerSignal float64
	// RepeaterSpacing is the longest electrical cable drivable at full
	// rate; beyond it repeaters re-time the signal every RepeaterSpacing
	// meters.
	RepeaterSpacing float64
	// RepeaterStepPerSignal is the cost added per repeater per signal,
	// dominated by the extra connector cost (§4.1, Fig. 7(b)).
	RepeaterStepPerSignal float64
}

// DefaultModel returns the Table 2 constants.
func DefaultModel() Model {
	return Model{
		RouterChip:             90,
		RouterDev:              300,
		BackplanePerSignal:     1.95,
		CableOverheadPerSignal: 3.72,
		CablePerMeterPerSignal: 0.81,
		OpticalPerSignal:       220,
		RepeaterSpacing:        6,
		RepeaterStepPerSignal:  3.72,
	}
}

// RouterCost returns the cost of one router using portsUsed of the
// portsMax pins of the reference radix-64 part. Pin count scales the
// recurring cost (the paper adjusts the hypercube's router cost "based on
// the number of pins required"); development cost is charged in the same
// proportion so that partially-used routers are not charged for unused
// bandwidth.
func (m Model) RouterCost(portsUsed, portsMax int) float64 {
	if portsMax <= 0 {
		portsMax = 64
	}
	frac := float64(portsUsed) / float64(portsMax)
	if frac > 1 {
		frac = 1
	}
	return (m.RouterChip + m.RouterDev) * frac
}

// CableCostPerSignal implements the Fig. 7(b) cable cost curve: a linear
// overhead + $/m model with a step of one repeater (connector) cost every
// RepeaterSpacing meters beyond the first span.
func (m Model) CableCostPerSignal(length float64) float64 {
	if length <= 0 {
		return 0
	}
	c := m.CableOverheadPerSignal + m.CablePerMeterPerSignal*length
	if length > m.RepeaterSpacing {
		repeaters := math.Floor((length - 1e-9) / m.RepeaterSpacing)
		c += repeaters * m.RepeaterStepPerSignal
	}
	return c
}

// LinkClass classifies a link by its packaging level, which determines
// both its cost (Table 2) and its SerDes power (Table 5).
type LinkClass uint8

const (
	// Backplane links stay within one cabinet (< 1 m).
	Backplane LinkClass = iota
	// LocalCable links connect nearby routers with short (~2 m) cables,
	// e.g. flattened-butterfly dimension-1 links between adjacent
	// cabinets.
	LocalCable
	// GlobalCable links cross the machine floor and may need repeaters.
	GlobalCable
)

// String names the class.
func (c LinkClass) String() string {
	switch c {
	case Backplane:
		return "backplane"
	case LocalCable:
		return "local"
	case GlobalCable:
		return "global"
	default:
		return "unknown"
	}
}

// SignalCost returns the cost per differential signal of a link of the
// given class and length (meters, including overhead). Backplane links
// have fixed cost; cables follow the Fig. 7 curve.
func (m Model) SignalCost(class LinkClass, length float64) float64 {
	if class == Backplane {
		return m.BackplanePerSignal
	}
	return m.CableCostPerSignal(length)
}
