package cost

import "fmt"

// Breakdown is the priced bill of materials of one topology at one size.
type Breakdown struct {
	Topology string
	N        int
	// Per-node dollar figures.
	RouterPerNode float64
	LinkPerNode   float64
	TotalPerNode  float64
	// LinkFraction is link cost / total cost (Fig. 10(a)).
	LinkFraction float64
	// AvgCableLength is the channel-weighted mean length of the global
	// cables (Fig. 10(b)), excluding the per-cable overhead like the
	// paper's plot. Topologies whose cables are all local report 0.
	AvgCableLength float64
}

// Price applies the cost model to a bill of materials.
func Price(b BOM, m Model, p Packaging) Breakdown {
	out := Breakdown{Topology: b.Topology, N: b.N}
	out.RouterPerNode = b.RoutersPerNode * m.RouterCost(b.RouterPortsUsed, p.Radix)
	var cableLen, cableCount float64
	for _, g := range b.Links {
		perSignal := m.SignalCost(g.Class, g.Length)
		out.LinkPerNode += g.PerNode * float64(p.SignalsPerPort) * perSignal
		if g.Class == GlobalCable {
			cableLen += g.PerNode * (g.Length - p.CableOverhead)
			cableCount += g.PerNode
		}
	}
	if cableCount > 0 {
		out.AvgCableLength = cableLen / cableCount
	}
	out.TotalPerNode = out.RouterPerNode + out.LinkPerNode
	if out.TotalPerNode > 0 {
		out.LinkFraction = out.LinkPerNode / out.TotalPerNode
	}
	return out
}

// Comparison holds one row of the Fig. 10/11 sweep: the four topologies
// priced at one network size.
type Comparison struct {
	N          int
	FlatFly    Breakdown
	FoldedClos Breakdown
	Butterfly  Breakdown
	Hypercube  Breakdown
}

// Compare prices all four §4.3 topologies at the given size.
func Compare(n int, m Model, p Packaging) (Comparison, error) {
	ff, err := FlatFlyBOM(n, p)
	if err != nil {
		return Comparison{}, fmt.Errorf("cost: %w", err)
	}
	return Comparison{
		N:          n,
		FlatFly:    Price(ff, m, p),
		FoldedClos: Price(FoldedClosBOM(n, p), m, p),
		Butterfly:  Price(ButterflyBOM(n, p), m, p),
		Hypercube:  Price(HypercubeBOM(n, p), m, p),
	}, nil
}

// Sweep prices the four topologies across the given sizes (Fig. 11).
func Sweep(sizes []int, m Model, p Packaging) ([]Comparison, error) {
	out := make([]Comparison, 0, len(sizes))
	for _, n := range sizes {
		c, err := Compare(n, m, p)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// SavingsVsClos returns the flattened butterfly's fractional cost
// reduction relative to the folded Clos (the paper reports 35-53%
// depending on N).
func (c Comparison) SavingsVsClos() float64 {
	if c.FoldedClos.TotalPerNode == 0 {
		return 0
	}
	return 1 - c.FlatFly.TotalPerNode/c.FoldedClos.TotalPerNode
}
