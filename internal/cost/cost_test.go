package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCableCostCurveFig7(t *testing.T) {
	m := DefaultModel()
	// The paper quotes ~$5.34 per signal for a cable connecting routers
	// within 2 m.
	if got := m.CableCostPerSignal(2); math.Abs(got-5.34) > 0.01 {
		t.Errorf("2m cable = %.2f, want 5.34", got)
	}
	// No repeater up to 6 m.
	if got := m.CableCostPerSignal(6); math.Abs(got-(3.72+0.81*6)) > 1e-9 {
		t.Errorf("6m cable = %.2f, want linear", got)
	}
	// One repeater step just past 6 m.
	just := m.CableCostPerSignal(6.01)
	if math.Abs(just-(3.72+0.81*6.01+3.72)) > 1e-9 {
		t.Errorf("6.01m cable = %.2f, want one repeater step", just)
	}
	// Two repeaters past 12 m.
	if got := m.CableCostPerSignal(12.5); math.Abs(got-(3.72+0.81*12.5+2*3.72)) > 1e-9 {
		t.Errorf("12.5m cable = %.2f, want two repeater steps", got)
	}
	if m.CableCostPerSignal(0) != 0 || m.CableCostPerSignal(-1) != 0 {
		t.Error("non-positive lengths should cost 0")
	}
}

func TestCableCostMonotonic(t *testing.T) {
	m := DefaultModel()
	check := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 100))
		b = math.Abs(math.Mod(b, 100))
		if a > b {
			a, b = b, a
		}
		return m.CableCostPerSignal(a) <= m.CableCostPerSignal(b)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRouterCostTable2(t *testing.T) {
	m := DefaultModel()
	// $390 for a fully used radix-64 router ($90 silicon + $300
	// amortized development).
	if got := m.RouterCost(64, 64); math.Abs(got-390) > 1e-9 {
		t.Errorf("full router = %.2f, want 390", got)
	}
	// Pin-proportional for partially used routers (the paper adjusts the
	// hypercube's router cost by pins).
	if got := m.RouterCost(11, 64); math.Abs(got-390*11.0/64) > 1e-9 {
		t.Errorf("11-port router = %.2f", got)
	}
	// Over-provisioned requests clamp.
	if got := m.RouterCost(100, 64); got != 390 {
		t.Errorf("clamp failed: %v", got)
	}
	if got := m.RouterCost(32, 0); got != 390*0.5 {
		t.Errorf("default radix not applied: %v", got)
	}
}

func TestSignalCostClasses(t *testing.T) {
	m := DefaultModel()
	if m.SignalCost(Backplane, 0) != 1.95 {
		t.Error("backplane signal should cost $1.95")
	}
	if m.SignalCost(LocalCable, 2) != m.CableCostPerSignal(2) {
		t.Error("local cable should follow the cable curve")
	}
	if m.SignalCost(GlobalCable, 10) != m.CableCostPerSignal(10) {
		t.Error("global cable should follow the cable curve")
	}
}

func TestLinkClassString(t *testing.T) {
	if Backplane.String() != "backplane" || LocalCable.String() != "local" ||
		GlobalCable.String() != "global" || LinkClass(9).String() != "unknown" {
		t.Error("LinkClass strings wrong")
	}
}

func TestEdgeTable3(t *testing.T) {
	p := DefaultPackaging()
	// E = sqrt(N/75); 1024 nodes -> ~3.7 m.
	if got := p.Edge(1024); math.Abs(got-math.Sqrt(1024.0/75)) > 1e-9 {
		t.Errorf("Edge(1024) = %v", got)
	}
	if p.Edge(0) != 0 || p.Edge(-5) != 0 {
		t.Error("degenerate sizes should give 0")
	}
}

func TestLocalCableMatchesQuotedPrice(t *testing.T) {
	// Table 3's 2 m local cable must price at the paper's quoted $5.34.
	m, p := DefaultModel(), DefaultPackaging()
	if got := m.SignalCost(LocalCable, p.LocalCableLength); math.Abs(got-5.34) > 0.01 {
		t.Errorf("local cable = %.3f, want 5.34", got)
	}
}

func TestHypercubeCableLengths(t *testing.T) {
	p := DefaultPackaging()
	// 1024 nodes, 10 dims: 7 dims fit in a 128-node cabinet, 3 global.
	lens := p.HypercubeCableLengths(1024, 10)
	if len(lens) != 3 {
		t.Fatalf("got %d global dims, want 3", len(lens))
	}
	e := p.Edge(1024)
	want := []float64{e/2 + 2, e/4 + 2, e/8 + 2}
	for i := range want {
		if math.Abs(lens[i]-want[i]) > 1e-9 {
			t.Errorf("len[%d] = %v, want %v", i, lens[i], want[i])
		}
	}
	if got := p.HypercubeCableLengths(64, 6); got != nil {
		t.Errorf("all-local hypercube should have no global cables, got %v", got)
	}
}

func TestClosLevels(t *testing.T) {
	// Radix-64 modules (32 up / 32 down): 1K fits 2 levels, 2K forces 3
	// (the paper's §4.3 stage step), 32K fits 3, 64K forces 4.
	cases := []struct{ n, want int }{
		{32, 1}, {1024, 2}, {1025, 3}, {2048, 3}, {4096, 3}, {32768, 3}, {65536, 4},
	}
	for _, c := range cases {
		if got := closLevels(c.n, 64); got != c.want {
			t.Errorf("closLevels(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFlatFlyBOMConfigBands(t *testing.T) {
	p := DefaultPackaging()
	b, err := FlatFlyBOM(1024, p)
	if err != nil {
		t.Fatal(err)
	}
	// n'=1, k=32: terminal + one dimension.
	if len(b.Links) != 2 || b.RouterPortsUsed != 63 {
		t.Fatalf("1K FB BOM unexpected: %+v", b)
	}
	if math.Abs(b.RoutersPerNode-1.0/32) > 1e-12 {
		t.Errorf("1K FB routers/node = %v", b.RoutersPerNode)
	}
	b, err = FlatFlyBOM(65536, p)
	if err != nil {
		t.Fatal(err)
	}
	// n'=3, k=16 (Fig 8): dim-1 local (256 nodes = 2 cabinets), dims 2-3 global.
	if len(b.Links) != 4 {
		t.Fatalf("64K FB should have terminal + 3 dims, got %+v", b.Links)
	}
	if b.Links[1].Class != LocalCable {
		t.Errorf("64K FB dim-1 should be local, got %v", b.Links[1].Class)
	}
	for _, g := range b.Links[2:] {
		if g.Class != GlobalCable {
			t.Errorf("64K FB %s should be global", g.Label)
		}
	}
	if _, err := FlatFlyBOM(1<<40, p); err == nil {
		t.Error("impossible size accepted")
	}
}

func TestFoldedClosBOMLinkCount(t *testing.T) {
	p := DefaultPackaging()
	b := FoldedClosBOM(1024, p)
	// §4.3: the 1K folded Clos needs 2048 inter-router links; per node
	// that is 2 unidirectional channels.
	var inter float64
	for _, g := range b.Links[1:] {
		inter += g.PerNode
	}
	if math.Abs(inter-2) > 1e-12 {
		t.Errorf("1K Clos inter-router channels/node = %v, want 2 (2048 total)", inter)
	}
	// 48 routers for 1K: 32 leaves + 16 top.
	if math.Abs(b.RoutersPerNode-48.0/1024) > 1e-12 {
		t.Errorf("1K Clos routers/node = %v, want 48/1024", b.RoutersPerNode)
	}
}

func TestFig11CostComparison(t *testing.T) {
	m, p := DefaultModel(), DefaultPackaging()
	// Headline claims of §4.3/Fig 11, tested as shape (who wins, rough
	// factors), not absolute dollars.
	for _, n := range []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536} {
		c, err := Compare(n, m, p)
		if err != nil {
			t.Fatal(err)
		}
		if c.FlatFly.TotalPerNode >= c.FoldedClos.TotalPerNode {
			t.Errorf("N=%d: FB (%.1f) should undercut folded Clos (%.1f)",
				n, c.FlatFly.TotalPerNode, c.FoldedClos.TotalPerNode)
		}
		if c.Hypercube.TotalPerNode <= c.FoldedClos.TotalPerNode {
			t.Errorf("N=%d: hypercube (%.1f) should be the most expensive (Clos %.1f)",
				n, c.Hypercube.TotalPerNode, c.FoldedClos.TotalPerNode)
		}
	}
	// 35-38% savings below 1K, rising above 40% for 2K-8K.
	small, err := Compare(1024, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if s := small.SavingsVsClos(); s < 0.30 || s > 0.45 {
		t.Errorf("1K savings = %.2f, want ~0.35", s)
	}
	mid, err := Compare(4096, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if s := mid.SavingsVsClos(); s < 0.40 || s > 0.60 {
		t.Errorf("4K savings = %.2f, want ~0.5", s)
	}
	// The conventional butterfly is the cheapest network for 1K < N <= 4K
	// (2 stages, one inter-router link per node).
	for _, n := range []int{2048, 4096} {
		c, err := Compare(n, m, p)
		if err != nil {
			t.Fatal(err)
		}
		if c.Butterfly.TotalPerNode >= c.FlatFly.TotalPerNode {
			t.Errorf("N=%d: butterfly (%.1f) should undercut FB (%.1f)",
				n, c.Butterfly.TotalPerNode, c.FlatFly.TotalPerNode)
		}
	}
}

func TestFig11StepStructure(t *testing.T) {
	m, p := DefaultModel(), DefaultPackaging()
	// The folded Clos steps up when it gains a level (1K -> 2K); the FB
	// steps when it gains a dimension (1K -> 2K as well, radix 64), and
	// the paper notes the FB's step is smaller (one link added vs two).
	at := func(n int) Comparison {
		c, err := Compare(n, m, p)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2 := at(1024), at(2048)
	closStep := c2.FoldedClos.TotalPerNode - c1.FoldedClos.TotalPerNode
	ffStep := c2.FlatFly.TotalPerNode - c1.FlatFly.TotalPerNode
	if closStep <= 0 || ffStep <= 0 {
		t.Fatalf("expected cost steps at 1K->2K: clos %+.1f ff %+.1f", closStep, ffStep)
	}
	if ffStep >= closStep {
		t.Errorf("FB step (%.1f) should be smaller than Clos step (%.1f)", ffStep, closStep)
	}
}

func TestFig10LinkFraction(t *testing.T) {
	m, p := DefaultModel(), DefaultPackaging()
	// §4.3/Fig 10(a): link cost dominates — ~80% for FB/Clos/butterfly at
	// scale, ~60% for large hypercubes (routers weigh more there).
	c, err := Compare(16384, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if c.FlatFly.LinkFraction < 0.6 || c.FoldedClos.LinkFraction < 0.6 {
		t.Errorf("link fraction should dominate: FB %.2f Clos %.2f",
			c.FlatFly.LinkFraction, c.FoldedClos.LinkFraction)
	}
	if c.Hypercube.LinkFraction >= c.FlatFly.LinkFraction {
		t.Errorf("hypercube link fraction (%.2f) should be below FB's (%.2f): routers dominate",
			c.Hypercube.LinkFraction, c.FlatFly.LinkFraction)
	}
}

func TestFig10AvgCableLength(t *testing.T) {
	m, p := DefaultModel(), DefaultPackaging()
	// Fig 10(b): at large N the FB's average cable is longer than the
	// folded Clos's (~22%) and the hypercube's is the shortest.
	c, err := Compare(16384, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if c.FlatFly.AvgCableLength <= c.FoldedClos.AvgCableLength {
		t.Errorf("FB avg cable (%.2f) should exceed Clos (%.2f)",
			c.FlatFly.AvgCableLength, c.FoldedClos.AvgCableLength)
	}
	if c.Hypercube.AvgCableLength >= c.FoldedClos.AvgCableLength {
		t.Errorf("hypercube avg cable (%.2f) should be below Clos (%.2f): logarithmic distribution",
			c.Hypercube.AvgCableLength, c.FoldedClos.AvgCableLength)
	}
}

func TestFig13FixedNCost(t *testing.T) {
	m, p := DefaultModel(), DefaultPackaging()
	// §5.1.1/Fig 13: for N=4K, cost per node rises steeply with n' —
	// ~45% from n'=1 to n'=2 and ~300% from n'=1 to n'=5 in the paper.
	configs := []struct{ k, np int }{{64, 1}, {16, 2}, {8, 3}, {4, 5}}
	var costs []float64
	for _, c := range configs {
		b := FlatFlyBOMForConfig(4096, c.k, c.np, p)
		costs = append(costs, Price(b, m, p).TotalPerNode)
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] <= costs[i-1] {
			t.Errorf("cost should increase with n': %v", costs)
		}
	}
	if ratio := costs[1] / costs[0]; ratio < 1.2 || ratio > 2.0 {
		t.Errorf("n'=1 -> n'=2 ratio = %.2f, want ~1.45", ratio)
	}
	if ratio := costs[3] / costs[0]; ratio < 2.0 {
		t.Errorf("n'=1 -> n'=5 ratio = %.2f, want large (~4x in the paper)", ratio)
	}
}

func TestFig13AvgCableLengthDecreases(t *testing.T) {
	m, p := DefaultModel(), DefaultPackaging()
	// Fig 13's line plot: average cable length decreases as n' increases
	// (more dimensions are packaged locally).
	configs := []struct{ k, np int }{{64, 1}, {16, 2}, {8, 3}, {4, 5}}
	prev := math.Inf(1)
	for _, c := range configs {
		b := FlatFlyBOMForConfig(4096, c.k, c.np, p)
		avg := Price(b, m, p).AvgCableLength
		if avg > prev+1e-9 {
			t.Errorf("avg cable length should not increase with n': %.3f after %.3f (k=%d)", avg, prev, c.k)
		}
		prev = avg
	}
}

func TestSweep(t *testing.T) {
	m, p := DefaultModel(), DefaultPackaging()
	rows, err := Sweep([]int{1024, 4096}, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].N != 1024 || rows[1].N != 4096 {
		t.Fatalf("sweep rows wrong: %+v", rows)
	}
	if _, err := Sweep([]int{1 << 40}, m, p); err == nil {
		t.Error("impossible sweep accepted")
	}
}

func TestPriceBreakdownConsistency(t *testing.T) {
	m, p := DefaultModel(), DefaultPackaging()
	b, err := FlatFlyBOM(4096, p)
	if err != nil {
		t.Fatal(err)
	}
	br := Price(b, m, p)
	if math.Abs(br.TotalPerNode-(br.RouterPerNode+br.LinkPerNode)) > 1e-9 {
		t.Error("total != router + link")
	}
	if br.LinkFraction <= 0 || br.LinkFraction >= 1 {
		t.Errorf("link fraction %v out of (0,1)", br.LinkFraction)
	}
}

func TestGHCBOMSection23(t *testing.T) {
	// §2.3: without concentration, the (8,8,16) GHC for 1K nodes is far
	// more expensive than the flattened butterfly — concentration reduces
	// cost by roughly a factor of k.
	m, p := DefaultModel(), DefaultPackaging()
	ghc := Price(GHCBOM(1024, []int{8, 8, 16}, p), m, p)
	ff, err := FlatFlyBOM(1024, p)
	if err != nil {
		t.Fatal(err)
	}
	fb := Price(ff, m, p)
	ratio := ghc.TotalPerNode / fb.TotalPerNode
	if ratio < 5 {
		t.Errorf("GHC/FB cost ratio = %.1f, want large (paper: ~k)", ratio)
	}
	// The GHC's link inventory: 7+7+15 = 29 channels per node.
	var perNode float64
	for _, g := range GHCBOM(1024, []int{8, 8, 16}, p).Links[1:] {
		perNode += g.PerNode
	}
	if perNode != 29 {
		t.Errorf("GHC channels/node = %v, want 29", perNode)
	}
	// Dimensions within a cabinet are backplane.
	b := GHCBOM(1024, []int{8, 8, 16}, p)
	if b.Links[1].Class != Backplane || b.Links[2].Class != Backplane {
		t.Error("first two GHC dims (8, 64 nodes) should be backplane")
	}
	if b.Links[3].Class != GlobalCable {
		t.Error("third GHC dim (1024 nodes) should be global")
	}
}

func TestHypercubeAvgGlobalLength(t *testing.T) {
	p := DefaultPackaging()
	// (E-1)/log2(E) for E > 1; degenerate inputs fall back to E.
	e := p.Edge(4096)
	want := (e - 1) / (math.Log2(e))
	if got := p.HypercubeAvgGlobalLength(4096); math.Abs(got-want) > 1e-9 {
		t.Errorf("HypercubeAvgGlobalLength = %v, want %v", got, want)
	}
	if got := p.HypercubeAvgGlobalLength(1); got > 1 {
		t.Errorf("tiny machine should return E itself, got %v", got)
	}
}

func TestDilatedButterflyBOMSection6(t *testing.T) {
	// §6: dilating the butterfly "significantly increase[s] the cost of
	// the network with additional links as well as routers" — at 4K the
	// 2-dilated butterfly must cost well above the plain butterfly and
	// above the flattened butterfly, which achieves the same path
	// diversity by flattening instead.
	m, p := DefaultModel(), DefaultPackaging()
	plain := Price(ButterflyBOM(4096, p), m, p)
	dilated := Price(DilatedButterflyBOM(4096, 2, p), m, p)
	ffBOM, err := FlatFlyBOM(4096, p)
	if err != nil {
		t.Fatal(err)
	}
	fb := Price(ffBOM, m, p)
	if dilated.TotalPerNode < 1.5*plain.TotalPerNode {
		t.Errorf("2-dilated butterfly (%.1f) should cost well above plain (%.1f)",
			dilated.TotalPerNode, plain.TotalPerNode)
	}
	if dilated.TotalPerNode <= fb.TotalPerNode {
		t.Errorf("2-dilated butterfly (%.1f) should cost above the flattened butterfly (%.1f)",
			dilated.TotalPerNode, fb.TotalPerNode)
	}
	// Dilation 1 is the identity.
	if got := Price(DilatedButterflyBOM(4096, 1, p), m, p); got.TotalPerNode != plain.TotalPerNode {
		t.Error("dilation 1 should match the plain butterfly")
	}
}
