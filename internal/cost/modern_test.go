package cost

import (
	"strings"
	"testing"
)

// TestSlimFlyConfigSelection checks the q chosen for representative
// sizes: the smallest valid MMS field size whose default-concentration
// network reaches n within the radix.
func TestSlimFlyConfigSelection(t *testing.T) {
	cases := []struct {
		n, q int
	}{
		{100, 5},    // 2*25*4 = 200
		{300, 7},    // 2*49*5 = 490
		{1024, 9},   // 2*81*7 = 1134
		{2000, 11},  // 2*121*9 = 2178
		{10000, 19}, // 2*361*15 = 10830
	}
	for _, tc := range cases {
		q, _, _, err := slimFlyConfig(tc.n, 64)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if q != tc.q {
			t.Errorf("n=%d selected q=%d, want %d", tc.n, q, tc.q)
		}
	}
	// q=4w (and non-prime-powers like 15) must be skipped: n=1000 needs
	// more than q=7's 490 terminals and lands on q=9 (2*81*7 = 1134).
	if q, _, _, err := slimFlyConfig(1000, 64); err != nil || q != 9 {
		t.Errorf("n=1000 selected q=%d (%v), want the prime power 9", q, err)
	}
	if _, _, _, err := slimFlyConfig(1<<20, 64); err == nil {
		t.Error("1M nodes within radix 64 should be unreachable")
	}
}

// TestDragonflyConfigSelection checks the balanced-dragonfly h selection
// and the radix limit.
func TestDragonflyConfigSelection(t *testing.T) {
	if h, err := dragonflyConfig(1024, 64); err != nil || h != 4 {
		t.Errorf("n=1024 selected h=%d (%v), want 4 (2112 terminals)", h, err)
	}
	if _, err := dragonflyConfig(1<<24, 64); err == nil {
		t.Error("16M nodes within radix 64 should be unreachable")
	}
}

// TestModernBOMShapes sanity-checks the bills of materials: the Slim Fly
// fabric is all-global, the dragonfly keeps its local group links off
// global cables at cabinet scale, and both respect the packaging radix.
func TestModernBOMShapes(t *testing.T) {
	p := DefaultPackaging()
	sf, err := SlimFlyBOM(1024, p)
	if err != nil {
		t.Fatal(err)
	}
	if sf.RouterPortsUsed > p.Radix {
		t.Errorf("slim fly uses %d ports of a radix-%d part", sf.RouterPortsUsed, p.Radix)
	}
	for _, g := range sf.Links {
		if g.Label != "terminal" && g.Class != GlobalCable {
			t.Errorf("slim fly link %q is %v, want all-global fabric", g.Label, g.Class)
		}
	}
	df, err := DragonflyBOM(1024, p)
	if err != nil {
		t.Fatal(err)
	}
	if df.RouterPortsUsed > p.Radix {
		t.Errorf("dragonfly uses %d ports of a radix-%d part", df.RouterPortsUsed, p.Radix)
	}
	if !strings.Contains(df.Topology, "h=4") {
		t.Errorf("dragonfly topology label %q", df.Topology)
	}
	var sawLocal bool
	for _, g := range df.Links {
		if g.Label == "local" {
			sawLocal = true
			if g.Class == GlobalCable {
				t.Errorf("h=4 dragonfly group (32 nodes) billed local links as global cables")
			}
		}
	}
	if !sawLocal {
		t.Error("dragonfly BOM has no local link group")
	}
}
