package cost

import (
	"fmt"
	"math"
)

// isPrimePower reports whether q = p^m for a prime p and m >= 1.
func isPrimePower(q int) bool {
	if q < 2 {
		return false
	}
	for f := 2; f*f <= q; f++ {
		if q%f == 0 {
			for q%f == 0 {
				q /= f
			}
			return q == 1
		}
	}
	return true // q itself is prime
}

// slimFlyConfig selects the smallest MMS field size q whose Slim Fly at
// the default concentration reaches n terminals within the packaging
// radix: 2q^2 routers of network degree k' = (3q-delta)/2 with
// ceil(k'/2) terminals each, so the router uses k' + ceil(k'/2) ports.
func slimFlyConfig(n, radix int) (q, kPrime, conc int, err error) {
	for q = 5; ; q += 2 {
		if q%4 == 0 || !isPrimePower(q) {
			continue
		}
		delta := 1
		if q%4 == 3 {
			delta = -1
		}
		kPrime = (3*q - delta) / 2
		conc = (kPrime + 1) / 2
		if kPrime+conc > radix {
			return 0, 0, 0, fmt.Errorf("cost: no Slim Fly configuration reaches %d nodes within radix %d", n, radix)
		}
		if 2*q*q*conc >= n {
			return q, kPrime, conc, nil
		}
	}
}

// SlimFlyBOM builds the Slim Fly bill of materials for n nodes using the
// smallest MMS graph that scales to n within the packaging radix. The
// MMS graph is a uniform random-like expander with no exploitable
// locality — Cayley and cross-block neighbors are scattered across the
// whole floor — so every inter-router channel is a global cable of
// average length E/3, the same assumption the flattened butterfly's
// high dimensions use (§4.2). That is the cost side of the Slim Fly
// trade: fewer, longer channels per node from the diameter-2 graph.
func SlimFlyBOM(n int, p Packaging) (BOM, error) {
	q, kPrime, conc, err := slimFlyConfig(n, p.Radix)
	if err != nil {
		return BOM{}, err
	}
	b := BOM{
		Topology:        fmt.Sprintf("slim fly (q=%d)", q),
		N:               n,
		RoutersPerNode:  1.0 / float64(conc),
		RouterPortsUsed: kPrime + conc,
	}
	b.Links = append(b.Links, TerminalGroup())
	b.Links = append(b.Links, LinkGroup{
		Label:   "fabric",
		Class:   GlobalCable,
		PerNode: float64(kPrime) / float64(conc),
		Length:  p.GlobalCableLength(n, 1.0/3),
	})
	return b, nil
}

// dragonflyConfig selects the smallest balanced dragonfly (a = 2h,
// p = h) reaching n terminals within the packaging radix: h(2h)(2h^2+1)
// terminals on routers of radix 4h-1.
func dragonflyConfig(n, radix int) (h int, err error) {
	for h = 1; ; h++ {
		if 4*h-1 > radix {
			return 0, fmt.Errorf("cost: no balanced dragonfly reaches %d nodes within radix %d", n, radix)
		}
		if h*2*h*(2*h*h+1) >= n {
			return h, nil
		}
	}
}

// DragonflyBOM builds the balanced-dragonfly bill of materials for n
// nodes: a = 2h routers per group in a complete local graph, h global
// channels per router, p = h terminals. Local channels stay within the
// group's cabinets (backplane when one cabinet holds the group, short
// local cable when a few do, otherwise cables spanning the group's own
// floor region); only the h global channels per router leave the group
// as E/3 cables — the packaging locality the dragonfly was designed
// around, and the cost contrast with the Slim Fly's all-global fabric.
func DragonflyBOM(n int, p Packaging) (BOM, error) {
	h, err := dragonflyConfig(n, p.Radix)
	if err != nil {
		return BOM{}, err
	}
	a, conc := 2*h, h
	b := BOM{
		Topology:        fmt.Sprintf("dragonfly (h=%d)", h),
		N:               n,
		RoutersPerNode:  1.0 / float64(conc),
		RouterPortsUsed: conc + a - 1 + h,
	}
	b.Links = append(b.Links, TerminalGroup())
	local := LinkGroup{
		Label:   "local",
		PerNode: float64(a-1) / float64(conc),
	}
	groupNodes := a * conc
	switch {
	case groupNodes <= p.NodesPerCabinet:
		local.Class = Backplane
	case groupNodes <= 4*p.NodesPerCabinet:
		local.Class = LocalCable
		local.Length = p.LocalCableLength
	default:
		local.Class = GlobalCable
		local.Length = math.Sqrt(float64(groupNodes)/p.Density)/3 + p.CableOverhead
	}
	b.Links = append(b.Links, local)
	b.Links = append(b.Links, LinkGroup{
		Label:   "global",
		Class:   GlobalCable,
		PerNode: float64(h) / float64(conc),
		Length:  p.GlobalCableLength(n, 1.0/3),
	})
	return b, nil
}
