package nocsvc_test

import (
	"bufio"
	"fmt"
	"net"
	"reflect"
	"testing"

	"flatnet/internal/nocsvc"
	"flatnet/nocsvc/client"
)

// TestCheckpointCloneBitIdentical takes a checkpoint of a warmed, loaded
// session and opens two clones from it. Both clones must serve an
// identical estimate sequence: a clone restores every buffer, RNG stream
// and in-flight flit, so running the same requests against either is
// bit-for-bit the same simulation.
func TestCheckpointCloneBitIdentical(t *testing.T) {
	_, addr := startServer(t, nocsvc.ServerConfig{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sess, err := c.OpenSession(client.OpenParams{
		Topology: "flatfly", K: 4, N: 2,
		Load: 0.25, Warmup: 300, Seed: 11, Pattern: "randperm",
	})
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := sess.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ckpt == "" {
		t.Fatal("empty checkpoint id")
	}
	// The origin session keeps running after a checkpoint: advance it so
	// the clones demonstrably derive from the stored snapshot, not from
	// the live session's later state.
	if _, err := sess.Estimate(0, 9, 64); err != nil {
		t.Fatal(err)
	}

	var items []client.EstimateParams
	for i := 0; i < 12; i++ {
		items = append(items, client.EstimateParams{Src: i, Dst: 15 - i, Bytes: 32 + 8*i})
	}
	runClone := func() ([]client.EstimateResult, client.SessionInfo) {
		t.Helper()
		cl, err := c.CloneSession(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close() //nolint:errcheck
		if cl.ID() == sess.ID() {
			t.Fatalf("clone reused session id %s", cl.ID())
		}
		res, err := cl.BatchEstimate(items)
		if err != nil {
			t.Fatal(err)
		}
		return res, cl.Info()
	}
	resA, infoA := runClone()
	resB, infoB := runClone()
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("clones diverged:\nA: %+v\nB: %+v", resA, resB)
	}
	if infoA != infoB {
		t.Fatalf("clone infos differ: %+v vs %+v", infoA, infoB)
	}
	if infoA.Nodes != sess.Info().Nodes || infoA.Algorithm != sess.Info().Algorithm {
		t.Fatalf("clone info %+v does not match origin %+v", infoA, sess.Info())
	}
	// Clones skip warm-up: they start at the checkpointed cycle, which is
	// at least the origin's warm-up window.
	if infoA.WarmCycles < 300 {
		t.Fatalf("clone starts at cycle %d, checkpoint was past warm-up (300)", infoA.WarmCycles)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.Checkpoints != 1 || st.Server.Clones != 2 {
		t.Fatalf("stats: %d checkpoints, %d clones; want 1, 2", st.Server.Checkpoints, st.Server.Clones)
	}
}

// TestCheckpointStoreEvicts pins the capped FIFO: past MaxCheckpoints
// the oldest checkpoint is evicted and cloning it fails with
// no_checkpoint, while the newest stays cloneable.
func TestCheckpointStoreEvicts(t *testing.T) {
	_, addr := startServer(t, nocsvc.ServerConfig{MaxCheckpoints: 2})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sess, err := c.OpenSession(client.OpenParams{Topology: "flatfly", K: 2, N: 2, Warmup: 10})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 3)
	for i := range ids {
		if ids[i], err = sess.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CloneSession(ids[0]); err == nil {
		t.Fatalf("clone of evicted checkpoint %s succeeded", ids[0])
	} else if perr, ok := err.(*client.Error); !ok || perr.Code != nocsvc.CodeNoCheckpoint {
		t.Fatalf("evicted clone error: %v", err)
	}
	cl, err := c.CloneSession(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	cl.Close() //nolint:errcheck
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.Checkpoints != 2 {
		t.Fatalf("store holds %d checkpoints, cap is 2", st.Server.Checkpoints)
	}
}

// TestOpenPatternValidation exercises the traffic-pattern registry
// through open_session: aliases canonicalize, unknown names are
// rejected before any network is built.
func TestOpenPatternValidation(t *testing.T) {
	_, addr := startServer(t, nocsvc.ServerConfig{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sess, err := c.OpenSession(client.OpenParams{
		Topology: "flatfly", K: 4, N: 2, Warmup: 10, Pattern: "BC",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Session == nil || st.Session.Pattern != "bitcomp" {
		t.Fatalf("alias BC did not canonicalize: %+v", st.Session)
	}
	if _, err := c.OpenSession(client.OpenParams{
		Topology: "flatfly", K: 4, N: 2, Warmup: 10, Pattern: "nope",
	}); err == nil {
		t.Fatal("unknown pattern accepted")
	} else if perr, ok := err.(*client.Error); !ok || perr.Code != nocsvc.CodeBadRequest {
		t.Fatalf("unknown pattern error: %v", err)
	}
}

// TestCheckpointVerbValidation drives the new verbs' request validation
// through the wire: missing/foreign parameters and unknown ids all
// answer structured errors without disturbing the connection.
func TestCheckpointVerbValidation(t *testing.T) {
	_, addr := startServer(t, nocsvc.ServerConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	roundTrip := func(line string) nocsvc.Response {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			t.Fatal(err)
		}
		raw, err := rd.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		resp, err := nocsvc.DecodeResponse(raw)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := roundTrip(`{"v":1,"id":1,"verb":"checkpoint_session"}`); resp.Err == nil || resp.Err.Code != nocsvc.CodeBadRequest {
		t.Fatalf("checkpoint without session: %+v", resp)
	}
	if resp := roundTrip(`{"v":1,"id":2,"verb":"checkpoint_session","session":"nope"}`); resp.Err == nil || resp.Err.Code != nocsvc.CodeNoSession {
		t.Fatalf("checkpoint of unknown session: %+v", resp)
	}
	if resp := roundTrip(`{"v":1,"id":3,"verb":"clone_session"}`); resp.Err == nil || resp.Err.Code != nocsvc.CodeBadRequest {
		t.Fatalf("clone without checkpoint: %+v", resp)
	}
	if resp := roundTrip(`{"v":1,"id":4,"verb":"clone_session","checkpoint":"c99"}`); resp.Err == nil || resp.Err.Code != nocsvc.CodeNoCheckpoint {
		t.Fatalf("clone of unknown checkpoint: %+v", resp)
	}
	if resp := roundTrip(`{"v":1,"id":5,"verb":"clone_session","checkpoint":"c1","session":"s1"}`); resp.Err == nil || resp.Err.Code != nocsvc.CodeBadRequest {
		t.Fatalf("clone with foreign session param: %+v", resp)
	}
	if resp := roundTrip(`{"v":1,"id":6,"verb":"stats","checkpoint":"c1"}`); resp.Err == nil || resp.Err.Code != nocsvc.CodeBadRequest {
		t.Fatalf("stats with foreign checkpoint param: %+v", resp)
	}
	// The connection stays healthy afterwards.
	if resp := roundTrip(`{"v":1,"id":7,"verb":"stats"}`); !resp.OK || resp.Stats == nil {
		t.Fatalf("stats after errors: %+v", resp)
	}
}
