package nocsvc

import (
	"bytes"
	"sync"
	"sync/atomic"
	"time"

	"flatnet/internal/sim"
	"flatnet/internal/topo"
)

// SessionStats is one session's live detail, served by the stats verb.
type SessionStats struct {
	ID        string  `json:"id"`
	Topology  string  `json:"topology"`
	Algorithm string  `json:"algorithm"`
	Nodes     int     `json:"nodes"`
	Load      float64 `json:"load"`
	// Pattern is the background traffic's spatial pattern.
	Pattern string `json:"pattern"`
	// Workers is the cycle-core worker count the session runs with.
	Workers int `json:"workers"`
	// Cycles is how far the session's network has advanced.
	Cycles int64 `json:"cycles"`
	// CyclesPerSec is the session's simulation rate: cycles advanced per
	// second of wall-clock time the worker spent simulating (warm-up and
	// estimates; idle time excluded). 0 until the first cycle completes.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// Estimates counts transfers estimated so far (batch items included).
	Estimates int64 `json:"estimates"`
	// QueueDepth is the current inflight command queue length.
	QueueDepth int `json:"queue_depth"`
	// IdleMS is how long ago the session last accepted a request.
	IdleMS int64 `json:"idle_ms"`
}

// cmd is one unit of session work, submitted by a connection handler and
// executed by the session's worker goroutine. Exactly one of respond
// (estimates) or respondSnap (checkpoint_session) is set and is called
// exactly once, from the worker (or the shutdown drain).
type cmd struct {
	items    []EstimateParams
	snapshot bool
	respond  func(results []EstimateResult, perr *Error)
	// respondSnap receives the serialized network for snapshot commands.
	respondSnap func(data []byte, perr *Error)
}

// fail answers the command with an error through whichever responder it
// carries.
func (c *cmd) fail(perr *Error) {
	if c.snapshot {
		c.respondSnap(nil, perr)
		return
	}
	c.respond(nil, perr)
}

// session owns one warmed sim.Network and the single goroutine that may
// touch it. Commands flow through a bounded queue (the per-session
// backpressure surface); everything the network computes happens on the
// worker, so the simulator itself needs no locking.
type session struct {
	id   string
	p    OpenParams // normalized
	info SessionInfo

	// cmds is the bounded inflight queue; mu serializes submit against
	// close so the channel is never sent on after it is closed.
	mu     sync.Mutex
	closed bool
	cmds   chan *cmd
	stop   chan struct{} // closed to interrupt long estimates
	done   chan struct{} // closed when the worker exits

	// Owned by the worker goroutine.
	net     *sim.Network
	budget  int64 // per-estimate cycle budget
	workers int   // effective cycle-core worker count

	// Published for stats; written by the worker / submit path.
	cycles    atomic.Int64
	estimates atomic.Int64
	busyNS    atomic.Int64 // wall-clock nanoseconds spent simulating
	lastUsed  atomic.Int64 // unix nanoseconds
}

// newSession builds the session's network and starts its worker; it
// returns once the network is warmed (or building fails). p must be
// validated and normalized. defaultWorkers is the server's cycle-core
// worker count for sessions whose open did not name one.
func newSession(id string, p OpenParams, maxNodes, maxInflight int, budget int64, defaultWorkers int) (*session, *Error) {
	return buildSession(id, p, nil, maxNodes, maxInflight, budget, defaultWorkers)
}

// newSessionFromSnapshot builds a session whose network is restored
// from a checkpoint instead of warmed from scratch: the clone starts at
// the checkpointed cycle with every buffer, RNG stream and in-flight
// flit intact, bit-identical to the session it was taken from.
func newSessionFromSnapshot(id string, p OpenParams, snap []byte, maxNodes, maxInflight int, budget int64, defaultWorkers int) (*session, *Error) {
	return buildSession(id, p, snap, maxNodes, maxInflight, budget, defaultWorkers)
}

// buildSession is the shared constructor: snap == nil builds cold and
// warms; otherwise the network is restored from the snapshot bytes.
func buildSession(id string, p OpenParams, snap []byte, maxNodes, maxInflight int, budget int64, defaultWorkers int) (*session, *Error) {
	g, alg, cfg, conc, perr := buildNetwork(p, maxNodes)
	if perr != nil {
		return nil, perr
	}
	var n *sim.Network
	var err error
	if snap != nil {
		n, err = sim.Restore(bytes.NewReader(snap), g, alg, cfg)
		if err != nil {
			return nil, errf(CodeInternal, "clone: %v", err)
		}
	} else {
		n, err = sim.New(g, alg, cfg)
		if err != nil {
			return nil, errf(CodeBadRequest, "open: %v", err)
		}
	}
	workers := p.Workers
	if workers == 0 {
		workers = defaultWorkers
	}
	if workers > 1 {
		if err := n.SetWorkers(workers); err != nil {
			n.Close()
			return nil, errf(CodeBadRequest, "open: %v", err)
		}
	} else {
		workers = 1
	}
	// A snapshot stashes only the workload's name and mutable state; the
	// clone re-derives the source from the (normalized) params and
	// SetSource re-applies the stashed state.
	src, err := buildWorkload(p, g.NumNodes, conc)
	if err != nil {
		n.Close()
		return nil, errf(CodeBadRequest, "open: workload: %v", err)
	}
	if err := n.SetSource(src); err != nil {
		n.Close()
		return nil, errf(CodeInternal, "clone: workload: %v", err)
	}
	s := &session{
		id:      id,
		p:       p,
		net:     n,
		budget:  budget,
		workers: workers,
		cmds:    make(chan *cmd, maxInflight),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.info = SessionInfo{
		Nodes:      g.NumNodes,
		Routers:    len(g.Routers),
		VCs:        n.VCs(),
		PacketSize: n.PacketSize(),
		FlitBytes:  p.FlitBytes,
		Algorithm:  alg.Name(),
	}
	s.touch()
	if snap == nil {
		if perr := s.warm(); perr != nil {
			n.Close()
			return nil, perr
		}
	}
	s.info.WarmCycles = n.Cycle()
	s.cycles.Store(n.Cycle())
	go s.run()
	return s, nil
}

// touch records request activity for idle eviction.
func (s *session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// idleFor reports how long the session has gone without a request.
func (s *session) idleFor(now time.Time) time.Duration {
	return time.Duration(now.UnixNano() - s.lastUsed.Load())
}

// submit enqueues a command, applying backpressure: a full inflight
// queue rejects with CodeOverloaded rather than blocking the caller.
func (s *session) submit(c *cmd) *Error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errf(CodeNoSession, "session %s is closed", s.id)
	}
	select {
	case s.cmds <- c:
		s.touch()
		return nil
	default:
		return errf(CodeOverloaded, "session %s inflight queue full (%d)", s.id, cap(s.cmds))
	}
}

// close shuts the session down: no further submits are accepted, queued
// commands are answered (with CodeShutdown for any the worker had not
// reached), and close returns once the worker has exited.
func (s *session) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	close(s.stop)
	close(s.cmds) // safe: submit holds mu, so no send can race this
	s.mu.Unlock()
	<-s.done
}

// stopped reports whether shutdown has been requested.
func (s *session) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// run is the session worker: the only goroutine that touches s.net. It
// releases the network's scheduler workers when it exits.
func (s *session) run() {
	defer close(s.done)
	defer s.net.Close()
	for c := range s.cmds {
		if s.stopped() {
			c.fail(errf(CodeShutdown, "session %s shutting down", s.id))
			continue
		}
		start := time.Now()
		if c.snapshot {
			data, perr := s.checkpoint()
			s.busyNS.Add(time.Since(start).Nanoseconds())
			c.respondSnap(data, perr)
			continue
		}
		results, perr := s.handle(c)
		s.busyNS.Add(time.Since(start).Nanoseconds())
		s.cycles.Store(s.net.Cycle())
		c.respond(results, perr)
	}
}

// checkpoint serializes the session's network. It runs on the worker
// between steps, so the snapshot captures a consistent state; estimates
// queued behind it resume afterwards unaffected.
func (s *session) checkpoint() ([]byte, *Error) {
	var buf bytes.Buffer
	if err := s.net.Snapshot(&buf); err != nil {
		return nil, errf(CodeInternal, "checkpoint: %v", err)
	}
	return buf.Bytes(), nil
}

// warm advances the network through the session's warm-up window at the
// background load, leaving queues in steady state before the first
// estimate.
func (s *session) warm() *Error {
	start := time.Now()
	for i := 0; i < s.p.Warmup; i++ {
		if perr := s.advance(); perr != nil {
			return perr
		}
	}
	s.busyNS.Add(time.Since(start).Nanoseconds())
	s.cycles.Store(s.net.Cycle())
	return nil
}

// advance steps the network one cycle, with background injection from
// the session's workload source at its load. Generate cannot fail on a
// well-formed session — the open validated load against the source —
// so an error here is surfaced as internal.
func (s *session) advance() *Error {
	if s.p.Load > 0 {
		if err := s.net.Generate(s.p.Load); err != nil {
			return errf(CodeInternal, "advance: %v", err)
		}
	}
	s.net.Step()
	return nil
}

// handle executes one command's estimates in order. Items after a
// hard failure (out-of-range coordinates) are not attempted.
func (s *session) handle(c *cmd) ([]EstimateResult, *Error) {
	results := make([]EstimateResult, 0, len(c.items))
	for i := range c.items {
		r, perr := s.estimate(c.items[i])
		if perr != nil {
			if len(c.items) > 1 {
				perr = errf(perr.Code, "batch item %d: %s", i, perr.Message)
			}
			return nil, perr
		}
		results = append(results, r)
	}
	return results, nil
}

// estimate injects one measured transfer into the warm network and
// advances the simulation — background traffic included — until the
// transfer drains or the cycle budget runs out.
func (s *session) estimate(e EstimateParams) (EstimateResult, *Error) {
	if e.Src >= s.info.Nodes {
		return EstimateResult{}, errf(CodeBadRequest,
			"est: src %d out of [0,%d)", e.Src, s.info.Nodes)
	}
	if e.Dst >= s.info.Nodes {
		return EstimateResult{}, errf(CodeBadRequest,
			"est: dst %d out of [0,%d)", e.Dst, s.info.Nodes)
	}
	packets := packetsFor(e.Bytes, s.p.FlitBytes, s.p.PacketSize)
	tr, err := s.net.StartTransfer(topo.NodeID(e.Src), topo.NodeID(e.Dst), packets)
	if err != nil {
		return EstimateResult{}, errf(CodeInternal, "%v", err)
	}
	s.estimates.Add(1)
	deadline := s.net.Cycle() + s.budget
	for !tr.Done() {
		if s.net.Cycle() >= deadline {
			return EstimateResult{Cycles: s.budget, Packets: packets, Saturated: true}, nil
		}
		if s.net.Cycle()&0x3ff == 0 && s.stopped() {
			return EstimateResult{}, errf(CodeShutdown, "session %s shutting down", s.id)
		}
		if perr := s.advance(); perr != nil {
			return EstimateResult{}, perr
		}
	}
	return EstimateResult{Cycles: tr.Latency(), Hops: tr.Hops(), Packets: packets}, nil
}

// stats snapshots the session for the stats verb.
func (s *session) stats(now time.Time) SessionStats {
	cycles := s.cycles.Load()
	var rate float64
	if busy := s.busyNS.Load(); busy > 0 && cycles > 0 {
		rate = float64(cycles) / (float64(busy) / 1e9)
	}
	return SessionStats{
		ID:           s.id,
		Topology:     s.p.Topology,
		Algorithm:    s.info.Algorithm,
		Nodes:        s.info.Nodes,
		Load:         s.p.Load,
		Pattern:      s.p.Pattern,
		Workers:      s.workers,
		Cycles:       cycles,
		CyclesPerSec: rate,
		Estimates:    s.estimates.Load(),
		QueueDepth:   len(s.cmds),
		IdleMS:       s.idleFor(now).Milliseconds(),
	}
}
