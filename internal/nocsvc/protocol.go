// Package nocsvc is the repository's NoC-as-a-service co-simulation
// layer: a newline-delimited JSON request/response protocol (in the
// style uPIMulator drives BookSim2 with) served from live, warmed
// flatnet simulations. An execution-driven host simulator opens a
// session describing a topology, routing algorithm and background load,
// then asks for congestion-aware latency estimates of individual
// transfers (src, dst, bytes → cycles); the service keeps one
// cycle-accurate sim.Network per session warm so per-request cost is
// the transfer's own flight time, not a cold warm-up.
//
// The wire protocol is one JSON object per line in both directions,
// versioned and strictly validated. cmd/nocd serves it over stdio
// (child-process mode) and TCP (shared-daemon mode); package
// nocsvc/client is the Go client.
package nocsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"flatnet/internal/traffic"
)

// ProtocolVersion is the wire protocol version this package speaks.
// Requests carrying any other version are rejected with CodeBadVersion.
const ProtocolVersion = 1

// MaxLineBytes caps one protocol line. Longer lines are answered with a
// CodeLineTooLong error and the connection is closed (the stream can no
// longer be framed reliably).
const MaxLineBytes = 1 << 20

// Protocol limits, enforced by DecodeRequest so no verb can make the
// server allocate or simulate unboundedly on behalf of one line.
const (
	// MaxBatch caps the items of one batch_estimate request.
	MaxBatch = 4096
	// MaxTransferBytes caps one estimated transfer's size.
	MaxTransferBytes = 1 << 30
	// MaxWarmup caps a session's requested warm-up window in cycles.
	MaxWarmup = 1 << 20
)

// Verbs of the protocol.
const (
	VerbOpen     = "open_session"
	VerbEstimate = "estimate"
	VerbBatch    = "batch_estimate"
	VerbClose    = "close_session"
	VerbStats    = "stats"
	// VerbCheckpoint snapshots a session's warmed network into a
	// server-side checkpoint store and returns the checkpoint's id.
	VerbCheckpoint = "checkpoint_session"
	// VerbClone opens a new session restored from a stored checkpoint,
	// skipping the warm-up entirely. The clone is bit-identical to the
	// checkpointed session at the moment of its snapshot.
	VerbClone = "clone_session"
)

// Error codes carried in failure responses.
const (
	// CodeBadRequest marks malformed JSON, missing or out-of-range
	// parameters, or params that do not belong to the request's verb.
	CodeBadRequest = "bad_request"
	// CodeBadVersion marks a request with an unsupported protocol version.
	CodeBadVersion = "bad_version"
	// CodeUnknownVerb marks an unrecognized verb.
	CodeUnknownVerb = "unknown_verb"
	// CodeNoSession marks an operation on a session id that does not exist
	// (never opened, already closed, or evicted).
	CodeNoSession = "no_session"
	// CodeNoCheckpoint marks a clone_session naming a checkpoint id that
	// does not exist (never taken, or evicted from the capped store).
	CodeNoCheckpoint = "no_checkpoint"
	// CodeSessionLimit marks an open_session rejected by admission control:
	// the daemon is at its session cap and no slot freed within its grace.
	CodeSessionLimit = "session_limit"
	// CodeOverloaded marks a request rejected by per-session backpressure:
	// the session's bounded inflight queue is full.
	CodeOverloaded = "overloaded"
	// CodeSaturated marks an estimate whose transfer failed to deliver
	// within the per-estimate cycle budget — the session's background load
	// has saturated the network.
	CodeSaturated = "saturated"
	// CodeLineTooLong marks a request line exceeding MaxLineBytes.
	CodeLineTooLong = "line_too_long"
	// CodeShutdown marks a request caught by server or session shutdown.
	CodeShutdown = "shutdown"
	// CodeInternal marks an unexpected server-side failure.
	CodeInternal = "internal"
)

// Error is the structured failure payload of a response. It satisfies
// the error interface so the client surfaces it directly.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return fmt.Sprintf("nocsvc: %s: %s", e.Code, e.Message) }

func errf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Request is one protocol request line. Exactly one verb-specific
// payload may be present, matching Verb.
type Request struct {
	Version int    `json:"v"`
	ID      int64  `json:"id"`
	Verb    string `json:"verb"`
	// Session names the target session for estimate, batch_estimate and
	// close_session; optional for stats (includes that session's detail).
	Session string `json:"session,omitempty"`
	// Open carries open_session parameters.
	Open *OpenParams `json:"open,omitempty"`
	// Est carries one estimate's parameters.
	Est *EstimateParams `json:"est,omitempty"`
	// Batch carries batch_estimate items, answered in order.
	Batch []EstimateParams `json:"batch,omitempty"`
	// Checkpoint names the stored checkpoint for clone_session.
	Checkpoint string `json:"checkpoint,omitempty"`
}

// OpenParams describes the simulation a session serves estimates from.
type OpenParams struct {
	// Topology selects the network: "flatfly" (K-ary N-flat),
	// "butterfly" (K-ary N-fly), "foldedclos" (2:1 tapered, K terminals
	// per leaf) or "hypercube" (N-dimensional, K ignored).
	Topology string `json:"topology"`
	K        int    `json:"k,omitempty"`
	N        int    `json:"n"`
	// Routing selects the algorithm. flatfly accepts the paper's five
	// ("min", "val", "ugal", "ugal-s", "clos" and their long forms);
	// other topologies have a single algorithm and accept "" or its name.
	Routing string `json:"routing,omitempty"`
	// BufPerPort is flit buffering per router input port (default 32).
	BufPerPort int `json:"buf_per_port,omitempty"`
	// PacketSize is flits per packet (default 1).
	PacketSize int `json:"packet_size,omitempty"`
	// FlitBytes is the payload bytes one flit carries, used to convert an
	// estimate's bytes into flits (default 8).
	FlitBytes int `json:"flit_bytes,omitempty"`
	// Seed drives every random stream of the session (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Load is the background offered load in flits per node per cycle,
	// injected as Pattern-shaped Bernoulli traffic under every estimate.
	// 0 estimates against an idle network.
	Load float64 `json:"load,omitempty"`
	// Pattern names the background traffic's spatial pattern, validated
	// against the internal/traffic registry: "uniform" (the default),
	// "bitcomp", "transpose", "shuffle", "randperm", "worstcase",
	// "tornado", "hotspot" or "incast" (sweep-style short forms
	// UR/BC/TP/SH/RP/WC/TOR/HS/IC are accepted). Seeded patterns draw
	// from the session's Seed; group patterns use the topology's
	// concentration.
	Pattern string `json:"pattern,omitempty"`
	// BurstPeak, when set, swaps the background arrival process from
	// Bernoulli to the two-state on/off (MMPP) process: nodes alternate
	// silent OFF periods with ON bursts injecting at BurstPeak flits per
	// node per cycle, mixed so the long-run average rate equals Load
	// (which must not exceed BurstPeak). 0 keeps Bernoulli arrivals.
	BurstPeak float64 `json:"burst_peak,omitempty"`
	// BurstLen is the mean ON-burst length in cycles when BurstPeak is
	// set (default 16; must be >= 1).
	BurstLen float64 `json:"burst_len,omitempty"`
	// Hot lists the hot terminal IDs for the "hotspot" pattern (default
	// {0}); "incast" sinks at the first entry.
	Hot []int `json:"hot,omitempty"`
	// HotFraction is the probability a hotspot packet targets the hot
	// set (default 0.1).
	HotFraction float64 `json:"hot_fraction,omitempty"`
	// Warmup is how many cycles to advance the network at Load before the
	// session serves its first estimate (default 1000; 0 uses the
	// default, -1 disables warm-up).
	Warmup int `json:"warmup,omitempty"`
	// Workers partitions the session's cycle core across this many
	// worker goroutines (0 uses the daemon's default; 1 forces the
	// sequential scheduler). Estimates are bit-identical at every worker
	// count — workers change wall-clock speed only.
	Workers int `json:"workers,omitempty"`
}

// EstimateParams is one transfer to estimate: Bytes payload bytes from
// terminal Src to terminal Dst.
type EstimateParams struct {
	Src   int `json:"src"`
	Dst   int `json:"dst"`
	Bytes int `json:"bytes"`
}

// EstimateResult reports one transfer estimate.
type EstimateResult struct {
	// Cycles is the congestion-aware latency from source-queue arrival to
	// the delivery of the transfer's last packet.
	Cycles int64 `json:"cycles"`
	// Hops is the inter-router hop count of the transfer's last packet.
	Hops int `json:"hops"`
	// Packets is how many packets the transfer occupied.
	Packets int `json:"packets"`
	// Saturated reports the transfer failed to drain within the session's
	// per-estimate cycle budget; Cycles then holds the budget spent.
	Saturated bool `json:"saturated,omitempty"`
}

// SessionInfo describes an opened session.
type SessionInfo struct {
	Nodes      int    `json:"nodes"`
	Routers    int    `json:"routers"`
	VCs        int    `json:"vcs"`
	PacketSize int    `json:"packet_size"`
	FlitBytes  int    `json:"flit_bytes"`
	Algorithm  string `json:"algorithm"`
	WarmCycles int64  `json:"warm_cycles"`
}

// Response is one protocol response line. OK reports success; on
// failure Err is set and the verb payloads are absent. Responses echo
// the request's ID (0 when the request was too malformed to carry one)
// and may arrive out of order relative to other in-flight requests.
type Response struct {
	Version int    `json:"v"`
	ID      int64  `json:"id"`
	OK      bool   `json:"ok"`
	Err     *Error `json:"err,omitempty"`
	// Session echoes the opened session's id (open_session,
	// clone_session) or the checkpointed one (checkpoint_session).
	Session string       `json:"session,omitempty"`
	Info    *SessionInfo `json:"info,omitempty"`
	// Checkpoint carries the stored checkpoint's id (checkpoint_session).
	Checkpoint string `json:"checkpoint,omitempty"`
	// Est answers estimate; Batch answers batch_estimate in item order.
	Est   *EstimateResult  `json:"est,omitempty"`
	Batch []EstimateResult `json:"batch,omitempty"`
	// Stats answers the stats verb.
	Stats *Stats `json:"stats,omitempty"`
}

// Stats is the stats verb's payload: server-wide counters plus, when the
// request named a session, that session's detail.
type Stats struct {
	Server  ServerStats   `json:"server"`
	Session *SessionStats `json:"session,omitempty"`
}

// DecodeRequest parses and strictly validates one request line. On
// failure the returned request still carries whatever ID was parseable,
// so the server can correlate the error response; the returned *Error
// is nil exactly when the request is valid. DecodeRequest never panics
// on any input.
func DecodeRequest(line []byte) (Request, *Error) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// Recover the ID on a best-effort basis for error correlation:
		// a lenient pass that tolerates unknown fields and bad subfields.
		var probe struct {
			ID int64 `json:"id"`
		}
		_ = json.Unmarshal(line, &probe)
		req.ID = probe.ID
		return req, errf(CodeBadRequest, "malformed request: %v", err)
	}
	if dec.More() {
		return req, errf(CodeBadRequest, "trailing data after request object")
	}
	if req.Version != ProtocolVersion {
		return req, errf(CodeBadVersion, "protocol version %d, want %d", req.Version, ProtocolVersion)
	}
	if req.ID < 0 {
		return req, errf(CodeBadRequest, "id must be >= 0, got %d", req.ID)
	}
	switch req.Verb {
	case VerbOpen:
		if req.Open == nil {
			return req, errf(CodeBadRequest, "open_session requires open params")
		}
		if req.Session != "" || req.Est != nil || req.Batch != nil || req.Checkpoint != "" {
			return req, errf(CodeBadRequest, "open_session carries foreign params")
		}
		if perr := req.Open.validate(); perr != nil {
			return req, perr
		}
	case VerbEstimate:
		if req.Session == "" {
			return req, errf(CodeBadRequest, "estimate requires a session")
		}
		if req.Est == nil {
			return req, errf(CodeBadRequest, "estimate requires est params")
		}
		if req.Open != nil || req.Batch != nil || req.Checkpoint != "" {
			return req, errf(CodeBadRequest, "estimate carries foreign params")
		}
		if perr := req.Est.validate(); perr != nil {
			return req, perr
		}
	case VerbBatch:
		if req.Session == "" {
			return req, errf(CodeBadRequest, "batch_estimate requires a session")
		}
		if len(req.Batch) == 0 {
			return req, errf(CodeBadRequest, "batch_estimate requires at least one item")
		}
		if len(req.Batch) > MaxBatch {
			return req, errf(CodeBadRequest, "batch of %d exceeds the limit of %d", len(req.Batch), MaxBatch)
		}
		if req.Open != nil || req.Est != nil || req.Checkpoint != "" {
			return req, errf(CodeBadRequest, "batch_estimate carries foreign params")
		}
		for i := range req.Batch {
			if perr := req.Batch[i].validate(); perr != nil {
				return req, errf(CodeBadRequest, "batch item %d: %s", i, perr.Message)
			}
		}
	case VerbClose:
		if req.Session == "" {
			return req, errf(CodeBadRequest, "close_session requires a session")
		}
		if req.Open != nil || req.Est != nil || req.Batch != nil || req.Checkpoint != "" {
			return req, errf(CodeBadRequest, "close_session carries foreign params")
		}
	case VerbStats:
		if req.Open != nil || req.Est != nil || req.Batch != nil || req.Checkpoint != "" {
			return req, errf(CodeBadRequest, "stats carries foreign params")
		}
	case VerbCheckpoint:
		if req.Session == "" {
			return req, errf(CodeBadRequest, "checkpoint_session requires a session")
		}
		if req.Open != nil || req.Est != nil || req.Batch != nil || req.Checkpoint != "" {
			return req, errf(CodeBadRequest, "checkpoint_session carries foreign params")
		}
	case VerbClone:
		if req.Checkpoint == "" {
			return req, errf(CodeBadRequest, "clone_session requires a checkpoint")
		}
		if req.Session != "" || req.Open != nil || req.Est != nil || req.Batch != nil {
			return req, errf(CodeBadRequest, "clone_session carries foreign params")
		}
	case "":
		return req, errf(CodeBadRequest, "missing verb")
	default:
		return req, errf(CodeUnknownVerb, "unknown verb %q", req.Verb)
	}
	return req, nil
}

// validate checks an OpenParams' protocol-level bounds. The topology
// constructors apply their own mathematical constraints on top.
func (p *OpenParams) validate() *Error {
	switch p.Topology {
	case "flatfly", "butterfly", "foldedclos", "hypercube":
	case "":
		return errf(CodeBadRequest, "open: missing topology")
	default:
		return errf(CodeBadRequest, "open: unknown topology %q", p.Topology)
	}
	if p.K < 0 || p.K > 1024 {
		return errf(CodeBadRequest, "open: k %d out of [0,1024]", p.K)
	}
	if p.N < 1 || p.N > 20 {
		return errf(CodeBadRequest, "open: n %d out of [1,20]", p.N)
	}
	if p.BufPerPort < 0 || p.BufPerPort > 4096 {
		return errf(CodeBadRequest, "open: buf_per_port %d out of [0,4096]", p.BufPerPort)
	}
	if p.PacketSize < 0 || p.PacketSize > 64 {
		return errf(CodeBadRequest, "open: packet_size %d out of [0,64]", p.PacketSize)
	}
	if p.FlitBytes < 0 || p.FlitBytes > 1<<16 {
		return errf(CodeBadRequest, "open: flit_bytes %d out of [0,65536]", p.FlitBytes)
	}
	if p.Load < 0 || p.Load >= 1 {
		return errf(CodeBadRequest, "open: load %v out of [0,1)", p.Load)
	}
	if p.Warmup < -1 || p.Warmup > MaxWarmup {
		return errf(CodeBadRequest, "open: warmup %d out of [-1,%d]", p.Warmup, MaxWarmup)
	}
	if p.Workers < 0 || p.Workers > 256 {
		return errf(CodeBadRequest, "open: workers %d out of [0,256]", p.Workers)
	}
	if p.Pattern != "" && !traffic.Known(p.Pattern) {
		return errf(CodeBadRequest, "open: unknown pattern %q (have %s)",
			p.Pattern, strings.Join(traffic.Names(), ", "))
	}
	if p.BurstPeak < 0 || p.BurstPeak > 1 {
		return errf(CodeBadRequest, "open: burst_peak %v out of [0,1]", p.BurstPeak)
	}
	if p.BurstLen != 0 && p.BurstLen < 1 {
		return errf(CodeBadRequest, "open: burst_len %v must be >= 1", p.BurstLen)
	}
	if p.BurstLen != 0 && p.BurstPeak == 0 {
		return errf(CodeBadRequest, "open: burst_len set without burst_peak")
	}
	if p.BurstPeak > 0 && p.Load > p.BurstPeak {
		return errf(CodeBadRequest, "open: load %v above burst_peak %v", p.Load, p.BurstPeak)
	}
	for _, h := range p.Hot {
		if h < 0 {
			return errf(CodeBadRequest, "open: hot node %d must be >= 0", h)
		}
	}
	if p.HotFraction < 0 || p.HotFraction > 1 {
		return errf(CodeBadRequest, "open: hot_fraction %v out of [0,1]", p.HotFraction)
	}
	return nil
}

// validate checks one estimate's protocol-level bounds; session-level
// range checks (src/dst within the topology) happen at execution.
func (e *EstimateParams) validate() *Error {
	if e.Src < 0 {
		return errf(CodeBadRequest, "est: src %d must be >= 0", e.Src)
	}
	if e.Dst < 0 {
		return errf(CodeBadRequest, "est: dst %d must be >= 0", e.Dst)
	}
	if e.Bytes < 0 || e.Bytes > MaxTransferBytes {
		return errf(CodeBadRequest, "est: bytes %d out of [0,%d]", e.Bytes, MaxTransferBytes)
	}
	return nil
}

// EncodeResponse renders one response line (without the trailing
// newline, which the writer frames).
func EncodeResponse(r *Response) ([]byte, error) {
	r.Version = ProtocolVersion
	return json.Marshal(r)
}

// DecodeResponse parses one response line; the client side of
// DecodeRequest. Responses are validated leniently (unknown fields are
// ignored) so older clients tolerate additive server evolution.
func DecodeResponse(line []byte) (Response, error) {
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return resp, fmt.Errorf("nocsvc: malformed response: %w", err)
	}
	if resp.Version != ProtocolVersion {
		return resp, fmt.Errorf("nocsvc: response version %d, want %d", resp.Version, ProtocolVersion)
	}
	if !resp.OK && resp.Err == nil {
		return resp, fmt.Errorf("nocsvc: failure response without error payload")
	}
	return resp, nil
}
