package nocsvc

import (
	"sync"
	"testing"
	"time"
)

// testOpen returns normalized OpenParams for a small, warm-free flatfly
// session so lifecycle tests stay fast and deterministic.
func testOpen() OpenParams {
	p := OpenParams{Topology: "flatfly", K: 2, N: 2, Warmup: -1}
	p.normalize()
	return p
}

func testCfg() ServerConfig {
	return ServerConfig{
		MaxSessions:    4,
		MaxInflight:    4,
		IdleTimeout:    -1, // janitor off unless a test wants it
		EstimateBudget: 1 << 16,
		MaxNodes:       4096,
	}.withDefaults()
}

func TestSessionBackpressure(t *testing.T) {
	const inflight = 3
	s, perr := newSession("t1", testOpen(), 4096, inflight, 1<<16, 1)
	if perr != nil {
		t.Fatal(perr)
	}

	// Stall the worker on the first command so the queue can fill.
	entered := make(chan struct{})
	release := make(chan struct{})
	if perr := s.submit(&cmd{respond: func([]EstimateResult, *Error) {
		close(entered)
		<-release
	}}); perr != nil {
		t.Fatal(perr)
	}
	<-entered

	codes := make(chan string, inflight)
	for i := 0; i < inflight; i++ {
		if perr := s.submit(&cmd{respond: func(_ []EstimateResult, perr *Error) {
			if perr != nil {
				codes <- perr.Code
			} else {
				codes <- ""
			}
		}}); perr != nil {
			t.Fatalf("fill %d: %v", i, perr)
		}
	}

	// The queue is full: the next submit must be rejected, not block.
	if perr := s.submit(&cmd{respond: func([]EstimateResult, *Error) {}}); perr == nil {
		t.Fatal("submit into a full queue succeeded")
	} else if perr.Code != CodeOverloaded {
		t.Fatalf("full queue rejected with %s, want %s", perr.Code, CodeOverloaded)
	}

	// Shut down with the queue still full: every queued command must be
	// answered (with shutdown), and close must join the worker.
	go func() { close(release) }()
	s.close()
	for i := 0; i < inflight; i++ {
		if code := <-codes; code != CodeShutdown && code != "" {
			t.Fatalf("queued cmd answered with %q", code)
		}
	}

	// Submits after close fail fast.
	if perr := s.submit(&cmd{respond: func([]EstimateResult, *Error) {}}); perr == nil || perr.Code != CodeNoSession {
		t.Fatalf("submit after close: %v, want %s", perr, CodeNoSession)
	}
}

func TestManagerConcurrentOpensRaceTheCap(t *testing.T) {
	cfg := testCfg()
	m := newManager(cfg)
	defer m.closeAll()

	const racers = 32
	var wg sync.WaitGroup
	ids := make(chan string, racers)
	var rejects, other int64
	var mu sync.Mutex
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, perr := m.open(testOpen())
			if perr == nil {
				ids <- s.id
				return
			}
			mu.Lock()
			if perr.Code == CodeSessionLimit {
				rejects++
			} else {
				other++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(ids)
	var opened []string
	for id := range ids {
		opened = append(opened, id)
	}
	if other != 0 {
		t.Fatalf("%d opens failed with codes other than %s", other, CodeSessionLimit)
	}
	if len(opened) == 0 || len(opened) > cfg.MaxSessions {
		t.Fatalf("%d sessions opened, want 1..%d", len(opened), cfg.MaxSessions)
	}
	if got := m.count(); got != len(opened) {
		t.Fatalf("live count %d, want %d", got, len(opened))
	}
	if int(rejects) != racers-len(opened) {
		t.Fatalf("%d rejects for %d losers", rejects, racers-len(opened))
	}

	// Closing releases slots: the cap can be reached again.
	for _, id := range opened {
		if perr := m.close(id); perr != nil {
			t.Fatalf("close %s: %v", id, perr)
		}
	}
	for i := 0; i < cfg.MaxSessions; i++ {
		if _, perr := m.open(testOpen()); perr != nil {
			t.Fatalf("reopen %d after release: %v", i, perr)
		}
	}
}

func TestManagerOpenWaitQueues(t *testing.T) {
	cfg := testCfg()
	cfg.MaxSessions = 1
	cfg.OpenWait = 5 * time.Second
	m := newManager(cfg)
	defer m.closeAll()

	first, perr := m.open(testOpen())
	if perr != nil {
		t.Fatal(perr)
	}
	got := make(chan *Error, 1)
	go func() {
		_, perr := m.open(testOpen())
		got <- perr
	}()
	// The queued open must not resolve while the slot is held...
	select {
	case perr := <-got:
		t.Fatalf("queued open resolved early: %v", perr)
	case <-time.After(50 * time.Millisecond):
	}
	// ...and must win promptly once it frees.
	if perr := m.close(first.id); perr != nil {
		t.Fatal(perr)
	}
	select {
	case perr := <-got:
		if perr != nil {
			t.Fatalf("queued open failed after slot freed: %v", perr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued open never resolved")
	}
}

func TestManagerIdleEviction(t *testing.T) {
	cfg := testCfg()
	cfg.IdleTimeout = 40 * time.Millisecond
	m := newManager(cfg)
	defer m.closeAll()

	s, perr := m.open(testOpen())
	if perr != nil {
		t.Fatal(perr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.count() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := m.evictions.Load(); got != 1 {
		t.Fatalf("evictions %d, want 1", got)
	}
	if _, perr := m.lookup(s.id); perr == nil || perr.Code != CodeNoSession {
		t.Fatalf("evicted session still resolves: %v", perr)
	}
	// The slot came back: a fresh open succeeds immediately.
	if _, perr := m.open(testOpen()); perr != nil {
		t.Fatalf("open after eviction: %v", perr)
	}
}

func TestManagerClosedRejectsOpens(t *testing.T) {
	m := newManager(testCfg())
	if _, perr := m.open(testOpen()); perr != nil {
		t.Fatal(perr)
	}
	m.closeAll()
	if got := m.count(); got != 0 {
		t.Fatalf("%d sessions survive closeAll", got)
	}
	if _, perr := m.open(testOpen()); perr == nil || perr.Code != CodeShutdown {
		t.Fatalf("open after closeAll: %v, want %s", perr, CodeShutdown)
	}
	m.closeAll() // idempotent
}

func TestSessionEstimateValidation(t *testing.T) {
	s, perr := newSession("t2", testOpen(), 4096, 4, 1<<16, 1)
	if perr != nil {
		t.Fatal(perr)
	}
	defer s.close()
	if _, perr := s.estimate(EstimateParams{Src: 99, Dst: 0}); perr == nil || perr.Code != CodeBadRequest {
		t.Fatalf("out-of-range src: %v", perr)
	}
	if _, perr := s.estimate(EstimateParams{Src: 0, Dst: 99}); perr == nil || perr.Code != CodeBadRequest {
		t.Fatalf("out-of-range dst: %v", perr)
	}
}

func TestBuildNetworkRejects(t *testing.T) {
	p := testOpen()
	p.K = 32
	p.N = 3 // 32^3 = 32768 terminals
	if _, _, _, _, perr := buildNetwork(p, 4096); perr == nil || perr.Code != CodeBadRequest {
		t.Fatalf("node cap not enforced: %v", perr)
	}
	p = testOpen()
	p.Routing = "bogus"
	if _, _, _, _, perr := buildNetwork(p, 0); perr == nil || perr.Code != CodeBadRequest {
		t.Fatalf("bad routing accepted: %v", perr)
	}
}

func TestPacketsFor(t *testing.T) {
	cases := []struct{ bytes, flit, pkt, want int }{
		{0, 8, 1, 1},
		{1, 8, 1, 1},
		{8, 8, 1, 1},
		{9, 8, 1, 2},
		{64, 8, 4, 2},
		{65, 8, 4, 3},
	}
	for _, c := range cases {
		if got := packetsFor(c.bytes, c.flit, c.pkt); got != c.want {
			t.Errorf("packetsFor(%d,%d,%d) = %d, want %d", c.bytes, c.flit, c.pkt, got, c.want)
		}
	}
}
