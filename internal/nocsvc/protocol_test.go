package nocsvc

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDecodeRequestValid(t *testing.T) {
	lines := map[string]string{
		"open":  `{"v":1,"id":1,"verb":"open_session","open":{"topology":"flatfly","k":4,"n":2}}`,
		"est":   `{"v":1,"id":2,"verb":"estimate","session":"s1","est":{"src":0,"dst":5,"bytes":64}}`,
		"batch": `{"v":1,"id":3,"verb":"batch_estimate","session":"s1","batch":[{"src":0,"dst":1,"bytes":8},{"src":2,"dst":3,"bytes":0}]}`,
		"close": `{"v":1,"id":4,"verb":"close_session","session":"s1"}`,
		"stats": `{"v":1,"id":5,"verb":"stats"}`,
	}
	for name, line := range lines {
		req, perr := DecodeRequest([]byte(line))
		if perr != nil {
			t.Errorf("%s: unexpected error: %v", name, perr)
			continue
		}
		if req.ID == 0 {
			t.Errorf("%s: lost the request id", name)
		}
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	cases := []struct {
		name, line, code string
	}{
		{"empty", ``, CodeBadRequest},
		{"not json", `hello world`, CodeBadRequest},
		{"truncated", `{"v":1,"id":9,"verb":"stat`, CodeBadRequest},
		{"unknown field", `{"v":1,"id":1,"verb":"stats","bogus":true}`, CodeBadRequest},
		{"trailing data", `{"v":1,"id":1,"verb":"stats"} {"x":1}`, CodeBadRequest},
		{"bad version", `{"v":2,"id":1,"verb":"stats"}`, CodeBadVersion},
		{"missing version", `{"id":1,"verb":"stats"}`, CodeBadVersion},
		{"negative id", `{"v":1,"id":-4,"verb":"stats"}`, CodeBadRequest},
		{"missing verb", `{"v":1,"id":1}`, CodeBadRequest},
		{"unknown verb", `{"v":1,"id":1,"verb":"frobnicate"}`, CodeUnknownVerb},
		{"open without params", `{"v":1,"id":1,"verb":"open_session"}`, CodeBadRequest},
		{"open foreign params", `{"v":1,"id":1,"verb":"open_session","open":{"topology":"flatfly","k":4,"n":2},"session":"s1"}`, CodeBadRequest},
		{"open bad topology", `{"v":1,"id":1,"verb":"open_session","open":{"topology":"mesh","k":4,"n":2}}`, CodeBadRequest},
		{"open k out of range", `{"v":1,"id":1,"verb":"open_session","open":{"topology":"flatfly","k":5000,"n":2}}`, CodeBadRequest},
		{"open n out of range", `{"v":1,"id":1,"verb":"open_session","open":{"topology":"flatfly","k":4,"n":0}}`, CodeBadRequest},
		{"open load out of range", `{"v":1,"id":1,"verb":"open_session","open":{"topology":"flatfly","k":4,"n":2,"load":1.5}}`, CodeBadRequest},
		{"est without session", `{"v":1,"id":1,"verb":"estimate","est":{"src":0,"dst":1,"bytes":8}}`, CodeBadRequest},
		{"est without params", `{"v":1,"id":1,"verb":"estimate","session":"s1"}`, CodeBadRequest},
		{"est negative src", `{"v":1,"id":1,"verb":"estimate","session":"s1","est":{"src":-1,"dst":1,"bytes":8}}`, CodeBadRequest},
		{"est negative bytes", `{"v":1,"id":1,"verb":"estimate","session":"s1","est":{"src":0,"dst":1,"bytes":-8}}`, CodeBadRequest},
		{"est foreign params", `{"v":1,"id":1,"verb":"estimate","session":"s1","est":{"src":0,"dst":1,"bytes":8},"batch":[{"src":0,"dst":1,"bytes":8}]}`, CodeBadRequest},
		{"batch empty", `{"v":1,"id":1,"verb":"batch_estimate","session":"s1","batch":[]}`, CodeBadRequest},
		{"batch bad item", `{"v":1,"id":1,"verb":"batch_estimate","session":"s1","batch":[{"src":0,"dst":-2,"bytes":8}]}`, CodeBadRequest},
		{"close without session", `{"v":1,"id":1,"verb":"close_session"}`, CodeBadRequest},
		{"stats foreign params", `{"v":1,"id":1,"verb":"stats","est":{"src":0,"dst":1,"bytes":8}}`, CodeBadRequest},
	}
	for _, tc := range cases {
		_, perr := DecodeRequest([]byte(tc.line))
		if perr == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if perr.Code != tc.code {
			t.Errorf("%s: code %q, want %q (%s)", tc.name, perr.Code, tc.code, perr.Message)
		}
	}
}

func TestDecodeRequestRecoversID(t *testing.T) {
	// Malformed payloads should still surface the id so the server can
	// correlate the error response.
	req, perr := DecodeRequest([]byte(`{"v":1,"id":77,"verb":"stats","bogus":1}`))
	if perr == nil {
		t.Fatal("want an error for the unknown field")
	}
	if req.ID != 77 {
		t.Fatalf("recovered id %d, want 77", req.ID)
	}
}

func TestDecodeRequestOversizedBatch(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"v":1,"id":1,"verb":"batch_estimate","session":"s1","batch":[`)
	for i := 0; i <= MaxBatch; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"src":0,"dst":1,"bytes":8}`)
	}
	sb.WriteString(`]}`)
	_, perr := DecodeRequest([]byte(sb.String()))
	if perr == nil || perr.Code != CodeBadRequest {
		t.Fatalf("oversized batch: got %v, want %s", perr, CodeBadRequest)
	}
}

func TestEncodeDecodeResponseRoundTrip(t *testing.T) {
	in := &Response{
		ID: 9, OK: true, Session: "s3",
		Est: &EstimateResult{Cycles: 12, Hops: 2, Packets: 3},
	}
	b, err := EncodeResponse(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 9 || !out.OK || out.Session != "s3" || out.Est == nil || out.Est.Cycles != 12 {
		t.Fatalf("round trip lost data: %+v", out)
	}
	if _, err := DecodeResponse([]byte(`{"v":1,"id":1,"ok":false}`)); err == nil {
		t.Fatal("failure response without err payload should not decode")
	}
}

// FuzzDecodeRequest proves the strict decoder never panics and always
// answers hostile input with a structured error: malformed JSON,
// unknown verbs, out-of-range coordinates, deeply nested and oversized
// payloads alike.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"v":1,"id":1,"verb":"open_session","open":{"topology":"flatfly","k":4,"n":2}}`))
	f.Add([]byte(`{"v":1,"id":2,"verb":"estimate","session":"s1","est":{"src":0,"dst":5,"bytes":64}}`))
	f.Add([]byte(`{"v":1,"id":3,"verb":"batch_estimate","session":"s1","batch":[{"src":0,"dst":1,"bytes":8}]}`))
	f.Add([]byte(`{"v":1,"id":4,"verb":"close_session","session":"s1"}`))
	f.Add([]byte(`{"v":1,"id":5,"verb":"stats"}`))
	f.Add([]byte(`{"v":9,"verb":"??","est":{"src":-1}}`))
	f.Add([]byte(`{"v":1,"id":-1,"verb":"estimate","session":"","est":{"src":1e18,"dst":-5,"bytes":999999999999}}`))
	f.Add([]byte(`[[[[[[[[{"a":1}]]]]]]]]`))
	f.Add([]byte("\x00\xff\xfe garbage"))
	f.Add([]byte(strings.Repeat(`{"v":1,`, 512)))
	f.Fuzz(func(t *testing.T, line []byte) {
		req, perr := DecodeRequest(line)
		if perr == nil {
			// Accepted input must be well-formed enough to execute: a known
			// verb, a supported version, and a re-encodable structure.
			switch req.Verb {
			case VerbOpen, VerbEstimate, VerbBatch, VerbClose, VerbStats:
			default:
				t.Fatalf("accepted unknown verb %q", req.Verb)
			}
			if req.Version != ProtocolVersion {
				t.Fatalf("accepted version %d", req.Version)
			}
			if _, err := json.Marshal(req); err != nil {
				t.Fatalf("accepted request does not re-encode: %v", err)
			}
			return
		}
		if perr.Code == "" || perr.Message == "" {
			t.Fatalf("unstructured error for %q: %+v", line, perr)
		}
	})
}
