package nocsvc_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/nocsvc"
	"flatnet/nocsvc/client"
)

// startServer serves a fresh nocsvc server on a loopback listener and
// returns its address; everything tears down with the test.
func startServer(t *testing.T, cfg nocsvc.ServerConfig) (*nocsvc.Server, string) {
	t.Helper()
	srv := nocsvc.NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // exits on Close
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// TestServerEstimatesMatchOracle pins the service against the paper's
// zero-load model: with no background load, a warmed flatfly session's
// single-packet estimate must land within one cycle of the analytic
// zero-load latency (hops + ejection) for every source/destination pair.
func TestServerEstimatesMatchOracle(t *testing.T) {
	_, addr := startServer(t, nocsvc.ServerConfig{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const k, n = 4, 2
	sess, err := c.OpenSession(client.OpenParams{Topology: "flatfly", K: k, N: n})
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFlatFly(k, n)
	if err != nil {
		t.Fatal(err)
	}
	g := f.Graph()
	if sess.Info().Nodes != g.NumNodes {
		t.Fatalf("session reports %d nodes, topology has %d", sess.Info().Nodes, g.NumNodes)
	}

	var items []client.EstimateParams
	for src := 0; src < g.NumNodes; src++ {
		for dst := 0; dst < g.NumNodes; dst++ {
			if src == dst {
				continue
			}
			items = append(items, client.EstimateParams{Src: src, Dst: dst, Bytes: 8})
		}
	}
	results, err := sess.BatchEstimate(items)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		src, dst := items[i].Src, items[i].Dst
		// Zero-load single-packet latency: hop count on minimal channels
		// plus the 1-cycle ejection (routing.ZeroLoadModel with unit
		// latencies and 1-flit packets).
		want := int64(f.MinHops(g.NodeRouter[src], g.NodeRouter[dst]) + 1)
		if diff := r.Cycles - want; diff < -1 || diff > 1 {
			t.Fatalf("%d->%d: %d cycles, oracle %d (|diff| > 1)", src, dst, r.Cycles, want)
		}
		if r.Saturated {
			t.Fatalf("%d->%d saturated at load 0", src, dst)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Estimate(0, 1, 8); err == nil {
		t.Fatal("estimate on a closed session succeeded")
	}
}

// TestServerLoadedEstimatesSlower checks congestion-awareness: the same
// transfer estimated under heavy background load must not beat its
// zero-load estimate.
func TestServerLoadedEstimatesSlower(t *testing.T) {
	_, addr := startServer(t, nocsvc.ServerConfig{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	idle, err := c.OpenSession(client.OpenParams{Topology: "flatfly", K: 4, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := c.OpenSession(client.OpenParams{Topology: "flatfly", K: 4, N: 2, Load: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Info().WarmCycles == 0 {
		t.Fatal("loaded session did not warm")
	}
	var idleSum, loadedSum int64
	for i := 0; i < 32; i++ {
		src, dst := i%16, (i*7+3)%16
		if src == dst {
			continue
		}
		ri, err := idle.Estimate(src, dst, 64)
		if err != nil {
			t.Fatal(err)
		}
		rl, err := loaded.Estimate(src, dst, 64)
		if err != nil {
			t.Fatal(err)
		}
		idleSum += ri.Cycles
		loadedSum += rl.Cycles
	}
	if loadedSum < idleSum {
		t.Fatalf("loaded estimates (%d total cycles) beat idle (%d)", loadedSum, idleSum)
	}
}

// TestServerProtocolErrors drives a raw connection with hostile lines
// and checks each is answered with a structured error, id-correlated
// where one was parseable.
func TestServerProtocolErrors(t *testing.T) {
	_, addr := startServer(t, nocsvc.ServerConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	roundTrip := func(line string) nocsvc.Response {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			t.Fatal(err)
		}
		raw, err := rd.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		resp, err := nocsvc.DecodeResponse(raw)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := roundTrip(`this is not json`); resp.Err == nil || resp.Err.Code != nocsvc.CodeBadRequest {
		t.Fatalf("garbage line: %+v", resp)
	}
	if resp := roundTrip(`{"v":1,"id":41,"verb":"warp"}`); resp.Err == nil || resp.Err.Code != nocsvc.CodeUnknownVerb || resp.ID != 41 {
		t.Fatalf("unknown verb: %+v", resp)
	}
	if resp := roundTrip(`{"v":1,"id":42,"verb":"estimate","session":"nope","est":{"src":0,"dst":1,"bytes":8}}`); resp.Err == nil || resp.Err.Code != nocsvc.CodeNoSession || resp.ID != 42 {
		t.Fatalf("missing session: %+v", resp)
	}
	if resp := roundTrip(`{"v":3,"id":43,"verb":"stats"}`); resp.Err == nil || resp.Err.Code != nocsvc.CodeBadVersion {
		t.Fatalf("bad version: %+v", resp)
	}
	// The server stays healthy after errors.
	if resp := roundTrip(`{"v":1,"id":44,"verb":"stats"}`); !resp.OK || resp.Stats == nil {
		t.Fatalf("stats after errors: %+v", resp)
	} else if resp.Stats.Server.Errors < 4 {
		t.Fatalf("error counter %d, want >= 4", resp.Stats.Server.Errors)
	}
}

// TestServerLineTooLong sends an oversized line and expects a
// structured line_too_long error followed by connection close.
func TestServerLineTooLong(t *testing.T) {
	_, addr := startServer(t, nocsvc.ServerConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	huge := strings.Repeat("x", nocsvc.MaxLineBytes+16)
	if _, err := fmt.Fprintf(conn, "%s\n", huge); err != nil {
		t.Fatal(err)
	}
	rd := bufio.NewReader(conn)
	raw, err := rd.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	resp, err := nocsvc.DecodeResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == nil || resp.Err.Code != nocsvc.CodeLineTooLong {
		t.Fatalf("oversized line: %+v", resp)
	}
	if _, err := rd.ReadBytes('\n'); err == nil {
		t.Fatal("connection stayed open after an unframeable line")
	}
}

// TestServerSessionLimit exercises admission control through the wire.
func TestServerSessionLimit(t *testing.T) {
	_, addr := startServer(t, nocsvc.ServerConfig{MaxSessions: 2})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	open := func() (*client.Session, error) {
		return c.OpenSession(client.OpenParams{Topology: "flatfly", K: 2, N: 2, Warmup: -1})
	}
	s1, err := open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := open(); err != nil {
		t.Fatal(err)
	}
	_, err = open()
	perr, ok := err.(*client.Error)
	if !ok || perr.Code != nocsvc.CodeSessionLimit {
		t.Fatalf("third open: %v, want %s", err, nocsvc.CodeSessionLimit)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := open(); err != nil {
		t.Fatalf("open after close: %v", err)
	}
}

// TestServerSoak is the acceptance soak: 64 concurrent sessions, 1000
// estimates each, zero protocol errors — run under -race by make race.
func TestServerSoak(t *testing.T) {
	sessions, perSession := 64, 1000
	if testing.Short() {
		sessions, perSession = 8, 200
	}
	srv, addr := startServer(t, nocsvc.ServerConfig{MaxSessions: sessions})

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			sess, err := c.OpenSession(client.OpenParams{
				Topology: "flatfly", K: 4, N: 2,
				Seed: uint64(w + 1), Warmup: -1,
			})
			if err != nil {
				errs <- fmt.Errorf("worker %d open: %w", w, err)
				return
			}
			nodes := sess.Info().Nodes
			const chunk = 50
			for done := 0; done < perSession; done += chunk {
				items := make([]client.EstimateParams, chunk)
				for i := range items {
					v := w*perSession + done + i
					src := v % nodes
					dst := (v*13 + 7) % nodes
					if dst == src {
						dst = (dst + 1) % nodes
					}
					items[i] = client.EstimateParams{Src: src, Dst: dst, Bytes: 8 * (1 + v%16)}
				}
				results, err := sess.BatchEstimate(items)
				if err != nil {
					errs <- fmt.Errorf("worker %d batch at %d: %w", w, done, err)
					return
				}
				for i, r := range results {
					if r.Cycles <= 0 {
						errs <- fmt.Errorf("worker %d item %d: nonpositive latency %d", w, done+i, r.Cycles)
						return
					}
				}
			}
			if _, err := sess.Stats(); err != nil {
				errs <- fmt.Errorf("worker %d stats: %w", w, err)
				return
			}
			if err := sess.Close(); err != nil {
				errs <- fmt.Errorf("worker %d close: %w", w, err)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := srv.StatsSnapshot(false)
	if want := int64(sessions * perSession); st.Estimates != want {
		t.Errorf("served %d estimates, want %d", st.Estimates, want)
	}
	if st.Errors != 0 {
		t.Errorf("%d protocol errors during soak", st.Errors)
	}
	if st.Sessions != 0 {
		t.Errorf("%d sessions leaked", st.Sessions)
	}
	if st.PeakSessions > int64(sessions) {
		t.Errorf("peak %d exceeded the cap %d", st.PeakSessions, sessions)
	}
}

// TestServerCloseUnderLoad shuts the server down with estimates in
// flight; clients must see errors or EOF, never a hang or panic.
func TestServerCloseUnderLoad(t *testing.T) {
	srv, addr := startServer(t, nocsvc.ServerConfig{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.OpenSession(client.OpenParams{Topology: "flatfly", K: 4, N: 2, Load: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			if _, err := sess.Estimate(i%16, (i+5)%16, 64); err != nil {
				return
			}
		}
	}()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
}
