package nocsvc

import (
	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// Session parameter defaults, applied by normalize.
const (
	defaultBufPerPort = 32
	defaultPacketSize = 1
	defaultFlitBytes  = 8
	defaultWarmup     = 1000
)

// normalize fills an OpenParams' defaulted fields in place.
func (p *OpenParams) normalize() {
	if p.BufPerPort == 0 {
		p.BufPerPort = defaultBufPerPort
	}
	if p.PacketSize == 0 {
		p.PacketSize = defaultPacketSize
	}
	if p.FlitBytes == 0 {
		p.FlitBytes = defaultFlitBytes
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	switch {
	case p.Warmup == 0:
		p.Warmup = defaultWarmup
	case p.Warmup < 0:
		p.Warmup = 0
	}
	if p.Pattern == "" {
		p.Pattern = "uniform"
	} else if canon, ok := traffic.Canonical(p.Pattern); ok {
		p.Pattern = canon
	}
}

// buildNetwork materializes a session's channel graph, routing algorithm
// and simulator configuration from normalized OpenParams. maxNodes is
// the server's admission-control cap on topology size; 0 means no cap.
func buildNetwork(p OpenParams, maxNodes int) (*topo.Graph, sim.Algorithm, sim.Config, *Error) {
	var (
		g   *topo.Graph
		alg sim.Algorithm
	)
	switch p.Topology {
	case "flatfly":
		f, err := core.NewFlatFly(p.K, p.N)
		if err != nil {
			return nil, nil, sim.Config{}, errf(CodeBadRequest, "open: %v", err)
		}
		r := p.Routing
		if r == "" {
			r = "min"
		}
		alg, err = routing.NewFlatFlyAlgorithm(r, f)
		if err != nil {
			return nil, nil, sim.Config{}, errf(CodeBadRequest, "open: %v", err)
		}
		g = f.Graph()
	case "butterfly":
		b, err := topo.NewButterfly(p.K, p.N)
		if err != nil {
			return nil, nil, sim.Config{}, errf(CodeBadRequest, "open: %v", err)
		}
		if p.Routing != "" && p.Routing != "destination" {
			return nil, nil, sim.Config{}, errf(CodeBadRequest,
				"open: butterfly supports routing \"destination\", not %q", p.Routing)
		}
		alg = routing.NewButterflyDest(b)
		g = b.Graph()
	case "foldedclos":
		// The §3.3 equal-bisection convention: 2:1 tapered, K terminals
		// per leaf, K^N total terminals (mirrors cmd/flatsim's -taper 2).
		fc, err := topo.TaperedClosForNodes(pow(p.K, p.N), 2*p.K)
		if err != nil {
			return nil, nil, sim.Config{}, errf(CodeBadRequest, "open: %v", err)
		}
		if p.Routing != "" && p.Routing != "adaptive sequential" {
			return nil, nil, sim.Config{}, errf(CodeBadRequest,
				"open: foldedclos supports routing \"adaptive sequential\", not %q", p.Routing)
		}
		alg = routing.NewFoldedClosAdaptive(fc)
		g = fc.Graph()
	case "hypercube":
		h, err := topo.NewHypercube(p.N)
		if err != nil {
			return nil, nil, sim.Config{}, errf(CodeBadRequest, "open: %v", err)
		}
		if p.Routing != "" && p.Routing != "e-cube" {
			return nil, nil, sim.Config{}, errf(CodeBadRequest,
				"open: hypercube supports routing \"e-cube\", not %q", p.Routing)
		}
		alg = routing.NewECube(h)
		g = h.Graph()
	default:
		return nil, nil, sim.Config{}, errf(CodeBadRequest, "open: unknown topology %q", p.Topology)
	}
	if maxNodes > 0 && g.NumNodes > maxNodes {
		return nil, nil, sim.Config{}, errf(CodeBadRequest,
			"open: topology has %d terminals, above the server cap of %d", g.NumNodes, maxNodes)
	}
	cfg := sim.Config{
		Seed:       p.Seed,
		BufPerPort: p.BufPerPort,
		PacketSize: p.PacketSize,
	}
	return g, alg, cfg, nil
}

// pow returns k^n without overflow surprises for protocol-bounded
// inputs (k <= 1024, n <= 20): it saturates at a value any maxNodes cap
// rejects.
func pow(k, n int) int {
	const lim = 1 << 30
	v := 1
	for i := 0; i < n; i++ {
		v *= k
		if v <= 0 || v > lim {
			return lim
		}
	}
	return v
}

// packetsFor converts a transfer size in bytes into whole packets given
// the session's flit geometry. A zero-byte transfer still occupies one
// packet (the message exists even if its payload is empty).
func packetsFor(bytes, flitBytes, packetSize int) int {
	flits := (bytes + flitBytes - 1) / flitBytes
	if flits < 1 {
		flits = 1
	}
	packets := (flits + packetSize - 1) / packetSize
	if packets < 1 {
		packets = 1
	}
	return packets
}
