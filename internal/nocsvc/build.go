package nocsvc

import (
	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// Session parameter defaults, applied by normalize.
const (
	defaultBufPerPort = 32
	defaultPacketSize = 1
	defaultFlitBytes  = 8
	defaultWarmup     = 1000
	defaultBurstLen   = 16
)

// normalize fills an OpenParams' defaulted fields in place.
func (p *OpenParams) normalize() {
	if p.BufPerPort == 0 {
		p.BufPerPort = defaultBufPerPort
	}
	if p.PacketSize == 0 {
		p.PacketSize = defaultPacketSize
	}
	if p.FlitBytes == 0 {
		p.FlitBytes = defaultFlitBytes
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	switch {
	case p.Warmup == 0:
		p.Warmup = defaultWarmup
	case p.Warmup < 0:
		p.Warmup = 0
	}
	if p.Pattern == "" {
		p.Pattern = "uniform"
	} else if canon, ok := traffic.Canonical(p.Pattern); ok {
		p.Pattern = canon
	}
	if p.BurstPeak > 0 && p.BurstLen == 0 {
		p.BurstLen = defaultBurstLen
	}
}

// buildNetwork materializes a session's channel graph, routing algorithm
// and simulator configuration from normalized OpenParams. It also
// reports the topology's concentration (terminals per router group),
// which seeds the group traffic patterns. maxNodes is the server's
// admission-control cap on topology size; 0 means no cap.
func buildNetwork(p OpenParams, maxNodes int) (*topo.Graph, sim.Algorithm, sim.Config, int, *Error) {
	var (
		g    *topo.Graph
		alg  sim.Algorithm
		conc int
	)
	switch p.Topology {
	case "flatfly":
		f, err := core.NewFlatFly(p.K, p.N)
		if err != nil {
			return nil, nil, sim.Config{}, 0, errf(CodeBadRequest, "open: %v", err)
		}
		r := p.Routing
		if r == "" {
			r = "min"
		}
		alg, err = routing.NewFlatFlyAlgorithm(r, f)
		if err != nil {
			return nil, nil, sim.Config{}, 0, errf(CodeBadRequest, "open: %v", err)
		}
		g = f.Graph()
		conc = f.K
	case "butterfly":
		b, err := topo.NewButterfly(p.K, p.N)
		if err != nil {
			return nil, nil, sim.Config{}, 0, errf(CodeBadRequest, "open: %v", err)
		}
		if p.Routing != "" && p.Routing != "destination" {
			return nil, nil, sim.Config{}, 0, errf(CodeBadRequest,
				"open: butterfly supports routing \"destination\", not %q", p.Routing)
		}
		alg = routing.NewButterflyDest(b)
		g = b.Graph()
		conc = p.K
	case "foldedclos":
		// The §3.3 equal-bisection convention: 2:1 tapered, K terminals
		// per leaf, K^N total terminals (mirrors cmd/flatsim's -taper 2).
		fc, err := topo.TaperedClosForNodes(pow(p.K, p.N), 2*p.K)
		if err != nil {
			return nil, nil, sim.Config{}, 0, errf(CodeBadRequest, "open: %v", err)
		}
		if p.Routing != "" && p.Routing != "adaptive sequential" {
			return nil, nil, sim.Config{}, 0, errf(CodeBadRequest,
				"open: foldedclos supports routing \"adaptive sequential\", not %q", p.Routing)
		}
		alg = routing.NewFoldedClosAdaptive(fc)
		g = fc.Graph()
		conc = p.K
	case "hypercube":
		h, err := topo.NewHypercube(p.N)
		if err != nil {
			return nil, nil, sim.Config{}, 0, errf(CodeBadRequest, "open: %v", err)
		}
		if p.Routing != "" && p.Routing != "e-cube" {
			return nil, nil, sim.Config{}, 0, errf(CodeBadRequest,
				"open: hypercube supports routing \"e-cube\", not %q", p.Routing)
		}
		alg = routing.NewECube(h)
		g = h.Graph()
		conc = 1
	default:
		return nil, nil, sim.Config{}, 0, errf(CodeBadRequest, "open: unknown topology %q", p.Topology)
	}
	if maxNodes > 0 && g.NumNodes > maxNodes {
		return nil, nil, sim.Config{}, 0, errf(CodeBadRequest,
			"open: topology has %d terminals, above the server cap of %d", g.NumNodes, maxNodes)
	}
	cfg := sim.Config{
		Seed:       p.Seed,
		BufPerPort: p.BufPerPort,
		PacketSize: p.PacketSize,
	}
	return g, alg, cfg, conc, nil
}

// buildWorkload materializes a session's background workload source
// from normalized OpenParams: the registry pattern (group patterns use
// the topology's concentration, hotspot/incast the params' hot set)
// wrapped in either the default Bernoulli arrival process or, when
// burst_peak is set, the two-state on/off process. A source carries no
// identity in a snapshot beyond its name and mutable state, so a clone
// rebuilds an identical one from the same params.
func buildWorkload(p OpenParams, nodes, conc int) (traffic.Source, error) {
	hot := make([]topo.NodeID, len(p.Hot))
	for i, h := range p.Hot {
		hot[i] = topo.NodeID(h)
	}
	pat, err := traffic.Build(p.Pattern, traffic.BuildCtx{
		Nodes:         nodes,
		Seed:          p.Seed,
		Concentration: conc,
		HotSet:        hot,
		HotFraction:   p.HotFraction,
	})
	if err != nil {
		return nil, err
	}
	if p.BurstPeak > 0 {
		return traffic.NewOnOff(pat, p.BurstPeak, p.BurstLen)
	}
	return traffic.NewBernoulli(pat), nil
}

// pow returns k^n without overflow surprises for protocol-bounded
// inputs (k <= 1024, n <= 20): it saturates at a value any maxNodes cap
// rejects.
func pow(k, n int) int {
	const lim = 1 << 30
	v := 1
	for i := 0; i < n; i++ {
		v *= k
		if v <= 0 || v > lim {
			return lim
		}
	}
	return v
}

// packetsFor converts a transfer size in bytes into whole packets given
// the session's flit geometry. A zero-byte transfer still occupies one
// packet (the message exists even if its payload is empty).
func packetsFor(bytes, flitBytes, packetSize int) int {
	flits := (bytes + flitBytes - 1) / flitBytes
	if flits < 1 {
		flits = 1
	}
	packets := (flits + packetSize - 1) / packetSize
	if packets < 1 {
		packets = 1
	}
	return packets
}
