package nocsvc

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// manager owns session lifecycle: admission control against the session
// cap, the id → session table, and idle eviction.
type manager struct {
	cfg ServerConfig

	// slots is the admission semaphore: one token held per live session
	// (and per open in flight), capacity MaxSessions.
	slots chan struct{}

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int64
	closed   bool

	// Server-side checkpoint store: snapshots travel by id, never over
	// the wire (a warmed network can exceed MaxLineBytes). The store is
	// capped; taking a checkpoint past the cap evicts the oldest.
	ckptMu    sync.Mutex
	ckpts     map[string]*checkpointEntry
	ckptOrder []string
	nextCkpt  int64

	janitorStop chan struct{}
	janitorDone chan struct{}

	opens     atomic.Int64
	rejects   atomic.Int64
	evictions atomic.Int64
	peak      atomic.Int64
	clones    atomic.Int64
}

// checkpointEntry is one stored snapshot plus the session parameters
// needed to rebuild its network around it.
type checkpointEntry struct {
	p    OpenParams
	data []byte
}

func newManager(cfg ServerConfig) *manager {
	m := &manager{
		cfg:         cfg,
		slots:       make(chan struct{}, cfg.MaxSessions),
		sessions:    make(map[string]*session),
		ckpts:       make(map[string]*checkpointEntry),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	go m.janitor()
	return m
}

// open admits, builds and warms a new session. Admission control: when
// the daemon is at its session cap, the open waits up to OpenWait for a
// slot to free (a bounded queue of opens), then rejects with
// CodeSessionLimit.
func (m *manager) open(p OpenParams) (*session, *Error) {
	s, perr := m.admitAndBuild(func(id string) (*session, *Error) {
		return newSession(id, p, m.cfg.MaxNodes, m.cfg.MaxInflight, int64(m.cfg.EstimateBudget), m.cfg.DefaultWorkers)
	})
	if perr != nil {
		return nil, perr
	}
	m.opens.Add(1)
	return s, nil
}

// clone admits a new session restored from a stored checkpoint, under
// the same admission control as open. The clone skips warm-up entirely:
// it starts at the checkpointed cycle, bit-identical to the session the
// snapshot was taken from.
func (m *manager) clone(ckptID string) (*session, *Error) {
	e, perr := m.getCheckpoint(ckptID)
	if perr != nil {
		return nil, perr
	}
	s, perr := m.admitAndBuild(func(id string) (*session, *Error) {
		return newSessionFromSnapshot(id, e.p, e.data, m.cfg.MaxNodes, m.cfg.MaxInflight, int64(m.cfg.EstimateBudget), m.cfg.DefaultWorkers)
	})
	if perr != nil {
		return nil, perr
	}
	m.opens.Add(1)
	m.clones.Add(1)
	return s, nil
}

// admitAndBuild runs the shared open/clone lifecycle: acquire a session
// slot (waiting up to OpenWait), allocate an id, build via the supplied
// constructor outside the table lock (opens of large networks must not
// block estimates on other sessions), then install the session.
func (m *manager) admitAndBuild(build func(id string) (*session, *Error)) (*session, *Error) {
	select {
	case m.slots <- struct{}{}:
	default:
		if m.cfg.OpenWait <= 0 {
			m.rejects.Add(1)
			return nil, errf(CodeSessionLimit,
				"at the session cap of %d", m.cfg.MaxSessions)
		}
		t := time.NewTimer(m.cfg.OpenWait)
		select {
		case m.slots <- struct{}{}:
			t.Stop()
		case <-t.C:
			m.rejects.Add(1)
			return nil, errf(CodeSessionLimit,
				"at the session cap of %d (waited %v)", m.cfg.MaxSessions, m.cfg.OpenWait)
		}
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.slots
		return nil, errf(CodeShutdown, "server shutting down")
	}
	m.nextID++
	id := fmt.Sprintf("s%d", m.nextID)
	m.mu.Unlock()

	s, perr := build(id)
	if perr != nil {
		<-m.slots
		return nil, perr
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		s.close()
		<-m.slots
		return nil, errf(CodeShutdown, "server shutting down")
	}
	m.sessions[id] = s
	if n := int64(len(m.sessions)); n > m.peak.Load() {
		m.peak.Store(n)
	}
	m.mu.Unlock()
	return s, nil
}

// checkpoint stores a snapshot plus its session parameters and returns
// the checkpoint id. The store is a capped FIFO: exceeding
// MaxCheckpoints evicts the oldest entry.
func (m *manager) checkpoint(p OpenParams, data []byte) string {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	m.nextCkpt++
	id := fmt.Sprintf("c%d", m.nextCkpt)
	m.ckpts[id] = &checkpointEntry{p: p, data: data}
	m.ckptOrder = append(m.ckptOrder, id)
	for len(m.ckptOrder) > m.cfg.MaxCheckpoints {
		evict := m.ckptOrder[0]
		m.ckptOrder = m.ckptOrder[1:]
		delete(m.ckpts, evict)
	}
	return id
}

// getCheckpoint resolves a checkpoint id.
func (m *manager) getCheckpoint(id string) (*checkpointEntry, *Error) {
	m.ckptMu.Lock()
	e := m.ckpts[id]
	m.ckptMu.Unlock()
	if e == nil {
		return nil, errf(CodeNoCheckpoint, "no checkpoint %q (never taken, or evicted)", id)
	}
	return e, nil
}

// checkpointCount returns the number of stored checkpoints.
func (m *manager) checkpointCount() int {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	return len(m.ckpts)
}

// lookup resolves a session id.
func (m *manager) lookup(id string) (*session, *Error) {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return nil, errf(CodeNoSession, "no session %q", id)
	}
	return s, nil
}

// close removes and shuts down one session, releasing its slot.
func (m *manager) close(id string) *Error {
	m.mu.Lock()
	s := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if s == nil {
		return errf(CodeNoSession, "no session %q", id)
	}
	s.close()
	<-m.slots
	return nil
}

// closeAll shuts every session down and stops the janitor; further opens
// fail with CodeShutdown.
func (m *manager) closeAll() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	victims := make([]*session, 0, len(m.sessions))
	for id, s := range m.sessions {
		victims = append(victims, s)
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	close(m.janitorStop)
	for _, s := range victims {
		s.close()
		<-m.slots
	}
	<-m.janitorDone
}

// janitor evicts sessions idle past IdleTimeout, scanning at a quarter
// of the timeout.
func (m *manager) janitor() {
	defer close(m.janitorDone)
	if m.cfg.IdleTimeout <= 0 {
		<-m.janitorStop
		return
	}
	period := m.cfg.IdleTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case now := <-tick.C:
			var idle []string
			m.mu.Lock()
			for id, s := range m.sessions {
				if s.idleFor(now) > m.cfg.IdleTimeout {
					idle = append(idle, id)
				}
			}
			m.mu.Unlock()
			for _, id := range idle {
				if m.close(id) == nil {
					m.evictions.Add(1)
				}
			}
		}
	}
}

// count returns the live session count.
func (m *manager) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// snapshot lists every live session's stats, ordered by id for stable
// output.
func (m *manager) snapshot(now time.Time) []SessionStats {
	m.mu.Lock()
	all := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	out := make([]SessionStats, 0, len(all))
	for _, s := range all {
		out = append(out, s.stats(now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
