package nocsvc

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// manager owns session lifecycle: admission control against the session
// cap, the id → session table, and idle eviction.
type manager struct {
	cfg ServerConfig

	// slots is the admission semaphore: one token held per live session
	// (and per open in flight), capacity MaxSessions.
	slots chan struct{}

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int64
	closed   bool

	janitorStop chan struct{}
	janitorDone chan struct{}

	opens     atomic.Int64
	rejects   atomic.Int64
	evictions atomic.Int64
	peak      atomic.Int64
}

func newManager(cfg ServerConfig) *manager {
	m := &manager{
		cfg:         cfg,
		slots:       make(chan struct{}, cfg.MaxSessions),
		sessions:    make(map[string]*session),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	go m.janitor()
	return m
}

// open admits, builds and warms a new session. Admission control: when
// the daemon is at its session cap, the open waits up to OpenWait for a
// slot to free (a bounded queue of opens), then rejects with
// CodeSessionLimit.
func (m *manager) open(p OpenParams) (*session, *Error) {
	select {
	case m.slots <- struct{}{}:
	default:
		if m.cfg.OpenWait <= 0 {
			m.rejects.Add(1)
			return nil, errf(CodeSessionLimit,
				"at the session cap of %d", m.cfg.MaxSessions)
		}
		t := time.NewTimer(m.cfg.OpenWait)
		select {
		case m.slots <- struct{}{}:
			t.Stop()
		case <-t.C:
			m.rejects.Add(1)
			return nil, errf(CodeSessionLimit,
				"at the session cap of %d (waited %v)", m.cfg.MaxSessions, m.cfg.OpenWait)
		}
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.slots
		return nil, errf(CodeShutdown, "server shutting down")
	}
	m.nextID++
	id := fmt.Sprintf("s%d", m.nextID)
	m.mu.Unlock()

	// Build and warm outside the table lock: opens of large networks must
	// not block estimates on other sessions.
	s, perr := newSession(id, p, m.cfg.MaxNodes, m.cfg.MaxInflight, int64(m.cfg.EstimateBudget), m.cfg.DefaultWorkers)
	if perr != nil {
		<-m.slots
		return nil, perr
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		s.close()
		<-m.slots
		return nil, errf(CodeShutdown, "server shutting down")
	}
	m.sessions[id] = s
	if n := int64(len(m.sessions)); n > m.peak.Load() {
		m.peak.Store(n)
	}
	m.mu.Unlock()
	m.opens.Add(1)
	return s, nil
}

// lookup resolves a session id.
func (m *manager) lookup(id string) (*session, *Error) {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return nil, errf(CodeNoSession, "no session %q", id)
	}
	return s, nil
}

// close removes and shuts down one session, releasing its slot.
func (m *manager) close(id string) *Error {
	m.mu.Lock()
	s := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if s == nil {
		return errf(CodeNoSession, "no session %q", id)
	}
	s.close()
	<-m.slots
	return nil
}

// closeAll shuts every session down and stops the janitor; further opens
// fail with CodeShutdown.
func (m *manager) closeAll() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	victims := make([]*session, 0, len(m.sessions))
	for id, s := range m.sessions {
		victims = append(victims, s)
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	close(m.janitorStop)
	for _, s := range victims {
		s.close()
		<-m.slots
	}
	<-m.janitorDone
}

// janitor evicts sessions idle past IdleTimeout, scanning at a quarter
// of the timeout.
func (m *manager) janitor() {
	defer close(m.janitorDone)
	if m.cfg.IdleTimeout <= 0 {
		<-m.janitorStop
		return
	}
	period := m.cfg.IdleTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case now := <-tick.C:
			var idle []string
			m.mu.Lock()
			for id, s := range m.sessions {
				if s.idleFor(now) > m.cfg.IdleTimeout {
					idle = append(idle, id)
				}
			}
			m.mu.Unlock()
			for _, id := range idle {
				if m.close(id) == nil {
					m.evictions.Add(1)
				}
			}
		}
	}
}

// count returns the live session count.
func (m *manager) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// snapshot lists every live session's stats, ordered by id for stable
// output.
func (m *manager) snapshot(now time.Time) []SessionStats {
	m.mu.Lock()
	all := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	out := make([]SessionStats, 0, len(all))
	for _, s := range all {
		out = append(out, s.stats(now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
