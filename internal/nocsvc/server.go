package nocsvc

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"flatnet/internal/telemetry"
)

// ServerConfig parameterizes a Server. The zero value is usable:
// withDefaults fills every field.
type ServerConfig struct {
	// MaxSessions caps concurrently open sessions (default 64).
	MaxSessions int
	// MaxInflight bounds each session's inflight command queue; requests
	// past it are rejected with CodeOverloaded (default 64).
	MaxInflight int
	// IdleTimeout evicts sessions with no requests for this long
	// (default 5m; negative disables).
	IdleTimeout time.Duration
	// OpenWait is how long an open_session may wait for a slot when the
	// daemon is at MaxSessions before rejecting (default 0: reject
	// immediately).
	OpenWait time.Duration
	// EstimateBudget is the per-estimate cycle budget before the estimate
	// reports Saturated (default 1 << 16).
	EstimateBudget int
	// MaxNodes rejects open_session topologies larger than this many
	// terminals (default 4096; negative disables).
	MaxNodes int
	// DefaultWorkers is the cycle-core worker count for sessions whose
	// open_session did not name one (default 1: sequential). Sessions
	// are bit-identical at every worker count, so this only changes
	// wall-clock speed.
	DefaultWorkers int
	// MaxCheckpoints caps the server-side checkpoint store; taking a
	// checkpoint past the cap evicts the oldest (default 16).
	MaxCheckpoints int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.EstimateBudget <= 0 {
		c.EstimateBudget = 1 << 16
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 4096
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = 1
	}
	if c.MaxCheckpoints <= 0 {
		c.MaxCheckpoints = 16
	}
	return c
}

// ServerStats is the server-wide half of the stats verb.
type ServerStats struct {
	Sessions     int                       `json:"sessions"`
	PeakSessions int64                     `json:"peak_sessions"`
	Opens        int64                     `json:"opens"`
	OpenRejects  int64                     `json:"open_rejects"`
	Evictions    int64                     `json:"evictions"`
	Checkpoints  int                       `json:"checkpoints"`
	Clones       int64                     `json:"clones"`
	Requests     int64                     `json:"requests"`
	Errors       int64                     `json:"errors"`
	Estimates    int64                     `json:"estimates"`
	Service      telemetry.LatencySnapshot `json:"service_latency"`
	SessionList  []SessionStats            `json:"session_list,omitempty"`
}

// Server serves the NoC-as-a-service protocol over any number of
// connections (stdio or TCP) sharing one session table.
type Server struct {
	cfg ServerConfig
	mgr *manager
	lat *telemetry.LatencyRecorder

	requests  telemetry.Counter
	errs      telemetry.Counter
	estimates telemetry.Counter

	mu        sync.Mutex
	closed    bool
	listeners []net.Listener
	conns     map[net.Conn]struct{}

	wg sync.WaitGroup // accept loops and connection handlers
}

// NewServer builds a server; Close releases its sessions and janitor.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:   cfg,
		mgr:   newManager(cfg),
		lat:   telemetry.NewLatencyRecorder(0),
		conns: make(map[net.Conn]struct{}),
	}
}

// StatsSnapshot returns the server-wide stats, with the per-session list
// when detail is true.
func (s *Server) StatsSnapshot(detail bool) ServerStats {
	st := ServerStats{
		Sessions:     s.mgr.count(),
		PeakSessions: s.mgr.peak.Load(),
		Opens:        s.mgr.opens.Load(),
		OpenRejects:  s.mgr.rejects.Load(),
		Evictions:    s.mgr.evictions.Load(),
		Checkpoints:  s.mgr.checkpointCount(),
		Clones:       s.mgr.clones.Load(),
		Requests:     s.requests.Value(),
		Errors:       s.errs.Value(),
		Estimates:    s.estimates.Value(),
		Service:      s.lat.Snapshot(),
	}
	if detail {
		st.SessionList = s.mgr.snapshot(time.Now())
	}
	return st
}

// Register publishes the service's counters and a live stats gauge on a
// telemetry registry (served by cmd/nocd's -telemetry endpoint).
func (s *Server) Register(reg *telemetry.Registry) {
	reg.Gauge("nocsvc", func() any { return s.StatsSnapshot(true) })
}

// Serve accepts connections from ln until the listener closes (typically
// via Server.Close). Each connection runs ServeConn in its own
// goroutine; per-connection errors end that connection only.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("nocsvc: server is closed")
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			_ = s.ServeConn(conn)
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close shuts the server down: listeners and connections close, every
// session drains and exits. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.listeners
	s.listeners = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	s.mgr.closeAll()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// syncWriter serializes response lines from concurrent session workers
// onto one connection.
type syncWriter struct {
	mu sync.Mutex
	w  *bufio.Writer
}

func (w *syncWriter) send(resp *Response) {
	b, err := EncodeResponse(resp)
	if err != nil {
		// A response that cannot marshal is a programming error; emit a
		// structured internal error so the client is never left hanging.
		b, _ = EncodeResponse(&Response{
			ID: resp.ID, Err: errf(CodeInternal, "response encoding failed: %v", err),
		})
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w.Write(b)        //nolint:errcheck // write errors surface on Flush
	w.w.WriteByte('\n') //nolint:errcheck
	_ = w.w.Flush()     // per-line flush: co-simulation clients block on each reply
}

// ServeConn speaks the protocol over one byte stream (a TCP connection,
// or stdin/stdout in child-process mode) until EOF or an unrecoverable
// framing error. Requests pipeline: estimates run on their sessions'
// workers while the reader keeps consuming lines, and responses are
// correlated by id, not order.
func (s *Server) ServeConn(rw io.ReadWriter) error {
	out := &syncWriter{w: bufio.NewWriter(rw)}
	sc := bufio.NewScanner(rw)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	var pending sync.WaitGroup
	defer pending.Wait()
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		s.requests.Inc()
		start := time.Now()
		req, perr := DecodeRequest(line)
		if perr != nil {
			s.fail(out, req.ID, perr, start)
			continue
		}
		s.dispatch(&req, out, &pending, start)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The stream cannot be re-framed after an oversized line:
			// answer with a structured error, then drop the connection.
			s.requests.Inc()
			s.fail(out, 0, errf(CodeLineTooLong, "request line exceeds %d bytes", MaxLineBytes), time.Now())
		}
		return err
	}
	return nil
}

// fail emits a failure response and accounts for it.
func (s *Server) fail(out *syncWriter, id int64, perr *Error, start time.Time) {
	s.errs.Inc()
	out.send(&Response{ID: id, Err: perr})
	s.lat.Observe(time.Since(start))
}

// dispatch routes one validated request. Fast verbs (stats, lookup
// failures) answer inline on the reader goroutine; opens and closes run
// on their own goroutines (they warm or drain a network); estimates run
// on their session's worker via the bounded inflight queue.
func (s *Server) dispatch(req *Request, out *syncWriter, pending *sync.WaitGroup, start time.Time) {
	switch req.Verb {
	case VerbOpen:
		p := *req.Open
		p.normalize()
		id := req.ID
		pending.Add(1)
		go func() {
			defer pending.Done()
			sess, perr := s.mgr.open(p)
			if perr != nil {
				s.fail(out, id, perr, start)
				return
			}
			info := sess.info
			out.send(&Response{ID: id, OK: true, Session: sess.id, Info: &info})
			s.lat.Observe(time.Since(start))
		}()

	case VerbEstimate, VerbBatch:
		sess, perr := s.mgr.lookup(req.Session)
		if perr != nil {
			s.fail(out, req.ID, perr, start)
			return
		}
		items := req.Batch
		single := req.Verb == VerbEstimate
		if single {
			items = []EstimateParams{*req.Est}
		}
		id := req.ID
		c := &cmd{
			items: items,
			respond: func(results []EstimateResult, perr *Error) {
				if perr != nil {
					s.fail(out, id, perr, start)
					return
				}
				s.estimates.Add(int64(len(results)))
				resp := &Response{ID: id, OK: true}
				if single {
					resp.Est = &results[0]
				} else {
					resp.Batch = results
				}
				out.send(resp)
				s.lat.Observe(time.Since(start))
			},
		}
		if perr := sess.submit(c); perr != nil {
			s.fail(out, id, perr, start)
		}

	case VerbCheckpoint:
		sess, perr := s.mgr.lookup(req.Session)
		if perr != nil {
			s.fail(out, req.ID, perr, start)
			return
		}
		id, sid := req.ID, req.Session
		c := &cmd{
			snapshot: true,
			respondSnap: func(data []byte, perr *Error) {
				if perr != nil {
					s.fail(out, id, perr, start)
					return
				}
				ckpt := s.mgr.checkpoint(sess.p, data)
				out.send(&Response{ID: id, OK: true, Session: sid, Checkpoint: ckpt})
				s.lat.Observe(time.Since(start))
			},
		}
		if perr := sess.submit(c); perr != nil {
			s.fail(out, id, perr, start)
		}

	case VerbClone:
		id, ckpt := req.ID, req.Checkpoint
		pending.Add(1)
		go func() {
			defer pending.Done()
			sess, perr := s.mgr.clone(ckpt)
			if perr != nil {
				s.fail(out, id, perr, start)
				return
			}
			info := sess.info
			out.send(&Response{ID: id, OK: true, Session: sess.id, Checkpoint: ckpt, Info: &info})
			s.lat.Observe(time.Since(start))
		}()

	case VerbClose:
		id, sid := req.ID, req.Session
		pending.Add(1)
		go func() {
			defer pending.Done()
			if perr := s.mgr.close(sid); perr != nil {
				s.fail(out, id, perr, start)
				return
			}
			out.send(&Response{ID: id, OK: true, Session: sid})
			s.lat.Observe(time.Since(start))
		}()

	case VerbStats:
		st := &Stats{Server: s.StatsSnapshot(false)}
		if req.Session != "" {
			sess, perr := s.mgr.lookup(req.Session)
			if perr != nil {
				s.fail(out, req.ID, perr, start)
				return
			}
			detail := sess.stats(time.Now())
			st.Session = &detail
		}
		out.send(&Response{ID: req.ID, OK: true, Stats: st})
		s.lat.Observe(time.Since(start))

	default:
		// DecodeRequest already rejected unknown verbs; keep a structured
		// answer anyway in case the two ever drift.
		s.fail(out, req.ID, errf(CodeUnknownVerb, "unknown verb %q", req.Verb), start)
	}
}
