package topo

import (
	"errors"
	"testing"
)

// bfsDist runs a plain BFS over a channel graph's network channels.
func bfsDist(g *Graph, src RouterID) []int {
	dist := make([]int, len(g.Routers))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []RouterID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, out := range g.Routers[v].Out {
			if out.Kind == Network && dist[out.Peer] < 0 {
				dist[out.Peer] = dist[v] + 1
				queue = append(queue, out.Peer)
			}
		}
	}
	return dist
}

// checkSlimFly asserts the MMS structural invariants for one instance.
func checkSlimFly(t *testing.T, q int) {
	t.Helper()
	s, err := NewSlimFly(q, 1)
	if err != nil {
		t.Fatalf("q=%d: %v", q, err)
	}
	if s.NumRouters != 2*q*q {
		t.Fatalf("q=%d: %d routers, want %d", q, s.NumRouters, 2*q*q)
	}
	wantDeg := (3*q - s.Delta) / 2
	if s.NetworkDegree != wantDeg {
		t.Fatalf("q=%d: degree %d, want %d", q, s.NetworkDegree, wantDeg)
	}
	g := s.Graph()
	if err := g.Validate(); err != nil {
		t.Fatalf("q=%d: %v", q, err)
	}
	// Regularity and bidirectional symmetry over the channel graph.
	for r := 0; r < s.NumRouters; r++ {
		deg := 0
		for p, out := range g.Routers[r].Out {
			if out.Kind != Network {
				continue
			}
			deg++
			back := g.Routers[out.Peer].Out[g.Routers[r].In[p].PeerPort]
			_ = back
			// Every network out-channel must have an opposing channel.
			found := false
			for _, ret := range g.Routers[out.Peer].Out {
				if ret.Kind == Network && ret.Peer == RouterID(r) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("q=%d: channel %d->%d has no opposing channel", q, r, out.Peer)
			}
		}
		if deg != wantDeg {
			t.Fatalf("q=%d: router %d degree %d, want %d", q, r, deg, wantDeg)
		}
	}
	// Diameter 2, measured independently of the constructor's own check.
	for _, src := range []RouterID{0, RouterID(s.NumRouters / 2), RouterID(s.NumRouters - 1)} {
		for _, dst := range bfsDist(g, src) {
			if dst < 0 || dst > 2 {
				t.Fatalf("q=%d: BFS distance %d from router %d (want 0..2)", q, dst, src)
			}
		}
	}
	if s.Diameter() != 2 {
		t.Fatalf("q=%d: Diameter() = %d", q, s.Diameter())
	}
}

// TestSlimFlyConstruction covers both residue classes and the prime-power
// cases across the valid small range.
func TestSlimFlyConstruction(t *testing.T) {
	for _, q := range []int{5, 7, 9, 11, 13, 17, 19, 23, 25, 27} {
		checkSlimFly(t, q)
	}
}

// TestSlimFlyDefaultConcentration pins the ⌈k'/2⌉ default.
func TestSlimFlyDefaultConcentration(t *testing.T) {
	s, err := NewSlimFly(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.P != 4 { // k' = 7, ⌈7/2⌉ = 4
		t.Fatalf("q=5 default p = %d, want 4", s.P)
	}
	if s.NumNodes != 200 {
		t.Fatalf("q=5 default nodes = %d, want 200", s.NumNodes)
	}
}

// FuzzSlimFlyGraph fuzzes the constructor over arbitrary (q, p): valid
// parameters must yield a regular, symmetric, diameter-2 graph and
// invalid ones a *ParamError — never a panic or a wrong network.
func FuzzSlimFlyGraph(f *testing.F) {
	for _, q := range []int{5, 7, 9, 11, 13, 4, 6, 8, 12, 15, 21, 0, -3} {
		f.Add(q, 1)
	}
	f.Add(5, 4)
	f.Add(7, 0)
	f.Fuzz(func(t *testing.T, q, p int) {
		if q > 32 || p > 8 || p < -8 {
			t.Skip("bounded for fuzz throughput")
		}
		s, err := NewSlimFly(q, p)
		if err != nil {
			var pe *ParamError
			if !errors.As(err, &pe) {
				t.Fatalf("NewSlimFly(%d,%d) returned a non-structured error: %v", q, p, err)
			}
			return
		}
		if s.NumRouters != 2*q*q || s.NumNodes != s.NumRouters*s.P {
			t.Fatalf("q=%d p=%d: inconsistent sizes R=%d N=%d", q, p, s.NumRouters, s.NumNodes)
		}
		g := s.Graph()
		if err := g.Validate(); err != nil {
			t.Fatalf("q=%d p=%d: %v", q, p, err)
		}
		for r := 0; r < s.NumRouters; r++ {
			if got := len(s.Adjacency(RouterID(r))); got != s.NetworkDegree {
				t.Fatalf("q=%d: router %d degree %d, want %d", q, r, got, s.NetworkDegree)
			}
		}
		for _, d := range bfsDist(g, 0) {
			if d < 0 || d > 2 {
				t.Fatalf("q=%d: disconnected or diameter > 2 (dist %d)", q, d)
			}
		}
	})
}

// TestDragonflyInvariants asserts vertex count, regularity, bidirectional
// symmetry, the one-global-channel-per-group-pair property and diameter
// <= 3 across canonical and non-canonical parameterizations.
func TestDragonflyInvariants(t *testing.T) {
	cases := []struct{ p, a, h int }{
		{0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {1, 2, 1}, {2, 4, 2}, {1, 3, 2}, {3, 6, 3},
	}
	for _, tc := range cases {
		d, err := NewDragonfly(tc.p, tc.a, tc.h)
		if err != nil {
			t.Fatalf("NewDragonfly(%d,%d,%d): %v", tc.p, tc.a, tc.h, err)
		}
		if d.Groups != d.A*d.H+1 {
			t.Fatalf("%s: %d groups, want %d", d.Name(), d.Groups, d.A*d.H+1)
		}
		if d.NumRouters != d.Groups*d.A || d.NumNodes != d.NumRouters*d.P {
			t.Fatalf("%s: inconsistent sizes", d.Name())
		}
		g := d.Graph()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		// Regular degree: a-1 local + h global network channels.
		wantDeg := d.A - 1 + d.H
		globalBetween := make(map[[2]int]int)
		for r := 0; r < d.NumRouters; r++ {
			deg := 0
			for _, out := range g.Routers[r].Out {
				if out.Kind != Network {
					continue
				}
				deg++
				g1, g2 := d.Group(RouterID(r)), d.Group(out.Peer)
				if g1 != g2 {
					globalBetween[[2]int{g1, g2}]++
				}
			}
			if deg != wantDeg {
				t.Fatalf("%s: router %d degree %d, want %d", d.Name(), r, deg, wantDeg)
			}
		}
		// Exactly one global channel in each direction per group pair.
		for a := 0; a < d.Groups; a++ {
			for b := 0; b < d.Groups; b++ {
				if a == b {
					continue
				}
				if globalBetween[[2]int{a, b}] != 1 {
					t.Fatalf("%s: %d global channels from group %d to %d, want 1",
						d.Name(), globalBetween[[2]int{a, b}], a, b)
				}
			}
		}
		// Graph diameter <= 3, and the hierarchical MinHops is an upper
		// bound on the true distance.
		for _, src := range []RouterID{0, RouterID(d.NumRouters - 1)} {
			dist := bfsDist(g, src)
			for b, dd := range dist {
				if dd < 0 || dd > 3 {
					t.Fatalf("%s: BFS distance %d (want 0..3)", d.Name(), dd)
				}
				if mh := d.MinHops(src, RouterID(b)); dd > mh {
					t.Fatalf("%s: BFS dist %d exceeds hierarchical MinHops %d", d.Name(), dd, mh)
				}
			}
		}
		if dm := d.Diameter(); dm > 3 {
			t.Fatalf("%s: Diameter() = %d", d.Name(), dm)
		}
	}
}

// TestDragonflyAvgHops cross-checks the orbit-based average against the
// brute-force all-pairs average.
func TestDragonflyAvgHops(t *testing.T) {
	d, err := NewDragonfly(0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for a := 0; a < d.NumRouters; a++ {
		for b := 0; b < d.NumRouters; b++ {
			total += d.MinHops(RouterID(a), RouterID(b))
		}
	}
	want := float64(total) / float64(d.NumRouters*d.NumRouters)
	if got := d.AvgUniformMinHops(); got != want {
		t.Fatalf("orbit average %.6f, brute force %.6f", got, want)
	}
}

// TestSlimFlyAvgHopsOrbits cross-checks the orbit-weighted average
// against all-pairs BFS.
func TestSlimFlyAvgHopsOrbits(t *testing.T) {
	s, err := NewSlimFly(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for r := 0; r < s.NumRouters; r++ {
		for _, d := range bfsDist(s.Graph(), RouterID(r)) {
			total += d
		}
	}
	want := float64(total) / float64(s.NumRouters*s.NumRouters)
	if got := s.AvgUniformMinHops(); got != want {
		t.Fatalf("orbit average %.6f, brute force %.6f", got, want)
	}
}

// TestModernParamErrors is the table-driven structured-error contract:
// invalid parameters produce a *ParamError naming the offending field.
func TestModernParamErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() error
		param string
	}{
		{"slimfly q=4 (non-residue class)", func() error { _, err := NewSlimFly(4, 1); return err }, "q"},
		{"slimfly q=6 (not a prime power)", func() error { _, err := NewSlimFly(6, 1); return err }, "q"},
		{"slimfly q=15 (not a prime power)", func() error { _, err := NewSlimFly(15, 1); return err }, "q"},
		{"slimfly q=21 (not a prime power)", func() error { _, err := NewSlimFly(21, 1); return err }, "q"},
		{"slimfly q=0", func() error { _, err := NewSlimFly(0, 1); return err }, "q"},
		{"slimfly q=-5", func() error { _, err := NewSlimFly(-5, 1); return err }, "q"},
		{"slimfly p=-1", func() error { _, err := NewSlimFly(5, -1); return err }, "p"},
		{"dragonfly h=0", func() error { _, err := NewDragonfly(1, 2, 0); return err }, "h"},
		{"dragonfly h=-2", func() error { _, err := NewDragonfly(1, 2, -2); return err }, "h"},
		{"dragonfly p=-1", func() error { _, err := NewDragonfly(-1, 2, 1); return err }, "p"},
		{"dragonfly a<h radix mismatch", func() error { _, err := NewDragonfly(1, 2, 3); return err }, "a"},
		{"dragonfly a=-1", func() error { _, err := NewDragonfly(1, -1, 1); return err }, "a"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build()
			if err == nil {
				t.Fatal("constructor accepted invalid parameters")
			}
			var pe *ParamError
			if !errors.As(err, &pe) {
				t.Fatalf("error is not a *ParamError: %v", err)
			}
			if pe.Param != tc.param {
				t.Fatalf("ParamError names %q, want %q (err: %v)", pe.Param, tc.param, err)
			}
		})
	}
}
