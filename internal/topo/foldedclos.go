package topo

import "fmt"

// FoldedClos is a two-level (three-stage) folded Clos / fat-tree: L leaf
// routers, each with Terminals terminal ports and Uplinks uplinks, and M
// middle routers. Every leaf spreads its uplinks evenly over the middles
// (Uplinks/M parallel links per leaf-middle pair), so every middle reaches
// every leaf and any middle can serve as the "closest common ancestor" for
// any pair of leaves.
//
// With Uplinks == Terminals the network is non-blocking; with
// Uplinks == Terminals/2 it is tapered 2:1, which is how the paper holds
// bisection bandwidth equal to the flattened butterfly in §3.3 (and why the
// folded Clos then saturates at 50% on uniform random traffic).
type FoldedClos struct {
	Terminals int // terminal ports per leaf
	Uplinks   int // uplinks per leaf
	Leaves    int
	Middles   int

	NumNodes   int
	NumRouters int // Leaves + Middles
	PairLinks  int // parallel links per (leaf, middle) pair = Uplinks / Middles

	g *Graph
}

// NewFoldedClos constructs a folded Clos. Uplinks must be divisible by
// middles so the uplink spread is uniform.
func NewFoldedClos(terminals, uplinks, leaves, middles int) (*FoldedClos, error) {
	if terminals < 1 || uplinks < 1 || leaves < 2 || middles < 1 {
		return nil, fmt.Errorf("topo: folded Clos parameters out of range (t=%d u=%d L=%d M=%d)",
			terminals, uplinks, leaves, middles)
	}
	if uplinks%middles != 0 {
		return nil, fmt.Errorf("topo: folded Clos uplinks (%d) must be divisible by middles (%d)", uplinks, middles)
	}
	f := &FoldedClos{
		Terminals:  terminals,
		Uplinks:    uplinks,
		Leaves:     leaves,
		Middles:    middles,
		NumNodes:   terminals * leaves,
		NumRouters: leaves + middles,
		PairLinks:  uplinks / middles,
	}
	f.build()
	return f, nil
}

func (f *FoldedClos) build() {
	g := NewGraph(f.Name(), f.NumNodes, f.NumRouters)
	// Leaves are routers [0, Leaves); middles are [Leaves, Leaves+Middles).
	leafPorts := f.Terminals + f.Uplinks
	midPorts := f.Leaves * f.PairLinks
	for l := 0; l < f.Leaves; l++ {
		g.Routers[l].In = make([]InPort, leafPorts)
		g.Routers[l].Out = make([]OutPort, leafPorts)
	}
	for m := 0; m < f.Middles; m++ {
		r := f.MiddleRouter(m)
		g.Routers[r].In = make([]InPort, midPorts)
		g.Routers[r].Out = make([]OutPort, midPorts)
	}
	for node := 0; node < f.NumNodes; node++ {
		g.AttachNode(NodeID(node), RouterID(node/f.Terminals), node%f.Terminals, node%f.Terminals, 1)
	}
	// Uplink j of leaf l goes to middle j/PairLinks; on the middle, the
	// ports for leaf l are [l*PairLinks, (l+1)*PairLinks).
	for l := 0; l < f.Leaves; l++ {
		for j := 0; j < f.Uplinks; j++ {
			m := j / f.PairLinks
			mp := l*f.PairLinks + j%f.PairLinks
			g.ConnectBidi(RouterID(l), f.Terminals+j, f.MiddleRouter(m), mp, 1)
		}
	}
	f.g = g
}

// Name returns e.g. "folded-Clos(t=32,u=16,L=32,M=8)".
func (f *FoldedClos) Name() string {
	return fmt.Sprintf("folded-Clos(t=%d,u=%d,L=%d,M=%d)", f.Terminals, f.Uplinks, f.Leaves, f.Middles)
}

// Graph returns the channel graph.
func (f *FoldedClos) Graph() *Graph { return f.g }

// MiddleRouter returns the router ID of middle m.
func (f *FoldedClos) MiddleRouter(m int) RouterID { return RouterID(f.Leaves + m) }

// IsLeaf reports whether r is a leaf router.
func (f *FoldedClos) IsLeaf(r RouterID) bool { return int(r) < f.Leaves }

// LeafOf returns the leaf router of a node.
func (f *FoldedClos) LeafOf(node NodeID) RouterID { return RouterID(int(node) / f.Terminals) }

// UplinkPort returns the port index on a leaf for uplink j.
func (f *FoldedClos) UplinkPort(j int) int { return f.Terminals + j }

// DownPorts returns the port range [lo, hi) on a middle router that leads
// to leaf l.
func (f *FoldedClos) DownPorts(l int) (lo, hi int) {
	return l * f.PairLinks, (l + 1) * f.PairLinks
}

// AvgUniformHops returns the expected inter-router hop count under
// uniform traffic with self-traffic included: a destination on the same
// leaf (probability Terminals/NumNodes) needs no network hop, anything
// else ascends to a middle and descends — exactly two hops.
func (f *FoldedClos) AvgUniformHops() float64 {
	return 2 * (1 - float64(f.Terminals)/float64(f.NumNodes))
}

// TaperedClosForNodes builds the folded Clos used in the paper's §3.3
// topology comparison: radix-"radix" routers, 2:1 taper so bisection
// matches a butterfly of equal node count. Leaves have radix/2 terminals
// and radix/4 uplinks.
func TaperedClosForNodes(nodes, radix int) (*FoldedClos, error) {
	t := radix / 2
	u := radix / 4
	if t < 1 || u < 1 || nodes%t != 0 {
		return nil, fmt.Errorf("topo: cannot build tapered Clos for %d nodes with radix %d", nodes, radix)
	}
	leaves := nodes / t
	// Middle count: total uplinks / radix middle ports, rounded to keep
	// uplinks divisible by middles.
	middles := leaves * u / radix
	if middles < 1 {
		middles = 1
	}
	for u%middles != 0 {
		middles--
	}
	return NewFoldedClos(t, u, leaves, middles)
}
