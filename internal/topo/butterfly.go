package topo

import "fmt"

// Butterfly is a conventional k-ary n-fly: n stages of k^(n-1) radix-k
// routers with unidirectional channels. Terminals inject at stage 0 and
// eject at stage n-1. There is exactly one path between every
// source/destination pair, so the topology has no path diversity (§2 of
// the paper).
//
// Router IDs are global: stage*k^(n-1) + position. At stage s a packet for
// destination d takes the output selected by digit n-1-s of d; the final
// stage's output sets digit 0 and ejects.
//
// A Dilation above 1 builds the dilated butterfly of Kruskal & Snir (the
// paper's §6 related work): every inter-stage channel is replicated
// Dilation times, adding path diversity at the price of Dilation-times
// the link cost and router pins — the trade-off the paper rejects in
// favor of flattening.
type Butterfly struct {
	K        int // ary (logical inputs/outputs per stage router)
	N        int // number of stages
	Dilation int // parallel channels per logical inter-stage channel

	NumNodes        int // k^n
	RoutersPerStage int // k^(n-1)
	NumRouters      int // n * k^(n-1)

	pow []int
	g   *Graph
}

// NewButterfly constructs a k-ary n-fly.
func NewButterfly(k, n int) (*Butterfly, error) {
	return NewDilatedButterfly(k, n, 1)
}

// NewDilatedButterfly constructs a k-ary n-fly whose inter-stage channels
// are replicated d times.
func NewDilatedButterfly(k, n, d int) (*Butterfly, error) {
	if k < 2 || n < 1 {
		return nil, fmt.Errorf("topo: butterfly needs k >= 2 and n >= 1, got k=%d n=%d", k, n)
	}
	if d < 1 {
		return nil, fmt.Errorf("topo: butterfly dilation must be >= 1, got %d", d)
	}
	b := &Butterfly{K: k, N: n, Dilation: d}
	b.pow = make([]int, n+1)
	b.pow[0] = 1
	for i := 1; i <= n; i++ {
		b.pow[i] = b.pow[i-1] * k
	}
	b.NumNodes = b.pow[n]
	b.RoutersPerStage = b.pow[n-1]
	b.NumRouters = n * b.RoutersPerStage
	b.build()
	return b, nil
}

func (b *Butterfly) build() {
	k, n, rps := b.K, b.N, b.RoutersPerStage
	// Port layout: logical channel o occupies ports [o*d, (o+1)*d).
	// Terminals use copy 0 of their logical port; at stage 0 the other
	// input copies are unused, likewise the other output copies at the
	// last stage.
	ports := k * b.Dilation
	g := NewGraph(b.Name(), b.NumNodes, b.NumRouters)
	for r := range g.Routers {
		g.Routers[r].In = make([]InPort, ports)
		g.Routers[r].Out = make([]OutPort, ports)
	}
	// Terminals: node a = a_{n-1}..a_0 injects at stage-0 router with
	// position a_{n-1}..a_1 via input a_0, and ejects from the stage-(n-1)
	// router at the same position via output a_0.
	for node := 0; node < b.NumNodes; node++ {
		pos := node / k
		t := node % k
		g.AttachNodeSplit(NodeID(node), b.RouterAt(0, pos), b.PortFor(t, 0), b.RouterAt(n-1, pos), b.PortFor(t, 0), 1)
	}
	// Inter-stage wiring: stage s output o of position pos connects to
	// stage s+1 position pos with digit n-2-s replaced by o, arriving on
	// the input port holding pos's original digit; each logical channel
	// is replicated Dilation times.
	for s := 0; s < n-1; s++ {
		digit := n - 2 - s
		for pos := 0; pos < rps; pos++ {
			own := (pos / b.pow[digit]) % k
			for o := 0; o < k; o++ {
				dst := pos + (o-own)*b.pow[digit]
				for c := 0; c < b.Dilation; c++ {
					g.Connect(b.RouterAt(s, pos), b.PortFor(o, c), b.RouterAt(s+1, dst), b.PortFor(own, c), 1)
				}
			}
		}
	}
	b.g = g
}

// Name returns e.g. "32-ary 2-fly" or "8-ary 2-fly x2" when dilated.
func (b *Butterfly) Name() string {
	if b.Dilation > 1 {
		return fmt.Sprintf("%d-ary %d-fly x%d", b.K, b.N, b.Dilation)
	}
	return fmt.Sprintf("%d-ary %d-fly", b.K, b.N)
}

// PortFor returns the port index of copy c of logical channel o.
func (b *Butterfly) PortFor(o, c int) int { return o*b.Dilation + c }

// Graph returns the channel graph. Note that for the butterfly, a node's
// NodeRouter entry is its injection (stage 0) router; ejection happens at a
// stage n-1 router.
func (b *Butterfly) Graph() *Graph { return b.g }

// RouterAt returns the router ID at the given stage and position.
func (b *Butterfly) RouterAt(stage, pos int) RouterID {
	return RouterID(stage*b.RoutersPerStage + pos)
}

// StageOf returns the stage and position of a router.
func (b *Butterfly) StageOf(r RouterID) (stage, pos int) {
	return int(r) / b.RoutersPerStage, int(r) % b.RoutersPerStage
}

// OutputFor returns the output port a packet destined for node d must take
// at the given stage: digit n-1-stage of d (the terminal digit at the last
// stage).
func (b *Butterfly) OutputFor(stage int, d NodeID) int {
	return (int(d) / b.pow[b.N-1-stage]) % b.K
}

// AvgHops returns the inter-router hop count of any packet: every route
// traverses all n-1 inter-stage channels regardless of source and
// destination, which is what denies the butterfly path diversity.
func (b *Butterfly) AvgHops() float64 { return float64(b.N - 1) }

// EjectRouter returns the last-stage router from which node d ejects.
func (b *Butterfly) EjectRouter(d NodeID) RouterID {
	return b.RouterAt(b.N-1, int(d)/b.K)
}
