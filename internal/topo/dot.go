package topo

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT emits the router-level graph in Graphviz DOT format: one node
// per router and one undirected edge per bidirectional link (a pair of
// opposing channels); one-way channels (butterfly stages) render as
// directed edges. Terminals are summarized in each router's label rather
// than drawn, which keeps large networks readable.
func WriteDOT(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "// %s: %d nodes, %d routers, %d channels\n", g.Label, g.NumNodes, len(g.Routers), g.CountChannels())
	fmt.Fprintln(bw, "graph network {")
	fmt.Fprintln(bw, "  node [shape=circle];")
	terms := make([]int, len(g.Routers))
	for r := range g.Routers {
		for _, in := range g.Routers[r].In {
			if in.Kind == Terminal {
				terms[r]++
			}
		}
	}
	for r := range g.Routers {
		label := fmt.Sprintf("R%d", r)
		if terms[r] > 0 {
			label = fmt.Sprintf("R%d\\n%dT", r, terms[r])
		}
		fmt.Fprintf(bw, "  r%d [label=\"%s\"];\n", r, label)
	}
	for r := range g.Routers {
		for p, out := range g.Routers[r].Out {
			if out.Kind != Network {
				continue
			}
			// A link is bidirectional when the peer's same-numbered
			// output port comes back; draw it once, from the lower id.
			back := g.Routers[out.Peer].Out
			bidi := out.PeerPort < len(back) &&
				back[out.PeerPort].Kind == Network &&
				back[out.PeerPort].Peer == RouterID(r) &&
				back[out.PeerPort].PeerPort == p
			switch {
			case bidi && int(out.Peer) > r:
				fmt.Fprintf(bw, "  r%d -- r%d;\n", r, out.Peer)
			case bidi:
				// Drawn from the other side.
			default:
				fmt.Fprintf(bw, "  r%d -- r%d [dir=forward];\n", r, out.Peer)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
