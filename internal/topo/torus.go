package topo

import "fmt"

// Torus is a k-ary n-cube: the low-radix direct network (Cray T3E, XT3
// class) that the paper's introduction argues cannot exploit modern
// high-pin-bandwidth routers. Each router hosts one terminal and has two
// ports per dimension (plus and minus neighbors on the dimension's ring).
// It serves as the low-radix baseline when demonstrating why high-radix
// topologies like the flattened butterfly win at fixed router bandwidth.
type Torus struct {
	K int // ring size per dimension
	N int // dimensions

	NumNodes   int // k^n, one node per router
	NumRouters int

	pow []int
	g   *Graph
}

// NewTorus constructs a k-ary n-cube. k >= 2 and n >= 1 are required; a
// k of 2 degenerates each ring to a single bidirectional link pair.
func NewTorus(k, n int) (*Torus, error) {
	if k < 2 || n < 1 {
		return nil, fmt.Errorf("topo: torus needs k >= 2 and n >= 1, got k=%d n=%d", k, n)
	}
	t := &Torus{K: k, N: n}
	t.pow = make([]int, n+1)
	t.pow[0] = 1
	for i := 1; i <= n; i++ {
		t.pow[i] = t.pow[i-1] * k
	}
	t.NumNodes = t.pow[n]
	t.NumRouters = t.pow[n]
	t.build()
	return t, nil
}

func (t *Torus) build() {
	// Port layout: port 0 = terminal; ports 1+2d and 2+2d are the plus
	// and minus neighbors in dimension d.
	ports := 1 + 2*t.N
	g := NewGraph(t.Name(), t.NumNodes, t.NumRouters)
	for r := range g.Routers {
		g.Routers[r].In = make([]InPort, ports)
		g.Routers[r].Out = make([]OutPort, ports)
	}
	for node := 0; node < t.NumNodes; node++ {
		g.AttachNode(NodeID(node), RouterID(node), 0, 0, 1)
	}
	for r := 0; r < t.NumRouters; r++ {
		for d := 0; d < t.N; d++ {
			plus := t.Neighbor(RouterID(r), d, +1)
			// The plus channel of r pairs with the minus channel of the
			// neighbor; connect each direction once.
			g.Connect(RouterID(r), t.PortPlus(d), plus, t.PortMinus(d), 1)
			g.Connect(plus, t.PortMinus(d), RouterID(r), t.PortPlus(d), 1)
		}
	}
	t.g = g
}

// Name returns e.g. "8-ary 3-cube".
func (t *Torus) Name() string { return fmt.Sprintf("%d-ary %d-cube", t.K, t.N) }

// Graph returns the channel graph.
func (t *Torus) Graph() *Graph { return t.g }

// Digit returns the dimension-d coordinate of a router.
func (t *Torus) Digit(r RouterID, d int) int { return (int(r) / t.pow[d]) % t.K }

// Neighbor returns the router one step along dimension d in the given
// direction (+1 or -1), wrapping around the ring.
func (t *Torus) Neighbor(r RouterID, d, dir int) RouterID {
	c := t.Digit(r, d)
	nc := ((c+dir)%t.K + t.K) % t.K
	return RouterID(int(r) + (nc-c)*t.pow[d])
}

// PortPlus returns the output/input port toward the plus neighbor of
// dimension d.
func (t *Torus) PortPlus(d int) int { return 1 + 2*d }

// PortMinus returns the port toward the minus neighbor of dimension d.
func (t *Torus) PortMinus(d int) int { return 2 + 2*d }

// RingDistance returns the minimal hops and direction (+1/-1) from
// coordinate a to b around a ring of size k; ties prefer +1.
func (t *Torus) RingDistance(a, b int) (hops, dir int) {
	fwd := ((b-a)%t.K + t.K) % t.K
	bwd := t.K - fwd
	if fwd == 0 {
		return 0, +1
	}
	if fwd <= bwd {
		return fwd, +1
	}
	return bwd, -1
}

// MinHops returns the minimal router-to-router hop count.
func (t *Torus) MinHops(a, b RouterID) int {
	h := 0
	for d := 0; d < t.N; d++ {
		dh, _ := t.RingDistance(t.Digit(a, d), t.Digit(b, d))
		h += dh
	}
	return h
}
