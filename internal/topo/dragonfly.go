package topo

import "fmt"

// Dragonfly is the Kim-Dally-Scott-Abts hierarchical topology: G groups
// of A routers each, every group a complete local graph, every router
// owning H global channels, and exactly one global channel between every
// pair of groups when G = A·H + 1 (the canonical balanced size, with
// A = 2H and P = H terminals per router). Minimal routes are hierarchical
// — local, global, local — giving diameter 3.
//
// Global wiring: channel ℓ ∈ [0, A·H) of group g connects to group
// (g+ℓ+1) mod G, arriving there as channel G-2-ℓ; router (g, pos) owns
// channels [pos·H, (pos+1)·H). The wiring depends only on the offset
// ℓ, so the rotation g → g+1 (fixing pos) is a graph automorphism.
type Dragonfly struct {
	P int // terminals per router
	A int // routers per group
	H int // global channels per router

	Groups     int // A·H + 1
	NumRouters int
	NumNodes   int

	g *Graph
}

// NewDragonfly constructs the canonical maximum-size dragonfly for the
// given parameters; a = 0 selects the balanced a = 2h and p = 0 the
// balanced p = h.
func NewDragonfly(p, a, h int) (*Dragonfly, error) {
	if h < 1 {
		return nil, paramErr("dragonfly", "h", h, "need at least one global channel per router")
	}
	if a == 0 {
		a = 2 * h
	}
	if p == 0 {
		p = h
	}
	if a < 1 {
		return nil, paramErr("dragonfly", "a", a, "need at least one router per group")
	}
	if p < 1 {
		return nil, paramErr("dragonfly", "p", p, "need at least one terminal per router")
	}
	if a < h {
		return nil, paramErr("dragonfly", "a", a,
			fmt.Sprintf("fewer routers than the h=%d global channels balance across (radix mismatch: need a >= h)", h))
	}
	d := &Dragonfly{
		P:          p,
		A:          a,
		H:          h,
		Groups:     a*h + 1,
		NumRouters: (a*h + 1) * a,
		NumNodes:   (a*h + 1) * a * p,
	}
	if d.NumNodes > 1<<22 {
		return nil, paramErr("dragonfly", "h", h, fmt.Sprintf("network of %d terminals exceeds the 4M construction cap", d.NumNodes))
	}
	d.build()
	return d, nil
}

// Router returns the router index of (group, pos).
func (d *Dragonfly) Router(group, pos int) RouterID { return RouterID(group*d.A + pos) }

// Group returns router r's group.
func (d *Dragonfly) Group(r RouterID) int { return int(r) / d.A }

// Pos returns router r's position within its group.
func (d *Dragonfly) Pos(r RouterID) int { return int(r) % d.A }

// GlobalChannel returns, for distinct groups g1 and g2, the group-g1
// channel index ℓ reaching g2, the position of the router owning it, and
// the owning router's local channel slot ℓ mod H.
func (d *Dragonfly) GlobalChannel(g1, g2 int) (l, ownerPos, slot int) {
	l = ((g2-g1-1)%d.Groups + d.Groups) % d.Groups
	return l, l / d.H, l % d.H
}

// LocalPort returns the port on router position pos reaching position
// peer in the same group (pos != peer).
func (d *Dragonfly) LocalPort(pos, peer int) int {
	p := d.P + peer
	if peer > pos {
		p--
	}
	return p
}

// GlobalPort returns the port for the router's own global channel slot.
func (d *Dragonfly) GlobalPort(slot int) int { return d.P + d.A - 1 + slot }

// build wires the channel graph: ports [0,P) terminals, [P, P+A-1)
// local, [P+A-1, P+A-1+H) global.
func (d *Dragonfly) build() {
	ports := d.P + d.A - 1 + d.H
	g := NewGraph(d.Name(), d.NumNodes, d.NumRouters)
	for i := range g.Routers {
		g.Routers[i].In = make([]InPort, ports)
		g.Routers[i].Out = make([]OutPort, ports)
	}
	for node := 0; node < d.NumNodes; node++ {
		g.AttachNode(NodeID(node), RouterID(node/d.P), node%d.P, node%d.P, 1)
	}
	for grp := 0; grp < d.Groups; grp++ {
		// Complete local graph.
		for a := 0; a < d.A; a++ {
			for b := a + 1; b < d.A; b++ {
				g.ConnectBidi(d.Router(grp, a), d.LocalPort(a, b), d.Router(grp, b), d.LocalPort(b, a), 1)
			}
		}
		// Global channels: connect each pair of groups once, from the
		// lower-offset side.
		for l := 0; l < d.A*d.H; l++ {
			peer := (grp + l + 1) % d.Groups
			lBack := d.Groups - 2 - l
			if grp < peer {
				g.ConnectBidi(d.Router(grp, l/d.H), d.GlobalPort(l%d.H),
					d.Router(peer, lBack/d.H), d.GlobalPort(lBack%d.H), 1)
			}
		}
	}
	if err := g.Validate(); err != nil {
		// The wiring above is total and closed-form; a violation is a
		// programming error, not a parameter error.
		panic(err)
	}
	d.g = g
}

// Name returns e.g. "DF(p=2,a=4,h=2)".
func (d *Dragonfly) Name() string { return fmt.Sprintf("DF(p=%d,a=%d,h=%d)", d.P, d.A, d.H) }

// Graph returns the channel graph.
func (d *Dragonfly) Graph() *Graph { return d.g }

// MinHops returns the hop count of the canonical hierarchical minimal
// route (local, global, local — the path dragonfly minimal routing
// takes), which is what the routing algorithms and the zero-load oracle
// use. Occasional two-global shortcuts in the underlying graph are not
// taken by hierarchical routing and are intentionally not counted here;
// internal/analysis reports true graph distances.
func (d *Dragonfly) MinHops(a, b RouterID) int {
	if a == b {
		return 0
	}
	g1, g2 := d.Group(a), d.Group(b)
	if g1 == g2 {
		return 1
	}
	_, o1, _ := d.GlobalChannel(g1, g2)
	_, o2, _ := d.GlobalChannel(g2, g1)
	h := 1
	if d.Pos(a) != o1 {
		h++
	}
	if d.Pos(b) != o2 {
		h++
	}
	return h
}

// AvgUniformMinHops returns the exact router-pair average hierarchical
// minimal hop count with self pairs included, computed from one source
// position per rotation orbit.
func (d *Dragonfly) AvgUniformMinHops() float64 {
	reps, sizes := d.RouterOrbits()
	total := 0
	for i, rep := range reps {
		for b := 0; b < d.NumRouters; b++ {
			total += d.MinHops(rep, RouterID(b)) * sizes[i]
		}
	}
	return float64(total) / float64(d.NumRouters*d.NumRouters)
}

// Diameter returns the hierarchical routing diameter: 3 when any router
// pair needs local-global-local, less for degenerate sizes.
func (d *Dragonfly) Diameter() int {
	max := 0
	reps, _ := d.RouterOrbits()
	for _, rep := range reps {
		for b := 0; b < d.NumRouters; b++ {
			if h := d.MinHops(rep, RouterID(b)); h > max {
				max = h
			}
		}
	}
	return max
}

// RouterOrbits returns one representative per orbit of the group
// rotation g → g+1: the A routers of group 0, each an orbit of size
// Groups.
func (d *Dragonfly) RouterOrbits() ([]RouterID, []int) {
	reps := make([]RouterID, d.A)
	sizes := make([]int, d.A)
	for pos := 0; pos < d.A; pos++ {
		reps[pos] = d.Router(0, pos)
		sizes[pos] = d.Groups
	}
	return reps, sizes
}
