// Package topo defines the directed channel-graph representation consumed
// by the simulator, plus the comparison topologies evaluated against the
// flattened butterfly in the paper: the conventional butterfly (k-ary
// n-fly), the folded Clos, the binary hypercube, and the generalized
// hypercube. The flattened butterfly itself — the paper's contribution —
// lives in internal/core.
package topo

import "fmt"

// NodeID identifies a terminal (processing node) in [0, NumNodes).
type NodeID int

// RouterID identifies a router in [0, NumRouters).
type RouterID int

// PortKind classifies one side of a router port.
type PortKind uint8

const (
	// Unused marks a port position that exists for addressing convenience
	// but has no channel attached (e.g. the "self" slot in a flattened
	// butterfly dimension group).
	Unused PortKind = iota
	// Terminal ports connect a router to a processing node: injection on
	// the input side, ejection on the output side.
	Terminal
	// Network ports connect two routers.
	Network
)

func (k PortKind) String() string {
	switch k {
	case Unused:
		return "unused"
	case Terminal:
		return "terminal"
	case Network:
		return "network"
	default:
		return fmt.Sprintf("PortKind(%d)", uint8(k))
	}
}

// OutPort describes the output side of a router port: where a flit sent on
// this port arrives.
type OutPort struct {
	Kind     PortKind
	Node     NodeID   // destination node when Kind == Terminal
	Peer     RouterID // downstream router when Kind == Network
	PeerPort int      // input port index on Peer when Kind == Network
	Latency  int      // channel traversal time in cycles (>= 1)
}

// InPort describes the input side of a router port: where flits arriving on
// this port come from.
type InPort struct {
	Kind     PortKind
	Node     NodeID   // source node when Kind == Terminal
	Peer     RouterID // upstream router when Kind == Network
	PeerPort int      // output port index on Peer when Kind == Network
}

// Router holds the port tables for one router. In and Out may have
// different lengths for asymmetric routers (e.g. butterfly stages).
type Router struct {
	In  []InPort
	Out []OutPort
}

// Graph is the directed channel graph of a network: every unidirectional
// channel in the topology, plus the terminal attachment of every node.
// A bidirectional link is represented by two opposing channels.
type Graph struct {
	Label      string
	NumNodes   int
	Routers    []Router
	NodeRouter []RouterID // NodeRouter[n] = router node n injects at
	EjRouter   []RouterID // EjRouter[n] = router node n ejects from (== NodeRouter except in unidirectional multistage networks)
	InjPort    []int      // InjPort[n] = input port index of node n on NodeRouter[n]
	EjPort     []int      // EjPort[n] = output port index of node n on EjRouter[n]
}

// NewGraph allocates an empty graph with the given node and router counts.
// Callers fill in the port tables and should finish with Validate.
func NewGraph(label string, nodes, routers int) *Graph {
	return &Graph{
		Label:      label,
		NumNodes:   nodes,
		Routers:    make([]Router, routers),
		NodeRouter: make([]RouterID, nodes),
		EjRouter:   make([]RouterID, nodes),
		InjPort:    make([]int, nodes),
		EjPort:     make([]int, nodes),
	}
}

// NumRouters returns the number of routers in the graph.
func (g *Graph) NumRouters() int { return len(g.Routers) }

// AttachNode wires node n to router r using input port inPort (injection)
// and output port outPort (ejection). The port slots must already exist.
func (g *Graph) AttachNode(n NodeID, r RouterID, inPort, outPort, latency int) {
	g.NodeRouter[n] = r
	g.EjRouter[n] = r
	g.InjPort[n] = inPort
	g.EjPort[n] = outPort
	g.Routers[r].In[inPort] = InPort{Kind: Terminal, Node: n}
	g.Routers[r].Out[outPort] = OutPort{Kind: Terminal, Node: n, Latency: latency}
}

// AttachNodeSplit wires node n with distinct injection and ejection
// routers, as in unidirectional multistage networks (butterflies).
func (g *Graph) AttachNodeSplit(n NodeID, injR RouterID, inPort int, ejR RouterID, outPort, latency int) {
	g.NodeRouter[n] = injR
	g.EjRouter[n] = ejR
	g.InjPort[n] = inPort
	g.EjPort[n] = outPort
	g.Routers[injR].In[inPort] = InPort{Kind: Terminal, Node: n}
	g.Routers[ejR].Out[outPort] = OutPort{Kind: Terminal, Node: n, Latency: latency}
}

// Connect adds a unidirectional channel from (fromRouter, fromOutPort) to
// (toRouter, toInPort) with the given latency in cycles.
func (g *Graph) Connect(from RouterID, fromOut int, to RouterID, toIn int, latency int) {
	g.Routers[from].Out[fromOut] = OutPort{Kind: Network, Peer: to, PeerPort: toIn, Latency: latency}
	g.Routers[to].In[toIn] = InPort{Kind: Network, Peer: from, PeerPort: fromOut}
}

// ConnectBidi adds the two opposing channels of a bidirectional link using
// the same port index on both routers' input and output sides.
func (g *Graph) ConnectBidi(a RouterID, aPort int, b RouterID, bPort int, latency int) {
	g.Connect(a, aPort, b, bPort, latency)
	g.Connect(b, bPort, a, aPort, latency)
}

// Validate checks structural invariants: every network channel is
// consistent end to end, every node is attached exactly once, and channel
// latencies are positive. It returns the first violation found.
func (g *Graph) Validate() error {
	if g.NumNodes != len(g.NodeRouter) || g.NumNodes != len(g.InjPort) || g.NumNodes != len(g.EjPort) {
		return fmt.Errorf("topo: %s: node table sizes inconsistent", g.Label)
	}
	for r := range g.Routers {
		for p, out := range g.Routers[r].Out {
			switch out.Kind {
			case Network:
				if out.Latency < 1 {
					return fmt.Errorf("topo: %s: router %d out port %d latency %d < 1", g.Label, r, p, out.Latency)
				}
				if int(out.Peer) < 0 || int(out.Peer) >= len(g.Routers) {
					return fmt.Errorf("topo: %s: router %d out port %d peer %d out of range", g.Label, r, p, out.Peer)
				}
				peerIn := g.Routers[out.Peer].In
				if out.PeerPort < 0 || out.PeerPort >= len(peerIn) {
					return fmt.Errorf("topo: %s: router %d out port %d peer port %d out of range", g.Label, r, p, out.PeerPort)
				}
				back := peerIn[out.PeerPort]
				if back.Kind != Network || back.Peer != RouterID(r) || back.PeerPort != p {
					return fmt.Errorf("topo: %s: channel %d.%d -> %d.%d not mirrored on input side",
						g.Label, r, p, out.Peer, out.PeerPort)
				}
			case Terminal:
				if out.Latency < 1 {
					return fmt.Errorf("topo: %s: router %d ejection port %d latency %d < 1", g.Label, r, p, out.Latency)
				}
				if int(out.Node) < 0 || int(out.Node) >= g.NumNodes {
					return fmt.Errorf("topo: %s: router %d ejection port %d node %d out of range", g.Label, r, p, out.Node)
				}
				if g.EjRouter[out.Node] != RouterID(r) || g.EjPort[out.Node] != p {
					return fmt.Errorf("topo: %s: ejection port %d.%d does not match node %d tables", g.Label, r, p, out.Node)
				}
			}
		}
		for p, in := range g.Routers[r].In {
			switch in.Kind {
			case Network:
				if int(in.Peer) < 0 || int(in.Peer) >= len(g.Routers) {
					return fmt.Errorf("topo: %s: router %d in port %d peer out of range", g.Label, r, p)
				}
				peerOut := g.Routers[in.Peer].Out
				if in.PeerPort < 0 || in.PeerPort >= len(peerOut) {
					return fmt.Errorf("topo: %s: router %d in port %d peer port out of range", g.Label, r, p)
				}
				fwd := peerOut[in.PeerPort]
				if fwd.Kind != Network || fwd.Peer != RouterID(r) || fwd.PeerPort != p {
					return fmt.Errorf("topo: %s: channel into %d.%d not mirrored on output side", g.Label, r, p)
				}
			case Terminal:
				if int(in.Node) < 0 || int(in.Node) >= g.NumNodes {
					return fmt.Errorf("topo: %s: router %d injection port %d node out of range", g.Label, r, p)
				}
				if g.NodeRouter[in.Node] != RouterID(r) || g.InjPort[in.Node] != p {
					return fmt.Errorf("topo: %s: injection port %d.%d does not match node %d tables", g.Label, r, p, in.Node)
				}
			}
		}
	}
	for n := 0; n < g.NumNodes; n++ {
		r, er := g.NodeRouter[n], g.EjRouter[n]
		if int(r) < 0 || int(r) >= len(g.Routers) || int(er) < 0 || int(er) >= len(g.Routers) {
			return fmt.Errorf("topo: %s: node %d routers %d/%d out of range", g.Label, n, r, er)
		}
		ip, ep := g.InjPort[n], g.EjPort[n]
		in := g.Routers[r].In
		if ip < 0 || ip >= len(in) || in[ip].Kind != Terminal || in[ip].Node != NodeID(n) {
			return fmt.Errorf("topo: %s: node %d injection port %d invalid", g.Label, n, ip)
		}
		out := g.Routers[er].Out
		if ep < 0 || ep >= len(out) || out[ep].Kind != Terminal || out[ep].Node != NodeID(n) {
			return fmt.Errorf("topo: %s: node %d ejection port %d invalid", g.Label, n, ep)
		}
	}
	return nil
}

// CountChannels returns the number of unidirectional network channels.
func (g *Graph) CountChannels() int {
	c := 0
	for r := range g.Routers {
		for _, out := range g.Routers[r].Out {
			if out.Kind == Network {
				c++
			}
		}
	}
	return c
}

// Degree returns the number of non-Unused output ports of router r.
func (g *Graph) Degree(r RouterID) int {
	d := 0
	for _, out := range g.Routers[r].Out {
		if out.Kind != Unused {
			d++
		}
	}
	return d
}

// Topology is implemented by every concrete network topology. The Graph
// carries the channel structure; routing algorithms additionally use the
// concrete type for coordinate arithmetic.
type Topology interface {
	// Graph returns the channel graph. The returned graph is shared, not
	// copied; callers must not mutate it.
	Graph() *Graph
	// Name returns a short human-readable identifier, e.g. "32-ary 2-flat".
	Name() string
}
