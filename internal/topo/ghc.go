package topo

import "fmt"

// GHC is a generalized hypercube (Bhuyan & Agrawal): a mixed-radix
// (m_1, m_2, ..., m_r) network with one terminal per router, where the
// routers in each dimension form a complete graph. The paper compares the
// flattened butterfly against an (8,8,16) GHC in §2.3: the flattened
// butterfly improves on the GHC by adding k-way concentration and
// non-minimal global adaptive routing.
type GHC struct {
	Radices []int // m_d per dimension

	NumNodes   int // product of radices; one node per router
	NumRouters int
	Degree     int // network ports used: sum of (m_d - 1)

	pos []int // pos[d] = product of radices[0..d)
	g   *Graph
}

// NewGHC constructs a generalized hypercube with the given per-dimension
// radices.
func NewGHC(radices []int) (*GHC, error) {
	if len(radices) == 0 {
		return nil, fmt.Errorf("topo: GHC needs at least one dimension")
	}
	n := 1
	deg := 0
	for d, m := range radices {
		if m < 2 {
			return nil, fmt.Errorf("topo: GHC dimension %d radix %d < 2", d, m)
		}
		n *= m
		deg += m - 1
	}
	h := &GHC{
		Radices:    append([]int(nil), radices...),
		NumNodes:   n,
		NumRouters: n,
		Degree:     deg,
	}
	h.pos = make([]int, len(radices)+1)
	h.pos[0] = 1
	for d, m := range radices {
		h.pos[d+1] = h.pos[d] * m
	}
	h.build()
	return h, nil
}

func (h *GHC) build() {
	// Port layout: port 0 = terminal; then for dimension d, m_d slots
	// indexed by target digit (self slot Unused).
	ports := 1
	base := make([]int, len(h.Radices))
	for d, m := range h.Radices {
		base[d] = ports
		ports += m
	}
	g := NewGraph(h.Name(), h.NumNodes, h.NumRouters)
	for r := range g.Routers {
		g.Routers[r].In = make([]InPort, ports)
		g.Routers[r].Out = make([]OutPort, ports)
	}
	for node := 0; node < h.NumNodes; node++ {
		g.AttachNode(NodeID(node), RouterID(node), 0, 0, 1)
	}
	for r := 0; r < h.NumRouters; r++ {
		for d, m := range h.Radices {
			own := h.Digit(RouterID(r), d)
			for v := 0; v < m; v++ {
				if v == own {
					continue
				}
				j := r + (v-own)*h.pos[d]
				if r < j {
					g.ConnectBidi(RouterID(r), base[d]+v, RouterID(j), base[d]+own, 1)
				}
			}
		}
	}
	h.g = g
}

// Name returns e.g. "GHC(8,8,16)".
func (h *GHC) Name() string {
	s := "GHC("
	for i, m := range h.Radices {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(m)
	}
	return s + ")"
}

// Graph returns the channel graph.
func (h *GHC) Graph() *Graph { return h.g }

// Digit returns the dimension-d digit of router r.
func (h *GHC) Digit(r RouterID, d int) int {
	return (int(r) / h.pos[d]) % h.Radices[d]
}

// PortFor returns the port on a router that reaches digit value v in
// dimension d (callers must not ask for the router's own digit).
func (h *GHC) PortFor(d, v int) int {
	p := 1
	for x := 0; x < d; x++ {
		p += h.Radices[x]
	}
	return p + v
}

// MinHops returns the number of differing digits between two routers.
func (h *GHC) MinHops(a, b RouterID) int {
	c := 0
	for d := range h.Radices {
		if h.Digit(a, d) != h.Digit(b, d) {
			c++
		}
	}
	return c
}
