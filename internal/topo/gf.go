package topo

// gf is a small finite field GF(p^m), built by table construction: field
// elements are 0..q-1, encoded as base-p digit vectors of polynomial
// coefficients, with multiplication reduced by a brute-force-found monic
// irreducible polynomial of degree m. Slim Fly instances use q up to a
// few hundred, so full exp/log tables are cheap and make the MMS
// generator-set construction direct.
type gf struct {
	p, m, q int
	// exp[i] = xi^i for a primitive element xi; length 2(q-1) so products
	// of logs never need a modulo.
	exp []int
	// log[e] is the discrete log of e in [1, q); log[0] is unused.
	log []int
}

// isPrime reports whether n is prime (trial division; n is small).
func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// primePower factors q as p^m with p prime, or reports failure.
func primePower(q int) (p, m int, ok bool) {
	if q < 2 {
		return 0, 0, false
	}
	for p = 2; p*p <= q; p++ {
		if q%p != 0 {
			continue
		}
		m = 0
		for n := q; n > 1; n /= p {
			if n%p != 0 {
				return 0, 0, false
			}
			m++
		}
		return p, m, true
	}
	return q, 1, true // q itself is prime
}

// newGF constructs GF(q), or reports false when q is not a prime power.
func newGF(q int) (*gf, bool) {
	p, m, ok := primePower(q)
	if !ok {
		return nil, false
	}
	f := &gf{p: p, m: m, q: q}
	irr := f.findIrreducible()
	// Build the full multiplication structure from a primitive element.
	mul := func(a, b int) int { return f.polyMulMod(a, b, irr) }
	for g := 1; g < q; g++ {
		if f.order(g, mul) == q-1 {
			f.buildTables(g, mul)
			return f, true
		}
	}
	return nil, false // unreachable: every finite field has a generator
}

// add returns a+b in the field: digit-wise addition mod p.
func (f *gf) add(a, b int) int {
	if f.m == 1 {
		return (a + b) % f.p
	}
	r, shift := 0, 1
	for i := 0; i < f.m; i++ {
		r += ((a%f.p + b%f.p) % f.p) * shift
		a /= f.p
		b /= f.p
		shift *= f.p
	}
	return r
}

// neg returns -a in the field.
func (f *gf) neg(a int) int {
	if f.m == 1 {
		return (f.p - a) % f.p
	}
	r, shift := 0, 1
	for i := 0; i < f.m; i++ {
		r += ((f.p - a%f.p) % f.p) * shift
		a /= f.p
		shift *= f.p
	}
	return r
}

// sub returns a-b in the field.
func (f *gf) sub(a, b int) int { return f.add(a, f.neg(b)) }

// mul returns a*b via the exp/log tables.
func (f *gf) mul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// xi returns the primitive element's i-th power.
func (f *gf) xi(i int) int { return f.exp[i%(f.q-1)] }

// polyMulMod multiplies the coefficient-encoded polynomials a and b and
// reduces by the monic irreducible irr (encoded with its degree-m leading
// coefficient dropped: irr holds the low m coefficients).
func (f *gf) polyMulMod(a, b, irr int) int {
	if f.m == 1 {
		return (a * b) % f.p
	}
	// Expand to coefficient slices.
	ac := f.coeffs(a)
	bc := f.coeffs(b)
	prod := make([]int, 2*f.m-1)
	for i, av := range ac {
		if av == 0 {
			continue
		}
		for j, bv := range bc {
			prod[i+j] = (prod[i+j] + av*bv) % f.p
		}
	}
	ic := f.coeffs(irr)
	// Reduce: x^m == -irr (mod the monic polynomial x^m + irr).
	for d := 2*f.m - 2; d >= f.m; d-- {
		c := prod[d]
		if c == 0 {
			continue
		}
		prod[d] = 0
		for j, iv := range ic {
			prod[d-f.m+j] = (prod[d-f.m+j] + c*(f.p-iv)) % f.p
		}
	}
	r, shift := 0, 1
	for i := 0; i < f.m; i++ {
		r += prod[i] * shift
		shift *= f.p
	}
	return r
}

// coeffs decodes an element into its m base-p digits.
func (f *gf) coeffs(a int) []int {
	c := make([]int, f.m)
	for i := 0; i < f.m; i++ {
		c[i] = a % f.p
		a /= f.p
	}
	return c
}

// findIrreducible brute-force searches for a monic irreducible polynomial
// x^m + (low coefficients) over F_p, returning the low-coefficient
// encoding. Irreducibility is tested by checking the polynomial has no
// root-free factorization witness: for the small m used here, trial
// multiplication of every pair of lower-degree monic polynomials.
func (f *gf) findIrreducible() int {
	if f.m == 1 {
		return 0
	}
	qm := 1
	for i := 0; i < f.m; i++ {
		qm *= f.p
	}
	for low := 1; low < qm; low++ {
		if f.irreducible(low, qm) {
			return low
		}
	}
	panic("topo: no irreducible polynomial found") // unreachable for prime p
}

// irreducible reports whether x^m + low is irreducible over F_p, by
// testing divisibility by every monic polynomial of degree 1..m/2.
func (f *gf) irreducible(low, qm int) bool {
	full := append(f.coeffs(low), 1) // degree m, monic
	for d := 1; 2*d <= f.m; d++ {
		divSize := 1
		for i := 0; i < d; i++ {
			divSize *= f.p
		}
		for dl := 0; dl < divSize; dl++ {
			div := make([]int, d+1)
			v := dl
			for i := 0; i < d; i++ {
				div[i] = v % f.p
				v /= f.p
			}
			div[d] = 1 // monic
			if f.polyDivides(div, full) {
				return false
			}
		}
	}
	return true
}

// polyDivides reports whether div divides full over F_p (both monic).
func (f *gf) polyDivides(div, full []int) bool {
	rem := append([]int(nil), full...)
	for len(rem) >= len(div) {
		lead := rem[len(rem)-1]
		if lead != 0 {
			off := len(rem) - len(div)
			for i, dv := range div {
				rem[off+i] = ((rem[off+i]-lead*dv)%f.p + f.p*f.p) % f.p
			}
		}
		rem = rem[:len(rem)-1]
	}
	for _, c := range rem {
		if c != 0 {
			return false
		}
	}
	return true
}

// order returns the multiplicative order of g under mul.
func (f *gf) order(g int, mul func(a, b int) int) int {
	v, n := g, 1
	for v != 1 {
		v = mul(v, g)
		n++
		if n > f.q {
			return 0 // g is not invertible (cannot happen for g != 0)
		}
	}
	return n
}

// buildTables fills exp/log from the primitive element g.
func (f *gf) buildTables(g int, mul func(a, b int) int) {
	f.exp = make([]int, 2*(f.q-1))
	f.log = make([]int, f.q)
	v := 1
	for i := 0; i < f.q-1; i++ {
		f.exp[i] = v
		f.exp[i+f.q-1] = v
		f.log[v] = i
		v = mul(v, g)
	}
}
