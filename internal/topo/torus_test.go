package topo

import (
	"testing"
	"testing/quick"
)

func TestTorusStructure(t *testing.T) {
	tor, err := NewTorus(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tor.NumNodes != 64 || tor.NumRouters != 64 {
		t.Fatalf("sizes: %+v", tor)
	}
	if err := tor.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	// n dimensions x 2 directions per router.
	if got := tor.Graph().CountChannels(); got != 64*3*2 {
		t.Fatalf("channels = %d, want %d", got, 64*3*2)
	}
	if _, err := NewTorus(1, 2); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewTorus(4, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestTorusNeighborsWrap(t *testing.T) {
	tor, err := NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Router 3 (coords 3,0): plus neighbor in dim 0 wraps to 0.
	if got := tor.Neighbor(3, 0, +1); got != 0 {
		t.Fatalf("wrap+ = %d, want 0", got)
	}
	if got := tor.Neighbor(0, 0, -1); got != 3 {
		t.Fatalf("wrap- = %d, want 3", got)
	}
	if got := tor.Neighbor(5, 1, +1); got != 9 {
		t.Fatalf("dim-1 neighbor = %d, want 9", got)
	}
}

func TestTorusNeighborInverse(t *testing.T) {
	tor, err := NewTorus(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	check := func(rr uint16, dd uint8) bool {
		r := RouterID(int(rr) % tor.NumRouters)
		d := int(dd) % tor.N
		return tor.Neighbor(tor.Neighbor(r, d, +1), d, -1) == r
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusRingDistance(t *testing.T) {
	tor, err := NewTorus(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, hops, dir int }{
		{0, 0, 0, +1}, {0, 1, 1, +1}, {0, 4, 4, +1}, {0, 5, 3, -1}, {0, 7, 1, -1},
		{6, 1, 3, +1},
	}
	for _, c := range cases {
		h, d := tor.RingDistance(c.a, c.b)
		if h != c.hops || d != c.dir {
			t.Errorf("RingDistance(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, h, d, c.hops, c.dir)
		}
	}
}

func TestTorusMinHops(t *testing.T) {
	tor, err := NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// (0,0) to (2,2): 2 + 2 = 4 hops (both halfway around).
	if got := tor.MinHops(0, 10); got != 4 {
		t.Fatalf("MinHops = %d, want 4", got)
	}
	// (0,0) to (3,0): wrap, 1 hop.
	if got := tor.MinHops(0, 3); got != 1 {
		t.Fatalf("MinHops = %d, want 1", got)
	}
}

func TestTorusAverageHopCountExceedsFlatFly(t *testing.T) {
	// The §1 argument: for the same node count, the low-radix torus has a
	// much higher diameter than a flattened butterfly. 64 nodes: 4-ary
	// 3-cube diameter = 6; 8-ary 2-flat diameter = 1.
	tor, err := NewTorus(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	maxHops := 0
	for r := 0; r < tor.NumRouters; r++ {
		if h := tor.MinHops(0, RouterID(r)); h > maxHops {
			maxHops = h
		}
	}
	if maxHops != 6 {
		t.Fatalf("4-ary 3-cube diameter = %d, want 6", maxHops)
	}
}
