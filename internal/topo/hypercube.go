package topo

import "fmt"

// Hypercube is an n-dimensional binary hypercube: 2^n routers with a
// bidirectional link in every dimension. The paper's §3.3 comparison uses
// a 10-dimensional hypercube for 1024 nodes (one terminal per router),
// routed with e-cube (dimension-order) routing.
//
// A Concentration above 1 attaches several terminals per router — the
// configuration the paper's footnote 10 dismisses: it reduces network
// cost but "will significantly degrade performance on adversarial traffic
// patterns", because the concentrated flows of a router share a single
// unit-width channel per dimension.
type Hypercube struct {
	Dims          int
	Concentration int // terminals per router (1 in the paper's comparison)
	NumNodes      int // Concentration * 2^Dims
	NumRouters    int

	g *Graph
}

// NewHypercube constructs an n-dimensional binary hypercube with one
// terminal per router.
func NewHypercube(dims int) (*Hypercube, error) {
	return NewConcentratedHypercube(dims, 1)
}

// NewConcentratedHypercube constructs a hypercube with c terminals per
// router (footnote 10 of the paper).
func NewConcentratedHypercube(dims, c int) (*Hypercube, error) {
	if dims < 1 || dims > 30 {
		return nil, fmt.Errorf("topo: hypercube dims must be in [1,30], got %d", dims)
	}
	if c < 1 {
		return nil, fmt.Errorf("topo: hypercube concentration must be >= 1, got %d", c)
	}
	h := &Hypercube{
		Dims:          dims,
		Concentration: c,
		NumNodes:      c << dims,
		NumRouters:    1 << dims,
	}
	h.build()
	return h, nil
}

func (h *Hypercube) build() {
	// Port layout: ports [0, c) = terminals; port c+d = dimension-d
	// neighbor.
	c := h.Concentration
	ports := c + h.Dims
	g := NewGraph(h.Name(), h.NumNodes, h.NumRouters)
	for r := range g.Routers {
		g.Routers[r].In = make([]InPort, ports)
		g.Routers[r].Out = make([]OutPort, ports)
	}
	for node := 0; node < h.NumNodes; node++ {
		g.AttachNode(NodeID(node), RouterID(node/c), node%c, node%c, 1)
	}
	for r := 0; r < h.NumRouters; r++ {
		for d := 0; d < h.Dims; d++ {
			peer := r ^ (1 << d)
			if r < peer {
				g.ConnectBidi(RouterID(r), c+d, RouterID(peer), c+d, 1)
			}
		}
	}
	h.g = g
}

// Name returns e.g. "10-cube" or "8-cube(c=4)".
func (h *Hypercube) Name() string {
	if h.Concentration > 1 {
		return fmt.Sprintf("%d-cube(c=%d)", h.Dims, h.Concentration)
	}
	return fmt.Sprintf("%d-cube", h.Dims)
}

// Graph returns the channel graph.
func (h *Hypercube) Graph() *Graph { return h.g }

// RouterOf returns the router hosting a node.
func (h *Hypercube) RouterOf(node NodeID) RouterID {
	return RouterID(int(node) / h.Concentration)
}

// PortForDim returns the port index for the dimension-d link.
func (h *Hypercube) PortForDim(d int) int { return h.Concentration + d }

// AvgUniformHops returns the expected Hamming distance between uniformly
// random routers, self-traffic included: each of the Dims bits differs
// with probability 1/2. Concentration does not change the figure, since
// terminals are spread evenly over routers.
func (h *Hypercube) AvgUniformHops() float64 { return float64(h.Dims) / 2 }

// MinHops returns the Hamming distance between two routers.
func (h *Hypercube) MinHops(a, b RouterID) int {
	x := uint32(a) ^ uint32(b)
	c := 0
	for x != 0 {
		c += int(x & 1)
		x >>= 1
	}
	return c
}
