package topo

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGraphValidateCatchesBrokenMirror(t *testing.T) {
	g := NewGraph("broken", 0, 2)
	g.Routers[0].In = make([]InPort, 2)
	g.Routers[0].Out = make([]OutPort, 2)
	g.Routers[1].In = make([]InPort, 2)
	g.Routers[1].Out = make([]OutPort, 2)
	g.Connect(0, 0, 1, 0, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid one-way channel rejected: %v", err)
	}
	// Corrupt the mirror.
	g.Routers[1].In[0].PeerPort = 1
	if err := g.Validate(); err == nil {
		t.Fatal("broken mirror not detected")
	}
}

func TestGraphValidateCatchesBadLatency(t *testing.T) {
	g := NewGraph("badlat", 0, 2)
	for r := 0; r < 2; r++ {
		g.Routers[r].In = make([]InPort, 1)
		g.Routers[r].Out = make([]OutPort, 1)
	}
	g.Connect(0, 0, 1, 0, 0)
	if err := g.Validate(); err == nil {
		t.Fatal("zero latency not detected")
	}
}

func TestGraphValidateCatchesBadNodeTables(t *testing.T) {
	g := NewGraph("badnode", 1, 1)
	g.Routers[0].In = make([]InPort, 1)
	g.Routers[0].Out = make([]OutPort, 1)
	g.AttachNode(0, 0, 0, 0, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid attach rejected: %v", err)
	}
	g.InjPort[0] = 5
	if err := g.Validate(); err == nil {
		t.Fatal("bad injection port not detected")
	}
}

func TestButterflyStructure(t *testing.T) {
	b, err := NewButterfly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumNodes != 16 || b.RoutersPerStage != 4 || b.NumRouters != 8 {
		t.Fatalf("unexpected sizes: %+v", b)
	}
	if err := b.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	// k-ary n-fly has N channels between each pair of adjacent stages.
	if got := b.Graph().CountChannels(); got != 16 {
		t.Fatalf("channels = %d, want 16", got)
	}
}

func TestButterflyRejectsBadParams(t *testing.T) {
	if _, err := NewButterfly(1, 2); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewButterfly(4, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestButterflyDestinationPath(t *testing.T) {
	// Destination-tag routing must reach the right terminal: follow the
	// OutputFor ports from every source's stage-0 router and confirm
	// arrival at the destination's ejection router and terminal port.
	b, err := NewButterfly(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := b.Graph()
	for src := 0; src < b.NumNodes; src++ {
		for dst := 0; dst < b.NumNodes; dst++ {
			r := g.NodeRouter[src]
			for s := 0; s < b.N-1; s++ {
				out := g.Routers[r].Out[b.OutputFor(s, NodeID(dst))]
				if out.Kind != Network {
					t.Fatalf("src %d dst %d stage %d: expected network channel", src, dst, s)
				}
				r = out.Peer
			}
			if r != b.EjectRouter(NodeID(dst)) {
				t.Fatalf("src %d dst %d: reached router %d, want %d", src, dst, r, b.EjectRouter(NodeID(dst)))
			}
			out := g.Routers[r].Out[b.OutputFor(b.N-1, NodeID(dst))]
			if out.Kind != Terminal || out.Node != NodeID(dst) {
				t.Fatalf("src %d dst %d: final hop reaches %v %d", src, dst, out.Kind, out.Node)
			}
		}
	}
}

func TestButterflyPathUniqueProperty(t *testing.T) {
	b, err := NewButterfly(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	check := func(s, d uint16) bool {
		src := NodeID(int(s) % b.NumNodes)
		dst := NodeID(int(d) % b.NumNodes)
		// Walk the unique path; it must take exactly n router hops.
		g := b.Graph()
		r := g.NodeRouter[src]
		for st := 0; st < b.N-1; st++ {
			out := g.Routers[r].Out[b.OutputFor(st, dst)]
			if out.Kind != Network {
				return false
			}
			r = out.Peer
		}
		out := g.Routers[r].Out[b.OutputFor(b.N-1, dst)]
		return out.Kind == Terminal && out.Node == dst
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldedClosStructure(t *testing.T) {
	// The paper's 1024-node tapered folded Clos: 32 leaves with 32
	// terminals and 16 uplinks, 8 middles of radix 64.
	f, err := NewFoldedClos(32, 16, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumNodes != 1024 || f.NumRouters != 40 || f.PairLinks != 2 {
		t.Fatalf("unexpected sizes: %+v", f)
	}
	if err := f.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	// 32 leaves x 16 uplinks bidirectional = 1024 unidirectional channels.
	if got := f.Graph().CountChannels(); got != 1024 {
		t.Fatalf("channels = %d, want 1024", got)
	}
	// Every middle must reach every leaf.
	g := f.Graph()
	for m := 0; m < f.Middles; m++ {
		seen := make(map[RouterID]int)
		for _, out := range g.Routers[f.MiddleRouter(m)].Out {
			if out.Kind == Network {
				seen[out.Peer]++
			}
		}
		if len(seen) != f.Leaves {
			t.Fatalf("middle %d reaches %d leaves, want %d", m, len(seen), f.Leaves)
		}
		for l, c := range seen {
			if c != f.PairLinks {
				t.Fatalf("middle %d has %d links to leaf %d, want %d", m, c, l, f.PairLinks)
			}
		}
	}
}

func TestFoldedClosRejectsBadParams(t *testing.T) {
	if _, err := NewFoldedClos(32, 15, 32, 8); err == nil {
		t.Error("non-divisible uplinks accepted")
	}
	if _, err := NewFoldedClos(0, 16, 32, 8); err == nil {
		t.Error("zero terminals accepted")
	}
	if _, err := NewFoldedClos(32, 16, 1, 8); err == nil {
		t.Error("single leaf accepted")
	}
}

func TestFoldedClosDownPorts(t *testing.T) {
	f, err := NewFoldedClos(4, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := f.Graph()
	for m := 0; m < f.Middles; m++ {
		for l := 0; l < f.Leaves; l++ {
			lo, hi := f.DownPorts(l)
			for p := lo; p < hi; p++ {
				out := g.Routers[f.MiddleRouter(m)].Out[p]
				if out.Kind != Network || out.Peer != RouterID(l) {
					t.Fatalf("middle %d port %d should reach leaf %d, got %v %d", m, p, l, out.Kind, out.Peer)
				}
			}
		}
	}
}

func TestTaperedClosForNodes(t *testing.T) {
	f, err := TaperedClosForNodes(1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if f.Terminals != 32 || f.Uplinks != 16 || f.Leaves != 32 || f.Middles != 8 {
		t.Fatalf("unexpected: %+v", f)
	}
	if err := f.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := TaperedClosForNodes(1000, 64); err == nil {
		t.Error("indivisible node count accepted")
	}
}

func TestHypercubeStructure(t *testing.T) {
	h, err := NewHypercube(10)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes != 1024 || h.NumRouters != 1024 {
		t.Fatalf("sizes: %+v", h)
	}
	if err := h.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	// n*2^n / 2 bidirectional links = n*2^n unidirectional channels.
	if got := h.Graph().CountChannels(); got != 10*1024 {
		t.Fatalf("channels = %d, want %d", got, 10*1024)
	}
	if h.MinHops(0, 1023) != 10 {
		t.Fatal("antipodal distance should be 10")
	}
	if h.MinHops(5, 5) != 0 {
		t.Fatal("self distance should be 0")
	}
}

func TestHypercubeNeighbors(t *testing.T) {
	h, err := NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	g := h.Graph()
	for r := 0; r < h.NumRouters; r++ {
		for d := 0; d < h.Dims; d++ {
			out := g.Routers[r].Out[h.PortForDim(d)]
			if out.Kind != Network || int(out.Peer) != r^(1<<d) {
				t.Fatalf("router %d dim %d reaches %d, want %d", r, d, out.Peer, r^(1<<d))
			}
		}
	}
	if _, err := NewHypercube(0); err == nil {
		t.Error("dims=0 accepted")
	}
	if _, err := NewHypercube(31); err == nil {
		t.Error("dims=31 accepted")
	}
}

func TestGHCStructure(t *testing.T) {
	// The paper's §2.3 example: an (8,8,16) GHC for 1024 nodes with 32
	// inter-router channels per router (7+7+15 = 29... the figure counts
	// 32 = 7+7+15 plus padding; we verify the true degree).
	h, err := NewGHC([]int{8, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes != 1024 {
		t.Fatalf("nodes = %d", h.NumNodes)
	}
	if h.Degree != 7+7+15 {
		t.Fatalf("degree = %d, want 29", h.Degree)
	}
	if err := h.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-router degree including terminal = 30.
	if d := h.Graph().Degree(0); d != 30 {
		t.Fatalf("router degree = %d, want 30", d)
	}
}

func TestGHCDigitsAndPorts(t *testing.T) {
	h, err := NewGHC([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	g := h.Graph()
	for r := 0; r < h.NumRouters; r++ {
		for d, m := range h.Radices {
			own := h.Digit(RouterID(r), d)
			for v := 0; v < m; v++ {
				out := g.Routers[r].Out[h.PortFor(d, v)]
				if v == own {
					if out.Kind != Unused {
						t.Fatalf("router %d dim %d self slot not unused", r, d)
					}
					continue
				}
				if out.Kind != Network {
					t.Fatalf("router %d dim %d v %d: not connected", r, d, v)
				}
				if h.Digit(out.Peer, d) != v {
					t.Fatalf("router %d dim %d v %d: peer digit mismatch", r, d, v)
				}
			}
		}
	}
	if _, err := NewGHC(nil); err == nil {
		t.Error("empty radices accepted")
	}
	if _, err := NewGHC([]int{4, 1}); err == nil {
		t.Error("radix-1 dimension accepted")
	}
}

func TestGHCMinHops(t *testing.T) {
	h, err := NewGHC([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.MinHops(0, 5) != 2 { // digits (0,0) vs (1,1)
		t.Fatal("expected 2 differing digits")
	}
	if h.MinHops(0, 3) != 1 { // digits (0,0) vs (3,0)
		t.Fatal("expected 1 differing digit")
	}
}

func TestPortKindString(t *testing.T) {
	if Unused.String() != "unused" || Terminal.String() != "terminal" || Network.String() != "network" {
		t.Fatal("PortKind strings wrong")
	}
	if PortKind(9).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestWriteDOT(t *testing.T) {
	f, err := NewFoldedClos(2, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteDOT(&sb, f.Graph()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph network {", "r0", "r2", "--", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Bidirectional links are drawn once: 2 leaves x 2 uplinks = 4 edges.
	if got := strings.Count(out, "--"); got != 4 {
		t.Errorf("edge count = %d, want 4", got)
	}
	// Unidirectional butterfly channels carry dir=forward.
	b, err := NewButterfly(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteDOT(&sb, b.Graph()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dir=forward") {
		t.Error("butterfly DOT should mark directed channels")
	}
}
