package topo

import "fmt"

// ParamError reports an invalid topology-constructor parameter as a
// structured, matchable error: callers can errors.As on *ParamError to
// distinguish bad parameters from environmental failures, and tests can
// assert on the offending field instead of an error-string substring.
type ParamError struct {
	// Topology names the constructor family, e.g. "slimfly".
	Topology string
	// Param names the offending parameter, e.g. "q".
	Param string
	// Value is the rejected value.
	Value int
	// Reason explains the constraint the value violated.
	Reason string
}

// Error implements error.
func (e *ParamError) Error() string {
	return fmt.Sprintf("topo: %s: parameter %s = %d: %s", e.Topology, e.Param, e.Value, e.Reason)
}

// paramErr builds a *ParamError.
func paramErr(topology, param string, value int, reason string) error {
	return &ParamError{Topology: topology, Param: param, Value: value, Reason: reason}
}
