package topo

import "fmt"

// SlimFly is the McKay-Miller-Širáň (MMS) diameter-2 topology of the
// Slim Fly proposal (Besta & Hoefler): routers are labeled (s, x, y) with
// s ∈ {0,1} and x, y ∈ GF(q) for an odd prime power q = 4w + δ,
// δ ∈ {1, -1}. Within block 0, (0,x,y) ~ (0,x,y') iff y-y' ∈ X; within
// block 1, (1,m,c) ~ (1,m,c') iff c-c' ∈ X'; across blocks,
// (0,x,y) ~ (1,m,c) iff y = mx + c. With the Cayley generator sets X/X'
// below the graph has 2q² routers of network degree k' = (3q-δ)/2 and
// diameter 2 — asymptotically optimal router count for that degree
// (≈ 0.89 of the Moore bound).
//
// Each router hosts P terminals; the Slim Fly default is P = ⌈k'/2⌉,
// which balances terminal and network bandwidth at the paper's operating
// point.
type SlimFly struct {
	Q     int // field size (odd prime power, q ≢ 0 mod 4)
	Delta int // +1 for q ≡ 1 (mod 4), -1 for q ≡ 3 (mod 4)
	P     int // terminals per router

	NetworkDegree int // k' = (3q-δ)/2
	NumRouters    int // 2q²
	NumNodes      int // 2q²·P

	diameter int
	avgHops  float64 // router-pair average minimal hops, self pairs included

	adj [][]int32 // sorted neighbor lists; port p+i reaches adj[r][i]
	g   *Graph
}

// SlimFlyDefaultConc returns the default terminals-per-router for field
// size q: ⌈k'/2⌉. It does not validate q.
func SlimFlyDefaultConc(q int) int {
	delta := 1
	if q%4 == 3 {
		delta = -1
	}
	return ((3*q-delta)/2 + 1) / 2
}

// NewSlimFly constructs the MMS Slim Fly over GF(q) with p terminals per
// router; p = 0 selects the default ⌈k'/2⌉. The construction verifies at
// build time — via BFS from one representative of each router orbit —
// that the generator sets actually yield diameter 2, so an invalid
// parameter combination is a returned error, never a silently wrong
// network.
func NewSlimFly(q, p int) (*SlimFly, error) {
	if q < 5 {
		return nil, paramErr("slimfly", "q", q, "MMS graphs need an odd prime power q >= 5")
	}
	switch q % 4 {
	case 0, 2:
		return nil, paramErr("slimfly", "q", q, "MMS graphs need q ≡ 1 or 3 (mod 4); even q has no valid generator sets")
	}
	f, ok := newGF(q)
	if !ok {
		return nil, paramErr("slimfly", "q", q, "not a prime power")
	}
	delta := 1
	if q%4 == 3 {
		delta = -1
	}
	if p == 0 {
		p = SlimFlyDefaultConc(q)
	}
	if p < 1 {
		return nil, paramErr("slimfly", "p", p, "need at least one terminal per router")
	}
	s := &SlimFly{
		Q:             q,
		Delta:         delta,
		P:             p,
		NetworkDegree: (3*q - delta) / 2,
		NumRouters:    2 * q * q,
		NumNodes:      2 * q * q * p,
	}
	if s.NumNodes > 1<<22 {
		return nil, paramErr("slimfly", "q", q, fmt.Sprintf("network of %d terminals exceeds the 4M construction cap", s.NumNodes))
	}
	if err := s.build(f); err != nil {
		return nil, err
	}
	return s, nil
}

// generators returns the Cayley sets X (block 0) and X' (block 1). For
// q = 4w+1 these are the even and odd powers of a primitive element ξ
// (the nonzero quadratic residues and non-residues); both are symmetric
// because -1 = ξ^(q-1)/2 is an even power. For q = 4w-1 (Hafner's case)
// they are ±{ξ^0, ξ^2, ..., ξ^(2w-2)} and ±{ξ^1, ξ^3, ..., ξ^(2w-1)},
// symmetric by construction.
func (s *SlimFly) generators(f *gf) (x, xp []int) {
	q := s.Q
	if s.Delta == 1 {
		for i := 0; i < (q-1)/2; i++ {
			x = append(x, f.xi(2*i))
			xp = append(xp, f.xi(2*i+1))
		}
		return x, xp
	}
	w := (q + 1) / 4
	for i := 0; i < w; i++ {
		x = append(x, f.xi(2*i), f.neg(f.xi(2*i)))
		xp = append(xp, f.xi(2*i+1), f.neg(f.xi(2*i+1)))
	}
	return x, xp
}

// routerID maps (s, x, y) to a router index.
func (s *SlimFly) routerID(block, x, y int) int { return block*s.Q*s.Q + x*s.Q + y }

// build constructs the adjacency lists and the channel graph, then
// verifies regularity and diameter 2.
func (s *SlimFly) build(f *gf) error {
	q, r := s.Q, s.NumRouters
	x, xp := s.generators(f)
	s.adj = make([][]int32, r)
	for i := range s.adj {
		s.adj[i] = make([]int32, 0, s.NetworkDegree)
	}
	addEdge := func(a, b int) {
		s.adj[a] = append(s.adj[a], int32(b))
	}
	// Intra-block Cayley edges. The generator sets are symmetric
	// (g ∈ X ⇒ -g ∈ X), so appending y+g for every g covers both
	// directions of each undirected edge.
	for xx := 0; xx < q; xx++ {
		for y := 0; y < q; y++ {
			for _, g := range x {
				addEdge(s.routerID(0, xx, y), s.routerID(0, xx, f.add(y, g)))
			}
			for _, g := range xp {
				addEdge(s.routerID(1, xx, y), s.routerID(1, xx, f.add(y, g)))
			}
		}
	}
	// Cross-block edges: (0,x,y) ~ (1,m,c) iff y = mx + c.
	for xx := 0; xx < q; xx++ {
		for m := 0; m < q; m++ {
			for c := 0; c < q; c++ {
				y := f.add(f.mul(m, xx), c)
				addEdge(s.routerID(0, xx, y), s.routerID(1, m, c))
				addEdge(s.routerID(1, m, c), s.routerID(0, xx, y))
			}
		}
	}
	for i := range s.adj {
		if len(s.adj[i]) != s.NetworkDegree {
			return paramErr("slimfly", "q", q,
				fmt.Sprintf("construction is not %d-regular (router %d has degree %d)", s.NetworkDegree, i, len(s.adj[i])))
		}
		sortInt32(s.adj[i])
		for j := 1; j < len(s.adj[i]); j++ {
			if s.adj[i][j] == s.adj[i][j-1] {
				return paramErr("slimfly", "q", q, "generator sets produce a multigraph")
			}
		}
	}
	// Verify diameter 2 and precompute the exact router-pair hop average
	// from one BFS per router orbit (see RouterOrbits).
	reps, sizes := s.RouterOrbits()
	total := 0
	s.diameter = 0
	for i, rep := range reps {
		dist := s.bfs(int(rep))
		for _, d := range dist {
			if d > s.diameter {
				s.diameter = d
			}
			total += d * sizes[i]
		}
	}
	if s.diameter > 2 {
		return paramErr("slimfly", "q", q,
			fmt.Sprintf("generator sets give diameter %d, not the MMS diameter 2", s.diameter))
	}
	s.avgHops = float64(total) / float64(r*r)

	// Channel graph: ports [0,P) are terminals, port P+i reaches adj[r][i].
	g := NewGraph(s.Name(), s.NumNodes, r)
	ports := s.P + s.NetworkDegree
	for i := range g.Routers {
		g.Routers[i].In = make([]InPort, ports)
		g.Routers[i].Out = make([]OutPort, ports)
	}
	for node := 0; node < s.NumNodes; node++ {
		g.AttachNode(NodeID(node), RouterID(node/s.P), node%s.P, node%s.P, 1)
	}
	for a := 0; a < r; a++ {
		for i, b := range s.adj[a] {
			if a < int(b) {
				g.ConnectBidi(RouterID(a), s.P+i, RouterID(b), s.P+s.portIndex(int(b), a), 1)
			}
		}
	}
	if err := g.Validate(); err != nil {
		return err
	}
	s.g = g
	return nil
}

// portIndex returns the index of neighbor b in router a's sorted
// adjacency list (binary search; the lists are sorted).
func (s *SlimFly) portIndex(a, b int) int {
	lst := s.adj[a]
	lo, hi := 0, len(lst)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(lst[mid]) < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// bfs returns hop distances from src over the router graph.
func (s *SlimFly) bfs(src int) []int {
	dist := make([]int, s.NumRouters)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, s.NumRouters)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := int(queue[0])
		queue = queue[1:]
		for _, w := range s.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Name returns e.g. "SF(q=5,p=4)".
func (s *SlimFly) Name() string { return fmt.Sprintf("SF(q=%d,p=%d)", s.Q, s.P) }

// Graph returns the channel graph.
func (s *SlimFly) Graph() *Graph { return s.g }

// Adjacency returns router r's sorted neighbor list; network port P+i on
// r reaches Adjacency(r)[i]. The returned slice is shared — read only.
func (s *SlimFly) Adjacency(r RouterID) []int32 { return s.adj[r] }

// Diameter returns the verified graph diameter (2 for every valid q).
func (s *SlimFly) Diameter() int { return s.diameter }

// MinHopsFrom returns the minimal hop counts from src to every router
// (a fresh slice; BFS over the adjacency lists).
func (s *SlimFly) MinHopsFrom(src RouterID) []int { return s.bfs(int(src)) }

// AvgUniformMinHops returns the exact router-pair average minimal hop
// count with self pairs included — uniform traffic over nodes is uniform
// over router pairs since every router hosts P terminals.
func (s *SlimFly) AvgUniformMinHops() float64 { return s.avgHops }

// RouterOrbits returns one representative per orbit of the translation
// automorphisms φ_{a,b}: (0,x,y) → (0,x+a,y+b), (1,m,c) → (1,m,c+b-ma)
// — valid for every generator-set choice since they preserve the
// differences y-y', c-c' and the incidence y = mx+c. Block 0 is a single
// orbit of size q²; block 1 splits into one orbit of size q per slope m.
// Per-orbit BFS then yields exact global metrics from q+1 sources
// instead of 2q².
func (s *SlimFly) RouterOrbits() ([]RouterID, []int) {
	q := s.Q
	reps := make([]RouterID, 0, q+1)
	sizes := make([]int, 0, q+1)
	reps = append(reps, RouterID(s.routerID(0, 0, 0)))
	sizes = append(sizes, q*q)
	for m := 0; m < q; m++ {
		reps = append(reps, RouterID(s.routerID(1, m, 0)))
		sizes = append(sizes, q)
	}
	return reps, sizes
}

// sortInt32 sorts in place (insertion sort; lists are short).
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
