package sweep

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestWarmKeyScope(t *testing.T) {
	base := tinyJob("UGAL-S", 0.4)
	// Measurement-only parameters do not enter the warm key: a stored
	// warm-up is reusable under any measurement length.
	same := map[string]func(*Job){
		"Measure":   func(j *Job) { j.Measure = 777 },
		"MaxCycles": func(j *Job) { j.MaxCycles = 9999 },
		"BatchSize": func(j *Job) { j.BatchSize = 5 },
		"Workers":   func(j *Job) { j.Workers = 4 },
	}
	for name, mut := range same {
		j := base
		mut(&j)
		if j.WarmKey() != base.WarmKey() {
			t.Errorf("%s changed the warm key; warm state does not depend on it", name)
		}
	}
	// Everything that shapes the warm-up trajectory must change the key.
	diff := map[string]func(*Job){
		"Load":   func(j *Job) { j.Load = 0.5 },
		"Warmup": func(j *Job) { j.Warmup = 150 },
		"Seed":   func(j *Job) { j.Seed = 8 },
		"Alg":    func(j *Job) { j.Alg = "VAL" },
		"K":      func(j *Job) { j.K = 2 },
	}
	for name, mut := range diff {
		j := base
		mut(&j)
		if j.WarmKey() == base.WarmKey() {
			t.Errorf("%s did not change the warm key; distinct warm-ups would collide", name)
		}
	}
}

// TestWarmSweepBitIdentical is the acceptance property: a load series
// resumed from warm snapshots reproduces the cold-start Results exactly
// — even at a different Measure length — while skipping every warm-up
// cycle.
func TestWarmSweepBitIdentical(t *testing.T) {
	dir := t.TempDir()
	jobs := func(measure int) []Job {
		var js []Job
		for _, load := range []float64{0.2, 0.4, 0.6} {
			j := tinyJob("UGAL-S", load)
			j.Measure = measure
			js = append(js, j)
		}
		return js
	}
	strip := func(rs []Result) []Result {
		out := append([]Result(nil), rs...)
		for i := range out {
			out[i].Cached, out[i].WarmStart, out[i].WarmSaved = false, false, false
			out[i].ElapsedSeconds = 0
		}
		return out
	}

	// Cold reference, no warm store.
	cold := &Engine{Workers: 2}
	coldRes, err := cold.Run(context.Background(), jobs(300))
	if err != nil {
		t.Fatal(err)
	}

	// First warm-enabled sweep (different Measure): all misses, deposits
	// one snapshot per load point.
	ws, err := OpenWarmStore(filepath.Join(dir, "warm"))
	if err != nil {
		t.Fatal(err)
	}
	seed := &Engine{Workers: 2, Warm: ws}
	if _, err := seed.Run(context.Background(), jobs(100)); err != nil {
		t.Fatal(err)
	}
	if st := seed.Stats(); st.WarmPuts != 3 || st.WarmHits != 0 {
		t.Fatalf("seeding sweep: want 3 warm puts / 0 hits, got %d / %d", st.WarmPuts, st.WarmHits)
	}

	// Second warm-enabled sweep at the cold run's Measure: every job
	// resumes from the stored warm-up (keys ignore Measure) and must
	// reproduce the cold results bit for bit.
	warm := &Engine{Workers: 2, Warm: ws}
	warmRes, err := warm.Run(context.Background(), jobs(300))
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.WarmHits != 3 {
		t.Fatalf("warm sweep: want 3 warm hits, got %d", st.WarmHits)
	}
	if want := int64(3 * 100); st.WarmCyclesSaved != want {
		t.Fatalf("warm sweep: want %d warm-up cycles saved, got %d", want, st.WarmCyclesSaved)
	}
	for i := range warmRes {
		if !warmRes[i].WarmStart {
			t.Fatalf("job %d did not warm-start", i)
		}
	}
	if !reflect.DeepEqual(strip(coldRes), strip(warmRes)) {
		t.Fatalf("warm-started results diverge from cold:\n  cold: %+v\n  warm: %+v", coldRes, warmRes)
	}
}

// TestWarmCorruptSnapshotFallsBack ensures a damaged stored snapshot is
// discarded and replaced by a cold run with the correct result.
func TestWarmCorruptSnapshotFallsBack(t *testing.T) {
	ws, err := OpenWarmStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := tinyJob("CLOS AD", 0.3).Normalize()
	coldRes, err := j.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Put(j.WarmKey(), []byte("not a snapshot")); err != nil {
		t.Fatal(err)
	}
	res, err := j.runWarm(nil, ws)
	if err != nil {
		t.Fatalf("corrupt warm snapshot should fall back, got: %v", err)
	}
	if res.WarmStart || !res.WarmSaved {
		t.Fatalf("want cold fallback that re-deposits, got WarmStart=%v WarmSaved=%v", res.WarmStart, res.WarmSaved)
	}
	if !reflect.DeepEqual(res.Point, coldRes.Point) {
		t.Fatalf("fallback result diverges from cold: %+v vs %+v", res.Point, coldRes.Point)
	}
	// The replacement snapshot must now be valid and hit.
	res2, err := j.runWarm(nil, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.WarmStart {
		t.Fatal("replacement snapshot did not warm-start")
	}
	if !reflect.DeepEqual(res2.Point, coldRes.Point) {
		t.Fatalf("warm-started result diverges from cold: %+v vs %+v", res2.Point, coldRes.Point)
	}
}

// TestWarmStoreBesideCache pins the on-disk convention: snapshots live
// in a sibling directory of the JSON-lines cache, one file per key.
func TestWarmStoreBesideCache(t *testing.T) {
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "results.jsonl")
	c, err := OpenCache(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ws, err := OpenWarmStore(cachePath + ".warm")
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Workers: 1, Cache: c, Warm: ws}
	j := tinyJob("VAL", 0.25)
	if _, err := e.Run(context.Background(), []Job{j}); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(cachePath+".warm", j.WarmKey()+".snap")
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("expected warm snapshot beside the cache at %s: %v", snap, err)
	}
	if st := ws.Stats(); st.Puts != 1 || st.Misses != 1 {
		t.Fatalf("want 1 put / 1 miss, got %+v", st)
	}
}
