//go:build check

package sweep

// autoCheck forces every engine into sanitized execution when the module
// is built with -tags=check (the CI invariant job), so the whole test
// suite's sweeps run under the runtime checker without each call site
// opting in.
const autoCheck = true
