package sweep

import (
	"context"
	"math"
	"testing"
)

// TestAnalyticCrossCheck runs every seed network family through the
// engine twice — once in ModeAnalytic and once as a near-zero-load
// simulation with minimal routing — and cross-checks the two: the
// graph-analytic hop average must agree with the hops the cycle
// simulator actually measures, and the analytic zero-load latency must
// sit at (or just below) the simulated latency, which still carries a
// little queueing even at 2% load.
func TestAnalyticCrossCheck(t *testing.T) {
	cases := []struct {
		name string
		base Job
		alg  string
		// hopSlack is the one-sided allowance for simulated hops above
		// the analytic minimum: UR sampling noise for most families,
		// plus the hierarchical-routing detour for the dragonfly (its
		// local-global-local paths skip the two-global shortcuts a BFS
		// finds, so routed hops exceed the graph minimum).
		hopSlack float64
	}{
		{"flatfly", Job{Net: "flatfly", K: 4, N: 2}, "MIN AD", 0.1},
		{"butterfly", Job{Net: "butterfly", K: 4, N: 2}, "destination", 0.1},
		{"foldedclos", Job{Net: "foldedclos", K: 4, Uplinks: 2, Leaves: 4, Middles: 1}, "adaptive sequential", 0.1},
		{"hypercube", Job{Net: "hypercube", N: 5}, "e-cube", 0.1},
		{"slimfly", Job{Net: "slimfly", Q: 5}, "min", 0.1},
		{"dragonfly", Job{Net: "dragonfly", H: 2}, "min", 0.6},
	}
	eng := &Engine{Workers: 2}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			aj := tc.base
			aj.Mode = ModeAnalytic
			aj.Seed = 7
			sj := tc.base
			sj.Alg, sj.Pattern, sj.Load = tc.alg, "UR", 0.02
			sj.Warmup, sj.Measure, sj.Seed, sj.BufPerPort = 300, 2000, 7, 32
			res, err := eng.Run(context.Background(), []Job{aj, sj})
			if err != nil {
				t.Fatal(err)
			}
			an, sim := res[0], res[1]
			if an.Analytic == nil {
				t.Fatal("ModeAnalytic result has no analytic metrics")
			}
			m := an.Analytic
			if m.Nodes <= 0 || m.Routers <= 0 || m.Channels <= 0 || m.Diameter <= 0 {
				t.Fatalf("degenerate analytic metrics: %+v", m)
			}
			if sim.Point.Saturated {
				t.Fatalf("%s saturated at 2%% load", tc.name)
			}
			dh := sim.Point.AvgHops - m.AvgHops
			if dh < -0.1 || dh > tc.hopSlack {
				t.Errorf("hops: analytic %.4f vs simulated %.4f (slack %.2f)",
					m.AvgHops, sim.Point.AvgHops, tc.hopSlack)
			}
			// The analytic Point carries the zero-load latency model;
			// at 2% load the simulator adds serialization and light
			// queueing on top, never runs below it by more than a cycle.
			zl := an.Point.AvgLatency
			if zl <= 0 {
				t.Fatal("analytic result has no zero-load latency")
			}
			if sim.Point.AvgLatency < zl-1 || sim.Point.AvgLatency > zl+3 {
				t.Errorf("latency: zero-load model %.2f vs simulated %.2f at 2%% load",
					zl, sim.Point.AvgLatency)
			}
			if math.IsNaN(m.PathDiversity) || m.PathDiversity < 1 {
				t.Errorf("path diversity %.3f < 1", m.PathDiversity)
			}
		})
	}
}

// TestAnalyticCachedRoundTrip pins the ModeAnalytic result through the
// JSON-lines cache: a second run must serve the identical metrics from
// cache without rebuilding the topology.
func TestAnalyticCachedRoundTrip(t *testing.T) {
	path := t.TempDir() + "/cache.jsonl"
	job := Job{Net: "slimfly", Q: 5, Mode: ModeAnalytic, Seed: 1}
	run := func() Result {
		cache, err := OpenCache(path)
		if err != nil {
			t.Fatal(err)
		}
		defer cache.Close()
		eng := &Engine{Workers: 1, Cache: cache}
		res, err := eng.Run(context.Background(), []Job{job})
		if err != nil {
			t.Fatal(err)
		}
		return res[0]
	}
	cold, warm := run(), run()
	if !warm.Cached {
		t.Fatal("second analytic run missed the cache")
	}
	if cold.Analytic == nil || warm.Analytic == nil {
		t.Fatal("analytic metrics lost in the cache round trip")
	}
	if *cold.Analytic != *warm.Analytic {
		t.Fatalf("cache changed the metrics: %+v vs %+v", cold.Analytic, warm.Analytic)
	}
	if cold.Point.AvgLatency != warm.Point.AvgLatency {
		t.Fatalf("cache changed zero-load latency: %v vs %v", cold.Point.AvgLatency, warm.Point.AvgLatency)
	}
}
