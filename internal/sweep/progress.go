package sweep

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progress renders live "done/total + ETA" lines and the final
// per-worker throughput report. A nil writer disables all output. Lines
// are throttled so a fast sweep does not flood stderr.
//
// All tallies come from the engine's live telemetry counters rather than
// a private ledger: a Vars baseline is captured at batch start and the
// lines report the delta, so what the progress stream shows is exactly
// what a -listen metrics endpoint shows.
type progress struct {
	w       io.Writer
	eng     *Engine
	total   int
	workers int
	start   time.Time
	base    Vars

	mu   sync.Mutex
	last time.Time
}

// progressInterval is the minimum spacing between live progress lines.
const progressInterval = 500 * time.Millisecond

func newProgress(w io.Writer, e *Engine, total, workers int) *progress {
	p := &progress{w: w, eng: e, total: total, workers: workers, start: time.Now()}
	if w != nil {
		p.base = e.Vars()
	}
	return p
}

// delta returns this batch's contribution to the engine's lifetime
// counters (the engine may be reused across Run calls).
func (p *progress) delta() Vars {
	v := p.eng.Vars()
	v.JobsSubmitted -= p.base.JobsSubmitted
	v.JobsDone -= p.base.JobsDone
	v.Simulated -= p.base.Simulated
	v.CacheHits -= p.base.CacheHits
	v.Deduped -= p.base.Deduped
	v.Skipped -= p.base.Skipped
	v.Failed -= p.base.Failed
	v.BusySeconds -= p.base.BusySeconds
	return v
}

// step emits a throttled progress line; the engine calls it after each
// job settles (and after updating its live counters).
func (p *progress) step() {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	d := p.delta()
	done := int(d.JobsDone)
	if now.Sub(p.last) < progressInterval && done != p.total {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start)
	eta := "?"
	if done > 0 && done < p.total {
		remain := time.Duration(float64(elapsed) / float64(done) * float64(p.total-done))
		eta = remain.Round(100 * time.Millisecond).String()
	}
	fmt.Fprintf(p.w, "sweep: %d/%d jobs (%d simulated, %d cached, %d skipped, %d failed, %d in flight) util %.0f%% hit %.0f%% elapsed %s eta %s\n",
		done, p.total, d.Simulated, d.CacheHits, d.Skipped, d.Failed, d.JobsInFlight,
		100*utilization(d, elapsed, p.workers), 100*hitRate(d),
		elapsed.Round(100*time.Millisecond), eta)
}

// utilization is busy time over available worker time for this batch.
func utilization(d Vars, elapsed time.Duration, workers int) float64 {
	if workers <= 0 || elapsed <= 0 {
		return 0
	}
	u := d.BusySeconds / (elapsed.Seconds() * float64(workers))
	if u > 1 {
		u = 1 // settle-time skew can push the ratio just past 1
	}
	return u
}

// hitRate is this batch's cache-hit fraction of settled jobs.
func hitRate(d Vars) float64 {
	if d.JobsDone == 0 {
		return 0
	}
	return float64(d.CacheHits) / float64(d.JobsDone)
}

// finish prints the batch summary and per-worker throughput. Workers
// that never ran a job are reported too — seeing "worker 1: 0 jobs" is
// the honest answer on a saturated pool, not a formatting bug.
func (p *progress) finish(wstats []WorkerStats) {
	if p.w == nil {
		return
	}
	elapsed := time.Since(p.start)
	d := p.delta()
	fmt.Fprintf(p.w, "sweep: done: %d jobs in %s — %d simulated, %d cache hits (%.0f%%), %d deduped, %d skipped, %d failed, pool util %.0f%%\n",
		p.total, elapsed.Round(time.Millisecond), d.Simulated, d.CacheHits, 100*hitRate(d),
		d.Deduped, d.Skipped, d.Failed, 100*utilization(d, elapsed, p.workers))
	for w, s := range wstats {
		rate := 0.0
		if s.Busy > 0 {
			rate = float64(s.Jobs) / s.Busy.Seconds()
		}
		fmt.Fprintf(p.w, "sweep: worker %d: %d jobs, busy %s (%.1f jobs/s)\n",
			w, s.Jobs, s.Busy.Round(time.Millisecond), rate)
	}
}
