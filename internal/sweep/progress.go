package sweep

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progress event kinds, reported by the engine as each job settles.
const (
	progSimulated = iota
	progCached
	progSkipped
	progFailed
)

// progress renders live "done/total + ETA" lines and the final
// per-worker throughput report. A nil writer disables all output. Lines
// are throttled so a fast sweep does not flood stderr.
type progress struct {
	w       io.Writer
	total   int
	workers int
	start   time.Time

	mu   sync.Mutex
	done int
	sim  int
	hit  int
	skip int
	fail int
	last time.Time
}

// progressInterval is the minimum spacing between live progress lines.
const progressInterval = 500 * time.Millisecond

func newProgress(w io.Writer, total, workers int) *progress {
	return &progress{w: w, total: total, workers: workers, start: time.Now()}
}

func (p *progress) step(kind int) {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	switch kind {
	case progSimulated:
		p.sim++
	case progCached:
		p.hit++
	case progSkipped:
		p.skip++
	case progFailed:
		p.fail++
	}
	now := time.Now()
	if now.Sub(p.last) < progressInterval && p.done != p.total {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start)
	eta := "?"
	if p.done > 0 && p.done < p.total {
		remain := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		eta = remain.Round(100 * time.Millisecond).String()
	}
	fmt.Fprintf(p.w, "sweep: %d/%d jobs (%d simulated, %d cached, %d skipped, %d failed) elapsed %s eta %s\n",
		p.done, p.total, p.sim, p.hit, p.skip, p.fail,
		elapsed.Round(100*time.Millisecond), eta)
}

// finish prints the batch summary and per-worker throughput. Workers
// that never ran a job are reported too — seeing "worker 1: 0 jobs" is
// the honest answer on a saturated pool, not a formatting bug.
func (p *progress) finish(wstats []WorkerStats, sim, hit, skip, fail int) {
	if p.w == nil {
		return
	}
	elapsed := time.Since(p.start)
	fmt.Fprintf(p.w, "sweep: done: %d jobs in %s — %d simulated, %d cache hits, %d skipped, %d failed\n",
		p.total, elapsed.Round(time.Millisecond), sim, hit, skip, fail)
	for w, s := range wstats {
		rate := 0.0
		if s.Busy > 0 {
			rate = float64(s.Jobs) / s.Busy.Seconds()
		}
		fmt.Fprintf(p.w, "sweep: worker %d: %d jobs, busy %s (%.1f jobs/s)\n",
			w, s.Jobs, s.Busy.Round(time.Millisecond), rate)
	}
}
