// Package sweep is the experiment-orchestration engine: it turns the
// repository's ad-hoc load loops into batches of independent, hashable
// simulation jobs executed by a worker pool with a durable on-disk
// result cache.
//
// A Job is a pure-value description of one simulation — network
// constructor, routing algorithm, traffic pattern, load point, window
// lengths and seed. Every randomness in a run derives from the job's own
// Seed (each job owns a fresh network and RNG), so a job's result is a
// function of the job alone: results are bit-identical whether jobs run
// sequentially, in parallel, or on different machines, and a stable
// content hash of the job fields can key a result cache across runs.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"flatnet/internal/analysis"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
)

// Execution modes.
const (
	// ModeLoad measures one open-loop load point (§3.2 methodology).
	ModeLoad = "load"
	// ModeSaturation measures accepted rate at full offered load.
	ModeSaturation = "saturation"
	// ModeBatch runs the Fig. 5 batch experiment.
	ModeBatch = "batch"
	// ModeAnalytic skips cycle simulation entirely: the job's topology is
	// evaluated graph-analytically (internal/analysis) and the zero-load
	// latency model fills the load-point fields, so extreme-scale
	// design-space sweeps run in milliseconds.
	ModeAnalytic = "analytic"
	// ModeCollective runs a collective schedule (Job.Collective:
	// "alltoall" or "allreduce") to end-to-end completion, with the
	// job's pattern as optional background traffic at Load.
	ModeCollective = "collective"
)

// Job describes one independent simulation. The zero values of optional
// fields select the same defaults the underlying simulator uses, and
// Normalize makes those defaults explicit so that equivalent jobs hash
// identically.
type Job struct {
	// Net selects the network constructor: "flatfly", "butterfly",
	// "foldedclos" or "hypercube". See build.go for the parameter
	// conventions of each.
	Net string `json:"net"`
	// K and N parameterize the constructor (ary and dimension count for
	// flatfly/butterfly; N is the dimension count for hypercube).
	K int `json:"k,omitempty"`
	N int `json:"n,omitempty"`
	// Uplinks, Leaves and Middles are the extra folded-Clos parameters
	// (K is the terminals-per-leaf count).
	Uplinks int `json:"uplinks,omitempty"`
	Leaves  int `json:"leaves,omitempty"`
	Middles int `json:"middles,omitempty"`
	// Q is the Slim Fly field size (an odd prime power).
	Q int `json:"q,omitempty"`
	// A and H are the dragonfly routers-per-group and global channels
	// per router (A 0 means the balanced 2H).
	A int `json:"a,omitempty"`
	H int `json:"h,omitempty"`
	// P is the terminals-per-router concentration for slimfly and
	// dragonfly (0 means each family's balanced default).
	P int `json:"p,omitempty"`
	// ChannelLatency is the inter-router channel latency in cycles
	// (0 means the topology default of 1). Flattened butterfly only.
	ChannelLatency int `json:"channel_latency,omitempty"`
	// Multiplicity is the number of parallel channels per link
	// (0 means 1). Flattened butterfly only.
	Multiplicity int `json:"multiplicity,omitempty"`

	// Alg names the routing algorithm, in the constructor's vocabulary
	// (e.g. "MIN AD", "VAL", "UGAL", "UGAL-S", "CLOS AD" for flatfly).
	Alg string `json:"alg"`
	// Pattern names the traffic pattern: "UR", "WC", "BC", "TP", "SH",
	// "TOR", "RP", "HS" or "IC" (the internal/traffic registry's long
	// names are canonicalized to these short forms).
	Pattern string `json:"pattern"`
	// Conc is the group concentration for the WC and TOR patterns
	// (0 means K).
	Conc int `json:"conc,omitempty"`
	// Hot lists the hot terminals for the HS pattern (empty means {0});
	// IC sinks at the first entry. HotFraction is the excess traffic
	// fraction directed at the hot set (0 means 0.1).
	Hot         []int   `json:"hot,omitempty"`
	HotFraction float64 `json:"hot_fraction,omitempty"`
	// BurstPeak, when set, swaps the arrival process from Bernoulli to
	// the two-state on/off (MMPP) process bursting at BurstPeak flits
	// per node per cycle; BurstLen is the mean burst length in cycles
	// (0 means 16). Load must not exceed BurstPeak.
	BurstPeak float64 `json:"burst_peak,omitempty"`
	BurstLen  float64 `json:"burst_len,omitempty"`

	// Mode selects the measurement: ModeLoad (default), ModeSaturation
	// or ModeBatch.
	Mode string `json:"mode"`
	// Load is the offered load for ModeLoad (ModeSaturation always
	// offers 1.0).
	Load float64 `json:"load,omitempty"`
	// Warmup, Measure and MaxCycles parameterize the measurement window
	// as in sim.RunConfig. MaxCycles 0 keeps the simulator default; for
	// ModeBatch it bounds the batch drain (0 = simulator default).
	Warmup    int `json:"warmup,omitempty"`
	Measure   int `json:"measure,omitempty"`
	MaxCycles int `json:"max_cycles,omitempty"`
	// BatchSize is the per-node packet count for ModeBatch.
	BatchSize int `json:"batch_size,omitempty"`
	// Collective selects the ModeCollective schedule: "alltoall" or
	// "allreduce". Chunk is the payload per phase transfer in packets
	// (0 means 1).
	Collective string `json:"collective,omitempty"`
	Chunk      int    `json:"chunk,omitempty"`

	// Seed drives every random stream of the job's simulation.
	Seed uint64 `json:"seed"`
	// BufPerPort is the flit buffering per input port (0 means 32, the
	// paper's §3.2 configuration).
	BufPerPort int `json:"buf_per_port,omitempty"`
	// PacketSize is flits per packet (0 means 1).
	PacketSize int `json:"packet_size,omitempty"`
	// Speedup, AgeArbiter and RouterDelay map to sim.Config.
	Speedup     int  `json:"speedup,omitempty"`
	AgeArbiter  bool `json:"age_arbiter,omitempty"`
	RouterDelay int  `json:"router_delay,omitempty"`

	// Workers partitions the job's cycle core across this many worker
	// goroutines (sim.RunConfig.Workers). It is an execution detail, not
	// part of the experiment: results are bit-identical at every worker
	// count, so it is excluded from the canonical encoding and the cache
	// hash — cached results are shared across worker settings.
	Workers int `json:"-"`
}

// Normalize returns the job with every defaulted field made explicit and
// pattern aliases canonicalized, so equivalent jobs compare and hash
// equal. It does not validate; invalid jobs fail at build time.
func (j Job) Normalize() Job {
	if j.Mode == "" {
		j.Mode = ModeLoad
	}
	if j.BufPerPort == 0 {
		j.BufPerPort = 32
	}
	if j.PacketSize == 0 {
		j.PacketSize = 1
	}
	if j.Multiplicity == 0 {
		j.Multiplicity = 1
	}
	if j.ChannelLatency == 0 {
		j.ChannelLatency = 1
	}
	switch j.Net {
	case "slimfly":
		if j.P == 0 {
			j.P = topo.SlimFlyDefaultConc(j.Q)
		}
	case "dragonfly":
		if j.A == 0 {
			j.A = 2 * j.H
		}
		if j.P == 0 {
			j.P = j.H
		}
	}
	if j.Conc == 0 {
		switch j.Net {
		case "slimfly":
			j.Conc = j.P
		case "dragonfly":
			j.Conc = j.A * j.P // one group of terminals
		default:
			j.Conc = j.K
		}
	}
	switch j.Pattern {
	case "uniform":
		j.Pattern = "UR"
	case "worstcase":
		j.Pattern = "WC"
	case "bitcomp":
		j.Pattern = "BC"
	case "transpose":
		j.Pattern = "TP"
	case "shuffle":
		j.Pattern = "SH"
	case "tornado":
		j.Pattern = "TOR"
	case "randperm":
		j.Pattern = "RP"
	case "hotspot":
		j.Pattern = "HS"
	case "incast":
		j.Pattern = "IC"
	}
	if j.BurstPeak > 0 && j.BurstLen == 0 {
		j.BurstLen = 16
	}
	if j.Mode == ModeCollective {
		if j.Pattern == "" {
			j.Pattern = "UR"
		}
		if j.Chunk == 0 {
			j.Chunk = 1
		}
	}
	return j
}

// hashVersion is bumped whenever the canonical encoding or the meaning
// of any Job field changes, invalidating every cached result. v2: load
// results gained latency percentile fields (p50/p95/max), so v1-cached
// entries would replay with those fields zeroed.
const hashVersion = "sweep/v2"

// canonical renders the normalized job as a fixed-order field string.
// Every field participates, so changing any field — including seed and
// scale — yields a different hash. The slimfly/dragonfly parameters are
// appended only when set, so the encodings (and cached hashes) of every
// pre-existing job are unchanged.
func (j Job) canonical() string {
	n := j.Normalize()
	s := fmt.Sprintf("%s|net=%s|k=%d|n=%d|up=%d|lv=%d|mid=%d|cl=%d|mul=%d|alg=%s|pat=%s|conc=%d|mode=%s|load=%.17g|warm=%d|meas=%d|max=%d|batch=%d|seed=%d|buf=%d|pkt=%d|spd=%d|age=%t|rd=%d",
		hashVersion, n.Net, n.K, n.N, n.Uplinks, n.Leaves, n.Middles,
		n.ChannelLatency, n.Multiplicity, n.Alg, n.Pattern, n.Conc,
		n.Mode, n.Load, n.Warmup, n.Measure, n.MaxCycles, n.BatchSize,
		n.Seed, n.BufPerPort, n.PacketSize, n.Speedup, n.AgeArbiter,
		n.RouterDelay)
	if n.Q != 0 || n.A != 0 || n.H != 0 || n.P != 0 {
		s += fmt.Sprintf("|q=%d|a=%d|h=%d|p=%d", n.Q, n.A, n.H, n.P)
	}
	// The workload-engine fields are likewise appended only when set, so
	// every pre-existing job's encoding (and cached hash) is unchanged.
	if n.BurstPeak != 0 || n.BurstLen != 0 {
		s += fmt.Sprintf("|bp=%.17g|bl=%.17g", n.BurstPeak, n.BurstLen)
	}
	if len(n.Hot) != 0 || n.HotFraction != 0 {
		hot := make([]string, len(n.Hot))
		for i, h := range n.Hot {
			hot[i] = fmt.Sprintf("%d", h)
		}
		s += fmt.Sprintf("|hot=%s|hf=%.17g", strings.Join(hot, ","), n.HotFraction)
	}
	if n.Collective != "" || n.Chunk != 0 {
		s += fmt.Sprintf("|coll=%s|chunk=%d", n.Collective, n.Chunk)
	}
	return s
}

// Hash returns the job's stable content hash: the hex SHA-256 of the
// canonical field encoding. Equal hashes mean equal (normalized) jobs.
func (j Job) Hash() string {
	sum := sha256.Sum256([]byte(j.canonical()))
	return hex.EncodeToString(sum[:])
}

// Result is the outcome of one job. Point is filled for ModeLoad and
// ModeSaturation, Batch for ModeBatch. Results round-trip through the
// JSON-lines cache, so every persistent field is exported and tagged.
type Result struct {
	Job  Job    `json:"job"`
	Hash string `json:"hash"`
	// Point holds the load-point sample; for ModeSaturation only
	// AcceptedRate is meaningful.
	Point sim.LoadPointResult `json:"point,omitempty"`
	// Batch holds the ModeBatch outcome.
	Batch sim.BatchResult `json:"batch,omitempty"`
	// Analytic holds the graph-analytic metrics for ModeAnalytic (nil
	// for simulated modes, so pre-existing pinned results are
	// byte-identical).
	Analytic *analysis.Metrics `json:"analytic,omitempty"`
	// Collective holds the ModeCollective outcome (nil for other modes,
	// so pre-existing pinned results are byte-identical).
	Collective *sim.CollectiveResult `json:"collective,omitempty"`
	// ElapsedSeconds is the wall-clock cost of the original simulation
	// (preserved verbatim for cache hits).
	ElapsedSeconds float64 `json:"elapsed_s"`

	// Cached reports the result was served from the cache, Skipped that
	// the engine's saturation fast-path elided the simulation. Neither
	// is persisted.
	Cached  bool `json:"-"`
	Skipped bool `json:"-"`
	// WarmStart reports the simulation resumed from a warm-state
	// snapshot (skipping the warm-up phase entirely); WarmSaved that it
	// ran cold and deposited one for future runs. Warm reuse is
	// bit-identical to a cold run, so neither flag is persisted or
	// hashed.
	WarmStart bool `json:"-"`
	WarmSaved bool `json:"-"`
}
