package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"flatnet/internal/sim"
)

// WarmKey returns the job's warm-state content hash: the hash of every
// field that shapes the network's state at the end of warm-up, excluding
// the measurement-only parameters (Mode, Measure, MaxCycles, BatchSize).
// Two ModeLoad jobs with equal WarmKeys traverse identical warm-up
// trajectories, so a snapshot taken when one opens its measurement
// window is a faithful starting point for the other — that is the
// invariant the warm store trades on.
func (j Job) WarmKey() string {
	n := j.Normalize()
	s := fmt.Sprintf("%s|warm|net=%s|k=%d|n=%d|up=%d|lv=%d|mid=%d|cl=%d|mul=%d|alg=%s|pat=%s|conc=%d|load=%.17g|warm=%d|seed=%d|buf=%d|pkt=%d|spd=%d|age=%t|rd=%d",
		hashVersion, n.Net, n.K, n.N, n.Uplinks, n.Leaves, n.Middles,
		n.ChannelLatency, n.Multiplicity, n.Alg, n.Pattern, n.Conc,
		n.Load, n.Warmup, n.Seed, n.BufPerPort, n.PacketSize, n.Speedup,
		n.AgeArbiter, n.RouterDelay)
	if n.Q != 0 || n.A != 0 || n.H != 0 || n.P != 0 {
		s += fmt.Sprintf("|q=%d|a=%d|h=%d|p=%d", n.Q, n.A, n.H, n.P)
	}
	if n.BurstPeak != 0 || n.BurstLen != 0 {
		s += fmt.Sprintf("|bp=%.17g|bl=%.17g", n.BurstPeak, n.BurstLen)
	}
	if len(n.Hot) != 0 || n.HotFraction != 0 {
		hot := make([]string, len(n.Hot))
		for i, h := range n.Hot {
			hot[i] = fmt.Sprintf("%d", h)
		}
		s += fmt.Sprintf("|hot=%s|hf=%.17g", strings.Join(hot, ","), n.HotFraction)
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// WarmStore is a directory of warmed-network snapshots, one file per
// WarmKey, conventionally kept beside the JSON-lines result cache
// (e.g. results.jsonl + results.jsonl.warm/). Puts are atomic
// (temp-file + rename), so concurrent sweeps sharing a store never
// observe a torn snapshot; restore-side validation (sim.Restore's
// digest and CRC checks) catches anything else, and the engine falls
// back to a cold run when it does.
type WarmStore struct {
	dir string

	mu     sync.Mutex
	hits   int
	misses int
	puts   int
}

// WarmStats reports a warm store's accounting since open.
type WarmStats struct {
	Hits, Misses, Puts int
}

// OpenWarmStore opens (creating if needed) the snapshot directory.
func OpenWarmStore(dir string) (*WarmStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: warm store dir: %w", err)
	}
	return &WarmStore{dir: dir}, nil
}

func (s *WarmStore) file(key string) string {
	return filepath.Join(s.dir, key+".snap")
}

// Get returns the stored snapshot bytes for a warm key.
func (s *WarmStore) Get(key string) ([]byte, bool) {
	data, err := os.ReadFile(s.file(key))
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.misses++
		return nil, false
	}
	s.hits++
	return data, true
}

// Put stores a snapshot under a warm key, atomically.
func (s *WarmStore) Put(key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: warm store temp: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: warm store write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: warm store close: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.file(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: warm store rename: %w", err)
	}
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	return nil
}

// Drop removes a stored snapshot (used when restore rejects it).
func (s *WarmStore) Drop(key string) {
	os.Remove(s.file(key))
}

// Stats returns the store's current accounting.
func (s *WarmStore) Stats() WarmStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return WarmStats{Hits: s.hits, Misses: s.misses, Puts: s.puts}
}

// runWarm is Job.Run with warm-state reuse: a ModeLoad job whose
// WarmKey has a stored snapshot resumes from it (skipping the entire
// warm-up phase); a miss runs cold with a checkpoint writer armed and
// deposits the warmed state for future runs. Either way the Result is
// bit-identical to a plain cold run — the snapshot round-trip guarantee
// — so warm reuse never enters the job hash or the result cache.
func (j Job) runWarm(stop func() bool, ws *WarmStore) (Result, error) {
	j = j.Normalize()
	if ws == nil || j.Mode != ModeLoad || j.Warmup <= 0 {
		return j.Run(stop)
	}
	key := j.WarmKey()
	if data, ok := ws.Get(key); ok {
		res, err := j.runIO(stop, bytes.NewReader(data), nil)
		if err == nil {
			res.WarmStart = true
			return res, nil
		}
		if !errors.Is(err, sim.ErrResume) {
			return res, err
		}
		// The snapshot was corrupt or written by an incompatible build:
		// discard it and fall through to a cold run that replaces it.
		ws.Drop(key)
	}
	var buf bytes.Buffer
	res, err := j.runIO(stop, nil, &buf)
	if err == nil && buf.Len() > 0 {
		// A failed Put only loses future reuse; the result stands.
		if perr := ws.Put(key, buf.Bytes()); perr == nil {
			res.WarmSaved = true
		}
	}
	return res, err
}
