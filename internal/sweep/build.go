package sweep

import (
	"errors"
	"fmt"
	"io"

	"flatnet/internal/analysis"
	"flatnet/internal/check"
	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// build materializes the job's network, routing algorithm, traffic
// pattern and simulator configuration. Parameter conventions per Net:
//
//	"flatfly"    K-ary N-flat; honors ChannelLatency and Multiplicity.
//	             Algs: "MIN AD", "VAL", "UGAL", "UGAL-S", "CLOS AD"
//	             (and the short forms routing.NewFlatFlyAlgorithm takes).
//	"butterfly"  K-ary N-fly. Alg: "destination".
//	"foldedclos" K terminals per leaf, Uplinks, Leaves, Middles.
//	             Alg: "adaptive sequential".
//	"hypercube"  N-dimensional binary hypercube. Alg: "e-cube".
//	"slimfly"    MMS Slim Fly over GF(Q), P terminals per router
//	             (0 = ⌈k'/2⌉). Algs: "min", "val", "ugal", "ugal-s".
//	"dragonfly"  H global channels per router, A routers per group
//	             (0 = 2H), P terminals per router (0 = H).
//	             Algs: "min", "val", "ugal", "ugal-s".
func (j Job) build() (*topo.Graph, sim.Algorithm, traffic.Pattern, sim.Config, error) {
	j = j.Normalize()
	var (
		g   *topo.Graph
		alg sim.Algorithm
	)
	switch j.Net {
	case "flatfly":
		var opts []core.Option
		if j.ChannelLatency != 1 {
			opts = append(opts, core.WithChannelLatency(j.ChannelLatency))
		}
		if j.Multiplicity != 1 {
			opts = append(opts, core.WithMultiplicity(j.Multiplicity))
		}
		f, err := core.NewFlatFly(j.K, j.N, opts...)
		if err != nil {
			return nil, nil, nil, sim.Config{}, err
		}
		alg, err = routing.NewFlatFlyAlgorithm(j.Alg, f)
		if err != nil {
			return nil, nil, nil, sim.Config{}, err
		}
		g = f.Graph()
	case "butterfly":
		b, err := topo.NewButterfly(j.K, j.N)
		if err != nil {
			return nil, nil, nil, sim.Config{}, err
		}
		if j.Alg != "destination" {
			return nil, nil, nil, sim.Config{}, fmt.Errorf("sweep: butterfly supports alg \"destination\", not %q", j.Alg)
		}
		alg = routing.NewButterflyDest(b)
		g = b.Graph()
	case "foldedclos":
		fc, err := topo.NewFoldedClos(j.K, j.Uplinks, j.Leaves, j.Middles)
		if err != nil {
			return nil, nil, nil, sim.Config{}, err
		}
		if j.Alg != "adaptive sequential" {
			return nil, nil, nil, sim.Config{}, fmt.Errorf("sweep: foldedclos supports alg \"adaptive sequential\", not %q", j.Alg)
		}
		alg = routing.NewFoldedClosAdaptive(fc)
		g = fc.Graph()
	case "hypercube":
		h, err := topo.NewHypercube(j.N)
		if err != nil {
			return nil, nil, nil, sim.Config{}, err
		}
		if j.Alg != "e-cube" {
			return nil, nil, nil, sim.Config{}, fmt.Errorf("sweep: hypercube supports alg \"e-cube\", not %q", j.Alg)
		}
		alg = routing.NewECube(h)
		g = h.Graph()
	case "slimfly":
		s, err := topo.NewSlimFly(j.Q, j.P)
		if err != nil {
			return nil, nil, nil, sim.Config{}, err
		}
		alg, err = routing.NewSlimFlyAlgorithm(j.Alg, s)
		if err != nil {
			return nil, nil, nil, sim.Config{}, err
		}
		g = s.Graph()
	case "dragonfly":
		d, err := topo.NewDragonfly(j.P, j.A, j.H)
		if err != nil {
			return nil, nil, nil, sim.Config{}, err
		}
		alg, err = routing.NewDragonflyAlgorithm(j.Alg, d)
		if err != nil {
			return nil, nil, nil, sim.Config{}, err
		}
		g = d.Graph()
	default:
		return nil, nil, nil, sim.Config{}, fmt.Errorf("sweep: unknown network constructor %q", j.Net)
	}

	pat, err := j.buildPattern(g.NumNodes)
	if err != nil {
		return nil, nil, nil, sim.Config{}, err
	}
	cfg := sim.Config{
		Seed:        j.Seed,
		BufPerPort:  j.BufPerPort,
		PacketSize:  j.PacketSize,
		Speedup:     j.Speedup,
		AgeArbiter:  j.AgeArbiter,
		RouterDelay: j.RouterDelay,
	}
	return g, alg, pat, cfg, nil
}

// buildTopology constructs just the job's topology. ModeAnalytic needs
// no routing algorithm or traffic pattern, so analytic jobs may leave
// Alg and Pattern empty.
func (j Job) buildTopology() (topo.Topology, error) {
	j = j.Normalize()
	switch j.Net {
	case "flatfly":
		var opts []core.Option
		if j.ChannelLatency != 1 {
			opts = append(opts, core.WithChannelLatency(j.ChannelLatency))
		}
		if j.Multiplicity != 1 {
			opts = append(opts, core.WithMultiplicity(j.Multiplicity))
		}
		return core.NewFlatFly(j.K, j.N, opts...)
	case "butterfly":
		return topo.NewButterfly(j.K, j.N)
	case "foldedclos":
		return topo.NewFoldedClos(j.K, j.Uplinks, j.Leaves, j.Middles)
	case "hypercube":
		return topo.NewHypercube(j.N)
	case "slimfly":
		return topo.NewSlimFly(j.Q, j.P)
	case "dragonfly":
		return topo.NewDragonfly(j.P, j.A, j.H)
	default:
		return nil, fmt.Errorf("sweep: unknown network constructor %q", j.Net)
	}
}

// runAnalytic fills the result for ModeAnalytic: graph-analytic metrics
// from internal/analysis plus the zero-load latency model standing in
// for the load-point sample, so analytic sweeps emit the same Result
// shape as simulated ones.
func (j Job) runAnalytic(res *Result) error {
	t, err := j.buildTopology()
	if err != nil {
		return err
	}
	m, err := analysis.AnalyzeTopology(t)
	if err != nil {
		return err
	}
	cfg := sim.Config{
		PacketSize:  j.PacketSize,
		RouterDelay: j.RouterDelay,
	}
	zl, err := routing.ZeroLoadFor(t.Graph(), cfg, m.AvgHops)
	if err != nil {
		return err
	}
	res.Analytic = &m
	res.Point.AvgHops = m.AvgHops
	res.Point.AvgLatency = zl.Latency()
	return nil
}

// buildPattern constructs the job's traffic pattern for an n-node
// network through the internal/traffic registry: group patterns (WC,
// TOR) use Conc terminals per group, HS/IC consume Hot and HotFraction,
// and an unknown name surfaces as a *traffic.UnknownPatternError.
func (j Job) buildPattern(nodes int) (traffic.Pattern, error) {
	hot := make([]topo.NodeID, len(j.Hot))
	for i, h := range j.Hot {
		hot[i] = topo.NodeID(h)
	}
	return traffic.Build(j.Pattern, traffic.BuildCtx{
		Nodes:         nodes,
		Seed:          j.Seed,
		Concentration: j.Conc,
		HotSet:        hot,
		HotFraction:   j.HotFraction,
	})
}

// buildSource wraps the job's pattern in its arrival process: the
// two-state on/off process when BurstPeak is set, Bernoulli otherwise.
func (j Job) buildSource(pat traffic.Pattern) (traffic.Source, error) {
	if j.BurstPeak > 0 {
		return traffic.NewOnOff(pat, j.BurstPeak, j.BurstLen)
	}
	return traffic.NewBernoulli(pat), nil
}

// Run executes the job and returns its result. stop, when non-nil, is
// polled by the simulator; returning true aborts the run with
// sim.ErrStopped. Run is safe to call from concurrent goroutines: every
// invocation builds a private network and RNG from the job's seed, which
// is what makes parallel sweeps bit-identical to sequential ones.
func (j Job) Run(stop func() bool) (Result, error) {
	return j.run(stop, nil, nil, nil)
}

// runIO is Run with the snapshot plumbing exposed: resume, when
// non-nil, restores the job's network from a warmed snapshot instead of
// building cold; checkpoint, when non-nil, receives a snapshot of the
// warmed network the moment the measurement window opens. ModeLoad
// only; see WarmStore for the reuse policy built on top.
func (j Job) runIO(stop func() bool, resume io.Reader, checkpoint io.Writer) (Result, error) {
	return j.run(stop, nil, resume, checkpoint)
}

// RunChecked is Run with the internal/check runtime sanitizer attached
// to the job's network: every flit-conservation, credit, virtual-channel
// and progress invariant is asserted throughout the run, and any
// violation fails the job. The sanitizer observes without perturbing, so
// a checked job's Result is bit-identical to an unchecked one — which is
// why Check is an Engine attribute rather than a hashed Job field.
func (j Job) RunChecked(stop func() bool) (Result, error) {
	var sans []*check.Sanitizer
	res, err := j.run(stop, func(n *sim.Network) {
		sans = append(sans, check.Attach(n, check.Config{}))
	}, nil, nil)
	if err != nil {
		return res, err
	}
	var errs []error
	for _, s := range sans {
		if ferr := s.Finalize(); ferr != nil {
			errs = append(errs, ferr)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return res, fmt.Errorf("sweep: job %s (%s %s %s) failed invariant checks: %w",
			res.Hash[:12], j.Net, j.Alg, j.Mode, err)
	}
	return res, nil
}

// run is the shared body of Run, RunChecked and runIO: attach, when
// non-nil, receives the job's freshly built network before the first
// cycle; resume and checkpoint plug into the ModeLoad snapshot plumbing
// (sim.RunConfig.Resume/Checkpoint) and are ignored by other modes.
func (j Job) run(stop func() bool, attach func(*sim.Network), resume io.Reader, checkpoint io.Writer) (Result, error) {
	j = j.Normalize()
	res := Result{Job: j, Hash: j.Hash()}
	if j.Mode == ModeAnalytic {
		if err := j.runAnalytic(&res); err != nil {
			return res, fmt.Errorf("sweep: job %s (%s %s): %w", j.Hash()[:12], j.Net, j.Mode, err)
		}
		return res, nil
	}
	g, alg, pat, cfg, err := j.build()
	if err != nil {
		return res, err
	}
	var burst *sim.BurstConfig
	if j.BurstPeak > 0 {
		burst = &sim.BurstConfig{Peak: j.BurstPeak, AvgBurst: j.BurstLen}
	}
	switch j.Mode {
	case ModeLoad:
		rc := sim.RunConfig{
			Load: j.Load, Pattern: pat, Burst: burst,
			Warmup: j.Warmup, Measure: j.Measure, MaxCycles: j.MaxCycles,
			Stop: stop, Attach: attach, Workers: j.Workers,
			Resume: resume, Checkpoint: checkpoint,
		}
		res.Point, err = sim.RunLoadPoint(g, alg, cfg, rc)
	case ModeSaturation:
		// Full offered load, no drain: the accepted rate over the
		// measurement window is the figure of merit.
		rc := sim.RunConfig{
			Load: 1.0, Pattern: pat, Burst: burst,
			Warmup: j.Warmup, Measure: j.Measure,
			MaxCycles: j.Warmup + j.Measure + 1,
			Stop:      stop, Attach: attach, Workers: j.Workers,
		}
		res.Point, err = sim.RunLoadPoint(g, alg, cfg, rc)
	case ModeBatch:
		res.Batch, err = sim.RunBatch(g, alg, cfg, sim.BatchConfig{
			Pattern: pat, BatchSize: j.BatchSize, MaxCycles: j.MaxCycles,
			Stop: stop, Attach: attach, Workers: j.Workers,
		})
	case ModeCollective:
		cc := sim.CollectiveConfig{
			Kind: j.Collective, Packets: j.Chunk,
			Warmup: j.Warmup, MaxCycles: int64(j.MaxCycles),
			Stop: stop, Attach: attach, Workers: j.Workers,
		}
		if j.Load > 0 {
			cc.Load = j.Load
			cc.Source, err = j.buildSource(pat)
			if err != nil {
				return res, fmt.Errorf("sweep: job %s: %w", j.Hash()[:12], err)
			}
		}
		var cr sim.CollectiveResult
		cr, err = sim.RunCollective(g, alg, cfg, cc)
		if err == nil {
			res.Collective = &cr
		}
	default:
		err = fmt.Errorf("sweep: unknown mode %q", j.Mode)
	}
	if err != nil {
		return res, fmt.Errorf("sweep: job %s (%s %s %s load %.2f): %w", j.Hash()[:12], j.Net, j.Alg, j.Mode, j.Load, err)
	}
	return res, nil
}
