package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Engine executes batches of Jobs on a worker pool. The zero value is a
// usable sequential engine; set Workers for parallelism, Cache for
// durable result reuse and Progress for live reporting. An Engine may be
// reused across Run calls; Stats accumulate over its lifetime.
type Engine struct {
	// Workers is the pool size. <= 0 selects GOMAXPROCS.
	Workers int
	// Cache, when non-nil, is consulted before simulating and appended
	// to after. Identical jobs within one Run are also deduplicated and
	// simulated once.
	Cache *Cache
	// Progress, when non-nil, receives live progress/ETA lines and the
	// final per-worker throughput report (typically os.Stderr).
	Progress io.Writer
	// JobTimeout is the per-job wall-clock budget; a job exceeding it
	// fails with an error (0 = no budget). The per-job *cycle* budget is
	// the job's own MaxCycles.
	JobTimeout time.Duration
	// Check runs every simulated job under the internal/check runtime
	// sanitizer (Job.RunChecked): invariant violations fail the job.
	// Results are bit-identical either way, so Check does not enter the
	// job hash — but note that cache hits are served without re-checking.
	// Building with -tags=check turns Check on for every engine.
	Check bool
	// Warm, when non-nil, enables warm-state reuse for ModeLoad jobs:
	// a job whose WarmKey has a stored snapshot resumes from it instead
	// of re-simulating its warm-up, and cold runs deposit their warmed
	// state for future sweeps. Results are bit-identical either way.
	// Ignored when Check is armed (the sanitizer must observe the run
	// from cycle zero).
	Warm *WarmStore

	mu    sync.Mutex
	stats Stats
	live  liveCounters
}

// WorkerStats is one worker's lifetime accounting.
type WorkerStats struct {
	Jobs int           // simulations executed (cache hits and skips excluded)
	Busy time.Duration // wall-clock time spent inside those simulations
}

// Stats accumulates an engine's lifetime accounting across Run calls.
type Stats struct {
	Jobs      int // jobs requested
	Simulated int // jobs actually simulated
	CacheHits int // jobs served from the cache
	Deduped   int // duplicate jobs coalesced within a Run
	Skipped   int // jobs elided by a skip predicate (saturation fast-path)
	Failed    int // jobs that returned an error
	// WarmHits counts simulations resumed from a warm-state snapshot,
	// WarmPuts the cold runs that deposited one, and WarmCyclesSaved the
	// total warm-up cycles not re-simulated thanks to those hits.
	WarmHits        int
	WarmPuts        int
	WarmCyclesSaved int64
	Workers         []WorkerStats
}

// Stats returns a copy of the engine's accumulated statistics.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.Workers = append([]WorkerStats(nil), e.stats.Workers...)
	return s
}

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes jobs and returns their results in job order. Cache hits
// skip simulation; remaining jobs are deduplicated by hash and fanned
// across the worker pool. Individual job failures do not stop the batch:
// every runnable job still runs, and the failures come back as one
// aggregated error alongside the partial results. Cancelling ctx stops
// feeding the pool, interrupts in-flight simulations and returns
// ctx.Err().
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	return e.run(ctx, jobs, nil, nil)
}

// run is Run plus two hooks used by RunSeries: skip is consulted when a
// job is dequeued (true elides the simulation and yields a zero result
// marked Skipped), and onDone observes every settled result, including
// cache hits, from whichever goroutine settled it.
func (e *Engine) run(ctx context.Context, jobs []Job, skip func(int) bool, onDone func(int, Result)) ([]Result, error) {
	nw := e.workers()
	jobs = append([]Job(nil), jobs...) // normalized locally; callers keep their spec
	results := make([]Result, len(jobs))
	hashes := make([]string, len(jobs))
	e.live.submitted.Add(int64(len(jobs)))
	prog := newProgress(e.Progress, e, len(jobs), nw)

	// Settle cache hits up front and coalesce duplicate hashes so each
	// distinct simulation runs exactly once.
	var pending []int         // primary job index per distinct hash
	dup := map[string][]int{} // hash -> follower job indices
	prim := map[string]bool{} // hash has a primary already
	var nhits, ndup int
	for i, j := range jobs {
		jn := j.Normalize()
		jobs[i] = jn
		hashes[i] = jn.Hash()
		if e.Cache != nil {
			if r, ok := e.Cache.Get(hashes[i]); ok {
				results[i] = r
				nhits++
				e.live.cacheHits.Add(1)
				e.live.done.Add(1)
				prog.step()
				if onDone != nil {
					onDone(i, r)
				}
				continue
			}
		}
		if prim[hashes[i]] {
			dup[hashes[i]] = append(dup[hashes[i]], i)
			ndup++
			continue
		}
		prim[hashes[i]] = true
		pending = append(pending, i)
	}

	var (
		wg      sync.WaitGroup
		errMu   sync.Mutex
		jobErrs []error
		wstats  = make([]WorkerStats, nw)
		nsim    int
		nskip   int
		nfail   int

		nwarmhit   int
		nwarmput   int
		warmCycles int64
	)
	countMu := &errMu // one lock guards jobErrs and the counters below
	feed := make(chan int)
	go func() {
		defer close(feed)
		for _, i := range pending {
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range feed {
				if ctx.Err() != nil {
					return
				}
				if skip != nil && skip(i) {
					results[i] = Result{Job: jobs[i], Hash: hashes[i], Skipped: true}
					countMu.Lock()
					nskip++
					countMu.Unlock()
					e.live.skipped.Add(1)
					e.live.done.Add(1)
					prog.step()
					if onDone != nil {
						onDone(i, results[i])
					}
					continue
				}
				start := time.Now()
				stop := e.stopFunc(ctx, start)
				e.live.inFlight.Add(1)
				run := jobs[i].Run
				if e.Check || autoCheck {
					run = jobs[i].RunChecked
				} else if e.Warm != nil {
					jb := jobs[i]
					run = func(stop func() bool) (Result, error) {
						return jb.runWarm(stop, e.Warm)
					}
				}
				r, err := run(stop)
				elapsed := time.Since(start)
				e.live.inFlight.Add(-1)
				e.live.busyNanos.Add(int64(elapsed))
				wstats[w].Jobs++
				wstats[w].Busy += elapsed
				if err != nil {
					if ctx.Err() != nil {
						return // cancelled, not a job failure
					}
					if e.JobTimeout > 0 && elapsed >= e.JobTimeout {
						err = fmt.Errorf("%w (wall-clock budget %v exceeded)", err, e.JobTimeout)
					}
					countMu.Lock()
					jobErrs = append(jobErrs, err)
					nfail++
					countMu.Unlock()
					e.live.failed.Add(1)
					e.live.done.Add(1)
					prog.step()
					continue
				}
				r.ElapsedSeconds = elapsed.Seconds()
				results[i] = r
				countMu.Lock()
				nsim++
				if r.WarmStart {
					nwarmhit++
					warmCycles += int64(r.Job.Warmup)
				}
				if r.WarmSaved {
					nwarmput++
				}
				countMu.Unlock()
				if e.Cache != nil {
					if cerr := e.Cache.Put(r); cerr != nil {
						countMu.Lock()
						jobErrs = append(jobErrs, cerr)
						countMu.Unlock()
					}
				}
				e.live.simulated.Add(1)
				e.live.done.Add(1)
				prog.step()
				if onDone != nil {
					onDone(i, r)
				}
			}
		}(w)
	}
	wg.Wait()

	// Followers of a deduplicated hash share the primary's result.
	for h, followers := range dup {
		for _, i := range followers {
			for _, p := range pending {
				if hashes[p] == h {
					results[i] = results[p]
					break
				}
			}
			e.live.deduped.Add(1)
			e.live.done.Add(1)
			if onDone != nil {
				onDone(i, results[i])
			}
		}
	}

	e.mu.Lock()
	e.stats.Jobs += len(jobs)
	e.stats.Simulated += nsim
	e.stats.CacheHits += nhits
	e.stats.Deduped += ndup
	e.stats.Skipped += nskip
	e.stats.Failed += nfail
	e.stats.WarmHits += nwarmhit
	e.stats.WarmPuts += nwarmput
	e.stats.WarmCyclesSaved += warmCycles
	if len(e.stats.Workers) < nw {
		e.stats.Workers = append(e.stats.Workers, make([]WorkerStats, nw-len(e.stats.Workers))...)
	}
	for w := range wstats {
		e.stats.Workers[w].Jobs += wstats[w].Jobs
		e.stats.Workers[w].Busy += wstats[w].Busy
	}
	e.mu.Unlock()
	prog.finish(wstats)

	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, errors.Join(jobErrs...)
}

// stopFunc builds a job's Stop hook from the run context and the
// engine's wall-clock budget.
func (e *Engine) stopFunc(ctx context.Context, start time.Time) func() bool {
	if e.JobTimeout <= 0 {
		return func() bool { return ctx.Err() != nil }
	}
	deadline := start.Add(e.JobTimeout)
	return func() bool { return ctx.Err() != nil || time.Now().After(deadline) }
}
