package sweep

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestCacheHitMissAccounting runs a batch cold then warm and checks the
// hit/miss ledgers on both the cache and the engine.
func TestCacheHitMissAccounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	jobs := []Job{tinyJob("VAL", 0.2), tinyJob("VAL", 0.5), tinyJob("CLOS AD", 0.5)}

	cold, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Workers: 2, Cache: cold}
	first, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Hits != 0 || st.Misses != len(jobs) || st.Entries != len(jobs) {
		t.Errorf("cold cache stats: %+v", st)
	}
	if st := eng.Stats(); st.Simulated != len(jobs) || st.CacheHits != 0 {
		t.Errorf("cold engine stats: %+v", st)
	}
	cold.Close()

	// A fresh process re-opening the same file must serve every job from
	// cache and simulate nothing.
	warm, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	eng2 := &Engine{Workers: 2, Cache: warm}
	second, err := eng2.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Hits != len(jobs) || st.Misses != 0 {
		t.Errorf("warm cache stats: %+v", st)
	}
	if st := eng2.Stats(); st.Simulated != 0 || st.CacheHits != len(jobs) {
		t.Errorf("warm engine stats: %+v", st)
	}
	for i := range jobs {
		if !second[i].Cached {
			t.Errorf("job %d not marked cached", i)
		}
		a, b := first[i], second[i]
		a.Cached, b.Cached = false, false
		if !reflect.DeepEqual(a, b) {
			t.Errorf("job %d: cached result differs from computed:\n%+v\n%+v", i, a, b)
		}
	}
}

// TestCacheInvalidationOnFieldChange: a changed seed or scale is a
// different job, so it must miss a cache warmed with the original.
func TestCacheInvalidationOnFieldChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	base := tinyJob("VAL", 0.3)
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	eng := &Engine{Workers: 1, Cache: c}
	if _, err := eng.Run(context.Background(), []Job{base}); err != nil {
		t.Fatal(err)
	}

	reseeded := base
	reseeded.Seed = 99
	rescaled := base
	rescaled.K = 8
	rewindowed := base
	rewindowed.Measure = 200
	if _, err := eng.Run(context.Background(), []Job{base, reseeded, rescaled, rewindowed}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	// Across both runs: base simulates once then hits once; each of the
	// three mutated jobs is a distinct hash and must simulate.
	if st.CacheHits != 1 || st.Simulated != 4 {
		t.Errorf("expected 1 hit and 4 simulations across runs, got %+v", st)
	}
}

// TestCacheCorruptLineRecovery interleaves garbage, truncated JSON,
// hash-mismatched entries and valid lines; opening must keep the valid
// entries, count the rest as corrupt, and keep the file appendable.
func TestCacheCorruptLineRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	goodJob := tinyJob("VAL", 0.2)
	good, err := goodJob.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	goodLine, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	tampered := good
	tampered.Hash = strings.Repeat("0", 64) // claims a hash its job does not have
	tamperedLine, _ := json.Marshal(tampered)
	content := strings.Join([]string{
		"not json at all",
		string(goodLine),
		string(goodLine[:len(goodLine)/2]), // torn write
		string(tamperedLine),
		`{"hash":"","job":{}}`, // parses but has no hash
		"",
	}, "\n")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if st := c.Stats(); st.Entries != 1 || st.Corrupt != 4 {
		t.Fatalf("expected 1 entry + 4 corrupt lines, got %+v", st)
	}
	if _, ok := c.Get(goodJob.Hash()); !ok {
		t.Error("valid entry lost among corrupt lines")
	}

	// The surviving cache still serves and extends: the good job hits,
	// a new job simulates and persists.
	eng := &Engine{Workers: 1, Cache: c}
	if _, err := eng.Run(context.Background(), []Job{goodJob, tinyJob("VAL", 0.7)}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.CacheHits != 1 || st.Simulated != 1 {
		t.Errorf("post-recovery run stats: %+v", st)
	}
	reopened, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if st := reopened.Stats(); st.Entries != 2 {
		t.Errorf("expected 2 entries after append, got %+v", st)
	}
}

// TestCacheRejectsSkippedResults: fast-path skips are not durable facts.
func TestCacheRejectsSkippedResults(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "cache.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(Result{Hash: "x", Skipped: true}); err == nil {
		t.Error("skipped result cached")
	}
}
