//go:build !check

package sweep

// autoCheck is off in normal builds; Engine.Check opts individual
// engines into sanitized execution.
const autoCheck = false
