package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cache is a durable job-result store: one JSON line per result, keyed
// by the job's content hash. Opening a cache loads every valid line into
// memory (last entry wins); corrupt or stale lines — truncated writes,
// hand edits, results from an older hash version — are counted and
// skipped, never fatal. Puts append immediately, so a crashed sweep
// loses at most the line being written.
//
// A Cache is safe for concurrent use by the engine's workers.
type Cache struct {
	path string

	mu      sync.Mutex
	f       *os.File
	entries map[string]Result
	hits    int
	misses  int
	corrupt int
}

// CacheStats reports a cache's accounting: lookup hits and misses since
// open, resident entries, and corrupt lines dropped while loading.
type CacheStats struct {
	Hits, Misses, Entries, Corrupt int
}

// OpenCache opens (creating if needed) the JSON-lines cache at path and
// loads its entries. The parent directory is created as well.
func OpenCache(path string) (*Cache, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("sweep: cache dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	c := &Cache{path: path, f: f, entries: make(map[string]Result)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Result
		// A loadable entry must parse and its recorded hash must match
		// the hash recomputed from the job it claims to describe —
		// anything else (corruption, a stale hashVersion, a tampered
		// line) is dropped.
		if err := json.Unmarshal(line, &r); err != nil || r.Hash == "" || r.Job.Hash() != r.Hash {
			c.corrupt++
			continue
		}
		c.entries[r.Hash] = r
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: read cache %s: %w", path, err)
	}
	return c, nil
}

// Get returns the cached result for a job hash and records the lookup as
// a hit or miss.
func (c *Cache) Get(hash string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[hash]
	if ok {
		c.hits++
		r.Cached = true
	} else {
		c.misses++
	}
	return r, ok
}

// Put stores a freshly computed result, appending it to the cache file.
// Skipped results are not durable facts about a job and are rejected.
func (c *Cache) Put(r Result) error {
	if r.Skipped {
		return fmt.Errorf("sweep: refusing to cache a skipped result")
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("sweep: encode cache line: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return fmt.Errorf("sweep: cache %s is closed", c.path)
	}
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sweep: append cache %s: %w", c.path, err)
	}
	c.entries[r.Hash] = r
	return nil
}

// Stats returns the cache's current accounting.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries), Corrupt: c.corrupt}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Close releases the underlying file. The in-memory view stays readable.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
