package sweep

import (
	"context"
	"sync"

	"flatnet/internal/sim"
)

// SeriesSpec describes one latency-versus-load curve: the Base job run
// once per load in ascending order, optionally followed by a
// saturation-throughput measurement at full offered load.
type SeriesSpec struct {
	// Base is the job template; its Mode and Load fields are overridden
	// per point.
	Base Job
	// Loads is the offered-load sweep, ascending.
	Loads []float64
	// Saturation adds a ModeSaturation job sharing Base's windows.
	Saturation bool
}

// SeriesResult is one curve's outcome, shaped like the sequential
// sim.LoadSweep path: once two consecutive points saturate, every higher
// load is reported as a bare saturated point without being simulated.
type SeriesResult struct {
	Points               []sim.LoadPointResult
	SaturationThroughput float64
}

// RunSeries executes a set of load sweeps as one flat job batch, so
// points from every curve fill the worker pool together. It preserves
// the sequential early-exit semantics exactly: each point's simulation
// is a pure function of its job, and the post-saturation tail collapse
// is applied to the completed results, so a parallel RunSeries is
// bit-identical to running sim.LoadSweep per curve.
//
// As a fast-path, a point is skipped outright (never simulated) when two
// consecutive lower-load points of its own curve have already completed
// saturated — the sequential path would provably never have run it.
func (e *Engine) RunSeries(ctx context.Context, specs []SeriesSpec) ([]SeriesResult, error) {
	var jobs []Job
	type span struct{ start, sat int } // sat = -1 when absent
	spans := make([]span, len(specs))
	series := make([]int, 0) // flat job index -> spec index
	offset := make([]int, 0) // flat job index -> load index (-1 for saturation)
	for si, sp := range specs {
		spans[si].start = len(jobs)
		spans[si].sat = -1
		for _, l := range sp.Loads {
			j := sp.Base
			j.Mode = ModeLoad
			j.Load = l
			jobs = append(jobs, j)
			series = append(series, si)
			offset = append(offset, len(jobs)-1-spans[si].start)
		}
		if sp.Saturation {
			j := sp.Base
			j.Mode = ModeSaturation
			j.Load = 0
			j.MaxCycles = 0
			spans[si].sat = len(jobs)
			jobs = append(jobs, j)
			series = append(series, si)
			offset = append(offset, -1)
		}
	}

	// saturated[si][li] records completed load points: unknown (0),
	// not-saturated (1) or saturated (2).
	tr := &satTracker{state: make([][]uint8, len(specs))}
	for si, sp := range specs {
		tr.state[si] = make([]uint8, len(sp.Loads))
	}
	skip := func(i int) bool {
		li := offset[i]
		if li < 0 {
			return false // saturation jobs always run
		}
		return tr.tailKnown(series[i], li)
	}
	onDone := func(i int, r Result) {
		li := offset[i]
		if li < 0 || r.Skipped {
			return
		}
		tr.record(series[i], li, r.Point.Saturated)
	}
	results, err := e.run(ctx, jobs, skip, onDone)
	if err != nil {
		return nil, err
	}

	out := make([]SeriesResult, len(specs))
	for si, sp := range specs {
		pts := make([]sim.LoadPointResult, len(sp.Loads))
		satRun := 0
		for li, l := range sp.Loads {
			r := results[spans[si].start+li]
			if satRun >= 2 || r.Skipped {
				// The sequential path stops simulating here and emits
				// bare saturated markers for the rest of the sweep.
				pts[li] = sim.LoadPointResult{Load: l, Saturated: true}
				satRun++
				continue
			}
			pts[li] = r.Point
			if r.Point.Saturated {
				satRun++
			} else {
				satRun = 0
			}
		}
		out[si] = SeriesResult{Points: pts}
		if spans[si].sat >= 0 {
			out[si].SaturationThroughput = results[spans[si].sat].Point.AcceptedRate
		}
	}
	return out, nil
}

// satTracker shares completed saturation outcomes between workers so the
// skip predicate can elide provably-dead points.
type satTracker struct {
	mu    sync.Mutex
	state [][]uint8 // 0 unknown, 1 completed not saturated, 2 completed saturated
}

func (t *satTracker) record(si, li int, saturated bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if saturated {
		t.state[si][li] = 2
	} else {
		t.state[si][li] = 1
	}
}

// tailKnown reports whether two consecutive completed-saturated points
// exist strictly below load index li — exactly the condition under which
// the sequential sweep would already have stopped before reaching li.
func (t *satTracker) tailKnown(si, li int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state[si]
	for j := 0; j+1 < li; j++ {
		if s[j] == 2 && s[j+1] == 2 {
			return true
		}
	}
	return false
}
