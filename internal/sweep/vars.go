package sweep

import (
	"sync/atomic"
	"time"

	"flatnet/internal/telemetry"
)

// liveCounters is the engine's lock-free live accounting, updated at
// every job-settle point in run(). Unlike Stats (which is folded in
// under a mutex once per Run), these are readable mid-batch from any
// goroutine — they back the progress reporter and the -listen metrics
// endpoint.
type liveCounters struct {
	submitted atomic.Int64 // jobs handed to Run, cumulatively
	done      atomic.Int64 // jobs settled (any outcome)
	simulated atomic.Int64 // jobs actually simulated
	cacheHits atomic.Int64 // jobs served from the cache
	deduped   atomic.Int64 // duplicate jobs coalesced within a Run
	skipped   atomic.Int64 // jobs elided by a skip predicate
	failed    atomic.Int64 // jobs that returned an error
	inFlight  atomic.Int64 // simulations executing right now
	busyNanos atomic.Int64 // wall-clock nanoseconds inside simulations
}

// Vars is a point-in-time snapshot of an Engine's live counters, shaped
// for JSON export (expvar gauges marshal it directly). The identity
// Simulated + CacheHits + Deduped + Skipped + Failed == JobsDone holds
// whenever no batch is mid-flight.
type Vars struct {
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsDone      int64 `json:"jobs_done"`
	JobsInFlight  int64 `json:"jobs_in_flight"`
	Simulated     int64 `json:"simulated"`
	CacheHits     int64 `json:"cache_hits"`
	Deduped       int64 `json:"deduped"`
	Skipped       int64 `json:"skipped"`
	Failed        int64 `json:"failed"`
	// BusySeconds is the summed wall-clock time workers have spent inside
	// simulations; divide by (elapsed x Workers) for pool utilization.
	BusySeconds float64 `json:"busy_seconds"`
	// Workers is the pool size the engine would use for its next batch.
	Workers int `json:"workers"`
	// CacheHitRate is CacheHits / JobsDone (0 when nothing has settled).
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Vars snapshots the engine's live counters. It is safe to call from any
// goroutine, including while a Run is in progress.
func (e *Engine) Vars() Vars {
	v := Vars{
		JobsSubmitted: e.live.submitted.Load(),
		JobsDone:      e.live.done.Load(),
		JobsInFlight:  e.live.inFlight.Load(),
		Simulated:     e.live.simulated.Load(),
		CacheHits:     e.live.cacheHits.Load(),
		Deduped:       e.live.deduped.Load(),
		Skipped:       e.live.skipped.Load(),
		Failed:        e.live.failed.Load(),
		BusySeconds:   time.Duration(e.live.busyNanos.Load()).Seconds(),
		Workers:       e.workers(),
	}
	if v.JobsDone > 0 {
		v.CacheHitRate = float64(v.CacheHits) / float64(v.JobsDone)
	}
	return v
}

// PublishVars registers the engine's live counters on a telemetry
// registry as the "sweep_engine" gauge, so a metrics endpoint serving
// the registry exposes worker utilization, cache hit rate and jobs in
// flight mid-run.
func (e *Engine) PublishVars(r *telemetry.Registry) {
	r.Gauge("sweep_engine", func() any { return e.Vars() })
}
