package sweep

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"flatnet/internal/sim"
	"flatnet/internal/traffic"
)

// tinyJob is a fast (few-ms) flattened-butterfly load point used to keep
// the engine tests cheap.
func tinyJob(alg string, load float64) Job {
	return Job{
		Net: "flatfly", K: 4, N: 2,
		Alg: alg, Pattern: "UR",
		Load:   load,
		Warmup: 100, Measure: 100, MaxCycles: 2000,
		Seed: 7,
	}
}

func TestJobHashStability(t *testing.T) {
	j := tinyJob("CLOS AD", 0.5)
	if j.Hash() != j.Hash() {
		t.Fatal("hash not deterministic")
	}
	// Normalization: explicit defaults hash like implicit ones.
	k := j
	k.BufPerPort = 32
	k.PacketSize = 1
	k.Mode = ModeLoad
	k.Multiplicity = 1
	k.ChannelLatency = 1
	k.Conc = k.K
	if j.Hash() != k.Hash() {
		t.Error("normalized defaults changed the hash")
	}
	// Pattern aliases canonicalize.
	u := j
	u.Pattern = "uniform"
	if j.Hash() != u.Hash() {
		t.Error("pattern alias changed the hash")
	}
}

// TestJobHashInvalidation asserts that changing any job field — seed and
// scale included — changes the hash, which is what invalidates cache
// entries when a spec changes.
func TestJobHashInvalidation(t *testing.T) {
	base := tinyJob("CLOS AD", 0.5)
	mutations := map[string]func(*Job){
		"Net":            func(j *Job) { j.Net = "butterfly" },
		"K":              func(j *Job) { j.K = 8 },
		"N":              func(j *Job) { j.N = 3 },
		"Uplinks":        func(j *Job) { j.Uplinks = 2 },
		"Leaves":         func(j *Job) { j.Leaves = 4 },
		"Middles":        func(j *Job) { j.Middles = 2 },
		"Q":              func(j *Job) { j.Q = 5 },
		"A":              func(j *Job) { j.A = 4 },
		"H":              func(j *Job) { j.H = 2 },
		"P":              func(j *Job) { j.P = 3 },
		"ChannelLatency": func(j *Job) { j.ChannelLatency = 16 },
		"Multiplicity":   func(j *Job) { j.Multiplicity = 2 },
		"Alg":            func(j *Job) { j.Alg = "VAL" },
		"Pattern":        func(j *Job) { j.Pattern = "WC" },
		"Conc":           func(j *Job) { j.Conc = 2 },
		"Hot":            func(j *Job) { j.Hot = []int{1} },
		"HotFraction":    func(j *Job) { j.HotFraction = 0.2 },
		"BurstPeak":      func(j *Job) { j.BurstPeak = 0.9 },
		"BurstLen":       func(j *Job) { j.BurstLen = 24 },
		"Collective":     func(j *Job) { j.Collective = sim.CollectiveAllToAll },
		"Chunk":          func(j *Job) { j.Chunk = 3 },
		"Mode":           func(j *Job) { j.Mode = ModeSaturation },
		"Load":           func(j *Job) { j.Load = 0.51 },
		"Warmup":         func(j *Job) { j.Warmup = 101 },
		"Measure":        func(j *Job) { j.Measure = 101 },
		"MaxCycles":      func(j *Job) { j.MaxCycles = 2001 },
		"BatchSize":      func(j *Job) { j.BatchSize = 2 },
		"Seed":           func(j *Job) { j.Seed = 8 },
		"BufPerPort":     func(j *Job) { j.BufPerPort = 64 },
		"PacketSize":     func(j *Job) { j.PacketSize = 4 },
		"Speedup":        func(j *Job) { j.Speedup = 1 },
		"AgeArbiter":     func(j *Job) { j.AgeArbiter = true },
		"RouterDelay":    func(j *Job) { j.RouterDelay = 2 },
	}
	// Execution-detail fields whose value must NOT change the hash:
	// results are bit-identical across them, so cache entries are shared.
	unhashed := map[string]func(*Job){
		"Workers": func(j *Job) { j.Workers = 8 },
	}
	seen := map[string]string{base.Hash(): "base"}
	for field, mutate := range mutations {
		j := base
		mutate(&j)
		h := j.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutating %s collided with %s", field, prev)
		}
		seen[h] = field
	}
	for field, mutate := range unhashed {
		j := base
		mutate(&j)
		if j.Hash() != base.Hash() {
			t.Errorf("mutating execution detail %s changed the hash; cached results would not be shared", field)
		}
	}
	// Every Job field must be covered above (hashed or explicitly
	// execution-detail), so adding a field without deciding its caching
	// behavior fails this test.
	if want := reflect.TypeOf(Job{}).NumField(); len(mutations)+len(unhashed) != want {
		t.Errorf("mutation tables cover %d fields, Job has %d — extend the tables and the canonical encoding", len(mutations)+len(unhashed), want)
	}
}

// TestWorkloadJobs exercises the registry-backed workload fields — a
// bursty on/off job, a parameterized hotspot job, and a ModeCollective
// job with bursty background traffic — and pins the collective result
// bit-identical across worker counts.
func TestWorkloadJobs(t *testing.T) {
	burst := tinyJob("MIN AD", 0.3)
	burst.BurstPeak, burst.BurstLen = 0.8, 12
	if res, err := burst.Run(nil); err != nil {
		t.Fatalf("bursty job: %v", err)
	} else if res.Point.MeasuredDelivered == 0 {
		t.Fatal("bursty job delivered nothing")
	}

	hot := tinyJob("MIN AD", 0.2)
	hot.Pattern, hot.Hot, hot.HotFraction = "hotspot", []int{3, 5}, 0.3
	res, err := hot.Run(nil)
	if err != nil {
		t.Fatalf("hotspot job: %v", err)
	}
	if res.Job.Pattern != "HS" {
		t.Fatalf("hotspot did not canonicalize to HS, got %q", res.Job.Pattern)
	}

	coll := tinyJob("MIN AD", 0.1)
	coll.Mode, coll.Collective, coll.Chunk = ModeCollective, sim.CollectiveAllToAll, 2
	coll.BurstPeak = 0.8
	seq, err := coll.RunChecked(nil)
	if err != nil {
		t.Fatalf("collective job: %v", err)
	}
	if seq.Collective == nil || seq.Collective.Phases != seq.Collective.Nodes-1 {
		t.Fatalf("collective result malformed: %+v", seq.Collective)
	}
	par := coll
	par.Workers = 4
	pres, err := par.Run(nil)
	if err != nil {
		t.Fatalf("parallel collective job: %v", err)
	}
	if !reflect.DeepEqual(seq.Collective, pres.Collective) {
		t.Errorf("collective diverged across workers:\nseq %+v\npar %+v", seq.Collective, pres.Collective)
	}

	bad := tinyJob("MIN AD", 0.5)
	bad.Pattern = "no-such-pattern"
	var uerr *traffic.UnknownPatternError
	if _, err := bad.Run(nil); !errors.As(err, &uerr) {
		t.Fatalf("want UnknownPatternError, got %v", err)
	} else if len(uerr.Known) == 0 {
		t.Fatal("UnknownPatternError lists no known patterns")
	}
}

// TestParallelMatchesSequential is the heart of the engine's contract:
// the same jobs produce bit-identical results at any worker count.
func TestParallelMatchesSequential(t *testing.T) {
	var jobs []Job
	for _, alg := range []string{"MIN AD", "VAL", "CLOS AD"} {
		for _, load := range []float64{0.2, 0.5, 0.8} {
			jobs = append(jobs, tinyJob(alg, load))
		}
	}
	seq, err := (&Engine{Workers: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Engine{Workers: 8}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		a, b := seq[i], par[i]
		a.ElapsedSeconds, b.ElapsedSeconds = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("job %d diverged:\nseq %+v\npar %+v", i, a, b)
		}
	}
}

// TestRunSeriesMatchesLoadSweep pins the parallel series path to the
// sequential sim.LoadSweep reference, early-exit semantics included: a
// saturating sweep must produce identical points either way.
func TestRunSeriesMatchesLoadSweep(t *testing.T) {
	loads := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	// MIN AD on WC saturates at ~1/k, and the tight cycle budget makes
	// the over-saturated points report Saturated, so this sweep
	// exercises the tail collapse.
	base := tinyJob("MIN AD", 0)
	base.Pattern = "WC"
	base.MaxCycles = 300

	g, alg, pat, cfg, err := base.build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.LoadSweep(g, alg, cfg, sim.RunConfig{
		Pattern: pat, Warmup: base.Warmup, Measure: base.Measure, MaxCycles: base.MaxCycles,
	}, loads)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 6} {
		eng := &Engine{Workers: workers}
		res, err := eng.RunSeries(context.Background(), []SeriesSpec{{Base: base, Loads: loads}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res[0].Points, want) {
			t.Errorf("workers=%d: series diverged from sim.LoadSweep:\ngot  %+v\nwant %+v", workers, res[0].Points, want)
		}
	}
}

// TestRunSeriesSkipFastPath checks the saturation fast-path actually
// elides simulations when run sequentially (where completion order makes
// the skip deterministic).
func TestRunSeriesSkipFastPath(t *testing.T) {
	base := tinyJob("MIN AD", 0)
	base.Pattern = "WC" // saturates by ~0.25 offered load
	base.MaxCycles = 300
	loads := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	eng := &Engine{Workers: 1}
	if _, err := eng.RunSeries(context.Background(), []SeriesSpec{{Base: base, Loads: loads}}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Skipped == 0 {
		t.Errorf("expected the saturation fast-path to skip trailing points, stats: %+v", st)
	}
	if st.Simulated+st.Skipped != len(loads) {
		t.Errorf("simulated %d + skipped %d != %d points", st.Simulated, st.Skipped, len(loads))
	}
}

func TestRunDedupesIdenticalJobs(t *testing.T) {
	j := tinyJob("VAL", 0.4)
	eng := &Engine{Workers: 4}
	res, err := eng.Run(context.Background(), []Job{j, j, j})
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Simulated != 1 || st.Deduped != 2 {
		t.Errorf("expected 1 simulation + 2 dedups, got %+v", st)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Point != res[0].Point {
			t.Errorf("deduped result %d differs from primary", i)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Large enough that an uncancelled run would be noticeable.
	j := Job{
		Net: "flatfly", K: 8, N: 2, Alg: "VAL", Pattern: "UR",
		Load: 0.5, Warmup: 5000, Measure: 5000, MaxCycles: 100000, Seed: 1,
	}
	start := time.Now()
	_, err := (&Engine{Workers: 2}).Run(ctx, []Job{j, j, j, j})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancelled run took %v", d)
	}
}

func TestJobTimeout(t *testing.T) {
	// A deliberately huge job with a tiny wall-clock budget must fail
	// with a budget error instead of running to completion.
	j := Job{
		Net: "flatfly", K: 8, N: 2, Alg: "VAL", Pattern: "UR",
		Load: 0.9, Warmup: 100000, Measure: 100000, MaxCycles: 10000000, Seed: 1,
	}
	eng := &Engine{Workers: 1, JobTimeout: 20 * time.Millisecond}
	_, err := eng.Run(context.Background(), []Job{j})
	if err == nil {
		t.Fatal("expected a wall-clock budget error")
	}
	if !errors.Is(err, sim.ErrStopped) || !strings.Contains(err.Error(), "budget") {
		t.Errorf("unexpected error: %v", err)
	}
	if st := eng.Stats(); st.Failed != 1 {
		t.Errorf("expected 1 failed job, got %+v", st)
	}
}

// TestRunCollectsAllFailures checks that one bad job fails without
// aborting its siblings.
func TestRunCollectsAllFailures(t *testing.T) {
	good := tinyJob("VAL", 0.3)
	bad := good
	bad.Alg = "nonsense"
	eng := &Engine{Workers: 2}
	res, err := eng.Run(context.Background(), []Job{bad, good})
	if err == nil {
		t.Fatal("expected an error for the bad job")
	}
	if res[1].Point.MeasuredDelivered == 0 {
		t.Error("good job did not run to completion alongside the failure")
	}
	if st := eng.Stats(); st.Simulated != 1 || st.Failed != 1 {
		t.Errorf("expected 1 simulated + 1 failed, got %+v", st)
	}
}

func TestWorkerStatsUtilization(t *testing.T) {
	var jobs []Job
	for _, load := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6} {
		jobs = append(jobs, tinyJob("CLOS AD", load))
	}
	eng := &Engine{Workers: 3}
	if _, err := eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if len(st.Workers) != 3 {
		t.Fatalf("expected stats for 3 workers, got %d", len(st.Workers))
	}
	total := 0
	for _, w := range st.Workers {
		total += w.Jobs
	}
	if total != len(jobs) {
		t.Errorf("worker job counts sum to %d, want %d", total, len(jobs))
	}
}

// syncBuffer is a mutex-guarded bytes buffer for collecting progress
// output in tests.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestProgressOutput(t *testing.T) {
	var buf syncBuffer
	eng := &Engine{Workers: 2, Progress: &buf}
	if _, err := eng.Run(context.Background(), []Job{tinyJob("VAL", 0.2), tinyJob("VAL", 0.4)}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sweep: done:", "worker 0:", "worker 1:", "2 simulated"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}
