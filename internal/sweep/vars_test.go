package sweep

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"flatnet/internal/telemetry"
)

// TestVarsAccounting pins the settle-path identity: every job that
// settles does so through exactly one of simulated / cache hit / dedup /
// skip / fail, so the live counters always reconcile.
func TestVarsAccounting(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(filepath.Join(dir, "cache.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	eng := &Engine{Workers: 4, Cache: cache}

	jobs := []Job{
		tinyJob("MIN AD", 0.2),
		tinyJob("MIN AD", 0.2), // duplicate: coalesced within the run
		tinyJob("CLOS AD", 0.5),
		{Net: "bogus"}, // fails
	}
	if _, err := eng.Run(context.Background(), jobs); err == nil {
		t.Fatal("bogus job did not fail")
	}
	v := eng.Vars()
	if v.JobsSubmitted != 4 {
		t.Errorf("JobsSubmitted = %d, want 4", v.JobsSubmitted)
	}
	if v.JobsDone != 4 {
		t.Errorf("JobsDone = %d, want 4", v.JobsDone)
	}
	if v.JobsInFlight != 0 {
		t.Errorf("JobsInFlight = %d after Run returned", v.JobsInFlight)
	}
	if sum := v.Simulated + v.CacheHits + v.Deduped + v.Skipped + v.Failed; sum != v.JobsDone {
		t.Errorf("settle identity broken: %d+%d+%d+%d+%d != %d",
			v.Simulated, v.CacheHits, v.Deduped, v.Skipped, v.Failed, v.JobsDone)
	}
	if v.Simulated != 2 || v.Deduped != 1 || v.Failed != 1 {
		t.Errorf("first run: simulated %d deduped %d failed %d, want 2/1/1",
			v.Simulated, v.Deduped, v.Failed)
	}
	if v.BusySeconds <= 0 {
		t.Error("no busy time accumulated")
	}

	// Re-running the two good jobs hits the cache; the hit rate becomes
	// visible through Vars.
	if _, err := eng.Run(context.Background(), jobs[:3]); err != nil {
		t.Fatal(err)
	}
	v = eng.Vars()
	if v.CacheHits != 3 { // both distinct jobs + the former duplicate
		t.Errorf("CacheHits = %d, want 3", v.CacheHits)
	}
	if v.CacheHitRate <= 0 {
		t.Error("CacheHitRate not computed")
	}
	if sum := v.Simulated + v.CacheHits + v.Deduped + v.Skipped + v.Failed; sum != v.JobsDone {
		t.Errorf("settle identity broken after second run: sum %d != done %d", sum, v.JobsDone)
	}
}

// TestPublishVars checks the engine's gauge serves through a registry
// snapshot the way a -listen endpoint would render it.
func TestPublishVars(t *testing.T) {
	eng := &Engine{Workers: 2}
	if _, err := eng.Run(context.Background(), []Job{tinyJob("MIN AD", 0.3)}); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	eng.PublishVars(reg)
	out := reg.String()
	if !strings.Contains(out, `"sweep_engine"`) {
		t.Fatalf("registry JSON missing sweep_engine: %s", out)
	}
	var decoded struct {
		SweepEngine Vars `json:"sweep_engine"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("registry JSON does not decode: %v", err)
	}
	if decoded.SweepEngine.Simulated != 1 || decoded.SweepEngine.Workers != 2 {
		t.Errorf("gauge snapshot = %+v", decoded.SweepEngine)
	}
}
