// Analytic-oracle conformance: short instrumented runs — sanitizer
// attached — must match the closed-form zero-load latency model within a
// cycle and the channel-load saturation models within the usual
// simulation bands, for every topology family at 64 terminals.
package check_test

import (
	"math"
	"testing"

	"flatnet/internal/analysis"
	"flatnet/internal/check"
	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// zeroLoad measures one sanitized low-load point: 2% offered load is
// close enough to zero load that queueing contributes well under the
// one-cycle conformance budget.
func zeroLoad(t *testing.T, g *topo.Graph, alg sim.Algorithm, cfg sim.Config, p traffic.Pattern) sim.LoadPointResult {
	t.Helper()
	rc := sim.RunConfig{
		Load: 0.02, Pattern: p,
		Warmup: 300, Measure: 2000,
	}
	done := check.Arm(&rc, check.Config{})
	res, err := sim.RunLoadPoint(g, alg, cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := done(); err != nil {
		t.Fatalf("sanitizer tripped during conformance run: %v", err)
	}
	if res.Saturated {
		t.Fatal("saturated at 2% load")
	}
	return res
}

// conform asserts a measured run against its zero-load model: latency
// within one cycle (the acceptance budget) and hop count within the
// sampling noise of ~2500 measured packets.
func conform(t *testing.T, name string, res sim.LoadPointResult, m routing.ZeroLoadModel) {
	t.Helper()
	if d := math.Abs(res.AvgLatency - m.Latency()); d > 1.0 {
		t.Errorf("%s: zero-load latency %.3f vs oracle %.3f (off by %.3f cycles, budget 1)",
			name, res.AvgLatency, m.Latency(), d)
	}
	if d := math.Abs(res.AvgHops - m.AvgHops); d > 0.1 {
		t.Errorf("%s: avg hops %.3f vs oracle %.3f", name, res.AvgHops, m.AvgHops)
	}
}

// TestZeroLoadLatencyOracle holds every topology family, at 64
// terminals, to its closed-form zero-load latency under uniform traffic.
func TestZeroLoadLatencyOracle(t *testing.T) {
	cfg := sim.DefaultConfig()

	f, err := core.NewFlatFly(8, 2) // 64 nodes, 8 routers
	if err != nil {
		t.Fatal(err)
	}
	ur := traffic.NewUniform(f.NumNodes)
	for _, algName := range []string{"min", "val", "ugal", "ugal-s", "clos"} {
		alg, err := routing.NewFlatFlyAlgorithm(algName, f)
		if err != nil {
			t.Fatal(err)
		}
		// At zero load every queue-backed decider (UGAL, UGAL-S, CLOS AD)
		// compares empty queues and goes minimal; only VAL detours.
		hops := f.AvgUniformMinHops()
		if algName == "val" {
			hops = routing.ValiantUniformHops(f)
		}
		m, err := routing.ZeroLoadFor(f.Graph(), cfg, hops)
		if err != nil {
			t.Fatal(err)
		}
		conform(t, "8-ary 2-flat "+alg.Name(), zeroLoad(t, f.Graph(), alg, cfg, ur), m)
	}

	b, err := topo.NewButterfly(8, 2) // 64 nodes
	if err != nil {
		t.Fatal(err)
	}
	m, err := routing.ZeroLoadFor(b.Graph(), cfg, b.AvgHops())
	if err != nil {
		t.Fatal(err)
	}
	conform(t, b.Name(), zeroLoad(t, b.Graph(), routing.NewButterflyDest(b), cfg,
		traffic.NewUniform(b.NumNodes)), m)

	fc, err := topo.NewFoldedClos(8, 4, 8, 2) // 64 nodes, 2:1 taper
	if err != nil {
		t.Fatal(err)
	}
	m, err = routing.ZeroLoadFor(fc.Graph(), cfg, fc.AvgUniformHops())
	if err != nil {
		t.Fatal(err)
	}
	conform(t, fc.Name(), zeroLoad(t, fc.Graph(), routing.NewFoldedClosAdaptive(fc), cfg,
		traffic.NewUniform(fc.NumNodes)), m)

	h, err := topo.NewHypercube(6) // 64 nodes
	if err != nil {
		t.Fatal(err)
	}
	m, err = routing.ZeroLoadFor(h.Graph(), cfg, h.AvgUniformHops())
	if err != nil {
		t.Fatal(err)
	}
	conform(t, h.Name(), zeroLoad(t, h.Graph(), routing.NewECube(h), cfg,
		traffic.NewUniform(h.NumNodes)), m)
}

// TestZeroLoadOracleTimingKnobs validates the model's per-hop pipeline
// and serialization terms: router delay is charged once per inter-router
// hop, and a multi-flit tail trails the head by PacketSize-1 cycles.
func TestZeroLoadOracleTimingKnobs(t *testing.T) {
	f, err := core.NewFlatFly(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ur := traffic.NewUniform(f.NumNodes)

	cfg := sim.DefaultConfig()
	cfg.RouterDelay = 2
	m, err := routing.ZeroLoadFor(f.Graph(), cfg, f.AvgUniformMinHops())
	if err != nil {
		t.Fatal(err)
	}
	conform(t, "8-ary 2-flat MIN AD delay=2",
		zeroLoad(t, f.Graph(), routing.NewMinAD(f), cfg, ur), m)

	cfg = sim.DefaultConfig()
	cfg.PacketSize = 4
	m, err = routing.ZeroLoadFor(f.Graph(), cfg, f.AvgUniformMinHops())
	if err != nil {
		t.Fatal(err)
	}
	conform(t, "8-ary 2-flat MIN AD 4-flit",
		zeroLoad(t, f.Graph(), routing.NewMinAD(f), cfg, ur), m)
}

// satThroughput is sim.SaturationThroughput with the sanitizer armed:
// full offered load, accepted rate over the measurement window.
func satThroughput(t *testing.T, g *topo.Graph, alg sim.Algorithm, cfg sim.Config, p traffic.Pattern) float64 {
	t.Helper()
	rc := sim.RunConfig{
		Load: 1.0, Pattern: p,
		Warmup: 500, Measure: 1000,
		MaxCycles: 1501,
	}
	done := check.Arm(&rc, check.Config{})
	res, err := sim.RunLoadPoint(g, alg, cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := done(); err != nil {
		t.Fatalf("sanitizer tripped at saturation: %v", err)
	}
	return res.AcceptedRate
}

// within asserts |got-want|/want <= tol.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Errorf("%s: %.4f, want %.4f ± %.0f%%", name, got, want, tol*100)
	}
}

// TestSaturationOracle holds sanitized saturation runs to the
// internal/analysis channel-load models.
func TestSaturationOracle(t *testing.T) {
	cfg := sim.DefaultConfig()

	f, err := core.NewFlatFly(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	wc := traffic.NewWorstCase(8, 8)
	within(t, "FB WC MIN AD",
		satThroughput(t, f.Graph(), routing.NewMinAD(f), cfg, wc),
		analysis.FlatFlyWCMinimal(8), 0.25)
	within(t, "FB WC UGAL-S",
		satThroughput(t, f.Graph(), routing.NewUGALS(f), cfg, wc),
		analysis.FlatFlyWCNonMinimal(8), 0.20)

	b, err := topo.NewButterfly(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "butterfly WC",
		satThroughput(t, b.Graph(), routing.NewButterflyDest(b), cfg, traffic.NewWorstCase(8, 8)),
		analysis.ButterflyWCThroughput(8), 0.25)

	fc, err := topo.NewFoldedClos(8, 4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "tapered Clos UR",
		satThroughput(t, fc.Graph(), routing.NewFoldedClosAdaptive(fc), cfg, traffic.NewUniform(fc.NumNodes)),
		analysis.FoldedClosURThroughput(8, 4, 64), 0.15)
}
