// Package check is the simulator's runtime invariant sanitizer. Attached
// to a sim.Network it verifies, per event and per cycle, the conservation
// laws a faithful flit-level model must obey:
//
//   - flit conservation: flits injected == flits ejected + flits alive
//     inside the simulator, every cycle;
//   - credit conservation: for every network channel VC, the credits
//     held upstream, the flits buffered downstream, the flits on the
//     forward channel and the credits on the reverse channel sum to the
//     VC's buffer depth, and per-event credit counts never go negative
//     or exceed the depth;
//   - VC allocation: a downstream virtual channel is never granted to a
//     second packet while a first one holds it, and only the holder may
//     release it;
//   - packet wholeness: every packet ejects exactly PacketSize flits, at
//     its destination's ejection channel, tail last; optionally packets
//     of one (src, dst) flow arrive in injection order (valid only for
//     deterministic routing — adaptive algorithms legally reorder);
//   - forward progress: a watchdog trips when no flit is delivered for
//     WatchdogCycles cycles while flits are in flight, reporting the
//     stuck channels.
//
// Detached, the simulator pays one nil pointer check per pipeline site —
// the same zero-overhead-when-off contract as internal/telemetry
// (BenchmarkChecksOff guards it). The sanitizer never perturbs the
// simulation: results with and without it are bit-identical.
package check

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"flatnet/internal/sim"
	"flatnet/internal/topo"
)

// Violation kinds, in rough order of severity.
const (
	KindConservation    = "flit-conservation"   // injected != delivered + alive
	KindChannelAudit    = "credit-conservation" // a channel VC's credit loop lost or forged slots
	KindCreditUnderflow = "credit-underflow"    // credit count went negative
	KindCreditOverflow  = "credit-overflow"     // credit count exceeded the buffer depth
	KindDoubleGrant     = "vc-double-grant"     // a held VC was granted to a second packet
	KindBadRelease      = "vc-bad-release"      // a VC released by a non-holder
	KindWholeness       = "packet-wholeness"    // flit count or tail order wrong
	KindMisdelivery     = "misdelivery"         // flit ejected at the wrong terminal
	KindOrder           = "delivery-order"      // (src,dst) flow delivered out of order
	KindDeadlock        = "deadlock"            // no forward progress with flits in flight
	KindRouteBounds     = "route-bounds"        // routing decision outside the port/VC space
	KindQuiescence      = "quiescence"          // state left behind after a full drain
)

// Config parameterizes Attach. The zero value checks everything every
// cycle with a 10000-cycle watchdog.
type Config struct {
	// Stride is the period in cycles of the deep (O(network)) audits:
	// flit conservation and per-channel credit conservation. <= 0 selects
	// 1 — audit every cycle. Per-event checks are always exact.
	Stride int
	// WatchdogCycles is how long the network may go without delivering a
	// flit, while flits are in flight, before the watchdog declares
	// deadlock. <= 0 selects 10000.
	WatchdogCycles int
	// InOrder additionally asserts that packets of one (src, dst) flow
	// are delivered in injection order. Only valid for deterministic
	// routing (e-cube, destination-based butterfly): adaptive and
	// Valiant-style algorithms legally reorder flows.
	InOrder bool
	// MaxViolations caps recorded violations; further ones are counted
	// but dropped. <= 0 selects 64.
	MaxViolations int
	// OnViolation, when non-nil, observes every violation as it is
	// recorded (including dropped ones) — the hook for dumping a
	// telemetry trace on first failure.
	OnViolation func(Violation)
}

// Violation is one invariant failure, located in time and, when the
// invariant is channel-local, on a (router, port, vc) channel.
type Violation struct {
	Cycle  int64
	Kind   string
	Router topo.RouterID // -1 for network-wide invariants
	Port   int
	VC     int
	Detail string
}

func (v Violation) String() string {
	loc := ""
	if v.Router >= 0 {
		loc = fmt.Sprintf(" [router %d port %d vc %d]", v.Router, v.Port, v.VC)
	}
	return fmt.Sprintf("cycle %d: %s%s: %s", v.Cycle, v.Kind, loc, v.Detail)
}

type chanKey struct {
	r    topo.RouterID
	port int
	vc   int
}

type flowKey struct {
	src, dst topo.NodeID
}

type pktState struct {
	src, dst topo.NodeID
	injected int
	ejected  int
}

// Sanitizer holds the checker state for one attached network. It is not
// safe for concurrent use; attach one per network, from the goroutine
// that steps it.
type Sanitizer struct {
	n   *sim.Network
	g   *topo.Graph
	cfg Config

	depth int // per-VC buffer depth
	vcs   int
	size  int // flits per packet

	owners map[chanKey]int64   // downstream VC -> ID of the packet holding it
	pkts   map[int64]*pktState // in-flight packets by ID
	order  map[flowKey]int64   // last delivered packet ID per (src, dst)

	violations []Violation
	dropped    int

	lastDelivered int64
	lastProgress  int64
	tripped       bool // watchdog fired; disarm it
}

// Attach installs a sanitizer into the network's pipeline and returns it.
// Call Finalize (or Err) after the run; Detach removes the hooks.
func Attach(n *sim.Network, cfg Config) *Sanitizer {
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
	if cfg.WatchdogCycles <= 0 {
		cfg.WatchdogCycles = 10000
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 64
	}
	s := &Sanitizer{
		n:      n,
		g:      n.Graph(),
		cfg:    cfg,
		depth:  n.VCDepth(),
		vcs:    n.VCs(),
		size:   n.PacketSize(),
		owners: map[chanKey]int64{},
		pkts:   map[int64]*pktState{},
		order:  map[flowKey]int64{},
	}
	n.AttachChecks(&sim.CheckHooks{
		Inject:        s.inject,
		Route:         s.route,
		CreditConsume: s.creditConsume,
		CreditReturn:  s.creditReturn,
		VCAcquire:     s.vcAcquire,
		VCRelease:     s.vcRelease,
		Eject:         s.eject,
		EndCycle:      s.endCycle,
	})
	return s
}

// Detach removes the sanitizer's hooks from the network.
func (s *Sanitizer) Detach() { s.n.AttachChecks(nil) }

// Violations returns the recorded violations, in discovery order.
func (s *Sanitizer) Violations() []Violation { return s.violations }

// Err returns nil when no invariant tripped, else an error carrying the
// first violations and the total count.
func (s *Sanitizer) Err() error {
	total := len(s.violations) + s.dropped
	if total == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s)", total)
	for i, v := range s.violations {
		if i == 3 {
			fmt.Fprintf(&b, "; ... %d more", total-i)
			break
		}
		b.WriteString("; ")
		b.WriteString(v.String())
	}
	return errors.New(b.String())
}

// Finalize runs the end-of-run checks and returns Err. When the network
// is quiescent (fully drained), every tracked packet must have completed,
// every VC must be free, and every channel's credits must be home;
// saturated or aborted runs skip the quiescence checks but keep
// everything observed while running.
func (s *Sanitizer) Finalize() error {
	if s.n.Quiescent() {
		if len(s.pkts) != 0 {
			ids := make([]int64, 0, len(s.pkts))
			for id := range s.pkts {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for i, id := range ids {
				if i == 4 {
					s.report(Violation{Kind: KindQuiescence, Router: -1,
						Detail: fmt.Sprintf("... and %d more incomplete packets", len(ids)-i)})
					break
				}
				ps := s.pkts[id]
				s.report(Violation{Kind: KindWholeness, Router: -1,
					Detail: fmt.Sprintf("packet %d (src %d dst %d) incomplete after drain: %d/%d flits injected, %d ejected",
						id, ps.src, ps.dst, ps.injected, s.size, ps.ejected)})
			}
		}
		for k, id := range s.owners {
			s.report(Violation{Kind: KindQuiescence, Router: k.r, Port: k.port, VC: k.vc,
				Detail: fmt.Sprintf("VC still held by packet %d after drain", id)})
		}
		s.n.AuditChannels(func(a sim.ChannelAudit) {
			if a.Credits != a.Depth {
				s.report(Violation{Kind: KindQuiescence, Router: a.Router, Port: a.Port, VC: a.VC,
					Detail: fmt.Sprintf("%d/%d credits home after drain (%d buffered, %d flits and %d credits in flight)",
						a.Credits, a.Depth, a.Buffered, a.FlitsInFlight, a.CreditsInFlight)})
			}
		})
	}
	return s.Err()
}

func (s *Sanitizer) report(v Violation) {
	v.Cycle = s.n.Cycle()
	if len(s.violations) < s.cfg.MaxViolations {
		s.violations = append(s.violations, v)
	} else {
		s.dropped++
	}
	if s.cfg.OnViolation != nil {
		s.cfg.OnViolation(v)
	}
}

func (s *Sanitizer) inject(p *sim.Packet, r topo.RouterID, port int, tail bool) {
	ps := s.pkts[p.ID]
	if ps == nil {
		ps = &pktState{src: p.Src, dst: p.Dst}
		s.pkts[p.ID] = ps
	}
	ps.injected++
	if ps.injected > s.size {
		s.report(Violation{Kind: KindWholeness, Router: r, Port: port,
			Detail: fmt.Sprintf("packet %d injected %d flits, PacketSize is %d", p.ID, ps.injected, s.size)})
	}
	if tail && ps.injected != s.size {
		s.report(Violation{Kind: KindWholeness, Router: r, Port: port,
			Detail: fmt.Sprintf("packet %d tail injected after %d/%d flits", p.ID, ps.injected, s.size)})
	}
}

func (s *Sanitizer) route(p *sim.Packet, r topo.RouterID, port, vc int) {
	rd := &s.g.Routers[r]
	if port < 0 || port >= len(rd.Out) || vc < 0 || vc >= s.vcs {
		// The simulator would corrupt state or index out of range on this
		// decision; fail fast with the routing context attached.
		v := Violation{Kind: KindRouteBounds, Router: r, Port: port, VC: vc,
			Detail: fmt.Sprintf("algorithm routed packet %d (src %d dst %d) outside the %d-port x %d-VC space",
				p.ID, p.Src, p.Dst, len(rd.Out), s.vcs)}
		s.report(v)
		panic("check: " + v.String())
	}
	if rd.Out[port].Kind == topo.Unused {
		s.report(Violation{Kind: KindRouteBounds, Router: r, Port: port, VC: vc,
			Detail: fmt.Sprintf("algorithm routed packet %d (src %d dst %d) to an unused port", p.ID, p.Src, p.Dst)})
	}
}

func (s *Sanitizer) creditConsume(r topo.RouterID, port, vc, after int) {
	if after < 0 {
		s.report(Violation{Kind: KindCreditUnderflow, Router: r, Port: port, VC: vc,
			Detail: fmt.Sprintf("credit count %d after consume", after)})
	}
}

func (s *Sanitizer) creditReturn(r topo.RouterID, port, vc, after int) {
	if after > s.depth {
		s.report(Violation{Kind: KindCreditOverflow, Router: r, Port: port, VC: vc,
			Detail: fmt.Sprintf("credit count %d after return, buffer depth is %d", after, s.depth)})
	}
}

func (s *Sanitizer) vcAcquire(p, prev *sim.Packet, r topo.RouterID, port, vc int) {
	k := chanKey{r, port, vc}
	if holder, held := s.owners[k]; held && holder != p.ID {
		s.report(Violation{Kind: KindDoubleGrant, Router: r, Port: port, VC: vc,
			Detail: fmt.Sprintf("packet %d granted while packet %d holds the VC", p.ID, holder)})
	} else if prev != nil && prev.ID != p.ID {
		s.report(Violation{Kind: KindDoubleGrant, Router: r, Port: port, VC: vc,
			Detail: fmt.Sprintf("packet %d granted while the allocator records packet %d as owner", p.ID, prev.ID)})
	}
	s.owners[k] = p.ID
}

func (s *Sanitizer) vcRelease(p *sim.Packet, r topo.RouterID, port, vc int) {
	k := chanKey{r, port, vc}
	holder, held := s.owners[k]
	if !held {
		s.report(Violation{Kind: KindBadRelease, Router: r, Port: port, VC: vc,
			Detail: fmt.Sprintf("packet %d released a free VC", p.ID)})
	} else if holder != p.ID {
		s.report(Violation{Kind: KindBadRelease, Router: r, Port: port, VC: vc,
			Detail: fmt.Sprintf("packet %d released a VC held by packet %d", p.ID, holder)})
	}
	delete(s.owners, k)
}

func (s *Sanitizer) eject(p *sim.Packet, r topo.RouterID, port int, tail bool) {
	ps := s.pkts[p.ID]
	if ps == nil {
		s.report(Violation{Kind: KindWholeness, Router: r, Port: port,
			Detail: fmt.Sprintf("flit ejected for unknown or completed packet %d", p.ID)})
		return
	}
	ps.ejected++
	if ps.ejected > ps.injected {
		s.report(Violation{Kind: KindWholeness, Router: r, Port: port,
			Detail: fmt.Sprintf("packet %d ejected %d flits but injected only %d", p.ID, ps.ejected, ps.injected)})
	}
	if s.g.EjRouter[p.Dst] != r || s.g.EjPort[p.Dst] != port {
		s.report(Violation{Kind: KindMisdelivery, Router: r, Port: port,
			Detail: fmt.Sprintf("packet %d for node %d ejected at router %d port %d, expected router %d port %d",
				p.ID, p.Dst, r, port, s.g.EjRouter[p.Dst], s.g.EjPort[p.Dst])})
	}
	if !tail {
		return
	}
	if ps.ejected != s.size {
		s.report(Violation{Kind: KindWholeness, Router: r, Port: port,
			Detail: fmt.Sprintf("packet %d tail ejected after %d/%d flits", p.ID, ps.ejected, s.size)})
	}
	if s.cfg.InOrder {
		fk := flowKey{ps.src, ps.dst}
		if last, ok := s.order[fk]; ok && p.ID < last {
			s.report(Violation{Kind: KindOrder, Router: r, Port: port,
				Detail: fmt.Sprintf("packet %d (src %d dst %d) delivered after packet %d", p.ID, ps.src, ps.dst, last)})
		}
		s.order[fk] = p.ID
	}
	delete(s.pkts, p.ID)
}

func (s *Sanitizer) endCycle() {
	cycle := s.n.Cycle()
	fi, fd := s.n.FlitTotals()
	if cycle%int64(s.cfg.Stride) == 0 {
		buffered, inFlight := s.n.Inventory()
		if fi != fd+int64(buffered)+int64(inFlight) {
			s.report(Violation{Kind: KindConservation, Router: -1,
				Detail: fmt.Sprintf("%d flits injected != %d delivered + %d buffered + %d in flight (%+d)",
					fi, fd, buffered, inFlight, fi-fd-int64(buffered)-int64(inFlight))})
		}
		s.n.AuditChannels(func(a sim.ChannelAudit) {
			if a.Outstanding() != a.Depth {
				s.report(Violation{Kind: KindChannelAudit, Router: a.Router, Port: a.Port, VC: a.VC,
					Detail: fmt.Sprintf("%d credits + %d buffered + %d flits in flight + %d credits in flight = %d, depth is %d",
						a.Credits, a.Buffered, a.FlitsInFlight, a.CreditsInFlight, a.Outstanding(), a.Depth)})
			}
		})
	}
	// Watchdog: deliveries are the progress signal; fi > fd means flits
	// are alive inside the network, so a long delivery silence is either
	// deadlock or livelock.
	if fd > s.lastDelivered {
		s.lastDelivered = fd
		s.lastProgress = cycle
	} else if !s.tripped && fi > fd && cycle-s.lastProgress >= int64(s.cfg.WatchdogCycles) {
		s.tripped = true
		s.report(Violation{Kind: KindDeadlock, Router: -1,
			Detail: s.deadlockDetail(fi - fd)})
	}
}

// deadlockDetail summarizes the stuck state: how many flits are wedged
// and on which channels, so the failure is actionable without re-running
// under a tracer.
func (s *Sanitizer) deadlockDetail(alive int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "no flit delivered for %d cycles with %d flits in the network; stuck channels:", s.cfg.WatchdogCycles, alive)
	shown := 0
	s.n.AuditChannels(func(a sim.ChannelAudit) {
		if a.Buffered == 0 && a.FlitsInFlight == 0 {
			return
		}
		if shown == 8 {
			b.WriteString(" ...")
			shown++
		}
		if shown > 8 {
			return
		}
		fmt.Fprintf(&b, " (router %d port %d vc %d: %d buffered, %d in flight, %d credits)",
			a.Router, a.Port, a.VC, a.Buffered, a.FlitsInFlight, a.Credits)
		shown++
	})
	if shown == 0 {
		b.WriteString(" (all stuck flits sit in terminal injection buffers)")
	}
	return b.String()
}

// Arm instruments a RunConfig so every run it drives executes under a
// fresh sanitizer: it chains rc.Attach and rc.Observe, finalizing each
// run's sanitizer as the run completes. The returned function reports the
// accumulated violations across runs — call it after the run(s) finish.
// Arm one RunConfig per goroutine; the closure state is not locked.
func Arm(rc *sim.RunConfig, cfg Config) func() error {
	var cur *Sanitizer
	var errs []error
	prevAttach, prevObserve := rc.Attach, rc.Observe
	rc.Attach = func(n *sim.Network) {
		if prevAttach != nil {
			prevAttach(n)
		}
		cur = Attach(n, cfg)
	}
	rc.Observe = func(n *sim.Network) {
		if cur != nil {
			if err := cur.Finalize(); err != nil {
				errs = append(errs, err)
			}
			cur = nil
		}
		if prevObserve != nil {
			prevObserve(n)
		}
	}
	return func() error { return errors.Join(errs...) }
}
