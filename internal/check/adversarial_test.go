// Adversarial routing conformance: the three queue-backed adaptive
// deciders on worst-case traffic, at loads straddling the non-minimal
// saturation point, all under the sanitizer. Adversarial pressure is
// exactly where credit or VC accounting bugs surface — a run is only as
// trustworthy as its behavior past the knee.
package check_test

import (
	"testing"

	"flatnet/internal/analysis"
	"flatnet/internal/check"
	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/traffic"
)

// TestAdversarialRoutingUnderSanitizer sweeps UGAL, UGAL-S and CLOS AD
// on worst-case traffic through loads below, near and above the
// analytic non-minimal saturation point ((k-1)/2k = 0.4375 for k=8).
// Every point must hold all runtime invariants; below the knee the
// network must also accept what is offered and stay unsaturated.
func TestAdversarialRoutingUnderSanitizer(t *testing.T) {
	f, err := core.NewFlatFly(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	sat := analysis.FlatFlyWCNonMinimal(8)
	cases := []struct {
		alg  string
		load float64
	}{
		{"ugal", 0.3}, {"ugal", 0.5}, {"ugal", 0.7},
		{"ugal-s", 0.3}, {"ugal-s", 0.5}, {"ugal-s", 0.7},
		{"clos", 0.3}, {"clos", 0.5}, {"clos", 0.7},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.alg+"/wc", func(t *testing.T) {
			alg, err := routing.NewFlatFlyAlgorithm(tc.alg, f)
			if err != nil {
				t.Fatal(err)
			}
			rc := sim.RunConfig{
				Load: tc.load, Pattern: traffic.NewWorstCase(8, 8),
				Warmup: 300, Measure: 500, MaxCycles: 1500,
			}
			done := check.Arm(&rc, check.Config{})
			res, err := sim.RunLoadPoint(f.Graph(), alg, sim.DefaultConfig(), rc)
			if err != nil {
				t.Fatal(err)
			}
			if err := done(); err != nil {
				t.Fatalf("%s at WC load %.2f tripped the sanitizer: %v", alg.Name(), tc.load, err)
			}
			switch {
			case tc.load < sat:
				if res.Saturated {
					t.Errorf("%s saturated at WC load %.2f, below the %.4f non-minimal bound",
						alg.Name(), tc.load, sat)
				}
				if res.AcceptedRate < 0.85*tc.load {
					t.Errorf("%s accepted %.3f of %.2f offered below saturation",
						alg.Name(), res.AcceptedRate, tc.load)
				}
			default:
				// Past the knee the decider cannot beat the channel-load
				// bound; allow the usual simulation band above it.
				if res.AcceptedRate > 1.25*sat {
					t.Errorf("%s accepted %.3f at WC load %.2f, above the %.4f analytic ceiling",
						alg.Name(), res.AcceptedRate, tc.load, sat)
				}
			}
		})
	}
}
