// Slim Fly and dragonfly conformance: the zero-load latency oracle at
// 64+ terminals for every routing variant, and adversarial saturation
// bands straddling each family's analytic knee — all under the runtime
// sanitizer, mirroring the flattened-butterfly suites.
package check_test

import (
	"testing"

	"flatnet/internal/analysis"
	"flatnet/internal/check"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// modernSF is the conformance instance: q=5 (δ=+1), 50 routers of
// network degree 7, p=2 → 100 terminals.
func modernSF(t *testing.T) *topo.SlimFly {
	t.Helper()
	s, err := topo.NewSlimFly(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// modernDF is the conformance instance: h=2 with balanced defaults
// (a=4, p=2), 9 groups, 36 routers → 72 terminals.
func modernDF(t *testing.T) *topo.Dragonfly {
	t.Helper()
	d, err := topo.NewDragonfly(0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSlimFlyZeroLoadOracle holds every Slim Fly routing variant to the
// closed-form zero-load model under uniform traffic: minimal hops for
// MIN and the queue-backed deciders (empty queues go minimal), the
// O(R³) Valiant triple enumeration for VAL.
func TestSlimFlyZeroLoadOracle(t *testing.T) {
	s := modernSF(t)
	cfg := sim.DefaultConfig()
	ur := traffic.NewUniform(s.NumNodes)

	dist := make([][]int, s.NumRouters)
	for r := range dist {
		dist[r] = s.MinHopsFrom(topo.RouterID(r))
	}
	valHops := routing.ValiantHopsFromDist(s.NumRouters, func(a, b int) int {
		return dist[a][b]
	})

	for _, algName := range []string{"min", "val", "ugal", "ugal-s"} {
		alg, err := routing.NewSlimFlyAlgorithm(algName, s)
		if err != nil {
			t.Fatal(err)
		}
		hops := s.AvgUniformMinHops()
		if algName == "val" {
			hops = valHops
		}
		m, err := routing.ZeroLoadFor(s.Graph(), cfg, hops)
		if err != nil {
			t.Fatal(err)
		}
		conform(t, s.Name()+" "+alg.Name(), zeroLoad(t, s.Graph(), alg, cfg, ur), m)
	}
}

// TestDragonflyZeroLoadOracle is the dragonfly analogue; minimal hops
// are the hierarchical local-global-local counts the router tables
// implement, and VAL chains two hierarchical segments.
func TestDragonflyZeroLoadOracle(t *testing.T) {
	d := modernDF(t)
	cfg := sim.DefaultConfig()
	ur := traffic.NewUniform(d.NumNodes)

	valHops := routing.ValiantHopsFromDist(d.NumRouters, func(a, b int) int {
		return d.MinHops(topo.RouterID(a), topo.RouterID(b))
	})

	for _, algName := range []string{"min", "val", "ugal", "ugal-s"} {
		alg, err := routing.NewDragonflyAlgorithm(algName, d)
		if err != nil {
			t.Fatal(err)
		}
		hops := d.AvgUniformMinHops()
		if algName == "val" {
			hops = valHops
		}
		m, err := routing.ZeroLoadFor(d.Graph(), cfg, hops)
		if err != nil {
			t.Fatal(err)
		}
		conform(t, d.Name()+" "+alg.Name(), zeroLoad(t, d.Graph(), alg, cfg, ur), m)
	}
}

// slimFlyNeighborPattern builds the Slim Fly adversary: a fixed pattern
// where every terminal of router (s,x,y) targets the same-slot terminal
// of the router one fixed Cayley generator away — (0,x,y+g₀) in block 0,
// (1,m,c+g₁) in block 1. Translation by a generator is a permutation of
// the routers and every (router, target) pair is an edge, so minimal
// routing loads exactly one channel with all p flows while ejection
// stays balanced: the knee is exactly 1/p. The generators are recovered
// from the adjacency of the orbit representatives (q prime here, so
// field arithmetic is arithmetic mod q).
func slimFlyNeighborPattern(t *testing.T, s *topo.SlimFly) traffic.Pattern {
	t.Helper()
	q := s.Q
	g0, g1 := -1, -1
	for _, n := range s.Adjacency(0) { // router (0,0,0): intra-block neighbors are (0,0,g), g ∈ X
		if int(n) < q*q {
			g0 = int(n) % q
			break
		}
	}
	for _, n := range s.Adjacency(topo.RouterID(q * q)) { // router (1,0,0): intra-block neighbors are (1,0,g'), g' ∈ X'
		if int(n) >= q*q {
			g1 = int(n) % q
			break
		}
	}
	if g0 < 0 || g1 < 0 {
		t.Fatal("no intra-block neighbors found")
	}
	table := make([]topo.NodeID, s.NumNodes)
	for node := range table {
		r, slot := node/s.P, node%s.P
		block, x, y := r/(q*q), (r%(q*q))/q, r%q
		var tr int
		if block == 0 {
			tr = x*q + (y+g0)%q
		} else {
			tr = q*q + x*q + (y+g1)%q
		}
		table[node] = topo.NodeID(tr*s.P + slot)
	}
	return traffic.NewFixed("SF-NBR", table)
}

// TestSlimFlyAdversarial straddles the 1/p minimal knee with MIN and
// holds the UGAL variants unsaturated at the same loads: the
// neighbor-adversarial pattern leaves diameter-2 detours through any of
// the k'=7 other neighbors, so the non-minimal ceiling (~k'/(2p) ≈ 1.75
// before ejection limits) is far above every tested load.
func TestSlimFlyAdversarial(t *testing.T) {
	s := modernSF(t)
	pat := slimFlyNeighborPattern(t, s)
	sat := analysis.SlimFlyNeighborMinimal(s.P) // 0.5
	cases := []struct {
		alg  string
		load float64
	}{
		{"min", 0.3}, {"min", 0.8},
		{"ugal", 0.3}, {"ugal", 0.7},
		{"ugal-s", 0.3}, {"ugal-s", 0.7},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.alg+"/nbr", func(t *testing.T) {
			alg, err := routing.NewSlimFlyAlgorithm(tc.alg, s)
			if err != nil {
				t.Fatal(err)
			}
			rc := sim.RunConfig{
				Load: tc.load, Pattern: pat,
				Warmup: 300, Measure: 500, MaxCycles: 1500,
			}
			done := check.Arm(&rc, check.Config{})
			res, err := sim.RunLoadPoint(s.Graph(), alg, sim.DefaultConfig(), rc)
			if err != nil {
				t.Fatal(err)
			}
			if err := done(); err != nil {
				t.Fatalf("%s at neighbor load %.2f tripped the sanitizer: %v", alg.Name(), tc.load, err)
			}
			minimalAboveKnee := tc.alg == "min" && tc.load > sat
			switch {
			case !minimalAboveKnee:
				if res.Saturated {
					t.Errorf("%s saturated at neighbor load %.2f", alg.Name(), tc.load)
				}
				if res.AcceptedRate < 0.85*tc.load {
					t.Errorf("%s accepted %.3f of %.2f offered below saturation",
						alg.Name(), res.AcceptedRate, tc.load)
				}
			default:
				if res.AcceptedRate > 1.25*sat {
					t.Errorf("MIN accepted %.3f at neighbor load %.2f, above the %.4f analytic ceiling",
						res.AcceptedRate, tc.load, sat)
				}
			}
		})
	}
}

// TestDragonflyAdversarial straddles both dragonfly knees on the
// worst-case pattern (each group's a·p = 8 terminals target the next
// group): MIN against the single shared global channel at 1/(a·p) =
// 0.125, the UGAL variants against the h/(2p) = 0.5 non-minimal bound.
func TestDragonflyAdversarial(t *testing.T) {
	d := modernDF(t)
	pat := traffic.NewWorstCase(d.A*d.P, d.Groups)
	minSat := analysis.DragonflyWCMinimal(d.A, d.P)   // 0.125
	nmSat := analysis.DragonflyWCNonMinimal(d.H, d.P) // 0.5
	cases := []struct {
		alg  string
		load float64
		sat  float64
	}{
		{"min", 0.08, minSat}, {"min", 0.3, minSat},
		// The parallel UGAL variant only sees the congested global channel
		// (owned by another router of the group) through backpressure, so
		// its worst-case knee sits well below h/(2p) — the dragonfly
		// paper's motivation for globally-informed UGAL. Straddle wider:
		// below the minimal knee it must still be clean, and past the
		// non-minimal bound it cannot beat the channel-load ceiling.
		{"ugal", 0.1, nmSat}, {"ugal", 0.7, nmSat},
		// Sequential allocation propagates queue growth within the cycle,
		// which is enough information to hold the analytic knee.
		{"ugal-s", 0.3, nmSat}, {"ugal-s", 0.7, nmSat},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.alg+"/wc", func(t *testing.T) {
			alg, err := routing.NewDragonflyAlgorithm(tc.alg, d)
			if err != nil {
				t.Fatal(err)
			}
			rc := sim.RunConfig{
				Load: tc.load, Pattern: pat,
				Warmup: 300, Measure: 500, MaxCycles: 1500,
			}
			done := check.Arm(&rc, check.Config{})
			res, err := sim.RunLoadPoint(d.Graph(), alg, sim.DefaultConfig(), rc)
			if err != nil {
				t.Fatal(err)
			}
			if err := done(); err != nil {
				t.Fatalf("%s at WC load %.2f tripped the sanitizer: %v", alg.Name(), tc.load, err)
			}
			switch {
			case tc.load < tc.sat:
				if res.Saturated {
					t.Errorf("%s saturated at WC load %.2f, below the %.4f bound",
						alg.Name(), tc.load, tc.sat)
				}
				if res.AcceptedRate < 0.85*tc.load {
					t.Errorf("%s accepted %.3f of %.2f offered below saturation",
						alg.Name(), res.AcceptedRate, tc.load)
				}
			default:
				if res.AcceptedRate > 1.25*tc.sat {
					t.Errorf("%s accepted %.3f at WC load %.2f, above the %.4f analytic ceiling",
						alg.Name(), res.AcceptedRate, tc.load, tc.sat)
				}
			}
		})
	}
}
