// Golden-run corpus: a fixed set of small sanitized simulations whose
// complete results are pinned in testdata/golden/*.json. Any change to
// simulator timing, routing decisions, RNG streams or the sweep job hash
// shows up as a corpus diff — intentional changes regenerate the corpus
// with `go test ./internal/check -run Golden -update`.
package check_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"flatnet/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite the golden-run corpus from current simulator output")

// goldenJobs is the corpus: one job per topology family plus multi-flit,
// adversarial-traffic and batch-mode coverage. Keep jobs small — the
// whole corpus must simulate in well under a second.
var goldenJobs = []sweep.Job{
	{Net: "flatfly", K: 4, N: 2, Alg: "UGAL-S", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.4, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "flatfly", K: 4, N: 2, Alg: "CLOS AD", Pattern: "WC",
		Mode: sweep.ModeLoad, Load: 0.3, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "flatfly", K: 4, N: 2, Alg: "MIN AD", Pattern: "UR", PacketSize: 4,
		Mode: sweep.ModeLoad, Load: 0.3, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "butterfly", K: 4, N: 2, Alg: "destination", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.3, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "foldedclos", K: 4, Uplinks: 2, Leaves: 4, Middles: 1,
		Alg: "adaptive sequential", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.3, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "hypercube", N: 4, Alg: "e-cube", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.3, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "flatfly", K: 4, N: 2, Alg: "VAL", Pattern: "UR",
		Mode: sweep.ModeBatch, BatchSize: 8, Seed: 7},
}

// goldenName derives the corpus file name from the job's identity.
func goldenName(j sweep.Job) string {
	j = j.Normalize()
	return fmt.Sprintf("%s_%s.json", j.Net, j.Hash()[:12])
}

// floatEq compares two JSON numbers with a 1e-9 relative epsilon:
// simulation results are deterministic, but the corpus should not pin
// the last bits of float formatting.
func floatEq(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}

// jsonEq recursively compares decoded JSON values, applying floatEq to
// numbers; path labels the first difference for the failure message.
func jsonEq(path string, a, b any) (string, bool) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok || len(av) != len(bv) {
			return path, false
		}
		for k := range av {
			if diff, ok := jsonEq(path+"."+k, av[k], bv[k]); !ok {
				return diff, false
			}
		}
		return "", true
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			return path, false
		}
		for i := range av {
			if diff, ok := jsonEq(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i]); !ok {
				return diff, false
			}
		}
		return "", true
	case float64:
		bv, ok := b.(float64)
		if !ok || !floatEq(av, bv) {
			return path, false
		}
		return "", true
	default:
		if a != b {
			return path, false
		}
		return "", true
	}
}

// TestGoldenCorpus runs every corpus job under the sanitizer and holds
// the full result — job normalization, content hash, latency histogram
// percentiles, throughput, cycle counts — to the pinned files.
func TestGoldenCorpus(t *testing.T) {
	for _, job := range goldenJobs {
		name := goldenName(job)
		t.Run(name, func(t *testing.T) {
			res, err := job.RunChecked(nil)
			if err != nil {
				t.Fatal(err)
			}
			res.ElapsedSeconds = 0 // wall-clock is not part of the contract
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			var gv, wv any
			if err := json.Unmarshal(got, &gv); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(want, &wv); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if diff, ok := jsonEq("result", wv, gv); !ok {
				t.Errorf("golden drift at %s\ngot:  %s\nwant: %s\n(intentional? regenerate with -update)",
					diff, got, want)
			}
		})
	}
}
