// Golden-run corpus: a fixed set of small sanitized simulations whose
// complete results are pinned in testdata/golden/*.json. Any change to
// simulator timing, routing decisions, RNG streams or the sweep job hash
// shows up as a corpus diff — intentional changes regenerate the corpus
// with `go test ./internal/check -run Golden -update`.
package check_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/sweep"
	"flatnet/internal/traffic"
)

var update = flag.Bool("update", false, "rewrite the golden-run corpus from current simulator output")

// goldenJobs is the corpus: one job per topology family plus multi-flit,
// adversarial-traffic and batch-mode coverage. Keep jobs small — the
// whole corpus must simulate in well under a second.
var goldenJobs = []sweep.Job{
	{Net: "flatfly", K: 4, N: 2, Alg: "UGAL-S", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.4, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "flatfly", K: 4, N: 2, Alg: "CLOS AD", Pattern: "WC",
		Mode: sweep.ModeLoad, Load: 0.3, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "flatfly", K: 4, N: 2, Alg: "MIN AD", Pattern: "UR", PacketSize: 4,
		Mode: sweep.ModeLoad, Load: 0.3, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "butterfly", K: 4, N: 2, Alg: "destination", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.3, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "foldedclos", K: 4, Uplinks: 2, Leaves: 4, Middles: 1,
		Alg: "adaptive sequential", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.3, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "hypercube", N: 4, Alg: "e-cube", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.3, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "flatfly", K: 4, N: 2, Alg: "VAL", Pattern: "UR",
		Mode: sweep.ModeBatch, BatchSize: 8, Seed: 7},
	{Net: "slimfly", Q: 5, P: 2, Alg: "min", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.2, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "slimfly", Q: 5, P: 2, Alg: "min", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.5, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "slimfly", Q: 5, P: 2, Alg: "ugal", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.2, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "slimfly", Q: 5, P: 2, Alg: "ugal", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.5, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "dragonfly", H: 2, Alg: "min", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.2, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "dragonfly", H: 2, Alg: "min", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.5, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "dragonfly", H: 2, Alg: "ugal", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.2, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "dragonfly", H: 2, Alg: "ugal", Pattern: "UR",
		Mode: sweep.ModeLoad, Load: 0.5, Warmup: 200, Measure: 300, Seed: 7},
	// Workload-engine coverage: the MMPP/burst arrival process, the
	// parameterized hotspot and incast patterns, and a collective
	// schedule contending with background traffic.
	{Net: "flatfly", K: 4, N: 2, Alg: "UGAL-S", Pattern: "UR",
		BurstPeak: 0.8, BurstLen: 12,
		Mode: sweep.ModeLoad, Load: 0.3, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "flatfly", K: 4, N: 2, Alg: "MIN AD", Pattern: "HS",
		Hot: []int{0, 5}, HotFraction: 0.2,
		Mode: sweep.ModeLoad, Load: 0.2, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "flatfly", K: 4, N: 2, Alg: "CLOS AD", Pattern: "IC",
		Mode: sweep.ModeLoad, Load: 0.05, Warmup: 200, Measure: 300, Seed: 7},
	{Net: "flatfly", K: 4, N: 2, Alg: "UGAL-S", Pattern: "UR",
		Mode: sweep.ModeCollective, Collective: "alltoall", Chunk: 2,
		Load: 0.1, Warmup: 100, Seed: 7},
}

// goldenName derives the corpus file name from the job's identity.
func goldenName(j sweep.Job) string {
	j = j.Normalize()
	return fmt.Sprintf("%s_%s.json", j.Net, j.Hash()[:12])
}

// floatEq compares two JSON numbers with a 1e-9 relative epsilon:
// simulation results are deterministic, but the corpus should not pin
// the last bits of float formatting.
func floatEq(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}

// jsonEq recursively compares decoded JSON values, applying floatEq to
// numbers; path labels the first difference for the failure message.
func jsonEq(path string, a, b any) (string, bool) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok || len(av) != len(bv) {
			return path, false
		}
		for k := range av {
			if diff, ok := jsonEq(path+"."+k, av[k], bv[k]); !ok {
				return diff, false
			}
		}
		return "", true
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			return path, false
		}
		for i := range av {
			if diff, ok := jsonEq(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i]); !ok {
				return diff, false
			}
		}
		return "", true
	case float64:
		bv, ok := b.(float64)
		if !ok || !floatEq(av, bv) {
			return path, false
		}
		return "", true
	default:
		if a != b {
			return path, false
		}
		return "", true
	}
}

// TestGoldenCorpusUnchecked replays the corpus through the bare
// simulator — no sanitizer attached, every hook nil, the allocation-free
// hot path fully enabled — and holds the full results to the same pinned
// files. Together with TestGoldenCorpus this pins two properties: the
// optimized core is bit-identical to the corpus, and attaching the
// sanitizer observes without perturbing.
func TestGoldenCorpusUnchecked(t *testing.T) {
	if *update {
		t.Skip("corpus is regenerated by TestGoldenCorpus")
	}
	for _, job := range goldenJobs {
		name := goldenName(job)
		t.Run(name, func(t *testing.T) {
			res, err := job.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			res.ElapsedSeconds = 0
			got, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name))
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			var gv, wv any
			if err := json.Unmarshal(got, &gv); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(want, &wv); err != nil {
				t.Fatal(err)
			}
			if diff, ok := jsonEq("result", wv, gv); !ok {
				t.Errorf("unchecked run drifted from the corpus at %s\ngot:  %s\nwant: %s", diff, got, want)
			}
		})
	}
}

// TestGoldenCorpusParallel replays the corpus with the cycle core
// partitioned across 4 workers and holds the full results to the same
// pinned files — the sharded scheduler's determinism contract: the same
// delivery sequence, arbiter decisions and RNG draws as the sequential
// corpus, byte for byte, at any worker count. Workers is an execution
// detail excluded from the job hash, so even the pinned content hashes
// must come out identical.
func TestGoldenCorpusParallel(t *testing.T) {
	if *update {
		t.Skip("corpus is regenerated by TestGoldenCorpus")
	}
	for _, job := range goldenJobs {
		name := goldenName(job)
		t.Run(name, func(t *testing.T) {
			job.Workers = 4
			res, err := job.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			res.ElapsedSeconds = 0
			got, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name))
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			var gv, wv any
			if err := json.Unmarshal(got, &gv); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(want, &wv); err != nil {
				t.Fatal(err)
			}
			if diff, ok := jsonEq("result", wv, gv); !ok {
				t.Errorf("parallel run drifted from the corpus at %s\ngot:  %s\nwant: %s", diff, got, want)
			}
		})
	}
}

// TestGoldenCorpusWarmRestored replays the load-mode corpus through the
// warm-snapshot store twice: a seeding pass checkpoints each job's
// warmed network, then restored passes at 1 and 4 cycle-core workers
// re-run the measurement phase from those snapshots. Every restored
// result must match the pinned corpus byte for byte — restore-then-run
// is bit-identical to run-straight-through — while skipping each job's
// entire warm-up window.
func TestGoldenCorpusWarmRestored(t *testing.T) {
	if *update {
		t.Skip("corpus is regenerated by TestGoldenCorpus")
	}
	var loadJobs []sweep.Job
	wantSaved := int64(0)
	for _, j := range goldenJobs {
		if j.Mode == sweep.ModeLoad {
			loadJobs = append(loadJobs, j)
			wantSaved += int64(j.Warmup)
		}
	}
	ws, err := sweep.OpenWarmStore(filepath.Join(t.TempDir(), "warm"))
	if err != nil {
		t.Fatal(err)
	}
	seed := &sweep.Engine{Workers: 2, Warm: ws}
	if _, err := seed.Run(context.Background(), loadJobs); err != nil {
		t.Fatal(err)
	}
	if st := seed.Stats(); st.WarmPuts != len(loadJobs) {
		t.Fatalf("seeding pass saved %d snapshots, want %d", st.WarmPuts, len(loadJobs))
	}
	for _, simWorkers := range []int{1, 4} {
		jobs := make([]sweep.Job, len(loadJobs))
		copy(jobs, loadJobs)
		for i := range jobs {
			jobs[i].Workers = simWorkers
		}
		eng := &sweep.Engine{Workers: 2, Warm: ws}
		results, err := eng.Run(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		st := eng.Stats()
		if st.WarmHits != len(jobs) || st.WarmCyclesSaved != wantSaved {
			t.Fatalf("simworkers=%d: %d warm hits (%d cycles saved), want %d hits (%d cycles)",
				simWorkers, st.WarmHits, st.WarmCyclesSaved, len(jobs), wantSaved)
		}
		for i, res := range results {
			name := goldenName(loadJobs[i])
			if !res.WarmStart {
				t.Fatalf("simworkers=%d: %s ran cold", simWorkers, name)
			}
			res.ElapsedSeconds = 0
			got, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name))
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			var gv, wv any
			if err := json.Unmarshal(got, &gv); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(want, &wv); err != nil {
				t.Fatal(err)
			}
			if diff, ok := jsonEq("result", wv, gv); !ok {
				t.Errorf("simworkers=%d: restored run drifted from the corpus at %s\ngot:  %s\nwant: %s",
					simWorkers, diff, got, want)
			}
		}
	}
}

// TestGoldenTraceReplay pins the JSONL workload-trace path: a fixed
// bursty run records its injections to testdata/golden/workload.jsonl,
// and replaying that trace — at 1 and 4 cycle-core workers — must
// reproduce the pinned delivery summary exactly. Regenerated with
// -update like the rest of the corpus.
func TestGoldenTraceReplay(t *testing.T) {
	ff, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = 7
	tracePath := filepath.Join("testdata", "golden", "workload.jsonl")
	sumPath := filepath.Join("testdata", "golden", "workload_replay.json")

	if *update {
		n, err := sim.New(ff.Graph(), routing.NewUGALS(ff), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		entries := n.RecordTrace()
		src, err := traffic.NewOnOff(traffic.NewUniform(n.NumNodes()), 0.8, 12)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.SetSource(src); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			if err := n.Generate(0.25); err != nil {
				t.Fatal(err)
			}
			n.Step()
		}
		var buf bytes.Buffer
		if err := sim.WriteTraceJSONL(&buf, *entries); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	type summary struct {
		Injected  int64   `json:"injected"`
		Delivered int64   `json:"delivered"`
		Cycles    int64   `json:"cycles"`
		AvgLat    float64 `json:"avg_latency"`
	}
	replay := func(workers int) summary {
		f, err := os.Open(tracePath)
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		defer f.Close()
		n, err := sim.New(ff.Graph(), routing.NewUGALS(ff), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		if workers > 1 {
			if err := n.SetWorkers(workers); err != nil {
				t.Fatal(err)
			}
		}
		var s summary
		var latSum float64
		n.OnDeliver(func(p *sim.Packet, cycle int64) {
			s.Delivered++
			latSum += float64(cycle - p.InjectCycle)
		})
		s.Injected, err = n.ReplayTrace(sim.NewTraceScanner(f), 200000)
		if err != nil {
			t.Fatal(err)
		}
		s.Cycles = n.Cycle()
		s.AvgLat = latSum / float64(s.Delivered)
		return s
	}

	got := replay(1)
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if *update {
		if err := os.WriteFile(sumPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(sumPath)
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		var gv, wv any
		if err := json.Unmarshal(data, &gv); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(want, &wv); err != nil {
			t.Fatal(err)
		}
		if diff, ok := jsonEq("replay", wv, gv); !ok {
			t.Errorf("trace replay drifted from the corpus at %s\ngot:  %s\nwant: %s", diff, data, want)
		}
	}
	if par := replay(4); par != got {
		t.Errorf("parallel trace replay diverged:\nworkers=1 %+v\nworkers=4 %+v", got, par)
	}
}

// TestGoldenCorpus runs every corpus job under the sanitizer and holds
// the full result — job normalization, content hash, latency histogram
// percentiles, throughput, cycle counts — to the pinned files.
func TestGoldenCorpus(t *testing.T) {
	for _, job := range goldenJobs {
		name := goldenName(job)
		t.Run(name, func(t *testing.T) {
			res, err := job.RunChecked(nil)
			if err != nil {
				t.Fatal(err)
			}
			res.ElapsedSeconds = 0 // wall-clock is not part of the contract
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			var gv, wv any
			if err := json.Unmarshal(got, &gv); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(want, &wv); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if diff, ok := jsonEq("result", wv, gv); !ok {
				t.Errorf("golden drift at %s\ngot:  %s\nwant: %s\n(intentional? regenerate with -update)",
					diff, got, want)
			}
		})
	}
}
