// Deliberate-fault tests: each sanitizer checker must fire — with cycle
// and channel context — when the corresponding corruption is injected
// into an otherwise healthy simulation, and stay silent on clean runs.
package check_test

import (
	"strings"
	"testing"

	"flatnet/internal/check"
	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// newChecked builds a small flattened-butterfly network with a sanitizer
// attached and Bernoulli traffic armed.
func newChecked(t *testing.T, cfg sim.Config, ccfg check.Config, load float64) (*sim.Network, *check.Sanitizer) {
	t.Helper()
	f, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.New(f.Graph(), routing.NewMinAD(f), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(n.NumNodes()))
	s := check.Attach(n, ccfg)
	_ = load
	return n, s
}

func stepLoaded(n *sim.Network, load float64, cycles int) {
	for i := 0; i < cycles; i++ {
		n.GenerateBernoulli(load)
		n.Step()
	}
}

// drain steps without injection until the network empties.
func drain(t *testing.T, n *sim.Network, maxCycles int) {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		if n.Quiescent() {
			return
		}
		n.Step()
	}
	t.Fatalf("network did not drain within %d cycles", maxCycles)
}

func TestCleanRunNoViolations(t *testing.T) {
	for _, size := range []int{1, 4} {
		cfg := sim.DefaultConfig()
		cfg.PacketSize = size
		n, s := newChecked(t, cfg, check.Config{}, 0.4)
		stepLoaded(n, 0.4, 500)
		drain(t, n, 5000)
		if err := s.Finalize(); err != nil {
			t.Fatalf("PacketSize %d: clean run tripped the sanitizer: %v", size, err)
		}
	}
}

// injectFaultSomewhere scans the network for a viable fault site,
// stepping under load between scans: with sufficient switch speedup the
// input buffers often drain within the cycle, so a single between-steps
// snapshot may find nothing to corrupt.
func injectFaultSomewhere(t *testing.T, n *sim.Network, k sim.FaultKind, load float64) {
	t.Helper()
	g := n.Graph()
	for attempt := 0; attempt < 2000; attempt++ {
		for r := range g.Routers {
			ports := len(g.Routers[r].Out)
			if k == sim.FaultDropFlit {
				ports = len(g.Routers[r].In)
			}
			for p := 0; p < ports; p++ {
				for v := 0; v < n.VCs(); v++ {
					if n.InjectFault(k, topo.RouterID(r), p, v) == nil {
						return
					}
				}
			}
		}
		stepLoaded(n, load, 1)
	}
	t.Fatal("no viable fault site found; raise the load or run longer")
}

// expectKind asserts the sanitizer recorded a violation of the kind and
// that it carries cycle and channel context.
func expectKind(t *testing.T, s *check.Sanitizer, kind string, wantChannel bool) {
	t.Helper()
	for _, v := range s.Violations() {
		if v.Kind != kind {
			continue
		}
		if v.Cycle <= 0 {
			t.Errorf("%s violation lacks a cycle: %v", kind, v)
		}
		if wantChannel && v.Router < 0 {
			t.Errorf("%s violation lacks channel context: %v", kind, v)
		}
		if !strings.Contains(v.String(), kind) {
			t.Errorf("violation String() omits the kind: %q", v.String())
		}
		return
	}
	t.Fatalf("no %s violation recorded; got %v", kind, s.Violations())
}

func TestFaultDropFlitCaught(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Speedup = 1 // force crossbar contention so input buffers back up
	n, s := newChecked(t, cfg, check.Config{}, 0.8)
	stepLoaded(n, 0.8, 50)
	injectFaultSomewhere(t, n, sim.FaultDropFlit, 0.8)
	stepLoaded(n, 0.8, 2)
	expectKind(t, s, check.KindConservation, false)
	expectKind(t, s, check.KindChannelAudit, true)
	if s.Err() == nil {
		t.Fatal("Err() nil after violations")
	}
}

func TestFaultLeakCreditCaught(t *testing.T) {
	n, s := newChecked(t, sim.DefaultConfig(), check.Config{}, 0.5)
	stepLoaded(n, 0.5, 50)
	injectFaultSomewhere(t, n, sim.FaultLeakCredit, 0.5)
	stepLoaded(n, 0.5, 2)
	expectKind(t, s, check.KindChannelAudit, true)
}

func TestFaultDupCreditCaught(t *testing.T) {
	n, s := newChecked(t, sim.DefaultConfig(), check.Config{}, 0.5)
	stepLoaded(n, 0.5, 50)
	injectFaultSomewhere(t, n, sim.FaultDupCredit, 0.5)
	stepLoaded(n, 0.5, 2)
	expectKind(t, s, check.KindChannelAudit, true)
}

// TestFaultDoubleGrantCaught clears a held VC's owner mid-packet: the
// allocator then legally (from its view) grants the VC to a second
// packet, which the sanitizer's own ownership table catches.
func TestFaultDoubleGrantCaught(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.PacketSize = 6 // long wormholes keep VCs held across many cycles
	n, s := newChecked(t, cfg, check.Config{}, 0.8)
	// Step until some VC is held, then free it behind the checker's back.
	freed := false
	for i := 0; i < 2000 && !freed; i++ {
		stepLoaded(n, 0.8, 1)
		g := n.Graph()
		for r := range g.Routers {
			for p := range g.Routers[r].Out {
				for v := 0; v < n.VCs(); v++ {
					if n.InjectFault(sim.FaultFreeVC, topo.RouterID(r), p, v) == nil {
						freed = true
					}
				}
			}
		}
	}
	if !freed {
		t.Fatal("no held VC appeared to free")
	}
	stepLoaded(n, 0.8, 500)
	expectKind(t, s, check.KindDoubleGrant, true)
}

// TestDeadlockWatchdog wedges every network VC under a phantom wormhole
// owner: no head flit can ever be granted again, and the watchdog must
// report the stuck channels.
func TestDeadlockWatchdog(t *testing.T) {
	n, s := newChecked(t, sim.DefaultConfig(), check.Config{WatchdogCycles: 200}, 0.5)
	// Adversarial traffic keeps every destination off the source router:
	// under uniform traffic, same-router packets bypass the wedged
	// network channels and keep delivering, resetting the watchdog.
	n.SetPattern(traffic.NewWorstCase(4, 4))
	stepLoaded(n, 0.5, 50)
	g := n.Graph()
	for r := range g.Routers {
		for p := range g.Routers[r].Out {
			for v := 0; v < n.VCs(); v++ {
				n.InjectFault(sim.FaultSeizeVC, topo.RouterID(r), p, v)
			}
		}
	}
	// Keep injecting so flits are provably alive and wedged.
	stepLoaded(n, 0.5, 600)
	expectKind(t, s, check.KindDeadlock, false)
	found := false
	for _, v := range s.Violations() {
		if v.Kind == check.KindDeadlock {
			found = true
			if !strings.Contains(v.Detail, "stuck channels") {
				t.Errorf("deadlock report lacks stuck-channel dump: %s", v.Detail)
			}
		}
	}
	if !found {
		t.Fatal("watchdog did not fire")
	}
}

// TestStalledPacketCaughtAtFinalize drops a mid-packet flit: the packet
// can never complete, and Finalize must flag it even if the run "ends".
func TestWholenessOnDroppedFlit(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.PacketSize = 4
	cfg.Speedup = 1
	n, s := newChecked(t, cfg, check.Config{}, 0.5)
	stepLoaded(n, 0.5, 60)
	injectFaultSomewhere(t, n, sim.FaultDropFlit, 0.5)
	stepLoaded(n, 0.5, 200)
	// The mutilated packet's tail ejects after only PacketSize-1 flits
	// (or never, wedging its wormhole); either way a wholeness or
	// conservation violation must be on record.
	if s.Err() == nil {
		t.Fatal("dropped mid-wormhole flit went unnoticed")
	}
}

// TestSanitizerDoesNotPerturb verifies the run invariance contract:
// results with and without the sanitizer are identical.
func TestSanitizerDoesNotPerturb(t *testing.T) {
	f, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rc := sim.RunConfig{
		Load: 0.6, Pattern: traffic.NewUniform(f.NumNodes),
		Warmup: 200, Measure: 300,
	}
	plain, err := sim.RunLoadPoint(f.Graph(), routing.NewUGALS(f), sim.DefaultConfig(), rc)
	if err != nil {
		t.Fatal(err)
	}
	done := check.Arm(&rc, check.Config{})
	checked, err := sim.RunLoadPoint(f.Graph(), routing.NewUGALS(f), sim.DefaultConfig(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := done(); err != nil {
		t.Fatalf("sanitized run tripped: %v", err)
	}
	if plain != checked {
		t.Fatalf("sanitizer perturbed the simulation:\nplain   %+v\nchecked %+v", plain, checked)
	}
}

// TestInOrderDeliveryDeterministic runs e-cube (deterministic) traffic
// with the in-order checker on: single-path routing must never reorder a
// (src, dst) flow.
func TestInOrderDeliveryDeterministic(t *testing.T) {
	h, err := topo.NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.New(h.Graph(), routing.NewECube(h), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(n.NumNodes()))
	s := check.Attach(n, check.Config{InOrder: true})
	stepLoaded(n, 0.5, 800)
	drain(t, n, 5000)
	if err := s.Finalize(); err != nil {
		t.Fatalf("e-cube reordered or tripped: %v", err)
	}
}
