package sim

import (
	"fmt"

	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// Collective kinds accepted by CollectiveConfig.Kind.
const (
	// CollectiveAllToAll is the personalized all-to-all exchange: N-1
	// barrier-synchronized phases, where phase r has every node i send
	// one transfer to node (i+r) mod N.
	CollectiveAllToAll = "alltoall"
	// CollectiveAllReduce is the ring all-reduce: 2(N-1) phases (N-1
	// reduce-scatter plus N-1 all-gather), each a neighbor exchange of
	// one chunk from node i to node (i+1) mod N.
	CollectiveAllReduce = "allreduce"
)

// CollectiveConfig describes one collective schedule run to completion
// on a freshly built network — the workload family that measures
// end-to-end completion time rather than steady-state latency.
type CollectiveConfig struct {
	// Kind selects the schedule: CollectiveAllToAll or
	// CollectiveAllReduce.
	Kind string
	// Packets is the payload of each phase transfer, in packets
	// (default 1). For all-reduce this is the per-chunk size.
	Packets int
	// Source, when non-nil, injects background traffic at Load on every
	// cycle of the run (warm-up included), so the collective contends
	// with it. Pattern is the Bernoulli-arrival shorthand, as in
	// RunConfig; setting both Source and Pattern is an error. Leaving
	// both nil runs the collective on a quiet network.
	Source  traffic.Source
	Pattern traffic.Pattern
	// Load is the background offered load in flits per node per cycle;
	// only meaningful with a Source or Pattern.
	Load float64
	// Warmup is how many cycles of background traffic to run before the
	// first phase (0 = none).
	Warmup int
	// MaxCycles bounds the whole run; 0 picks a default proportional to
	// the schedule size. Exceeding it is an error (the collective never
	// completed — the network is saturated).
	MaxCycles int64
	// Workers partitions the cycle core across this many worker
	// goroutines, as in RunConfig.Workers. Results are bit-identical at
	// every worker count.
	Workers int
	// Stop, when non-nil, is polled every few hundred cycles; returning
	// true aborts the run with an error wrapping ErrStopped.
	Stop func() bool
	// Attach, when non-nil, is called with the freshly built network
	// before the first cycle — the instrumentation hook, as in
	// BatchConfig.Attach.
	Attach func(n *Network)
}

// CollectiveResult reports one completed collective schedule.
type CollectiveResult struct {
	// Kind and Nodes echo the run.
	Kind  string `json:"kind"`
	Nodes int    `json:"nodes"`
	// Phases is the number of barrier-synchronized phases executed;
	// Transfers and Packets total the traffic moved.
	Phases    int   `json:"phases"`
	Transfers int   `json:"transfers"`
	Packets   int64 `json:"packets"`
	// Cycles is the end-to-end completion time: first phase start to
	// last delivery of the last phase, background warm-up excluded.
	Cycles int64 `json:"cycles"`
	// MaxPhaseCycles is the slowest single phase; AvgPhaseCycles the
	// mean over phases.
	MaxPhaseCycles int64   `json:"max_phase_cycles"`
	AvgPhaseCycles float64 `json:"avg_phase_cycles"`
}

// collectivePhases returns the phase count and the per-phase pair
// schedule for a kind. Every returned phase maps node i to its
// destination for that phase.
func collectivePhases(kind string, nodes int) (int, func(phase, i int) int, error) {
	switch kind {
	case CollectiveAllToAll:
		return nodes - 1, func(phase, i int) int { return (i + phase) % nodes }, nil
	case CollectiveAllReduce:
		// Both the reduce-scatter and all-gather halves are ring
		// neighbor exchanges; the chunk index differs but the traffic
		// does not.
		return 2 * (nodes - 1), func(phase, i int) int { return (i + 1) % nodes }, nil
	default:
		return 0, nil, fmt.Errorf("sim: unknown collective %q (have %s, %s)",
			kind, CollectiveAllToAll, CollectiveAllReduce)
	}
}

// RunCollective executes one collective schedule on a fresh network and
// measures its end-to-end completion. Each phase issues one StartTransfer
// per node and advances the network — background traffic included —
// until every transfer of the phase has drained, then the next phase
// begins: the barrier-synchronized model of collective libraries.
func RunCollective(g *topo.Graph, alg Algorithm, cfg Config, cc CollectiveConfig) (CollectiveResult, error) {
	nodes := g.NumNodes
	if nodes < 2 {
		return CollectiveResult{}, fmt.Errorf("sim: collective needs >= 2 nodes, got %d", nodes)
	}
	phases, dest, err := collectivePhases(cc.Kind, nodes)
	if err != nil {
		return CollectiveResult{}, err
	}
	packets := cc.Packets
	if packets < 1 {
		packets = 1
	}
	src := cc.Source
	if src != nil && cc.Pattern != nil {
		return CollectiveResult{}, fmt.Errorf("sim: CollectiveConfig.Source and Pattern are mutually exclusive")
	}
	if src == nil && cc.Pattern != nil {
		src = traffic.NewBernoulli(cc.Pattern)
	}
	if src == nil && cc.Load > 0 {
		return CollectiveResult{}, fmt.Errorf("sim: collective background load needs a Source or Pattern")
	}

	n, err := New(g, alg, cfg)
	if err != nil {
		return CollectiveResult{}, err
	}
	defer n.Close()
	if cc.Workers > 1 {
		if err := n.SetWorkers(cc.Workers); err != nil {
			return CollectiveResult{}, err
		}
	}
	if src != nil {
		if err := n.SetSource(src); err != nil {
			return CollectiveResult{}, err
		}
	}
	if cc.Attach != nil {
		cc.Attach(n)
	}
	advance := func() error {
		if cc.Stop != nil && n.Cycle()&0x1ff == 0 && cc.Stop() {
			return fmt.Errorf("sim: collective %s aborted: %w", cc.Kind, ErrStopped)
		}
		if src != nil && cc.Load > 0 {
			if err := n.Generate(cc.Load); err != nil {
				return err
			}
		}
		n.Step()
		return nil
	}
	for i := 0; i < cc.Warmup; i++ {
		if err := advance(); err != nil {
			return CollectiveResult{}, err
		}
	}

	maxCycles := cc.MaxCycles
	if maxCycles <= 0 {
		maxCycles = int64(1000) * int64(phases) * int64(packets)
	}
	deadline := n.Cycle() + maxCycles

	res := CollectiveResult{Kind: cc.Kind, Nodes: nodes, Phases: phases}
	start := n.Cycle()
	trs := make([]*Transfer, 0, nodes)
	for phase := 1; phase <= phases; phase++ {
		trs = trs[:0]
		for i := 0; i < nodes; i++ {
			d := dest(phase, i)
			tr, err := n.StartTransfer(topo.NodeID(i), topo.NodeID(d), packets)
			if err != nil {
				return CollectiveResult{}, err
			}
			trs = append(trs, tr)
		}
		res.Transfers += nodes
		res.Packets += int64(nodes) * int64(packets)
		phaseStart := n.Cycle()
		for pending := len(trs); pending > 0; {
			if n.Cycle() >= deadline {
				return CollectiveResult{}, fmt.Errorf(
					"sim: collective %s did not complete phase %d/%d within %d cycles (saturated)",
					cc.Kind, phase, phases, maxCycles)
			}
			if err := advance(); err != nil {
				return CollectiveResult{}, err
			}
			pending = 0
			for _, tr := range trs {
				if !tr.Done() {
					pending++
				}
			}
		}
		pc := n.Cycle() - phaseStart
		if pc > res.MaxPhaseCycles {
			res.MaxPhaseCycles = pc
		}
	}
	res.Cycles = n.Cycle() - start
	res.AvgPhaseCycles = float64(res.Cycles) / float64(phases)
	return res, nil
}
