package sim

import "math/bits"

// arena owns the cycle core's recycled memory: the packet freelist and
// spare event-calendar backing arrays. Every steady-state allocation site
// of the hot loop drains from here instead of the heap — delivered packets
// and outgrown calendar slots return their memory, so once the network
// reaches its working set a Step performs no allocations at all (the
// contract BenchmarkSimulatorCycles and TestStepZeroAlloc pin).
type arena struct {
	packets []*Packet
	// evFree[c] holds spare event blocks of capacity exactly 1<<c. Blocks
	// are always power-of-two sized, so an outgrown slot's array is
	// reusable verbatim by the next slot reaching that size.
	evFree [28][][]event
}

// allocPacket takes a packet from the freelist or allocates one.
func (a *arena) allocPacket() *Packet {
	if len(a.packets) > 0 {
		p := a.packets[len(a.packets)-1]
		a.packets = a.packets[:len(a.packets)-1]
		p.reset()
		return p
	}
	return &Packet{Inter: -1}
}

// freePacket returns a delivered packet to the freelist.
func (a *arena) freePacket(p *Packet) {
	a.packets = append(a.packets, p)
}

// minEventClass is the smallest event block handed out: 1<<3 = 8 events.
const minEventClass = 3

// growEvents returns a block with room beyond len(old), carrying over
// old's contents; old's backing array (always pow-2 capacity) goes back on
// the free list for another calendar slot to reuse.
func (a *arena) growEvents(old []event) []event {
	class := minEventClass
	if cap(old) > 0 {
		class = bits.Len(uint(cap(old))) // cap is 1<<(class-1): next class up
		if class < minEventClass {
			class = minEventClass
		}
	}
	var grown []event
	if free := a.evFree[class]; len(free) > 0 {
		grown = free[len(free)-1][:0]
		a.evFree[class] = free[:len(free)-1]
	} else {
		grown = make([]event, 0, 1<<uint(class))
	}
	grown = append(grown, old...)
	if cap(old) >= 1<<minEventClass {
		oc := bits.Len(uint(cap(old))) - 1
		a.evFree[oc] = append(a.evFree[oc], old[:0])
	}
	return grown
}
