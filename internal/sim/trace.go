package sim

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"flatnet/internal/topo"
)

// TraceEntry is one packet arrival in a traffic trace: at Cycle, node Src
// generates Size packets for Dst (0 and 1 both mean one packet — the
// text trace format and RecordTrace emit single-packet entries).
type TraceEntry struct {
	Cycle int64
	Src   topo.NodeID
	Dst   topo.NodeID
	Size  int
}

// packets returns the entry's packet count.
func (e TraceEntry) packets() int {
	if e.Size < 1 {
		return 1
	}
	return e.Size
}

// InjectAt schedules a single packet arrival at the given node with an
// explicit destination and arrival timestamp. Trace-driven injection
// bypasses the installed Pattern for these packets. Arrivals must be
// scheduled in non-decreasing timestamp order per node (FIFO source
// queues).
func (n *Network) InjectAt(src topo.NodeID, ts int64, dst topo.NodeID) error {
	if int(src) < 0 || int(src) >= len(n.sources) {
		return fmt.Errorf("sim: trace source %d out of range", src)
	}
	if int(dst) < 0 || int(dst) >= n.g.NumNodes {
		return fmt.Errorf("sim: trace destination %d out of range", dst)
	}
	s := &n.sources[src]
	s.pushTraced(ts, dst)
	n.wakeSource(int(src))
	if ts >= n.measStart && ts < n.measEnd {
		n.measCreated++
	}
	return nil
}

// LoadTrace schedules every entry of a trace. Entries are sorted by
// (cycle, source) first so per-node FIFO order holds regardless of input
// order. Entries with timestamps earlier than the current cycle are
// injected as soon as possible.
func (n *Network) LoadTrace(entries []TraceEntry) error {
	sorted := append([]TraceEntry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Cycle != sorted[j].Cycle {
			return sorted[i].Cycle < sorted[j].Cycle
		}
		return sorted[i].Src < sorted[j].Src
	})
	for _, e := range sorted {
		for k := e.packets(); k > 0; k-- {
			if err := n.InjectAt(e.Src, e.Cycle, e.Dst); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadTrace parses a whitespace-separated text trace: one "cycle src dst"
// triple per line; blank lines and lines starting with '#' are ignored.
func ReadTrace(r io.Reader) ([]TraceEntry, error) {
	var out []TraceEntry
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		var e TraceEntry
		if _, err := fmt.Sscan(text, &e.Cycle, &e.Src, &e.Dst); err != nil {
			return nil, fmt.Errorf("sim: trace line %d: %w", line, err)
		}
		if e.Cycle < 0 || e.Src < 0 || e.Dst < 0 {
			return nil, fmt.Errorf("sim: trace line %d: negative field", line)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteTrace emits entries in the ReadTrace text format.
func WriteTrace(w io.Writer, entries []TraceEntry) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# cycle src dst")
	for _, e := range entries {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.Cycle, e.Src, e.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// OnMaterialize installs a callback invoked when a generated packet is
// materialized into the network (its destination drawn and its ID
// assigned). At most one callback is active; installing replaces any
// previous one. The callback must not retain the packet.
func (n *Network) OnMaterialize(f func(p *Packet)) {
	n.onMaterialize = f
}

// RecordTrace installs an injection recorder: every packet arrival
// generated after this call (by Generate, GenerateBernoulli or
// InjectAt) is appended to the returned slice pointer's target when it is
// materialized into the network. It uses the OnMaterialize hook.
//
// Recording happens at materialization time, when the destination is
// drawn, so the recorded trace replays the exact same (cycle, src, dst)
// triples. Note that materialization can lag arrival under backlog; the
// recorded Cycle field is the original arrival timestamp.
func (n *Network) RecordTrace() *[]TraceEntry {
	rec := &[]TraceEntry{}
	n.OnMaterialize(func(p *Packet) {
		*rec = append(*rec, TraceEntry{Cycle: p.InjectCycle, Src: p.Src, Dst: p.Dst})
	})
	return rec
}
