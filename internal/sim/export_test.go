package sim

// SetStepAll switches a network between the active-worklist scheduler
// (false, the default) and the debug full-scan scheduler that visits
// every router and source each cycle (true). The two must be
// observationally identical; worklist_test.go holds them to it.
func SetStepAll(n *Network, v bool) { n.stepAll = v }

// NumShards reports how many shards the network's scheduler runs across:
// 1 until (and unless) the first Step partitions it. parallel_test.go
// uses it to prove a partition actually happened (or was correctly
// declined).
func NumShards(n *Network) int { return len(n.sh) }
