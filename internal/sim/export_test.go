package sim

// SetStepAll switches a network between the active-worklist scheduler
// (false, the default) and the debug full-scan scheduler that visits
// every router and source each cycle (true). The two must be
// observationally identical; worklist_test.go holds them to it.
func SetStepAll(n *Network, v bool) { n.stepAll = v }
