package sim

import (
	"fmt"
	"sync"
)

// This file implements the deterministic sharded-parallel cycle core
// (DESIGN.md §13). Routers are partitioned into contiguous ranges, one
// shard per worker; each shard owns its routers' full per-cycle state:
// calendar slots, arena, active worklists, and the RouterView handed to
// Route. Because every channel has latency >= 1 cycle (topo.Graph
// enforces it), a flit granted in cycle c cannot influence any router
// before cycle c+1 — a one-cycle conservative lookahead — so shards only
// need to exchange events at per-cycle barriers:
//
//	phase A (parallel): drain inboxes, apply the cycle's flit arrivals
//	                    and credit returns; deliveries are deferred.
//	barrier:            the coordinator replays deferred deliveries in
//	                    exact sequential order (mergeDeliveries).
//	phase B (parallel): inject, route allocation, switch allocation.
//	barrier:            the coordinator applies deferred materialization
//	                    hooks, then advances the cycle.
//
// Determinism argument (why results are bit-identical to workers=1):
//   - Cross-shard events are only evFlit and evCredit. Within one
//     calendar slot their processing order is irrelevant: at most one
//     flit per (router, input port, VC) arrives per cycle (the upstream
//     channel serializes on nextFree), so flit pushes hit distinct FIFOs,
//     and credit returns are commutative increments. Each target drains
//     its inboxes in ascending source-shard order anyway, so even the
//     slot contents are deterministic.
//   - evDeliver events are always shard-local (a terminal output of the
//     shard's own router) and carry their scheduling delay; the merge
//     replays them ordered by (scheduling cycle, shard), which equals
//     the order the sequential calendar slot would hold them in:
//     sequential slots append chronologically, and within one scheduling
//     cycle switch allocation emits in ascending router order — which is
//     ascending shard order for contiguous partitions.
//   - Packet IDs in parallel mode are keyed (materialization cycle,
//     source index) — the exact order the sequential counter assigns
//     them in — so every age-arbiter tie-break compares identically.
//   - All RNG streams are per-router or per-source and owned by exactly
//     one shard; generation and injection hooks run on the caller thread
//     between phases.
//
// Each shard's arena is private: events recycle within the shard, and
// delivered packets return to the arena of the shard owning their source
// so steady-state runs stay allocation-free at every worker count.

// phase identifiers sent over a worker's start channel.
const (
	phaseEvents uint8 = iota // drain inboxes + processEvents
	phaseAlloc               // inject + route + switch allocation
)

// xev is one cross-shard event staged in an outbox: the event plus its
// absolute due cycle (the outbox cannot rely on slot position for time).
type xev struct {
	at int64
	ev event
}

// matEntry is one deferred packet materialization (parallel mode):
// transfer registration and the onMaterialize callback run at the
// barrier, on the coordinator, in sequential order.
type matEntry struct {
	pkt  *Packet
	xfer *Transfer
}

// shard owns a contiguous range of routers [r0,r1) and their attached
// sources [s0,s1), plus all per-cycle scheduler state for them.
type shard struct {
	n   *Network
	idx int
	r0  int
	r1  int
	s0  int
	s1  int

	calendar [][]event
	arena    arena
	view     RouterView

	// activeR bit (r - r0) is set while router r holds a buffered flit;
	// activeS bit (i - s0) while source i has injection work. Local
	// indexing keeps shards from sharing bitset words.
	activeR []uint64
	activeS []uint64

	// outbox[t] stages events for shard t, written during this shard's
	// phases and drained by t at the start of its next phase A. nil for
	// the bootstrap shard (sequential mode never stages).
	outbox [][]xev

	// pendDel collects this cycle's deferred evDeliver events in slot
	// order (sorted by scheduling cycle); delCur is the merge cursor.
	pendDel []event
	delCur  int

	// mat collects this cycle's deferred materializations in source order.
	mat []matEntry

	// start receives phase commands for worker shards (nil for shard 0,
	// which the coordinator drives directly).
	start chan uint8

	injected      int64
	flitsInjected int64
}

func newShard(n *Network, idx, r0, r1, s0, s1 int) *shard {
	sh := &shard{
		n: n, idx: idx, r0: r0, r1: r1, s0: s0, s1: s1,
		calendar: make([][]event, n.calLen),
		activeR:  make([]uint64, (r1-r0+63)/64),
		activeS:  make([]uint64, (s1-s0+63)/64),
	}
	sh.view.n = n
	return sh
}

// done signals phase completion from worker shards; wg tracks their
// goroutines for Close.
type workerPool struct {
	done chan struct{}
	wg   sync.WaitGroup
}

// SetWorkers requests that the cycle core run across k worker goroutines
// (k <= 1 selects the sequential scheduler, the default). It must be
// called before the first Step: the partition happens lazily at that
// point and is frozen afterwards.
//
// The effective worker count can be lower than requested: it is clamped
// to the router count, and networks with probes, a tracer, or sanitizer
// checks attached — or in stepAll debug mode, or whose terminals are not
// contiguous per router — fall back to the sequential scheduler, which
// is observationally identical.
//
// A network partitioned across workers owns goroutines; call Close when
// done with it.
func (n *Network) SetWorkers(k int) error {
	if n.started {
		return fmt.Errorf("sim: SetWorkers must be called before the first Step")
	}
	if k < 0 {
		return fmt.Errorf("sim: worker count must be >= 0, got %d", k)
	}
	if k == 0 {
		k = 1
	}
	n.workers = k
	return nil
}

// Workers returns the effective worker (shard) count: the requested
// count before the first Step, the frozen partition size after.
func (n *Network) Workers() int {
	if n.started {
		return len(n.sh)
	}
	if n.workers < 1 {
		return 1
	}
	return n.workers
}

// Close stops the worker goroutines of a partitioned network. It is
// idempotent and a no-op for sequential networks. Step must not be
// called after Close.
func (n *Network) Close() {
	if n.closed {
		return
	}
	n.closed = true
	for _, sh := range n.sh[1:] {
		if sh.start != nil {
			close(sh.start)
		}
	}
	n.pool.wg.Wait()
}

// startup freezes the partition at the first Step. For a freshly built
// network the bootstrap calendar and router worklists are empty (events
// and packets only exist inside Step); a network rebuilt by Restore
// carries live calendar events, worklist bits and counters, all of which
// partition() migrates to their owning shards.
func (n *Network) startup() {
	n.started = true
	k := n.workers
	if k <= 1 {
		return
	}
	// Instrumentation hooks run unsynchronized inside the pipeline; the
	// sequential scheduler is observationally identical, so fall back.
	if n.probes != nil || n.tracer != nil || n.checks != nil || n.stepAll {
		return
	}
	if k > len(n.routers) {
		k = len(n.routers)
	}
	// Sources must partition contiguously alongside their routers; every
	// shipped topology attaches terminals in router order, but fall back
	// rather than mis-partition if one ever does not.
	nr := n.g.NodeRouter
	for i := 1; i < len(nr); i++ {
		if nr[i] < nr[i-1] {
			return
		}
	}
	if k <= 1 {
		return
	}
	n.partition(k)
}

// partition replaces the bootstrap shard with k shards over contiguous
// router ranges and spawns the worker pool.
func (n *Network) partition(k int) {
	boot := n.sh[0]
	R, N := len(n.routers), n.g.NumNodes
	n.shardOf = make([]int32, R)
	n.shardOfNode = make([]int32, N)
	n.sh = make([]*shard, k)
	node := 0
	for i := 0; i < k; i++ {
		r0, r1 := i*R/k, (i+1)*R/k
		s0 := node
		for node < N && int(n.g.NodeRouter[node]) < r1 {
			node++
		}
		sh := newShard(n, i, r0, r1, s0, node)
		sh.outbox = make([][]xev, k)
		n.sh[i] = sh
		for r := r0; r < r1; r++ {
			n.shardOf[r] = int32(i)
		}
		for s := s0; s < node; s++ {
			n.shardOfNode[s] = int32(i)
		}
	}
	// Scatter the pre-Step source wakeups (SeedBatch, traces, transfers,
	// generation before the first Step) into the new shards.
	for i := 0; i < N; i++ {
		if boot.activeS[i>>6]&(1<<(uint(i)&63)) != 0 {
			sh := n.sh[n.shardOfNode[i]]
			li := uint(i - sh.s0)
			sh.activeS[li>>6] |= 1 << (li & 63)
		}
	}
	// Migrate restored state (sim.Restore rebuilds into the bootstrap
	// shard): router worklist bits, pending calendar events (per-slot
	// order preserved, so the merge ordering argument above still holds),
	// and lifetime injection counters, which stay summed on shard 0.
	for r := 0; r < R; r++ {
		if boot.activeR[r>>6]&(1<<(uint(r)&63)) != 0 {
			sh := n.sh[n.shardOf[r]]
			lr := uint(r - sh.r0)
			sh.activeR[lr>>6] |= 1 << (lr & 63)
		}
	}
	for slot := range boot.calendar {
		for _, ev := range boot.calendar[slot] {
			sh := n.sh[n.shardOf[ev.router]]
			evs := sh.calendar[slot]
			if len(evs) == cap(evs) {
				evs = sh.arena.growEvents(evs)
			}
			sh.calendar[slot] = append(evs, ev)
		}
	}
	n.sh[0].injected = boot.injected
	n.sh[0].flitsInjected = boot.flitsInjected
	n.par = true
	n.pool.done = make(chan struct{}, k-1)
	for _, sh := range n.sh[1:] {
		sh.start = make(chan uint8, 1)
		n.pool.wg.Add(1)
		go n.worker(sh)
	}
}

// worker drives one shard: run the commanded phase, signal done, repeat
// until the start channel closes. The channel operations provide the
// happens-before edges between the coordinator's cycle advance and the
// shard's reads of n.cycle.
func (n *Network) worker(sh *shard) {
	defer n.pool.wg.Done()
	for ph := range sh.start {
		if ph == phaseEvents {
			sh.processEvents()
		} else {
			sh.phaseAlloc()
		}
		n.pool.done <- struct{}{}
	}
}

// phaseAlloc is the second half of a parallel cycle: injection and the
// allocation pipeline, all shard-local (cross-shard effects stage into
// outboxes).
func (sh *shard) phaseAlloc() {
	sh.inject()
	sh.routeAllocate()
	sh.switchAllocate()
}

// stepParallel advances one cycle under the barrier scheduler. The
// caller thread doubles as shard 0's worker and as the coordinator for
// the two serial windows (delivery merge, materialization hooks).
func (n *Network) stepParallel() {
	rest := n.sh[1:]
	for _, sh := range rest {
		sh.start <- phaseEvents
	}
	n.sh[0].processEvents()
	for range rest {
		<-n.pool.done
	}
	n.mergeDeliveries()
	for _, sh := range rest {
		sh.start <- phaseAlloc
	}
	n.sh[0].phaseAlloc()
	for range rest {
		<-n.pool.done
	}
	n.applyMaterialized()
	n.cycle++
}

// drainInboxes moves events staged for this shard into its calendar, in
// ascending source-shard order. Runs at the start of phase A: outboxes
// are only written during phases, and each (source, target) box is
// touched by exactly one shard per phase, so the barrier alternation
// makes this race-free.
func (sh *shard) drainInboxes() {
	for _, src := range sh.n.sh {
		box := src.outbox[sh.idx]
		if len(box) == 0 {
			continue
		}
		for _, x := range box {
			slot := x.at % int64(len(sh.calendar))
			evs := sh.calendar[slot]
			if len(evs) == cap(evs) {
				evs = sh.arena.growEvents(evs)
			}
			sh.calendar[slot] = append(evs, x.ev)
		}
		src.outbox[sh.idx] = box[:0]
	}
}

// mergeDeliveries replays the cycle's deferred ejections in sequential
// order. Each shard's pendDel is sorted by scheduling cycle (calendar
// slots append chronologically); a (scheduling cycle, shard)-ordered
// k-way merge therefore reproduces the sequential slot order exactly.
// Runs on the coordinator between the phase barriers.
func (n *Network) mergeDeliveries() {
	active := 0
	for _, sh := range n.sh {
		if len(sh.pendDel) > 0 {
			active++
		}
	}
	if active == 0 {
		return
	}
	for {
		best := -1
		var bestAt int64
		for i, sh := range n.sh {
			if sh.delCur >= len(sh.pendDel) {
				continue
			}
			// ev.vc carries the delay stamped at schedule time; the
			// scheduling cycle is now minus that delay.
			at := n.cycle - int64(sh.pendDel[sh.delCur].vc)
			if best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		if best < 0 {
			break
		}
		sh := n.sh[best]
		ev := sh.pendDel[sh.delCur]
		sh.delCur++
		n.deliverEvent(n.sh[n.shardOfNode[ev.pkt.Src]], ev)
	}
	for _, sh := range n.sh {
		for i := range sh.pendDel {
			sh.pendDel[i] = event{}
		}
		sh.pendDel = sh.pendDel[:0]
		sh.delCur = 0
	}
}

// applyMaterialized runs the deferred transfer registrations and
// materialization callbacks in sequential (shard, source) order — the
// order injectSource visits sources ascending within each shard.
func (n *Network) applyMaterialized() {
	for _, sh := range n.sh {
		if len(sh.mat) == 0 {
			continue
		}
		for i := range sh.mat {
			m := &sh.mat[i]
			if m.xfer != nil {
				n.registerTransfer(m.pkt, m.xfer)
			}
			if n.onMaterialize != nil {
				n.onMaterialize(m.pkt)
			}
			*m = matEntry{}
		}
		sh.mat = sh.mat[:0]
	}
}

// shardFor returns the shard owning router r.
func (n *Network) shardFor(r int32) *shard {
	if !n.par {
		return n.sh[0]
	}
	return n.sh[n.shardOf[r]]
}

// shardForNode returns the shard owning terminal i.
func (n *Network) shardForNode(i int) *shard {
	if !n.par {
		return n.sh[0]
	}
	return n.sh[n.shardOfNode[i]]
}
