package sim_test

import (
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/traffic"
)

// runShardScheduler drives one network to quiescence under the sharded
// scheduler with the given worker count and returns its delivery
// sequence — runScheduler's parallel twin. workers=1 is the sequential
// reference.
func runShardScheduler(t *testing.T, ff *core.FlatFly, algName string, cfg sim.Config, load float64, cycles, workers int) []delivery {
	t.Helper()
	alg, err := routing.NewFlatFlyAlgorithm(algName, ff)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BufPerPort < alg.NumVCs()*cfg.PacketSize {
		cfg.BufPerPort = alg.NumVCs() * cfg.PacketSize
	}
	n, err := sim.New(ff.Graph(), alg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.SetWorkers(workers); err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(n.NumNodes()))
	var out []delivery
	n.OnDeliver(func(p *sim.Packet, cycle int64) {
		out = append(out, delivery{
			cycle: cycle, src: int(p.Src), dst: int(p.Dst),
			inject: p.InjectCycle, hops: p.Hops,
		})
	})
	for i := 0; i < cycles; i++ {
		n.GenerateBernoulli(load)
		n.Step()
	}
	for i := 0; i < 20000 && !n.Quiescent(); i++ {
		n.Step()
	}
	if !n.Quiescent() {
		t.Fatalf("network failed to drain (alg=%s load=%.2f workers=%d)", algName, load, workers)
	}
	if workers > 1 {
		want := workers
		if r := len(ff.Graph().Routers); want > r {
			want = r
		}
		if got := sim.NumShards(n); got != want {
			t.Fatalf("expected %d shards, scheduler ran with %d", want, got)
		}
	}
	return out
}

// TestShardMatchesSequential is the sharded-scheduler equivalence
// property: partitioning routers across worker goroutines must deliver
// exactly the same packets, in the same order, at the same cycles, as
// the sequential core — across every FB routing algorithm, both
// arbiters, and several worker counts (including counts that do not
// divide the router count evenly).
func TestShardMatchesSequential(t *testing.T) {
	ff, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"min", "val", "ugal", "ugal-s", "clos"} {
		for _, load := range []float64{0.05, 0.4, 0.9} {
			for _, age := range []bool{false, true} {
				cfg := sim.DefaultConfig()
				cfg.AgeArbiter = age
				seq := runShardScheduler(t, ff, alg, cfg, load, 300, 1)
				if len(seq) == 0 {
					t.Fatalf("%s load %.2f delivered nothing", alg, load)
				}
				for _, workers := range []int{2, 3, 8} {
					par := runShardScheduler(t, ff, alg, cfg, load, 300, workers)
					diffDeliveries(t, seq, par, alg)
				}
			}
		}
	}
}

// TestShardCountersMatchSequential pins the bookkeeping surface, not just
// the delivery stream: lifetime packet/flit totals and measured-window
// counts must agree between worker counts.
func TestShardCountersMatchSequential(t *testing.T) {
	ff, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	type totals struct {
		inj, del, fin, fdel, mc, md int64
	}
	run := func(workers int) totals {
		alg, err := routing.NewFlatFlyAlgorithm("clos", ff)
		if err != nil {
			t.Fatal(err)
		}
		n, err := sim.New(ff.Graph(), alg, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		if err := n.SetWorkers(workers); err != nil {
			t.Fatal(err)
		}
		n.SetPattern(traffic.NewUniform(n.NumNodes()))
		n.SetMeasurementWindow(50, 150)
		for i := 0; i < 200; i++ {
			n.GenerateBernoulli(0.4)
			n.Step()
		}
		for i := 0; i < 20000 && !n.Quiescent(); i++ {
			n.Step()
		}
		var tt totals
		tt.inj, tt.del = n.Totals()
		tt.fin, tt.fdel = n.FlitTotals()
		tt.mc, tt.md = n.MeasuredCounts()
		return tt
	}
	seq := run(1)
	for _, workers := range []int{2, 4} {
		if par := run(workers); par != seq {
			t.Fatalf("workers=%d counters diverged:\n  sequential: %+v\n  parallel:   %+v", workers, seq, par)
		}
	}
}

// TestSetWorkersLifecycle pins the API contract: SetWorkers rejects a
// started network, Workers reports the requested count before the first
// Step and the frozen partition after, and Close is idempotent.
func TestSetWorkersLifecycle(t *testing.T) {
	ff, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := routing.NewFlatFlyAlgorithm("min", ff)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.New(ff.Graph(), alg, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetWorkers(-1); err == nil {
		t.Fatal("SetWorkers(-1) should fail")
	}
	if err := n.SetWorkers(4); err != nil {
		t.Fatal(err)
	}
	if got := n.Workers(); got != 4 {
		t.Fatalf("Workers() before Step = %d, want 4", got)
	}
	n.Step()
	if err := n.SetWorkers(2); err == nil {
		t.Fatal("SetWorkers after Step should fail")
	}
	if got := n.Workers(); got != 4 {
		t.Fatalf("Workers() after Step = %d, want 4", got)
	}
	n.Close()
	n.Close() // idempotent
}

// TestShardInstrumentationFallsBack pins that attaching any
// instrumentation before the first Step downgrades a multi-worker
// request to the (observationally identical) sequential scheduler.
func TestShardInstrumentationFallsBack(t *testing.T) {
	ff, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := routing.NewFlatFlyAlgorithm("min", ff)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.New(ff.Graph(), alg, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.SetWorkers(4); err != nil {
		t.Fatal(err)
	}
	n.AttachProbes(sim.ProbeConfig{})
	n.SetPattern(traffic.NewUniform(n.NumNodes()))
	n.Step()
	if got := sim.NumShards(n); got != 1 {
		t.Fatalf("instrumented network partitioned into %d shards; want sequential fallback", got)
	}
	if got := n.Workers(); got != 1 {
		t.Fatalf("Workers() after fallback = %d, want 1", got)
	}
}

// TestShardTransfers drives StartTransfer through the parallel scheduler
// and checks the handle observes the same completion as sequential.
func TestShardTransfers(t *testing.T) {
	ff, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (int64, int) {
		alg, err := routing.NewFlatFlyAlgorithm("clos", ff)
		if err != nil {
			t.Fatal(err)
		}
		n, err := sim.New(ff.Graph(), alg, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		if err := n.SetWorkers(workers); err != nil {
			t.Fatal(err)
		}
		n.SetPattern(traffic.NewUniform(n.NumNodes()))
		for i := 0; i < 100; i++ {
			n.GenerateBernoulli(0.3)
			n.Step()
		}
		xf, err := n.StartTransfer(0, 11, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20000 && !xf.Done(); i++ {
			n.GenerateBernoulli(0.3)
			n.Step()
		}
		if !xf.Done() {
			t.Fatalf("transfer did not complete (workers=%d)", workers)
		}
		if n.PendingTransfers() != 0 {
			t.Fatalf("transfer map did not drain (workers=%d)", workers)
		}
		return xf.Latency(), xf.Hops()
	}
	seqLat, seqHops := run(1)
	parLat, parHops := run(4)
	if seqLat != parLat || seqHops != parHops {
		t.Fatalf("transfer observation diverged: sequential (%d cycles, %d hops) vs parallel (%d cycles, %d hops)",
			seqLat, seqHops, parLat, parHops)
	}
}

// TestStepZeroAllocParallel extends the hot path's zero-allocation
// contract to the sharded scheduler: once warm, a parallel cycle must
// not allocate on any goroutine (AllocsPerRun counts all of them).
func TestStepZeroAllocParallel(t *testing.T) {
	ff, err := core.NewFlatFly(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := routing.NewFlatFlyAlgorithm("clos", ff)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.New(ff.Graph(), alg, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.SetWorkers(4); err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(n.NumNodes()))
	for i := 0; i < 2000; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
	}
	avg := testing.AllocsPerRun(400, func() {
		n.GenerateBernoulli(0.5)
		n.Step()
	})
	// Allow a tiny slack for rare worklist/outbox growth events that the
	// warmup did not reach, mirroring TestStepZeroAlloc.
	if avg > 0.05 {
		t.Fatalf("parallel steady-state Step allocates: %.3f allocs/op", avg)
	}
}

// FuzzShardEquivalence fuzzes simulator configurations (topology shape,
// buffering, speedup, packet size, router delay, arbiter, algorithm,
// load, seed, worker count) and requires the sharded scheduler to
// produce delivery sequences identical to workers=1 — the
// FuzzWorklistEquivalence harness aimed at the parallel partition
// rather than the worklists.
func FuzzShardEquivalence(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(0), uint8(16), uint8(0), uint8(1), uint8(40), uint64(1), uint8(0), uint8(0))
	f.Add(uint8(2), uint8(3), uint8(2), uint8(8), uint8(1), uint8(4), uint8(80), uint64(2), uint8(1), uint8(1))
	f.Add(uint8(3), uint8(2), uint8(4), uint8(4), uint8(2), uint8(6), uint8(60), uint64(3), uint8(2), uint8(3))
	f.Add(uint8(4), uint8(3), uint8(3), uint8(32), uint8(0), uint8(2), uint8(90), uint64(4), uint8(0), uint8(5))
	f.Fuzz(func(t *testing.T, k, n, algSel, buf, speedup, pktSize, loadPct uint8, seed uint64, workSel, extra uint8) {
		ks := 2 + int(k)%3 // 2..4
		ns := 2 + int(n)%2 // 2..3
		ps := 1 + int(pktSize)%6
		cfg := sim.Config{
			Seed:        seed,
			BufPerPort:  ps * (1 + int(buf)%4),
			Speedup:     int(speedup) % 3,
			PacketSize:  ps,
			AgeArbiter:  extra&1 != 0,
			RouterDelay: int(extra>>1) % 3,
		}
		ff, err := core.NewFlatFly(ks, ns)
		if err != nil {
			t.Fatal(err)
		}
		algs := []string{"min", "val", "ugal", "ugal-s", "clos"}
		alg := algs[int(algSel)%len(algs)]
		load := float64(int(loadPct)%101) / 100
		seq := runShardScheduler(t, ff, alg, cfg, load, 200, 1)
		workers := []int{2, 3, 8}[int(workSel)%3]
		par := runShardScheduler(t, ff, alg, cfg, load, 200, workers)
		diffDeliveries(t, seq, par, alg)
	})
}
