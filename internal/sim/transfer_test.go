package sim

import (
	"testing"

	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// stepUntilDone advances the network (with optional background load)
// until the transfer completes or the cycle budget runs out.
func stepUntilDone(t *testing.T, n *Network, tr *Transfer, load float64, budget int64) {
	t.Helper()
	deadline := n.Cycle() + budget
	for !tr.Done() {
		if n.Cycle() >= deadline {
			t.Fatalf("transfer not done after %d cycles (%d/%d delivered)",
				budget, tr.Delivered(), tr.Packets())
		}
		if load > 0 {
			n.GenerateBernoulli(load)
		}
		n.Step()
	}
}

// TestTransferZeroLoadLatency pins a single-packet transfer on an idle
// network to the exact zero-load latency: MinHops inter-router channels
// plus one ejection cycle.
func TestTransferZeroLoadLatency(t *testing.T) {
	f := testFF(t, 4, 2)
	g := f.Graph()
	n, err := New(g, &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(g.NumNodes))
	for src := 0; src < g.NumNodes; src += 3 {
		for dst := 0; dst < g.NumNodes; dst += 5 {
			tr, err := n.StartTransfer(topo.NodeID(src), topo.NodeID(dst), 1)
			if err != nil {
				t.Fatal(err)
			}
			stepUntilDone(t, n, tr, 0, 1000)
			hops := f.MinHops(g.NodeRouter[src], g.NodeRouter[dst])
			want := int64(hops + 1) // unit channels, 1-cycle ejection, 1-flit packets
			if tr.Latency() != want {
				t.Fatalf("transfer %d->%d: latency %d, want %d (hops %d)",
					src, dst, tr.Latency(), want, hops)
			}
			if tr.Hops() != hops {
				t.Fatalf("transfer %d->%d: hops %d, want %d", src, dst, tr.Hops(), hops)
			}
		}
	}
	if n.PendingTransfers() != 0 {
		t.Fatalf("tracking map holds %d packets after completion", n.PendingTransfers())
	}
}

// TestTransferMultiPacket verifies burst serialization: k packets from
// one source stream at one flit per cycle, so the tail latency grows by
// k-1 cycles over a single packet at zero load.
func TestTransferMultiPacket(t *testing.T) {
	f := testFF(t, 4, 2)
	g := f.Graph()
	n, err := New(g, &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(g.NumNodes))
	one, err := n.StartTransfer(0, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	stepUntilDone(t, n, one, 0, 1000)
	const burst = 8
	many, err := n.StartTransfer(0, 9, burst)
	if err != nil {
		t.Fatal(err)
	}
	stepUntilDone(t, n, many, 0, 1000)
	if many.Delivered() != burst {
		t.Fatalf("delivered %d of %d", many.Delivered(), burst)
	}
	want := one.Latency() + burst - 1
	if many.Latency() != want {
		t.Fatalf("burst of %d: latency %d, want %d (single was %d)",
			burst, many.Latency(), want, one.Latency())
	}
}

// TestTransferUnderLoad verifies transfers complete against background
// traffic, never report a latency below zero load, and do not disturb
// measurement-window accounting.
func TestTransferUnderLoad(t *testing.T) {
	f := testFF(t, 4, 2)
	g := f.Graph()
	n, err := New(g, &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(g.NumNodes))
	for i := 0; i < 300; i++ { // warm the network up
		n.GenerateBernoulli(0.4)
		n.Step()
	}
	zeroLoad := int64(f.MinHops(g.NodeRouter[0], g.NodeRouter[9]) + 1)
	for i := 0; i < 20; i++ {
		tr, err := n.StartTransfer(0, 9, 2)
		if err != nil {
			t.Fatal(err)
		}
		stepUntilDone(t, n, tr, 0.4, 100000)
		if tr.Latency() < zeroLoad {
			t.Fatalf("loaded latency %d below zero-load %d", tr.Latency(), zeroLoad)
		}
	}
	if created, delivered := n.MeasuredCounts(); created != 0 || delivered != 0 {
		t.Fatalf("transfers leaked into measurement accounting: created %d delivered %d",
			created, delivered)
	}
}

// TestTransferValidation exercises the argument checks.
func TestTransferValidation(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.StartTransfer(-1, 0, 1); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := n.StartTransfer(0, topo.NodeID(f.NumNodes), 1); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	if _, err := n.StartTransfer(0, 1, 0); err == nil {
		t.Fatal("zero-packet transfer accepted")
	}
}
