package sim

import (
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// minimalAlg is a tiny test algorithm for a 1-D flattened butterfly:
// direct minimal routing, 1 VC, greedy.
type minimalAlg struct{ f *core.FlatFly }

func (a *minimalAlg) Name() string     { return "test-min" }
func (a *minimalAlg) NumVCs() int      { return 1 }
func (a *minimalAlg) Sequential() bool { return false }
func (a *minimalAlg) Route(view *RouterView, p *Packet) OutRef {
	r := view.Router()
	dst := a.f.RouterOf(p.Dst)
	if r == dst {
		return OutRef{Port: a.f.TerminalIndex(p.Dst), VC: 0}
	}
	// Lowest differing dimension, computed without allocating (DiffDims
	// returns a fresh slice, which would fail TestStepZeroAlloc).
	for d := 1; d <= a.f.Dims; d++ {
		if a.f.RouterDigit(r, d) != a.f.RouterDigit(dst, d) {
			return OutRef{Port: a.f.PortFor(d, a.f.RouterDigit(dst, d), 0), VC: 0}
		}
	}
	panic("minimalAlg: r != dst but no differing dimension")
}

func testFF(t *testing.T, k, n int) *core.FlatFly {
	t.Helper()
	f, err := core.NewFlatFly(k, n)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSinglePacketDelivery(t *testing.T) {
	f := testFF(t, 4, 2)
	alg := &minimalAlg{f}
	n, err := New(f.Graph(), alg, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 -> node 15 (router 0 -> router 3): fixed pattern.
	n.SetPattern(traffic.NewFixed("single", func() []topo.NodeID {
		tab := make([]topo.NodeID, 16)
		for i := range tab {
			tab[i] = 15
		}
		return tab
	}()))
	var deliveredAt int64 = -1
	var got *Packet
	n.OnDeliver(func(p *Packet, cycle int64) {
		cp := *p
		got = &cp
		deliveredAt = cycle
	})
	n.pushArrival(0, 0)
	for i := 0; i < 20 && deliveredAt < 0; i++ {
		n.Step()
	}
	if deliveredAt < 0 {
		t.Fatal("packet not delivered within 20 cycles")
	}
	if got.Src != 0 || got.Dst != 15 {
		t.Fatalf("wrong packet delivered: %+v", got)
	}
	if got.Hops != 1 {
		t.Fatalf("hops = %d, want 1", got.Hops)
	}
	// Injection cycle 0; inject->route->switch at cycle 0; channel 1 cycle;
	// route+switch at router 3 at cycle 1; ejection channel 1 cycle ->
	// delivered at cycle 2.
	if deliveredAt != 2 {
		t.Fatalf("delivered at cycle %d, want 2", deliveredAt)
	}
}

func TestLocalDelivery(t *testing.T) {
	// Destination on the same router: zero network hops.
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := make([]topo.NodeID, 16)
	tab[0] = 1
	n.SetPattern(traffic.NewFixed("local", tab))
	hops := -1
	n.OnDeliver(func(p *Packet, _ int64) { hops = p.Hops })
	n.pushArrival(0, 0)
	for i := 0; i < 10 && hops < 0; i++ {
		n.Step()
	}
	if hops != 0 {
		t.Fatalf("local delivery hops = %d, want 0", hops)
	}
}

func TestConservation(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(16))
	for i := 0; i < 500; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
		if i%100 != 0 {
			continue
		}
		injected, delivered := n.FlitTotals()
		buffered, inFlight := n.Inventory()
		if injected != delivered+int64(buffered)+int64(inFlight) {
			t.Fatalf("cycle %d: flit conservation violated: injected=%d delivered=%d buffered=%d inflight=%d",
				i, injected, delivered, buffered, inFlight)
		}
	}
}

func TestDrainAfterStop(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(16))
	for i := 0; i < 200; i++ {
		n.GenerateBernoulli(0.4)
		n.Step()
	}
	// Stop injecting; everything must drain.
	for i := 0; i < 500; i++ {
		n.Step()
	}
	injected, delivered := n.Totals()
	if injected != delivered {
		t.Fatalf("network did not drain: injected=%d delivered=%d backlog=%d", injected, delivered, n.Backlog())
	}
	buffered, inFlight := n.Inventory()
	if buffered != 0 || inFlight != 0 {
		t.Fatalf("residual occupancy: buffered=%d inflight=%d", buffered, inFlight)
	}
}

func TestDeterminism(t *testing.T) {
	f := testFF(t, 4, 2)
	run := func() (int64, int64) {
		n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		n.SetPattern(traffic.NewUniform(16))
		var latSum int64
		n.OnDeliver(func(p *Packet, cycle int64) { latSum += cycle - p.InjectCycle })
		for i := 0; i < 300; i++ {
			n.GenerateBernoulli(0.6)
			n.Step()
		}
		_, delivered := n.Totals()
		return delivered, latSum
	}
	d1, l1 := run()
	d2, l2 := run()
	if d1 != d2 || l1 != l2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", d1, l1, d2, l2)
	}
	if d1 == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestRunLoadPointLowLoad(t *testing.T) {
	f := testFF(t, 4, 2)
	res, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, DefaultConfig(), RunConfig{
		Load:    0.2,
		Pattern: traffic.NewUniform(16),
		Warmup:  300,
		Measure: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatal("low load reported saturated")
	}
	if res.MeasuredDelivered != res.MeasuredCreated || res.MeasuredCreated == 0 {
		t.Fatalf("measured packets not drained: %d/%d", res.MeasuredDelivered, res.MeasuredCreated)
	}
	// Zero-load latency is ~2-3 cycles; at 20% load it should stay small.
	if res.AvgLatency < 1 || res.AvgLatency > 10 {
		t.Fatalf("implausible latency %v", res.AvgLatency)
	}
	if res.AcceptedRate < 0.17 || res.AcceptedRate > 0.23 {
		t.Fatalf("accepted rate %v, want ~0.2", res.AcceptedRate)
	}
	if res.AvgHops < 0.5 || res.AvgHops > 1.0 {
		t.Fatalf("avg hops %v, want in (0.5, 1.0) for 1-D uniform", res.AvgHops)
	}
}

func TestRunLoadPointValidation(t *testing.T) {
	f := testFF(t, 4, 2)
	if _, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, DefaultConfig(), RunConfig{
		Load: 1.5, Pattern: traffic.NewUniform(16), Warmup: 10, Measure: 10,
	}); err == nil {
		t.Error("load > 1 accepted")
	}
	if _, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, DefaultConfig(), RunConfig{
		Load: 0.5, Pattern: traffic.NewUniform(16),
	}); err == nil {
		t.Error("zero windows accepted")
	}
	if _, err := New(f.Graph(), &minimalAlg{f}, Config{Seed: 1, BufPerPort: 0}); err == nil {
		t.Error("zero buffer accepted")
	}
}

func TestMinimalSaturatesAtOneOverKOnWC(t *testing.T) {
	// The Fig 4(b) headline in miniature: minimal routing on the
	// worst-case pattern sustains ~1/k of capacity (here k=4 -> 25%).
	f := testFF(t, 4, 2)
	thpt, err := SaturationThroughput(f.Graph(), &minimalAlg{f}, DefaultConfig(),
		traffic.NewWorstCase(f.K, f.NumRouters), 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if thpt < 0.18 || thpt > 0.32 {
		t.Fatalf("WC minimal throughput = %v, want ~0.25", thpt)
	}
}

func TestMinimalFullThroughputOnUR(t *testing.T) {
	f := testFF(t, 4, 2)
	thpt, err := SaturationThroughput(f.Graph(), &minimalAlg{f}, DefaultConfig(),
		traffic.NewUniform(f.NumNodes), 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if thpt < 0.9 {
		t.Fatalf("UR minimal throughput = %v, want ~1.0", thpt)
	}
}

func TestRunBatch(t *testing.T) {
	f := testFF(t, 4, 2)
	res, err := RunBatch(f.Graph(), &minimalAlg{f}, DefaultConfig(),
		BatchConfig{Pattern: traffic.NewUniform(f.NumNodes), BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionCycles < 8 {
		t.Fatalf("batch finished impossibly fast: %d cycles", res.CompletionCycles)
	}
	if res.NormalizedLatency < 1 || res.NormalizedLatency > 20 {
		t.Fatalf("normalized latency %v out of plausible range", res.NormalizedLatency)
	}
	if _, err := RunBatch(f.Graph(), &minimalAlg{f}, DefaultConfig(),
		BatchConfig{Pattern: traffic.NewUniform(16)}); err == nil {
		t.Error("batch size 0 accepted")
	}
}

// TestRunBatchHooks pins RunBatch's hook semantics directly: Attach runs
// on the fresh network before the first cycle without perturbing the
// result, and Stop aborts the run.
func TestRunBatchHooks(t *testing.T) {
	f := testFF(t, 4, 2)
	pat := traffic.NewUniform(f.NumNodes)
	want, err := RunBatch(f.Graph(), &minimalAlg{f}, DefaultConfig(),
		BatchConfig{Pattern: pat, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	attached := false
	got, err := RunBatch(f.Graph(), &minimalAlg{f}, DefaultConfig(),
		BatchConfig{Pattern: pat, BatchSize: 4, Attach: func(n *Network) { attached = true }})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("attached run diverged: %+v vs %+v", got, want)
	}
	if !attached {
		t.Fatal("RunBatch did not call the attach hook")
	}
	// Stop polling is throttled to every few hundred cycles, so a long
	// batch is needed for the hook to be consulted at all.
	stopped := 0
	if _, err := RunBatch(f.Graph(), &minimalAlg{f}, DefaultConfig(),
		BatchConfig{Pattern: pat, BatchSize: 500,
			Stop: func() bool { stopped++; return true }}); err == nil {
		t.Fatal("stop hook did not abort the run")
	}
	if stopped == 0 {
		t.Fatal("stop hook never polled")
	}
}

func TestLoadSweepStopsAfterSaturation(t *testing.T) {
	f := testFF(t, 4, 2)
	loads := []float64{0.1, 0.5, 0.9, 0.95, 1.0}
	res, err := LoadSweep(f.Graph(), &minimalAlg{f}, DefaultConfig(), RunConfig{
		Pattern:   traffic.NewWorstCase(f.K, f.NumRouters),
		Warmup:    200,
		Measure:   200,
		MaxCycles: 900,
	}, loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(loads) {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Saturated {
		t.Fatal("10% load saturated on WC with k=4 (limit is 25%)")
	}
	if !res[4].Saturated {
		t.Fatal("100% load did not saturate on WC minimal routing")
	}
}

// TestStepZeroAlloc pins the hot path's zero-allocation contract: once
// the pools, calendar slots and scratch buffers have been grown during
// warmup, a steady-state generate+step cycle performs no heap
// allocations. Any per-cycle allocation (a fresh event node, a scratch
// map, an escaping view) shows up as an average of >= 1 here.
func TestStepZeroAlloc(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(f.NumNodes))
	for i := 0; i < 2000; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
	}
	avg := testing.AllocsPerRun(500, func() {
		n.GenerateBernoulli(0.5)
		n.Step()
	})
	// Rare amortized growth (a source backlog high-water mark, a pool
	// append) may still allocate once in a while; a per-cycle allocation
	// averages >= 1.
	if avg >= 0.5 {
		t.Fatalf("steady-state cycle allocates: %.2f allocs/cycle, want ~0", avg)
	}
}

func TestVCDepthDivision(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, Config{Seed: 1, BufPerPort: 32})
	if err != nil {
		t.Fatal(err)
	}
	if n.VCs() != 1 || n.VCDepth() != 32 {
		t.Fatalf("vcs=%d depth=%d, want 1/32", n.VCs(), n.VCDepth())
	}
}
