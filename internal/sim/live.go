package sim

import "sync/atomic"

// LiveVars aggregates coarse, process-wide simulation counters for live
// metrics endpoints: how many run harnesses have started and finished,
// and the total cycles and packet deliveries simulated so far. The run
// harnesses batch their updates onto the existing Stop-poll cadence
// (every few hundred cycles), so the counters cost one atomic add per
// poll rather than per cycle and may lag the truth by up to one poll
// interval.
type LiveVars struct {
	RunsStarted      atomic.Int64
	RunsFinished     atomic.Int64
	Cycles           atomic.Int64
	PacketsDelivered atomic.Int64
}

// Live is the process-wide instance, published by commands that serve a
// -listen endpoint.
var Live LiveVars

// Snapshot returns the counters keyed by name, shaped for a telemetry
// registry gauge.
func (v *LiveVars) Snapshot() map[string]int64 {
	return map[string]int64{
		"runs_started":      v.RunsStarted.Load(),
		"runs_finished":     v.RunsFinished.Load(),
		"runs_in_flight":    v.RunsStarted.Load() - v.RunsFinished.Load(),
		"cycles":            v.Cycles.Load(),
		"packets_delivered": v.PacketsDelivered.Load(),
	}
}

// livePoll batches a run's contribution to Live: update is called on the
// Stop-poll cadence and once at run exit, adding only the delta since
// the previous call.
type livePoll struct {
	lastCycle     int64
	lastDelivered int64
}

func (lp *livePoll) update(n *Network) {
	c := n.Cycle()
	Live.Cycles.Add(c - lp.lastCycle)
	lp.lastCycle = c
	_, d := n.Totals()
	Live.PacketsDelivered.Add(d - lp.lastDelivered)
	lp.lastDelivered = d
}
