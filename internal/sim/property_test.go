package sim

import (
	"testing"
	"testing/quick"

	"flatnet/internal/core"
	"flatnet/internal/traffic"
)

// TestPropertyConservationAndDrain drives randomized small networks —
// random ary, load, seed and packet size — and checks the simulator's
// core invariants: flits are conserved at every sampled cycle, the
// network drains completely once injection stops, and every packet
// arrives at its addressed destination.
func TestPropertyConservationAndDrain(t *testing.T) {
	check := func(seed uint64, kSel, loadSel, sizeSel uint8) bool {
		k := 2 + int(kSel)%5                 // 2..6
		load := 0.1 + float64(loadSel%8)*0.1 // 0.1..0.8
		size := 1 + int(sizeSel)%3           // 1..3
		f, err := core.NewFlatFly(k, 2)
		if err != nil {
			return false
		}
		cfg := Config{Seed: seed, BufPerPort: 16, PacketSize: size}
		n, err := New(f.Graph(), &minimalAlg{f}, cfg)
		if err != nil {
			return false
		}
		n.SetPattern(traffic.NewUniform(f.NumNodes))
		misdelivered := false
		n.OnDeliver(func(p *Packet, _ int64) {
			if p.Dst < 0 || int(p.Dst) >= f.NumNodes || p.Hops < f.MinHops(f.RouterOf(p.Src), f.RouterOf(p.Dst)) {
				misdelivered = true
			}
		})
		for i := 0; i < 300; i++ {
			n.GenerateBernoulli(load)
			n.Step()
			if i%50 == 0 {
				fi, fd := n.FlitTotals()
				buffered, inFlight := n.Inventory()
				if fi != fd+int64(buffered)+int64(inFlight) {
					return false
				}
			}
		}
		// Drain.
		for i := 0; i < 3000; i++ {
			n.Step()
			if b, fl := n.Inventory(); b == 0 && fl == 0 && n.Backlog() == 0 {
				break
			}
		}
		pi, pd := n.Totals()
		fi, fd := n.FlitTotals()
		return !misdelivered && pi == pd && fi == fd && fd == int64(size)*pd
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterministicReplay verifies that any (seed, load)
// combination replays identically.
func TestPropertyDeterministicReplay(t *testing.T) {
	f, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed uint64, load float64) (int64, int64) {
		n, err := New(f.Graph(), &minimalAlg{f}, Config{Seed: seed, BufPerPort: 16})
		if err != nil {
			t.Fatal(err)
		}
		n.SetPattern(traffic.NewUniform(f.NumNodes))
		var latSum int64
		n.OnDeliver(func(p *Packet, c int64) { latSum += c - p.InjectCycle })
		for i := 0; i < 200; i++ {
			n.GenerateBernoulli(load)
			n.Step()
		}
		_, d := n.Totals()
		return d, latSum
	}
	check := func(seed uint64, loadSel uint8) bool {
		load := 0.1 + float64(loadSel%9)*0.1
		d1, l1 := run(seed, load)
		d2, l2 := run(seed, load)
		return d1 == d2 && l1 == l2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
