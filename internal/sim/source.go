package sim

import (
	"fmt"

	"flatnet/internal/rng"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// source is one terminal's packet generator. Arrivals are recorded as
// timestamps only; the packet itself (including its destination draw) is
// materialized when it reaches the head of the source queue and space
// exists in the router's terminal input buffer. For stochastic patterns
// this is statistically identical to drawing at arrival time and keeps
// memory proportional to backlog length, not packet size.
type source struct {
	node topo.NodeID
	rng  *rng.Source

	// cur is the packet currently streaming its flits into the terminal
	// input buffer; remaining counts its flits yet to inject.
	cur       *Packet
	remaining int

	// backlog of pending arrivals, stored as a sliding window.
	q    []arrival
	head int
}

// arrival is one generated-but-not-yet-materialized packet. Pattern-based
// arrivals draw their destination at materialization time; trace-based
// arrivals carry it explicitly. Transfer arrivals (StartTransfer)
// additionally carry the handle their delivery is credited to.
type arrival struct {
	ts     int64
	dst    topo.NodeID
	hasDst bool
	xfer   *Transfer
}

func (s *source) backlogLen() int { return len(s.q) - s.head }

func (s *source) push(a arrival) {
	// Compact occasionally so memory stays proportional to backlog.
	if s.head > 1024 && s.head*2 > len(s.q) {
		n := copy(s.q, s.q[s.head:])
		s.q = s.q[:n]
		s.head = 0
	}
	s.q = append(s.q, a)
}

func (s *source) pushTimestamp(t int64) { s.push(arrival{ts: t}) }

// pushArrival enqueues one pattern arrival at source i and wakes it —
// the single-packet injection hook the timing tests use.
func (n *Network) pushArrival(i int, ts int64) {
	n.sources[i].pushTimestamp(ts)
	n.wakeSource(i)
}

func (s *source) pushTraced(t int64, dst topo.NodeID) {
	s.push(arrival{ts: t, dst: dst, hasDst: true})
}

func (s *source) peekTS() int64 { return s.q[s.head].ts }

func (s *source) pop() arrival {
	a := s.q[s.head]
	s.head++
	if s.head == len(s.q) {
		s.q = s.q[:0]
		s.head = 0
	}
	return a
}

// SetSource installs the workload source that drives Generate's arrival
// process and every destination draw. On a freshly restored network it
// applies the snapshot's stashed workload state — the source names must
// match, or the install fails rather than silently replaying the wrong
// process. Otherwise the source is reset to its initial state, so a
// Source shared across the networks of a load sweep stays deterministic.
func (n *Network) SetSource(src traffic.Source) error {
	if src == nil {
		return fmt.Errorf("sim: nil workload source")
	}
	if pw := n.pendingWl; pw != nil {
		if src.Name() != pw.name {
			return fmt.Errorf("sim: snapshot carries workload state for source %q, cannot install %q",
				pw.name, src.Name())
		}
		if err := src.SetState(pw.state); err != nil {
			return fmt.Errorf("sim: restore workload state for %q: %w", pw.name, err)
		}
		n.pendingWl = nil
	} else if err := src.SetState(nil); err != nil {
		return fmt.Errorf("sim: reset workload state for %q: %w", src.Name(), err)
	}
	n.wl = src
	n.wlErr = nil
	return nil
}

// Source returns the installed workload source, nil if none.
func (n *Network) Source() traffic.Source { return n.wl }

// SetPattern installs a destination pattern wrapped in the default
// Bernoulli arrival process — the legacy entry point. An install error
// (a restored snapshot carrying state for a different workload) is
// deferred and surfaces at the next Generate call.
func (n *Network) SetPattern(p traffic.Pattern) {
	if err := n.SetSource(traffic.NewBernoulli(p)); err != nil {
		n.wlErr = err
	}
}

// Generate performs one cycle's worth of arrivals from the installed
// workload source: one Arrivals draw per node, in node-index order, on
// the caller thread between Steps. load is the offered load in flits per
// node per cycle. Call once per cycle before Step, or use the run
// harnesses which do this for you.
func (n *Network) Generate(load float64) error {
	if n.wlErr != nil {
		return n.wlErr
	}
	wl := n.wl
	if wl == nil {
		return fmt.Errorf("sim: no workload source installed (SetSource or SetPattern first)")
	}
	if v, ok := wl.(traffic.LoadValidator); ok {
		if err := v.ValidateLoad(load); err != nil {
			return err
		}
	}
	c := n.cycle
	ps := n.cfg.PacketSize
	for i := range n.sources {
		s := &n.sources[i]
		for k := wl.Arrivals(s.node, load, ps, s.rng); k > 0; k-- {
			s.pushTimestamp(c)
			n.wakeSource(i)
			if c >= n.measStart && c < n.measEnd {
				n.measCreated++
			}
		}
	}
	return nil
}

// GenerateBernoulli performs one cycle's worth of Bernoulli packet
// arrivals at every node. load is the offered load in flits per node per
// cycle, so the per-cycle packet arrival probability is load/PacketSize.
// Call once per cycle before Step, or use the run harnesses which do this
// for you.
func (n *Network) GenerateBernoulli(load float64) {
	c := n.cycle
	p := load / float64(n.cfg.PacketSize)
	for i := range n.sources {
		s := &n.sources[i]
		if s.rng.Bernoulli(p) {
			s.pushTimestamp(c)
			n.wakeSource(i)
			if c >= n.measStart && c < n.measEnd {
				n.measCreated++
			}
		}
	}
}

// SeedBatch places batch arrivals (timestamped at the current cycle) into
// every source queue, for the batch experiments of Fig. 5.
func (n *Network) SeedBatch(perNode int) {
	c := n.cycle
	for i := range n.sources {
		s := &n.sources[i]
		for j := 0; j < perNode; j++ {
			s.pushTimestamp(c)
		}
		if perNode > 0 {
			n.wakeSource(i)
		}
	}
}

// SetMeasurementWindow marks packets whose arrival timestamps fall in
// [start, end) as measured.
func (n *Network) SetMeasurementWindow(start, end int64) {
	n.measStart, n.measEnd = start, end
}

// MeasuredCounts returns how many measured packets have been generated and
// delivered so far.
func (n *Network) MeasuredCounts() (created, delivered int64) {
	return n.measCreated, n.measDelivered
}

// OnDeliver installs a delivery callback invoked for every delivered
// packet (measured or not) before the packet is recycled. The callback
// must not retain the packet.
func (n *Network) OnDeliver(f func(p *Packet, cycle int64)) {
	n.onDeliver = f
}
