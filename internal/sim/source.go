package sim

import (
	"fmt"

	"flatnet/internal/rng"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// source is one terminal's packet generator. Arrivals are recorded as
// timestamps only; the packet itself (including its destination draw) is
// materialized when it reaches the head of the source queue and space
// exists in the router's terminal input buffer. For stochastic patterns
// this is statistically identical to drawing at arrival time and keeps
// memory proportional to backlog length, not packet size.
type source struct {
	node    topo.NodeID
	rng     *rng.Source
	pattern traffic.Pattern

	// cur is the packet currently streaming its flits into the terminal
	// input buffer; remaining counts its flits yet to inject.
	cur       *Packet
	remaining int

	// burstOn is the on/off (two-state Markov) injection state used by
	// GenerateOnOff.
	burstOn bool

	// backlog of pending arrivals, stored as a sliding window.
	q    []arrival
	head int
}

// arrival is one generated-but-not-yet-materialized packet. Pattern-based
// arrivals draw their destination at materialization time; trace-based
// arrivals carry it explicitly. Transfer arrivals (StartTransfer)
// additionally carry the handle their delivery is credited to.
type arrival struct {
	ts     int64
	dst    topo.NodeID
	hasDst bool
	xfer   *Transfer
}

func (s *source) backlogLen() int { return len(s.q) - s.head }

func (s *source) push(a arrival) {
	// Compact occasionally so memory stays proportional to backlog.
	if s.head > 1024 && s.head*2 > len(s.q) {
		n := copy(s.q, s.q[s.head:])
		s.q = s.q[:n]
		s.head = 0
	}
	s.q = append(s.q, a)
}

func (s *source) pushTimestamp(t int64) { s.push(arrival{ts: t}) }

// pushArrival enqueues one pattern arrival at source i and wakes it —
// the single-packet injection hook the timing tests use.
func (n *Network) pushArrival(i int, ts int64) {
	n.sources[i].pushTimestamp(ts)
	n.wakeSource(i)
}

func (s *source) pushTraced(t int64, dst topo.NodeID) {
	s.push(arrival{ts: t, dst: dst, hasDst: true})
}

func (s *source) peekTS() int64 { return s.q[s.head].ts }

func (s *source) pop() arrival {
	a := s.q[s.head]
	s.head++
	if s.head == len(s.q) {
		s.q = s.q[:0]
		s.head = 0
	}
	return a
}

func (s *source) draw() topo.NodeID {
	return s.pattern.Dest(s.node, s.rng)
}

// SetPattern installs the traffic pattern used to draw destinations.
func (n *Network) SetPattern(p traffic.Pattern) {
	for i := range n.sources {
		n.sources[i].pattern = p
	}
}

// GenerateBernoulli performs one cycle's worth of Bernoulli packet
// arrivals at every node. load is the offered load in flits per node per
// cycle, so the per-cycle packet arrival probability is load/PacketSize.
// Call once per cycle before Step, or use the run harnesses which do this
// for you.
func (n *Network) GenerateBernoulli(load float64) {
	c := n.cycle
	p := load / float64(n.cfg.PacketSize)
	for i := range n.sources {
		s := &n.sources[i]
		if s.rng.Bernoulli(p) {
			s.pushTimestamp(c)
			n.wakeSource(i)
			if c >= n.measStart && c < n.measEnd {
				n.measCreated++
			}
		}
	}
}

// GenerateOnOff performs one cycle of bursty (two-state Markov modulated)
// packet arrivals: each source alternates between an ON state, injecting
// at peak flits per node per cycle, and a silent OFF state, such that the
// long-run average offered load is load and the mean burst length is
// avgBurst cycles. Bursty arrivals stress the transient load-balancing
// behaviour that the paper's Fig. 5 batch experiments probe.
func (n *Network) GenerateOnOff(load, peak, avgBurst float64) error {
	if peak <= 0 || peak > 1 {
		return fmt.Errorf("sim: peak rate %v out of (0,1]", peak)
	}
	if load < 0 || load > peak {
		return fmt.Errorf("sim: load %v out of [0, peak=%v]", load, peak)
	}
	if avgBurst < 1 {
		return fmt.Errorf("sim: average burst length %v must be >= 1 cycle", avgBurst)
	}
	pOn := load / peak // stationary probability of the ON state
	exitOn := 1 / avgBurst
	var enterOn float64
	if pOn < 1 {
		enterOn = exitOn * pOn / (1 - pOn)
		if enterOn > 1 {
			enterOn = 1
		}
	} else {
		enterOn = 1
	}
	c := n.cycle
	pkt := peak / float64(n.cfg.PacketSize)
	for i := range n.sources {
		s := &n.sources[i]
		if s.burstOn {
			if s.rng.Bernoulli(exitOn) {
				s.burstOn = false
			}
		} else if s.rng.Bernoulli(enterOn) {
			s.burstOn = true
		}
		if s.burstOn && s.rng.Bernoulli(pkt) {
			s.pushTimestamp(c)
			n.wakeSource(i)
			if c >= n.measStart && c < n.measEnd {
				n.measCreated++
			}
		}
	}
	return nil
}

// SeedBatch places batch arrivals (timestamped at the current cycle) into
// every source queue, for the batch experiments of Fig. 5.
func (n *Network) SeedBatch(perNode int) {
	c := n.cycle
	for i := range n.sources {
		s := &n.sources[i]
		for j := 0; j < perNode; j++ {
			s.pushTimestamp(c)
		}
		if perNode > 0 {
			n.wakeSource(i)
		}
	}
}

// SetMeasurementWindow marks packets whose arrival timestamps fall in
// [start, end) as measured.
func (n *Network) SetMeasurementWindow(start, end int64) {
	n.measStart, n.measEnd = start, end
}

// MeasuredCounts returns how many measured packets have been generated and
// delivered so far.
func (n *Network) MeasuredCounts() (created, delivered int64) {
	return n.measCreated, n.measDelivered
}

// OnDeliver installs a delivery callback invoked for every delivered
// packet (measured or not) before the packet is recycled. The callback
// must not retain the packet.
func (n *Network) OnDeliver(f func(p *Packet, cycle int64)) {
	n.onDeliver = f
}
