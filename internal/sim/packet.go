// Package sim is a cycle-accurate flit-level simulator for
// interconnection networks, in the style the paper describes in §3.2:
// single-cycle input-queued virtual-channel routers with credit-based flow
// control, Bernoulli packet injection, a warm-up / measurement / drain
// methodology, and batch experiments for studying transient load
// imbalance.
//
// Packets are single-flit (the paper's configuration; §3.2 note 2 states
// packet size does not change the comparisons). Routers are given
// configurable switch speedup so that, as in the paper, the router itself
// is not the network bottleneck — channel bandwidth is.
package sim

import (
	"flatnet/internal/topo"
)

// Phase values used by the routing algorithms to track multi-phase routes.
// Their interpretation belongs to each algorithm; the simulator only
// stores them.
const (
	// PhaseNew marks a packet whose routing decision has not been made.
	PhaseNew int8 = iota
	// PhaseNonMinimal marks a packet in the first (misrouting/ascent)
	// phase of a non-minimal route.
	PhaseNonMinimal
	// PhaseMinimal marks a packet routing minimally to its destination
	// (either chosen minimal at the source, or past its intermediate).
	PhaseMinimal
)

// Packet is a single-flit packet traversing the network.
type Packet struct {
	ID  int64
	Src topo.NodeID
	Dst topo.NodeID

	// Routing state, owned by the routing algorithm.
	Phase   int8
	Inter   int32  // intermediate router for two-phase routes; -1 when unset
	DimMask uint32 // remaining-dimension bitmask for ascent-style routes

	Hops int // inter-router channels traversed so far

	InjectCycle  int64 // cycle the packet arrived at its source queue
	NetworkCycle int64 // cycle the packet entered its source router's buffer
	Measured     bool  // injected during the measurement window
}

// reset clears a recycled packet.
func (p *Packet) reset() {
	*p = Packet{Inter: -1}
}

// OutRef identifies a routing decision: an output port and the virtual
// channel to use on it.
type OutRef struct {
	Port int
	VC   int
}

// Algorithm selects the next hop for each packet. Implementations live in
// internal/routing; they are constructed per topology instance.
type Algorithm interface {
	// Name identifies the algorithm, e.g. "UGAL-S".
	Name() string
	// NumVCs returns the number of virtual channels the algorithm needs on
	// every network channel.
	NumVCs() int
	// Sequential reports whether the router must use a sequential route
	// allocator (§3.1): inputs decide one at a time, each seeing the
	// queue-state updates of the decisions before it. A greedy allocator
	// lets all inputs decide against the same stale snapshot.
	Sequential() bool
	// Route picks the output port and VC for packet p, currently at the
	// head of an input buffer of view.Router(). It may mutate the packet's
	// routing-state fields (Phase, Inter, DimMask). The view is only valid
	// for the duration of the call and must not be retained.
	Route(view *RouterView, p *Packet) OutRef
}
