package sim

import (
	"fmt"

	"flatnet/internal/topo"
)

// Transfer tracks one measured transfer through a warm network: a burst
// of packets from one terminal to another, injected by StartTransfer on
// top of whatever background traffic the network is carrying. It is the
// co-simulation primitive behind internal/nocsvc's estimate verb — the
// caller injects the transfer, keeps stepping the network, and reads the
// congestion-aware latency once Done reports true.
//
// A Transfer is owned by whoever owns the Network: it is not safe for
// concurrent use from other goroutines while the network is stepping.
type Transfer struct {
	src, dst topo.NodeID
	packets  int

	start     int64 // cycle the transfer entered its source queue
	delivered int   // packets fully delivered so far
	lastCycle int64 // cycle the most recent packet finished delivery
	lastHops  int   // inter-router hops of the most recently delivered packet
}

// Done reports whether every packet of the transfer has been delivered.
func (t *Transfer) Done() bool { return t.delivered >= t.packets }

// Delivered returns how many of the transfer's packets have been
// delivered so far.
func (t *Transfer) Delivered() int { return t.delivered }

// Packets returns the transfer's packet count.
func (t *Transfer) Packets() int { return t.packets }

// Latency returns the cycles from the transfer's source-queue arrival to
// the delivery of its most recent packet — for a completed transfer, the
// tail latency of the whole burst. Zero until the first delivery.
func (t *Transfer) Latency() int64 {
	if t.delivered == 0 {
		return 0
	}
	return t.lastCycle - t.start
}

// Hops returns the inter-router hop count of the most recently delivered
// packet, or 0 before the first delivery.
func (t *Transfer) Hops() int { return t.lastHops }

// StartTransfer enqueues a measured transfer of packets packets from src
// to dst at the current cycle and returns its tracking handle. The
// packets join src's source queue behind any backlog and contend with
// background traffic for channels and buffers exactly like any other
// packets, so the latency the handle reports is congestion-aware. The
// caller advances the network (Step, with GenerateBernoulli for
// background load) until Done.
//
// Transfers never count toward the measurement window: MeasuredCounts
// and warm-up/measure/drain accounting are unaffected.
func (n *Network) StartTransfer(src, dst topo.NodeID, packets int) (*Transfer, error) {
	if int(src) < 0 || int(src) >= n.g.NumNodes {
		return nil, fmt.Errorf("sim: transfer source %d out of [0,%d)", src, n.g.NumNodes)
	}
	if int(dst) < 0 || int(dst) >= n.g.NumNodes {
		return nil, fmt.Errorf("sim: transfer destination %d out of [0,%d)", dst, n.g.NumNodes)
	}
	if packets < 1 {
		return nil, fmt.Errorf("sim: transfer needs at least 1 packet, got %d", packets)
	}
	t := &Transfer{src: src, dst: dst, packets: packets, start: n.cycle}
	s := &n.sources[src]
	for i := 0; i < packets; i++ {
		s.push(arrival{ts: n.cycle, dst: dst, hasDst: true, xfer: t})
	}
	n.wakeSource(int(src))
	return t, nil
}

// registerTransfer associates a freshly materialized packet with its
// transfer; called from injectSource for tagged arrivals only, so
// networks that never start transfers pay a single nil check.
func (n *Network) registerTransfer(p *Packet, t *Transfer) {
	if n.xfers == nil {
		n.xfers = make(map[*Packet]*Transfer)
	}
	n.xfers[p] = t
}

// completeTransfer credits a delivered packet to its transfer, if any;
// called from processEvents on tail-flit delivery.
func (n *Network) completeTransfer(p *Packet) {
	t, ok := n.xfers[p]
	if !ok {
		return
	}
	delete(n.xfers, p)
	t.delivered++
	t.lastCycle = n.cycle
	t.lastHops = p.Hops
}

// PendingTransfers returns how many transfer packets are currently
// materialized in the network (injected but not yet delivered). Used by
// tests to prove the tracking map drains.
func (n *Network) PendingTransfers() int { return len(n.xfers) }
