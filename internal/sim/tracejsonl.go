package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"flatnet/internal/topo"
)

// The JSONL workload-trace format (DESIGN.md §16): one JSON object per
// line, {"cycle":C,"src":S,"dst":D,"size":K}, with size optional
// (default one packet). Lines must be ordered by non-decreasing cycle —
// the property that lets a replay stream a trace of any length with
// bounded memory. Blank lines are ignored; unknown fields are tolerated
// for additive evolution.
type jsonlEntry struct {
	Cycle int64 `json:"cycle"`
	Src   int   `json:"src"`
	Dst   int   `json:"dst"`
	Size  int   `json:"size,omitempty"`
}

// WriteTraceJSONL emits a workload trace in the JSONL format. Entries
// are written in the order given; a trace meant for streaming replay
// must be ordered by non-decreasing cycle (RecordTrace output is).
func WriteTraceJSONL(w io.Writer, entries []TraceEntry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range entries {
		je := jsonlEntry{Cycle: e.Cycle, Src: int(e.Src), Dst: int(e.Dst), Size: e.Size}
		if err := enc.Encode(&je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TraceScanner streams a JSONL workload trace entry by entry, holding
// one line in memory at a time. It validates as it goes: malformed
// JSON, negative fields, oversized packet counts and cycle-order
// violations are errors carrying the offending line number, never
// panics.
type TraceScanner struct {
	sc   *bufio.Scanner
	line int
	last int64
}

// maxTraceEntryPackets bounds one entry's packet count, so a corrupt
// size field cannot balloon a replay.
const maxTraceEntryPackets = 1 << 20

// NewTraceScanner builds a streaming reader over a JSONL workload
// trace.
func NewTraceScanner(r io.Reader) *TraceScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &TraceScanner{sc: sc}
}

// Next returns the next trace entry. It returns io.EOF at the end of
// the trace and a descriptive error on malformed input.
func (t *TraceScanner) Next() (TraceEntry, error) {
	for t.sc.Scan() {
		t.line++
		line := t.sc.Bytes()
		if len(trimSpace(line)) == 0 {
			continue
		}
		var je jsonlEntry
		if err := json.Unmarshal(line, &je); err != nil {
			return TraceEntry{}, fmt.Errorf("sim: trace line %d: %w", t.line, err)
		}
		if je.Cycle < 0 || je.Src < 0 || je.Dst < 0 || je.Size < 0 {
			return TraceEntry{}, fmt.Errorf("sim: trace line %d: negative field", t.line)
		}
		if je.Size > maxTraceEntryPackets {
			return TraceEntry{}, fmt.Errorf("sim: trace line %d: size %d above cap %d",
				t.line, je.Size, maxTraceEntryPackets)
		}
		if je.Cycle < t.last {
			return TraceEntry{}, fmt.Errorf("sim: trace line %d: cycle %d out of order (after %d)",
				t.line, je.Cycle, t.last)
		}
		t.last = je.Cycle
		return TraceEntry{
			Cycle: je.Cycle,
			Src:   topo.NodeID(je.Src),
			Dst:   topo.NodeID(je.Dst),
			Size:  je.Size,
		}, nil
	}
	if err := t.sc.Err(); err != nil {
		return TraceEntry{}, fmt.Errorf("sim: trace line %d: %w", t.line+1, err)
	}
	return TraceEntry{}, io.EOF
}

// trimSpace is a minimal allocation-free space trim for line emptiness
// checks.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// ReadTraceJSONL slurps a whole JSONL workload trace. Prefer
// Network.ReplayTrace with a TraceScanner for traces too large to hold
// in memory.
func ReadTraceJSONL(r io.Reader) ([]TraceEntry, error) {
	t := NewTraceScanner(r)
	var out []TraceEntry
	for {
		e, err := t.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// replayHorizon is how many cycles ahead of the network's clock
// ReplayTrace pre-loads arrivals. It bounds the replay's memory to the
// traffic of one horizon window plus whatever backlog the network
// itself accumulates.
const replayHorizon = 1024

// ReplayTrace streams a JSONL trace into the network: every entry is
// injected (as Size packets from Src to Dst at its arrival cycle) and
// the network is stepped as the trace's clock advances, then run until
// every injected packet has drained. It returns the packet count
// injected. maxCycles bounds the whole replay; 0 means unbounded.
//
// The trace must be ordered by non-decreasing cycle; the scanner
// enforces this, which is what keeps memory bounded for traces of any
// length. Deliveries are observable through OnDeliver, and the replay
// is bit-identical at every worker count.
func (n *Network) ReplayTrace(t *TraceScanner, maxCycles int64) (int64, error) {
	var injected int64
	var e TraceEntry
	have, eof := false, false
	for !eof {
		// Top up: inject every entry due within the look-ahead horizon.
		for {
			if !have {
				var err error
				e, err = t.Next()
				if err == io.EOF {
					eof = true
					break
				}
				if err != nil {
					return injected, err
				}
				have = true
			}
			if e.Cycle > n.Cycle()+replayHorizon {
				break
			}
			for k := e.packets(); k > 0; k-- {
				if err := n.InjectAt(e.Src, e.Cycle, e.Dst); err != nil {
					return injected, err
				}
				injected++
			}
			have = false
		}
		if eof {
			break
		}
		if maxCycles > 0 && n.Cycle() >= maxCycles {
			return injected, fmt.Errorf("sim: trace replay exceeded %d cycles", maxCycles)
		}
		n.Step()
	}
	// Drain: run until every arrival has materialized and delivered.
	for {
		inj, del := n.Totals()
		if n.Backlog() == 0 && del >= inj {
			return injected, nil
		}
		if maxCycles > 0 && n.Cycle() >= maxCycles {
			return injected, fmt.Errorf("sim: trace replay did not drain within %d cycles", maxCycles)
		}
		n.Step()
	}
}
