package sim

import (
	"testing"

	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

func multiflitConfig(size int) Config {
	c := DefaultConfig()
	c.PacketSize = size
	return c
}

func TestMultiFlitRejectsBadSize(t *testing.T) {
	f := testFF(t, 4, 2)
	if _, err := New(f.Graph(), &minimalAlg{f}, Config{Seed: 1, BufPerPort: 32, PacketSize: -1}); err == nil {
		t.Fatal("negative packet size accepted")
	}
	// Zero defaults to 1.
	n, err := New(f.Graph(), &minimalAlg{f}, Config{Seed: 1, BufPerPort: 32})
	if err != nil {
		t.Fatal(err)
	}
	if n.PacketSize() != 1 {
		t.Fatalf("packet size defaulted to %d, want 1", n.PacketSize())
	}
}

func TestMultiFlitSinglePacketLatency(t *testing.T) {
	// A size-4 packet pays 3 extra serialization cycles over a size-1
	// packet on the same path.
	f := testFF(t, 4, 2)
	lat := func(size int) int64 {
		n, err := New(f.Graph(), &minimalAlg{f}, multiflitConfig(size))
		if err != nil {
			t.Fatal(err)
		}
		tab := make([]topo.NodeID, 16)
		for i := range tab {
			tab[i] = 15
		}
		n.SetPattern(traffic.NewFixed("single", tab))
		var deliveredAt int64 = -1
		n.OnDeliver(func(p *Packet, cycle int64) { deliveredAt = cycle })
		n.pushArrival(0, 0)
		for i := 0; i < 40 && deliveredAt < 0; i++ {
			n.Step()
		}
		if deliveredAt < 0 {
			t.Fatalf("size-%d packet not delivered", size)
		}
		return deliveredAt
	}
	l1, l4 := lat(1), lat(4)
	if l4 != l1+3 {
		t.Fatalf("size-4 latency %d, want size-1 latency %d + 3 serialization cycles", l4, l1)
	}
}

func TestMultiFlitConservation(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, multiflitConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(16))
	for i := 0; i < 600; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
		if i%100 != 0 {
			continue
		}
		injected, delivered := n.FlitTotals()
		buffered, inFlight := n.Inventory()
		if injected != delivered+int64(buffered)+int64(inFlight) {
			t.Fatalf("cycle %d: flit conservation violated: %d != %d+%d+%d",
				i, injected, delivered, buffered, inFlight)
		}
	}
	// Drain and verify every injected packet arrives whole.
	for i := 0; i < 1000; i++ {
		n.Step()
	}
	pi, pd := n.Totals()
	fi, fd := n.FlitTotals()
	if pi != pd {
		t.Fatalf("packets lost: injected %d delivered %d", pi, pd)
	}
	if fi != fd || fi != 4*pi {
		t.Fatalf("flits inconsistent: injected %d delivered %d packets %d", fi, fd, pi)
	}
}

func TestMultiFlitThroughputMatchesSingleFlit(t *testing.T) {
	// §3.2 note 2: "Different packet sizes do not impact the comparison
	// results." Verify the minimal-routing worst-case collapse (~1/k) and
	// the uniform-random full throughput hold at packet size 4.
	f := testFF(t, 4, 2)
	wc := traffic.NewWorstCase(f.K, f.NumRouters)
	ur := traffic.NewUniform(f.NumNodes)
	wcThpt, err := SaturationThroughput(f.Graph(), &minimalAlg{f}, multiflitConfig(4), wc, 800, 1600)
	if err != nil {
		t.Fatal(err)
	}
	if wcThpt < 0.17 || wcThpt > 0.33 {
		t.Fatalf("size-4 WC throughput = %.3f, want ~0.25 as with single flits", wcThpt)
	}
	// With a single VC, wormhole switching loses some uniform-random
	// throughput to pipeline bubbles while a packet holds the downstream
	// VC — the classic motivation for virtual channels. The comparison
	// against the worst case must still be stark.
	urThpt, err := SaturationThroughput(f.Graph(), &minimalAlg{f}, multiflitConfig(4), ur, 800, 1600)
	if err != nil {
		t.Fatal(err)
	}
	if urThpt < 0.55 {
		t.Fatalf("size-4 UR throughput = %.3f, implausibly low", urThpt)
	}
	if urThpt < 2*wcThpt {
		t.Fatalf("size-4 UR (%.3f) should still dwarf WC (%.3f)", urThpt, wcThpt)
	}
}

func TestMultiFlitNoInterleaving(t *testing.T) {
	// With wormhole VC allocation, the flits of two packets must never
	// interleave within one downstream VC. Track per-(router, port, vc)
	// streams via a shadow check: deliveries must always complete packets
	// in whole units, which the tail-accounting asserts; additionally the
	// run must make progress at high load without deadlock.
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, multiflitConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(16))
	for i := 0; i < 1500; i++ {
		n.GenerateBernoulli(0.9)
		n.Step()
	}
	_, delivered := n.Totals()
	if delivered < 1000 {
		t.Fatalf("high-load multi-flit run delivered only %d packets", delivered)
	}
	// All delivered packets were complete: flitsDelivered accumulates
	// exactly size x packets once drained.
	for i := 0; i < 2000; i++ {
		n.Step()
	}
	pi, pd := n.Totals()
	fi, fd := n.FlitTotals()
	if pi != pd || fi != fd || fd != 3*pd {
		t.Fatalf("incomplete packets: packets %d/%d flits %d/%d", pi, pd, fi, fd)
	}
}

func TestMultiFlitMeasuredLatencyIncludesSerialization(t *testing.T) {
	f := testFF(t, 4, 2)
	res1, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, multiflitConfig(1), RunConfig{
		Load: 0.2, Pattern: traffic.NewUniform(16), Warmup: 400, Measure: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	res4, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, multiflitConfig(4), RunConfig{
		Load: 0.2, Pattern: traffic.NewUniform(16), Warmup: 400, Measure: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res4.AvgLatency < res1.AvgLatency+2 {
		t.Fatalf("size-4 latency %.2f should exceed size-1 latency %.2f by ~3 cycles",
			res4.AvgLatency, res1.AvgLatency)
	}
	// Accepted rate is reported in flits: at 20% offered flit load both
	// should accept ~0.2.
	if res4.AcceptedRate < 0.16 || res4.AcceptedRate > 0.24 {
		t.Fatalf("size-4 accepted flit rate = %.3f, want ~0.2", res4.AcceptedRate)
	}
}
