package sim_test

import (
	"strings"
	"testing"

	"flatnet/internal/check"
	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/traffic"
)

// FuzzReadTrace exercises the trace parser with arbitrary input: it must
// never panic, and every successfully parsed entry must be well-formed
// (non-negative fields) and round-trip through WriteTrace.
func FuzzReadTrace(f *testing.F) {
	f.Add("# cycle src dst\n0 1 2\n")
	f.Add("5 0 0\n\n7 3 1\n")
	f.Add("")
	f.Add("garbage\n")
	f.Add("-1 2 3\n")
	f.Add("1 2\n")
	f.Add("999999999999999999999 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		entries, err := sim.ReadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.Cycle < 0 || e.Src < 0 || e.Dst < 0 {
				t.Fatalf("parser accepted negative fields: %+v", e)
			}
		}
		var sb strings.Builder
		if err := sim.WriteTrace(&sb, entries); err != nil {
			t.Fatalf("WriteTrace failed on parsed entries: %v", err)
		}
		back, err := sim.ReadTrace(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("round trip changed entry count: %d -> %d", len(entries), len(back))
		}
		for i := range entries {
			if back[i] != entries[i] {
				t.Fatalf("entry %d changed: %+v -> %+v", i, entries[i], back[i])
			}
		}
	})
}

// FuzzInvariants drives fuzzed simulator configurations — topology
// shape, buffering, switch speedup, packet size, algorithm, load and
// seed — under the internal/check sanitizer: whatever corner the fuzzer
// finds, a clean simulator must hold every conservation, credit,
// virtual-channel and wholeness invariant through load and drain.
func FuzzInvariants(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(0), uint8(16), uint8(0), uint8(1), uint8(40), uint64(1))
	f.Add(uint8(2), uint8(3), uint8(2), uint8(8), uint8(1), uint8(4), uint8(80), uint64(2))
	f.Add(uint8(3), uint8(2), uint8(4), uint8(4), uint8(2), uint8(6), uint8(60), uint64(3))
	f.Add(uint8(4), uint8(3), uint8(1), uint8(32), uint8(0), uint8(2), uint8(90), uint64(4))
	f.Fuzz(func(t *testing.T, k, n, algSel, buf, speedup, pktSize, loadPct uint8, seed uint64) {
		// Clamp the fuzzed bytes into a valid but adversarial corner of
		// the configuration space; keep networks tiny so each exec is fast.
		ks := 2 + int(k)%3 // 2..4
		ns := 2 + int(n)%2 // 2..3
		ps := 1 + int(pktSize)%6
		cfg := sim.Config{
			Seed:       seed,
			BufPerPort: ps * (1 + int(buf)%4), // >= one packet per VC after the VC split
			Speedup:    int(speedup) % 3,      // 0 (unlimited), 1, 2
			PacketSize: ps,
		}
		ff, err := core.NewFlatFly(ks, ns)
		if err != nil {
			t.Fatal(err)
		}
		algs := []string{"min", "val", "ugal", "ugal-s", "clos"}
		alg, err := routing.NewFlatFlyAlgorithm(algs[int(algSel)%len(algs)], ff)
		if err != nil {
			t.Fatal(err)
		}
		// Per-VC depth must be >= 1 flit.
		if cfg.BufPerPort < alg.NumVCs() {
			cfg.BufPerPort = alg.NumVCs() * ps
		}
		net, err := sim.New(ff.Graph(), alg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		net.SetPattern(traffic.NewUniform(net.NumNodes()))
		s := check.Attach(net, check.Config{})
		load := float64(int(loadPct)%101) / 100
		for i := 0; i < 300; i++ {
			net.GenerateBernoulli(load)
			net.Step()
		}
		for i := 0; i < 20000 && !net.Quiescent(); i++ {
			net.Step()
		}
		if !net.Quiescent() {
			t.Fatalf("network failed to drain (k=%d n=%d alg=%s load=%.2f pkt=%d speedup=%d buf=%d)",
				ks, ns, alg.Name(), load, ps, cfg.Speedup, cfg.BufPerPort)
		}
		if err := s.Finalize(); err != nil {
			t.Fatalf("sanitizer tripped (k=%d n=%d alg=%s load=%.2f pkt=%d speedup=%d buf=%d): %v",
				ks, ns, alg.Name(), load, ps, cfg.Speedup, cfg.BufPerPort, err)
		}
	})
}
