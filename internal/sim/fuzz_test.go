package sim

import (
	"strings"
	"testing"
)

// FuzzReadTrace exercises the trace parser with arbitrary input: it must
// never panic, and every successfully parsed entry must be well-formed
// (non-negative fields) and round-trip through WriteTrace.
func FuzzReadTrace(f *testing.F) {
	f.Add("# cycle src dst\n0 1 2\n")
	f.Add("5 0 0\n\n7 3 1\n")
	f.Add("")
	f.Add("garbage\n")
	f.Add("-1 2 3\n")
	f.Add("1 2\n")
	f.Add("999999999999999999999 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		entries, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.Cycle < 0 || e.Src < 0 || e.Dst < 0 {
				t.Fatalf("parser accepted negative fields: %+v", e)
			}
		}
		var sb strings.Builder
		if err := WriteTrace(&sb, entries); err != nil {
			t.Fatalf("WriteTrace failed on parsed entries: %v", err)
		}
		back, err := ReadTrace(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("round trip changed entry count: %d -> %d", len(entries), len(back))
		}
		for i := range entries {
			if back[i] != entries[i] {
				t.Fatalf("entry %d changed: %+v -> %+v", i, entries[i], back[i])
			}
		}
	})
}
