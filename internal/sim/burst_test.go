package sim

import (
	"math"
	"testing"

	"flatnet/internal/traffic"
)

func mustOnOff(t *testing.T, pat traffic.Pattern, peak, avgBurst float64) *traffic.OnOff {
	t.Helper()
	src, err := traffic.NewOnOff(pat, peak, avgBurst)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestOnOffValidation(t *testing.T) {
	f := testFF(t, 4, 2)
	u := traffic.NewUniform(16)
	if _, err := traffic.NewOnOff(u, 0, 4); err == nil {
		t.Error("peak 0 accepted")
	}
	if _, err := traffic.NewOnOff(u, 1.5, 4); err == nil {
		t.Error("peak > 1 accepted")
	}
	if _, err := traffic.NewOnOff(u, 0.8, 0.5); err == nil {
		t.Error("burst < 1 accepted")
	}
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Generate(0.5); err == nil {
		t.Error("Generate with no source installed accepted")
	}
	if err := n.SetSource(mustOnOff(t, u, 0.5, 4)); err != nil {
		t.Fatal(err)
	}
	if err := n.Generate(0.9); err == nil {
		t.Error("load > peak accepted")
	}
	if err := n.Generate(0.2); err != nil {
		t.Errorf("valid parameters rejected: %v", err)
	}
}

func TestOnOffAverageRate(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetSource(mustOnOff(t, traffic.NewUniform(16), 0.8, 10)); err != nil {
		t.Fatal(err)
	}
	const cycles = 40000
	const load = 0.2
	for i := 0; i < cycles; i++ {
		if err := n.Generate(load); err != nil {
			t.Fatal(err)
		}
		n.Step()
	}
	// Generated = materialized + still backlogged; compare to target.
	injected, _ := n.Totals()
	genRate := (float64(injected) + float64(n.Backlog())) / (cycles * 16)
	if math.Abs(genRate-load) > 0.02 {
		t.Fatalf("on/off average rate = %.3f, want ~%.2f", genRate, load)
	}
}

func TestOnOffBurstierThanBernoulli(t *testing.T) {
	// At equal average load, bursty arrivals queue more whenever the peak
	// rate exceeds the sustainable rate. Use the worst-case pattern with
	// minimal routing (capacity 1/k = 1/8): an average load of 0.06 is
	// comfortable for Bernoulli arrivals, but on/off bursts at peak 1.0
	// dwarf the drain rate and build deep queues.
	f := testFF(t, 8, 2)
	run := func(bursty bool) float64 {
		n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		wc := traffic.NewWorstCase(f.K, f.NumRouters)
		if bursty {
			err = n.SetSource(mustOnOff(t, wc, 1.0, 25))
		} else {
			err = n.SetSource(traffic.NewBernoulli(wc))
		}
		if err != nil {
			t.Fatal(err)
		}
		n.SetMeasurementWindow(1000, 4000)
		var sum, count float64
		n.OnDeliver(func(p *Packet, cycle int64) {
			if p.Measured {
				sum += float64(cycle - p.InjectCycle)
				count++
			}
		})
		for i := 0; i < 6000; i++ {
			if err := n.Generate(0.06); err != nil {
				t.Fatal(err)
			}
			n.Step()
		}
		if count == 0 {
			t.Fatal("no measured deliveries")
		}
		return sum / count
	}
	bern := run(false)
	burst := run(true)
	if burst < 2*bern {
		t.Fatalf("bursty latency %.2f should clearly exceed Bernoulli %.2f at equal load", burst, bern)
	}
}

func TestRunLoadPointWithBurst(t *testing.T) {
	f := testFF(t, 8, 2)
	base := RunConfig{
		Load: 0.06, Pattern: traffic.NewWorstCase(8, 8),
		Warmup: 800, Measure: 800, MaxCycles: 20000,
	}
	bern, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, DefaultConfig(), base)
	if err != nil {
		t.Fatal(err)
	}
	burst := base
	burst.Burst = &BurstConfig{Peak: 1.0, AvgBurst: 25}
	by, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, DefaultConfig(), burst)
	if err != nil {
		t.Fatal(err)
	}
	if by.AvgLatency < 1.5*bern.AvgLatency {
		t.Fatalf("bursty run latency %.2f should exceed Bernoulli %.2f", by.AvgLatency, bern.AvgLatency)
	}
	// An explicit Source produces the identical run as the equivalent
	// Burst shorthand.
	srcRun := base
	srcRun.Pattern = nil
	srcRun.Source = mustOnOff(t, traffic.NewWorstCase(8, 8), 1.0, 25)
	bySrc, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, DefaultConfig(), srcRun)
	if err != nil {
		t.Fatal(err)
	}
	if bySrc != by {
		t.Fatalf("Source run %+v differs from Burst run %+v", bySrc, by)
	}
	// Invalid burst parameters surface as errors.
	bad := base
	bad.Burst = &BurstConfig{Peak: 0.01, AvgBurst: 25} // peak < load
	if _, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, DefaultConfig(), bad); err == nil {
		t.Error("peak below load accepted")
	}
	// Source and Burst are mutually exclusive.
	both := burst
	both.Source = srcRun.Source
	if _, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, DefaultConfig(), both); err == nil {
		t.Error("Source together with Burst accepted")
	}
}
