package sim

import (
	"math"
	"testing"

	"flatnet/internal/traffic"
)

func TestOnOffValidation(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.GenerateOnOff(0.5, 0, 4); err == nil {
		t.Error("peak 0 accepted")
	}
	if err := n.GenerateOnOff(0.5, 1.5, 4); err == nil {
		t.Error("peak > 1 accepted")
	}
	if err := n.GenerateOnOff(0.9, 0.5, 4); err == nil {
		t.Error("load > peak accepted")
	}
	if err := n.GenerateOnOff(0.2, 0.8, 0.5); err == nil {
		t.Error("burst < 1 accepted")
	}
	if err := n.GenerateOnOff(0.2, 0.8, 8); err != nil {
		t.Errorf("valid parameters rejected: %v", err)
	}
}

func TestOnOffAverageRate(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(16))
	const cycles = 40000
	const load = 0.2
	for i := 0; i < cycles; i++ {
		if err := n.GenerateOnOff(load, 0.8, 10); err != nil {
			t.Fatal(err)
		}
		n.Step()
	}
	// Run to drain so the generated count is reflected in deliveries.
	injected, _ := n.Totals()
	rate := float64(injected+n.Backlog()) / (cycles * 16)
	// Generated = materialized + still backlogged; compare to target.
	genRate := (float64(injected) + float64(n.Backlog())) / (cycles * 16)
	_ = rate
	if math.Abs(genRate-load) > 0.02 {
		t.Fatalf("on/off average rate = %.3f, want ~%.2f", genRate, load)
	}
}

func TestOnOffBurstierThanBernoulli(t *testing.T) {
	// At equal average load, bursty arrivals queue more whenever the peak
	// rate exceeds the sustainable rate. Use the worst-case pattern with
	// minimal routing (capacity 1/k = 1/8): an average load of 0.06 is
	// comfortable for Bernoulli arrivals, but on/off bursts at peak 1.0
	// dwarf the drain rate and build deep queues.
	f := testFF(t, 8, 2)
	run := func(bursty bool) float64 {
		n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		n.SetPattern(traffic.NewWorstCase(f.K, f.NumRouters))
		n.SetMeasurementWindow(1000, 4000)
		var sum, count float64
		n.OnDeliver(func(p *Packet, cycle int64) {
			if p.Measured {
				sum += float64(cycle - p.InjectCycle)
				count++
			}
		})
		for i := 0; i < 6000; i++ {
			if bursty {
				if err := n.GenerateOnOff(0.06, 1.0, 25); err != nil {
					t.Fatal(err)
				}
			} else {
				n.GenerateBernoulli(0.06)
			}
			n.Step()
		}
		if count == 0 {
			t.Fatal("no measured deliveries")
		}
		return sum / count
	}
	bern := run(false)
	burst := run(true)
	if burst < 2*bern {
		t.Fatalf("bursty latency %.2f should clearly exceed Bernoulli %.2f at equal load", burst, bern)
	}
}

func TestRunLoadPointWithBurst(t *testing.T) {
	f := testFF(t, 8, 2)
	base := RunConfig{
		Load: 0.06, Pattern: traffic.NewWorstCase(8, 8),
		Warmup: 800, Measure: 800, MaxCycles: 20000,
	}
	bern, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, DefaultConfig(), base)
	if err != nil {
		t.Fatal(err)
	}
	burst := base
	burst.Burst = &BurstConfig{Peak: 1.0, AvgBurst: 25}
	by, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, DefaultConfig(), burst)
	if err != nil {
		t.Fatal(err)
	}
	if by.AvgLatency < 1.5*bern.AvgLatency {
		t.Fatalf("bursty run latency %.2f should exceed Bernoulli %.2f", by.AvgLatency, bern.AvgLatency)
	}
	// Invalid burst parameters surface as errors.
	bad := base
	bad.Burst = &BurstConfig{Peak: 0.01, AvgBurst: 25} // peak < load
	if _, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, DefaultConfig(), bad); err == nil {
		t.Error("peak below load accepted")
	}
}
