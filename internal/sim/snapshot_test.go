package sim_test

import (
	"bytes"
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/traffic"
)

// snapCounters is the bookkeeping surface compared between a
// straight-through run and its restored twin.
type snapCounters struct {
	inj, del, fin, fdel, mc, md int64
	cycle                       int64
	pendingXfers                int
}

func readCounters(n *sim.Network) snapCounters {
	var c snapCounters
	c.inj, c.del = n.Totals()
	c.fin, c.fdel = n.FlitTotals()
	c.mc, c.md = n.MeasuredCounts()
	c.cycle = n.Cycle()
	c.pendingXfers = n.PendingTransfers()
	return c
}

func recordInto(out *[]delivery) func(p *sim.Packet, cycle int64) {
	return func(p *sim.Packet, cycle int64) {
		*out = append(*out, delivery{
			cycle: cycle, src: int(p.Src), dst: int(p.Dst),
			inject: p.InjectCycle, hops: p.Hops,
		})
	}
}

// runSnapshotPair runs one network straight through (snapshotting the
// moment warm-up ends) and a twin restored from that snapshot, then
// requires the post-snapshot delivery streams, counters and re-snapshot
// bytes to agree exactly. snapW/resW choose the worker counts on either
// side: restore-then-run must be bit-identical for every combination.
func runSnapshotPair(t *testing.T, ff *core.FlatFly, algName string, cfg sim.Config, load float64, warm, tail, snapW, resW int) {
	t.Helper()
	label := algName

	newAlg := func() sim.Algorithm {
		alg, err := routing.NewFlatFlyAlgorithm(algName, ff)
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	alg := newAlg()
	if cfg.BufPerPort < alg.NumVCs()*cfg.PacketSize {
		cfg.BufPerPort = alg.NumVCs() * cfg.PacketSize
	}
	measStart, measEnd := int64(warm), int64(warm+tail/2)

	// Reference: run straight through, snapshotting at the warm point.
	a, err := sim.New(ff.Graph(), alg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.SetWorkers(snapW); err != nil {
		t.Fatal(err)
	}
	a.SetPattern(traffic.NewUniform(a.NumNodes()))
	a.SetMeasurementWindow(measStart, measEnd)
	var aTail []delivery
	a.OnDeliver(recordInto(&aTail))
	for i := 0; i < warm; i++ {
		a.GenerateBernoulli(load)
		a.Step()
	}
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatalf("%s: snapshot: %v", label, err)
	}
	aTail = aTail[:0]
	for i := 0; i < tail; i++ {
		a.GenerateBernoulli(load)
		a.Step()
	}
	for i := 0; i < 20000 && !a.Quiescent(); i++ {
		a.Step()
	}
	if !a.Quiescent() {
		t.Fatalf("%s: reference did not drain", label)
	}
	aC := readCounters(a)

	// Twin: restore, then run the identical post-snapshot schedule.
	b, err := sim.Restore(bytes.NewReader(buf.Bytes()), ff.Graph(), newAlg(), cfg)
	if err != nil {
		t.Fatalf("%s: restore: %v", label, err)
	}
	defer b.Close()
	var resnap bytes.Buffer
	if err := b.Snapshot(&resnap); err != nil {
		t.Fatalf("%s: re-snapshot: %v", label, err)
	}
	if !bytes.Equal(buf.Bytes(), resnap.Bytes()) {
		t.Fatalf("%s: restore-then-snapshot is not byte-identical (%d vs %d bytes)",
			label, buf.Len(), resnap.Len())
	}
	if err := b.SetWorkers(resW); err != nil {
		t.Fatal(err)
	}
	b.SetPattern(traffic.NewUniform(b.NumNodes()))
	var bTail []delivery
	b.OnDeliver(recordInto(&bTail))
	for i := 0; i < tail; i++ {
		b.GenerateBernoulli(load)
		b.Step()
	}
	for i := 0; i < 20000 && !b.Quiescent(); i++ {
		b.Step()
	}
	if !b.Quiescent() {
		t.Fatalf("%s: restored network did not drain", label)
	}
	diffDeliveries(t, aTail, bTail, label)
	if bC := readCounters(b); bC != aC {
		t.Fatalf("%s (snapW=%d resW=%d): counters diverged:\n  straight: %+v\n  restored: %+v",
			label, snapW, resW, aC, bC)
	}
}

// TestSnapshotRoundTrip is the tentpole guarantee: restore-then-run is
// bit-identical to run-straight-through across router configurations
// (multi-flit wormhole, age arbitration, pipelined routers) and every
// combination of snapshot-side and restore-side worker counts.
func TestSnapshotRoundTrip(t *testing.T) {
	ff, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []struct {
		name string
		alg  string
		cfg  sim.Config
	}{
		{"default", "ugal-s", sim.DefaultConfig()},
		{"multiflit", "clos", sim.Config{Seed: 3, BufPerPort: 32, PacketSize: 4}},
		{"age", "min", sim.Config{Seed: 5, BufPerPort: 16, PacketSize: 2, AgeArbiter: true}},
		{"pipelined", "val", sim.Config{Seed: 9, BufPerPort: 32, RouterDelay: 2}},
	}
	combos := [][2]int{{1, 1}, {1, 4}, {4, 1}, {4, 4}}
	for _, c := range cfgs {
		for _, w := range combos {
			t.Run(c.name, func(t *testing.T) {
				runSnapshotPair(t, ff, c.alg, c.cfg, 0.4, 150, 150, w[0], w[1])
			})
		}
	}
}

// TestSnapshotWithTransfersAndBursts covers the harder state: bursty
// (two-state Markov) injection mid-burst, an in-flight StartTransfer
// burst, and source backlog, all captured and resumed exactly.
func TestSnapshotWithTransfersAndBursts(t *testing.T) {
	ff, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := routing.NewFlatFlyAlgorithm("ugal", ff)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.PacketSize = 2

	burst := func(n *sim.Network) {
		src, err := traffic.NewOnOff(traffic.NewUniform(n.NumNodes()), 0.8, 20)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.SetSource(src); err != nil {
			t.Fatal(err)
		}
	}
	run := func(n *sim.Network, cycles int, out *[]delivery) {
		for i := 0; i < cycles; i++ {
			if err := n.Generate(0.3); err != nil {
				t.Fatal(err)
			}
			n.Step()
		}
	}

	a, err := sim.New(ff.Graph(), alg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	burst(a)
	var aTail []delivery
	a.OnDeliver(recordInto(&aTail))
	run(a, 100, &aTail)
	if _, err := a.StartTransfer(0, 13, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := a.StartTransfer(7, 2, 3); err != nil {
		t.Fatal(err)
	}
	run(a, 3, &aTail) // leave the transfers mid-flight
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	aTail = aTail[:0]
	run(a, 200, &aTail)

	alg2, err := routing.NewFlatFlyAlgorithm("ugal", ff)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Restore(bytes.NewReader(buf.Bytes()), ff.Graph(), alg2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.PendingTransfers() == 0 && b.Backlog() == 0 {
		t.Fatal("expected restored transfer packets in flight or backlogged")
	}
	// SetSource applies the snapshot's stashed per-node on/off state, so
	// the clone resumes mid-burst exactly where a left off.
	burst(b)
	var bTail []delivery
	b.OnDeliver(recordInto(&bTail))
	run(b, 200, &bTail)
	diffDeliveries(t, aTail, bTail, "transfers+bursts")
	if a.PendingTransfers() != b.PendingTransfers() {
		t.Fatalf("pending transfers diverged: %d vs %d", a.PendingTransfers(), b.PendingTransfers())
	}
}

// TestSnapshotRejects pins the refusal surface: instrumented or closed
// networks cannot snapshot, and mismatched restore targets are errors.
func TestSnapshotRejects(t *testing.T) {
	ff, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := routing.NewFlatFlyAlgorithm("min", ff)
	if err != nil {
		t.Fatal(err)
	}

	probed, err := sim.New(ff.Graph(), alg, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer probed.Close()
	probed.AttachProbes(sim.ProbeConfig{})
	if err := probed.Snapshot(&bytes.Buffer{}); err == nil {
		t.Fatal("snapshot of a probed network should fail")
	}

	n, err := sim.New(ff.Graph(), alg, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(n.NumNodes()))
	for i := 0; i < 50; i++ {
		n.GenerateBernoulli(0.3)
		n.Step()
	}
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	n.Close()
	if err := n.Snapshot(&bytes.Buffer{}); err == nil {
		t.Fatal("snapshot of a closed network should fail")
	}

	// Wrong seed.
	badCfg := sim.DefaultConfig()
	badCfg.Seed = 999
	if _, err := sim.Restore(bytes.NewReader(buf.Bytes()), ff.Graph(), alg, badCfg); err == nil {
		t.Fatal("restore with a different seed should fail")
	}
	// Wrong algorithm.
	val, err := routing.NewFlatFlyAlgorithm("val", ff)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Restore(bytes.NewReader(buf.Bytes()), ff.Graph(), val, sim.DefaultConfig()); err == nil {
		t.Fatal("restore with a different algorithm should fail")
	}
	// Wrong topology.
	ff2, err := core.NewFlatFly(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg2, err := routing.NewFlatFlyAlgorithm("min", ff2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Restore(bytes.NewReader(buf.Bytes()), ff2.Graph(), alg2, sim.DefaultConfig()); err == nil {
		t.Fatal("restore onto a different topology should fail")
	}
}

// TestSnapshotCorruptionRobust requires every single-byte corruption and
// every truncation of a valid snapshot to surface as an error — never a
// panic, never a silently-wrong network.
func TestSnapshotCorruptionRobust(t *testing.T) {
	ff, err := core.NewFlatFly(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := routing.NewFlatFlyAlgorithm("ugal-s", ff)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	n, err := sim.New(ff.Graph(), alg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetPattern(traffic.NewUniform(n.NumNodes()))
	for i := 0; i < 80; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
	}
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		if _, err := sim.Restore(bytes.NewReader(mut), ff.Graph(), alg, cfg); err == nil {
			t.Fatalf("corrupting byte %d of %d went undetected", i, len(data))
		}
	}
	for l := 0; l < len(data); l += 7 {
		if _, err := sim.Restore(bytes.NewReader(data[:l]), ff.Graph(), alg, cfg); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", l, len(data))
		}
	}
}

// FuzzSnapshotRoundTrip fuzzes simulator configurations and requires
// (1) restore-then-run to match run-straight-through exactly, and
// (2) arbitrarily corrupted snapshot bytes to fail with an error
// instead of panicking or hanging.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(40), uint8(0), uint8(0), uint8(0), []byte{})
	f.Add(uint64(2), uint8(80), uint8(3), uint8(1), uint8(5), []byte{1, 2, 3})
	f.Add(uint64(3), uint8(60), uint8(1), uint8(2), uint8(7), []byte{0xff, 0x80})
	f.Fuzz(func(t *testing.T, seed uint64, loadPct, algSel, workSel, extra uint8, corrupt []byte) {
		ff, err := core.NewFlatFly(2+int(extra)%2, 2)
		if err != nil {
			t.Fatal(err)
		}
		algs := []string{"min", "val", "ugal", "ugal-s", "clos"}
		algName := algs[int(algSel)%len(algs)]
		ps := 1 + int(extra>>2)%3
		cfg := sim.Config{
			Seed:        seed,
			BufPerPort:  8 * ps,
			PacketSize:  ps,
			AgeArbiter:  extra&1 != 0,
			RouterDelay: int(extra>>1) % 2,
		}
		load := float64(int(loadPct)%101) / 100
		snapW := 1 + int(workSel)%3
		resW := 1 + int(workSel>>2)%3
		newAlg := func() sim.Algorithm {
			alg, err := routing.NewFlatFlyAlgorithm(algName, ff)
			if err != nil {
				t.Fatal(err)
			}
			return alg
		}
		alg := newAlg()
		if cfg.BufPerPort < alg.NumVCs()*cfg.PacketSize {
			cfg.BufPerPort = alg.NumVCs() * cfg.PacketSize
		}

		a, err := sim.New(ff.Graph(), alg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		if err := a.SetWorkers(snapW); err != nil {
			t.Fatal(err)
		}
		a.SetPattern(traffic.NewUniform(a.NumNodes()))
		var aTail []delivery
		a.OnDeliver(recordInto(&aTail))
		for i := 0; i < 60; i++ {
			a.GenerateBernoulli(load)
			a.Step()
		}
		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		aTail = aTail[:0]
		for i := 0; i < 60; i++ {
			a.GenerateBernoulli(load)
			a.Step()
		}

		b, err := sim.Restore(bytes.NewReader(buf.Bytes()), ff.Graph(), newAlg(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		if err := b.SetWorkers(resW); err != nil {
			t.Fatal(err)
		}
		b.SetPattern(traffic.NewUniform(b.NumNodes()))
		var bTail []delivery
		b.OnDeliver(recordInto(&bTail))
		for i := 0; i < 60; i++ {
			b.GenerateBernoulli(load)
			b.Step()
		}
		diffDeliveries(t, aTail, bTail, algName)

		// Corruption robustness: apply the fuzzed (position, mask) pairs
		// and require restore to fail cleanly or succeed — never panic.
		if len(corrupt) >= 2 && buf.Len() > 0 {
			mut := append([]byte(nil), buf.Bytes()...)
			for i := 0; i+1 < len(corrupt); i += 2 {
				mut[int(corrupt[i])%len(mut)] ^= corrupt[i+1]
			}
			changed := !bytes.Equal(mut, buf.Bytes())
			c, err := sim.Restore(bytes.NewReader(mut), ff.Graph(), newAlg(), cfg)
			if err == nil {
				if !changed {
					c.Close()
				} else {
					t.Fatal("corrupted snapshot restored without error")
				}
			}
		}
	})
}
