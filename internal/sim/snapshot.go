package sim

import (
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"flatnet/internal/snapshot"
	"flatnet/internal/topo"
)

// This file implements deterministic checkpoint/restore of a Network
// (DESIGN.md §14). Snapshot serialises the complete simulation state
// between Steps — router buffers and credits, calendar events, in-flight
// packets, worklists, RNG streams, transfer maps, harness counters —
// into the internal/snapshot container; Restore rebuilds an equivalent
// Network such that restore-then-run is bit-identical to running the
// original straight through, at any worker count on either side.
//
// The format is canonical: identical state always serialises to
// identical bytes regardless of the snapshotted network's worker count.
// Three normalisations make that hold:
//
//   - Packets are indexed in a fixed collection order (input buffers,
//     then VC owners, then events, then source heads), so pointer
//     identity never leaks into the stream.
//   - Events are flattened across shards and outboxes, grouped by
//     absolute due cycle; within a cycle, flit and credit events (whose
//     processing order is immaterial — distinct FIFOs, commutative
//     increments) precede deliveries, and deliveries are ordered by
//     (scheduling cycle, shard), which is exactly the order the
//     sequential calendar slot holds them in.
//   - nextID is normalised to max(counter, largest live ID + 1), so a
//     snapshot taken under the parallel ID keying (cycle·N + src)
//     restores into a sequential network whose freshly minted IDs stay
//     above every live one, preserving all age-arbiter comparisons.
//
// Restored state that is provably empty between Steps (delta sums,
// request lists, deferred-delivery buffers, arena freelists) is simply
// recomputed or left at its zero value.

// Snapshot section tags, in stream order.
const (
	secDigest uint64 = iota + 1
	secScalars
	secPackets
	secTransfers
	secRouters
	secSources
	secEvents
	secWorkload
)

// pendingWorkload holds a restored snapshot's workload-source state
// until SetSource installs the matching source. A network carrying a
// pending workload snapshots it back out verbatim, so restore-then-
// snapshot round-trips byte-identically even before a source is
// installed.
type pendingWorkload struct {
	name  string
	state []byte
}

// graphDigest fingerprints a topology's full channel structure so a
// snapshot can refuse restoration onto a different graph.
func graphDigest(g *topo.Graph) uint64 {
	h := crc32.NewIEEE()
	fmt.Fprintf(h, "%s|%d|%d|", g.Label, g.NumNodes, len(g.Routers))
	for r := range g.Routers {
		rd := &g.Routers[r]
		fmt.Fprintf(h, "r%d/%d;", len(rd.In), len(rd.Out))
		for p := range rd.In {
			ip := &rd.In[p]
			fmt.Fprintf(h, "i%d,%d,%d,%d;", ip.Kind, ip.Node, ip.Peer, ip.PeerPort)
		}
		for p := range rd.Out {
			op := &rd.Out[p]
			fmt.Fprintf(h, "o%d,%d,%d,%d,%d;", op.Kind, op.Node, op.Peer, op.PeerPort, op.Latency)
		}
	}
	for i := 0; i < g.NumNodes; i++ {
		fmt.Fprintf(h, "n%d,%d,%d,%d;", g.NodeRouter[i], g.EjRouter[i], g.InjPort[i], g.EjPort[i])
	}
	return uint64(h.Sum32())
}

// snapshotCaps derives allocation bounds for restore-side validation
// from the topology: hostile length prefixes can never force an
// allocation beyond what a real network of this shape could hold.
func (n *Network) snapshotCaps() (maxEvents, maxPackets int) {
	outPorts := 0
	bufFlits := 0
	for r := range n.routers {
		outPorts += len(n.routers[r].out)
		for p := range n.routers[r].in {
			for v := range n.routers[r].in[p].vcs {
				bufFlits += len(n.routers[r].in[p].vcs[v].buf)
			}
		}
	}
	// Per output channel: staged flits are credit/backlog bounded by the
	// downstream buffering, and in-flight credits by the same. Deliveries
	// are staged flits of terminal channels.
	maxEvents = 2*n.cfg.BufPerPort*outPorts + 64
	// Every live packet holds at least one flit in a buffer, an event, or
	// a source's mid-injection slot.
	maxPackets = bufFlits + maxEvents + len(n.sources) + 16
	return maxEvents, maxPackets
}

// snapEvent is one calendar or outbox event tagged with its absolute due
// cycle for canonical ordering.
type snapEvent struct {
	due   int64
	sched int64 // deliveries: cycle the delivery was scheduled in
	del   bool
	ev    event
}

// Snapshot writes the network's complete state to w in the
// internal/snapshot container format. It must be called between Steps
// (never from inside a hook) and fails on instrumented networks: probes,
// tracers and sanitizer checks hold unserialisable state, and their
// runs force the sequential scheduler anyway — re-run those from cold.
func (n *Network) Snapshot(w io.Writer) error {
	if n.closed {
		return fmt.Errorf("sim: cannot snapshot a closed network")
	}
	if n.probes != nil || n.tracer != nil || n.checks != nil {
		return fmt.Errorf("sim: cannot snapshot an instrumented network (probes, tracer or checks attached)")
	}
	if n.stepAll {
		return fmt.Errorf("sim: cannot snapshot in stepAll debug mode")
	}
	// Serialise the workload source's arrival-process state up front: a
	// source that cannot serialise makes the whole network refuse to
	// snapshot, before any bytes are written.
	var wlName string
	var wlState []byte
	wlHas := false
	switch {
	case n.wl != nil:
		st, err := n.wl.State()
		if err != nil {
			return fmt.Errorf("sim: cannot snapshot: workload source %q refuses to serialise: %w", n.wl.Name(), err)
		}
		wlHas, wlName, wlState = true, n.wl.Name(), st
	case n.pendingWl != nil:
		wlHas, wlName, wlState = true, n.pendingWl.name, n.pendingWl.state
	}

	// Flatten every pending event (all shards' calendars, then staged
	// cross-shard outboxes) and sort into the canonical order: due cycle,
	// then flits/credits before deliveries, deliveries by scheduling
	// cycle. The stable sort keeps per-shard chronological slot order,
	// so deliveries land in exactly the sequential processing order.
	var evs []snapEvent
	for _, sh := range n.sh {
		cl := int64(len(sh.calendar))
		for delta := int64(0); delta < cl; delta++ {
			slot := (n.cycle + delta) % cl
			for _, ev := range sh.calendar[slot] {
				se := snapEvent{due: n.cycle + delta, ev: ev}
				if ev.kind == evDeliver {
					se.del = true
					se.sched = se.due - int64(ev.vc)
				}
				evs = append(evs, se)
			}
		}
	}
	for _, sh := range n.sh {
		for _, box := range sh.outbox {
			for _, x := range box {
				evs = append(evs, snapEvent{due: x.at, ev: x.ev})
			}
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].due != evs[j].due {
			return evs[i].due < evs[j].due
		}
		if evs[i].del != evs[j].del {
			return !evs[i].del
		}
		if evs[i].del {
			return evs[i].sched < evs[j].sched
		}
		return false
	})

	// Index every live packet in collection order. The order is a pure
	// function of simulation state, so identical states yield identical
	// indices (and identical bytes) at any worker count.
	pktIdx := make(map[*Packet]int)
	var pkts []*Packet
	addPkt := func(p *Packet) int {
		if i, ok := pktIdx[p]; ok {
			return i
		}
		i := len(pkts)
		pktIdx[p] = i
		pkts = append(pkts, p)
		return i
	}
	for r := range n.routers {
		rt := &n.routers[r]
		for p := range rt.in {
			ip := &rt.in[p]
			for v := range ip.vcs {
				q := &ip.vcs[v]
				for k := 0; k < q.count; k++ {
					addPkt(q.buf[(q.head+k)%len(q.buf)].pkt)
				}
			}
		}
		for p := range rt.out {
			for _, o := range rt.out[p].owner {
				if o != nil {
					addPkt(o)
				}
			}
		}
	}
	for i := range evs {
		if p := evs[i].ev.pkt; p != nil {
			addPkt(p)
		}
	}
	for i := range n.sources {
		if n.sources[i].cur != nil {
			addPkt(n.sources[i].cur)
		}
	}

	// Transfers, in (source backlog, then live packet) collection order.
	xferIdx := make(map[*Transfer]int)
	var xfers []*Transfer
	addXfer := func(t *Transfer) int {
		if t == nil {
			return -1
		}
		if i, ok := xferIdx[t]; ok {
			return i
		}
		i := len(xfers)
		xferIdx[t] = i
		xfers = append(xfers, t)
		return i
	}
	for i := range n.sources {
		s := &n.sources[i]
		for k := s.head; k < len(s.q); k++ {
			addXfer(s.q[k].xfer)
		}
	}
	type livePair struct{ pkt, xfer int }
	var pairs []livePair
	for i, p := range pkts {
		if t, ok := n.xfers[p]; ok {
			pairs = append(pairs, livePair{pkt: i, xfer: addXfer(t)})
		}
	}

	// nextID normalisation (see the file comment).
	nextID := n.nextID
	for _, p := range pkts {
		if p.ID >= nextID {
			nextID = p.ID + 1
		}
	}

	sw := snapshot.NewWriter(w)

	sw.Section(secDigest)
	sw.String(n.alg.Name())
	sw.Uvarint(uint64(n.vcs))
	sw.Uvarint(uint64(n.vcDepth))
	sw.U64(n.cfg.Seed)
	sw.Varint(int64(n.cfg.BufPerPort))
	sw.Varint(int64(n.cfg.Speedup))
	sw.Varint(int64(n.cfg.PacketSize))
	sw.Bool(n.cfg.AgeArbiter)
	sw.Varint(int64(n.cfg.RouterDelay))
	sw.Uvarint(uint64(len(n.routers)))
	sw.Uvarint(uint64(n.g.NumNodes))
	sw.U64(graphDigest(n.g))
	sw.Varint(int64(n.maxLat))
	sw.Varint(int64(n.calLen))

	sw.Section(secScalars)
	sw.Varint(n.cycle)
	sw.Varint(nextID)
	sw.Varint(n.deliveredTotal)
	sw.Varint(n.flitsDelivered)
	sw.Varint(n.measCreated)
	sw.Varint(n.measDelivered)
	sw.Varint(n.measStart)
	sw.Varint(n.measEnd)
	sw.Varint(n.statsStart)
	var injected, flitsInjected int64
	for _, sh := range n.sh {
		injected += sh.injected
		flitsInjected += sh.flitsInjected
	}
	sw.Varint(injected)
	sw.Varint(flitsInjected)

	sw.Section(secPackets)
	sw.Uvarint(uint64(len(pkts)))
	for _, p := range pkts {
		sw.Varint(p.ID)
		sw.Uvarint(uint64(p.Src))
		sw.Uvarint(uint64(p.Dst))
		sw.Varint(int64(p.Phase))
		sw.Varint(int64(p.Inter))
		sw.Uvarint(uint64(p.DimMask))
		sw.Varint(int64(p.Hops))
		sw.Varint(p.InjectCycle)
		sw.Varint(p.NetworkCycle)
		sw.Bool(p.Measured)
	}

	sw.Section(secTransfers)
	sw.Uvarint(uint64(len(xfers)))
	for _, t := range xfers {
		sw.Uvarint(uint64(t.src))
		sw.Uvarint(uint64(t.dst))
		sw.Varint(int64(t.packets))
		sw.Varint(t.start)
		sw.Varint(int64(t.delivered))
		sw.Varint(t.lastCycle)
		sw.Varint(int64(t.lastHops))
	}
	sw.Uvarint(uint64(len(pairs)))
	for _, pr := range pairs {
		sw.Uvarint(uint64(pr.pkt))
		sw.Uvarint(uint64(pr.xfer))
	}

	sw.Section(secRouters)
	for r := range n.routers {
		rt := &n.routers[r]
		st := rt.rng.State()
		for _, word := range st {
			sw.U64(word)
		}
		for p := range rt.in {
			ip := &rt.in[p]
			for v := range ip.vcs {
				q := &ip.vcs[v]
				sw.Uvarint(uint64(q.count))
				for k := 0; k < q.count; k++ {
					f := q.buf[(q.head+k)%len(q.buf)]
					sw.Uvarint(uint64(pktIdx[f.pkt]))
					sw.Bool(f.tail)
				}
				sw.Bool(q.routed)
				sw.Bool(q.headSent)
				if q.routed {
					sw.Uvarint(uint64(q.out.Port))
					sw.Uvarint(uint64(q.out.VC))
				}
			}
		}
		for p := range rt.out {
			op := &rt.out[p]
			switch op.kind {
			case topo.Network:
				for v := 0; v < n.vcs; v++ {
					sw.Varint(int64(op.credits[v]))
					sw.Varint(int64(op.pending[v]))
					if op.owner[v] != nil {
						sw.Varint(int64(pktIdx[op.owner[v]]))
					} else {
						sw.Varint(-1)
					}
				}
			case topo.Terminal:
				for v := 0; v < n.vcs; v++ {
					sw.Varint(int64(op.pending[v]))
				}
			default:
				continue // Unused ports carry no state
			}
			sw.Varint(int64(op.rr))
			sw.Varint(op.nextFree)
			sw.Varint(op.flitsSent)
		}
	}

	sw.Section(secSources)
	for i := range n.sources {
		s := &n.sources[i]
		st := s.rng.State()
		for _, word := range st {
			sw.U64(word)
		}
		if s.cur != nil {
			sw.Varint(int64(pktIdx[s.cur]))
		} else {
			sw.Varint(-1)
		}
		sw.Varint(int64(s.remaining))
		sw.Uvarint(uint64(s.backlogLen()))
		for k := s.head; k < len(s.q); k++ {
			a := &s.q[k]
			sw.Varint(a.ts)
			sw.Varint(int64(a.dst))
			sw.Bool(a.hasDst)
			sw.Varint(int64(addXfer(a.xfer)))
		}
	}

	sw.Section(secEvents)
	sw.Uvarint(uint64(len(evs)))
	for i := range evs {
		se := &evs[i]
		sw.Uvarint(uint64(se.due - n.cycle))
		sw.Uvarint(uint64(se.ev.kind))
		sw.Bool(se.ev.tail)
		sw.Varint(int64(se.ev.vc))
		sw.Uvarint(uint64(se.ev.router))
		sw.Varint(int64(se.ev.port))
		if se.ev.pkt != nil {
			sw.Varint(int64(pktIdx[se.ev.pkt]))
		} else {
			sw.Varint(-1)
		}
	}

	sw.Section(secWorkload)
	sw.Bool(wlHas)
	if wlHas {
		sw.String(wlName)
		sw.Bytes(wlState)
	}

	return sw.Close()
}

// Restore rebuilds a Network from a snapshot written by Snapshot. The
// caller supplies the same topology, algorithm and configuration the
// snapshotted network was built with (they are validated against the
// snapshot's digest — restoring onto mismatched structure is an error,
// never a silent misread). The returned network has not Stepped yet:
// SetWorkers may still partition it, and stepping it forward produces
// results bit-identical to stepping the original.
//
// The workload source's configuration is not part of a snapshot — only
// its mutable arrival-process state is. Re-install the source (or
// pattern) and hooks before stepping, as New's callers do: SetSource
// validates the source name against the snapshot and applies the
// stashed state.
func Restore(rd io.Reader, g *topo.Graph, alg Algorithm, cfg Config) (*Network, error) {
	r, err := snapshot.NewReader(rd)
	if err != nil {
		return nil, err
	}
	n, err := New(g, alg, cfg)
	if err != nil {
		return nil, err
	}

	r.Section(secDigest)
	check := func(what string, got, want int64) {
		if r.Err() == nil && got != want {
			err = fmt.Errorf("sim: snapshot mismatch: %s is %d, this network has %d", what, got, want)
		}
	}
	if name := r.String(); r.Err() == nil && name != n.alg.Name() {
		err = fmt.Errorf("sim: snapshot was taken with algorithm %q, not %q", name, n.alg.Name())
	}
	check("vcs", int64(r.Uvarint()), int64(n.vcs))
	check("vc depth", int64(r.Uvarint()), int64(n.vcDepth))
	if seed := r.U64(); r.Err() == nil && seed != n.cfg.Seed {
		err = fmt.Errorf("sim: snapshot was taken with seed %d, not %d", seed, n.cfg.Seed)
	}
	check("BufPerPort", r.Varint(), int64(n.cfg.BufPerPort))
	check("Speedup", r.Varint(), int64(n.cfg.Speedup))
	check("PacketSize", r.Varint(), int64(n.cfg.PacketSize))
	if age := r.Bool(); r.Err() == nil && age != n.cfg.AgeArbiter {
		err = fmt.Errorf("sim: snapshot AgeArbiter=%v does not match", age)
	}
	check("RouterDelay", r.Varint(), int64(n.cfg.RouterDelay))
	check("router count", int64(r.Uvarint()), int64(len(n.routers)))
	check("node count", int64(r.Uvarint()), int64(g.NumNodes))
	if d := r.U64(); r.Err() == nil && d != graphDigest(g) {
		err = fmt.Errorf("sim: snapshot topology digest %#x does not match graph %q", d, g.Label)
	}
	check("max latency", r.Varint(), int64(n.maxLat))
	check("calendar length", r.Varint(), int64(n.calLen))
	if r.Err() != nil {
		return nil, r.Err()
	}
	if err != nil {
		return nil, err
	}

	r.Section(secScalars)
	n.cycle = r.Varint()
	n.nextID = r.Varint()
	n.deliveredTotal = r.Varint()
	n.flitsDelivered = r.Varint()
	n.measCreated = r.Varint()
	n.measDelivered = r.Varint()
	n.measStart = r.Varint()
	n.measEnd = r.Varint()
	n.statsStart = r.Varint()
	sh := n.sh[0]
	sh.injected = r.Varint()
	sh.flitsInjected = r.Varint()
	if r.Err() == nil && (n.cycle < 0 || n.nextID < 0 || n.deliveredTotal < 0 ||
		n.flitsDelivered < 0 || n.measCreated < 0 || n.measDelivered < 0 ||
		sh.injected < 0 || sh.flitsInjected < 0) {
		return nil, fmt.Errorf("sim: snapshot has a negative scalar counter")
	}

	maxEvents, maxPackets := n.snapshotCaps()

	r.Section(secPackets)
	npkt := r.Count(maxPackets, "packet")
	pkts := make([]*Packet, npkt)
	for i := 0; i < npkt; i++ {
		p := &Packet{}
		p.ID = r.Varint()
		p.Src = topo.NodeID(r.Count(g.NumNodes-1, "packet source"))
		p.Dst = topo.NodeID(r.Count(g.NumNodes-1, "packet destination"))
		p.Phase = int8(r.Varint())
		p.Inter = int32(r.Varint())
		p.DimMask = uint32(r.Uvarint())
		p.Hops = int(r.Varint())
		p.InjectCycle = r.Varint()
		p.NetworkCycle = r.Varint()
		p.Measured = r.Bool()
		if r.Err() == nil && (p.Inter < -1 || p.Hops < 0) {
			return nil, fmt.Errorf("sim: snapshot packet %d has invalid routing state", i)
		}
		pkts[i] = p
	}
	pktAt := func(what string) *Packet {
		i := r.Count(npkt-1, what)
		if r.Err() != nil {
			return nil
		}
		return pkts[i]
	}
	optPkt := func(what string) *Packet {
		v := r.Varint()
		if r.Err() != nil || v == -1 {
			return nil
		}
		if v < 0 || v >= int64(npkt) {
			if r.Err() == nil {
				err = fmt.Errorf("sim: snapshot %s index %d out of range", what, v)
			}
			return nil
		}
		return pkts[v]
	}

	r.Section(secTransfers)
	nx := r.Count(maxPackets+(1<<20), "transfer")
	xfers := make([]*Transfer, 0, min(nx, 4096))
	for i := 0; i < nx; i++ {
		t := &Transfer{}
		t.src = topo.NodeID(r.Count(g.NumNodes-1, "transfer source"))
		t.dst = topo.NodeID(r.Count(g.NumNodes-1, "transfer destination"))
		t.packets = int(r.Varint())
		t.start = r.Varint()
		t.delivered = int(r.Varint())
		t.lastCycle = r.Varint()
		t.lastHops = int(r.Varint())
		if r.Err() != nil {
			return nil, r.Err()
		}
		xfers = append(xfers, t)
	}
	npairs := r.Count(npkt, "live transfer pair")
	for i := 0; i < npairs; i++ {
		p := pktAt("transfer packet")
		x := r.Count(nx-1, "transfer")
		if r.Err() != nil {
			break
		}
		n.registerTransfer(p, xfers[x])
	}

	r.Section(secRouters)
	for ri := range n.routers {
		rt := &n.routers[ri]
		var st [4]uint64
		for w := range st {
			st[w] = r.U64()
		}
		rt.rng.SetState(st)
		for p := range rt.in {
			ip := &rt.in[p]
			for v := range ip.vcs {
				q := &ip.vcs[v]
				cnt := r.Count(len(q.buf), "buffered flit")
				for k := 0; k < cnt; k++ {
					pk := pktAt("buffered packet")
					tail := r.Bool()
					if r.Err() != nil {
						return nil, r.Err()
					}
					q.push(flit{pkt: pk, tail: tail})
				}
				q.routed = r.Bool()
				q.headSent = r.Bool()
				if q.routed {
					q.out.Port = r.Count(len(rt.out)-1, "routed output port")
					q.out.VC = r.Count(n.vcs-1, "routed output VC")
				}
				if !q.empty() {
					sh.wakeVC(rt, ip, v)
				}
			}
		}
		for p := range rt.out {
			op := &rt.out[p]
			switch op.kind {
			case topo.Network:
				for v := 0; v < n.vcs; v++ {
					op.credits[v] = int(r.Varint())
					op.pending[v] = int(r.Varint())
					op.owner[v] = optPkt("VC owner")
					if r.Err() == nil && (op.credits[v] < 0 || op.credits[v] > n.vcDepth || op.pending[v] < 0) {
						return nil, fmt.Errorf("sim: snapshot router %d out %d vc %d has invalid flow-control state", ri, p, v)
					}
					op.pendingSum += op.pending[v]
				}
			case topo.Terminal:
				for v := 0; v < n.vcs; v++ {
					op.pending[v] = int(r.Varint())
					if r.Err() == nil && op.pending[v] < 0 {
						return nil, fmt.Errorf("sim: snapshot router %d out %d vc %d has negative pending", ri, p, v)
					}
					op.pendingSum += op.pending[v]
				}
			default:
				continue
			}
			op.rr = int(r.Varint())
			op.nextFree = r.Varint()
			op.flitsSent = r.Varint()
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
	}

	r.Section(secSources)
	for i := range n.sources {
		s := &n.sources[i]
		var st [4]uint64
		for w := range st {
			st[w] = r.U64()
		}
		s.rng.SetState(st)
		s.cur = optPkt("mid-injection packet")
		s.remaining = int(r.Varint())
		if r.Err() == nil && (s.remaining < 0 || s.remaining > n.cfg.PacketSize) {
			return nil, fmt.Errorf("sim: snapshot source %d has invalid flit remainder %d", i, s.remaining)
		}
		nb := r.Count(1<<30, "backlog arrival")
		for k := 0; k < nb; k++ {
			var a arrival
			a.ts = r.Varint()
			a.dst = topo.NodeID(r.Varint())
			a.hasDst = r.Bool()
			xi := r.Varint()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if a.hasDst && (int(a.dst) < 0 || int(a.dst) >= g.NumNodes) {
				return nil, fmt.Errorf("sim: snapshot source %d backlog destination %d out of range", i, a.dst)
			}
			if xi >= 0 {
				if xi >= int64(nx) {
					return nil, fmt.Errorf("sim: snapshot source %d backlog transfer index %d out of range", i, xi)
				}
				a.xfer = xfers[xi]
			}
			s.push(a)
		}
		if s.cur != nil || s.backlogLen() > 0 {
			n.wakeSource(i)
		}
	}

	r.Section(secEvents)
	nev := r.Count(maxEvents, "event")
	for k := 0; k < nev; k++ {
		delta := r.Count(n.calLen-1, "event due delta")
		kind := r.Uvarint()
		var ev event
		ev.kind = uint8(kind)
		ev.tail = r.Bool()
		ev.vc = int32(r.Varint())
		ev.router = int32(r.Count(len(n.routers)-1, "event router"))
		ev.port = int32(r.Varint())
		ev.pkt = optPkt("event packet")
		if r.Err() != nil {
			return nil, r.Err()
		}
		if err != nil {
			return nil, err
		}
		rt := &n.routers[ev.router]
		switch ev.kind {
		case evFlit:
			if int(ev.port) < 0 || int(ev.port) >= len(rt.in) ||
				int(ev.vc) < 0 || int(ev.vc) >= len(rt.in[ev.port].vcs) || ev.pkt == nil {
				return nil, fmt.Errorf("sim: snapshot flit event %d is malformed", k)
			}
		case evCredit:
			if int(ev.port) < 0 || int(ev.port) >= len(rt.out) ||
				rt.out[ev.port].credits == nil ||
				int(ev.vc) < 0 || int(ev.vc) >= n.vcs || ev.pkt != nil {
				return nil, fmt.Errorf("sim: snapshot credit event %d is malformed", k)
			}
		case evDeliver:
			// vc carries the scheduling delay for deliveries; it only
			// orders the parallel merge, so bound it to the calendar ring.
			if int(ev.port) < 0 || int(ev.port) >= len(rt.out) ||
				rt.out[ev.port].kind != topo.Terminal ||
				ev.vc < 0 || int(ev.vc) >= n.calLen || ev.pkt == nil {
				return nil, fmt.Errorf("sim: snapshot delivery event %d is malformed", k)
			}
		default:
			return nil, fmt.Errorf("sim: snapshot event %d has unknown kind %d", k, kind)
		}
		slot := (n.cycle + int64(delta)) % int64(n.calLen)
		evsl := sh.calendar[slot]
		if len(evsl) == cap(evsl) {
			evsl = sh.arena.growEvents(evsl)
		}
		sh.calendar[slot] = append(evsl, ev)
	}
	if err != nil {
		return nil, err
	}

	r.Section(secWorkload)
	if r.Bool() {
		name := r.String()
		state := r.Bytes()
		if r.Err() != nil {
			return nil, r.Err()
		}
		n.pendingWl = &pendingWorkload{name: name, state: state}
	}

	if err := r.Finish(); err != nil {
		return nil, err
	}
	return n, nil
}
