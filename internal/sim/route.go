package sim

import (
	"math/bits"

	"flatnet/internal/rng"
	"flatnet/internal/telemetry"
	"flatnet/internal/topo"
)

// routeAllocate runs route computation for every un-routed buffer head.
// Greedy allocation reads start-of-cycle estimates; sequential allocation
// additionally sees the reservations (delta) of decisions made earlier in
// the same cycle, in input-port order (§3.1).
func (n *Network) routeAllocate() {
	seq := n.alg.Sequential()
	for r := range n.routers {
		rt := &n.routers[r]
		view := routerView{n: n, rt: rt, seq: seq}
		for p := range rt.in {
			ip := &rt.in[p]
			for occ := ip.occ; occ != 0; occ &= occ - 1 {
				v := bits.TrailingZeros64(occ)
				q := &ip.vcs[v]
				if q.routed {
					continue
				}
				dec := n.alg.Route(view, q.peek().pkt)
				q.out = dec
				q.routed = true
				if n.checks != nil {
					n.checks.Route(q.peek().pkt, rt.id, dec.Port, dec.VC)
				}
				if n.tracer != nil {
					pkt := q.peek().pkt
					n.tracer.Record(telemetry.FlitEvent{
						Cycle: n.cycle, Kind: telemetry.EvRoute, Packet: pkt.ID,
						Src: int(pkt.Src), Dst: int(pkt.Dst),
						Router: int(rt.id), Port: dec.Port, VC: dec.VC,
					})
				}
				// Queue estimates are in flits: reserve the whole packet.
				op := &rt.out[dec.Port]
				op.delta[dec.VC] += n.cfg.PacketSize
				rt.touched = append(rt.touched, int32(dec.Port)*int32(n.vcs)+int32(dec.VC))
			}
		}
		// Fold this cycle's reservations into the stable estimates.
		for _, t := range rt.touched {
			port, vc := int(t)/n.vcs, int(t)%n.vcs
			rt.out[port].pending[vc] += rt.out[port].delta[vc]
			rt.out[port].delta[vc] = 0
		}
		rt.touched = rt.touched[:0]
	}
}

// routerView implements RouterView.
type routerView struct {
	n   *Network
	rt  *router
	seq bool
}

func (v routerView) Cycle() int64          { return v.n.cycle }
func (v routerView) Router() topo.RouterID { return v.rt.id }
func (v routerView) RNG() *rng.Source      { return v.rt.rng }

func (v routerView) QueueEst(port, vc int) int {
	op := &v.rt.out[port]
	if v.seq {
		return op.pending[vc] + op.delta[vc]
	}
	return op.pending[vc]
}

func (v routerView) QueueEstPort(port int) int {
	op := &v.rt.out[port]
	s := 0
	for vc := range op.pending {
		s += op.pending[vc]
		if v.seq {
			s += op.delta[vc]
		}
	}
	return s
}
