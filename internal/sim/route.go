package sim

import (
	"math/bits"

	"flatnet/internal/rng"
	"flatnet/internal/telemetry"
	"flatnet/internal/topo"
)

// routeAllocate runs route computation for every un-routed buffer head of
// the shard's routers. Greedy allocation reads start-of-cycle estimates;
// sequential allocation additionally sees the reservations (delta) of
// decisions made earlier in the same cycle, in input-port order (§3.1).
// Only routers on the active worklist (holding at least one buffered
// flit) are visited, in ascending router order — the same order the full
// scan would use — so idle routers cost no work.
func (sh *shard) routeAllocate() {
	n := sh.n
	sh.view.seq = n.alg.Sequential()
	if n.stepAll {
		for r := sh.r0; r < sh.r1; r++ {
			sh.routeRouter(&n.routers[r])
		}
	} else {
		for w := range sh.activeR {
			for word := sh.activeR[w]; word != 0; word &= word - 1 {
				sh.routeRouter(&n.routers[sh.r0+w<<6+bits.TrailingZeros64(word)])
			}
		}
	}
	sh.view.rt = nil
}

// routeRouter routes every un-routed buffer head of one router.
func (sh *shard) routeRouter(rt *router) {
	n := sh.n
	sh.view.rt = rt
	for p := range rt.in {
		ip := &rt.in[p]
		for occ := ip.occ; occ != 0; occ &= occ - 1 {
			v := bits.TrailingZeros64(occ)
			q := &ip.vcs[v]
			if q.routed {
				continue
			}
			dec := n.alg.Route(&sh.view, q.peek().pkt)
			q.out = dec
			q.routed = true
			if n.checks != nil {
				n.checks.Route(q.peek().pkt, rt.id, dec.Port, dec.VC)
			}
			if n.tracer != nil {
				pkt := q.peek().pkt
				n.tracer.Record(telemetry.FlitEvent{
					Cycle: n.cycle, Kind: telemetry.EvRoute, Packet: pkt.ID,
					Src: int(pkt.Src), Dst: int(pkt.Dst),
					Router: int(rt.id), Port: dec.Port, VC: dec.VC,
				})
			}
			// Queue estimates are in flits: reserve the whole packet.
			op := &rt.out[dec.Port]
			op.delta[dec.VC] += n.cfg.PacketSize
			op.deltaSum += n.cfg.PacketSize
			rt.touched = append(rt.touched, int32(dec.Port)*int32(n.vcs)+int32(dec.VC))
		}
	}
	// Fold this cycle's reservations into the stable estimates.
	for _, t := range rt.touched {
		port, vc := int(t)/n.vcs, int(t)%n.vcs
		op := &rt.out[port]
		d := op.delta[vc]
		op.pending[vc] += d
		op.pendingSum += d
		op.deltaSum -= d
		op.delta[vc] = 0
	}
	rt.touched = rt.touched[:0]
}

// RouterView is the routing algorithm's window onto one router's state
// during route allocation. Queue estimates follow §3.1: the credit count
// for output virtual channels, reflecting the occupancy of the input queue
// on the far end of the channel, plus packets already routed to that
// output in this router. Under a sequential allocator the estimate also
// includes reservations made earlier in the same cycle; under a greedy
// allocator all inputs see the same start-of-cycle snapshot.
//
// RouterView is a concrete struct (not an interface) so the per-flit Route
// call performs no interface conversion and its accessors inline — part of
// the cycle core's zero-allocation contract. One view lives in every
// shard and is reused for each of its Route calls; it is only valid for
// the duration of that call. A view only ever exposes the owning shard's
// routers, which (with the read-only routing tables, see
// internal/routing) is what makes Route safe to run on shards in
// parallel.
type RouterView struct {
	n   *Network
	rt  *router
	seq bool
}

// Cycle returns the current simulation cycle.
func (v *RouterView) Cycle() int64 { return v.n.cycle }

// Router returns the ID of the router being routed.
func (v *RouterView) Router() topo.RouterID { return v.rt.id }

// RNG returns this router's deterministic random stream (used for
// intermediate-node selection and tie-breaking).
func (v *RouterView) RNG() *rng.Source { return v.rt.rng }

// QueueEst returns the queue-length estimate for (port, vc).
func (v *RouterView) QueueEst(port, vc int) int {
	op := &v.rt.out[port]
	if v.seq {
		return op.pending[vc] + op.delta[vc]
	}
	return op.pending[vc]
}

// QueueEstPort returns the estimate summed over all VCs of port. The sums
// are maintained incrementally, so this is O(1) regardless of VC count.
func (v *RouterView) QueueEstPort(port int) int {
	op := &v.rt.out[port]
	if v.seq {
		return op.pendingSum + op.deltaSum
	}
	return op.pendingSum
}
