package sim

import (
	"errors"
	"fmt"
	"io"

	"flatnet/internal/stats"
	"flatnet/internal/telemetry"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// ErrStopped is returned (wrapped) when a run's Stop hook asks it to
// abort before completing.
var ErrStopped = errors.New("sim: run stopped")

// ErrResume is returned (wrapped) when RunConfig.Resume is set but the
// snapshot cannot be restored — corrupt bytes, a format-version skew, or
// a mismatched topology/algorithm/config. Callers holding a cached
// snapshot can match this error to discard it and rerun cold.
var ErrResume = errors.New("sim: resume snapshot rejected")

// stopPollMask throttles Stop polling to every 256 cycles so the hook
// (which may read a clock) stays off the simulation hot path.
const stopPollMask = 0xff

// RunConfig describes one open-loop measurement: warm the network up at
// the offered load, label the packets injected during a measurement
// window, and run until every labeled packet has left the system (§3.2).
type RunConfig struct {
	// Load is the offered load in flits per node per cycle (fraction of
	// capacity for unit-capacity networks).
	Load float64
	// Pattern generates destinations; it is wrapped in the default
	// Bernoulli arrival process (or the on/off process when Burst is
	// set). Ignored when Source is non-nil.
	Pattern traffic.Pattern
	// Source, when non-nil, is the full workload driving the run — both
	// arrival and destination process. It takes precedence over Pattern
	// and is mutually exclusive with Burst.
	Source traffic.Source
	// Warmup, Measure are window lengths in cycles.
	Warmup, Measure int
	// MaxCycles bounds the total simulation; if labeled packets have not
	// drained by then the run reports Saturated. 0 picks a default.
	MaxCycles int
	// Burst, when non-nil, switches injection from Bernoulli to the
	// bursty on/off process (traffic.OnOff) at the same average load.
	Burst *BurstConfig
	// Stop, when non-nil, is polled every few hundred cycles; returning
	// true aborts the run with an error wrapping ErrStopped. It is the
	// hook for context cancellation and wall-clock budgets, and it never
	// perturbs the simulation's random streams.
	Stop func() bool
	// Probes, when non-nil, attaches router-pipeline probes (per-VC
	// occupancy, credit-stall and allocator counters, windowed
	// per-channel load series) to the run's network; read them back via
	// Observe or Network.Probes. None of this perturbs the simulation.
	Probes *ProbeConfig
	// Tracer, when non-nil, receives every flit pipeline event (inject,
	// route, VC allocation, crossbar traversal, eject) of the run.
	Tracer *telemetry.Tracer
	// Attach, when non-nil, is called with the run's freshly built
	// network after probes and tracer are installed and before the first
	// cycle — the hook by which callers install additional
	// instrumentation such as the internal/check sanitizer. It is called
	// once per network, so a LoadSweep invokes it once per load point.
	Attach func(n *Network)
	// Observe, when non-nil, is called with the run's network after the
	// run completes (drained or saturated), before RunLoadPoint returns
	// — the hook for end-of-run inspection such as channel loads or
	// probe state. It is not called when the run aborts with an error.
	Observe func(n *Network)
	// Workers partitions the cycle core across this many worker
	// goroutines (Network.SetWorkers); results are bit-identical at
	// every count. <= 1 (the default) runs sequentially, and runs with
	// probes, a tracer or Attach-installed checks fall back to
	// sequential regardless.
	Workers int
	// Checkpoint, when non-nil, receives a snapshot of the warmed
	// network (Network.Snapshot) the moment the measurement window
	// opens — the point where all warm-up work is done but no measured
	// packet exists yet. Resuming a run from that snapshot is
	// bit-identical to running straight through, for any Measure and
	// MaxCycles. Incompatible with Probes/Tracer/Attach-installed
	// instrumentation (the snapshot would be unfaithful); the run
	// fails with an error rather than writing one silently.
	Checkpoint io.Writer
	// Resume, when non-nil, restores the run's network from a snapshot
	// (written by Checkpoint or Network.Snapshot) instead of building a
	// cold one, then runs the remaining cycles. The snapshot must have
	// been taken on the same topology, algorithm and Config — Restore
	// validates and refuses mismatches. Warmup still defines the
	// measurement window, so resuming a warm checkpoint skips straight
	// to the measurement phase.
	Resume io.Reader
}

// BurstConfig parameterizes on/off injection for RunLoadPoint.
type BurstConfig struct {
	// Peak is the ON-state injection rate in flits per node per cycle.
	Peak float64
	// AvgBurst is the mean ON-state duration in cycles.
	AvgBurst float64
}

// LoadPointResult reports one (topology, algorithm, pattern, load) sample.
type LoadPointResult struct {
	Load float64
	// AvgLatency is the mean cycles from source-queue arrival to delivery
	// over measured packets.
	AvgLatency float64
	// P50Latency and P95Latency are the median and 95th-percentile
	// latencies in cycles.
	P50Latency int
	P95Latency int
	// P99Latency is the 99th-percentile latency in cycles.
	P99Latency int
	// MaxLatency is the largest measured packet latency in cycles.
	MaxLatency int
	// AvgHops is the mean inter-router hop count of measured packets.
	AvgHops float64
	// AcceptedRate is delivered flits per node per cycle over the
	// measurement window: the throughput actually sustained.
	AcceptedRate float64
	// Saturated reports that labeled packets failed to drain within
	// MaxCycles: the network cannot sustain the offered load.
	Saturated bool
	// MeasuredCreated/MeasuredDelivered count labeled packets.
	MeasuredCreated   int64
	MeasuredDelivered int64
	// Cycles is the total simulated cycle count.
	Cycles int64
}

// RunLoadPoint executes the §3.2 methodology on a fresh Network.
func RunLoadPoint(g *topo.Graph, alg Algorithm, cfg Config, rc RunConfig) (LoadPointResult, error) {
	if rc.Load < 0 || rc.Load > 1 {
		return LoadPointResult{}, fmt.Errorf("sim: load %v out of [0,1]", rc.Load)
	}
	if rc.Warmup <= 0 || rc.Measure <= 0 {
		return LoadPointResult{}, fmt.Errorf("sim: warmup and measure windows must be positive")
	}
	src := rc.Source
	if src != nil && rc.Burst != nil {
		return LoadPointResult{}, fmt.Errorf("sim: RunConfig.Source and RunConfig.Burst are mutually exclusive")
	}
	if src == nil {
		if rc.Pattern == nil {
			return LoadPointResult{}, fmt.Errorf("sim: RunConfig needs a Pattern or a Source")
		}
		if rc.Burst != nil {
			var err error
			src, err = traffic.NewOnOff(rc.Pattern, rc.Burst.Peak, rc.Burst.AvgBurst)
			if err != nil {
				return LoadPointResult{}, err
			}
		} else {
			src = traffic.NewBernoulli(rc.Pattern)
		}
	}
	maxCycles := rc.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 20 * (rc.Warmup + rc.Measure)
	}
	var n *Network
	var err error
	if rc.Resume != nil {
		n, err = Restore(rc.Resume, g, alg, cfg)
		if err != nil {
			return LoadPointResult{}, fmt.Errorf("%w: %w", ErrResume, err)
		}
	} else {
		n, err = New(g, alg, cfg)
		if err != nil {
			return LoadPointResult{}, err
		}
	}
	defer n.Close()
	if rc.Workers > 1 {
		if err := n.SetWorkers(rc.Workers); err != nil {
			return LoadPointResult{}, err
		}
	}
	if rc.Probes != nil {
		n.AttachProbes(*rc.Probes)
	}
	if rc.Tracer != nil {
		n.AttachTracer(rc.Tracer)
	}
	if rc.Attach != nil {
		rc.Attach(n)
	}
	Live.RunsStarted.Add(1)
	var lp livePoll
	defer func() {
		lp.update(n)
		Live.RunsFinished.Add(1)
	}()
	if err := n.SetSource(src); err != nil {
		return LoadPointResult{}, err
	}
	measStart := int64(rc.Warmup)
	measEnd := int64(rc.Warmup + rc.Measure)
	n.SetMeasurementWindow(measStart, measEnd)

	latHist := stats.NewHistogram(16384)
	var hops stats.Accumulator
	deliveredInWindow := int64(0)
	n.OnDeliver(func(p *Packet, cycle int64) {
		if cycle >= measStart && cycle < measEnd {
			deliveredInWindow++
		}
		if p.Measured {
			latHist.Add(int(cycle - p.InjectCycle))
			hops.Add(float64(p.Hops))
		}
	})

	res := LoadPointResult{Load: rc.Load}
	for {
		if err := n.Generate(rc.Load); err != nil {
			return LoadPointResult{}, err
		}
		n.Step()
		c := n.Cycle()
		if rc.Checkpoint != nil && c == measStart {
			// Warm-up just finished: no measured packet has been created
			// (the cycle-measStart generation happens next iteration), so
			// the snapshot is reusable under any measurement length.
			if err := n.Snapshot(rc.Checkpoint); err != nil {
				return LoadPointResult{}, fmt.Errorf("sim: checkpoint at cycle %d: %w", c, err)
			}
		}
		if c >= measEnd {
			created, delivered := n.MeasuredCounts()
			if delivered >= created {
				break
			}
		}
		if c >= int64(maxCycles) {
			res.Saturated = true
			break
		}
		if c&stopPollMask == 0 {
			lp.update(n)
			if rc.Stop != nil && rc.Stop() {
				return LoadPointResult{}, fmt.Errorf("at cycle %d: %w", c, ErrStopped)
			}
		}
	}
	created, delivered := n.MeasuredCounts()
	res.MeasuredCreated = created
	res.MeasuredDelivered = delivered
	res.AvgLatency = latHist.Mean()
	res.P50Latency = latHist.Percentile(0.50)
	res.P95Latency = latHist.Percentile(0.95)
	res.P99Latency = latHist.Percentile(0.99)
	res.MaxLatency = latHist.Max()
	res.AvgHops = hops.Mean()
	res.AcceptedRate = float64(deliveredInWindow) * float64(n.PacketSize()) /
		(float64(n.NumNodes()) * float64(rc.Measure))
	res.Cycles = n.Cycle()
	if rc.Observe != nil {
		rc.Observe(n)
	}
	return res, nil
}

// LoadSweep runs RunLoadPoint across the given offered loads and returns
// one result per load, in order. Sweeps stop early once two consecutive
// points saturate, since higher loads will as well; the remaining entries
// are returned marked Saturated with zero latency.
func LoadSweep(g *topo.Graph, alg Algorithm, cfg Config, rc RunConfig, loads []float64) ([]LoadPointResult, error) {
	out := make([]LoadPointResult, 0, len(loads))
	saturatedRun := 0
	for _, l := range loads {
		if saturatedRun >= 2 {
			out = append(out, LoadPointResult{Load: l, Saturated: true})
			continue
		}
		p := rc
		p.Load = l
		r, err := RunLoadPoint(g, alg, cfg, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		if r.Saturated {
			saturatedRun++
		} else {
			saturatedRun = 0
		}
	}
	return out, nil
}

// SaturationThroughput measures the accepted rate at full offered load —
// the conventional saturation-throughput figure (e.g. MIN AD sustaining
// ~1/32 of capacity on the worst-case pattern while non-minimal
// algorithms sustain ~50%, Fig. 4(b)).
func SaturationThroughput(g *topo.Graph, alg Algorithm, cfg Config, pattern traffic.Pattern, warmup, measure int) (float64, error) {
	rc := RunConfig{
		Load:      1.0,
		Pattern:   pattern,
		Warmup:    warmup,
		Measure:   measure,
		MaxCycles: warmup + measure + 1, // no drain needed: we want the rate only
	}
	r, err := RunLoadPoint(g, alg, cfg, rc)
	if err != nil {
		return 0, err
	}
	return r.AcceptedRate, nil
}

// BatchResult reports one batch experiment (Fig. 5): every node injects
// BatchSize packets starting at cycle 0 and the network runs until all are
// delivered.
type BatchResult struct {
	BatchSize int
	// CompletionCycles is the cycle at which the last packet delivered.
	CompletionCycles int64
	// NormalizedLatency is CompletionCycles / BatchSize. As batch size
	// grows this approaches the inverse of the algorithm's sustained
	// throughput; at small batches it exposes transient load imbalance.
	NormalizedLatency float64
}

// BatchConfig describes one Fig. 5 batch experiment. Only Pattern and
// BatchSize are required; the optional hooks mirror RunConfig's.
type BatchConfig struct {
	// Pattern generates destinations.
	Pattern traffic.Pattern
	// BatchSize is the number of packets every node injects at cycle 0.
	BatchSize int
	// MaxCycles bounds the run; 0 picks a default proportional to
	// BatchSize. Exceeding it is an error (the batch never completed).
	MaxCycles int
	// Stop, when non-nil, is polled every few hundred cycles; returning
	// true aborts the run with an error wrapping ErrStopped.
	Stop func() bool
	// Attach, when non-nil, is called with the freshly built network
	// before the first cycle — the hook for installing instrumentation
	// such as the internal/check sanitizer.
	Attach func(n *Network)
	// Workers partitions the cycle core across this many worker
	// goroutines, as in RunConfig.Workers.
	Workers int
}

// RunBatch executes the Fig. 5 batch experiment.
func RunBatch(g *topo.Graph, alg Algorithm, cfg Config, bc BatchConfig) (BatchResult, error) {
	if bc.BatchSize < 1 {
		return BatchResult{}, fmt.Errorf("sim: batch size must be >= 1")
	}
	maxCycles := bc.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 1000 * bc.BatchSize
	}
	n, err := New(g, alg, cfg)
	if err != nil {
		return BatchResult{}, err
	}
	defer n.Close()
	if bc.Workers > 1 {
		if err := n.SetWorkers(bc.Workers); err != nil {
			return BatchResult{}, err
		}
	}
	if bc.Attach != nil {
		bc.Attach(n)
	}
	Live.RunsStarted.Add(1)
	var lp livePoll
	defer func() {
		lp.update(n)
		Live.RunsFinished.Add(1)
	}()
	n.SetPattern(bc.Pattern)
	n.SeedBatch(bc.BatchSize)
	total := int64(bc.BatchSize) * int64(n.NumNodes())
	for {
		n.Step()
		_, delivered := n.Totals()
		if delivered >= total {
			break
		}
		if n.Cycle() >= int64(maxCycles) {
			return BatchResult{}, fmt.Errorf("sim: batch of %d did not complete within %d cycles (%s)",
				bc.BatchSize, maxCycles, alg.Name())
		}
		if n.Cycle()&stopPollMask == 0 {
			lp.update(n)
			if bc.Stop != nil && bc.Stop() {
				return BatchResult{}, fmt.Errorf("at cycle %d: %w", n.Cycle(), ErrStopped)
			}
		}
	}
	res := BatchResult{
		BatchSize:         bc.BatchSize,
		CompletionCycles:  n.Cycle(),
		NormalizedLatency: float64(n.Cycle()) / float64(bc.BatchSize),
	}
	return res, nil
}
