package sim

import (
	"fmt"

	"flatnet/internal/topo"
)

// CheckHooks is the sanitizer attachment surface of the simulation
// pipeline: one callback per conservation-relevant pipeline event. It
// exists so a checker (internal/check) can observe every flit, credit
// and virtual-channel transition without the simulator importing it.
//
// The hooks follow the same zero-overhead-when-off contract as probes
// and the tracer: a network without hooks attached pays one nil check
// per pipeline site (guarded by BenchmarkChecksOff). AttachChecks fills
// nil callbacks with no-ops, so an attached hook set may implement any
// subset.
type CheckHooks struct {
	// Inject fires when a flit enters its source router's terminal input
	// buffer. r/port identify the injection buffer.
	Inject func(p *Packet, r topo.RouterID, port int, tail bool)
	// Route fires when a packet at the head of an input VC receives a
	// routing decision (port, vc) at router r.
	Route func(p *Packet, r topo.RouterID, port, vc int)
	// CreditConsume fires when a switch grant spends a credit of output
	// (r, port, vc); after is the post-decrement credit count.
	CreditConsume func(r topo.RouterID, port, vc, after int)
	// CreditReturn fires when a credit arrives back at output
	// (r, port, vc); after is the post-increment credit count.
	CreditReturn func(r topo.RouterID, port, vc, after int)
	// VCAcquire fires when a head flit is granted onto downstream VC
	// (r, port, vc). prev is the simulator's notion of the VC's owner at
	// that moment — nil unless the allocator double-granted.
	VCAcquire func(p *Packet, prev *Packet, r topo.RouterID, port, vc int)
	// VCRelease fires when a tail flit leaves downstream VC (r, port, vc).
	VCRelease func(p *Packet, r topo.RouterID, port, vc int)
	// Eject fires for every flit leaving an ejection channel, before the
	// packet is recycled. r/port identify the ejection channel.
	Eject func(p *Packet, r topo.RouterID, port int, tail bool)
	// EndCycle fires at the end of every Step, after switch allocation.
	EndCycle func()
}

// AttachChecks installs a sanitizer hook set into the pipeline; nil
// callbacks are replaced with no-ops. Passing nil detaches. Attaching
// before the first Step forces the sequential scheduler; attaching to a
// network already partitioned across workers panics (the hooks would run
// unsynchronized inside worker goroutines).
func (n *Network) AttachChecks(h *CheckHooks) {
	if h == nil {
		n.checks = nil
		return
	}
	if n.par {
		panic("sim: cannot attach checks to a network partitioned across workers")
	}
	if h.Inject == nil {
		h.Inject = func(*Packet, topo.RouterID, int, bool) {}
	}
	if h.Route == nil {
		h.Route = func(*Packet, topo.RouterID, int, int) {}
	}
	if h.CreditConsume == nil {
		h.CreditConsume = func(topo.RouterID, int, int, int) {}
	}
	if h.CreditReturn == nil {
		h.CreditReturn = func(topo.RouterID, int, int, int) {}
	}
	if h.VCAcquire == nil {
		h.VCAcquire = func(*Packet, *Packet, topo.RouterID, int, int) {}
	}
	if h.VCRelease == nil {
		h.VCRelease = func(*Packet, topo.RouterID, int, int) {}
	}
	if h.Eject == nil {
		h.Eject = func(*Packet, topo.RouterID, int, bool) {}
	}
	if h.EndCycle == nil {
		h.EndCycle = func() {}
	}
	n.checks = h
}

// Graph returns the channel graph the network simulates.
func (n *Network) Graph() *topo.Graph { return n.g }

// Quiescent reports whether the simulation holds no packet state at all:
// no flits buffered or in flight, no source backlog, and no packet
// mid-injection. A quiescent network must have every credit home and
// every virtual channel free — the end-of-run invariant Finalize checks.
func (n *Network) Quiescent() bool {
	for i := range n.sources {
		if n.sources[i].cur != nil || n.sources[i].backlogLen() != 0 {
			return false
		}
	}
	buffered, inFlight := n.Inventory()
	return buffered+inFlight == 0
}

// ChannelAudit is the credit-conservation snapshot of one network
// channel's virtual channel, identified by its upstream (sending) end.
// At every instant the VC's buffer slots are fully accounted for:
//
//	Credits + Buffered + FlitsInFlight + CreditsInFlight == Depth
//
// Credits sit at the upstream router, buffered flits at the downstream
// input VC, and the two in-flight terms are flits on the forward channel
// and credits on the reverse channel (both live in the event calendar).
type ChannelAudit struct {
	Router          topo.RouterID // upstream router
	Port            int           // upstream output port
	VC              int
	Depth           int // per-VC buffer depth: the credit pool size
	Credits         int // credits held at the upstream output
	Buffered        int // flits in the downstream input VC buffer
	FlitsInFlight   int // flits on the forward channel (scheduled arrivals)
	CreditsInFlight int // credits on the reverse channel
}

// Outstanding sums every slot the audit can see; it equals Depth when
// the channel's credit loop is intact.
func (a ChannelAudit) Outstanding() int {
	return a.Credits + a.Buffered + a.FlitsInFlight + a.CreditsInFlight
}

// AuditChannels walks every network channel VC and reports its credit
// accounting. It is O(channels + calendar) and intended for sanitizer
// strides and end-of-run checks, not the per-cycle hot path.
func (n *Network) AuditChannels(visit func(ChannelAudit)) {
	key := func(r topo.RouterID, port, vc int) int64 {
		return int64(r)<<32 | int64(port)<<16 | int64(vc)
	}
	flits := map[int64]int{}   // (downstream router, in port, vc) -> count
	credits := map[int64]int{} // (upstream router, out port, vc) -> count
	count := func(ev event) {
		switch ev.kind {
		case evFlit:
			flits[key(topo.RouterID(ev.router), int(ev.port), int(ev.vc))]++
		case evCredit:
			credits[key(topo.RouterID(ev.router), int(ev.port), int(ev.vc))]++
		}
	}
	for _, sh := range n.sh {
		for _, evs := range sh.calendar {
			for _, ev := range evs {
				count(ev)
			}
		}
		// Cross-shard events staged at the last barrier but not yet
		// drained into their target's calendar.
		for _, box := range sh.outbox {
			for _, x := range box {
				count(x.ev)
			}
		}
	}
	for r := range n.routers {
		rt := &n.routers[r]
		for p := range rt.out {
			op := &rt.out[p]
			if op.kind != topo.Network {
				continue
			}
			down := &n.routers[op.peer].in[op.peerPort]
			for v := 0; v < n.vcs; v++ {
				visit(ChannelAudit{
					Router:          topo.RouterID(r),
					Port:            p,
					VC:              v,
					Depth:           n.vcDepth,
					Credits:         op.credits[v],
					Buffered:        down.vcs[v].count,
					FlitsInFlight:   flits[key(op.peer, op.peerPort, v)],
					CreditsInFlight: credits[key(topo.RouterID(r), p, v)],
				})
			}
		}
	}
}

// FaultKind selects a deliberate corruption for InjectFault. The faults
// exist so the sanitizer's own tests can prove each checker fires; they
// are never triggered by the simulator itself.
type FaultKind int

const (
	// FaultDropFlit silently deletes the flit at the head of a network
	// input VC, without returning a credit: a lost flit.
	FaultDropFlit FaultKind = iota
	// FaultLeakCredit destroys one credit of a network output VC.
	FaultLeakCredit
	// FaultDupCredit forges one extra credit at a network output VC.
	FaultDupCredit
	// FaultFreeVC clears the wormhole owner of a downstream VC while a
	// packet still holds it, letting the allocator double-grant it.
	FaultFreeVC
	// FaultSeizeVC marks a free downstream VC as owned by a phantom
	// packet that will never release it: every head flit routed there
	// stalls forever — a wedged wormhole.
	FaultSeizeVC
)

// InjectFault applies a deliberate fault at (r, port, vc). For
// FaultDropFlit, port indexes the router's input ports; for the others it
// indexes output ports. It returns an error when the target cannot host
// the fault (wrong port kind, empty buffer, free VC), so tests can scan
// for a viable site.
func (n *Network) InjectFault(k FaultKind, r topo.RouterID, port, vc int) error {
	rt := &n.routers[r]
	switch k {
	case FaultDropFlit:
		if port < 0 || port >= len(rt.in) || rt.in[port].kind != topo.Network {
			return fmt.Errorf("sim: fault needs a network input port, got router %d port %d", r, port)
		}
		ip := &rt.in[port]
		q := &ip.vcs[vc]
		if q.empty() {
			return fmt.Errorf("sim: router %d in port %d vc %d is empty", r, port, vc)
		}
		q.pop()
		if q.empty() {
			n.shardFor(int32(r)).clearVC(rt, ip, vc)
		}
		return nil
	case FaultLeakCredit, FaultDupCredit:
		if port < 0 || port >= len(rt.out) || rt.out[port].credits == nil {
			return fmt.Errorf("sim: fault needs a network output port, got router %d port %d", r, port)
		}
		if k == FaultLeakCredit {
			if rt.out[port].credits[vc] <= 0 {
				return fmt.Errorf("sim: router %d out port %d vc %d has no credit to leak", r, port, vc)
			}
			rt.out[port].credits[vc]--
		} else {
			rt.out[port].credits[vc]++
		}
		return nil
	case FaultFreeVC:
		if port < 0 || port >= len(rt.out) || rt.out[port].owner == nil {
			return fmt.Errorf("sim: fault needs a network output port, got router %d port %d", r, port)
		}
		if rt.out[port].owner[vc] == nil {
			return fmt.Errorf("sim: router %d out port %d vc %d is not owned", r, port, vc)
		}
		rt.out[port].owner[vc] = nil
		return nil
	case FaultSeizeVC:
		if port < 0 || port >= len(rt.out) || rt.out[port].owner == nil {
			return fmt.Errorf("sim: fault needs a network output port, got router %d port %d", r, port)
		}
		if rt.out[port].owner[vc] != nil {
			return fmt.Errorf("sim: router %d out port %d vc %d is already owned", r, port, vc)
		}
		rt.out[port].owner[vc] = &Packet{ID: -1}
		return nil
	default:
		return fmt.Errorf("sim: unknown fault kind %d", k)
	}
}
