package sim

import (
	"math/bits"
	"sort"

	"flatnet/internal/stats"
	"flatnet/internal/telemetry"
	"flatnet/internal/topo"
)

// ProbeConfig parameterizes AttachProbes. Zero values select defaults.
type ProbeConfig struct {
	// Stride is the sampling period in cycles for the occupancy and
	// channel-load probes (<= 0 selects 64). Allocator and stall
	// counters are exact, not sampled.
	Stride int
	// ChannelWindow is the bucket width in cycles of the per-channel
	// load time series (<= 0 selects 4x the stride).
	ChannelWindow int
	// ChannelDepth is how many windows each channel retains
	// (<= 0 selects 64).
	ChannelDepth int
}

// probeChannel is the identity of one instrumented output channel.
type probeChannel struct {
	router topo.RouterID
	port   int
	kind   topo.PortKind
}

// Probes is the router-pipeline probe registry: counters and windowed
// time series maintained by the simulation loop when attached via
// AttachProbes, at zero cost when not (every pipeline hook is a nil
// check). Counter fields are owned by the simulation goroutine; read
// them after the run or from an Observe hook.
type Probes struct {
	stride int64

	// Samples counts occupancy sampling points (every stride cycles).
	Samples int64
	// OccFlits accumulates, over samples, the flits buffered in input
	// VCs; OccFlits/Samples is the mean network-wide buffer occupancy.
	OccFlits int64
	// OccVCs accumulates, over samples, the number of non-empty VCs.
	OccVCs int64
	// MaxVCOcc is the largest single-VC occupancy ever sampled.
	MaxVCOcc int
	// CreditStalls counts switch-allocation bids suppressed because the
	// downstream VC had no credits — cycles a routed head flit sat
	// blocked on buffer space.
	CreditStalls int64
	// VCStalls counts bids suppressed because the downstream VC was
	// owned by another in-flight packet (wormhole blocking).
	VCStalls int64
	// Grants counts crossbar grants issued by the switch allocator.
	Grants int64
	// Conflicts counts requests that went ungranted in their cycle —
	// losers of output contention, speedup limits or credit races.
	Conflicts int64

	channels  []probeChannel
	series    []*stats.TimeSeries
	lastFlits []int64
}

// AttachProbes builds a probe registry over the network's channels and
// installs it into the pipeline. Attaching (or re-attaching) resets all
// probe state; DetachProbes removes the instrumentation again. Attaching
// before the first Step forces the sequential scheduler; attaching to a
// network already partitioned across workers panics (the counters would
// be written unsynchronized from worker goroutines).
func (n *Network) AttachProbes(cfg ProbeConfig) *Probes {
	if n.par {
		panic("sim: cannot attach probes to a network partitioned across workers")
	}
	stride := cfg.Stride
	if stride <= 0 {
		stride = 64
	}
	window := int64(cfg.ChannelWindow)
	if window <= 0 {
		window = int64(4 * stride)
	}
	depth := cfg.ChannelDepth
	if depth <= 0 {
		depth = 64
	}
	p := &Probes{stride: int64(stride)}
	for r := range n.routers {
		for q := range n.routers[r].out {
			op := &n.routers[r].out[q]
			if op.kind == topo.Unused {
				continue
			}
			p.channels = append(p.channels, probeChannel{router: topo.RouterID(r), port: q, kind: op.kind})
			p.series = append(p.series, stats.NewTimeSeries(window, depth))
			p.lastFlits = append(p.lastFlits, op.flitsSent)
		}
	}
	n.probes = p
	return p
}

// Probes returns the attached probe registry, or nil.
func (n *Network) Probes() *Probes { return n.probes }

// DetachProbes removes the probe instrumentation from the pipeline.
func (n *Network) DetachProbes() { n.probes = nil }

// AttachTracer installs a flit event tracer into the pipeline; nil
// detaches. The tracer receives inject, route, VC-allocation, crossbar
// and eject events for every flit (subject to the tracer's own packet
// filter). Attaching before the first Step forces the sequential
// scheduler; attaching to a network already partitioned across workers
// panics.
func (n *Network) AttachTracer(t *telemetry.Tracer) {
	if t != nil && n.par {
		panic("sim: cannot attach a tracer to a network partitioned across workers")
	}
	n.tracer = t
}

// sampleProbes takes one sampling pass: input-VC occupancy via the
// per-port occupancy bitmasks (so empty buffers cost nothing) and
// per-channel flit deltas into the windowed time series.
func (n *Network) sampleProbes() {
	p := n.probes
	p.Samples++
	for r := range n.routers {
		rt := &n.routers[r]
		for q := range rt.in {
			ip := &rt.in[q]
			for occ := ip.occ; occ != 0; occ &= occ - 1 {
				v := bits.TrailingZeros64(occ)
				c := ip.vcs[v].count
				p.OccFlits += int64(c)
				p.OccVCs++
				if c > p.MaxVCOcc {
					p.MaxVCOcc = c
				}
			}
		}
	}
	i := 0
	for r := range n.routers {
		rt := &n.routers[r]
		for q := range rt.out {
			op := &rt.out[q]
			if op.kind == topo.Unused {
				continue
			}
			d := op.flitsSent - p.lastFlits[i]
			if d < 0 {
				// The channel counters were reset (ResetChannelStats)
				// since the last sample: count the flits observed since
				// the reset.
				d = op.flitsSent
			}
			if d != 0 {
				p.series[i].Record(n.cycle, d)
				p.lastFlits[i] = op.flitsSent
			}
			i++
		}
	}
}

// Stride returns the sampling period in cycles.
func (p *Probes) Stride() int64 { return p.stride }

// MeanBufferedFlits returns the mean number of flits buffered across the
// whole network per sample point.
func (p *Probes) MeanBufferedFlits() float64 {
	if p.Samples == 0 {
		return 0
	}
	return float64(p.OccFlits) / float64(p.Samples)
}

// MeanVCOccupancy returns the mean occupancy of non-empty VCs, in flits.
func (p *Probes) MeanVCOccupancy() float64 {
	if p.OccVCs == 0 {
		return 0
	}
	return float64(p.OccFlits) / float64(p.OccVCs)
}

// ProbeChannel is one instrumented channel's windowed load view.
type ProbeChannel struct {
	Router topo.RouterID
	Port   int
	Kind   topo.PortKind
	// Flits is the total flits observed by the probe on this channel.
	Flits int64
	// Rate is the recent flit rate (flits/cycle) over the retained
	// window of the channel's time series.
	Rate float64
	// Series is the live windowed time series (do not mutate).
	Series *stats.TimeSeries
}

// Channels returns every instrumented channel's load view, in
// (router, port) order.
func (p *Probes) Channels() []ProbeChannel {
	out := make([]ProbeChannel, len(p.channels))
	for i, c := range p.channels {
		out[i] = ProbeChannel{
			Router: c.router, Port: c.port, Kind: c.kind,
			Flits: p.series[i].Total(), Rate: p.series[i].Rate(),
			Series: p.series[i],
		}
	}
	return out
}

// TopChannels returns the k busiest network channels by probed flit
// count, descending — the live-telemetry analogue of
// Network.TopChannels, but computed from the windowed series so it
// works mid-run without walking router state.
func (p *Probes) TopChannels(k int) []ProbeChannel {
	all := p.Channels()
	filtered := all[:0]
	for _, c := range all {
		if c.Kind == topo.Network {
			filtered = append(filtered, c)
		}
	}
	sort.Slice(filtered, func(i, j int) bool { return filtered[i].Flits > filtered[j].Flits })
	if k > len(filtered) {
		k = len(filtered)
	}
	return filtered[:k]
}

// Snapshot returns the scalar probe counters keyed by name, shaped for a
// telemetry registry gauge. It omits the per-channel series (use
// Channels/TopChannels for those).
func (p *Probes) Snapshot() map[string]any {
	return map[string]any{
		"samples":            p.Samples,
		"stride":             p.stride,
		"occ_flits":          p.OccFlits,
		"occ_vcs":            p.OccVCs,
		"max_vc_occ":         p.MaxVCOcc,
		"mean_buffered":      p.MeanBufferedFlits(),
		"credit_stalls":      p.CreditStalls,
		"vc_stalls":          p.VCStalls,
		"grants":             p.Grants,
		"conflicts":          p.Conflicts,
		"mean_vc_occupancy":  p.MeanVCOccupancy(),
		"channels_monitored": len(p.channels),
	}
}
