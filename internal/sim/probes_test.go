package sim

import (
	"bytes"
	"reflect"
	"testing"

	"flatnet/internal/telemetry"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

func TestProbeSamplingStride(t *testing.T) {
	f := testFF(t, 4, 2)
	for _, stride := range []int{1, 32, 100} {
		n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		n.SetPattern(traffic.NewUniform(16))
		p := n.AttachProbes(ProbeConfig{Stride: stride})
		if p.Stride() != int64(stride) {
			t.Fatalf("stride %d: Stride() = %d", stride, p.Stride())
		}
		const cycles = 256
		for i := 0; i < cycles; i++ {
			n.GenerateBernoulli(0.3)
			n.Step()
		}
		// Step samples whenever cycle%stride == 0, cycle 0 included.
		want := int64((cycles + stride - 1) / stride)
		if p.Samples != want {
			t.Errorf("stride %d: Samples = %d, want %d", stride, p.Samples, want)
		}
	}
}

func TestProbeDefaultsAndDetach(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n.Probes() != nil {
		t.Fatal("fresh network has probes attached")
	}
	p := n.AttachProbes(ProbeConfig{})
	if p.Stride() != 64 {
		t.Errorf("default stride = %d, want 64", p.Stride())
	}
	if n.Probes() != p {
		t.Error("Probes() does not return the attached registry")
	}
	// Every non-unused output channel is instrumented.
	want := 0
	for _, r := range f.Graph().Routers {
		for _, o := range r.Out {
			if o.Kind != topo.Unused {
				want++
			}
		}
	}
	if got := len(p.Channels()); got != want {
		t.Errorf("instrumented %d channels, want %d", got, want)
	}
	n.DetachProbes()
	if n.Probes() != nil {
		t.Error("DetachProbes left probes attached")
	}
}

func TestProbeCountersUnderLoad(t *testing.T) {
	f := testFF(t, 4, 2)
	// Shallow buffers so downstream credits genuinely exhaust: worst-case
	// traffic offers 4 flits/cycle to a channel draining 1/cycle.
	cfg := DefaultConfig()
	cfg.BufPerPort = 4
	n, err := New(f.Graph(), &minimalAlg{f}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Worst-case traffic at full load through minimal routing: heavy
	// contention, so every counter class must fire.
	n.SetPattern(traffic.NewWorstCase(4, 4))
	p := n.AttachProbes(ProbeConfig{Stride: 16})
	for i := 0; i < 600; i++ {
		n.GenerateBernoulli(1.0)
		n.Step()
	}
	if p.Grants == 0 {
		t.Error("no grants counted")
	}
	if p.Conflicts == 0 {
		t.Error("no allocator conflicts under saturating worst-case load")
	}
	if p.CreditStalls == 0 {
		t.Error("no credit stalls under saturating worst-case load")
	}
	if p.MeanBufferedFlits() <= 0 || p.MaxVCOcc <= 0 {
		t.Errorf("occupancy not observed: mean %v max %d", p.MeanBufferedFlits(), p.MaxVCOcc)
	}
	if p.MeanVCOccupancy() <= 0 {
		t.Error("mean VC occupancy not observed")
	}
	// Worst-case minimal routing concentrates all traffic on one network
	// channel per router: exactly 4 hot channels on this network.
	top := p.TopChannels(5)
	if len(top) == 0 {
		t.Fatal("no hot channels reported")
	}
	if top[0].Flits <= 0 {
		t.Error("hottest channel has no flits")
	}
	for i, c := range top {
		if c.Kind != topo.Network {
			t.Errorf("top channel %d is kind %v, want Network", i, c.Kind)
		}
		if i > 0 && top[i-1].Flits < c.Flits {
			t.Error("TopChannels not sorted descending")
		}
		if i < 4 && c.Flits <= 0 {
			t.Errorf("hot channel %d has no flits", i)
		}
	}
	// Scalar snapshot carries the counters for the metrics endpoint.
	snap := p.Snapshot()
	if snap["grants"] != p.Grants || snap["samples"] != p.Samples {
		t.Errorf("snapshot disagrees with counters: %v", snap)
	}
}

func TestProbesSurviveChannelStatsReset(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(16))
	p := n.AttachProbes(ProbeConfig{Stride: 16})
	for i := 0; i < 200; i++ {
		n.GenerateBernoulli(0.4)
		n.Step()
	}
	n.ResetChannelStats() // zeroes flitsSent under the probes
	for i := 0; i < 200; i++ {
		n.GenerateBernoulli(0.4)
		n.Step()
	}
	for _, c := range p.Channels() {
		if c.Flits < 0 {
			t.Fatalf("channel %d.%d probed flits went negative after reset: %d",
				c.Router, c.Port, c.Flits)
		}
		for _, b := range c.Series.Buckets() {
			if b.Count < 0 {
				t.Fatalf("channel %d.%d has negative bucket %+v", c.Router, c.Port, b)
			}
		}
	}
}

// TestTracerPipelineOrder follows one worst-case-pattern packet through
// the full pipeline and checks the recorded stage order, then validates
// the lossless Chrome-trace round trip the exporters promise.
func TestTracerPipelineOrder(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewWorstCase(4, 4))
	tr := telemetry.NewTracer(1 << 16)
	n.AttachTracer(tr)
	for i := 0; i < 200; i++ {
		n.GenerateBernoulli(0.2)
		n.Step()
	}
	if tr.Len() == 0 {
		t.Fatal("no events recorded")
	}
	// Find a packet whose journey completed (has an eject).
	var packet int64 = -1
	for _, ev := range tr.Events() {
		if ev.Kind == telemetry.EvEject && ev.Tail {
			packet = ev.Packet
			break
		}
	}
	if packet < 0 {
		t.Fatal("no packet completed during the trace")
	}
	evs := tr.PacketEvents(packet)
	if first := evs[0]; first.Kind != telemetry.EvInject {
		t.Fatalf("first event is %v, want inject (events: %+v)", first.Kind, evs)
	}
	var sawRoute, sawXbar, sawEject bool
	for i, ev := range evs {
		if ev.Packet != packet {
			t.Fatal("PacketEvents returned a foreign event")
		}
		if i > 0 && ev.Cycle < evs[i-1].Cycle {
			t.Fatalf("events out of cycle order: %+v", evs)
		}
		switch ev.Kind {
		case telemetry.EvRoute:
			sawRoute = true
			if sawEject {
				t.Fatal("route after eject")
			}
		case telemetry.EvXbar:
			sawXbar = true
			if !sawRoute {
				t.Fatal("crossbar traversal before any routing decision")
			}
		case telemetry.EvEject:
			sawEject = true
		case telemetry.EvInject:
			if i != 0 {
				t.Fatal("inject is not the first event of a single-flit packet")
			}
		}
	}
	if !sawRoute || !sawXbar || !sawEject {
		t.Fatalf("incomplete pipeline: route=%v xbar=%v eject=%v", sawRoute, sawXbar, sawEject)
	}

	// The WC packet's trace must round-trip losslessly through the
	// Chrome-trace exporter.
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, evs) {
		t.Errorf("chrome round trip mismatch:\n got %+v\nwant %+v", back, evs)
	}
}

// TestRunLoadPointTelemetry exercises the RunConfig probe/tracer/observe
// plumbing end to end.
func TestRunLoadPointTelemetry(t *testing.T) {
	f := testFF(t, 4, 2)
	tr := telemetry.NewTracer(1 << 14)
	var observed *Probes
	res, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, DefaultConfig(), RunConfig{
		Load: 0.2, Pattern: traffic.NewUniform(16),
		Warmup: 200, Measure: 200,
		Probes: &ProbeConfig{Stride: 16},
		Tracer: tr,
		Observe: func(n *Network) {
			observed = n.Probes()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if observed == nil {
		t.Fatal("Observe hook not called")
	}
	if observed.Samples == 0 || observed.Grants == 0 {
		t.Errorf("probes recorded nothing: samples %d grants %d", observed.Samples, observed.Grants)
	}
	if tr.Len() == 0 {
		t.Error("tracer recorded nothing")
	}
	if res.P50Latency <= 0 || res.P95Latency < res.P50Latency ||
		res.P99Latency < res.P95Latency || res.MaxLatency < res.P99Latency {
		t.Errorf("percentiles not ordered: p50 %d p95 %d p99 %d max %d",
			res.P50Latency, res.P95Latency, res.P99Latency, res.MaxLatency)
	}
}
