package sim_test

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/traffic"
)

func traceFF(t *testing.T) (*core.FlatFly, func() sim.Algorithm) {
	t.Helper()
	ff, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ff, func() sim.Algorithm {
		alg, err := routing.NewFlatFlyAlgorithm("ugal", ff)
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	in := []sim.TraceEntry{
		{Cycle: 0, Src: 3, Dst: 7},
		{Cycle: 0, Src: 5, Dst: 1, Size: 4},
		{Cycle: 12, Src: 0, Dst: 15, Size: 1},
	}
	var buf bytes.Buffer
	if err := sim.WriteTraceJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := sim.ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip diverged:\n in: %+v\nout: %+v", in, out)
	}
}

func TestTraceScannerRejects(t *testing.T) {
	cases := []struct{ name, in string }{
		{"malformed json", "{\"cycle\":0,\n"},
		{"negative src", `{"cycle":0,"src":-1,"dst":2}` + "\n"},
		{"negative cycle", `{"cycle":-5,"src":0,"dst":2}` + "\n"},
		{"negative size", `{"cycle":0,"src":0,"dst":2,"size":-3}` + "\n"},
		{"out of order", `{"cycle":9,"src":0,"dst":2}` + "\n" + `{"cycle":3,"src":0,"dst":2}` + "\n"},
		{"oversized", `{"cycle":0,"src":0,"dst":2,"size":99999999}` + "\n"},
		{"float cycle", `{"cycle":1.5,"src":0,"dst":2}` + "\n"},
	}
	for _, c := range cases {
		if _, err := sim.ReadTraceJSONL(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Blank lines and unknown fields are tolerated.
	ok := "\n" + `{"cycle":2,"src":1,"dst":0,"note":"x"}` + "\n\n"
	out, err := sim.ReadTraceJSONL(strings.NewReader(ok))
	if err != nil || len(out) != 1 {
		t.Fatalf("lenient parse failed: %v, %d entries", err, len(out))
	}
}

// TestTraceReplayRoundTrip is the record -> replay identity: a workload
// recorded to the JSONL format and replayed on a fresh network yields
// the exact same delivery sequence as the original run, at any worker
// count.
func TestTraceReplayRoundTrip(t *testing.T) {
	ff, newAlg := traceFF(t)
	cfg := sim.DefaultConfig()

	// Record a bursty uniform run, drained to completion.
	rec, err := sim.New(ff.Graph(), newAlg(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	src, err := traffic.NewOnOff(traffic.NewUniform(rec.NumNodes()), 0.8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.SetSource(src); err != nil {
		t.Fatal(err)
	}
	trace := rec.RecordTrace()
	var want []delivery
	rec.OnDeliver(recordInto(&want))
	for i := 0; i < 1200; i++ {
		if err := rec.Generate(0.25); err != nil {
			t.Fatal(err)
		}
		rec.Step()
	}
	for i := 0; i < 50000; i++ {
		inj, del := rec.Totals()
		if rec.Backlog() == 0 && del >= inj {
			break
		}
		rec.Step()
	}
	if len(*trace) == 0 {
		t.Fatal("recorded no packets")
	}
	var buf bytes.Buffer
	if err := sim.WriteTraceJSONL(&buf, *trace); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		rep, err := sim.New(ff.Graph(), newAlg(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if workers > 1 {
			if err := rep.SetWorkers(workers); err != nil {
				rep.Close()
				t.Fatal(err)
			}
		}
		var got []delivery
		rep.OnDeliver(recordInto(&got))
		injected, err := rep.ReplayTrace(sim.NewTraceScanner(bytes.NewReader(buf.Bytes())), 200000)
		if err != nil {
			rep.Close()
			t.Fatal(err)
		}
		rep.Close()
		if injected != int64(len(*trace)) {
			t.Fatalf("workers=%d: injected %d packets, trace has %d", workers, injected, len(*trace))
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: delivered %d packets, original delivered %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: delivery %d diverged: got %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestTraceReplaySized checks that size-k entries inject k packets.
func TestTraceReplaySized(t *testing.T) {
	ff, newAlg := traceFF(t)
	n, err := sim.New(ff.Graph(), newAlg(), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	in := `{"cycle":0,"src":0,"dst":9,"size":5}` + "\n" + `{"cycle":3,"src":2,"dst":11}` + "\n"
	injected, err := n.ReplayTrace(sim.NewTraceScanner(strings.NewReader(in)), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if injected != 6 {
		t.Fatalf("injected %d packets, want 6", injected)
	}
	inj, del := n.Totals()
	if inj != 6 || del != 6 {
		t.Fatalf("totals %d/%d, want 6/6", inj, del)
	}
}

// FuzzTraceReplay feeds arbitrary bytes through the JSONL scanner:
// malformed input must error (never panic), and anything that parses
// must re-encode canonically to an equal trace.
func FuzzTraceReplay(f *testing.F) {
	f.Add([]byte(`{"cycle":0,"src":0,"dst":1}` + "\n"))
	f.Add([]byte(`{"cycle":2,"src":3,"dst":1,"size":7}` + "\n" + `{"cycle":2,"src":0,"dst":1}` + "\n"))
	f.Add([]byte(`{"cycle":9,"src":0,"dst":2}` + "\n" + `{"cycle":3,"src":0,"dst":2}` + "\n"))
	f.Add([]byte("{\"cycle\":0\n"))
	f.Add([]byte("\n# not json\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := sim.ReadTraceJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := sim.WriteTraceJSONL(&buf, entries); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := sim.ReadTraceJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical re-read failed: %v", err)
		}
		if !reflect.DeepEqual(entries, back) {
			t.Fatalf("canonical round trip diverged:\n in: %+v\nout: %+v", entries, back)
		}
	})
}

// TestTraceScannerEOF pins the streaming contract: Next returns io.EOF
// exactly at end of input, including empty input.
func TestTraceScannerEOF(t *testing.T) {
	sc := sim.NewTraceScanner(strings.NewReader(""))
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("empty trace: %v, want io.EOF", err)
	}
}
