package sim

import (
	"fmt"

	"flatnet/internal/rng"
	"flatnet/internal/stats"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// ClosedLoopConfig describes a request-reply workload: every node keeps
// Window requests outstanding (a remote-memory-access model; §1 of the
// paper: "the latency and bandwidth of the network largely establish the
// remote memory access latency and bandwidth"). Each delivered request
// triggers a reply from its destination; each delivered reply lets the
// originator issue a fresh request to a new Pattern-drawn destination.
type ClosedLoopConfig struct {
	// Window is the number of outstanding requests per node (>= 1).
	Window int
	// Pattern draws request destinations.
	Pattern traffic.Pattern
	// Warmup and Measure are windows in cycles; round trips completing
	// during the measurement window are recorded.
	Warmup, Measure int
	// Workers partitions the cycle core across this many worker
	// goroutines, as in RunConfig.Workers; results are bit-identical at
	// every count. <= 1 (the default) runs sequentially.
	Workers int
}

// ClosedLoopResult reports a closed-loop run.
type ClosedLoopResult struct {
	// AvgRoundTrip is the mean request-to-reply latency in cycles.
	AvgRoundTrip float64
	// P99RoundTrip is the 99th-percentile round trip.
	P99RoundTrip int
	// RequestRate is completed round trips per node per cycle.
	RequestRate float64
	// Completed counts measured round trips.
	Completed int64
}

// closedTxn tracks one in-flight transaction leg.
type closedTxn struct {
	origin  topo.NodeID
	started int64
	isReply bool
}

// RunClosedLoop executes the request-reply workload on a fresh Network.
// All traffic is trace-injected, so the configured Pattern is consulted
// only by the harness (for request destinations), never by the sources.
func RunClosedLoop(g *topo.Graph, alg Algorithm, cfg Config, clc ClosedLoopConfig) (ClosedLoopResult, error) {
	if clc.Window < 1 {
		return ClosedLoopResult{}, fmt.Errorf("sim: closed-loop window must be >= 1")
	}
	if clc.Warmup <= 0 || clc.Measure <= 0 {
		return ClosedLoopResult{}, fmt.Errorf("sim: closed-loop windows must be positive")
	}
	if clc.Pattern == nil {
		return ClosedLoopResult{}, fmt.Errorf("sim: closed-loop needs a pattern")
	}
	n, err := New(g, alg, cfg)
	if err != nil {
		return ClosedLoopResult{}, err
	}
	defer n.Close()
	if clc.Workers > 1 {
		if err := n.SetWorkers(clc.Workers); err != nil {
			return ClosedLoopResult{}, err
		}
	}

	// Transactions are matched to packets at materialization: source
	// queues are FIFO, so the k-th materialized packet of a node is its
	// k-th scheduled transaction leg.
	pending := make([][]closedTxn, g.NumNodes)
	live := make(map[int64]closedTxn, g.NumNodes*clc.Window)
	n.OnMaterialize(func(p *Packet) {
		q := pending[p.Src]
		if len(q) == 0 {
			return
		}
		live[p.ID] = q[0]
		pending[p.Src] = q[1:]
	})

	destRNG := rng.New(cfg.Seed ^ 0xc10de1009)
	hist := stats.NewHistogram(1 << 14)
	measStart := int64(clc.Warmup)
	measEnd := int64(clc.Warmup + clc.Measure)
	var completed int64
	var hookErr error

	send := func(from topo.NodeID, to topo.NodeID, t closedTxn) {
		if err := n.InjectAt(from, n.Cycle(), to); err != nil {
			hookErr = err
			return
		}
		pending[from] = append(pending[from], t)
	}
	issue := func(origin topo.NodeID) {
		dst := clc.Pattern.Dest(origin, destRNG)
		send(origin, dst, closedTxn{origin: origin, started: n.Cycle()})
	}

	n.OnDeliver(func(p *Packet, cycle int64) {
		t, ok := live[p.ID]
		if !ok {
			return
		}
		delete(live, p.ID)
		if t.isReply {
			if cycle >= measStart && cycle < measEnd {
				hist.Add(int(cycle - t.started))
				completed++
			}
			issue(t.origin)
			return
		}
		// Request delivered: destination sends the reply.
		send(p.Dst, t.origin, closedTxn{origin: t.origin, started: t.started, isReply: true})
	})

	for node := 0; node < g.NumNodes; node++ {
		for w := 0; w < clc.Window; w++ {
			issue(topo.NodeID(node))
		}
	}
	for n.Cycle() < measEnd && hookErr == nil {
		n.Step()
	}
	if hookErr != nil {
		return ClosedLoopResult{}, hookErr
	}
	return ClosedLoopResult{
		AvgRoundTrip: hist.Mean(),
		P99RoundTrip: hist.Percentile(0.99),
		RequestRate:  float64(completed) / (float64(g.NumNodes) * float64(clc.Measure)),
		Completed:    completed,
	}, nil
}
