package sim

import (
	"math/bits"

	"flatnet/internal/telemetry"
	"flatnet/internal/topo"
)

// reqKey packs an (inport, vc) requester into an int32 for the per-output
// request lists.
func (n *Network) reqKey(inport, vc int) int32 { return int32(inport)*int32(n.vcs+1) + int32(vc) }

func (n *Network) reqUnpack(key int32) (inport, vc int) {
	return int(key) / (n.vcs + 1), int(key) % (n.vcs + 1)
}

// switchAllocate moves routed buffer heads through the crossbar and onto
// their output channels. Each output channel transmits one flit per cycle
// (serialized via nextFree), but the crossbar itself can deliver several
// flits to the same output in one cycle — the paper's "sufficient switch
// speedup" (§3.2), which keeps the router from becoming the bottleneck and
// leaves channel bandwidth and buffering as the only constraints. Grants
// are round-robin across requesting input VCs; a flit is granted only when
// downstream credits exist (which also bounds the per-channel staging
// backlog to the downstream buffer size), and cfg.Speedup, when non-zero,
// caps both the grants per input port and per output port in a cycle.
func (sh *shard) switchAllocate() {
	n := sh.n
	if n.stepAll {
		for r := sh.r0; r < sh.r1; r++ {
			sh.switchRouter(&n.routers[r])
		}
		return
	}
	for w := range sh.activeR {
		for word := sh.activeR[w]; word != 0; word &= word - 1 {
			sh.switchRouter(&n.routers[sh.r0+w<<6+bits.TrailingZeros64(word)])
		}
	}
}

// switchRouter performs one router's switch allocation.
func (sh *shard) switchRouter(rt *router) {
	n := sh.n
	speedup := n.cfg.Speedup
	// Collect requests.
	anyReq := false
	for p := range rt.in {
		ip := &rt.in[p]
		rt.grants[p] = 0
		for occ := ip.occ; occ != 0; occ &= occ - 1 {
			v := bits.TrailingZeros64(occ)
			q := &ip.vcs[v]
			if !q.routed {
				continue
			}
			op := &rt.out[q.out.Port]
			if op.credits != nil && op.credits[q.out.VC] <= 0 {
				if n.probes != nil {
					n.probes.CreditStalls++
				}
				continue // no downstream space: do not bid
			}
			if op.credits == nil && op.nextFree-n.cycle >= int64(n.cfg.BufPerPort) {
				continue // ejection staging queue full
			}
			if !q.headSent && op.owner != nil && op.owner[q.out.VC] != nil {
				if n.probes != nil {
					n.probes.VCStalls++
				}
				continue // downstream VC still owned by another packet
			}
			rt.reqs[q.out.Port] = append(rt.reqs[q.out.Port], n.reqKey(p, v))
			anyReq = true
		}
	}
	if !anyReq {
		return
	}
	for p := range rt.out {
		reqs := rt.reqs[p]
		if len(reqs) == 0 {
			continue
		}
		op := &rt.out[p]
		if n.cfg.AgeArbiter {
			granted := sh.grantByAge(rt, op, reqs, speedup)
			if n.probes != nil {
				n.probes.Grants += int64(granted)
				n.probes.Conflicts += int64(len(reqs) - granted)
			}
			rt.reqs[p] = reqs[:0]
			continue
		}
		outGrants := 0
		rr0 := int32(op.rr)
		// Round-robin: start from the first requester whose key is
		// strictly greater than the pointer, wrapping; skip
		// speedup-saturated inputs and (for terminals) a busy channel.
		for pass := 0; pass < 2; pass++ {
			for _, key := range reqs {
				if pass == 0 && key <= rr0 {
					continue
				}
				if pass == 1 && key > rr0 {
					break
				}
				if speedup > 0 && outGrants >= speedup {
					break
				}
				if op.credits == nil && op.nextFree-n.cycle >= int64(n.cfg.BufPerPort) {
					break // ejection staging queue full
				}
				inport, vc := n.reqUnpack(key)
				if speedup > 0 && int(rt.grants[inport]) >= speedup {
					continue
				}
				q := &rt.in[inport].vcs[vc]
				if op.credits != nil && op.credits[q.out.VC] <= 0 {
					continue // credit consumed by an earlier grant this cycle
				}
				if !q.headSent && op.owner != nil && op.owner[q.out.VC] != nil {
					continue // VC acquired by an earlier grant this cycle
				}
				op.rr = int(key)
				rt.grants[inport]++
				outGrants++
				sh.traverse(rt, inport, vc)
			}
		}
		if n.probes != nil {
			n.probes.Grants += int64(outGrants)
			n.probes.Conflicts += int64(len(reqs) - outGrants)
		}
		rt.reqs[p] = reqs[:0]
	}
}

// grantByAge performs oldest-first switch allocation for one output:
// repeatedly grant the eligible requester whose head packet has the
// earliest injection cycle (ties by packet ID), until speedup or credits
// run out. It returns the number of grants issued.
func (sh *shard) grantByAge(rt *router, op *outPort, reqs []int32, speedup int) int {
	n := sh.n
	outGrants := 0
	// granted is preallocated per-router scratch indexed by reqKey; it is
	// cleared below by walking reqs, so no per-cycle map is built.
	granted := rt.granted
	defer func() {
		for _, key := range reqs {
			granted[key] = false
		}
	}()
	for {
		if speedup > 0 && outGrants >= speedup {
			return outGrants
		}
		best := int32(-1)
		var bestAge int64
		var bestID int64
		for _, key := range reqs {
			if granted[key] {
				continue
			}
			inport, vc := n.reqUnpack(key)
			if speedup > 0 && int(rt.grants[inport]) >= speedup {
				continue
			}
			q := &rt.in[inport].vcs[vc]
			if q.empty() {
				continue
			}
			if op.credits != nil && op.credits[q.out.VC] <= 0 {
				continue
			}
			if op.credits == nil && op.nextFree-n.cycle >= int64(n.cfg.BufPerPort) {
				return outGrants
			}
			if !q.headSent && op.owner != nil && op.owner[q.out.VC] != nil {
				continue
			}
			pkt := q.peek().pkt
			if best < 0 || pkt.InjectCycle < bestAge ||
				(pkt.InjectCycle == bestAge && pkt.ID < bestID) {
				best, bestAge, bestID = key, pkt.InjectCycle, pkt.ID
			}
		}
		if best < 0 {
			return outGrants
		}
		granted[best] = true
		inport, vc := n.reqUnpack(best)
		rt.grants[inport]++
		outGrants++
		sh.traverse(rt, inport, vc)
	}
}

// traverse pops the granted flit and sends it down its output channel,
// serializing transmission to one flit per cycle per channel, and returns
// a credit upstream for network inputs.
func (sh *shard) traverse(rt *router, inport, vc int) {
	n := sh.n
	ip := &rt.in[inport]
	q := &ip.vcs[vc]
	dec := q.out
	isHead := !q.headSent
	f := q.pop()
	if q.empty() {
		sh.clearVC(rt, ip, vc)
	}
	op := &rt.out[dec.Port]
	if ip.kind == topo.Network {
		// Return a credit to the upstream router for the freed slot; it
		// travels the reverse channel, so it takes the channel latency.
		sh.schedule(ip.creditLat, event{kind: evCredit, router: int32(ip.peer), port: int32(ip.peerPort), vc: int32(vc)})
	}
	depart := n.cycle
	if op.nextFree > depart {
		depart = op.nextFree
	}
	op.nextFree = depart + 1
	op.flitsSent++
	delay := int(depart-n.cycle) + op.latency
	if n.tracer != nil {
		if isHead && op.kind == topo.Network {
			n.tracer.Record(telemetry.FlitEvent{
				Cycle: n.cycle, Kind: telemetry.EvVCAlloc, Packet: f.pkt.ID,
				Src: int(f.pkt.Src), Dst: int(f.pkt.Dst),
				Router: int(rt.id), Port: dec.Port, VC: dec.VC, Tail: f.tail,
			})
		}
		n.tracer.Record(telemetry.FlitEvent{
			Cycle: n.cycle, Kind: telemetry.EvXbar, Packet: f.pkt.ID,
			Src: int(f.pkt.Src), Dst: int(f.pkt.Dst),
			Router: int(rt.id), Port: dec.Port, VC: dec.VC, Tail: f.tail,
		})
	}
	switch op.kind {
	case topo.Network:
		op.credits[dec.VC]--
		if n.checks != nil {
			n.checks.CreditConsume(rt.id, dec.Port, dec.VC, op.credits[dec.VC])
			if isHead {
				n.checks.VCAcquire(f.pkt, op.owner[dec.VC], rt.id, dec.Port, dec.VC)
			}
			if f.tail {
				n.checks.VCRelease(f.pkt, rt.id, dec.Port, dec.VC)
			}
		}
		// Wormhole VC allocation: the head flit acquires the downstream
		// VC, the tail flit releases it (a single-flit packet does both
		// in one traversal, leaving it free).
		if isHead && !f.tail {
			op.owner[dec.VC] = f.pkt
		} else if f.tail && !isHead {
			op.owner[dec.VC] = nil
		}
		if isHead {
			f.pkt.Hops++
		}
		// The next router's pipeline delay is charged on arrival.
		sh.schedule(delay+n.cfg.RouterDelay, event{kind: evFlit, tail: f.tail, router: int32(op.peer), port: int32(op.peerPort), vc: int32(dec.VC), pkt: f.pkt})
	case topo.Terminal:
		op.pending[dec.VC]--
		op.pendingSum--
		// A delivery is always local to this shard; vc carries the delay
		// so the parallel merge can recover the scheduling cycle.
		sh.schedule(delay, event{kind: evDeliver, tail: f.tail, router: int32(rt.id), port: int32(dec.Port), vc: int32(delay), pkt: f.pkt})
	}
}
