package sim

import (
	"testing"

	"flatnet/internal/traffic"
)

func TestAgeArbiterBasicEquivalence(t *testing.T) {
	// At low load the arbiter choice is irrelevant: both deliver all
	// packets with similar latency.
	f := testFF(t, 4, 2)
	run := func(age bool) LoadPointResult {
		cfg := DefaultConfig()
		cfg.AgeArbiter = age
		res, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, cfg, RunConfig{
			Load: 0.2, Pattern: traffic.NewUniform(16), Warmup: 300, Measure: 300,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rr := run(false)
	age := run(true)
	if rr.Saturated || age.Saturated {
		t.Fatal("low load saturated")
	}
	if age.MeasuredDelivered != age.MeasuredCreated {
		t.Fatal("age arbiter lost packets")
	}
	if age.AvgLatency > 2*rr.AvgLatency+2 {
		t.Fatalf("age arbiter latency %.2f wildly above round-robin %.2f", age.AvgLatency, rr.AvgLatency)
	}
}

func TestAgeArbiterConservation(t *testing.T) {
	f := testFF(t, 4, 2)
	cfg := DefaultConfig()
	cfg.AgeArbiter = true
	cfg.PacketSize = 3
	n, err := New(f.Graph(), &minimalAlg{f}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(16))
	for i := 0; i < 600; i++ {
		n.GenerateBernoulli(0.6)
		n.Step()
		if i%100 == 0 {
			fi, fd := n.FlitTotals()
			buffered, inFlight := n.Inventory()
			if fi != fd+int64(buffered)+int64(inFlight) {
				t.Fatalf("cycle %d: conservation violated", i)
			}
		}
	}
	for i := 0; i < 2000; i++ {
		n.Step()
	}
	pi, pd := n.Totals()
	if pi != pd {
		t.Fatalf("did not drain: %d/%d", pi, pd)
	}
}
