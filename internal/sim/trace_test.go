package sim

import (
	"strings"
	"testing"

	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

func TestInjectAtDeliversToExplicitDest(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// No pattern installed: only trace packets flow.
	var got []topo.NodeID
	n.OnDeliver(func(p *Packet, _ int64) { got = append(got, p.Dst) })
	if err := n.InjectAt(0, 0, 13); err != nil {
		t.Fatal(err)
	}
	if err := n.InjectAt(5, 1, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		n.Step()
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(got))
	}
	seen := map[topo.NodeID]bool{got[0]: true, got[1]: true}
	if !seen[13] || !seen[2] {
		t.Fatalf("wrong destinations: %v", got)
	}
}

func TestInjectAtValidation(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InjectAt(-1, 0, 0); err == nil {
		t.Error("negative source accepted")
	}
	if err := n.InjectAt(0, 0, 99); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestReadWriteTraceRoundTrip(t *testing.T) {
	entries := []TraceEntry{
		{Cycle: 0, Src: 1, Dst: 2},
		{Cycle: 3, Src: 0, Dst: 15},
		{Cycle: 3, Src: 2, Dst: 7},
	}
	var sb strings.Builder
	if err := WriteTrace(&sb, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("round trip lost entries: %v", back)
	}
	for i := range entries {
		if back[i] != entries[i] {
			t.Fatalf("entry %d: %v != %v", i, back[i], entries[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("1 2\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ReadTrace(strings.NewReader("-1 0 0\n")); err == nil {
		t.Error("negative cycle accepted")
	}
	entries, err := ReadTrace(strings.NewReader("# comment\n\n5 1 2\n"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("comments/blank lines mishandled: %v %v", entries, err)
	}
}

func TestRecordReplayIdentical(t *testing.T) {
	// Record a Bernoulli run, replay the trace, and verify the delivered
	// (src, dst) multiset and count match exactly.
	f := testFF(t, 4, 2)
	n1, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n1.SetPattern(traffic.NewUniform(f.NumNodes))
	rec := n1.RecordTrace()
	type key struct{ s, d topo.NodeID }
	count1 := map[key]int{}
	n1.OnDeliver(func(p *Packet, _ int64) { count1[key{p.Src, p.Dst}]++ })
	for i := 0; i < 300; i++ {
		n1.GenerateBernoulli(0.3)
		n1.Step()
	}
	for i := 0; i < 500; i++ {
		n1.Step()
	}
	inj1, del1 := n1.Totals()
	if inj1 != del1 || inj1 == 0 {
		t.Fatalf("recording run did not drain: %d/%d", inj1, del1)
	}
	if int64(len(*rec)) != inj1 {
		t.Fatalf("recorded %d entries, injected %d", len(*rec), inj1)
	}

	n2, err := New(f.Graph(), &minimalAlg{f}, Config{Seed: 99, BufPerPort: 32})
	if err != nil {
		t.Fatal(err)
	}
	count2 := map[key]int{}
	n2.OnDeliver(func(p *Packet, _ int64) { count2[key{p.Src, p.Dst}]++ })
	if err := n2.LoadTrace(*rec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		n2.Step()
	}
	_, del2 := n2.Totals()
	if del2 != del1 {
		t.Fatalf("replay delivered %d, want %d", del2, del1)
	}
	if len(count1) != len(count2) {
		t.Fatalf("flow sets differ: %d vs %d", len(count1), len(count2))
	}
	for k, v := range count1 {
		if count2[k] != v {
			t.Fatalf("flow %v: %d vs %d", k, v, count2[k])
		}
	}
}

func TestTraceFutureTimestampsWait(t *testing.T) {
	// A trace arrival with a future timestamp must not enter the network
	// before its time: its measured latency starts at the trace cycle.
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var lat int64 = -1
	n.OnDeliver(func(p *Packet, cycle int64) { lat = cycle - p.InjectCycle })
	if err := n.InjectAt(0, 50, 15); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		n.Step()
	}
	if inj, _ := n.Totals(); inj != 0 {
		t.Fatal("future arrival materialized early")
	}
	for i := 0; i < 40; i++ {
		n.Step()
	}
	if lat < 0 {
		t.Fatal("trace packet not delivered")
	}
	if lat != 2 {
		t.Fatalf("latency = %d, want 2 (one network hop + ejection)", lat)
	}
}
