package sim_test

import (
	"testing"

	"flatnet/internal/sim"
	"flatnet/internal/traffic"
)

func TestRunCollectiveAllToAll(t *testing.T) {
	ff, newAlg := traceFF(t)
	res, err := sim.RunCollective(ff.Graph(), newAlg(), sim.DefaultConfig(),
		sim.CollectiveConfig{Kind: sim.CollectiveAllToAll})
	if err != nil {
		t.Fatal(err)
	}
	n := ff.Graph().NumNodes
	if res.Phases != n-1 {
		t.Errorf("phases = %d, want %d", res.Phases, n-1)
	}
	if res.Transfers != n*(n-1) {
		t.Errorf("transfers = %d, want %d", res.Transfers, n*(n-1))
	}
	if res.Packets != int64(n*(n-1)) {
		t.Errorf("packets = %d, want %d", res.Packets, n*(n-1))
	}
	if res.Cycles <= 0 || res.MaxPhaseCycles <= 0 || res.AvgPhaseCycles <= 0 {
		t.Errorf("degenerate completion: %+v", res)
	}
	if res.MaxPhaseCycles > res.Cycles {
		t.Errorf("max phase %d above total %d", res.MaxPhaseCycles, res.Cycles)
	}
}

func TestRunCollectiveAllReduce(t *testing.T) {
	ff, newAlg := traceFF(t)
	res, err := sim.RunCollective(ff.Graph(), newAlg(), sim.DefaultConfig(),
		sim.CollectiveConfig{Kind: sim.CollectiveAllReduce, Packets: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := ff.Graph().NumNodes
	if res.Phases != 2*(n-1) {
		t.Errorf("phases = %d, want %d", res.Phases, 2*(n-1))
	}
	if res.Packets != int64(2*(n-1)*n*2) {
		t.Errorf("packets = %d, want %d", res.Packets, 2*(n-1)*n*2)
	}
}

// TestRunCollectiveDeterminism pins bit-identical completion across
// repeated runs and across worker counts.
func TestRunCollectiveDeterminism(t *testing.T) {
	ff, newAlg := traceFF(t)
	cc := sim.CollectiveConfig{
		Kind: sim.CollectiveAllToAll, Packets: 2,
		Pattern: traffic.NewUniform(ff.Graph().NumNodes), Load: 0.1, Warmup: 200,
	}
	base, err := sim.RunCollective(ff.Graph(), newAlg(), sim.DefaultConfig(), cc)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		c := cc
		c.Workers = workers
		got, err := sim.RunCollective(ff.Graph(), newAlg(), sim.DefaultConfig(), c)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Fatalf("workers=%d diverged: %+v vs %+v", workers, got, base)
		}
	}
}

// TestRunCollectiveBackground checks contention: the same collective
// under heavy background traffic takes longer than on a quiet network.
func TestRunCollectiveBackground(t *testing.T) {
	ff, newAlg := traceFF(t)
	quiet, err := sim.RunCollective(ff.Graph(), newAlg(), sim.DefaultConfig(),
		sim.CollectiveConfig{Kind: sim.CollectiveAllReduce})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := sim.RunCollective(ff.Graph(), newAlg(), sim.DefaultConfig(),
		sim.CollectiveConfig{
			Kind:    sim.CollectiveAllReduce,
			Pattern: traffic.NewUniform(ff.Graph().NumNodes), Load: 0.4, Warmup: 300,
		})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cycles <= quiet.Cycles {
		t.Errorf("loaded collective (%d cycles) should exceed quiet (%d cycles)",
			loaded.Cycles, quiet.Cycles)
	}
}

func TestRunCollectiveRejects(t *testing.T) {
	ff, newAlg := traceFF(t)
	cfg := sim.DefaultConfig()
	if _, err := sim.RunCollective(ff.Graph(), newAlg(), cfg,
		sim.CollectiveConfig{Kind: "broadcast"}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := sim.RunCollective(ff.Graph(), newAlg(), cfg,
		sim.CollectiveConfig{Kind: sim.CollectiveAllToAll, Load: 0.2}); err == nil {
		t.Error("background load without a pattern accepted")
	}
	u := traffic.NewUniform(ff.Graph().NumNodes)
	if _, err := sim.RunCollective(ff.Graph(), newAlg(), cfg,
		sim.CollectiveConfig{
			Kind: sim.CollectiveAllToAll, Pattern: u,
			Source: traffic.NewBernoulli(u),
		}); err == nil {
		t.Error("Source together with Pattern accepted")
	}
	// A too-small budget is a saturation error, not a hang.
	if _, err := sim.RunCollective(ff.Graph(), newAlg(), cfg,
		sim.CollectiveConfig{Kind: sim.CollectiveAllToAll, MaxCycles: 3}); err == nil {
		t.Error("impossible cycle budget accepted")
	}
}
