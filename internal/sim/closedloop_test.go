package sim

import (
	"testing"

	"flatnet/internal/traffic"
)

func TestClosedLoopValidation(t *testing.T) {
	f := testFF(t, 4, 2)
	if _, err := RunClosedLoop(f.Graph(), &minimalAlg{f}, DefaultConfig(), ClosedLoopConfig{
		Window: 0, Pattern: traffic.NewUniform(16), Warmup: 100, Measure: 100,
	}); err == nil {
		t.Error("window 0 accepted")
	}
	if _, err := RunClosedLoop(f.Graph(), &minimalAlg{f}, DefaultConfig(), ClosedLoopConfig{
		Window: 1, Pattern: nil, Warmup: 100, Measure: 100,
	}); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := RunClosedLoop(f.Graph(), &minimalAlg{f}, DefaultConfig(), ClosedLoopConfig{
		Window: 1, Pattern: traffic.NewUniform(16),
	}); err == nil {
		t.Error("zero windows accepted")
	}
}

func TestClosedLoopBasics(t *testing.T) {
	f := testFF(t, 8, 2)
	res, err := RunClosedLoop(f.Graph(), &minimalAlg{f}, DefaultConfig(), ClosedLoopConfig{
		Window:  2,
		Pattern: traffic.NewUniform(f.NumNodes),
		Warmup:  500,
		Measure: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no round trips completed")
	}
	// A round trip is two one-way trips: zero-load one-way is ~2-3
	// cycles, so RTT should be small but >= 4.
	if res.AvgRoundTrip < 4 || res.AvgRoundTrip > 40 {
		t.Fatalf("avg round trip %.2f implausible", res.AvgRoundTrip)
	}
	if res.P99RoundTrip < int(res.AvgRoundTrip) {
		t.Fatal("p99 below mean")
	}
	// Little's law: rate = window / RTT (per node), within slack for
	// transient effects.
	little := float64(2) / res.AvgRoundTrip
	if res.RequestRate < 0.5*little || res.RequestRate > 1.3*little {
		t.Fatalf("rate %.4f vs Little's-law estimate %.4f", res.RequestRate, little)
	}
}

func TestClosedLoopWindowScaling(t *testing.T) {
	// A larger window sustains a higher request rate until the network
	// saturates.
	f := testFF(t, 8, 2)
	rate := func(window int) float64 {
		res, err := RunClosedLoop(f.Graph(), &minimalAlg{f}, DefaultConfig(), ClosedLoopConfig{
			Window:  window,
			Pattern: traffic.NewUniform(f.NumNodes),
			Warmup:  500,
			Measure: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.RequestRate
	}
	r1, r4 := rate(1), rate(4)
	if r4 <= r1 {
		t.Fatalf("window 4 rate %.4f should exceed window 1 rate %.4f", r4, r1)
	}
}

func TestClosedLoopParallelIdentity(t *testing.T) {
	// The sharded scheduler must reproduce the sequential closed-loop
	// run exactly: round-trip statistics are cycle-level measurements, so
	// any divergence in delivery order or request re-issue shows up here.
	f := testFF(t, 4, 2)
	for _, window := range []int{1, 4} {
		base := ClosedLoopConfig{
			Window:  window,
			Pattern: traffic.NewUniform(f.NumNodes),
			Warmup:  300,
			Measure: 600,
		}
		seq, err := RunClosedLoop(f.Graph(), &minimalAlg{f}, DefaultConfig(), base)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Completed == 0 {
			t.Fatal("sequential run completed no round trips")
		}
		for _, workers := range []int{2, 4} {
			clc := base
			clc.Workers = workers
			par, err := RunClosedLoop(f.Graph(), &minimalAlg{f}, DefaultConfig(), clc)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if par != seq {
				t.Fatalf("window %d, workers %d diverged:\nseq: %+v\npar: %+v",
					window, workers, seq, par)
			}
		}
	}
}

func TestClosedLoopAdversarialPattern(t *testing.T) {
	// Under the worst-case request pattern, minimal routing's 1/k channel
	// bottleneck shows up as a round-trip-rate ceiling well below the
	// uniform case at the same window.
	f := testFF(t, 8, 2)
	run := func(p traffic.Pattern) float64 {
		res, err := RunClosedLoop(f.Graph(), &minimalAlg{f}, DefaultConfig(), ClosedLoopConfig{
			Window:  8,
			Pattern: p,
			Warmup:  500,
			Measure: 1500,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.RequestRate
	}
	ur := run(traffic.NewUniform(f.NumNodes))
	wc := run(traffic.NewWorstCase(f.K, f.NumRouters))
	if wc >= ur {
		t.Fatalf("adversarial closed-loop rate %.4f should trail uniform %.4f", wc, ur)
	}
}
