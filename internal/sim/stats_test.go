package sim

import (
	"math"
	"testing"

	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

func TestChannelLoadsConservation(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(16))
	for i := 0; i < 500; i++ {
		n.GenerateBernoulli(0.4)
		n.Step()
	}
	var termFlits int64
	for _, c := range n.ChannelLoads() {
		if c.Utilization < 0 || c.Utilization > 1.000001 {
			t.Fatalf("channel %d.%d utilization %v out of [0,1]", c.Router, c.Port, c.Utilization)
		}
		if c.Kind == topo.Terminal {
			termFlits += c.Flits
		}
	}
	// Every delivered flit left through a terminal channel.
	_, flitsDelivered := n.FlitTotals()
	// Some flits may still be on ejection channels (sent, not yet
	// delivered), so termFlits >= delivered.
	if termFlits < flitsDelivered {
		t.Fatalf("terminal channel flits %d < delivered %d", termFlits, flitsDelivered)
	}
	if termFlits == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestLoadImbalanceDistinguishesPatterns(t *testing.T) {
	// The worst-case pattern under minimal routing piles all traffic on
	// one channel per router (imbalance ratio ~ number of channels); the
	// uniform pattern spreads it evenly (ratio near 1).
	f := testFF(t, 8, 2)
	run := func(p traffic.Pattern) float64 {
		n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		n.SetPattern(p)
		for i := 0; i < 200; i++ {
			n.GenerateBernoulli(0.1)
			n.Step()
		}
		n.ResetChannelStats()
		for i := 0; i < 800; i++ {
			n.GenerateBernoulli(0.1)
			n.Step()
		}
		_, _, ratio := n.LoadImbalance()
		return ratio
	}
	urRatio := run(traffic.NewUniform(f.NumNodes))
	wcRatio := run(traffic.NewWorstCase(f.K, f.NumRouters))
	if urRatio > 2.0 {
		t.Errorf("uniform imbalance ratio = %.2f, want near 1", urRatio)
	}
	if wcRatio < 5.0 {
		t.Errorf("worst-case minimal imbalance ratio = %.2f, want ~7 (all load on 1 of 7 channels)", wcRatio)
	}
}

func TestResetChannelStats(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(16))
	for i := 0; i < 200; i++ {
		n.GenerateBernoulli(0.5)
		n.Step()
	}
	n.ResetChannelStats()
	for _, c := range n.ChannelLoads() {
		if c.Flits != 0 {
			t.Fatalf("channel %d.%d has %d flits after reset", c.Router, c.Port, c.Flits)
		}
	}
	max, mean, _ := n.LoadImbalance()
	if max != 0 || mean != 0 {
		t.Fatal("imbalance should be zero right after reset")
	}
}

// TestChannelLoadsWarmupWindow pins the ResetChannelStats contract used
// for warm-up exclusion: after a reset, Utilization is computed over the
// post-reset window only, and the split counters reconcile with an
// unreset control run of the same seed.
func TestChannelLoadsWarmupWindow(t *testing.T) {
	f := testFF(t, 4, 2)
	build := func() *Network {
		n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		n.SetPattern(traffic.NewUniform(16))
		return n
	}
	drive := func(n *Network, cycles int) {
		for i := 0; i < cycles; i++ {
			n.GenerateBernoulli(0.3)
			n.Step()
		}
	}

	const warm, meas = 300, 500
	n := build()
	drive(n, warm)
	pre := n.ChannelLoads()
	n.ResetChannelStats()
	drive(n, meas)
	post := n.ChannelLoads()
	var postFlits int64
	for _, c := range post {
		// The denominator must be the post-reset window, not total cycles.
		want := float64(c.Flits) / meas
		if math.Abs(c.Utilization-want) > 1e-12 {
			t.Fatalf("channel %d.%d utilization %v, want %v (flits/%d)",
				c.Router, c.Port, c.Utilization, want, meas)
		}
		postFlits += c.Flits
	}
	if postFlits == 0 {
		t.Fatal("no traffic in the measurement window")
	}

	// Control: identical seed and drive, no reset — per-channel totals
	// must equal pre + post, proving the reset dropped exactly the
	// warm-up traffic and did not perturb the simulation.
	ctrl := build()
	drive(ctrl, warm+meas)
	all := ctrl.ChannelLoads()
	if len(all) != len(pre) || len(all) != len(post) {
		t.Fatalf("channel count mismatch: %d/%d/%d", len(all), len(pre), len(post))
	}
	for i, c := range all {
		if split := pre[i].Flits + post[i].Flits; c.Flits != split {
			t.Errorf("channel %d.%d: control %d flits, warm %d + meas %d = %d",
				c.Router, c.Port, c.Flits, pre[i].Flits, post[i].Flits, split)
		}
	}
}

func TestTopChannels(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every node 0..3 sends to node 4 (router 1): channel 0->1 is hottest.
	tab := make([]topo.NodeID, 16)
	for i := range tab {
		tab[i] = 4
	}
	n.SetPattern(traffic.NewFixed("hot", tab))
	for i := 0; i < 300; i++ {
		n.GenerateBernoulli(0.3)
		n.Step()
	}
	top := n.TopChannels(3)
	if len(top) != 3 {
		t.Fatalf("got %d channels", len(top))
	}
	if top[0].Flits < top[1].Flits || top[1].Flits < top[2].Flits {
		t.Fatal("TopChannels not sorted descending")
	}
	// The hottest network channel belongs to a router sending toward
	// router 1.
	hot := top[0]
	out := f.Graph().Routers[hot.Router].Out[hot.Port]
	if out.Peer != 1 {
		t.Errorf("hottest channel goes to router %d, want 1", out.Peer)
	}
}

func TestBufferOccupancy(t *testing.T) {
	f := testFF(t, 4, 2)
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	total, mean, max := n.BufferOccupancy()
	if total != 0 || mean != 0 || max != 0 {
		t.Fatal("fresh network should have empty buffers")
	}
	n.SetPattern(traffic.NewWorstCase(4, 4))
	for i := 0; i < 300; i++ {
		n.GenerateBernoulli(1.0)
		n.Step()
	}
	total, mean, max = n.BufferOccupancy()
	if total <= 0 || mean <= 0 || max <= 0 {
		t.Fatal("overloaded network should have occupied buffers")
	}
	buffered, _ := n.Inventory()
	if total != buffered {
		t.Fatalf("occupancy %d disagrees with inventory %d", total, buffered)
	}
}
