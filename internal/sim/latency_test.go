package sim

import (
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// TestMultiCycleChannels verifies credit flow and latency accounting with
// long channels: per-hop latency scales with the channel latency and the
// network still sustains full throughput once per-VC buffering covers the
// credit round trip.
func TestMultiCycleChannels(t *testing.T) {
	build := func(lat int) *core.FlatFly {
		f, err := core.NewFlatFly(4, 2, core.WithChannelLatency(lat))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	lat := func(f *core.FlatFly) float64 {
		res, err := RunLoadPoint(f.Graph(), &minimalAlg{f}, DefaultConfig(), RunConfig{
			Load: 0.1, Pattern: traffic.NewUniform(16), Warmup: 300, Measure: 300,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Saturated {
			t.Fatal("saturated at 10% load")
		}
		return res.AvgLatency
	}
	l1 := lat(build(1))
	l5 := lat(build(5))
	// Remote packets (P=0.75) take 1 inter-router hop: latency grows by
	// ~0.75 * 4 extra cycles.
	if l5-l1 < 2.0 || l5-l1 > 4.5 {
		t.Fatalf("latency delta for 5-cycle channels = %.2f, want ~3", l5-l1)
	}
	// Throughput stays high: buffers (32) cover the credit RTT (11).
	f := build(5)
	thpt, err := SaturationThroughput(f.Graph(), &minimalAlg{f}, DefaultConfig(),
		traffic.NewUniform(16), 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if thpt < 0.85 {
		t.Fatalf("throughput with 5-cycle channels = %.3f, want ~0.94", thpt)
	}
}

// TestCreditStarvationWithTinyBuffers verifies the credit loop binds when
// per-VC buffering cannot cover the round trip: throughput drops to
// roughly depth/RTT per channel.
func TestCreditStarvationWithTinyBuffers(t *testing.T) {
	f, err := core.NewFlatFly(4, 2, core.WithChannelLatency(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 1, BufPerPort: 4} // depth 4 vs RTT ~17
	// Single-destination stream across one channel: node 0 -> node 4.
	tab := make([]topo.NodeID, 16)
	for i := range tab {
		tab[i] = topo.NodeID(i) // self by default: idle
	}
	tab[0] = 4
	n, err := New(f.Graph(), &minimalAlg{f}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewFixed("stream", tab))
	delivered := 0
	n.OnDeliver(func(p *Packet, _ int64) {
		if p.Src == 0 {
			delivered++
		}
	})
	// Only node 0 injects.
	for i := 0; i < 2000; i++ {
		n.pushArrival(0, n.Cycle())
		n.Step()
	}
	rate := float64(delivered) / 2000
	// Credit-limited rate = depth / RTT = 4 / (8 + 8 + ~1) ~ 0.24.
	if rate < 0.15 || rate > 0.40 {
		t.Fatalf("credit-limited rate = %.3f, want ~0.24 (4 credits over a 17-cycle loop)", rate)
	}
}

// TestSpeedupOneLimitsGrants verifies the Speedup knob: with Speedup=1 an
// input port forwards at most one flit per cycle, so two VC streams on
// one input cannot exceed one flit per cycle combined.
func TestSpeedupOneLimitsGrants(t *testing.T) {
	f, err := core.NewFlatFly(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ur := traffic.NewUniform(f.NumNodes)
	limited := Config{Seed: 1, BufPerPort: 32, Speedup: 1}
	thptLim, err := SaturationThroughput(f.Graph(), &minimalAlg{f}, limited, ur, 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	thptFull, err := SaturationThroughput(f.Graph(), &minimalAlg{f}, DefaultConfig(), ur, 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if thptLim >= thptFull {
		t.Fatalf("speedup-1 throughput %.3f should trail unlimited %.3f (HOL blocking)", thptLim, thptFull)
	}
	if thptLim < 0.4 {
		t.Fatalf("speedup-1 throughput %.3f implausibly low", thptLim)
	}
}

// TestZeroLoadLatencyComposition decomposes the zero-load latency of a
// one-hop route: channel latency + ejection latency, with no queueing.
func TestZeroLoadLatencyComposition(t *testing.T) {
	f, err := core.NewFlatFly(4, 2, core.WithChannelLatency(3), core.WithTerminalLatency(2))
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(f.Graph(), &minimalAlg{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := make([]topo.NodeID, 16)
	for i := range tab {
		tab[i] = 15
	}
	n.SetPattern(traffic.NewFixed("single", tab))
	var at int64 = -1
	n.OnDeliver(func(p *Packet, c int64) { at = c })
	n.pushArrival(0, 0)
	for i := 0; i < 30 && at < 0; i++ {
		n.Step()
	}
	// Route+switch at source router (cycle 0), 3 cycles channel, route+
	// switch at router 3 (cycle 3), 2 cycles ejection channel -> cycle 5.
	if at != 5 {
		t.Fatalf("delivered at cycle %d, want 5 (3-cycle hop + 2-cycle ejection)", at)
	}
}

func TestRouterDelayPipeline(t *testing.T) {
	// A 2-cycle router pipeline adds 2 cycles per inter-router hop (the
	// source router's own pipeline is not modeled: the packet enters at
	// the allocation stage).
	f := testFF(t, 4, 2)
	run := func(delay int) int64 {
		cfg := DefaultConfig()
		cfg.RouterDelay = delay
		n, err := New(f.Graph(), &minimalAlg{f}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tab := make([]topo.NodeID, 16)
		for i := range tab {
			tab[i] = 15
		}
		n.SetPattern(traffic.NewFixed("single", tab))
		var at int64 = -1
		n.OnDeliver(func(p *Packet, c int64) { at = c })
		n.pushArrival(0, 0)
		for i := 0; i < 30 && at < 0; i++ {
			n.Step()
		}
		if at < 0 {
			t.Fatal("not delivered")
		}
		return at
	}
	if d0, d2 := run(0), run(2); d2 != d0+2 {
		t.Fatalf("2-cycle pipeline: delivered at %d vs %d, want +2", d2, d0)
	}
	if _, err := New(f.Graph(), &minimalAlg{f}, Config{Seed: 1, BufPerPort: 8, RouterDelay: -1}); err == nil {
		t.Error("negative router delay accepted")
	}
}
