package sim

import (
	"sort"

	"flatnet/internal/topo"
)

// ChannelLoad reports the traffic carried by one unidirectional channel
// (a router output port).
type ChannelLoad struct {
	Router topo.RouterID
	Port   int
	Kind   topo.PortKind
	// Flits transmitted since construction (or the last ResetChannelStats).
	Flits int64
	// Utilization is Flits divided by the cycles observed.
	Utilization float64
}

// ChannelLoads returns the per-channel traffic counters for every
// Network- and Terminal-kind output port, in (router, port) order. The
// load-balancing claims of the paper are directly observable here: under
// the worst-case pattern, minimal routing drives one channel per router
// to full utilization while non-minimal routing spreads the same traffic
// across all of them.
func (n *Network) ChannelLoads() []ChannelLoad {
	window := n.cycle - n.statsStart
	if window <= 0 {
		window = 1
	}
	var out []ChannelLoad
	for r := range n.routers {
		for p := range n.routers[r].out {
			op := &n.routers[r].out[p]
			if op.kind == topo.Unused {
				continue
			}
			out = append(out, ChannelLoad{
				Router:      topo.RouterID(r),
				Port:        p,
				Kind:        op.kind,
				Flits:       op.flitsSent,
				Utilization: float64(op.flitsSent) / float64(window),
			})
		}
	}
	return out
}

// ResetChannelStats zeroes the per-channel counters and restarts the
// utilization window at the current cycle, e.g. after warm-up.
func (n *Network) ResetChannelStats() {
	n.statsStart = n.cycle
	for r := range n.routers {
		for p := range n.routers[r].out {
			n.routers[r].out[p].flitsSent = 0
		}
	}
}

// LoadImbalance summarizes how evenly traffic spreads over the network
// channels (Terminal channels excluded): the maximum and mean utilization
// and their ratio. A ratio near 1 indicates balanced load; under the
// adversarial pattern, minimal routing shows a ratio near the router
// radix while non-minimal routing stays near 1-2.
func (n *Network) LoadImbalance() (max, mean, ratio float64) {
	var sum float64
	var count int
	for _, c := range n.ChannelLoads() {
		if c.Kind != topo.Network {
			continue
		}
		sum += c.Utilization
		count++
		if c.Utilization > max {
			max = c.Utilization
		}
	}
	if count == 0 {
		return 0, 0, 0
	}
	mean = sum / float64(count)
	if mean > 0 {
		ratio = max / mean
	}
	return max, mean, ratio
}

// BufferOccupancy returns the current total, mean-per-VC and maximum
// occupancy of all input buffers, in flits — a liveness/health probe for
// long-running simulations.
func (n *Network) BufferOccupancy() (total int, mean float64, max int) {
	vcs := 0
	for r := range n.routers {
		for p := range n.routers[r].in {
			for v := range n.routers[r].in[p].vcs {
				c := n.routers[r].in[p].vcs[v].count
				total += c
				vcs++
				if c > max {
					max = c
				}
			}
		}
	}
	if vcs > 0 {
		mean = float64(total) / float64(vcs)
	}
	return total, mean, max
}

// TopChannels returns the k busiest network channels, descending by
// flits carried.
func (n *Network) TopChannels(k int) []ChannelLoad {
	loads := n.ChannelLoads()
	filtered := loads[:0]
	for _, c := range loads {
		if c.Kind == topo.Network {
			filtered = append(filtered, c)
		}
	}
	sort.Slice(filtered, func(i, j int) bool { return filtered[i].Flits > filtered[j].Flits })
	if k > len(filtered) {
		k = len(filtered)
	}
	return filtered[:k]
}
