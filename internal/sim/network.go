package sim

import (
	"fmt"
	"math/bits"

	"flatnet/internal/rng"
	"flatnet/internal/telemetry"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// Config holds the router microarchitecture parameters of a simulation.
type Config struct {
	// Seed drives every random stream in the simulation. Identical seeds
	// and configurations produce identical results.
	Seed uint64
	// BufPerPort is the total flit buffering per input port, divided
	// evenly among the algorithm's virtual channels (§3.2 uses 32).
	BufPerPort int
	// Speedup limits how many flits one input port may forward per cycle
	// across its VCs. 0 means unlimited — the paper's "sufficient switch
	// speedup", which leaves channel bandwidth as the only constraint.
	Speedup int
	// PacketSize is the number of flits per packet (default 1, the
	// paper's configuration; §3.2 notes packet size does not change the
	// comparisons). Multi-flit packets use wormhole switching: the head
	// flit routes and acquires the downstream virtual channel, body flits
	// follow in order, and the tail flit releases the channel.
	PacketSize int
	// AgeArbiter switches switch allocation from round-robin to
	// oldest-packet-first. Age-based arbitration is the classic remedy
	// (GOAL; Singh et al., the paper's refs [27][28]) for the
	// post-saturation throughput instability that locally-fair
	// round-robin exhibits on multi-hop patterns such as tornado on a
	// torus ring.
	AgeArbiter bool
	// RouterDelay adds a fixed per-hop pipeline delay in cycles: a flit
	// arriving at a router becomes routable RouterDelay cycles later.
	// 0 models the paper's single-cycle router (§3.2); real high-radix
	// parts (YARC) have deep pipelines.
	RouterDelay int
}

// DefaultConfig mirrors the paper's §3.2 router: 32 flits of buffering per
// port, single-flit packets, and sufficient speedup.
func DefaultConfig() Config {
	return Config{Seed: 1, BufPerPort: 32, Speedup: 0, PacketSize: 1}
}

// flit is one flow-control unit of a packet.
type flit struct {
	pkt  *Packet
	tail bool
}

// vcq is a fixed-capacity flit FIFO: one virtual-channel buffer. The
// routing decision applies to the packet currently being forwarded (from
// its head flit reaching the queue head until its tail flit departs);
// per-VC FIFO channel order guarantees packets never interleave within
// one input VC.
type vcq struct {
	buf      []flit
	head     int
	count    int
	routed   bool   // current packet has a routing decision
	headSent bool   // current packet's head flit has departed
	out      OutRef // the decision, valid when routed
}

func (q *vcq) full() bool  { return q.count == len(q.buf) }
func (q *vcq) empty() bool { return q.count == 0 }

func (q *vcq) peek() flit { return q.buf[q.head] }

func (q *vcq) push(f flit) {
	q.buf[(q.head+q.count)%len(q.buf)] = f
	q.count++
}

func (q *vcq) pop() flit {
	f := q.buf[q.head]
	q.buf[q.head] = flit{}
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	if f.tail {
		q.routed = false
		q.headSent = false
	} else {
		q.headSent = true
	}
	return f
}

type inPort struct {
	kind     topo.PortKind
	peer     topo.RouterID // upstream router for Network inputs
	peerPort int
	// creditLat is the cycles a credit takes to reach the upstream
	// router: the reverse-channel latency (mirrors the forward channel).
	creditLat int
	// occ has bit v set when vcs[v] is non-empty, so the per-cycle route
	// and switch loops skip empty buffers without touching their memory —
	// the dominant cost on large, lightly-loaded networks. This caps the
	// simulator at 64 VCs (checked in New).
	occ uint64
	vcs []vcq
}

type outPort struct {
	kind       topo.PortKind
	peer       topo.RouterID
	peerPort   int
	node       topo.NodeID
	latency    int
	credits    []int     // per VC free slots downstream; nil for Terminal outputs
	pending    []int     // queue estimate per VC (routed here + in flight + downstream occupancy)
	delta      []int     // same-cycle reservations, folded into pending after allocation
	pendingSum int       // sum of pending over VCs, maintained incrementally for O(1) QueueEstPort
	deltaSum   int       // sum of delta over VCs
	owner      []*Packet // per VC: packet holding the downstream VC (wormhole); nil entries mean free
	rr         int       // round-robin pointer for switch allocation
	nextFree   int64     // first cycle at which the channel can transmit another flit
	flitsSent  int64     // traffic counter for utilization reporting
}

type router struct {
	id  topo.RouterID
	in  []inPort
	out []outPort
	rng *rng.Source

	occVCs  int32     // occupied input VCs; > 0 keeps the router on the active worklist
	touched []int32   // (port*vcs + vc) entries with nonzero delta this cycle
	grants  []int16   // per-input-port grants this cycle
	reqs    [][]int32 // per-output requester list, entries are (inport*vcs... see reqKey)
	granted []bool    // per-reqKey grant scratch for the age arbiter; nil unless AgeArbiter
}

// event kinds for the cycle calendar.
const (
	evFlit uint8 = iota
	evCredit
	evDeliver
)

type event struct {
	kind uint8
	tail bool
	// vc is the virtual channel for evFlit/evCredit. For evDeliver it
	// instead carries the event's scheduling delay (cycles between
	// traverse and delivery), which the parallel merge uses to recover
	// the scheduling cycle; nothing else reads it for deliveries.
	vc     int32
	router int32
	port   int32
	pkt    *Packet
}

// Network is one instantiated simulation: a topology graph, a routing
// algorithm, router state, traffic sources, and measurement hooks.
//
// All per-cycle mutable scheduler state (event calendar, arena, active
// worklists, the RouterView handed to Route) lives in shards. A network
// always has at least one shard; with SetWorkers(1) (the default) the
// single bootstrap shard covers every router and the Step pipeline runs
// exactly the sequential code path. SetWorkers(k>1) partitions routers
// across k shards driven by worker goroutines under a conservative
// barrier scheduler (see shard.go and DESIGN.md §13) with bit-identical
// results.
type Network struct {
	g   *topo.Graph
	alg Algorithm
	cfg Config

	vcs     int
	vcDepth int

	cycle   int64
	routers []router
	sources []source
	maxLat  int
	calLen  int // calendar ring length (shared by every shard)

	// Sharded scheduler state. sh always holds at least the bootstrap
	// shard 0; par is true once partition() split the network across
	// worker goroutines. shardOf/shardOfNode map routers and terminals to
	// their owning shard (nil until partitioned).
	sh          []*shard
	par         bool
	started     bool // first Step happened; the partition is frozen
	closed      bool
	workers     int // requested via SetWorkers; effective count is len(sh)
	shardOf     []int32
	shardOfNode []int32
	pool        workerPool

	stepAll bool

	nextID int64

	// wl is the installed workload source (arrival + destination
	// process); wlErr defers a SetPattern install failure to the next
	// Generate. pendingWl stashes a restored snapshot's workload state
	// until SetSource installs the matching source.
	wl        traffic.Source
	wlErr     error
	pendingWl *pendingWorkload

	// Measurement state, managed by the run harnesses.
	measStart, measEnd int64 // packets injected in [measStart, measEnd) are measured
	statsStart         int64 // start of the channel-utilization window
	onDeliver          func(p *Packet, cycle int64)
	onMaterialize      func(p *Packet)

	// xfers maps in-flight transfer packets (StartTransfer) to their
	// handles; nil until the first transfer, so ordinary runs pay one nil
	// check per materialization and delivery.
	xfers map[*Packet]*Transfer

	// Telemetry and sanitizer hooks; nil (the default) means every
	// pipeline hook is a single pointer check — the zero-overhead-when-off
	// contract that BenchmarkTelemetryOff and BenchmarkChecksOff guard.
	// Attaching any of them before the first Step forces the sequential
	// scheduler regardless of SetWorkers.
	probes *Probes
	tracer *telemetry.Tracer
	checks *CheckHooks

	deliveredTotal int64 // packets fully delivered (tail flit ejected)
	flitsDelivered int64
	measCreated    int64
	measDelivered  int64
}

// New builds a Network over the given channel graph. The algorithm's VC
// count determines the per-VC buffer depth: cfg.BufPerPort / NumVCs
// (minimum 1).
func New(g *topo.Graph, alg Algorithm, cfg Config) (*Network, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if cfg.BufPerPort < 1 {
		return nil, fmt.Errorf("sim: BufPerPort must be >= 1, got %d", cfg.BufPerPort)
	}
	if cfg.PacketSize == 0 {
		cfg.PacketSize = 1
	}
	if cfg.PacketSize < 1 {
		return nil, fmt.Errorf("sim: PacketSize must be >= 1, got %d", cfg.PacketSize)
	}
	if cfg.RouterDelay < 0 {
		return nil, fmt.Errorf("sim: RouterDelay must be >= 0, got %d", cfg.RouterDelay)
	}
	vcs := alg.NumVCs()
	if vcs < 1 {
		return nil, fmt.Errorf("sim: algorithm %q needs at least 1 VC", alg.Name())
	}
	if vcs > 64 {
		return nil, fmt.Errorf("sim: algorithm %q needs %d VCs, more than the supported 64", alg.Name(), vcs)
	}
	depth := cfg.BufPerPort / vcs
	if depth < 1 {
		depth = 1
	}
	n := &Network{
		g:         g,
		alg:       alg,
		cfg:       cfg,
		vcs:       vcs,
		vcDepth:   depth,
		measStart: -1,
		measEnd:   -1,
	}
	master := rng.New(cfg.Seed)
	n.routers = make([]router, len(g.Routers))
	maxLat := 1
	for r := range g.Routers {
		rd := &g.Routers[r]
		rt := &n.routers[r]
		rt.id = topo.RouterID(r)
		rt.rng = rng.New(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(r+1)))
		rt.in = make([]inPort, len(rd.In))
		for p := range rd.In {
			ip := &rt.in[p]
			ip.kind = rd.In[p].Kind
			ip.peer = rd.In[p].Peer
			ip.peerPort = rd.In[p].PeerPort
			if ip.kind == topo.Network {
				ip.creditLat = g.Routers[ip.peer].Out[ip.peerPort].Latency
			}
			switch ip.kind {
			case topo.Network:
				ip.vcs = make([]vcq, vcs)
				for v := range ip.vcs {
					ip.vcs[v].buf = make([]flit, depth)
				}
			case topo.Terminal:
				// The terminal (injection) buffer is a single logical VC
				// holding the full per-port buffering.
				ip.vcs = make([]vcq, 1)
				ip.vcs[0].buf = make([]flit, cfg.BufPerPort)
			}
		}
		rt.out = make([]outPort, len(rd.Out))
		for p := range rd.Out {
			op := &rt.out[p]
			op.kind = rd.Out[p].Kind
			op.peer = rd.Out[p].Peer
			op.peerPort = rd.Out[p].PeerPort
			op.node = rd.Out[p].Node
			op.latency = rd.Out[p].Latency
			if op.latency > maxLat {
				maxLat = op.latency
			}
			switch op.kind {
			case topo.Network:
				op.credits = make([]int, vcs)
				for v := range op.credits {
					op.credits[v] = depth
				}
				op.pending = make([]int, vcs)
				op.delta = make([]int, vcs)
				op.owner = make([]*Packet, vcs)
			case topo.Terminal:
				op.pending = make([]int, vcs)
				op.delta = make([]int, vcs)
			}
		}
		rt.grants = make([]int16, len(rd.In))
		rt.reqs = make([][]int32, len(rd.Out))
		// touched holds at most one entry per occupied input VC.
		rt.touched = make([]int32, 0, len(rd.In)*vcs)
		if cfg.AgeArbiter {
			rt.granted = make([]bool, len(rd.In)*(vcs+1))
		}
	}
	n.maxLat = maxLat
	// The calendar ring must cover the worst-case scheduling horizon: the
	// channel latency plus router pipeline delay plus the per-channel
	// staging backlog, which credits bound to the downstream per-port
	// buffering.
	n.calLen = maxLat + cfg.RouterDelay + cfg.BufPerPort + 2
	n.sources = make([]source, g.NumNodes)
	for i := range n.sources {
		n.sources[i].node = topo.NodeID(i)
		n.sources[i].rng = master.Split()
	}
	// The bootstrap shard covers the whole network; it is the sequential
	// scheduler, and stays in place unless SetWorkers partitions it at
	// the first Step.
	n.sh = []*shard{newShard(n, 0, 0, len(g.Routers), 0, g.NumNodes)}
	_ = master
	return n, nil
}

// Cycle returns the current simulation time.
func (n *Network) Cycle() int64 { return n.cycle }

// NumNodes returns the number of terminals.
func (n *Network) NumNodes() int { return n.g.NumNodes }

// VCs returns the virtual-channel count in use.
func (n *Network) VCs() int { return n.vcs }

// VCDepth returns the per-VC buffer depth in flits.
func (n *Network) VCDepth() int { return n.vcDepth }

// schedule enqueues an event delay cycles in the future. Slot growth goes
// through the shard's arena so backing arrays are recycled across
// calendar slots and the steady state schedules without allocating. In
// parallel mode, events addressed to a router owned by another shard are
// staged into that shard's outbox instead; the target drains it at the
// next cycle barrier (delay >= 1 for every cross-shard event, so the
// event cannot be due before the target looks).
func (sh *shard) schedule(delay int, ev event) {
	n := sh.n
	if n.par {
		if tgt := n.shardOf[ev.router]; int(tgt) != sh.idx {
			sh.outbox[tgt] = append(sh.outbox[tgt], xev{at: n.cycle + int64(delay), ev: ev})
			return
		}
	}
	slot := (n.cycle + int64(delay)) % int64(len(sh.calendar))
	evs := sh.calendar[slot]
	if len(evs) == cap(evs) {
		evs = sh.arena.growEvents(evs)
	}
	sh.calendar[slot] = append(evs, ev)
}

// wakeVC marks input VC (ip, vc) occupied and puts the router on the
// shard's active worklist. Idempotent when the bit is already set.
func (sh *shard) wakeVC(rt *router, ip *inPort, vc int) {
	if ip.occ&(1<<uint(vc)) != 0 {
		return
	}
	ip.occ |= 1 << uint(vc)
	if rt.occVCs == 0 {
		r := uint(int(rt.id) - sh.r0)
		sh.activeR[r>>6] |= 1 << (r & 63)
	}
	rt.occVCs++
}

// clearVC marks input VC (ip, vc) empty, dropping the router from the
// worklist when it was its last occupied VC. The bit must be set.
func (sh *shard) clearVC(rt *router, ip *inPort, vc int) {
	ip.occ &^= 1 << uint(vc)
	rt.occVCs--
	if rt.occVCs == 0 {
		r := uint(int(rt.id) - sh.r0)
		sh.activeR[r>>6] &^= 1 << (r & 63)
	}
}

// wakeSource puts source i on its owning shard's injection worklist.
// Called from the caller thread between Steps (generation, traces,
// transfers), never from inside a phase.
func (n *Network) wakeSource(i int) {
	sh := n.shardForNode(i)
	li := uint(i - sh.s0)
	sh.activeS[li>>6] |= 1 << (li & 63)
}

// Step advances the simulation by one cycle.
func (n *Network) Step() {
	if !n.started {
		n.startup()
	}
	if n.par {
		n.stepParallel()
		return
	}
	sh := n.sh[0]
	sh.processEvents()
	sh.inject()
	sh.routeAllocate()
	sh.switchAllocate()
	if n.probes != nil && n.cycle%n.probes.stride == 0 {
		n.sampleProbes()
	}
	if n.checks != nil {
		n.checks.EndCycle()
	}
	n.cycle++
}

// processEvents applies flit arrivals, credit returns and deliveries
// scheduled for the current cycle. In parallel mode deliveries are
// deferred to the shard's pendDel list; the coordinator replays them in
// the exact sequential order at the phase barrier (mergeDeliveries).
func (sh *shard) processEvents() {
	n := sh.n
	if n.par {
		sh.drainInboxes()
	}
	slot := n.cycle % int64(len(sh.calendar))
	evs := sh.calendar[slot]
	sh.calendar[slot] = evs[:0]
	for _, ev := range evs {
		switch ev.kind {
		case evFlit:
			rt := &n.routers[ev.router]
			ip := &rt.in[ev.port]
			ip.vcs[ev.vc].push(flit{pkt: ev.pkt, tail: ev.tail})
			sh.wakeVC(rt, ip, int(ev.vc))
		case evCredit:
			op := &n.routers[ev.router].out[ev.port]
			op.credits[ev.vc]++
			op.pending[ev.vc]--
			op.pendingSum--
			if n.checks != nil {
				n.checks.CreditReturn(topo.RouterID(ev.router), int(ev.port), int(ev.vc), op.credits[ev.vc])
			}
		case evDeliver:
			if n.par {
				sh.pendDel = append(sh.pendDel, ev)
				continue
			}
			n.deliverEvent(sh, ev)
		}
	}
}

// deliverEvent applies one ejection event: counters, hooks, transfer
// accounting, and packet recycling into home's arena (the shard that
// owns the packet's source, so steady-state packet objects circulate
// back to the arena they are allocated from). Runs on the caller thread:
// inline in the sequential scheduler, from mergeDeliveries in parallel.
func (n *Network) deliverEvent(home *shard, ev event) {
	n.flitsDelivered++
	if n.tracer != nil {
		n.tracer.Record(telemetry.FlitEvent{
			Cycle: n.cycle, Kind: telemetry.EvEject, Packet: ev.pkt.ID,
			Src: int(ev.pkt.Src), Dst: int(ev.pkt.Dst),
			Router: int(ev.router), Port: int(ev.port), VC: -1, Tail: ev.tail,
		})
	}
	if n.checks != nil {
		n.checks.Eject(ev.pkt, topo.RouterID(ev.router), int(ev.port), ev.tail)
	}
	if !ev.tail {
		return
	}
	n.deliveredTotal++
	if ev.pkt.Measured {
		n.measDelivered++
	}
	if n.xfers != nil {
		n.completeTransfer(ev.pkt)
	}
	if n.onDeliver != nil {
		n.onDeliver(ev.pkt, n.cycle)
	}
	home.arena.freePacket(ev.pkt)
}

// inject moves flits from source backlogs into their routers' terminal
// input buffers, one flit per node per cycle (terminal channel
// bandwidth). Multi-flit packets stream over PacketSize cycles. Only
// sources on the active worklist (a packet mid-injection or a non-empty
// backlog) are visited; a source that runs dry leaves the list until the
// next arrival wakes it.
func (sh *shard) inject() {
	if sh.n.stepAll {
		for i := sh.s0; i < sh.s1; i++ {
			sh.injectSource(i)
		}
		return
	}
	for w := range sh.activeS {
		for word := sh.activeS[w]; word != 0; word &= word - 1 {
			b := bits.TrailingZeros64(word)
			if !sh.injectSource(sh.s0 + w<<6 + b) {
				sh.activeS[w] &^= 1 << uint(b)
			}
		}
	}
}

// injectSource advances one source's injection by up to one flit and
// reports whether the source still has pending work (and so must stay on
// the worklist).
func (sh *shard) injectSource(i int) bool {
	n := sh.n
	s := &n.sources[i]
	if s.cur == nil {
		if s.backlogLen() == 0 {
			return false // empty: drop from the worklist
		}
		if s.peekTS() > n.cycle {
			return true // the next (trace) arrival is in the future
		}
		a := s.pop()
		p := sh.arena.allocPacket()
		if n.par {
			// Shards cannot share a sequence counter without coordination.
			// (materialization cycle, source index) is the exact order the
			// sequential counter hands IDs out in, so this keying preserves
			// every ID comparison the age arbiter can make while staying
			// shard-local. Values differ from sequential IDs; order does not.
			p.ID = n.cycle*int64(n.g.NumNodes) + int64(i)
		} else {
			p.ID = n.nextID
			n.nextID++
		}
		p.Src = s.node
		if a.hasDst {
			p.Dst = a.dst
		} else {
			p.Dst = n.wl.Dest(s.node, s.rng)
		}
		p.Phase = PhaseNew
		p.InjectCycle = a.ts
		p.NetworkCycle = n.cycle
		p.Measured = a.ts >= n.measStart && a.ts < n.measEnd
		s.cur = p
		s.remaining = n.cfg.PacketSize
		sh.injected++
		if n.par {
			// Transfer registration and the materialization callback touch
			// caller-owned state; defer them to the barrier, where the
			// coordinator applies them in sequential (shard, source) order.
			if a.xfer != nil || n.onMaterialize != nil {
				sh.mat = append(sh.mat, matEntry{pkt: p, xfer: a.xfer})
			}
		} else {
			if a.xfer != nil {
				n.registerTransfer(p, a.xfer)
			}
			if n.onMaterialize != nil {
				n.onMaterialize(p)
			}
		}
	}
	r := n.g.NodeRouter[s.node]
	inPort := n.g.InjPort[s.node]
	rt := &n.routers[r]
	ip := &rt.in[inPort]
	q := &ip.vcs[0]
	if q.full() {
		return true
	}
	s.remaining--
	tail := s.remaining == 0
	q.push(flit{pkt: s.cur, tail: tail})
	sh.wakeVC(rt, ip, 0)
	sh.flitsInjected++
	if n.tracer != nil {
		n.tracer.Record(telemetry.FlitEvent{
			Cycle: n.cycle, Kind: telemetry.EvInject, Packet: s.cur.ID,
			Src: int(s.cur.Src), Dst: int(s.cur.Dst),
			Router: int(r), Port: inPort, VC: 0, Tail: tail,
		})
	}
	if n.checks != nil {
		n.checks.Inject(s.cur, r, inPort, tail)
	}
	if tail {
		s.cur = nil
	}
	return s.cur != nil || s.backlogLen() > 0
}

// PacketSize returns the configured flits per packet.
func (n *Network) PacketSize() int { return n.cfg.PacketSize }

// Inventory counts every flit currently alive inside the simulator:
// buffered in routers plus in flight on channels (including flits whose
// delivery event is pending, and flits staged in cross-shard outboxes).
// Used by conservation tests.
func (n *Network) Inventory() (buffered, inFlight int) {
	for r := range n.routers {
		for p := range n.routers[r].in {
			for v := range n.routers[r].in[p].vcs {
				buffered += n.routers[r].in[p].vcs[v].count
			}
		}
	}
	for _, sh := range n.sh {
		for _, evs := range sh.calendar {
			for _, ev := range evs {
				if ev.kind == evFlit || ev.kind == evDeliver {
					inFlight++
				}
			}
		}
		for _, box := range sh.outbox {
			for _, x := range box {
				if x.ev.kind == evFlit || x.ev.kind == evDeliver {
					inFlight++
				}
			}
		}
	}
	return buffered, inFlight
}

// Totals returns lifetime counters: packets materialized into the network
// and packets fully delivered.
func (n *Network) Totals() (injected, delivered int64) {
	for _, sh := range n.sh {
		injected += sh.injected
	}
	return injected, n.deliveredTotal
}

// FlitTotals returns lifetime flit counters: flits that entered a
// terminal input buffer and flits that left an ejection channel.
func (n *Network) FlitTotals() (injected, delivered int64) {
	for _, sh := range n.sh {
		injected += sh.flitsInjected
	}
	return injected, n.flitsDelivered
}

// Backlog returns the number of generated-but-not-yet-materialized packets
// waiting in source queues.
func (n *Network) Backlog() int64 {
	var b int64
	for i := range n.sources {
		b += int64(n.sources[i].backlogLen())
	}
	return b
}
