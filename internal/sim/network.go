package sim

import (
	"fmt"
	"math/bits"

	"flatnet/internal/rng"
	"flatnet/internal/telemetry"
	"flatnet/internal/topo"
)

// Config holds the router microarchitecture parameters of a simulation.
type Config struct {
	// Seed drives every random stream in the simulation. Identical seeds
	// and configurations produce identical results.
	Seed uint64
	// BufPerPort is the total flit buffering per input port, divided
	// evenly among the algorithm's virtual channels (§3.2 uses 32).
	BufPerPort int
	// Speedup limits how many flits one input port may forward per cycle
	// across its VCs. 0 means unlimited — the paper's "sufficient switch
	// speedup", which leaves channel bandwidth as the only constraint.
	Speedup int
	// PacketSize is the number of flits per packet (default 1, the
	// paper's configuration; §3.2 notes packet size does not change the
	// comparisons). Multi-flit packets use wormhole switching: the head
	// flit routes and acquires the downstream virtual channel, body flits
	// follow in order, and the tail flit releases the channel.
	PacketSize int
	// AgeArbiter switches switch allocation from round-robin to
	// oldest-packet-first. Age-based arbitration is the classic remedy
	// (GOAL; Singh et al., the paper's refs [27][28]) for the
	// post-saturation throughput instability that locally-fair
	// round-robin exhibits on multi-hop patterns such as tornado on a
	// torus ring.
	AgeArbiter bool
	// RouterDelay adds a fixed per-hop pipeline delay in cycles: a flit
	// arriving at a router becomes routable RouterDelay cycles later.
	// 0 models the paper's single-cycle router (§3.2); real high-radix
	// parts (YARC) have deep pipelines.
	RouterDelay int
}

// DefaultConfig mirrors the paper's §3.2 router: 32 flits of buffering per
// port, single-flit packets, and sufficient speedup.
func DefaultConfig() Config {
	return Config{Seed: 1, BufPerPort: 32, Speedup: 0, PacketSize: 1}
}

// flit is one flow-control unit of a packet.
type flit struct {
	pkt  *Packet
	tail bool
}

// vcq is a fixed-capacity flit FIFO: one virtual-channel buffer. The
// routing decision applies to the packet currently being forwarded (from
// its head flit reaching the queue head until its tail flit departs);
// per-VC FIFO channel order guarantees packets never interleave within
// one input VC.
type vcq struct {
	buf      []flit
	head     int
	count    int
	routed   bool   // current packet has a routing decision
	headSent bool   // current packet's head flit has departed
	out      OutRef // the decision, valid when routed
}

func (q *vcq) full() bool  { return q.count == len(q.buf) }
func (q *vcq) empty() bool { return q.count == 0 }

func (q *vcq) peek() flit { return q.buf[q.head] }

func (q *vcq) push(f flit) {
	q.buf[(q.head+q.count)%len(q.buf)] = f
	q.count++
}

func (q *vcq) pop() flit {
	f := q.buf[q.head]
	q.buf[q.head] = flit{}
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	if f.tail {
		q.routed = false
		q.headSent = false
	} else {
		q.headSent = true
	}
	return f
}

type inPort struct {
	kind     topo.PortKind
	peer     topo.RouterID // upstream router for Network inputs
	peerPort int
	// creditLat is the cycles a credit takes to reach the upstream
	// router: the reverse-channel latency (mirrors the forward channel).
	creditLat int
	// occ has bit v set when vcs[v] is non-empty, so the per-cycle route
	// and switch loops skip empty buffers without touching their memory —
	// the dominant cost on large, lightly-loaded networks. This caps the
	// simulator at 64 VCs (checked in New).
	occ uint64
	vcs []vcq
}

type outPort struct {
	kind       topo.PortKind
	peer       topo.RouterID
	peerPort   int
	node       topo.NodeID
	latency    int
	credits    []int     // per VC free slots downstream; nil for Terminal outputs
	pending    []int     // queue estimate per VC (routed here + in flight + downstream occupancy)
	delta      []int     // same-cycle reservations, folded into pending after allocation
	pendingSum int       // sum of pending over VCs, maintained incrementally for O(1) QueueEstPort
	deltaSum   int       // sum of delta over VCs
	owner      []*Packet // per VC: packet holding the downstream VC (wormhole); nil entries mean free
	rr         int       // round-robin pointer for switch allocation
	nextFree   int64     // first cycle at which the channel can transmit another flit
	flitsSent  int64     // traffic counter for utilization reporting
}

type router struct {
	id  topo.RouterID
	in  []inPort
	out []outPort
	rng *rng.Source

	occVCs  int32     // occupied input VCs; > 0 keeps the router on the active worklist
	touched []int32   // (port*vcs + vc) entries with nonzero delta this cycle
	grants  []int16   // per-input-port grants this cycle
	reqs    [][]int32 // per-output requester list, entries are (inport*vcs... see reqKey)
	granted []bool    // per-reqKey grant scratch for the age arbiter; nil unless AgeArbiter
}

// event kinds for the cycle calendar.
const (
	evFlit uint8 = iota
	evCredit
	evDeliver
)

type event struct {
	kind   uint8
	tail   bool
	vc     int32
	router int32
	port   int32
	pkt    *Packet
}

// Network is one instantiated simulation: a topology graph, a routing
// algorithm, router state, traffic sources, and measurement hooks.
type Network struct {
	g   *topo.Graph
	alg Algorithm
	cfg Config

	vcs     int
	vcDepth int

	cycle    int64
	routers  []router
	sources  []source
	calendar [][]event
	maxLat   int

	// view is the single RouterView instance handed to every Route call;
	// reusing it keeps route allocation free of per-flit allocations.
	view RouterView

	// activeR and activeS are the active worklists: bit r of activeR is
	// set while router r holds at least one buffered flit, bit i of
	// activeS while source i has a packet mid-injection or a backlog.
	// Route, switch and inject scan only set bits (in ascending order, so
	// behaviour is bit-identical to a full scan), making a cycle's cost
	// proportional to active state rather than network size. stepAll
	// disables the worklists (full scans) — the equivalence oracle used by
	// the worklist property tests.
	activeR []uint64
	activeS []uint64
	stepAll bool

	arena  arena
	nextID int64

	// Measurement state, managed by the run harnesses.
	measStart, measEnd int64 // packets injected in [measStart, measEnd) are measured
	statsStart         int64 // start of the channel-utilization window
	onDeliver          func(p *Packet, cycle int64)
	onMaterialize      func(p *Packet)

	// xfers maps in-flight transfer packets (StartTransfer) to their
	// handles; nil until the first transfer, so ordinary runs pay one nil
	// check per materialization and delivery.
	xfers map[*Packet]*Transfer

	// Telemetry and sanitizer hooks; nil (the default) means every
	// pipeline hook is a single pointer check — the zero-overhead-when-off
	// contract that BenchmarkTelemetryOff and BenchmarkChecksOff guard.
	probes *Probes
	tracer *telemetry.Tracer
	checks *CheckHooks

	injectedTotal  int64 // packets materialized into the network
	deliveredTotal int64 // packets fully delivered (tail flit ejected)
	flitsInjected  int64
	flitsDelivered int64
	measCreated    int64
	measDelivered  int64
}

// New builds a Network over the given channel graph. The algorithm's VC
// count determines the per-VC buffer depth: cfg.BufPerPort / NumVCs
// (minimum 1).
func New(g *topo.Graph, alg Algorithm, cfg Config) (*Network, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if cfg.BufPerPort < 1 {
		return nil, fmt.Errorf("sim: BufPerPort must be >= 1, got %d", cfg.BufPerPort)
	}
	if cfg.PacketSize == 0 {
		cfg.PacketSize = 1
	}
	if cfg.PacketSize < 1 {
		return nil, fmt.Errorf("sim: PacketSize must be >= 1, got %d", cfg.PacketSize)
	}
	if cfg.RouterDelay < 0 {
		return nil, fmt.Errorf("sim: RouterDelay must be >= 0, got %d", cfg.RouterDelay)
	}
	vcs := alg.NumVCs()
	if vcs < 1 {
		return nil, fmt.Errorf("sim: algorithm %q needs at least 1 VC", alg.Name())
	}
	if vcs > 64 {
		return nil, fmt.Errorf("sim: algorithm %q needs %d VCs, more than the supported 64", alg.Name(), vcs)
	}
	depth := cfg.BufPerPort / vcs
	if depth < 1 {
		depth = 1
	}
	n := &Network{
		g:         g,
		alg:       alg,
		cfg:       cfg,
		vcs:       vcs,
		vcDepth:   depth,
		measStart: -1,
		measEnd:   -1,
	}
	master := rng.New(cfg.Seed)
	n.routers = make([]router, len(g.Routers))
	maxLat := 1
	for r := range g.Routers {
		rd := &g.Routers[r]
		rt := &n.routers[r]
		rt.id = topo.RouterID(r)
		rt.rng = rng.New(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(r+1)))
		rt.in = make([]inPort, len(rd.In))
		for p := range rd.In {
			ip := &rt.in[p]
			ip.kind = rd.In[p].Kind
			ip.peer = rd.In[p].Peer
			ip.peerPort = rd.In[p].PeerPort
			if ip.kind == topo.Network {
				ip.creditLat = g.Routers[ip.peer].Out[ip.peerPort].Latency
			}
			switch ip.kind {
			case topo.Network:
				ip.vcs = make([]vcq, vcs)
				for v := range ip.vcs {
					ip.vcs[v].buf = make([]flit, depth)
				}
			case topo.Terminal:
				// The terminal (injection) buffer is a single logical VC
				// holding the full per-port buffering.
				ip.vcs = make([]vcq, 1)
				ip.vcs[0].buf = make([]flit, cfg.BufPerPort)
			}
		}
		rt.out = make([]outPort, len(rd.Out))
		for p := range rd.Out {
			op := &rt.out[p]
			op.kind = rd.Out[p].Kind
			op.peer = rd.Out[p].Peer
			op.peerPort = rd.Out[p].PeerPort
			op.node = rd.Out[p].Node
			op.latency = rd.Out[p].Latency
			if op.latency > maxLat {
				maxLat = op.latency
			}
			switch op.kind {
			case topo.Network:
				op.credits = make([]int, vcs)
				for v := range op.credits {
					op.credits[v] = depth
				}
				op.pending = make([]int, vcs)
				op.delta = make([]int, vcs)
				op.owner = make([]*Packet, vcs)
			case topo.Terminal:
				op.pending = make([]int, vcs)
				op.delta = make([]int, vcs)
			}
		}
		rt.grants = make([]int16, len(rd.In))
		rt.reqs = make([][]int32, len(rd.Out))
		// touched holds at most one entry per occupied input VC.
		rt.touched = make([]int32, 0, len(rd.In)*vcs)
		if cfg.AgeArbiter {
			rt.granted = make([]bool, len(rd.In)*(vcs+1))
		}
	}
	n.view.n = n
	n.activeR = make([]uint64, (len(g.Routers)+63)/64)
	n.activeS = make([]uint64, (g.NumNodes+63)/64)
	n.maxLat = maxLat
	// The calendar ring must cover the worst-case scheduling horizon: the
	// channel latency plus router pipeline delay plus the per-channel
	// staging backlog, which credits bound to the downstream per-port
	// buffering.
	n.calendar = make([][]event, maxLat+cfg.RouterDelay+cfg.BufPerPort+2)
	n.sources = make([]source, g.NumNodes)
	for i := range n.sources {
		n.sources[i].node = topo.NodeID(i)
		n.sources[i].rng = master.Split()
	}
	_ = master
	return n, nil
}

// Cycle returns the current simulation time.
func (n *Network) Cycle() int64 { return n.cycle }

// NumNodes returns the number of terminals.
func (n *Network) NumNodes() int { return n.g.NumNodes }

// VCs returns the virtual-channel count in use.
func (n *Network) VCs() int { return n.vcs }

// VCDepth returns the per-VC buffer depth in flits.
func (n *Network) VCDepth() int { return n.vcDepth }

// allocPacket takes a packet from the arena's freelist or allocates one.
func (n *Network) allocPacket() *Packet { return n.arena.allocPacket() }

func (n *Network) freePacket(p *Packet) { n.arena.freePacket(p) }

// schedule enqueues an event delay cycles in the future. Slot growth goes
// through the arena so backing arrays are recycled across calendar slots
// and the steady state schedules without allocating.
func (n *Network) schedule(delay int, ev event) {
	slot := (n.cycle + int64(delay)) % int64(len(n.calendar))
	evs := n.calendar[slot]
	if len(evs) == cap(evs) {
		evs = n.arena.growEvents(evs)
	}
	n.calendar[slot] = append(evs, ev)
}

// wakeVC marks input VC (ip, vc) occupied and puts the router on the
// active worklist. Idempotent when the bit is already set.
func (n *Network) wakeVC(rt *router, ip *inPort, vc int) {
	if ip.occ&(1<<uint(vc)) != 0 {
		return
	}
	ip.occ |= 1 << uint(vc)
	if rt.occVCs == 0 {
		r := uint(rt.id)
		n.activeR[r>>6] |= 1 << (r & 63)
	}
	rt.occVCs++
}

// clearVC marks input VC (ip, vc) empty, dropping the router from the
// worklist when it was its last occupied VC. The bit must be set.
func (n *Network) clearVC(rt *router, ip *inPort, vc int) {
	ip.occ &^= 1 << uint(vc)
	rt.occVCs--
	if rt.occVCs == 0 {
		r := uint(rt.id)
		n.activeR[r>>6] &^= 1 << (r & 63)
	}
}

// wakeSource puts source i on the injection worklist.
func (n *Network) wakeSource(i int) {
	n.activeS[i>>6] |= 1 << (uint(i) & 63)
}

// Step advances the simulation by one cycle.
func (n *Network) Step() {
	n.processEvents()
	n.inject()
	n.routeAllocate()
	n.switchAllocate()
	if n.probes != nil && n.cycle%n.probes.stride == 0 {
		n.sampleProbes()
	}
	if n.checks != nil {
		n.checks.EndCycle()
	}
	n.cycle++
}

// processEvents applies flit arrivals, credit returns and deliveries
// scheduled for the current cycle.
func (n *Network) processEvents() {
	slot := n.cycle % int64(len(n.calendar))
	evs := n.calendar[slot]
	n.calendar[slot] = evs[:0]
	for _, ev := range evs {
		switch ev.kind {
		case evFlit:
			rt := &n.routers[ev.router]
			ip := &rt.in[ev.port]
			ip.vcs[ev.vc].push(flit{pkt: ev.pkt, tail: ev.tail})
			n.wakeVC(rt, ip, int(ev.vc))
		case evCredit:
			op := &n.routers[ev.router].out[ev.port]
			op.credits[ev.vc]++
			op.pending[ev.vc]--
			op.pendingSum--
			if n.checks != nil {
				n.checks.CreditReturn(topo.RouterID(ev.router), int(ev.port), int(ev.vc), op.credits[ev.vc])
			}
		case evDeliver:
			n.flitsDelivered++
			if n.tracer != nil {
				n.tracer.Record(telemetry.FlitEvent{
					Cycle: n.cycle, Kind: telemetry.EvEject, Packet: ev.pkt.ID,
					Src: int(ev.pkt.Src), Dst: int(ev.pkt.Dst),
					Router: int(ev.router), Port: int(ev.port), VC: -1, Tail: ev.tail,
				})
			}
			if n.checks != nil {
				n.checks.Eject(ev.pkt, topo.RouterID(ev.router), int(ev.port), ev.tail)
			}
			if !ev.tail {
				break
			}
			n.deliveredTotal++
			if ev.pkt.Measured {
				n.measDelivered++
			}
			if n.xfers != nil {
				n.completeTransfer(ev.pkt)
			}
			if n.onDeliver != nil {
				n.onDeliver(ev.pkt, n.cycle)
			}
			n.freePacket(ev.pkt)
		}
	}
}

// inject moves flits from source backlogs into their routers' terminal
// input buffers, one flit per node per cycle (terminal channel
// bandwidth). Multi-flit packets stream over PacketSize cycles. Only
// sources on the active worklist (a packet mid-injection or a non-empty
// backlog) are visited; a source that runs dry leaves the list until the
// next arrival wakes it.
func (n *Network) inject() {
	if n.stepAll {
		for i := range n.sources {
			n.injectSource(i)
		}
		return
	}
	for w := range n.activeS {
		for word := n.activeS[w]; word != 0; word &= word - 1 {
			b := bits.TrailingZeros64(word)
			if !n.injectSource(w<<6 + b) {
				n.activeS[w] &^= 1 << uint(b)
			}
		}
	}
}

// injectSource advances one source's injection by up to one flit and
// reports whether the source still has pending work (and so must stay on
// the worklist).
func (n *Network) injectSource(i int) bool {
	s := &n.sources[i]
	if s.cur == nil {
		if s.backlogLen() == 0 {
			return false // empty: drop from the worklist
		}
		if s.peekTS() > n.cycle {
			return true // the next (trace) arrival is in the future
		}
		a := s.pop()
		p := n.allocPacket()
		p.ID = n.nextID
		n.nextID++
		p.Src = s.node
		if a.hasDst {
			p.Dst = a.dst
		} else {
			p.Dst = s.draw()
		}
		p.Phase = PhaseNew
		p.InjectCycle = a.ts
		p.NetworkCycle = n.cycle
		p.Measured = a.ts >= n.measStart && a.ts < n.measEnd
		s.cur = p
		s.remaining = n.cfg.PacketSize
		n.injectedTotal++
		if a.xfer != nil {
			n.registerTransfer(p, a.xfer)
		}
		if n.onMaterialize != nil {
			n.onMaterialize(p)
		}
	}
	r := n.g.NodeRouter[s.node]
	inPort := n.g.InjPort[s.node]
	rt := &n.routers[r]
	ip := &rt.in[inPort]
	q := &ip.vcs[0]
	if q.full() {
		return true
	}
	s.remaining--
	tail := s.remaining == 0
	q.push(flit{pkt: s.cur, tail: tail})
	n.wakeVC(rt, ip, 0)
	n.flitsInjected++
	if n.tracer != nil {
		n.tracer.Record(telemetry.FlitEvent{
			Cycle: n.cycle, Kind: telemetry.EvInject, Packet: s.cur.ID,
			Src: int(s.cur.Src), Dst: int(s.cur.Dst),
			Router: int(r), Port: inPort, VC: 0, Tail: tail,
		})
	}
	if n.checks != nil {
		n.checks.Inject(s.cur, r, inPort, tail)
	}
	if tail {
		s.cur = nil
	}
	return s.cur != nil || s.backlogLen() > 0
}

// PacketSize returns the configured flits per packet.
func (n *Network) PacketSize() int { return n.cfg.PacketSize }

// Inventory counts every flit currently alive inside the simulator:
// buffered in routers plus in flight on channels (including flits whose
// delivery event is pending). Used by conservation tests.
func (n *Network) Inventory() (buffered, inFlight int) {
	for r := range n.routers {
		for p := range n.routers[r].in {
			for v := range n.routers[r].in[p].vcs {
				buffered += n.routers[r].in[p].vcs[v].count
			}
		}
	}
	for _, evs := range n.calendar {
		for _, ev := range evs {
			if ev.kind == evFlit || ev.kind == evDeliver {
				inFlight++
			}
		}
	}
	return buffered, inFlight
}

// Totals returns lifetime counters: packets materialized into the network
// and packets fully delivered.
func (n *Network) Totals() (injected, delivered int64) {
	return n.injectedTotal, n.deliveredTotal
}

// FlitTotals returns lifetime flit counters: flits that entered a
// terminal input buffer and flits that left an ejection channel.
func (n *Network) FlitTotals() (injected, delivered int64) {
	return n.flitsInjected, n.flitsDelivered
}

// Backlog returns the number of generated-but-not-yet-materialized packets
// waiting in source queues.
func (n *Network) Backlog() int64 {
	var b int64
	for i := range n.sources {
		b += int64(n.sources[i].backlogLen())
	}
	return b
}
