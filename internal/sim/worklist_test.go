package sim_test

import (
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/traffic"
)

// delivery is one observed packet delivery, in order.
type delivery struct {
	cycle    int64
	src, dst int
	inject   int64
	hops     int
}

// runScheduler drives one network to quiescence and returns its delivery
// sequence. stepAll selects the debug full-scan scheduler; false uses the
// active worklists.
func runScheduler(t *testing.T, ff *core.FlatFly, algName string, cfg sim.Config, load float64, cycles int, stepAll bool) []delivery {
	t.Helper()
	alg, err := routing.NewFlatFlyAlgorithm(algName, ff)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BufPerPort < alg.NumVCs()*cfg.PacketSize {
		cfg.BufPerPort = alg.NumVCs() * cfg.PacketSize
	}
	n, err := sim.New(ff.Graph(), alg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetStepAll(n, stepAll)
	n.SetPattern(traffic.NewUniform(n.NumNodes()))
	var out []delivery
	n.OnDeliver(func(p *sim.Packet, cycle int64) {
		out = append(out, delivery{
			cycle: cycle, src: int(p.Src), dst: int(p.Dst),
			inject: p.InjectCycle, hops: p.Hops,
		})
	})
	for i := 0; i < cycles; i++ {
		n.GenerateBernoulli(load)
		n.Step()
	}
	for i := 0; i < 20000 && !n.Quiescent(); i++ {
		n.Step()
	}
	if !n.Quiescent() {
		t.Fatalf("network failed to drain (alg=%s load=%.2f stepAll=%v)", algName, load, stepAll)
	}
	return out
}

func diffDeliveries(t *testing.T, full, work []delivery, label string) {
	t.Helper()
	if len(full) != len(work) {
		t.Fatalf("%s: delivery counts differ: full-scan %d vs worklist %d", label, len(full), len(work))
	}
	for i := range full {
		if full[i] != work[i] {
			t.Fatalf("%s: delivery %d differs:\n  full-scan: %+v\n  worklist:  %+v", label, i, full[i], work[i])
		}
	}
}

// TestWorklistMatchesStepAll is the scheduler-equivalence property: the
// active-worklist scheduler (which skips idle routers and sources) must
// deliver exactly the same packets, in the same order, at the same
// cycles, as the full-scan scheduler — across every FB routing algorithm.
// Skipping may only elide work that provably does nothing.
func TestWorklistMatchesStepAll(t *testing.T) {
	ff, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"min", "val", "ugal", "ugal-s", "clos"} {
		for _, load := range []float64{0.05, 0.4, 0.9} {
			cfg := sim.DefaultConfig()
			full := runScheduler(t, ff, alg, cfg, load, 300, true)
			work := runScheduler(t, ff, alg, cfg, load, 300, false)
			if len(full) == 0 {
				t.Fatalf("%s load %.2f delivered nothing", alg, load)
			}
			diffDeliveries(t, full, work, alg)
		}
	}
}

// FuzzWorklistEquivalence fuzzes simulator configurations (topology
// shape, buffering, speedup, packet size, algorithm, load, seed) and
// requires the worklist and full-scan schedulers to produce identical
// delivery sequences — the FuzzInvariants harness aimed at scheduler
// equivalence rather than conservation.
func FuzzWorklistEquivalence(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(0), uint8(16), uint8(0), uint8(1), uint8(40), uint64(1))
	f.Add(uint8(2), uint8(3), uint8(2), uint8(8), uint8(1), uint8(4), uint8(80), uint64(2))
	f.Add(uint8(3), uint8(2), uint8(4), uint8(4), uint8(2), uint8(6), uint8(60), uint64(3))
	f.Add(uint8(4), uint8(3), uint8(3), uint8(32), uint8(0), uint8(2), uint8(90), uint64(4))
	f.Fuzz(func(t *testing.T, k, n, algSel, buf, speedup, pktSize, loadPct uint8, seed uint64) {
		ks := 2 + int(k)%3 // 2..4
		ns := 2 + int(n)%2 // 2..3
		ps := 1 + int(pktSize)%6
		cfg := sim.Config{
			Seed:       seed,
			BufPerPort: ps * (1 + int(buf)%4),
			Speedup:    int(speedup) % 3,
			PacketSize: ps,
		}
		ff, err := core.NewFlatFly(ks, ns)
		if err != nil {
			t.Fatal(err)
		}
		algs := []string{"min", "val", "ugal", "ugal-s", "clos"}
		alg := algs[int(algSel)%len(algs)]
		load := float64(int(loadPct)%101) / 100
		full := runScheduler(t, ff, alg, cfg, load, 200, true)
		work := runScheduler(t, ff, alg, cfg, load, 200, false)
		diffDeliveries(t, full, work, alg)
	})
}
