package core

import (
	"math"
	"testing"
)

func TestNetworkSizeFig2(t *testing.T) {
	// §2.1: "with k' = 61, a network with just three dimensions scales to
	// 64K nodes"; and k'=63, n'=1 gives 1K.
	if got := NetworkSize(61, 3); math.Abs(got-65536) > 1 {
		t.Errorf("NetworkSize(61,3) = %v, want 65536", got)
	}
	if got := NetworkSize(63, 1); math.Abs(got-1024) > 1 {
		t.Errorf("NetworkSize(63,1) = %v, want 1024", got)
	}
	// Low radix scales poorly: k'=15, n'=1 -> k=8 -> 64 nodes.
	if got := NetworkSize(15, 1); math.Abs(got-64) > 1 {
		t.Errorf("NetworkSize(15,1) = %v, want 64", got)
	}
	// Monotone in both arguments.
	if NetworkSize(32, 2) >= NetworkSize(64, 2) {
		t.Error("NetworkSize not increasing in k'")
	}
	if NetworkSize(61, 2) >= NetworkSize(61, 3) {
		t.Error("NetworkSize not increasing in n' for high radix")
	}
	if NetworkSize(0, 1) != 0 {
		t.Error("NetworkSize should be 0 for degenerate radix")
	}
}

func TestConfigsForNTable4(t *testing.T) {
	// Table 4: N = 4K configurations.
	want := []Config{
		{K: 64, N: 2, KPrime: 127, NPrime: 1, Nodes: 4096},
		{K: 16, N: 3, KPrime: 46, NPrime: 2, Nodes: 4096},
		{K: 8, N: 4, KPrime: 29, NPrime: 3, Nodes: 4096},
		{K: 4, N: 6, KPrime: 19, NPrime: 5, Nodes: 4096},
		// The paper's Table 4 prints k'=12 for this row, which is
		// inconsistent with its own formula k' = n(k-1)+1 = 13; we follow
		// the formula.
		{K: 2, N: 12, KPrime: 13, NPrime: 11, Nodes: 4096},
	}
	got := ConfigsForN(4096)
	if len(got) != len(want) {
		t.Fatalf("got %d configs %v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("config[%d] = %+v, want %+v", i, got[i], w)
		}
	}
}

func TestConfigsForN1024(t *testing.T) {
	got := ConfigsForN(1024)
	// 1024 = 32^2 = 4^5 = 2^10 (and not a perfect cube etc.).
	want := []Config{
		{K: 32, N: 2, KPrime: 63, NPrime: 1, Nodes: 1024},
		{K: 4, N: 5, KPrime: 16, NPrime: 4, Nodes: 1024},
		{K: 2, N: 10, KPrime: 11, NPrime: 9, Nodes: 1024},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("config[%d] = %+v, want %+v", i, got[i], w)
		}
	}
}

func TestFixedRadixConfig(t *testing.T) {
	// §5.1.2: with radix-64 routers, n'=1 requires k'=63 to scale to 1K
	// nodes, and n'=3 requires k'=61 to scale to 64K.
	np, kp, max, err := FixedRadixConfig(64, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if np != 1 || kp != 63 || max != 1024 {
		t.Errorf("FixedRadixConfig(64,1024) = n'=%d k'=%d max=%d, want 1/63/1024", np, kp, max)
	}
	np, kp, max, err = FixedRadixConfig(64, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if np != 3 || kp != 61 || max != 65536 {
		t.Errorf("FixedRadixConfig(64,65536) = n'=%d k'=%d max=%d, want 3/61/65536", np, kp, max)
	}
	// 4K with radix 64: n'=1 scales to 32^2=1024 < 4096, n'=2 scales to
	// floor(64/3)^3 = 21^3 = 9261 >= 4096.
	np, kp, _, err = FixedRadixConfig(64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if np != 2 || kp != 61 {
		t.Errorf("FixedRadixConfig(64,4096) = n'=%d k'=%d, want 2/61", np, kp)
	}
	if _, _, _, err := FixedRadixConfig(2, 100); err == nil {
		t.Error("tiny radix accepted")
	}
	if _, _, _, err := FixedRadixConfig(8, 1<<40); err == nil {
		t.Error("unreachable size accepted")
	}
}

func TestMaxNodesForRadix(t *testing.T) {
	cases := []struct{ radix, np, want int }{
		{64, 1, 1024},
		{64, 3, 65536},
		{64, 2, 21 * 21 * 21},
		{8, 1, 16},
		{8, 3, 16}, // floor(8/4)=2 -> 2^4 = 16
		{3, 2, 0},  // floor(3/3)=1 < 2: unbuildable
	}
	for _, c := range cases {
		if got := MaxNodesForRadix(c.radix, c.np); got != c.want {
			t.Errorf("MaxNodesForRadix(%d,%d) = %d, want %d", c.radix, c.np, got, c.want)
		}
	}
}

func TestIntegerRoot(t *testing.T) {
	cases := []struct{ v, n, want int }{
		{4096, 2, 64}, {4096, 3, 16}, {4096, 4, 8}, {4096, 12, 2},
		{1000, 3, 10}, {999, 3, 9}, {1, 5, 1}, {0, 2, 0},
	}
	for _, c := range cases {
		if got := integerRoot(c.v, c.n); got != c.want {
			t.Errorf("integerRoot(%d,%d) = %d, want %d", c.v, c.n, got, c.want)
		}
	}
}
