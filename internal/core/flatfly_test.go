package core

import (
	"testing"
	"testing/quick"

	"flatnet/internal/topo"
)

func mustFF(t *testing.T, k, n int, opts ...Option) *FlatFly {
	t.Helper()
	f, err := NewFlatFly(k, n, opts...)
	if err != nil {
		t.Fatalf("NewFlatFly(%d,%d): %v", k, n, err)
	}
	return f
}

func TestFlatFlyParameters(t *testing.T) {
	cases := []struct {
		k, n                        int
		nodes, routers, radix, dims int
	}{
		{4, 2, 16, 4, 7, 1},         // Fig 1(b)
		{2, 4, 16, 8, 5, 3},         // Fig 1(d)
		{32, 2, 1024, 32, 63, 1},    // §3.2 simulated network
		{16, 4, 65536, 4096, 61, 3}, // Fig 8
		{8, 4, 4096, 512, 29, 3},    // Table 4 row
	}
	for _, c := range cases {
		f := mustFF(t, c.k, c.n)
		if f.NumNodes != c.nodes || f.NumRouters != c.routers || f.Radix != c.radix || f.Dims != c.dims {
			t.Errorf("%d-ary %d-flat: got N=%d R=%d k'=%d n'=%d, want N=%d R=%d k'=%d n'=%d",
				c.k, c.n, f.NumNodes, f.NumRouters, f.Radix, f.Dims, c.nodes, c.routers, c.radix, c.dims)
		}
	}
}

func TestFlatFlyRejectsBadParams(t *testing.T) {
	if _, err := NewFlatFly(1, 2); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewFlatFly(4, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewFlatFly(4, 3, WithMultiplicity(2)); err == nil {
		t.Error("multiplicity>1 with n=3 accepted")
	}
	if _, err := NewFlatFly(4, 2, WithMultiplicity(0)); err == nil {
		t.Error("multiplicity=0 accepted")
	}
}

func TestFlatFlyGraphValid(t *testing.T) {
	for _, c := range []struct{ k, n int }{{2, 2}, {4, 2}, {2, 4}, {4, 3}, {8, 2}, {3, 3}} {
		f := mustFF(t, c.k, c.n)
		if err := f.Graph().Validate(); err != nil {
			t.Errorf("%s: %v", f.Name(), err)
		}
	}
}

func TestFlatFlyDegreeMatchesRadix(t *testing.T) {
	// Every router must use exactly k' = n(k-1)+1 ports: k terminals plus
	// (k-1) per dimension.
	f := mustFF(t, 4, 3)
	g := f.Graph()
	for r := 0; r < f.NumRouters; r++ {
		if d := g.Degree(topo.RouterID(r)); d != f.Radix {
			t.Fatalf("router %d degree %d, want %d", r, d, f.Radix)
		}
	}
}

func TestFlatFlyChannelCount(t *testing.T) {
	// §4.3: "with N = 1K network ... the flattened butterfly requires
	// 31 x 32 = 992 links" — the paper counts unidirectional channels
	// (the folded Clos figure of 2048 is likewise 1024 up + 1024 down).
	f := mustFF(t, 32, 2)
	if got := f.Graph().CountChannels(); got != 992 {
		t.Fatalf("channels = %d, want 992 unidirectional", got)
	}
}

func TestEquation1Connectivity(t *testing.T) {
	// Verify the constructed graph matches Eq. 1 exactly: in dimension d,
	// router i connects to j = i + (m - (floor(i/k^(d-1)) mod k)) * k^(d-1).
	f := mustFF(t, 4, 3)
	g := f.Graph()
	for i := 0; i < f.NumRouters; i++ {
		for d := 1; d <= f.Dims; d++ {
			pow := 1
			for x := 0; x < d-1; x++ {
				pow *= f.K
			}
			own := (i / pow) % f.K
			for m := 0; m < f.K; m++ {
				j := i + (m-own)*pow
				port := f.PortFor(d, m, 0)
				out := g.Routers[i].Out[port]
				if m == own {
					if out.Kind != topo.Unused {
						t.Fatalf("router %d dim %d self slot is %v, want Unused", i, d, out.Kind)
					}
					continue
				}
				if out.Kind != topo.Network || int(out.Peer) != j {
					t.Fatalf("router %d dim %d m=%d: port connects to %v(%d), want router %d",
						i, d, m, out.Kind, out.Peer, j)
				}
			}
		}
	}
}

func TestFig1dExamples(t *testing.T) {
	// §2.1: in Figure 1(d) (2-ary 4-flat), R4' connects to R5' in dim 1,
	// R6' in dim 2, and R0' in dim 3.
	f := mustFF(t, 2, 4)
	g := f.Graph()
	wants := map[int]int{1: 5, 2: 6, 3: 0}
	for d, peer := range wants {
		own := f.RouterDigit(4, d)
		out := g.Routers[4].Out[f.PortFor(d, 1-own, 0)]
		if out.Kind != topo.Network || int(out.Peer) != peer {
			t.Errorf("R4' dim %d: got peer %d, want %d", d, out.Peer, peer)
		}
	}
}

func TestMinHopsAndPathDiversity(t *testing.T) {
	// §2.2 example: routing from node 0 (0000_2) to node 10 (1010_2) in a
	// 2-ary 4-flat takes hops in dimensions 1 and 3, giving 2! = 2 minimal
	// routes.
	f := mustFF(t, 2, 4)
	a, b := f.RouterOf(0), f.RouterOf(10)
	if h := f.MinHops(a, b); h != 2 {
		t.Errorf("MinHops = %d, want 2", h)
	}
	if dims := f.DiffDims(a, b); len(dims) != 2 || dims[0] != 1 || dims[1] != 3 {
		t.Errorf("DiffDims = %v, want [1 3]", dims)
	}
	if c := f.MinimalRouteCount(a, b); c != 2 {
		t.Errorf("MinimalRouteCount = %d, want 2", c)
	}
	if c := f.MinimalRouteCount(a, a); c != 1 {
		t.Errorf("MinimalRouteCount(self) = %d, want 1", c)
	}
}

func TestMinimalRouteCountFactorial(t *testing.T) {
	f := mustFF(t, 2, 5) // 4 dimensions
	// Routers 0 and NumRouters-1 differ in every digit.
	if c := f.MinimalRouteCount(0, topo.RouterID(f.NumRouters-1)); c != 24 {
		t.Errorf("4 differing dims: route count = %d, want 4! = 24", c)
	}
}

func TestRouterDigitRoundTrip(t *testing.T) {
	f := mustFF(t, 4, 4)
	check := func(rr uint16) bool {
		r := topo.RouterID(int(rr) % f.NumRouters)
		digits := make([]int, f.Dims)
		for d := 1; d <= f.Dims; d++ {
			digits[d-1] = f.RouterDigit(r, d)
		}
		return f.RouterFromDigits(digits) == r
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborIn(t *testing.T) {
	f := mustFF(t, 4, 3)
	check := func(rr uint16, dd, vv uint8) bool {
		r := topo.RouterID(int(rr) % f.NumRouters)
		d := int(dd)%f.Dims + 1
		v := int(vv) % f.K
		j := f.NeighborIn(r, d, v)
		if f.RouterDigit(j, d) != v {
			return false
		}
		// All other digits unchanged.
		for x := 1; x <= f.Dims; x++ {
			if x != d && f.RouterDigit(j, x) != f.RouterDigit(r, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDimOfPortInverse(t *testing.T) {
	for _, m := range []int{1, 2} {
		f := mustFF(t, 4, 2, WithMultiplicity(m))
		for d := 1; d <= f.Dims; d++ {
			for v := 0; v < f.K; v++ {
				for c := 0; c < m; c++ {
					gd, gv := f.DimOfPort(f.PortFor(d, v, c))
					if gd != d || gv != v {
						t.Fatalf("m=%d DimOfPort(PortFor(%d,%d,%d)) = (%d,%d)", m, d, v, c, gd, gv)
					}
				}
			}
		}
		for p := 0; p < f.K; p++ {
			if gd, _ := f.DimOfPort(p); gd != 0 {
				t.Fatalf("terminal port %d classified as dim %d", p, gd)
			}
		}
	}
}

func TestNodeAddressing(t *testing.T) {
	f := mustFF(t, 8, 3)
	for node := 0; node < f.NumNodes; node += 37 {
		r := f.RouterOf(topo.NodeID(node))
		tix := f.TerminalIndex(topo.NodeID(node))
		if f.Node(r, tix) != topo.NodeID(node) {
			t.Fatalf("node %d does not round-trip through (router, terminal)", node)
		}
	}
}

func TestMultiplicityVariant(t *testing.T) {
	// Fig 14(a): a 4-ary 2-flat with doubled inter-router channels.
	f := mustFF(t, 4, 2, WithMultiplicity(2))
	if err := f.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	// Each router pair now has 2 channels each way: 4 routers, C(4,2)=6
	// pairs, 2 copies, 2 directions = 24 channels.
	if got := f.Graph().CountChannels(); got != 24 {
		t.Fatalf("channels = %d, want 24", got)
	}
}

func TestOneDimFB(t *testing.T) {
	// Fig 14(b): radix-8 routers; 4-ary 2-flat needs only 7 ports, so a
	// fifth router scales N from 16 to 20.
	f, err := NewOneDimFB(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumNodes != 20 {
		t.Fatalf("nodes = %d, want 20", f.NumNodes)
	}
	if f.Radix != 8 {
		t.Fatalf("radix = %d, want 8", f.Radix)
	}
	if err := f.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	// Complete graph: 5*4/2 = 10 bidirectional links = 20 channels.
	if got := f.Graph().CountChannels(); got != 20 {
		t.Fatalf("channels = %d, want 20", got)
	}
	if _, err := NewOneDimFB(1, 4); err == nil {
		t.Error("1 router accepted")
	}
	if _, err := NewOneDimFB(4, 0); err == nil {
		t.Error("0 concentration accepted")
	}
}

func TestOneDimEquivalentToFlatFly(t *testing.T) {
	a, err := NewOneDimFB(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := mustFF(t, 4, 2)
	if a.NumNodes != b.NumNodes || a.Radix != b.Radix {
		t.Fatalf("OneDimFB(4,4) should match 4-ary 2-flat: %+v vs radix %d", a, b.Radix)
	}
	if a.Graph().CountChannels() != b.Graph().CountChannels() {
		t.Fatal("channel counts differ between equivalent constructions")
	}
}

func TestLatencyOptions(t *testing.T) {
	f := mustFF(t, 4, 2, WithChannelLatency(5), WithTerminalLatency(3))
	g := f.Graph()
	// Inter-router channels carry the channel latency.
	own := f.RouterDigit(0, 1)
	v := (own + 1) % f.K
	if got := g.Routers[0].Out[f.PortFor(1, v, 0)].Latency; got != 5 {
		t.Errorf("channel latency = %d, want 5", got)
	}
	// Ejection ports carry the terminal latency.
	if got := g.Routers[0].Out[0].Latency; got != 3 {
		t.Errorf("terminal latency = %d, want 3", got)
	}
}

func TestOneDimHelpers(t *testing.T) {
	f, err := NewOneDimFB(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.RouterOf(9) != 2 {
		t.Errorf("RouterOf(9) = %d, want 2", f.RouterOf(9))
	}
	if f.PortTo(3) != 4+3 {
		t.Errorf("PortTo(3) = %d, want 7", f.PortTo(3))
	}
	// The port actually reaches the router.
	out := f.Graph().Routers[0].Out[f.PortTo(3)]
	if out.Peer != 3 {
		t.Errorf("PortTo(3) reaches router %d", out.Peer)
	}
}

func TestFlatteningCorrespondence(t *testing.T) {
	// §2.1: the flattened butterfly is built by merging each row of the
	// k-ary n-fly into one router, eliminating intra-row channels and
	// keeping all others. Verify the channel sets correspond exactly:
	// every inter-stage butterfly channel between different rows appears
	// as a flattened-butterfly channel between those routers, and vice
	// versa, with matching multiplicity.
	const k, n = 3, 3
	ff := mustFF(t, k, n)
	bf, err := topo.NewButterfly(k, n)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ a, b topo.RouterID }
	bfChannels := map[pair]int{}
	bg := bf.Graph()
	for r := range bg.Routers {
		_, pos := bf.StageOf(topo.RouterID(r))
		for _, out := range bg.Routers[r].Out {
			if out.Kind != topo.Network {
				continue
			}
			_, peerPos := bf.StageOf(out.Peer)
			if pos == peerPos {
				continue // intra-row channel: eliminated by flattening
			}
			bfChannels[pair{topo.RouterID(pos), topo.RouterID(peerPos)}]++
		}
	}
	ffChannels := map[pair]int{}
	fg := ff.Graph()
	for r := range fg.Routers {
		for _, out := range fg.Routers[r].Out {
			if out.Kind == topo.Network {
				ffChannels[pair{topo.RouterID(r), out.Peer}]++
			}
		}
	}
	if len(bfChannels) != len(ffChannels) {
		t.Fatalf("channel pair sets differ: butterfly %d vs flattened %d", len(bfChannels), len(ffChannels))
	}
	for p, c := range bfChannels {
		if ffChannels[p] != c {
			t.Errorf("pair %v: butterfly multiplicity %d vs flattened %d", p, c, ffChannels[p])
		}
	}
}
