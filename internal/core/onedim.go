package core

import (
	"fmt"

	"flatnet/internal/topo"
)

// OneDimFB is a single-dimension flattened butterfly generalized to an
// arbitrary router count: a complete graph of Routers routers, each
// concentrating Concentration terminals. With Routers == Concentration it
// is exactly a k-ary 2-flat; with Routers == Concentration+1 it is the
// expanded-scalability variant of Fig. 14(b), which uses the router's spare
// port to grow the network (e.g. a radix-8 router building a 4-ary 2-flat
// needs only 7 ports, so a fifth router can be added, scaling N from 16 to
// 20).
type OneDimFB struct {
	Routers       int
	Concentration int
	NumNodes      int
	Radix         int // ports used: Concentration + Routers - 1

	g *topo.Graph
}

// NewOneDimFB builds the complete-graph single-dimension flattened
// butterfly with the given router count and concentration.
func NewOneDimFB(routers, concentration int) (*OneDimFB, error) {
	if routers < 2 {
		return nil, fmt.Errorf("core: OneDimFB needs >= 2 routers, got %d", routers)
	}
	if concentration < 1 {
		return nil, fmt.Errorf("core: OneDimFB needs concentration >= 1, got %d", concentration)
	}
	f := &OneDimFB{
		Routers:       routers,
		Concentration: concentration,
		NumNodes:      routers * concentration,
		Radix:         concentration + routers - 1,
	}
	c := concentration
	// Port layout: [0, c) terminals; port c+j reaches router j (self slot Unused).
	ports := c + routers
	g := topo.NewGraph(f.Name(), f.NumNodes, routers)
	for r := range g.Routers {
		g.Routers[r].In = make([]topo.InPort, ports)
		g.Routers[r].Out = make([]topo.OutPort, ports)
	}
	for node := 0; node < f.NumNodes; node++ {
		g.AttachNode(topo.NodeID(node), topo.RouterID(node/c), node%c, node%c, 1)
	}
	for a := 0; a < routers; a++ {
		for b := a + 1; b < routers; b++ {
			g.ConnectBidi(topo.RouterID(a), c+b, topo.RouterID(b), c+a, 1)
		}
	}
	f.g = g
	return f, nil
}

// Name returns e.g. "1-flat(R=5,c=4)".
func (f *OneDimFB) Name() string {
	return fmt.Sprintf("1-flat(R=%d,c=%d)", f.Routers, f.Concentration)
}

// Graph returns the channel graph.
func (f *OneDimFB) Graph() *topo.Graph { return f.g }

// RouterOf returns the router a node attaches to.
func (f *OneDimFB) RouterOf(node topo.NodeID) topo.RouterID {
	return topo.RouterID(int(node) / f.Concentration)
}

// PortTo returns the port on router r that reaches router j; r and j must
// differ.
func (f *OneDimFB) PortTo(j topo.RouterID) int { return f.Concentration + int(j) }
