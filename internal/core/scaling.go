package core

import (
	"fmt"
	"math"
)

// Scalability implements the size-vs-radix relationships of §2.1 (Fig. 2)
// and the configuration-selection rules of §5.1 (Table 4, §5.1.2).

// NetworkSize returns the number of nodes N reachable by a flattened
// butterfly with switch radix kPrime and nPrime dimensions, following the
// construction k' = n(k-1)+1 with n = n'+1: N = k^n with
// k = (k'-1)/n + 1. The result is a real number because k need not be an
// integer for the scaling curve of Fig. 2.
func NetworkSize(kPrime float64, nPrime int) float64 {
	n := float64(nPrime + 1)
	k := (kPrime-1)/n + 1
	if k < 1 {
		return 0
	}
	return math.Pow(k, n)
}

// Config describes one (k, n) flattened-butterfly configuration and its
// derived parameters, as tabulated in Table 4 of the paper.
type Config struct {
	K      int // ary
	N      int // stages of the underlying butterfly
	KPrime int // switch radix k' = n(k-1)+1
	NPrime int // dimensions n' = n-1
	Nodes  int // k^n
}

// ConfigsForN enumerates every (k, n) with k >= 2, n >= 2 and k^n == nodes,
// ordered by increasing n. For nodes = 4096 this reproduces Table 4.
func ConfigsForN(nodes int) []Config {
	var out []Config
	for n := 2; ; n++ {
		k := integerRoot(nodes, n)
		if k < 2 {
			break
		}
		if pow(k, n) == nodes {
			out = append(out, Config{K: k, N: n, KPrime: n*(k-1) + 1, NPrime: n - 1, Nodes: nodes})
		}
	}
	return out
}

// integerRoot returns the largest k with k^n <= v.
func integerRoot(v, n int) int {
	if v < 1 {
		return 0
	}
	k := int(math.Round(math.Pow(float64(v), 1/float64(n))))
	for pow(k, n) > v {
		k--
	}
	for pow(k+1, n) <= v {
		k++
	}
	return k
}

func pow(k, n int) int {
	p := 1
	for i := 0; i < n; i++ {
		if k != 0 && p > math.MaxInt/k {
			return math.MaxInt
		}
		p *= k
	}
	return p
}

// FixedRadixConfig selects a flattened-butterfly configuration for routers
// of radix k that must scale to at least nodes terminals, per §5.1.2: the
// smallest n' with floor(k/(n'+1))^(n'+1) >= nodes. It returns the chosen
// dimensionality, the effective radix k' actually used, and the maximum
// node count of that configuration.
func FixedRadixConfig(radix, nodes int) (nPrime, kPrime, maxNodes int, err error) {
	if radix < 3 {
		return 0, 0, 0, fmt.Errorf("core: radix %d too small for any flattened butterfly", radix)
	}
	for np := 1; np+1 <= radix; np++ {
		k := radix / (np + 1) // floor(k/(n'+1)) terminals per router and per dimension
		if k < 2 {
			break
		}
		max := pow(k, np+1)
		if max >= nodes {
			return np, (k-1)*(np+1) + 1, max, nil
		}
	}
	return 0, 0, 0, fmt.Errorf("core: radix-%d routers cannot scale to %d nodes", radix, nodes)
}

// MaxNodesForRadix returns floor(k/(n'+1))^(n'+1): the largest network a
// radix-k router supports at dimensionality n' (§5.1.2).
func MaxNodesForRadix(radix, nPrime int) int {
	k := radix / (nPrime + 1)
	if k < 2 {
		return 0
	}
	return pow(k, nPrime+1)
}
