// Package core implements the paper's primary contribution: the flattened
// butterfly topology (k-ary n-flat), its node/router addressing, the
// connectivity rule of Eq. 1, and the scaling relationships of §2.1 and
// §5.1 (network size vs. radix and dimension, fixed-N and fixed-radix
// configuration selection, and the extra-port variants of Fig. 14).
package core

import (
	"fmt"
	"math"

	"flatnet/internal/topo"
)

// FlatFly is a k-ary n-flat: the flattened butterfly derived from a k-ary
// n-fly butterfly by combining the n routers of each row into one.
//
// Addressing follows §2.2 of the paper: a node address is an n-digit
// radix-k number a_{n-1}…a_0 whose digit 0 selects the terminal port on the
// router and whose digits 1…n-1 form the router index. An inter-router hop
// in dimension d ∈ [1, n'] changes digit d; the final (ejection) hop sets
// digit 0.
type FlatFly struct {
	K int // k: ary of the underlying butterfly; also terminals per router
	N int // n: number of stages of the underlying butterfly

	Dims       int // n' = n-1 inter-router dimensions
	NumNodes   int // N = k^n
	NumRouters int // k^(n-1)
	Radix      int // k' = n(k-1)+1 ports actually used per router

	// Multiplicity is the number of parallel channels between each pair of
	// connected routers (Fig. 14(a) uses 2 on a 1-D network to consume the
	// spare router port). It is 1 for the standard topology.
	Multiplicity int

	// pow[i] = k^i, up to k^n.
	pow []int

	g *topo.Graph
}

// Option configures optional FlatFly variants.
type Option func(*options)

type options struct {
	multiplicity     int
	terminalLatency  int
	channelLatency   int
	routersOverride  int // 1-D only: complete graph over this many routers
	terminalsPerRtr  int // used with routersOverride
	overrideProvided bool
}

// WithMultiplicity builds every inter-router link as m parallel channels
// (Fig. 14(a)). Only m >= 1 is accepted.
func WithMultiplicity(m int) Option {
	return func(o *options) { o.multiplicity = m }
}

// WithChannelLatency sets the inter-router channel latency in cycles
// (default 1).
func WithChannelLatency(l int) Option {
	return func(o *options) { o.channelLatency = l }
}

// WithTerminalLatency sets the node-router channel latency in cycles
// (default 1).
func WithTerminalLatency(l int) Option {
	return func(o *options) { o.terminalLatency = l }
}

// NewFlatFly constructs a k-ary n-flat. k >= 2 and n >= 2 are required
// (n = 1 would have no inter-router dimensions).
func NewFlatFly(k, n int, opts ...Option) (*FlatFly, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: k-ary n-flat needs k >= 2, got k=%d", k)
	}
	if n < 2 {
		return nil, fmt.Errorf("core: k-ary n-flat needs n >= 2, got n=%d", n)
	}
	o := options{multiplicity: 1, terminalLatency: 1, channelLatency: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.multiplicity < 1 {
		return nil, fmt.Errorf("core: multiplicity must be >= 1, got %d", o.multiplicity)
	}
	if o.multiplicity > 1 && n != 2 {
		return nil, fmt.Errorf("core: multiplicity > 1 is only supported for 1-D networks (n=2), got n=%d", n)
	}
	f := &FlatFly{
		K:            k,
		N:            n,
		Dims:         n - 1,
		Multiplicity: o.multiplicity,
	}
	f.pow = make([]int, n+1)
	f.pow[0] = 1
	for i := 1; i <= n; i++ {
		if f.pow[i-1] > math.MaxInt/k {
			return nil, fmt.Errorf("core: k=%d n=%d overflows node count", k, n)
		}
		f.pow[i] = f.pow[i-1] * k
	}
	f.NumNodes = f.pow[n]
	f.NumRouters = f.pow[n-1]
	f.Radix = n*(k-1) + 1
	f.build(o)
	return f, nil
}

// build fills in the channel graph. Port layout on every router:
//
//	ports [0, k)                       terminal ports (digit 0 of the node address)
//	ports [k + (d-1)*k*m, k + d*k*m)   dimension d, m = Multiplicity: m slots
//	                                   per target digit value; the slots for
//	                                   the router's own digit are Unused.
//
// Padding the "self" slot keeps port lookup arithmetic trivial; Validate
// and the cost model use the true radix k' = n(k-1)+1.
func (f *FlatFly) build(o options) {
	k, m := f.K, f.Multiplicity
	portsPerRouter := k + f.Dims*k*m
	g := topo.NewGraph(f.Name(), f.NumNodes, f.NumRouters)
	for r := range g.Routers {
		g.Routers[r].In = make([]topo.InPort, portsPerRouter)
		g.Routers[r].Out = make([]topo.OutPort, portsPerRouter)
	}
	for node := 0; node < f.NumNodes; node++ {
		r := topo.RouterID(node / k)
		t := node % k
		g.AttachNode(topo.NodeID(node), r, t, t, o.terminalLatency)
	}
	for r := 0; r < f.NumRouters; r++ {
		for d := 1; d <= f.Dims; d++ {
			own := f.RouterDigit(topo.RouterID(r), d)
			for v := 0; v < k; v++ {
				if v == own {
					continue
				}
				// Eq. 1: j = i + (v - digit) * k^(d-1).
				j := r + (v-own)*f.pow[d-1]
				for c := 0; c < m; c++ {
					// Connect only in one direction (r < j) to avoid
					// writing each bidirectional link twice.
					if r < j {
						g.ConnectBidi(topo.RouterID(r), f.PortFor(d, v, c),
							topo.RouterID(j), f.PortFor(d, own, c), o.channelLatency)
					}
				}
			}
		}
	}
	f.g = g
}

// Name returns e.g. "32-ary 2-flat".
func (f *FlatFly) Name() string {
	if f.Multiplicity > 1 {
		return fmt.Sprintf("%d-ary %d-flat x%d", f.K, f.N, f.Multiplicity)
	}
	return fmt.Sprintf("%d-ary %d-flat", f.K, f.N)
}

// Graph returns the channel graph.
func (f *FlatFly) Graph() *topo.Graph { return f.g }

// RouterOf returns the router a node attaches to.
func (f *FlatFly) RouterOf(node topo.NodeID) topo.RouterID {
	return topo.RouterID(int(node) / f.K)
}

// TerminalIndex returns digit 0 of the node address: the terminal port on
// the node's router.
func (f *FlatFly) TerminalIndex(node topo.NodeID) int { return int(node) % f.K }

// RouterDigit returns the router-index digit addressed by dimension
// d ∈ [1, Dims]: digit d-1 of the (n-1)-digit radix-k router index, which
// equals digit d of any node address at that router.
func (f *FlatFly) RouterDigit(r topo.RouterID, d int) int {
	return (int(r) / f.pow[d-1]) % f.K
}

// PortFor returns the output (and input) port index used by dimension d to
// reach the router whose dimension-d digit is v, on parallel channel copy
// c ∈ [0, Multiplicity). The slot where v equals the router's own digit is
// Unused.
func (f *FlatFly) PortFor(d, v, c int) int {
	return f.K + (d-1)*f.K*f.Multiplicity + v*f.Multiplicity + c
}

// DimOfPort inverts PortFor: for a network port index it returns the
// dimension and target digit value. Terminal ports return dimension 0.
func (f *FlatFly) DimOfPort(p int) (dim, digit int) {
	if p < f.K {
		return 0, p
	}
	q := (p - f.K) / f.Multiplicity
	return q/f.K + 1, q % f.K
}

// NeighborIn returns the router reached from r by setting its dimension-d
// digit to v.
func (f *FlatFly) NeighborIn(r topo.RouterID, d, v int) topo.RouterID {
	own := f.RouterDigit(r, d)
	return topo.RouterID(int(r) + (v-own)*f.pow[d-1])
}

// MinHops returns the minimal inter-router hop count between two routers:
// the number of dimensions in which their digits differ (§2.2).
func (f *FlatFly) MinHops(a, b topo.RouterID) int {
	h := 0
	for d := 1; d <= f.Dims; d++ {
		if f.RouterDigit(a, d) != f.RouterDigit(b, d) {
			h++
		}
	}
	return h
}

// DiffDims returns the dimensions (ascending) in which routers a and b
// have differing digits: the productive dimensions for a minimal route.
func (f *FlatFly) DiffDims(a, b topo.RouterID) []int {
	var dims []int
	for d := 1; d <= f.Dims; d++ {
		if f.RouterDigit(a, d) != f.RouterDigit(b, d) {
			dims = append(dims, d)
		}
	}
	return dims
}

// AvgUniformMinHops returns the expected minimal inter-router hop count
// under uniform traffic with self-traffic included: each of the n'
// dimensions differs with probability (k-1)/k, and every router hosts the
// same number of terminals, so uniform traffic over nodes is uniform over
// router pairs. Internal/check's conformance suite holds minimally-routed
// zero-load latency to this figure.
func (f *FlatFly) AvgUniformMinHops() float64 {
	return float64(f.Dims) * float64(f.K-1) / float64(f.K)
}

// MinimalRouteCount returns the number of distinct minimal routes between
// two routers: i! where i is the number of differing digits (§2.2).
func (f *FlatFly) MinimalRouteCount(a, b topo.RouterID) int {
	i := f.MinHops(a, b)
	c := 1
	for j := 2; j <= i; j++ {
		c *= j
	}
	return c
}

// RouterFromDigits assembles a router index from its radix-k digits, where
// digits[i] is the digit of dimension i+1. Missing high digits are zero.
func (f *FlatFly) RouterFromDigits(digits []int) topo.RouterID {
	r := 0
	for i, v := range digits {
		r += v * f.pow[i]
	}
	return topo.RouterID(r)
}

// Node returns the node with the given router and terminal index.
func (f *FlatFly) Node(r topo.RouterID, terminal int) topo.NodeID {
	return topo.NodeID(int(r)*f.K + terminal)
}
