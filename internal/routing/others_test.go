package routing

import (
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

func TestButterflyUniformThroughput(t *testing.T) {
	b, err := topo.NewButterfly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	thpt, err := sim.SaturationThroughput(b.Graph(), NewButterflyDest(b), sim.DefaultConfig(),
		traffic.NewUniform(b.NumNodes), 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if thpt < 0.9 {
		t.Errorf("butterfly UR throughput = %.3f, want ~1.0", thpt)
	}
}

func TestButterflyWorstCaseCollapse(t *testing.T) {
	// Fig 6(b): the conventional butterfly has no path diversity, so the
	// worst-case pattern is limited to ~1/k of capacity.
	b, err := topo.NewButterfly(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	thpt, err := sim.SaturationThroughput(b.Graph(), NewButterflyDest(b), sim.DefaultConfig(),
		traffic.NewWorstCase(8, 8), 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if thpt < 0.08 || thpt > 0.18 {
		t.Errorf("butterfly WC throughput = %.3f, want ~1/8", thpt)
	}
}

func TestButterflyDelivery(t *testing.T) {
	b, err := topo.NewButterfly(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	alg := NewButterflyDest(b)
	if alg.NumVCs() != 1 || alg.Sequential() {
		t.Fatal("butterfly routing metadata wrong")
	}
	n, err := sim.New(b.Graph(), alg, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(b.NumNodes))
	wrong := 0
	n.OnDeliver(func(p *sim.Packet, _ int64) {
		if p.Hops != b.N-1 {
			wrong++
		}
	})
	for i := 0; i < 400; i++ {
		n.GenerateBernoulli(0.3)
		n.Step()
	}
	if _, d := n.Totals(); d == 0 {
		t.Fatal("nothing delivered")
	}
	if wrong != 0 {
		t.Errorf("%d packets took the wrong number of stages", wrong)
	}
}

func TestFoldedClosTaperedUniform(t *testing.T) {
	// Fig 6(a): with bisection held equal (2:1 taper) the folded Clos
	// achieves only ~50% on uniform random traffic.
	f, err := topo.NewFoldedClos(8, 4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	thpt, err := sim.SaturationThroughput(f.Graph(), NewFoldedClosAdaptive(f), sim.DefaultConfig(),
		traffic.NewUniform(f.NumNodes), 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if thpt < 0.40 || thpt > 0.62 {
		t.Errorf("tapered Clos UR throughput = %.3f, want ~0.5", thpt)
	}
}

func TestFoldedClosWorstCase(t *testing.T) {
	// Fig 6(b): the folded Clos load-balances the worst-case pattern
	// through its middle stage, sustaining ~50%.
	f, err := topo.NewFoldedClos(8, 4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	thpt, err := sim.SaturationThroughput(f.Graph(), NewFoldedClosAdaptive(f), sim.DefaultConfig(),
		traffic.NewWorstCase(8, 8), 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if thpt < 0.40 || thpt > 0.62 {
		t.Errorf("tapered Clos WC throughput = %.3f, want ~0.5", thpt)
	}
}

func TestFoldedClosNonBlockingUniform(t *testing.T) {
	// Without taper (uplinks == terminals) the folded Clos is
	// non-blocking: ~100% on uniform traffic.
	f, err := topo.NewFoldedClos(8, 8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	thpt, err := sim.SaturationThroughput(f.Graph(), NewFoldedClosAdaptive(f), sim.DefaultConfig(),
		traffic.NewUniform(f.NumNodes), 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if thpt < 0.90 {
		t.Errorf("non-blocking Clos UR throughput = %.3f, want ~1.0", thpt)
	}
}

func TestFoldedClosHopCounts(t *testing.T) {
	f, err := topo.NewFoldedClos(4, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg := NewFoldedClosAdaptive(f)
	if !alg.Sequential() || alg.NumVCs() != 1 {
		t.Fatal("folded Clos routing metadata wrong")
	}
	n, err := sim.New(f.Graph(), alg, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(f.NumNodes))
	bad := 0
	n.OnDeliver(func(p *sim.Packet, _ int64) {
		sameLeaf := f.LeafOf(p.Src) == f.LeafOf(p.Dst)
		if sameLeaf && p.Hops != 0 {
			bad++
		}
		if !sameLeaf && p.Hops != 2 {
			bad++
		}
	})
	for i := 0; i < 400; i++ {
		n.GenerateBernoulli(0.3)
		n.Step()
	}
	if bad != 0 {
		t.Errorf("%d packets with wrong hop counts", bad)
	}
}

func TestECubeHypercube(t *testing.T) {
	h, err := topo.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	alg := NewECube(h)
	if alg.NumVCs() != 1 || alg.Sequential() {
		t.Fatal("e-cube metadata wrong")
	}
	thpt, err := sim.SaturationThroughput(h.Graph(), alg, sim.DefaultConfig(),
		traffic.NewUniform(h.NumNodes), 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if thpt < 0.9 {
		t.Errorf("hypercube UR throughput = %.3f, want ~1.0", thpt)
	}
}

func TestECubeHopsAreHammingDistance(t *testing.T) {
	h, err := topo.NewHypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.New(h.Graph(), NewECube(h), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(h.NumNodes))
	bad := 0
	n.OnDeliver(func(p *sim.Packet, _ int64) {
		if p.Hops != h.MinHops(topo.RouterID(p.Src), topo.RouterID(p.Dst)) {
			bad++
		}
	})
	for i := 0; i < 400; i++ {
		n.GenerateBernoulli(0.2)
		n.Step()
	}
	if bad != 0 {
		t.Errorf("%d packets with hops != Hamming distance", bad)
	}
	if _, d := n.Totals(); d == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestHypercubeHigherLatencyThanFlatFly(t *testing.T) {
	// Fig 6(a): the hypercube's diameter makes its zero-load latency much
	// higher than the flattened butterfly's.
	h, err := topo.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	f := ff(t, 8, 2)
	resH, err := sim.RunLoadPoint(h.Graph(), NewECube(h), sim.DefaultConfig(), sim.RunConfig{
		Load: 0.1, Pattern: traffic.NewUniform(64), Warmup: 400, Measure: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	resF, err := sim.RunLoadPoint(f.Graph(), NewMinAD(f), sim.DefaultConfig(), sim.RunConfig{
		Load: 0.1, Pattern: traffic.NewUniform(64), Warmup: 400, Measure: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resH.AvgLatency < 1.5*resF.AvgLatency {
		t.Errorf("hypercube latency %.2f should be well above flattened butterfly %.2f",
			resH.AvgLatency, resF.AvgLatency)
	}
}

func TestGHCMinAdaptive(t *testing.T) {
	g, err := topo.NewGHC([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	alg := NewGHCMinAdaptive(g)
	if alg.NumVCs() != 2 {
		t.Fatal("GHC VCs should equal dimension count")
	}
	thpt, err := sim.SaturationThroughput(g.Graph(), alg, sim.DefaultConfig(),
		traffic.NewUniform(g.NumNodes), 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if thpt < 0.85 {
		t.Errorf("GHC UR throughput = %.3f, want ~1.0", thpt)
	}
}

func TestGHCAdversarialBottleneck(t *testing.T) {
	// §2.3: a GHC with minimal routing cannot load-balance adversarial
	// traffic. Send every router's node to the next coordinate in
	// dimension 0 via a fixed permutation that overloads single channels:
	// tornado over the dim-0 groups.
	g, err := topo.NewGHC([]int{8, 4})
	if err != nil {
		t.Fatal(err)
	}
	// All nodes sharing a dim-1 digit form a "row" of 8 routers; send
	// node i to the router 4 ahead in dimension 0 (same row): a tornado
	// within the complete graph of the row that minimal routing maps onto
	// one channel per source.
	tab := make([]topo.NodeID, g.NumNodes)
	for i := range tab {
		d0 := i % 8
		tab[i] = topo.NodeID((i - d0) + (d0+4)%8)
	}
	thpt, err := sim.SaturationThroughput(g.Graph(), NewGHCMinAdaptive(g), sim.DefaultConfig(),
		traffic.NewFixed("ghc-tornado", tab), 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Each source-destination pair has a dedicated channel here, so this
	// particular permutation sustains full rate; the adversarial case for
	// GHC needs concentration. Validate instead that the channels are the
	// limit when several nodes share one: see the flattened butterfly WC
	// tests. Here we only require sane, non-zero throughput.
	if thpt <= 0.5 {
		t.Errorf("GHC tornado throughput = %.3f, want high (dedicated channels)", thpt)
	}
}

func TestConcentratedHypercubeFootnote10(t *testing.T) {
	// Footnote 10 of the paper: concentrating the hypercube reduces cost
	// but "will significantly degrade performance on adversarial traffic
	// patterns" — the c flows of a router share one unit channel per
	// dimension, so the worst-case pattern collapses toward 1/c.
	h, err := topo.NewConcentratedHypercube(4, 8) // 128 nodes, 16 routers
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes != 128 {
		t.Fatalf("nodes = %d", h.NumNodes)
	}
	if err := h.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	wc := traffic.NewWorstCase(8, 16)
	thpt, err := sim.SaturationThroughput(h.Graph(), NewECube(h), sim.DefaultConfig(), wc, 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	// Groups of 8 nodes funnel through shared dimension channels:
	// throughput far below the unconcentrated hypercube's (~1.0).
	if thpt > 0.35 {
		t.Errorf("concentrated hypercube WC throughput = %.3f, want well below 1", thpt)
	}
	// Uniform traffic also saturates early: c terminals share dims
	// channels of unit bandwidth, but with dims=4 >= avg hops the benign
	// case stays moderate.
	ur, err := sim.SaturationThroughput(h.Graph(), NewECube(h), sim.DefaultConfig(),
		traffic.NewUniform(h.NumNodes), 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if ur <= thpt {
		t.Errorf("uniform (%.3f) should beat adversarial (%.3f)", ur, thpt)
	}
	if _, err := topo.NewConcentratedHypercube(4, 0); err == nil {
		t.Error("zero concentration accepted")
	}
}

func TestOneDimExpandedNetworkRouting(t *testing.T) {
	// The Fig 14(b) expanded network (5 routers on radix-8 parts, 20
	// nodes) is simulatable: minimal routing collapses to ~1/c on the
	// worst-case pattern while the UGAL-style router load-balances it.
	f, err := core.NewOneDimFB(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	wc := traffic.NewWorstCase(4, 5)
	min, err := sim.SaturationThroughput(f.Graph(), NewOneDimMinimal(f), sim.DefaultConfig(), wc, 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if min < 0.18 || min > 0.35 {
		t.Errorf("expanded 1-D minimal WC throughput = %.3f, want ~0.25", min)
	}
	ugal, err := sim.SaturationThroughput(f.Graph(), NewOneDimUGAL(f), sim.DefaultConfig(), wc, 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if ugal < 1.5*min {
		t.Errorf("expanded 1-D UGAL WC throughput %.3f should beat minimal %.3f", ugal, min)
	}
	// Uniform traffic stays near full rate for both.
	ur, err := sim.SaturationThroughput(f.Graph(), NewOneDimUGAL(f), sim.DefaultConfig(),
		traffic.NewUniform(f.NumNodes), 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if ur < 0.85 {
		t.Errorf("expanded 1-D UR throughput = %.3f, want ~1.0", ur)
	}
	if NewOneDimMinimal(f).Name() == NewOneDimUGAL(f).Name() {
		t.Error("names should differ")
	}
}

func TestDilatedButterflySection6(t *testing.T) {
	// §6 related work: "Dilated butterflies can be created where the
	// bandwidth of the channels in the butterflies are increased" to add
	// path diversity — a 2-dilated butterfly doubles worst-case
	// throughput over the plain butterfly (2/k instead of 1/k).
	plain, err := topo.NewButterfly(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	dilated, err := topo.NewDilatedButterfly(8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := dilated.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	if got := dilated.Graph().CountChannels(); got != 2*plain.Graph().CountChannels() {
		t.Fatalf("dilated channels = %d, want 2x %d", got, plain.Graph().CountChannels())
	}
	wc := traffic.NewWorstCase(8, 8)
	t1, err := sim.SaturationThroughput(plain.Graph(), NewButterflyDest(plain), sim.DefaultConfig(), wc, 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := sim.SaturationThroughput(dilated.Graph(), NewButterflyDest(dilated), sim.DefaultConfig(), wc, 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if t2 < 1.6*t1 {
		t.Errorf("2-dilated WC throughput %.3f should be ~2x plain %.3f", t2, t1)
	}
	// Uniform traffic still works on the dilated network.
	ur, err := sim.SaturationThroughput(dilated.Graph(), NewButterflyDest(dilated), sim.DefaultConfig(),
		traffic.NewUniform(dilated.NumNodes), 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ur < 0.85 {
		t.Errorf("dilated UR throughput = %.3f, want ~1.0", ur)
	}
	if _, err := topo.NewDilatedButterfly(8, 2, 0); err == nil {
		t.Error("dilation 0 accepted")
	}
}
