package routing

import (
	"testing"

	"flatnet/internal/sim"
	"flatnet/internal/traffic"
)

// TestPacketSizeDoesNotChangeComparisons validates §3.2 note 2 of the
// paper: "Different packet sizes do not impact the comparison results."
// With 4-flit packets, the worst-case ordering — minimal routing
// collapsing to ~1/k while non-minimal adaptive routing sustains several
// times more — must be preserved.
func TestPacketSizeDoesNotChangeComparisons(t *testing.T) {
	f := ff(t, 8, 2)
	wc := traffic.NewWorstCase(f.K, f.NumRouters)
	cfg := sim.DefaultConfig()
	cfg.PacketSize = 4

	sat := func(alg sim.Algorithm) float64 {
		t.Helper()
		v, err := sim.SaturationThroughput(f.Graph(), alg, cfg, wc, 800, 1600)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		return v
	}
	min := sat(NewMinAD(f))
	clos := sat(NewClosAD(f))
	ugals := sat(NewUGALS(f))
	if min > 0.18 {
		t.Errorf("size-4 MIN AD WC throughput = %.3f, want ~1/8", min)
	}
	if clos < 2.0*min || ugals < 2.0*min {
		t.Errorf("size-4 non-minimal (CLOS AD %.3f, UGAL-S %.3f) should dwarf minimal (%.3f)",
			clos, ugals, min)
	}
}

// TestMultiFlitAllAlgorithmsDeliver is a deadlock/progress smoke test:
// every flattened-butterfly algorithm must keep delivering 4-flit packets
// at moderate load on a 2-D network.
func TestMultiFlitAllAlgorithmsDeliver(t *testing.T) {
	f := ff(t, 4, 3)
	cfg := sim.DefaultConfig()
	cfg.PacketSize = 4
	for _, alg := range allFFAlgs(f) {
		res, err := sim.RunLoadPoint(f.Graph(), alg, cfg, sim.RunConfig{
			Load:    0.2,
			Pattern: traffic.NewUniform(f.NumNodes),
			Warmup:  500,
			Measure: 500,
		})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if res.Saturated || res.MeasuredDelivered != res.MeasuredCreated {
			t.Errorf("%s: did not drain 4-flit packets at 20%% load (%d/%d, saturated=%v)",
				alg.Name(), res.MeasuredDelivered, res.MeasuredCreated, res.Saturated)
		}
	}
}
