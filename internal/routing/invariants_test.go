package routing

import (
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// vcBoundsChecker wraps an algorithm and fails the test if any decision
// uses a VC outside [0, NumVCs) or a port outside the router's table.
type vcBoundsChecker struct {
	sim.Algorithm
	t *testing.T
	g *topo.Graph
}

func (c *vcBoundsChecker) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	dec := c.Algorithm.Route(view, p)
	if dec.VC < 0 || dec.VC >= c.Algorithm.NumVCs() {
		c.t.Errorf("%s: VC %d out of [0,%d)", c.Algorithm.Name(), dec.VC, c.Algorithm.NumVCs())
	}
	outs := c.g.Routers[view.Router()].Out
	if dec.Port < 0 || dec.Port >= len(outs) {
		c.t.Errorf("%s: port %d out of range", c.Algorithm.Name(), dec.Port)
	} else if outs[dec.Port].Kind == topo.Unused {
		c.t.Errorf("%s: routed to unused port %d on router %d", c.Algorithm.Name(), dec.Port, view.Router())
	}
	return dec
}

// TestVCDecisionsWithinBounds drives every flattened-butterfly algorithm
// on 1-D and 3-D networks under mixed traffic and asserts every routing
// decision stays inside its declared VC budget and the port table.
func TestVCDecisionsWithinBounds(t *testing.T) {
	for _, cfg := range []struct{ k, n int }{{8, 2}, {3, 4}} {
		f, err := core.NewFlatFly(cfg.k, cfg.n)
		if err != nil {
			t.Fatal(err)
		}
		patterns := []traffic.Pattern{
			traffic.NewUniform(f.NumNodes),
			traffic.NewWorstCase(f.K, f.NumRouters),
		}
		for _, alg := range allFFAlgs(f) {
			for _, p := range patterns {
				checked := &vcBoundsChecker{Algorithm: alg, t: t, g: f.Graph()}
				n, err := sim.New(f.Graph(), checked, sim.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				n.SetPattern(p)
				for i := 0; i < 250; i++ {
					n.GenerateBernoulli(0.5)
					n.Step()
				}
				if _, d := n.Totals(); d == 0 {
					t.Errorf("%s on %s/%s: nothing delivered", alg.Name(), f.Name(), p.Name())
				}
			}
		}
	}
}

// TestAllTopologyAlgorithmsBounds applies the same check to the baseline
// topologies' algorithms.
func TestAllTopologyAlgorithmsBounds(t *testing.T) {
	bf, err := topo.NewButterfly(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := topo.NewFoldedClos(8, 4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := topo.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := topo.NewTorus(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	gh, err := topo.NewGHC([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		g   *topo.Graph
		alg sim.Algorithm
	}{
		{bf.Graph(), NewButterflyDest(bf)},
		{fc.Graph(), NewFoldedClosAdaptive(fc)},
		{hc.Graph(), NewECube(hc)},
		{tor.Graph(), NewTorusDOR(tor)},
		{gh.Graph(), NewGHCMinAdaptive(gh)},
	}
	for _, c := range cases {
		checked := &vcBoundsChecker{Algorithm: c.alg, t: t, g: c.g}
		n, err := sim.New(c.g, checked, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		n.SetPattern(traffic.NewUniform(c.g.NumNodes))
		for i := 0; i < 250; i++ {
			n.GenerateBernoulli(0.4)
			n.Step()
		}
		if _, d := n.Totals(); d == 0 {
			t.Errorf("%s: nothing delivered", c.alg.Name())
		}
	}
}
