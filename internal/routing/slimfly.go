package routing

import (
	"fmt"

	"flatnet/internal/sim"
	"flatnet/internal/topo"
)

// maxDistTableEntries caps the all-pairs hop-distance table Slim Fly
// routing precomputes (uint8 entries, 16 MB). Instances past the cap are
// analytic-mode material, not simulation material.
const maxDistTableEntries = 1 << 24

// sfTables holds the precomputed terminal, port and distance tables for
// one Slim Fly. As with ffTables, every table is read-only after
// construction — the load-bearing contract that lets the sharded-parallel
// scheduler call Route concurrently from worker goroutines against the
// same shared tables.
type sfTables struct {
	p          int // terminals per router; network port base
	degree     int
	numRouters int

	routerOf []int32 // node -> attached router
	termPort []int32 // node -> ejection port
	nbr      []int32 // nbr[r*degree+i]: i-th neighbor of router r (port p+i)
	dist     []uint8 // all-pairs minimal hop counts
}

func newSFTables(s *topo.SlimFly) (*sfTables, error) {
	r := s.NumRouters
	if r*r > maxDistTableEntries {
		return nil, fmt.Errorf("routing: slimfly q=%d has %d routers; the %d-entry distance table cap is exceeded (use analytic mode)",
			s.Q, r, maxDistTableEntries)
	}
	t := &sfTables{p: s.P, degree: s.NetworkDegree, numRouters: r}
	t.routerOf = make([]int32, s.NumNodes)
	t.termPort = make([]int32, s.NumNodes)
	for n := 0; n < s.NumNodes; n++ {
		t.routerOf[n] = int32(n / s.P)
		t.termPort[n] = int32(n % s.P)
	}
	t.nbr = make([]int32, r*t.degree)
	for a := 0; a < r; a++ {
		copy(t.nbr[a*t.degree:], s.Adjacency(topo.RouterID(a)))
	}
	t.dist = make([]uint8, r*r)
	// BFS from every router; diameter is 2, so a two-level frontier scan
	// beats a queue.
	for src := 0; src < r; src++ {
		row := t.dist[src*r : src*r+r]
		for i := range row {
			row[i] = 0xff
		}
		row[src] = 0
		frontier := []int32{int32(src)}
		for d := uint8(1); len(frontier) > 0; d++ {
			var next []int32
			for _, v := range frontier {
				for _, w := range t.nbr[int(v)*t.degree : int(v+1)*t.degree] {
					if row[w] == 0xff {
						row[w] = d
						next = append(next, w)
					}
				}
			}
			frontier = next
		}
	}
	return t, nil
}

// hops returns the minimal hop count between routers a and b.
func (t *sfTables) hops(a, b topo.RouterID) int {
	return int(t.dist[int(a)*t.numRouters+int(b)])
}

// sfBase carries the shared Slim Fly routing helpers.
type sfBase struct {
	s *topo.SlimFly
	t *sfTables
}

// eject returns the terminal-port decision at the destination router.
func (b sfBase) eject(p *sim.Packet) sim.OutRef {
	return sim.OutRef{Port: int(b.t.termPort[p.Dst]), VC: 0}
}

// minAdaptiveHop picks, among the productive neighbors (those one hop
// closer to dst), the channel with the shortest queue; the VC is hops
// remaining offset by vcBase, so VC indices strictly decrease along any
// route — the deadlock-freedom argument.
func (b sfBase) minAdaptiveHop(view *sim.RouterView, r, dst topo.RouterID, vcBase int) sim.OutRef {
	t := b.t
	hopsLeft := t.hops(r, dst)
	want := uint8(hopsLeft - 1)
	row := t.dist[:]
	m := newMinPicker(view)
	base := int(r) * t.degree
	for i := 0; i < t.degree; i++ {
		w := t.nbr[base+i]
		if row[int(w)*t.numRouters+int(dst)] == want {
			port := t.p + i
			m.offer(view.QueueEstPort(port), port)
		}
	}
	return sim.OutRef{Port: m.bestArg, VC: vcBase + hopsLeft - 1}
}

// minQueueProductive returns the queue estimate of the channel the
// minimal-adaptive hop would take toward dst.
func (b sfBase) minQueueProductive(view *sim.RouterView, r, dst topo.RouterID) int {
	t := b.t
	if r == dst {
		return 0
	}
	want := uint8(t.hops(r, dst) - 1)
	m := newCostOnly()
	base := int(r) * t.degree
	for i := 0; i < t.degree; i++ {
		w := t.nbr[base+i]
		if t.dist[int(w)*t.numRouters+int(dst)] == want {
			m.offer(view.QueueEstPort(t.p + i))
		}
	}
	return m.best
}

// SlimFlyMin is minimal adaptive routing on the Slim Fly: at every hop,
// the productive channel with the shortest queue. The MMS diameter of 2
// means 2 hops-remaining VCs suffice.
type SlimFlyMin struct{ sfBase }

// NewSlimFlyMin builds minimal adaptive routing for a Slim Fly.
func NewSlimFlyMin(s *topo.SlimFly) (*SlimFlyMin, error) {
	t, err := newSFTables(s)
	if err != nil {
		return nil, err
	}
	return &SlimFlyMin{sfBase{s, t}}, nil
}

// Name implements sim.Algorithm.
func (a *SlimFlyMin) Name() string { return "SF MIN" }

// NumVCs implements sim.Algorithm.
func (a *SlimFlyMin) NumVCs() int { return 2 }

// Sequential implements sim.Algorithm.
func (a *SlimFlyMin) Sequential() bool { return false }

// Route implements sim.Algorithm.
func (a *SlimFlyMin) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	dst := topo.RouterID(a.t.routerOf[p.Dst])
	if r == dst {
		return a.eject(p)
	}
	return a.minAdaptiveHop(view, r, dst, 0)
}

// SlimFlyValiant is Valiant routing on the Slim Fly: minimal-adaptively
// to a uniformly random intermediate router, then minimal-adaptively to
// the destination. Each phase takes at most 2 hops, so 4 VCs — phase one
// in the upper band, phase two in the lower — keep VC indices strictly
// decreasing along every route.
type SlimFlyValiant struct{ sfBase }

// NewSlimFlyValiant builds VAL for a Slim Fly.
func NewSlimFlyValiant(s *topo.SlimFly) (*SlimFlyValiant, error) {
	t, err := newSFTables(s)
	if err != nil {
		return nil, err
	}
	return &SlimFlyValiant{sfBase{s, t}}, nil
}

// Name implements sim.Algorithm.
func (a *SlimFlyValiant) Name() string { return "SF VAL" }

// NumVCs implements sim.Algorithm.
func (a *SlimFlyValiant) NumVCs() int { return 4 }

// Sequential implements sim.Algorithm.
func (a *SlimFlyValiant) Sequential() bool { return false }

// Route implements sim.Algorithm.
func (a *SlimFlyValiant) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	dst := topo.RouterID(a.t.routerOf[p.Dst])
	if p.Phase == sim.PhaseNew {
		p.Inter = int32(view.RNG().Intn(a.t.numRouters))
		p.Phase = sim.PhaseNonMinimal
	}
	if p.Phase == sim.PhaseNonMinimal && (topo.RouterID(p.Inter) == r || topo.RouterID(p.Inter) == dst) {
		p.Phase = sim.PhaseMinimal
	}
	if p.Phase == sim.PhaseNonMinimal {
		return a.minAdaptiveHop(view, r, topo.RouterID(p.Inter), 2)
	}
	if r == dst {
		return a.eject(p)
	}
	return a.minAdaptiveHop(view, r, dst, 0)
}

// SlimFlyUGAL is UGAL on the Slim Fly: each packet chooses minimal or
// Valiant at its source router by comparing queue-length x hop-count
// products, exactly as the flattened-butterfly UGAL does. The sequential
// variant updates queue state between same-cycle decisions.
type SlimFlyUGAL struct {
	sfBase
	seq bool
}

// NewSlimFlyUGAL builds greedy UGAL for a Slim Fly.
func NewSlimFlyUGAL(s *topo.SlimFly) (*SlimFlyUGAL, error) {
	t, err := newSFTables(s)
	if err != nil {
		return nil, err
	}
	return &SlimFlyUGAL{sfBase{s, t}, false}, nil
}

// NewSlimFlyUGALS builds UGAL-S (sequential allocation) for a Slim Fly.
func NewSlimFlyUGALS(s *topo.SlimFly) (*SlimFlyUGAL, error) {
	t, err := newSFTables(s)
	if err != nil {
		return nil, err
	}
	return &SlimFlyUGAL{sfBase{s, t}, true}, nil
}

// Name implements sim.Algorithm.
func (a *SlimFlyUGAL) Name() string {
	if a.seq {
		return "SF UGAL-S"
	}
	return "SF UGAL"
}

// NumVCs implements sim.Algorithm.
func (a *SlimFlyUGAL) NumVCs() int { return 4 }

// Sequential implements sim.Algorithm.
func (a *SlimFlyUGAL) Sequential() bool { return a.seq }

// Route implements sim.Algorithm.
func (a *SlimFlyUGAL) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	dst := topo.RouterID(a.t.routerOf[p.Dst])
	if p.Phase == sim.PhaseNew {
		a.decide(view, p, r, dst)
	}
	if p.Phase == sim.PhaseNonMinimal && topo.RouterID(p.Inter) == r {
		p.Phase = sim.PhaseMinimal
	}
	if p.Phase == sim.PhaseNonMinimal {
		return a.minAdaptiveHop(view, r, topo.RouterID(p.Inter), 2)
	}
	if r == dst {
		return a.eject(p)
	}
	return a.minAdaptiveHop(view, r, dst, 0)
}

// decide makes the source-router choice between minimal and Valiant
// using queue-length x hop-count products (§3.1 semantics).
func (a *SlimFlyUGAL) decide(view *sim.RouterView, p *sim.Packet, r, dst topo.RouterID) {
	b := topo.RouterID(view.RNG().Intn(a.t.numRouters))
	if b == r || b == dst || r == dst {
		p.Phase = sim.PhaseMinimal
		return
	}
	hMin := a.t.hops(r, dst)
	hNM := a.t.hops(r, b) + a.t.hops(b, dst)
	qMin := a.minQueueProductive(view, r, dst)
	qNM := a.minQueueProductive(view, r, b)
	if qMin*hMin <= qNM*hNM {
		p.Phase = sim.PhaseMinimal
	} else {
		p.Phase = sim.PhaseNonMinimal
		p.Inter = int32(b)
	}
}

// NewSlimFlyAlgorithm constructs a Slim Fly algorithm by name: "min",
// "val", "ugal" or "ugal-s" (long forms "SF MIN", "SF VAL", "SF UGAL",
// "SF UGAL-S").
func NewSlimFlyAlgorithm(name string, s *topo.SlimFly) (sim.Algorithm, error) {
	switch name {
	case "min", "MIN", "MIN AD", "SF MIN":
		return NewSlimFlyMin(s)
	case "val", "VAL", "SF VAL":
		return NewSlimFlyValiant(s)
	case "ugal", "UGAL", "SF UGAL":
		return NewSlimFlyUGAL(s)
	case "ugal-s", "UGAL-S", "SF UGAL-S":
		return NewSlimFlyUGALS(s)
	default:
		return nil, fmt.Errorf("routing: unknown slimfly algorithm %q", name)
	}
}
