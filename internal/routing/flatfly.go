// Package routing implements the routing algorithms evaluated in the
// paper: on the flattened butterfly, minimal adaptive (MIN AD), Valiant
// (VAL), UGAL with greedy and sequential allocation (UGAL, UGAL-S) and
// adaptive Clos routing (CLOS AD) — §3.1; plus the baselines of Table 1:
// destination-based routing on the conventional butterfly, adaptive
// sequential routing on the folded Clos, and e-cube on the hypercube.
package routing

import (
	"fmt"
	"math/bits"

	"flatnet/internal/core"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
)

// pickMin returns the index (into a caller-maintained candidate sequence)
// of the minimum cost seen so far, breaking ties uniformly at random. Use
// via the minPicker helper below.
type minPicker struct {
	view    *sim.RouterView
	best    int
	bestArg int
	ties    int
}

func newMinPicker(view *sim.RouterView) minPicker {
	return minPicker{view: view, best: 1 << 30, bestArg: -1}
}

// offer considers a candidate with the given cost and argument.
func (m *minPicker) offer(cost, arg int) {
	switch {
	case cost < m.best:
		m.best = cost
		m.bestArg = arg
		m.ties = 1
	case cost == m.best:
		// Reservoir sampling keeps the pick uniform among ties.
		m.ties++
		if m.view.RNG().Intn(m.ties) == 0 {
			m.bestArg = arg
		}
	}
}

// ffBase carries shared flattened-butterfly routing helpers. All per-flit
// coordinate work reads the precomputed ffTables; the FlatFly itself is
// kept only for construction-time facts (K, Dims, Multiplicity,
// NumRouters).
type ffBase struct {
	f *core.FlatFly
	t *ffTables
}

func newFFBase(f *core.FlatFly) ffBase { return ffBase{f: f, t: newFFTables(f)} }

// costOnly tracks a running minimum cost where the winning argument is
// irrelevant (queue-depth estimates for route decisions); unlike
// minPicker it needs no tie-breaking randomness.
type costOnly struct{ best int }

func newCostOnly() costOnly { return costOnly{best: 1 << 30} }

func (c *costOnly) offer(cost int) {
	if cost < c.best {
		c.best = cost
	}
}

// eject returns the terminal-port decision for a packet at its
// destination router.
func (b ffBase) eject(p *sim.Packet) sim.OutRef {
	return sim.OutRef{Port: int(b.t.termPort[p.Dst]), VC: 0}
}

// bestCopyPort returns the port for (dim, digit) with the shortest queue
// among parallel channel copies (Multiplicity is 1 in all paper
// configurations, making this a direct lookup).
func (b ffBase) bestCopyPort(view *sim.RouterView, d, v int) (port, cost int) {
	if b.t.mult == 1 {
		p := b.t.portFor(d, v, 0)
		return p, view.QueueEstPort(p)
	}
	m := newMinPicker(view)
	for c := 0; c < b.t.mult; c++ {
		p := b.t.portFor(d, v, c)
		m.offer(view.QueueEstPort(p), p)
	}
	return m.bestArg, m.best
}

// minAdaptiveHop picks the productive channel with the shortest queue
// (§3.1 MIN AD) for a packet at router r destined to router dst, and
// returns the decision with VC chosen by hops remaining offset by vcBase.
func (b ffBase) minAdaptiveHop(view *sim.RouterView, r, dst topo.RouterID, vcBase int) sim.OutRef {
	diff := b.t.diff(r, dst)
	hopsLeft := bits.OnesCount32(diff)
	m := newMinPicker(view)
	for ; diff != 0; diff &= diff - 1 {
		d := bits.TrailingZeros32(diff) + 1
		port, cost := b.bestCopyPort(view, d, b.t.digit(dst, d))
		m.offer(cost, port)
	}
	return sim.OutRef{Port: m.bestArg, VC: vcBase + hopsLeft - 1}
}

// dorHop returns the dimension-order (lowest differing dimension first)
// next hop toward dst: the oblivious minimal route used by VAL's phases.
func (b ffBase) dorHop(view *sim.RouterView, r, dst topo.RouterID, vc int) sim.OutRef {
	diff := b.t.diff(r, dst)
	if diff == 0 {
		panic("routing: dorHop called with r == dst")
	}
	d := bits.TrailingZeros32(diff) + 1
	c := 0
	if b.t.mult > 1 {
		c = view.RNG().Intn(b.t.mult)
	}
	return sim.OutRef{Port: b.t.portFor(d, b.t.digit(dst, d), c), VC: vc}
}

// minQueueProductive returns the queue estimate of the channel MIN AD
// would take toward dst: the minimum over productive channels.
func (b ffBase) minQueueProductive(view *sim.RouterView, r, dst topo.RouterID) int {
	diff := b.t.diff(r, dst)
	if diff == 0 {
		return 0
	}
	m := newCostOnly()
	for ; diff != 0; diff &= diff - 1 {
		d := bits.TrailingZeros32(diff) + 1
		_, cost := b.bestCopyPort(view, d, b.t.digit(dst, d))
		m.offer(cost)
	}
	return m.best
}

// MinAD is §3.1's minimal adaptive algorithm: at every hop, take the
// productive channel with the shortest queue. n' VCs, selected by hops
// remaining, prevent deadlock. Uses a greedy route allocator.
type MinAD struct{ ffBase }

// NewMinAD builds MIN AD for a flattened butterfly.
func NewMinAD(f *core.FlatFly) *MinAD { return &MinAD{newFFBase(f)} }

// Name implements sim.Algorithm.
func (a *MinAD) Name() string { return "MIN AD" }

// NumVCs implements sim.Algorithm: n' VCs (at least 1).
func (a *MinAD) NumVCs() int {
	if a.f.Dims < 1 {
		return 1
	}
	return a.f.Dims
}

// Sequential implements sim.Algorithm (greedy, per §3.1).
func (a *MinAD) Sequential() bool { return false }

// Route implements sim.Algorithm.
func (a *MinAD) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	dst := topo.RouterID(a.t.routerOf[p.Dst])
	if r == dst {
		return a.eject(p)
	}
	return a.minAdaptiveHop(view, r, dst, 0)
}

// Valiant is §3.1's VAL: route minimally (dimension order) to a uniformly
// random intermediate router, then minimally to the destination. Two VCs,
// one per phase.
type Valiant struct{ ffBase }

// NewValiant builds VAL for a flattened butterfly.
func NewValiant(f *core.FlatFly) *Valiant { return &Valiant{newFFBase(f)} }

// Name implements sim.Algorithm.
func (a *Valiant) Name() string { return "VAL" }

// NumVCs implements sim.Algorithm.
func (a *Valiant) NumVCs() int { return 2 }

// Sequential implements sim.Algorithm.
func (a *Valiant) Sequential() bool { return false }

// Route implements sim.Algorithm.
func (a *Valiant) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	dst := topo.RouterID(a.t.routerOf[p.Dst])
	if p.Phase == sim.PhaseNew {
		p.Inter = int32(view.RNG().Intn(a.t.numRouters))
		p.Phase = sim.PhaseNonMinimal
	}
	if p.Phase == sim.PhaseNonMinimal && (topo.RouterID(p.Inter) == r || topo.RouterID(p.Inter) == dst) {
		p.Phase = sim.PhaseMinimal
	}
	if p.Phase == sim.PhaseNonMinimal {
		return a.dorHop(view, r, topo.RouterID(p.Inter), 0)
	}
	if r == dst {
		return a.eject(p)
	}
	return a.dorHop(view, r, dst, 1)
}

// UGAL is §3.1's Universal Globally-Adaptive Load-balanced routing: each
// packet chooses between MIN AD and VAL at its source router by comparing
// queue-length x hop-count products. The greedy variant lets all inputs of
// a router decide on the same stale queue snapshot in a cycle; UGAL-S
// (sequential) updates the queue state between decisions, removing the
// greedy transient load imbalance the paper identifies.
type UGAL struct {
	ffBase
	seq bool
}

// NewUGAL builds greedy UGAL.
func NewUGAL(f *core.FlatFly) *UGAL { return &UGAL{newFFBase(f), false} }

// NewUGALS builds UGAL-S (sequential allocation).
func NewUGALS(f *core.FlatFly) *UGAL { return &UGAL{newFFBase(f), true} }

// Name implements sim.Algorithm.
func (a *UGAL) Name() string {
	if a.seq {
		return "UGAL-S"
	}
	return "UGAL"
}

// NumVCs implements sim.Algorithm: one VC for the misrouting phase plus n'
// hops-remaining VCs for the minimal phase.
func (a *UGAL) NumVCs() int { return a.f.Dims + 1 }

// Sequential implements sim.Algorithm.
func (a *UGAL) Sequential() bool { return a.seq }

// Route implements sim.Algorithm.
func (a *UGAL) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	dst := topo.RouterID(a.t.routerOf[p.Dst])
	if p.Phase == sim.PhaseNew {
		a.decide(view, p, r, dst)
	}
	if p.Phase == sim.PhaseNonMinimal && topo.RouterID(p.Inter) == r {
		p.Phase = sim.PhaseMinimal
	}
	if p.Phase == sim.PhaseNonMinimal {
		return a.dorHop(view, r, topo.RouterID(p.Inter), 0)
	}
	if r == dst {
		return a.eject(p)
	}
	return a.minAdaptiveHop(view, r, dst, 1)
}

// decide makes the source-router choice between minimal and Valiant using
// the product of queue length and hop count as the delay estimate (§3.1).
func (a *UGAL) decide(view *sim.RouterView, p *sim.Packet, r, dst topo.RouterID) {
	b := topo.RouterID(view.RNG().Intn(a.t.numRouters))
	if b == r || b == dst || r == dst {
		p.Phase = sim.PhaseMinimal
		return
	}
	hMin := a.t.minHops(r, dst)
	hNM := a.t.minHops(r, b) + a.t.minHops(b, dst)
	qMin := a.minQueueProductive(view, r, dst)
	// Queue of the first hop VAL would take toward b (dimension order).
	d := bits.TrailingZeros32(a.t.diff(r, b)) + 1
	_, qNM := a.bestCopyPort(view, d, a.t.digit(b, d))
	if qMin*hMin <= qNM*hNM {
		p.Phase = sim.PhaseMinimal
	} else {
		p.Phase = sim.PhaseNonMinimal
		p.Inter = int32(b)
	}
}

// ClosAD is §3.1's adaptive Clos routing on the flattened butterfly: like
// UGAL it chooses minimal vs. non-minimal per packet, but a non-minimal
// packet reaches its intermediate by traversing each (differing) dimension
// via the channel with the shortest queue — including a "dummy queue" for
// staying at the current coordinate — exactly as if adaptively routing to
// the middle stage of the equivalent folded Clos. The intermediate is thus
// chosen from the closest common ancestors, adaptively and per hop, which
// removes the transient load imbalance of oblivious intermediate choice.
// Always uses a sequential allocator.
type ClosAD struct{ ffBase }

// NewClosAD builds CLOS AD for a flattened butterfly.
func NewClosAD(f *core.FlatFly) *ClosAD { return &ClosAD{newFFBase(f)} }

// Name implements sim.Algorithm.
func (a *ClosAD) Name() string { return "CLOS AD" }

// NumVCs implements sim.Algorithm: one ascent VC plus n' descent VCs.
func (a *ClosAD) NumVCs() int { return a.f.Dims + 1 }

// Sequential implements sim.Algorithm.
func (a *ClosAD) Sequential() bool { return true }

// Route implements sim.Algorithm.
func (a *ClosAD) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	dst := topo.RouterID(a.t.routerOf[p.Dst])
	if p.Phase == sim.PhaseNew {
		a.decide(view, p, r, dst)
	}
	if p.Phase == sim.PhaseNonMinimal {
		if dec, hop := a.ascend(view, p, r, dst); hop {
			return dec
		}
		// Every remaining dimension chose "stay": fall through to the
		// minimal (descent) phase.
		p.Phase = sim.PhaseMinimal
	}
	if r == dst {
		return a.eject(p)
	}
	return a.minAdaptiveHop(view, r, dst, 1)
}

// decide compares the best minimal queue against the best of all
// non-minimal queues in the differing dimensions ("comparing the depth of
// all of the non-minimal queues", §3.2).
func (a *ClosAD) decide(view *sim.RouterView, p *sim.Packet, r, dst topo.RouterID) {
	if r == dst {
		p.Phase = sim.PhaseMinimal
		return
	}
	diff := a.t.diff(r, dst)
	hMin := bits.OnesCount32(diff)
	qMin := a.minQueueProductive(view, r, dst)
	m := newCostOnly()
	for dd := diff; dd != 0; dd &= dd - 1 {
		d := bits.TrailingZeros32(dd) + 1
		own := a.t.digit(r, d)
		for v := 0; v < a.t.k; v++ {
			if v == own {
				continue
			}
			_, cost := a.bestCopyPort(view, d, v)
			m.offer(cost)
		}
	}
	qNM := m.best
	hNM := 2 * hMin // ascent plus descent over the differing dimensions
	if qMin*hMin <= qNM*hNM {
		p.Phase = sim.PhaseMinimal
		return
	}
	p.Phase = sim.PhaseNonMinimal
	// Packet ascent state uses bit d for dimension d; the table mask uses
	// bit d-1, so shift by one. Preserving the packet-visible encoding
	// keeps replayed runs bit-identical.
	p.DimMask = diff << 1
}

// ascend processes the remaining ascent dimensions in order. For each, it
// picks the value with the shortest queue, where "staying" costs the queue
// of the channel the descent would later need for that dimension. It
// returns (decision, true) when a physical hop is taken, or (_, false)
// once every remaining dimension chose to stay.
func (a *ClosAD) ascend(view *sim.RouterView, p *sim.Packet, r, dst topo.RouterID) (sim.OutRef, bool) {
	for p.DimMask != 0 {
		d := bits.TrailingZeros32(p.DimMask)
		p.DimMask &^= 1 << uint(d)
		own := a.t.digit(r, d)
		want := a.t.digit(dst, d)
		m := newMinPicker(view)
		stayCost := 0
		if own != want {
			_, stayCost = a.bestCopyPort(view, d, want)
		}
		m.offer(stayCost, -1) // arg -1 = stay
		for v := 0; v < a.t.k; v++ {
			if v == own {
				continue
			}
			port, cost := a.bestCopyPort(view, d, v)
			m.offer(cost, port)
		}
		if m.bestArg >= 0 {
			return sim.OutRef{Port: m.bestArg, VC: 0}, true
		}
	}
	return sim.OutRef{}, false
}

// NewFlatFlyAlgorithm constructs a flattened-butterfly algorithm by name:
// "min", "val", "ugal", "ugal-s", or "clos".
func NewFlatFlyAlgorithm(name string, f *core.FlatFly) (sim.Algorithm, error) {
	switch name {
	case "min", "MIN AD":
		return NewMinAD(f), nil
	case "val", "VAL":
		return NewValiant(f), nil
	case "ugal", "UGAL":
		return NewUGAL(f), nil
	case "ugal-s", "UGAL-S":
		return NewUGALS(f), nil
	case "clos", "CLOS AD":
		return NewClosAD(f), nil
	default:
		return nil, fmt.Errorf("routing: unknown flattened-butterfly algorithm %q", name)
	}
}
