package routing

import (
	"flatnet/internal/core"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
)

// OneDimUGAL routes the generalized single-dimension flattened butterfly
// (core.OneDimFB, the Fig. 14(b) expanded-scalability variant): a
// complete router graph where minimal routing is a single hop and
// non-minimal routing detours through one intermediate router, chosen by
// UGAL-style queue comparison with sequential allocation. With
// minimalOnly it degenerates to pure minimal routing.
type OneDimUGAL struct {
	f           *core.OneDimFB
	minimalOnly bool
}

// NewOneDimUGAL builds the adaptive router for a OneDimFB.
func NewOneDimUGAL(f *core.OneDimFB) *OneDimUGAL { return &OneDimUGAL{f: f} }

// NewOneDimMinimal builds the minimal-only router for a OneDimFB.
func NewOneDimMinimal(f *core.OneDimFB) *OneDimUGAL {
	return &OneDimUGAL{f: f, minimalOnly: true}
}

// Name implements sim.Algorithm.
func (a *OneDimUGAL) Name() string {
	if a.minimalOnly {
		return "1D MIN"
	}
	return "1D UGAL-S"
}

// NumVCs implements sim.Algorithm: VC 0 for the misroute hop, VC 1 for
// the final (minimal) hop.
func (a *OneDimUGAL) NumVCs() int { return 2 }

// Sequential implements sim.Algorithm.
func (a *OneDimUGAL) Sequential() bool { return !a.minimalOnly }

// Route implements sim.Algorithm.
func (a *OneDimUGAL) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	dst := a.f.RouterOf(p.Dst)
	if r == dst {
		return sim.OutRef{Port: int(p.Dst) % a.f.Concentration, VC: 0}
	}
	if a.minimalOnly || p.Phase != sim.PhaseNew {
		// Past the intermediate (or minimal-only): direct hop on VC 1.
		return sim.OutRef{Port: a.f.PortTo(dst), VC: 1}
	}
	// Source decision: minimal direct hop vs detour via a random
	// intermediate (UGAL comparison, queue x hops).
	b := topo.RouterID(view.RNG().Intn(a.f.Routers))
	qMin := view.QueueEstPort(a.f.PortTo(dst))
	if b == r || b == dst {
		p.Phase = sim.PhaseMinimal
		return sim.OutRef{Port: a.f.PortTo(dst), VC: 1}
	}
	qNM := view.QueueEstPort(a.f.PortTo(b))
	if qMin <= 2*qNM {
		p.Phase = sim.PhaseMinimal
		return sim.OutRef{Port: a.f.PortTo(dst), VC: 1}
	}
	p.Phase = sim.PhaseNonMinimal
	return sim.OutRef{Port: a.f.PortTo(b), VC: 0}
}
