package routing

import (
	"math/bits"

	"flatnet/internal/core"
	"flatnet/internal/topo"
)

// maxPairTableEntries caps the all-pairs differing-dimension table at 16 MB
// (uint32 entries). Configurations whose router count squared exceeds it —
// none of the paper's do — fall back to computing masks from the per-router
// digit table, which is still division-free.
const maxPairTableEntries = 1 << 22

// ffTables holds the precomputed coordinate, port and route tables for one
// flattened butterfly. The five FB routing algorithms consult these on
// every Route call instead of re-deriving digits with div/mod and differing
// dimensions with an allocating slice — per-flit route computation touches
// only table lookups and the live queue estimates.
//
// Every table is read-only after construction: newFFTables fills them
// once and no Route path ever writes them. This is a load-bearing
// contract for the sharded-parallel scheduler (internal/sim), whose
// worker goroutines call Route concurrently on routers of different
// shards against the same shared tables — safe precisely because the
// tables are immutable and all mutable routing inputs (queue and credit
// estimates) arrive through the per-shard RouterView instead.
//
// Masks use bit d-1 for dimension d ∈ [1, Dims].
type ffTables struct {
	dims       int
	k          int
	mult       int
	numRouters int

	digits   []uint16 // digits[r*dims + d-1]: dimension-d digit of router r
	routerOf []int32  // node -> attached router
	termPort []int32  // node -> ejection (terminal) port on that router
	portBase []int32  // portBase[d-1] + v*mult + c: port for (d, v, c)
	pairDiff []uint32 // all-pairs differing-dimension masks; nil when over budget
}

func newFFTables(f *core.FlatFly) *ffTables {
	t := &ffTables{
		dims:       f.Dims,
		k:          f.K,
		mult:       f.Multiplicity,
		numRouters: f.NumRouters,
	}
	t.digits = make([]uint16, f.NumRouters*f.Dims)
	for r := 0; r < f.NumRouters; r++ {
		for d := 1; d <= f.Dims; d++ {
			t.digits[r*f.Dims+d-1] = uint16(f.RouterDigit(topo.RouterID(r), d))
		}
	}
	t.routerOf = make([]int32, f.NumNodes)
	t.termPort = make([]int32, f.NumNodes)
	for node := 0; node < f.NumNodes; node++ {
		t.routerOf[node] = int32(f.RouterOf(topo.NodeID(node)))
		t.termPort[node] = int32(f.TerminalIndex(topo.NodeID(node)))
	}
	t.portBase = make([]int32, f.Dims)
	for d := 1; d <= f.Dims; d++ {
		t.portBase[d-1] = int32(f.PortFor(d, 0, 0))
	}
	if f.NumRouters*f.NumRouters <= maxPairTableEntries {
		t.pairDiff = make([]uint32, f.NumRouters*f.NumRouters)
		for a := 0; a < f.NumRouters; a++ {
			for b := 0; b < f.NumRouters; b++ {
				t.pairDiff[a*f.NumRouters+b] = t.diffSlow(a, b)
			}
		}
	}
	return t
}

// diffSlow computes a differing-dimension mask from the digit table.
func (t *ffTables) diffSlow(a, b int) uint32 {
	da := t.digits[a*t.dims : a*t.dims+t.dims]
	db := t.digits[b*t.dims : b*t.dims+t.dims]
	var m uint32
	for i := range da {
		if da[i] != db[i] {
			m |= 1 << uint(i)
		}
	}
	return m
}

// diff returns the mask of dimensions (bit d-1 for dimension d) in which
// routers a and b have differing digits: the productive dimensions of a
// minimal route from a to b.
func (t *ffTables) diff(a, b topo.RouterID) uint32 {
	if t.pairDiff != nil {
		return t.pairDiff[int(a)*t.numRouters+int(b)]
	}
	return t.diffSlow(int(a), int(b))
}

// digit returns the dimension-d digit of router r.
func (t *ffTables) digit(r topo.RouterID, d int) int {
	return int(t.digits[int(r)*t.dims+d-1])
}

// minHops returns the minimal inter-router hop count between a and b.
func (t *ffTables) minHops(a, b topo.RouterID) int {
	return bits.OnesCount32(t.diff(a, b))
}

// portFor returns the port for (dimension d, target digit v, channel copy
// c) — the table-backed equivalent of core.FlatFly.PortFor.
func (t *ffTables) portFor(d, v, c int) int {
	return int(t.portBase[d-1]) + v*t.mult + c
}
