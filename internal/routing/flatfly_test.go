package routing

import (
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

func ff(t *testing.T, k, n int) *core.FlatFly {
	t.Helper()
	f, err := core.NewFlatFly(k, n)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func allFFAlgs(f *core.FlatFly) []sim.Algorithm {
	return []sim.Algorithm{
		NewMinAD(f), NewValiant(f), NewUGAL(f), NewUGALS(f), NewClosAD(f),
	}
}

func satThroughput(t *testing.T, f *core.FlatFly, alg sim.Algorithm, p traffic.Pattern) float64 {
	t.Helper()
	thpt, err := sim.SaturationThroughput(f.Graph(), alg, sim.DefaultConfig(), p, 500, 1000)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	return thpt
}

func TestAlgorithmMetadata(t *testing.T) {
	f := ff(t, 8, 2)
	cases := []struct {
		alg  sim.Algorithm
		name string
		vcs  int
		seq  bool
	}{
		{NewMinAD(f), "MIN AD", 1, false},
		{NewValiant(f), "VAL", 2, false},
		{NewUGAL(f), "UGAL", 2, false},
		{NewUGALS(f), "UGAL-S", 2, true},
		{NewClosAD(f), "CLOS AD", 2, true},
	}
	for _, c := range cases {
		if c.alg.Name() != c.name {
			t.Errorf("name = %q, want %q", c.alg.Name(), c.name)
		}
		if c.alg.NumVCs() != c.vcs {
			t.Errorf("%s NumVCs = %d, want %d", c.name, c.alg.NumVCs(), c.vcs)
		}
		if c.alg.Sequential() != c.seq {
			t.Errorf("%s Sequential = %v, want %v", c.name, c.alg.Sequential(), c.seq)
		}
	}
	// Multi-dimensional VC counts: MIN AD needs n' VCs, the UGAL family n'+1.
	f3 := ff(t, 4, 4) // n' = 3
	if NewMinAD(f3).NumVCs() != 3 {
		t.Error("MIN AD on 3 dims should use 3 VCs")
	}
	if NewUGALS(f3).NumVCs() != 4 || NewClosAD(f3).NumVCs() != 4 {
		t.Error("UGAL-S/CLOS AD on 3 dims should use 4 VCs")
	}
}

func TestNewFlatFlyAlgorithm(t *testing.T) {
	f := ff(t, 4, 2)
	for _, name := range []string{"min", "val", "ugal", "ugal-s", "clos"} {
		if _, err := NewFlatFlyAlgorithm(name, f); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := NewFlatFlyAlgorithm("bogus", f); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

// Fig 4(a) in miniature: on uniform random traffic all algorithms except
// VAL sustain ~100% of capacity; VAL is capped near 50%.
func TestFig4aUniformThroughput(t *testing.T) {
	f := ff(t, 8, 2)
	ur := traffic.NewUniform(f.NumNodes)
	for _, alg := range allFFAlgs(f) {
		thpt := satThroughput(t, f, alg, ur)
		switch alg.Name() {
		case "VAL":
			// VAL's two phases double channel load: cap near (k-1)/2k.
			if thpt < 0.30 || thpt > 0.60 {
				t.Errorf("VAL UR throughput = %.3f, want ~0.44", thpt)
			}
		default:
			if thpt < 0.90 {
				t.Errorf("%s UR throughput = %.3f, want ~1.0", alg.Name(), thpt)
			}
		}
	}
}

// Fig 4(b) in miniature: on the worst-case pattern minimal routing is
// limited to ~1/k while all non-minimal algorithms reach ~(k-1)/2k.
func TestFig4bWorstCaseThroughput(t *testing.T) {
	f := ff(t, 8, 2)
	wc := traffic.NewWorstCase(f.K, f.NumRouters)
	minAD := satThroughput(t, f, NewMinAD(f), wc)
	if minAD < 0.08 || minAD > 0.18 {
		t.Errorf("MIN AD WC throughput = %.3f, want ~1/8", minAD)
	}
	for _, alg := range []sim.Algorithm{NewValiant(f), NewUGAL(f), NewUGALS(f), NewClosAD(f)} {
		thpt := satThroughput(t, f, alg, wc)
		if thpt < 0.30 {
			t.Errorf("%s WC throughput = %.3f, want >= 0.30 (~(k-1)/2k)", alg.Name(), thpt)
		}
		if thpt < 2.2*minAD {
			t.Errorf("%s WC throughput %.3f not clearly above minimal %.3f", alg.Name(), thpt, minAD)
		}
	}
}

// All algorithms must deliver at low load with sane latency (no deadlock,
// no misrouting), on 1-D and multi-D networks.
func TestLowLoadLatencyAllAlgorithms(t *testing.T) {
	for _, cfg := range []struct{ k, n int }{{8, 2}, {4, 3}} {
		f := ff(t, cfg.k, cfg.n)
		for _, alg := range allFFAlgs(f) {
			res, err := sim.RunLoadPoint(f.Graph(), alg, sim.DefaultConfig(), sim.RunConfig{
				Load:    0.1,
				Pattern: traffic.NewUniform(f.NumNodes),
				Warmup:  400,
				Measure: 400,
			})
			if err != nil {
				t.Fatalf("%s on %s: %v", alg.Name(), f.Name(), err)
			}
			if res.Saturated {
				t.Errorf("%s on %s saturated at 10%% load", alg.Name(), f.Name())
				continue
			}
			if res.MeasuredDelivered != res.MeasuredCreated {
				t.Errorf("%s on %s: lost packets (%d/%d)", alg.Name(), f.Name(),
					res.MeasuredDelivered, res.MeasuredCreated)
			}
			if res.AvgLatency <= 0 || res.AvgLatency > 30 {
				t.Errorf("%s on %s: implausible latency %.2f", alg.Name(), f.Name(), res.AvgLatency)
			}
		}
	}
}

// Hop-count invariants (§2.2, §3.1): minimal routes take exactly the
// number of differing digits; VAL at most hops(s,b)+hops(b,d) <= 2n';
// CLOS AD at most 2x the differing dimensions (never worse than the
// equivalent folded Clos round trip).
func TestHopInvariants(t *testing.T) {
	f := ff(t, 4, 3) // 2 dims
	cases := []struct {
		alg     sim.Algorithm
		maxHops int
	}{
		{NewMinAD(f), f.Dims},
		{NewValiant(f), 2 * f.Dims},
		{NewUGAL(f), 2 * f.Dims},
		{NewUGALS(f), 2 * f.Dims},
		{NewClosAD(f), 2 * f.Dims},
	}
	for _, c := range cases {
		n, err := sim.New(f.Graph(), c.alg, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		n.SetPattern(traffic.NewUniform(f.NumNodes))
		bad := 0
		var badHops, badMin int
		n.OnDeliver(func(p *sim.Packet, _ int64) {
			min := f.MinHops(f.RouterOf(p.Src), f.RouterOf(p.Dst))
			if p.Hops < min || p.Hops > c.maxHops {
				bad++
				badHops, badMin = p.Hops, min
			}
			if c.alg.Name() == "MIN AD" && p.Hops != min {
				bad++
				badHops, badMin = p.Hops, min
			}
		})
		for i := 0; i < 600; i++ {
			n.GenerateBernoulli(0.3)
			n.Step()
		}
		if bad > 0 {
			t.Errorf("%s: %d packets violated hop bounds (e.g. hops=%d min=%d max=%d)",
				c.alg.Name(), bad, badHops, badMin, c.maxHops)
		}
		if _, delivered := n.Totals(); delivered == 0 {
			t.Errorf("%s: nothing delivered", c.alg.Name())
		}
	}
}

// Fig 5 in miniature: on small worst-case batches, greedy UGAL suffers
// transient load imbalance (all inputs pick the minimal queue before the
// state updates) and CLOS AD's adaptive intermediate choice performs best.
func TestFig5BatchTransients(t *testing.T) {
	f := ff(t, 8, 2)
	wc := traffic.NewWorstCase(f.K, f.NumRouters)
	norm := func(alg sim.Algorithm, batch int) float64 {
		res, err := sim.RunBatch(f.Graph(), alg, sim.DefaultConfig(),
			sim.BatchConfig{Pattern: wc, BatchSize: batch, MaxCycles: 100000})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		return res.NormalizedLatency
	}
	const batch = 2
	ugal := norm(NewUGAL(f), batch)
	ugalS := norm(NewUGALS(f), batch)
	closAD := norm(NewClosAD(f), batch)
	if ugal <= ugalS {
		t.Errorf("greedy UGAL (%.2f) should be worse than UGAL-S (%.2f) on small batches", ugal, ugalS)
	}
	if closAD > ugalS {
		t.Errorf("CLOS AD (%.2f) should be no worse than UGAL-S (%.2f) on small batches", closAD, ugalS)
	}
	// Large batches approach the inverse throughput for all non-minimal
	// algorithms: the gap must shrink.
	bigUGAL := norm(NewUGAL(f), 64)
	bigClos := norm(NewClosAD(f), 64)
	if bigUGAL/bigClos > ugal/closAD {
		t.Errorf("normalized-latency gap should shrink with batch size: small %.2f/%.2f, big %.2f/%.2f",
			ugal, closAD, bigUGAL, bigClos)
	}
}

// UGAL must route minimally on benign traffic at low load (§3.1): average
// hop count should match minimal routing, not Valiant's doubled hops.
func TestUGALRoutesMinimallyAtLowLoad(t *testing.T) {
	f := ff(t, 8, 2)
	for _, alg := range []sim.Algorithm{NewUGAL(f), NewUGALS(f), NewClosAD(f)} {
		res, err := sim.RunLoadPoint(f.Graph(), alg, sim.DefaultConfig(), sim.RunConfig{
			Load:    0.1,
			Pattern: traffic.NewUniform(f.NumNodes),
			Warmup:  400,
			Measure: 400,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Minimal average inter-router hops for 1-D uniform-with-self is
		// P(remote router) = 56/64 = 0.875 for the 8-ary 2-flat; transient
		// queue blips cause occasional misroutes, so allow a small margin.
		if res.AvgHops > 1.1 {
			t.Errorf("%s avg hops at low load = %.3f, want ~0.875 (minimal)", alg.Name(), res.AvgHops)
		}
	}
	// VAL by contrast misroutes everything.
	res, err := sim.RunLoadPoint(f.Graph(), NewValiant(f), sim.DefaultConfig(), sim.RunConfig{
		Load:    0.1,
		Pattern: traffic.NewUniform(f.NumNodes),
		Warmup:  400,
		Measure: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgHops < 1.2 {
		t.Errorf("VAL avg hops = %.3f, want ~1.75 (two random phases)", res.AvgHops)
	}
}

// On the worst-case pattern at high load, the adaptive algorithms must
// switch to non-minimal routing: average hops approach 2.
func TestAdaptiveSwitchesToNonMinimalOnWC(t *testing.T) {
	f := ff(t, 8, 2)
	wc := traffic.NewWorstCase(f.K, f.NumRouters)
	for _, alg := range []sim.Algorithm{NewUGALS(f), NewClosAD(f)} {
		res, err := sim.RunLoadPoint(f.Graph(), alg, sim.DefaultConfig(), sim.RunConfig{
			Load:    0.30,
			Pattern: wc,
			Warmup:  500,
			Measure: 500,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Saturated {
			t.Errorf("%s saturated at 30%% WC load", alg.Name())
		}
		if res.AvgHops < 1.3 {
			t.Errorf("%s avg hops on WC at load 0.3 = %.3f, want > 1.3 (mostly non-minimal)",
				alg.Name(), res.AvgHops)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	f := ff(t, 4, 2)
	wc := traffic.NewWorstCase(f.K, f.NumRouters)
	for _, mk := range []func(*core.FlatFly) sim.Algorithm{
		func(f *core.FlatFly) sim.Algorithm { return NewUGAL(f) },
		func(f *core.FlatFly) sim.Algorithm { return NewClosAD(f) },
	} {
		r1, err := sim.RunBatch(f.Graph(), mk(f), sim.DefaultConfig(),
			sim.BatchConfig{Pattern: wc, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := sim.RunBatch(f.Graph(), mk(f), sim.DefaultConfig(),
			sim.BatchConfig{Pattern: wc, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		if r1.CompletionCycles != r2.CompletionCycles {
			t.Errorf("batch completion not deterministic: %d vs %d", r1.CompletionCycles, r2.CompletionCycles)
		}
	}
}

// Multiplicity variant (Fig 14a): doubled channels should roughly double
// worst-case minimal throughput (2/k instead of 1/k).
func TestMultiplicityDoublesWCThroughput(t *testing.T) {
	f1 := ff(t, 8, 2)
	f2, err := core.NewFlatFly(8, 2, core.WithMultiplicity(2))
	if err != nil {
		t.Fatal(err)
	}
	wc := traffic.NewWorstCase(8, 8)
	t1 := satThroughput(t, f1, NewMinAD(f1), wc)
	thpt2, err := sim.SaturationThroughput(f2.Graph(), NewMinAD(f2), sim.DefaultConfig(), wc, 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if thpt2 < 1.6*t1 {
		t.Errorf("doubled channels: throughput %.3f vs %.3f, want ~2x", thpt2, t1)
	}
}

func TestMinPickerUniformTieBreak(t *testing.T) {
	f := ff(t, 4, 2)
	n, err := sim.New(f.Graph(), NewMinAD(f), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = n
	// Exercised implicitly by the simulations above; here just check the
	// picker's bookkeeping via a tiny fake view is not needed — the
	// uniform WC spread in TestFig4b depends on it.
	_ = topo.RouterID(0)
}
