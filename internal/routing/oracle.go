package routing

import (
	"fmt"

	"flatnet/internal/core"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
)

// ZeroLoadModel is the closed-form zero-load latency oracle the simulator
// is validated against (internal/check's conformance suite): with empty
// queues, a packet's latency decomposes into per-hop channel and pipeline
// terms plus ejection and serialization. The model is exact for the
// simulator's timing — route and switch allocation at a router are
// combinational within a cycle, so the only per-hop charges are the
// channel traversal and the configured router pipeline delay, and the
// source router's own pipeline is not charged (the packet enters at the
// allocation stage).
type ZeroLoadModel struct {
	// AvgHops is the expected inter-router hop count of the (topology,
	// routing, traffic) combination; ejection is not a hop.
	AvgHops float64
	// ChannelLatency is the inter-router channel traversal in cycles.
	ChannelLatency int
	// EjectLatency is the router-to-terminal channel traversal in cycles.
	EjectLatency int
	// RouterDelay is the per-hop pipeline delay (sim.Config.RouterDelay),
	// charged once per inter-router hop on arrival.
	RouterDelay int
	// PacketSize is the flits per packet; the tail flit trails the head
	// by PacketSize-1 cycles of serialization.
	PacketSize int
}

// Latency returns the expected zero-load packet latency in cycles, as
// measured by the simulator (injection to tail-flit delivery).
func (m ZeroLoadModel) Latency() float64 {
	ps := m.PacketSize
	if ps < 1 {
		ps = 1
	}
	return m.AvgHops*float64(m.ChannelLatency+m.RouterDelay) +
		float64(m.EjectLatency) + float64(ps-1)
}

// ZeroLoadFor derives a ZeroLoadModel from a channel graph and a
// simulator configuration. The graph must have uniform network-channel
// and ejection latencies (all of this repository's topologies do); a
// mixed-latency graph is rejected, since a single scalar model cannot
// describe it.
func ZeroLoadFor(g *topo.Graph, cfg sim.Config, avgHops float64) (ZeroLoadModel, error) {
	chanLat, ejectLat := 0, 0
	for r := range g.Routers {
		for p, out := range g.Routers[r].Out {
			switch out.Kind {
			case topo.Network:
				if chanLat == 0 {
					chanLat = out.Latency
				} else if out.Latency != chanLat {
					return ZeroLoadModel{}, fmt.Errorf(
						"routing: mixed network latencies (%d vs %d at router %d port %d)",
						chanLat, out.Latency, r, p)
				}
			case topo.Terminal:
				if ejectLat == 0 {
					ejectLat = out.Latency
				} else if out.Latency != ejectLat {
					return ZeroLoadModel{}, fmt.Errorf(
						"routing: mixed ejection latencies (%d vs %d at router %d port %d)",
						ejectLat, out.Latency, r, p)
				}
			}
		}
	}
	if ejectLat == 0 {
		return ZeroLoadModel{}, fmt.Errorf("routing: graph %s has no ejection channels", g.Label)
	}
	return ZeroLoadModel{
		AvgHops:        avgHops,
		ChannelLatency: chanLat,
		EjectLatency:   ejectLat,
		RouterDelay:    cfg.RouterDelay,
		PacketSize:     cfg.PacketSize,
	}, nil
}

// ValiantUniformHops returns VAL's exact expected inter-router hop count
// on a flattened butterfly under uniform traffic (self-traffic included).
// VAL draws a uniformly random intermediate router and collapses to the
// minimal route when the intermediate equals the current router at
// injection or the destination router (flatfly.go's phase logic), so the
// expectation enumerates every (source, destination, intermediate) router
// triple:
//
//	i == r or i == d:  MinHops(r, d)
//	otherwise:         MinHops(r, i) + MinHops(i, d)
//
// Every router hosts the same number of terminals, so uniform traffic
// over nodes is uniform over router pairs.
func ValiantUniformHops(f *core.FlatFly) float64 {
	return ValiantHopsFromDist(f.NumRouters, func(a, b int) int {
		return f.MinHops(topo.RouterID(a), topo.RouterID(b))
	})
}

// ValiantHopsFromDist returns VAL's exact expected inter-router hop
// count under uniform traffic for any topology whose routers host equal
// terminal counts, given its minimal hop-count function: the O(R³)
// enumeration of every (source, destination, intermediate) triple with
// the same collapse rule (i == r or i == d routes minimally) every VAL
// implementation in this package uses. The Slim Fly and dragonfly
// zero-load oracles are built on this.
func ValiantHopsFromDist(R int, dist func(a, b int) int) float64 {
	total := 0
	for r := 0; r < R; r++ {
		for d := 0; d < R; d++ {
			direct := dist(r, d)
			for i := 0; i < R; i++ {
				if i == r || i == d {
					total += direct
				} else {
					total += dist(r, i) + dist(i, d)
				}
			}
		}
	}
	return float64(total) / float64(R*R*R)
}
