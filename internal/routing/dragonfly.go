package routing

import (
	"fmt"

	"flatnet/internal/sim"
	"flatnet/internal/topo"
)

// dfTables holds the precomputed terminal tables for one dragonfly. The
// hierarchical structure makes per-hop decisions pure arithmetic — no
// all-pairs table is needed — so dragonflies of any size simulate with
// O(N) table memory. Read-only after construction, like every routing
// table in this package.
type dfTables struct {
	p, a, h    int
	groups     int
	numRouters int

	routerOf []int32 // node -> attached router
	termPort []int32 // node -> ejection port
}

func newDFTables(d *topo.Dragonfly) *dfTables {
	t := &dfTables{
		p: d.P, a: d.A, h: d.H,
		groups:     d.Groups,
		numRouters: d.NumRouters,
	}
	t.routerOf = make([]int32, d.NumNodes)
	t.termPort = make([]int32, d.NumNodes)
	for n := 0; n < d.NumNodes; n++ {
		t.routerOf[n] = int32(n / d.P)
		t.termPort[n] = int32(n % d.P)
	}
	return t
}

// group and pos decompose a router index.
func (t *dfTables) group(r topo.RouterID) int { return int(r) / t.a }
func (t *dfTables) pos(r topo.RouterID) int   { return int(r) % t.a }

// globalChannel returns, for distinct groups g1 and g2, the owning
// router position and local slot of group g1's channel to g2.
func (t *dfTables) globalChannel(g1, g2 int) (ownerPos, slot int) {
	l := ((g2-g1-1)%t.groups + t.groups) % t.groups
	return l / t.h, l % t.h
}

// localPort returns the port from position pos to position peer.
func (t *dfTables) localPort(pos, peer int) int {
	p := t.p + peer
	if peer > pos {
		p--
	}
	return p
}

// globalPort returns the port for the router's own global slot.
func (t *dfTables) globalPort(slot int) int { return t.p + t.a - 1 + slot }

// hops returns the hierarchical minimal hop count between routers.
func (t *dfTables) hops(a, b topo.RouterID) int {
	if a == b {
		return 0
	}
	g1, g2 := t.group(a), t.group(b)
	if g1 == g2 {
		return 1
	}
	o1, _ := t.globalChannel(g1, g2)
	o2, _ := t.globalChannel(g2, g1)
	h := 1
	if t.pos(a) != o1 {
		h++
	}
	if t.pos(b) != o2 {
		h++
	}
	return h
}

// dfBase carries the shared dragonfly routing helpers.
type dfBase struct {
	d *topo.Dragonfly
	t *dfTables
}

// eject returns the terminal-port decision at the destination router.
func (b dfBase) eject(p *sim.Packet) sim.OutRef {
	return sim.OutRef{Port: int(b.t.termPort[p.Dst]), VC: 0}
}

// minHopPort returns the next output port of the canonical hierarchical
// minimal route from r toward dst (r != dst): local to the global-channel
// owner, the global channel itself, then local to the destination router.
// The route is unique, so minimal dragonfly routing is oblivious.
func (b dfBase) minHopPort(r, dst topo.RouterID) int {
	t := b.t
	g1, g2 := t.group(r), t.group(dst)
	if g1 == g2 {
		return t.localPort(t.pos(r), t.pos(dst))
	}
	o1, slot := t.globalChannel(g1, g2)
	if t.pos(r) == o1 {
		return t.globalPort(slot)
	}
	return t.localPort(t.pos(r), o1)
}

// minHop returns the minimal-route decision with hops-remaining VC
// selection offset by vcBase: VC indices strictly decrease along every
// route, the deadlock-freedom argument for the hierarchical path.
func (b dfBase) minHop(r, dst topo.RouterID, vcBase int) sim.OutRef {
	return sim.OutRef{Port: b.minHopPort(r, dst), VC: vcBase + b.t.hops(r, dst) - 1}
}

// DragonflyMin is minimal (hierarchical) routing on the dragonfly: the
// unique local-global-local path, 3 hops-remaining VCs.
type DragonflyMin struct{ dfBase }

// NewDragonflyMin builds minimal routing for a dragonfly.
func NewDragonflyMin(d *topo.Dragonfly) *DragonflyMin {
	return &DragonflyMin{dfBase{d, newDFTables(d)}}
}

// Name implements sim.Algorithm.
func (a *DragonflyMin) Name() string { return "DF MIN" }

// NumVCs implements sim.Algorithm.
func (a *DragonflyMin) NumVCs() int { return 3 }

// Sequential implements sim.Algorithm.
func (a *DragonflyMin) Sequential() bool { return false }

// Route implements sim.Algorithm.
func (a *DragonflyMin) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	dst := topo.RouterID(a.t.routerOf[p.Dst])
	if r == dst {
		return a.eject(p)
	}
	return a.minHop(r, dst, 0)
}

// DragonflyValiant is Valiant routing on the dragonfly: minimally to a
// uniformly random intermediate router, then minimally to the
// destination. Each phase takes at most 3 hops; 6 VCs in two bands keep
// VC indices strictly decreasing along every route.
type DragonflyValiant struct{ dfBase }

// NewDragonflyValiant builds VAL for a dragonfly.
func NewDragonflyValiant(d *topo.Dragonfly) *DragonflyValiant {
	return &DragonflyValiant{dfBase{d, newDFTables(d)}}
}

// Name implements sim.Algorithm.
func (a *DragonflyValiant) Name() string { return "DF VAL" }

// NumVCs implements sim.Algorithm.
func (a *DragonflyValiant) NumVCs() int { return 6 }

// Sequential implements sim.Algorithm.
func (a *DragonflyValiant) Sequential() bool { return false }

// Route implements sim.Algorithm.
func (a *DragonflyValiant) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	dst := topo.RouterID(a.t.routerOf[p.Dst])
	if p.Phase == sim.PhaseNew {
		p.Inter = int32(view.RNG().Intn(a.t.numRouters))
		p.Phase = sim.PhaseNonMinimal
	}
	if p.Phase == sim.PhaseNonMinimal && (topo.RouterID(p.Inter) == r || topo.RouterID(p.Inter) == dst) {
		p.Phase = sim.PhaseMinimal
	}
	if p.Phase == sim.PhaseNonMinimal {
		return a.minHop(r, topo.RouterID(p.Inter), 3)
	}
	if r == dst {
		return a.eject(p)
	}
	return a.minHop(r, dst, 0)
}

// DragonflyUGAL is UGAL on the dragonfly: the source router compares the
// minimal route against a Valiant route through a random intermediate by
// queue-length x hop-count products — the dragonfly paper's own load-
// balancing scheme, here in source-router form with per-packet choice.
type DragonflyUGAL struct {
	dfBase
	seq bool
}

// NewDragonflyUGAL builds greedy UGAL for a dragonfly.
func NewDragonflyUGAL(d *topo.Dragonfly) *DragonflyUGAL {
	return &DragonflyUGAL{dfBase{d, newDFTables(d)}, false}
}

// NewDragonflyUGALS builds UGAL-S (sequential allocation) for a
// dragonfly.
func NewDragonflyUGALS(d *topo.Dragonfly) *DragonflyUGAL {
	return &DragonflyUGAL{dfBase{d, newDFTables(d)}, true}
}

// Name implements sim.Algorithm.
func (a *DragonflyUGAL) Name() string {
	if a.seq {
		return "DF UGAL-S"
	}
	return "DF UGAL"
}

// NumVCs implements sim.Algorithm.
func (a *DragonflyUGAL) NumVCs() int { return 6 }

// Sequential implements sim.Algorithm.
func (a *DragonflyUGAL) Sequential() bool { return a.seq }

// Route implements sim.Algorithm.
func (a *DragonflyUGAL) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	dst := topo.RouterID(a.t.routerOf[p.Dst])
	if p.Phase == sim.PhaseNew {
		a.decide(view, p, r, dst)
	}
	if p.Phase == sim.PhaseNonMinimal && topo.RouterID(p.Inter) == r {
		p.Phase = sim.PhaseMinimal
	}
	if p.Phase == sim.PhaseNonMinimal {
		return a.minHop(r, topo.RouterID(p.Inter), 3)
	}
	if r == dst {
		return a.eject(p)
	}
	return a.minHop(r, dst, 0)
}

// decide makes the source-router minimal-vs-Valiant choice by comparing
// the first-hop queues scaled by path hop counts.
func (a *DragonflyUGAL) decide(view *sim.RouterView, p *sim.Packet, r, dst topo.RouterID) {
	b := topo.RouterID(view.RNG().Intn(a.t.numRouters))
	if b == r || b == dst || r == dst {
		p.Phase = sim.PhaseMinimal
		return
	}
	hMin := a.t.hops(r, dst)
	hNM := a.t.hops(r, b) + a.t.hops(b, dst)
	qMin := view.QueueEstPort(a.minHopPort(r, dst))
	qNM := view.QueueEstPort(a.minHopPort(r, b))
	if qMin*hMin <= qNM*hNM {
		p.Phase = sim.PhaseMinimal
	} else {
		p.Phase = sim.PhaseNonMinimal
		p.Inter = int32(b)
	}
}

// NewDragonflyAlgorithm constructs a dragonfly algorithm by name: "min",
// "val", "ugal" or "ugal-s" (long forms "DF MIN", "DF VAL", "DF UGAL",
// "DF UGAL-S").
func NewDragonflyAlgorithm(name string, d *topo.Dragonfly) (sim.Algorithm, error) {
	switch name {
	case "min", "MIN", "MIN AD", "DF MIN":
		return NewDragonflyMin(d), nil
	case "val", "VAL", "DF VAL":
		return NewDragonflyValiant(d), nil
	case "ugal", "UGAL", "DF UGAL":
		return NewDragonflyUGAL(d), nil
	case "ugal-s", "UGAL-S", "DF UGAL-S":
		return NewDragonflyUGALS(d), nil
	default:
		return nil, fmt.Errorf("routing: unknown dragonfly algorithm %q", name)
	}
}
