package routing

import (
	"flatnet/internal/sim"
	"flatnet/internal/topo"
)

// TorusDOR is dimension-order routing on a k-ary n-cube with the
// classic dateline discipline: within each dimension's ring a packet
// starts on VC 0 and moves to VC 1 after crossing the wrap-around link,
// which breaks the ring's cyclic channel dependence. Packets always take
// the shorter way around each ring.
//
// The torus is the paper's low-radix foil (§1): with router bandwidth
// fixed, a k-ary n-cube spends it on a few wide ports and pays a large
// hop count, where the flattened butterfly spends it on many narrow ports
// and a one- or two-hop diameter.
type TorusDOR struct {
	t *topo.Torus
}

// NewTorusDOR builds dateline dimension-order torus routing.
func NewTorusDOR(t *topo.Torus) *TorusDOR { return &TorusDOR{t} }

// Name implements sim.Algorithm.
func (a *TorusDOR) Name() string { return "torus DOR" }

// NumVCs implements sim.Algorithm: two, for the dateline discipline.
func (a *TorusDOR) NumVCs() int { return 2 }

// Sequential implements sim.Algorithm.
func (a *TorusDOR) Sequential() bool { return false }

// Packet routing state, kept in Packet.DimMask:
//
//	bits 1..31: current dimension + 1 (0 = not started)
//	bit 0:      dateline crossed within the current dimension
const (
	torusCrossedBit = 1
	torusDimShift   = 1
)

// Route implements sim.Algorithm.
func (a *TorusDOR) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	dst := topo.RouterID(p.Dst) // one node per router
	if r == dst {
		return sim.OutRef{Port: 0, VC: 0}
	}
	for d := 0; d < a.t.N; d++ {
		cur := a.t.Digit(r, d)
		want := a.t.Digit(dst, d)
		if cur == want {
			continue
		}
		// Entering a new dimension resets the dateline flag.
		if int(p.DimMask>>torusDimShift) != d+1 {
			p.DimMask = uint32(d+1) << torusDimShift
		}
		_, dir := a.t.RingDistance(cur, want)
		port := a.t.PortPlus(d)
		if dir < 0 {
			port = a.t.PortMinus(d)
		}
		vc := 0
		if p.DimMask&torusCrossedBit != 0 {
			vc = 1
		}
		// Crossing the wrap-around link (the dateline at coordinate 0 for
		// the plus direction, k-1 for minus) switches to VC 1 for the
		// rest of this dimension.
		next := ((cur+dir)%a.t.K + a.t.K) % a.t.K
		if (dir > 0 && next < cur) || (dir < 0 && next > cur) {
			p.DimMask |= torusCrossedBit
			vc = 1
		}
		return sim.OutRef{Port: port, VC: vc}
	}
	panic("routing: torus DOR found no differing dimension")
}
