package routing

import (
	"flatnet/internal/sim"
	"flatnet/internal/topo"
)

// ButterflyDest is the destination-based routing of a conventional
// butterfly (Table 1): at stage s the packet takes the output selected by
// digit n-1-s of its destination. With Dilation 1 there is exactly one
// path, hence no routing freedom and 1 VC; on a dilated butterfly (§6
// related work) the router adaptively picks the least-occupied parallel
// copy of the selected channel, recovering a factor of Dilation in
// adversarial throughput at Dilation-times the link cost.
type ButterflyDest struct {
	b *topo.Butterfly
}

// NewButterflyDest builds destination-based butterfly routing.
func NewButterflyDest(b *topo.Butterfly) *ButterflyDest { return &ButterflyDest{b} }

// Name implements sim.Algorithm.
func (a *ButterflyDest) Name() string { return "destination" }

// NumVCs implements sim.Algorithm.
func (a *ButterflyDest) NumVCs() int { return 1 }

// Sequential implements sim.Algorithm.
func (a *ButterflyDest) Sequential() bool { return false }

// Route implements sim.Algorithm. The last stage's chosen output is the
// ejection port itself (copy 0 of the terminal's logical channel).
func (a *ButterflyDest) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	stage, _ := a.b.StageOf(view.Router())
	o := a.b.OutputFor(stage, p.Dst)
	if stage == a.b.N-1 || a.b.Dilation == 1 {
		return sim.OutRef{Port: a.b.PortFor(o, 0), VC: 0}
	}
	m := newMinPicker(view)
	for c := 0; c < a.b.Dilation; c++ {
		port := a.b.PortFor(o, c)
		m.offer(view.QueueEstPort(port), port)
	}
	return sim.OutRef{Port: m.bestArg, VC: 0}
}

// FoldedClosAdaptive is the adaptive routing with sequential allocation
// used for the folded Clos in Table 1 (after Kim, Dally & Abts, SC'06):
// ascend on the least-occupied uplink, then descend deterministically to
// the destination leaf, adaptively choosing among parallel down-links.
// The up*/down* channel order is acyclic, so 1 VC suffices.
type FoldedClosAdaptive struct {
	f *topo.FoldedClos
}

// NewFoldedClosAdaptive builds the folded-Clos router.
func NewFoldedClosAdaptive(f *topo.FoldedClos) *FoldedClosAdaptive {
	return &FoldedClosAdaptive{f}
}

// Name implements sim.Algorithm.
func (a *FoldedClosAdaptive) Name() string { return "adaptive sequential" }

// NumVCs implements sim.Algorithm.
func (a *FoldedClosAdaptive) NumVCs() int { return 1 }

// Sequential implements sim.Algorithm.
func (a *FoldedClosAdaptive) Sequential() bool { return true }

// Route implements sim.Algorithm.
func (a *FoldedClosAdaptive) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	dstLeaf := a.f.LeafOf(p.Dst)
	if a.f.IsLeaf(r) {
		if r == dstLeaf {
			return sim.OutRef{Port: int(p.Dst) % a.f.Terminals, VC: 0}
		}
		// Ascend: any uplink; shortest queue.
		m := newMinPicker(view)
		for j := 0; j < a.f.Uplinks; j++ {
			port := a.f.UplinkPort(j)
			m.offer(view.QueueEstPort(port), port)
		}
		return sim.OutRef{Port: m.bestArg, VC: 0}
	}
	// Middle: descend toward the destination leaf on the least-occupied
	// parallel link.
	lo, hi := a.f.DownPorts(int(dstLeaf))
	m := newMinPicker(view)
	for port := lo; port < hi; port++ {
		m.offer(view.QueueEstPort(port), port)
	}
	return sim.OutRef{Port: m.bestArg, VC: 0}
}

// ECube is dimension-order routing on the binary hypercube (Table 1):
// correct the lowest differing address bit first. The fixed dimension
// order makes the channel dependence graph acyclic, so 1 VC suffices.
type ECube struct {
	h *topo.Hypercube
}

// NewECube builds e-cube hypercube routing.
func NewECube(h *topo.Hypercube) *ECube { return &ECube{h} }

// Name implements sim.Algorithm.
func (a *ECube) Name() string { return "e-cube" }

// NumVCs implements sim.Algorithm.
func (a *ECube) NumVCs() int { return 1 }

// Sequential implements sim.Algorithm.
func (a *ECube) Sequential() bool { return false }

// Route implements sim.Algorithm.
func (a *ECube) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := int(view.Router())
	d := int(a.h.RouterOf(p.Dst))
	if r == d {
		return sim.OutRef{Port: int(p.Dst) % a.h.Concentration, VC: 0}
	}
	diff := uint32(r ^ d)
	for bit := 0; bit < a.h.Dims; bit++ {
		if diff&(1<<uint(bit)) != 0 {
			return sim.OutRef{Port: a.h.PortForDim(bit), VC: 0}
		}
	}
	panic("routing: e-cube found no differing bit")
}

// GHCMinAdaptive is minimal adaptive routing on a generalized hypercube:
// at each hop take the productive channel with the shortest queue, with
// hops-remaining VCs for deadlock freedom. The paper (§2.3) notes that a
// GHC with minimal routing suffers the same adversarial-pattern bottleneck
// as a conventional butterfly; this algorithm lets that be demonstrated.
type GHCMinAdaptive struct {
	h *topo.GHC
}

// NewGHCMinAdaptive builds minimal adaptive GHC routing.
func NewGHCMinAdaptive(h *topo.GHC) *GHCMinAdaptive { return &GHCMinAdaptive{h} }

// Name implements sim.Algorithm.
func (a *GHCMinAdaptive) Name() string { return "GHC min-adaptive" }

// NumVCs implements sim.Algorithm.
func (a *GHCMinAdaptive) NumVCs() int { return len(a.h.Radices) }

// Sequential implements sim.Algorithm.
func (a *GHCMinAdaptive) Sequential() bool { return false }

// Route implements sim.Algorithm.
func (a *GHCMinAdaptive) Route(view *sim.RouterView, p *sim.Packet) sim.OutRef {
	r := view.Router()
	d := topo.RouterID(p.Dst) // one node per router
	if r == d {
		return sim.OutRef{Port: 0, VC: 0}
	}
	hopsLeft := 0
	m := newMinPicker(view)
	for dim := range a.h.Radices {
		want := a.h.Digit(d, dim)
		if a.h.Digit(r, dim) == want {
			continue
		}
		hopsLeft++
		port := a.h.PortFor(dim, want)
		m.offer(view.QueueEstPort(port), port)
	}
	return sim.OutRef{Port: m.bestArg, VC: hopsLeft - 1}
}
