package routing

import (
	"testing"

	"flatnet/internal/sim"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

func TestTorusDORDelivers(t *testing.T) {
	tor, err := topo.NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg := NewTorusDOR(tor)
	if alg.NumVCs() != 2 || alg.Sequential() {
		t.Fatal("torus DOR metadata wrong")
	}
	n, err := sim.New(tor.Graph(), alg, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(tor.NumNodes))
	bad := 0
	n.OnDeliver(func(p *sim.Packet, _ int64) {
		if p.Hops != tor.MinHops(topo.RouterID(p.Src), topo.RouterID(p.Dst)) {
			bad++
		}
	})
	for i := 0; i < 600; i++ {
		n.GenerateBernoulli(0.2)
		n.Step()
	}
	if _, d := n.Totals(); d == 0 {
		t.Fatal("nothing delivered")
	}
	if bad != 0 {
		t.Fatalf("%d packets took non-minimal torus routes", bad)
	}
}

func TestTorusDORThroughputUR(t *testing.T) {
	// A k-ary n-cube with unit channels: uniform traffic saturates near
	// 4k... the classic result is throughput = 8/k of capacity relative
	// to its own bisection; with our per-node normalization the 4-ary
	// 2-cube sustains roughly half of injection bandwidth (avg hop count
	// 2 over 4 channels/router).
	tor, err := topo.NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	thpt, err := sim.SaturationThroughput(tor.Graph(), NewTorusDOR(tor), sim.DefaultConfig(),
		traffic.NewUniform(tor.NumNodes), 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	// Theoretical channel-limited rate: 4 channels per router, average
	// minimal hop distance 2 -> lambda_max = 4/2 = 2 flits/node/cycle,
	// but ejection caps at 1. DOR's dimension imbalance costs some of
	// that; anything above 0.7 indicates healthy routing.
	if thpt < 0.7 {
		t.Fatalf("torus UR throughput = %.3f, want > 0.7", thpt)
	}
}

func TestTorusDORTornado(t *testing.T) {
	// Tornado traffic halfway around the ring is the classic torus
	// adversary for minimal routing: each dim-0 ring carries k/2-hop
	// flows in one direction... with k=8, each node sends 4 hops
	// forward; minimal DOR loads one direction only, capping throughput
	// at 1/2 of the ring's aggregate in that direction: ~2x worse than
	// uniform. This motivates the non-minimal routing the paper applies
	// to the flattened butterfly (§6 cites GOAL/Valiant on tori).
	tor, err := topo.NewTorus(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	tornado := traffic.NewTornado(1, 8)
	// Each node sends k/2 = 4 hops clockwise; the plus-direction channels
	// carry 4 flows each at unit channel rate, so the network sustains
	// ~1/4 — verified just below the saturation point. (Offered loads far
	// beyond saturation exhibit the post-saturation throughput
	// degradation documented for tornado on tori with locally-fair
	// arbitration — the instability GOAL-style routing addresses.)
	res, err := sim.RunLoadPoint(tor.Graph(), NewTorusDOR(tor), sim.DefaultConfig(), sim.RunConfig{
		Load: 0.22, Pattern: tornado, Warmup: 1500, Measure: 1500, MaxCycles: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptedRate < 0.19 || res.AcceptedRate > 0.26 {
		t.Fatalf("torus tornado accepted rate at 0.22 offered = %.3f, want ~0.22", res.AcceptedRate)
	}
	over, err := sim.RunLoadPoint(tor.Graph(), NewTorusDOR(tor), sim.DefaultConfig(), sim.RunConfig{
		Load: 0.35, Pattern: tornado, Warmup: 1500, Measure: 1500, MaxCycles: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !over.Saturated && over.AcceptedRate > 0.30 {
		t.Fatalf("offered 0.35 should exceed tornado capacity (~0.25), accepted %.3f", over.AcceptedRate)
	}
}

func TestTorusVsFlatFlyLatency(t *testing.T) {
	// §1 in numbers: at 64 nodes, the torus pays its diameter; the
	// flattened butterfly is a (near-)single-hop network.
	tor, err := topo.NewTorus(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := ff(t, 8, 2)
	resT, err := sim.RunLoadPoint(tor.Graph(), NewTorusDOR(tor), sim.DefaultConfig(), sim.RunConfig{
		Load: 0.1, Pattern: traffic.NewUniform(64), Warmup: 400, Measure: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	resF, err := sim.RunLoadPoint(f.Graph(), NewMinAD(f), sim.DefaultConfig(), sim.RunConfig{
		Load: 0.1, Pattern: traffic.NewUniform(64), Warmup: 400, Measure: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resT.AvgLatency < 1.5*resF.AvgLatency {
		t.Fatalf("torus latency %.2f should be well above flattened butterfly %.2f",
			resT.AvgLatency, resF.AvgLatency)
	}
	if resT.AvgHops < 2.0 {
		t.Fatalf("torus average hops %.2f implausibly low", resT.AvgHops)
	}
}

func TestTorusDatelineDeadlockFreedom(t *testing.T) {
	// Saturate a single ring, where the wrap-around dependency would
	// deadlock without the dateline VC switch, and verify sustained
	// delivery.
	tor, err := topo.NewTorus(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sim.New(tor.Graph(), NewTorusDOR(tor), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewUniform(8))
	var lastDelivered int64
	for phase := 0; phase < 10; phase++ {
		for i := 0; i < 300; i++ {
			n.GenerateBernoulli(1.0)
			n.Step()
		}
		_, d := n.Totals()
		if d == lastDelivered {
			t.Fatalf("no progress in phase %d: deadlock suspected at %d delivered", phase, d)
		}
		lastDelivered = d
	}
}

func TestAgeArbitrationStabilizesTornadoOverload(t *testing.T) {
	// Round-robin arbitration collapses under deep overload on the
	// tornado ring (locally fair, globally unfair); age-based arbitration
	// recovers most of the sustainable ~1/4 rate.
	tor, err := topo.NewTorus(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	tornado := traffic.NewTornado(1, 8)
	rrCfg := sim.DefaultConfig()
	rr, err := sim.SaturationThroughput(tor.Graph(), NewTorusDOR(tor), rrCfg, tornado, 1500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	ageCfg := sim.DefaultConfig()
	ageCfg.AgeArbiter = true
	age, err := sim.SaturationThroughput(tor.Graph(), NewTorusDOR(tor), ageCfg, tornado, 1500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if age <= rr {
		t.Errorf("age arbitration (%.3f) should beat round-robin (%.3f) at overload", age, rr)
	}
	if age < 0.20 {
		t.Errorf("age arbitration overload throughput = %.3f, want close to 0.25", age)
	}
}
