// Analytic-evaluation cross-checks: the graph-analytic metrics must
// reproduce every closed-form hop average the simulator is already
// validated against, the orbit-accelerated path must agree with the
// brute-force all-sources sweep, and a 100k-endpoint instance must
// evaluate quickly enough for interactive design-space exploration.
package analysis_test

import (
	"math"
	"testing"
	"time"

	"flatnet/internal/analysis"
	"flatnet/internal/core"
	"flatnet/internal/topo"
)

// relEq asserts |got-want| <= tol*max(|want|,1).
func relEq(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	scale := math.Max(math.Abs(want), 1)
	if math.Abs(got-want) > tol*scale {
		t.Errorf("%s: got %.9f, want %.9f", name, got, want)
	}
}

// TestAnalyticMatchesClosedForms holds the analytic AvgHops of every
// seed topology family to the same closed-form averages the zero-load
// oracle uses, plus the structural constants (diameter, channel count)
// each family is defined by.
func TestAnalyticMatchesClosedForms(t *testing.T) {
	f, err := core.NewFlatFly(8, 2) // 64 nodes, 8 routers, fully connected
	if err != nil {
		t.Fatal(err)
	}
	m, err := analysis.AnalyzeTopology(f)
	if err != nil {
		t.Fatal(err)
	}
	relEq(t, "flatfly avg hops", m.AvgHops, f.AvgUniformMinHops(), 1e-12)
	if m.Diameter != 1 {
		t.Errorf("8-ary 2-flat diameter %d, want 1", m.Diameter)
	}
	if m.Channels != 8*7 {
		t.Errorf("8-ary 2-flat channels %d, want 56", m.Channels)
	}

	b, err := topo.NewButterfly(8, 2) // 64 nodes, unidirectional stages
	if err != nil {
		t.Fatal(err)
	}
	m, err = analysis.AnalyzeTopology(b)
	if err != nil {
		t.Fatal(err)
	}
	relEq(t, "butterfly avg hops", m.AvgHops, b.AvgHops(), 1e-12)

	fc, err := topo.NewFoldedClos(8, 4, 8, 2) // 64 nodes, 2:1 taper
	if err != nil {
		t.Fatal(err)
	}
	m, err = analysis.AnalyzeTopology(fc)
	if err != nil {
		t.Fatal(err)
	}
	relEq(t, "folded Clos avg hops", m.AvgHops, fc.AvgUniformHops(), 1e-12)

	h, err := topo.NewHypercube(6) // 64 nodes
	if err != nil {
		t.Fatal(err)
	}
	m, err = analysis.AnalyzeTopology(h)
	if err != nil {
		t.Fatal(err)
	}
	relEq(t, "hypercube avg hops", m.AvgHops, h.AvgUniformHops(), 1e-12)
	if m.Diameter != 6 {
		t.Errorf("6-cube diameter %d, want 6", m.Diameter)
	}
	// The 6-cube's bisection is known exactly: 32 bidirectional links =
	// 64 unidirectional channels, met by the ID-prefix cut and by the
	// spectral bound (lambda_2 of the weight-2 multigraph Laplacian is 4).
	if m.BisectionUpperChannels != 64 {
		t.Errorf("6-cube bisection upper %.3f channels, want 64", m.BisectionUpperChannels)
	}
	relEq(t, "6-cube spectral bisection lower", m.BisectionLowerChannels, 64, 1e-3)

	s, err := topo.NewSlimFly(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err = analysis.AnalyzeTopology(s)
	if err != nil {
		t.Fatal(err)
	}
	relEq(t, "slim fly avg hops", m.AvgHops, s.AvgUniformMinHops(), 1e-12)
	if m.Diameter != 2 {
		t.Errorf("SF(q=5) diameter %d, want 2", m.Diameter)
	}

	// Dragonfly routing is hierarchical (local-global-local), so its
	// AvgUniformMinHops is an upper bound on the true graph average the
	// analytic sweep measures — two-global shortcuts exist.
	d, err := topo.NewDragonfly(0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err = analysis.AnalyzeTopology(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgHops > d.AvgUniformMinHops()+1e-12 {
		t.Errorf("dragonfly graph avg hops %.6f exceeds hierarchical %.6f", m.AvgHops, d.AvgUniformMinHops())
	}
	if m.Diameter > d.Diameter() {
		t.Errorf("dragonfly graph diameter %d exceeds hierarchical %d", m.Diameter, d.Diameter())
	}
	if m.Diameter > 3 {
		t.Errorf("dragonfly diameter %d, want <= 3", m.Diameter)
	}
}

// TestAnalyticOrbitMatchesSweep pins the orbit-accelerated evaluation to
// the brute-force all-sources sweep for the orbit-bearing families:
// every metric must agree (within floating-point summation order).
func TestAnalyticOrbitMatchesSweep(t *testing.T) {
	s, err := topo.NewSlimFly(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := topo.NewDragonfly(0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		orbit func() (analysis.Metrics, error)
		graph *topo.Graph
	}{
		{"slimfly", func() (analysis.Metrics, error) { return analysis.AnalyzeTopology(s) }, s.Graph()},
		{"dragonfly", func() (analysis.Metrics, error) { return analysis.AnalyzeTopology(d) }, d.Graph()},
	} {
		om, err := tc.orbit()
		if err != nil {
			t.Fatal(err)
		}
		fm, err := analysis.Analyze(tc.graph)
		if err != nil {
			t.Fatal(err)
		}
		if om.Nodes != fm.Nodes || om.Routers != fm.Routers || om.Channels != fm.Channels || om.Diameter != fm.Diameter {
			t.Errorf("%s: orbit %+v vs sweep %+v", tc.name, om, fm)
		}
		relEq(t, tc.name+" avg hops", om.AvgHops, fm.AvgHops, 1e-9)
		relEq(t, tc.name+" path diversity", om.PathDiversity, fm.PathDiversity, 1e-9)
		relEq(t, tc.name+" bisection lower", om.BisectionLowerChannels, fm.BisectionLowerChannels, 1e-6)
		relEq(t, tc.name+" bisection upper", om.BisectionUpperChannels, fm.BisectionUpperChannels, 1e-9)
	}
}

// TestAnalytic100k evaluates a 100k-endpoint Slim Fly — far beyond what
// cycle simulation could touch interactively — and sanity-checks the
// metrics. SF(q=43) has 3698 routers of degree 65; the default
// concentration gives 122,034 terminals.
func TestAnalytic100k(t *testing.T) {
	start := time.Now()
	s, err := topo.NewSlimFly(43, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := analysis.AnalyzeTopology(s)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("SF(q=43): %d terminals, %d routers, diameter %d, avg hops %.4f, diversity %.2f, bisection [%.0f, %.0f] channels in %v",
		m.Nodes, m.Routers, m.Diameter, m.AvgHops, m.PathDiversity,
		m.BisectionLowerChannels, m.BisectionUpperChannels, elapsed)
	if m.Nodes < 100_000 {
		t.Errorf("only %d terminals, want >= 100k", m.Nodes)
	}
	if m.Diameter != 2 {
		t.Errorf("diameter %d, want 2", m.Diameter)
	}
	if m.AvgHops <= 1 || m.AvgHops >= 2 {
		t.Errorf("avg hops %.4f outside (1, 2)", m.AvgHops)
	}
	if m.PathDiversity < 1 {
		t.Errorf("path diversity %.3f < 1", m.PathDiversity)
	}
	if m.BisectionLowerChannels > m.BisectionUpperChannels {
		t.Errorf("bisection lower %.1f above upper %.1f", m.BisectionLowerChannels, m.BisectionUpperChannels)
	}
	// The acceptance target is sub-second without the race detector;
	// allow CI headroom but catch order-of-magnitude regressions.
	if elapsed > 10*time.Second {
		t.Errorf("analytic evaluation took %v, want well under 10s", elapsed)
	}
}
