// The tests in this package validate the cycle-accurate simulator against
// the closed-form channel-load models: each measured saturation
// throughput must land within a tolerance band of its analytic value.
package analysis

import (
	"math"
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// within asserts measured is within frac of predicted.
func within(t *testing.T, name string, measured, predicted, frac float64) {
	t.Helper()
	if predicted == 0 {
		t.Fatalf("%s: zero prediction", name)
	}
	if math.Abs(measured-predicted)/predicted > frac {
		t.Errorf("%s: measured %.3f vs predicted %.3f (tolerance %.0f%%)",
			name, measured, predicted, frac*100)
	}
}

func TestFormulaValues(t *testing.T) {
	if FlatFlyWCMinimal(32) != 1.0/32 {
		t.Error("FlatFlyWCMinimal")
	}
	if FlatFlyWCNonMinimal(32) != 31.0/64 {
		t.Error("FlatFlyWCNonMinimal")
	}
	if FlatFlyURCapacity() != 1 || ValiantURThroughput(32) != 0.5 {
		t.Error("capacity constants")
	}
	if FoldedClosURThroughput(32, 16, 1024) >= 0.53 || FoldedClosURThroughput(32, 16, 1024) <= 0.49 {
		t.Errorf("tapered Clos UR = %v, want ~0.516", FoldedClosURThroughput(32, 16, 1024))
	}
	if FoldedClosURThroughput(8, 8, 64) != 1 {
		t.Error("non-blocking Clos should cap at 1")
	}
	if ButterflyWCThroughput(8) != 0.125 {
		t.Error("ButterflyWC")
	}
	if TorusTornadoThroughput(8) != 0.25 {
		t.Error("TorusTornado")
	}
	if ConcentratedHypercubeWCThroughput(8) != 0.125 {
		t.Error("ConcentratedHypercubeWC")
	}
	if CreditLimitedChannelRate(64, 1, 1) != 1 {
		t.Error("deep buffers should not be credit-limited")
	}
	if got := CreditLimitedChannelRate(4, 8, 8); math.Abs(got-4.0/17) > 1e-12 {
		t.Errorf("CreditLimitedChannelRate = %v, want 4/17", got)
	}
}

func TestSimulatorMatchesFlatFlyModels(t *testing.T) {
	f, err := core.NewFlatFly(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	wc := traffic.NewWorstCase(f.K, f.NumRouters)
	ur := traffic.NewUniform(f.NumNodes)

	min, err := sim.SaturationThroughput(f.Graph(), routing.NewMinAD(f), cfg, wc, 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "FB WC minimal", min, FlatFlyWCMinimal(16), 0.25)

	clos, err := sim.SaturationThroughput(f.Graph(), routing.NewClosAD(f), cfg, wc, 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "FB WC CLOS AD", clos, FlatFlyWCNonMinimal(16), 0.15)

	val, err := sim.SaturationThroughput(f.Graph(), routing.NewValiant(f), cfg, ur, 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "FB UR VAL", val, ValiantURThroughput(16), 0.15)

	urSat, err := sim.SaturationThroughput(f.Graph(), routing.NewMinAD(f), cfg, ur, 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	// Saturation measurement at exactly the critical load loses a few
	// percent to finite buffers; allow 10%.
	within(t, "FB UR capacity", urSat, FlatFlyURCapacity(), 0.10)
}

func TestSimulatorMatchesClosModel(t *testing.T) {
	fc, err := topo.NewFoldedClos(16, 8, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	ur := traffic.NewUniform(fc.NumNodes)
	sat, err := sim.SaturationThroughput(fc.Graph(), routing.NewFoldedClosAdaptive(fc), sim.DefaultConfig(), ur, 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "tapered Clos UR", sat, FoldedClosURThroughput(16, 8, 256), 0.12)
}

func TestSimulatorMatchesButterflyModel(t *testing.T) {
	b, err := topo.NewButterfly(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	wc := traffic.NewWorstCase(8, 8)
	sat, err := sim.SaturationThroughput(b.Graph(), routing.NewButterflyDest(b), sim.DefaultConfig(), wc, 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "butterfly WC", sat, ButterflyWCThroughput(8), 0.20)
}

func TestSimulatorMatchesTornadoModel(t *testing.T) {
	tor, err := topo.NewTorus(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Measure just below the predicted saturation point with age
	// arbitration (round-robin suffers post-saturation instability).
	cfg := sim.DefaultConfig()
	cfg.AgeArbiter = true
	sat, err := sim.SaturationThroughput(tor.Graph(), routing.NewTorusDOR(tor), cfg,
		traffic.NewTornado(1, 8), 1500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "torus tornado", sat, TorusTornadoThroughput(8), 0.20)
}

func TestSimulatorMatchesConcentratedHypercubeModel(t *testing.T) {
	h, err := topo.NewConcentratedHypercube(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	wc := traffic.NewWorstCase(8, 16)
	sat, err := sim.SaturationThroughput(h.Graph(), routing.NewECube(h), sim.DefaultConfig(), wc, 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent router groups differ in one bit for even groups and more
	// for odd ones, so the achieved rate sits between 1/c and 2/c.
	pred := ConcentratedHypercubeWCThroughput(8)
	if sat < pred*0.8 || sat > pred*2.6 {
		t.Errorf("concentrated hypercube WC = %.3f, want within [0.8x, 2.6x] of %.3f", sat, pred)
	}
}

func TestSimulatorMatchesCreditModel(t *testing.T) {
	// A single saturated stream across one 8-cycle channel with 4 credits
	// sustains ~4/17 of the channel.
	f, err := core.NewFlatFly(4, 2, core.WithChannelLatency(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Seed: 1, BufPerPort: 4}
	tab := make([]topo.NodeID, 16)
	for i := range tab {
		tab[i] = topo.NodeID(i)
	}
	tab[0] = 4
	n, err := sim.New(f.Graph(), routing.NewMinAD(f), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPattern(traffic.NewFixed("stream", tab))
	delivered := 0
	n.OnDeliver(func(p *sim.Packet, _ int64) {
		if p.Src == 0 {
			delivered++
		}
	})
	if err := n.InjectAt(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := n.InjectAt(0, n.Cycle(), 4); err != nil {
			t.Fatal(err)
		}
		n.Step()
	}
	rate := float64(delivered) / 3000
	within(t, "credit-limited stream", rate, CreditLimitedChannelRate(4, 8, 8), 0.15)
}
