// Graph-analytic evaluation (the EvalNet methodology): diameter, average
// shortest path, path diversity and bisection-bandwidth bounds computed
// from the channel graph alone, so design-space comparisons at extreme
// scale run in milliseconds without cycle simulation. Topologies that
// expose RouterOrbits (Slim Fly, dragonfly, and the vertex-transitive
// seed families) are evaluated from one BFS per automorphism orbit;
// everything else falls back to a parallel all-sources sweep.
package analysis

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"flatnet/internal/topo"
)

// Metrics is the analytic summary of one topology instance. Hop metrics
// are terminal-weighted: distances are measured from each terminal's
// injection router to each terminal's ejection router (the same
// semantics as the simulator's hop counter and the zero-load oracle),
// with self pairs included in AvgHops, matching AvgUniformMinHops.
type Metrics struct {
	Nodes    int `json:"nodes"`
	Routers  int `json:"routers"`
	Channels int `json:"channels"` // unidirectional network channels

	// Diameter is the maximum injection-router to ejection-router
	// distance over terminal pairs.
	Diameter int `json:"diameter"`
	// AvgHops is the expected minimal inter-router hop count under
	// uniform traffic, self pairs included.
	AvgHops float64 `json:"avg_hops"`
	// PathDiversity is the mean number of distinct minimal router paths
	// over terminal pairs (same-router pairs count one path).
	PathDiversity float64 `json:"path_diversity"`

	// BisectionLowerChannels is a spectral (Fiedler-value) estimate of
	// the minimum unidirectional channel count across a balanced router
	// cut: lambda_2 * R / 4 for the symmetrized channel multigraph. For
	// edge- and vertex-transitive families it is exact or near-exact;
	// it is reported as 0 for graphs whose routers host unequal terminal
	// counts, where a router-balanced cut is not a terminal bisection.
	BisectionLowerChannels float64 `json:"bisection_lower_channels"`
	// BisectionUpperChannels is the best (fewest-channel) balanced cut
	// found among candidate partitions — an upper bound on the true
	// bisection channel count.
	BisectionUpperChannels float64 `json:"bisection_upper_channels"`
}

// orbitTopology is implemented by topologies whose router set decomposes
// into known automorphism orbits; representatives plus orbit sizes let
// global metrics come from a handful of BFS sweeps.
type orbitTopology interface {
	RouterOrbits() (reps []topo.RouterID, sizes []int)
}

// AnalyzeTopology analyzes a topology, exploiting RouterOrbits when the
// concrete type provides it.
func AnalyzeTopology(t topo.Topology) (Metrics, error) {
	if ot, ok := t.(orbitTopology); ok {
		reps, sizes := ot.RouterOrbits()
		return AnalyzeWithOrbits(t.Graph(), reps, sizes)
	}
	return Analyze(t.Graph())
}

// Analyze computes the metrics from the channel graph alone with an
// all-sources BFS sweep, parallelized across CPUs.
func Analyze(g *topo.Graph) (Metrics, error) {
	return analyze(g, nil, nil)
}

// AnalyzeWithOrbits computes the metrics from one BFS per router orbit.
// The orbit sizes must sum to the router count; every router of an orbit
// must have the same terminal attachment and distance profile as its
// representative (true for graph automorphism orbits of topologies with
// uniform concentration).
func AnalyzeWithOrbits(g *topo.Graph, reps []topo.RouterID, sizes []int) (Metrics, error) {
	if len(reps) != len(sizes) {
		return Metrics{}, fmt.Errorf("analysis: %d orbit reps but %d sizes", len(reps), len(sizes))
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != g.NumRouters() {
		return Metrics{}, fmt.Errorf("analysis: orbit sizes sum to %d, want %d routers", total, g.NumRouters())
	}
	return analyze(g, reps, sizes)
}

// csr is a compact adjacency view of the network channels.
type csr struct {
	off []int32
	nbr []int32
}

func buildCSR(g *topo.Graph) csr {
	r := g.NumRouters()
	deg := make([]int32, r)
	channels := 0
	for i := range g.Routers {
		for _, out := range g.Routers[i].Out {
			if out.Kind == topo.Network {
				deg[i]++
				channels++
			}
		}
	}
	c := csr{off: make([]int32, r+1), nbr: make([]int32, channels)}
	for i := 0; i < r; i++ {
		c.off[i+1] = c.off[i] + deg[i]
	}
	fill := make([]int32, r)
	for i := range g.Routers {
		for _, out := range g.Routers[i].Out {
			if out.Kind == topo.Network {
				c.nbr[c.off[i]+fill[i]] = int32(out.Peer)
				fill[i]++
			}
		}
	}
	return c
}

// bfsCounts runs BFS from src over the channel adjacency, filling dist
// (hops) and paths (number of distinct minimal paths, saturating
// float64). The slices are caller-provided scratch of length R.
func bfsCounts(c csr, src int, dist []int32, paths []float64, queue []int32) {
	for i := range dist {
		dist[i] = -1
		paths[i] = 0
	}
	dist[src] = 0
	paths[src] = 1
	queue = queue[:0]
	queue = append(queue, int32(src))
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		dv := dist[v]
		for _, w := range c.nbr[c.off[v]:c.off[v+1]] {
			switch {
			case dist[w] < 0:
				dist[w] = dv + 1
				paths[w] = paths[v]
				queue = append(queue, w)
			case dist[w] == dv+1:
				paths[w] += paths[v]
			}
		}
	}
}

// analyze is the shared implementation. With reps == nil every router
// that injects terminals is a source, weighted by its terminal count;
// with orbits, the representatives stand in for their orbits.
func analyze(g *topo.Graph, reps []topo.RouterID, sizes []int) (Metrics, error) {
	r := g.NumRouters()
	if r == 0 || g.NumNodes == 0 {
		return Metrics{}, fmt.Errorf("analysis: empty graph %q", g.Label)
	}
	c := buildCSR(g)

	// Terminal weights per router: injTerms for sources, ejTerms for
	// destinations (they differ in unidirectional multistage networks).
	injTerms := make([]int64, r)
	ejTerms := make([]int64, r)
	for n := 0; n < g.NumNodes; n++ {
		injTerms[g.NodeRouter[n]]++
		ejTerms[g.EjRouter[n]]++
	}

	type source struct {
		router topo.RouterID
		weight int64 // terminal-pair weight multiplier: injTerms * orbit size
	}
	var sources []source
	if reps != nil {
		for i, rep := range reps {
			if injTerms[rep] == 0 {
				continue
			}
			sources = append(sources, source{rep, injTerms[rep] * int64(sizes[i])})
		}
		// Orbit weights must cover every injecting terminal exactly.
		var covered, all int64
		for _, s := range sources {
			covered += s.weight
		}
		for i := 0; i < r; i++ {
			all += injTerms[i]
		}
		if covered != all {
			return Metrics{}, fmt.Errorf("analysis: orbit reps cover %d terminal weights, want %d (non-uniform concentration?)", covered, all)
		}
	} else {
		for i := 0; i < r; i++ {
			if injTerms[i] > 0 {
				sources = append(sources, source{topo.RouterID(i), injTerms[i]})
			}
		}
	}

	type partial struct {
		hopSum  float64
		pathSum float64
		pairW   float64
		diam    int32
		err     error
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sources) {
		workers = len(sources)
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dist := make([]int32, r)
			paths := make([]float64, r)
			queue := make([]int32, 0, r)
			pt := &parts[w]
			for si := w; si < len(sources); si += workers {
				s := sources[si]
				bfsCounts(c, int(s.router), dist, paths, queue)
				for d := 0; d < r; d++ {
					if ejTerms[d] == 0 {
						continue
					}
					if dist[d] < 0 {
						pt.err = fmt.Errorf("analysis: router %d unreachable from router %d", d, s.router)
						return
					}
					wgt := float64(s.weight) * float64(ejTerms[d])
					pt.hopSum += wgt * float64(dist[d])
					pt.pathSum += wgt * paths[d]
					pt.pairW += wgt
					if dist[d] > pt.diam {
						pt.diam = dist[d]
					}
				}
			}
		}(w)
	}
	wg.Wait()

	m := Metrics{
		Nodes:    g.NumNodes,
		Routers:  r,
		Channels: len(c.nbr),
	}
	var hopSum, pathSum, pairW float64
	for _, pt := range parts {
		if pt.err != nil {
			return Metrics{}, pt.err
		}
		hopSum += pt.hopSum
		pathSum += pt.pathSum
		pairW += pt.pairW
		if int(pt.diam) > m.Diameter {
			m.Diameter = int(pt.diam)
		}
	}
	m.AvgHops = hopSum / pairW
	m.PathDiversity = pathSum / pairW

	m.BisectionLowerChannels = spectralBisectionLower(g, c, injTerms, ejTerms)
	m.BisectionUpperChannels = bestCandidateCut(g, c)
	return m, nil
}

// uniformConcentration reports whether every router hosts the same
// terminal count on both sides (so router-balanced cuts bisect
// terminals).
func uniformConcentration(r int, injTerms, ejTerms []int64) bool {
	for i := 1; i < r; i++ {
		if injTerms[i] != injTerms[0] || ejTerms[i] != ejTerms[0] {
			return false
		}
	}
	return true
}

// spectralBisectionLower estimates the minimum unidirectional channel
// count across a balanced router cut as lambda_2 * R / 4, where lambda_2
// is the algebraic connectivity of the symmetrized channel multigraph
// (each unidirectional channel contributing weight 1). Computed by power
// iteration on cI - L deflated against the constant vector. Returns 0
// for non-uniform concentration, where the bound does not speak to
// terminal bisection.
func spectralBisectionLower(g *topo.Graph, c csr, injTerms, ejTerms []int64) float64 {
	r := g.NumRouters()
	if r < 2 || !uniformConcentration(r, injTerms, ejTerms) {
		return 0
	}
	// Weighted degree = out-degree + in-degree over the symmetrized
	// multigraph; with every channel paired (bidirectional topologies)
	// this is 2x the out-degree.
	wdeg := make([]float64, r)
	for v := 0; v < r; v++ {
		wdeg[v] += float64(c.off[v+1] - c.off[v])
		for _, w := range c.nbr[c.off[v]:c.off[v+1]] {
			wdeg[w]++
		}
	}
	shift := 0.0
	for _, d := range wdeg {
		if 2*d > shift {
			shift = 2 * d
		}
	}
	// v_{t+1} = (shift*I - L) v_t, deflated and normalized; the dominant
	// deflated eigenvalue is shift - lambda_2.
	v := make([]float64, r)
	nv := make([]float64, r)
	for i := range v {
		// A fixed, non-constant start vector keeps the run deterministic.
		v[i] = math.Sin(float64(i + 1))
	}
	deflate(v)
	normalize(v)
	prev := 0.0
	for iter := 0; iter < 2000; iter++ {
		// nv = (shift - wdeg[v])*v + sum over symmetrized edges.
		for i := range nv {
			nv[i] = (shift - wdeg[i]) * v[i]
		}
		for u := 0; u < r; u++ {
			for _, w := range c.nbr[c.off[u]:c.off[u+1]] {
				nv[u] += v[w]
				nv[w] += v[u]
			}
		}
		deflate(nv)
		ray := dot(nv, v) // Rayleigh quotient of shift - L (v normalized)
		normalize(nv)
		v, nv = nv, v
		if iter > 16 && math.Abs(ray-prev) <= 1e-9*math.Abs(ray) {
			prev = ray
			break
		}
		prev = ray
	}
	lambda2 := shift - prev
	if lambda2 < 0 {
		lambda2 = 0
	}
	return lambda2 * float64(r) / 4
}

func deflate(v []float64) {
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for i := range v {
		v[i] -= mean
	}
}

func normalize(v []float64) {
	n := math.Sqrt(dot(v, v))
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// bestCandidateCut returns the fewest unidirectional channels crossing
// any of a set of candidate terminal-balanced cuts: contiguous
// router-index prefixes (the natural packaging order) and a Fiedler-
// style spectral ordering. Each candidate splits the routers at the
// point where half the terminals are on each side.
func bestCandidateCut(g *topo.Graph, c csr) float64 {
	r := g.NumRouters()
	if r < 2 {
		return 0
	}
	terms := make([]int64, r)
	var totalTerms int64
	for n := 0; n < g.NumNodes; n++ {
		terms[g.NodeRouter[n]]++
		totalTerms++
	}

	cutChannels := func(side []bool) float64 {
		cut := 0
		for v := 0; v < r; v++ {
			for _, w := range c.nbr[c.off[v]:c.off[v+1]] {
				if side[v] != side[w] {
					cut++
				}
			}
		}
		return float64(cut)
	}
	// Balanced split of an ordering at the half-terminal point.
	splitAt := func(order []int32) []bool {
		side := make([]bool, r)
		var acc int64
		for _, v := range order {
			if 2*acc < totalTerms {
				side[v] = true
			}
			acc += terms[v]
		}
		return side
	}

	order := make([]int32, r)
	for i := range order {
		order[i] = int32(i)
	}
	best := cutChannels(splitAt(order))

	// Spectral ordering: sort routers by the Fiedler-like vector of the
	// symmetrized graph (recomputed cheaply; exact eigenvector quality is
	// not required for a candidate cut).
	fied := fiedlerVector(c, r)
	sort.SliceStable(order, func(i, j int) bool { return fied[order[i]] < fied[order[j]] })
	if cut := cutChannels(splitAt(order)); cut < best {
		best = cut
	}
	return best
}

// fiedlerVector runs a short power iteration for the second Laplacian
// eigenvector of the symmetrized channel graph.
func fiedlerVector(c csr, r int) []float64 {
	wdeg := make([]float64, r)
	for v := 0; v < r; v++ {
		wdeg[v] += float64(c.off[v+1] - c.off[v])
		for _, w := range c.nbr[c.off[v]:c.off[v+1]] {
			wdeg[w]++
		}
	}
	shift := 0.0
	for _, d := range wdeg {
		if 2*d > shift {
			shift = 2 * d
		}
	}
	v := make([]float64, r)
	nv := make([]float64, r)
	for i := range v {
		v[i] = math.Sin(float64(2*i + 1))
	}
	deflate(v)
	normalize(v)
	for iter := 0; iter < 200; iter++ {
		for i := range nv {
			nv[i] = (shift - wdeg[i]) * v[i]
		}
		for u := 0; u < r; u++ {
			for _, w := range c.nbr[c.off[u]:c.off[u+1]] {
				nv[u] += v[w]
				nv[w] += v[u]
			}
		}
		deflate(nv)
		normalize(nv)
		v, nv = nv, v
	}
	return v
}
