// Package analysis provides closed-form channel-load models for the
// saturation throughput of the paper's topology/routing/traffic
// combinations. Each function derives the bottleneck channel load per
// unit of injected traffic; the reciprocal is the saturation throughput
// as a fraction of capacity. The simulator's measurements are validated
// against these bounds in the test suites — the reproduction's analogue
// of checking a cycle-accurate simulator against queueing theory.
//
// Capacity normalization follows the paper (§3.2 note 3): with bisection
// B = N/2 unit channels, capacity 2B/N is one flit per node per cycle.
package analysis

// FlatFlyWCMinimal returns the saturation throughput of minimal routing
// on a k-ary n-flat under the worst-case pattern: all k terminals of a
// router contend for the single channel to the next router, so throughput
// is 1/k (§3.2: "MIN is limited to 1/32 or approximately 3%").
func FlatFlyWCMinimal(k int) float64 {
	return 1.0 / float64(k)
}

// FlatFlyWCNonMinimal returns the saturation throughput of non-minimal
// (VAL/UGAL/CLOS AD) routing on a 1-D flattened butterfly under the
// worst-case pattern: k flits per router per cycle are spread over the
// k-1 inter-router channels, each traversing two hops on average, so the
// bottleneck load is 2k/(k-1) per unit injection: throughput (k-1)/2k —
// approaching 50% for large k.
func FlatFlyWCNonMinimal(k int) float64 {
	return float64(k-1) / float64(2*k)
}

// FlatFlyURCapacity returns the uniform-random capacity of a flattened
// butterfly with self-traffic included: exactly 1 (every dimension's
// channels carry precisely the injection rate).
func FlatFlyURCapacity() float64 { return 1.0 }

// ValiantURThroughput returns VAL's uniform-random saturation on a 1-D
// flattened butterfly: both phases load every channel at the injection
// rate, halving throughput (§3.2: "VAL achieves only half of network
// capacity regardless of the traffic pattern"). The (k-1)/2k form
// accounts for the 1/k chance a phase needs no hop.
func ValiantURThroughput(k int) float64 {
	// Each phase induces per-channel load of injection * k/(k-1) * (k-1)/k
	// = injection; two phases give 2x, but a random intermediate equals
	// the current or destination router with probability ~1/k each,
	// skipping a hop. Net: capacity/2 * (1 + O(1/k)) ~ 1/2.
	return 0.5
}

// FoldedClosURThroughput returns the uniform-random saturation of a
// folded Clos whose leaves have t terminals and u uplinks: remote traffic
// t*lambda*(1 - t/N) spreads over u uplinks, so saturation is
// u / (t * (1 - t/N)). With the §3.3 2:1 taper (u = t/2) and t << N this
// is ~0.5 — "the folded Clos uses 1/2 of the bandwidth for load-balancing
// to the middle stages, thus only achieves 50% throughput".
func FoldedClosURThroughput(t, u, n int) float64 {
	remote := 1 - float64(t)/float64(n)
	if remote <= 0 {
		return 1
	}
	v := float64(u) / (float64(t) * remote)
	if v > 1 {
		return 1
	}
	return v
}

// ButterflyWCThroughput returns the conventional butterfly's worst-case
// saturation: with no path diversity the k flows of a first-stage router
// share one channel, 1/k (Fig. 6(b): "an order of magnitude difference").
func ButterflyWCThroughput(k int) float64 {
	return 1.0 / float64(k)
}

// TorusTornadoThroughput returns minimal (DOR) routing's saturation on a
// k-node ring under tornado traffic: every node sends floor(k/2) hops in
// one direction, so each directed channel carries floor(k/2) flows:
// throughput 1/floor(k/2) — the classic result motivating non-minimal
// routing on tori (the paper's refs [27][28]).
func TorusTornadoThroughput(k int) float64 {
	return 1.0 / float64(k/2)
}

// ConcentratedHypercubeWCThroughput returns the worst-case saturation of
// a hypercube with c-way concentration (the paper's footnote 10): the c
// flows of a router share a single unit-width dimension channel, 1/c.
func ConcentratedHypercubeWCThroughput(c int) float64 {
	return 1.0 / float64(c)
}

// SlimFlyNeighborMinimal returns minimal routing's saturation on a Slim
// Fly with p terminals per router under the neighbor-adversarial
// pattern (every terminal of each router targets a terminal of the same
// fixed Cayley-generator neighbor): the p flows contend for the single
// direct channel — the diameter-2 graph has exactly one minimal path to
// an adjacent router — so throughput is 1/p.
func SlimFlyNeighborMinimal(p int) float64 {
	return 1.0 / float64(p)
}

// DragonflyWCMinimal returns minimal routing's saturation on a dragonfly
// with a routers per group and p terminals per router under the
// worst-case pattern (every terminal of group g targets group g+1): the
// canonical dragonfly has exactly one global channel between each
// ordered group pair, so the group's a*p flows share it — 1/(a*p), the
// adversarial pattern of the dragonfly paper (Kim et al., ISCA 2008).
func DragonflyWCMinimal(a, p int) float64 {
	return 1.0 / float64(a*p)
}

// DragonflyWCNonMinimal returns non-minimal (VAL/UGAL) routing's
// saturation on a dragonfly with h global channels per router and p
// terminals per router under the worst-case pattern: detouring through a
// random intermediate group costs ~2 global hops per packet, spread over
// the group's a*h global channels against a*p injected flits: h/(2p) —
// 1/2 for the balanced p = h configuration.
func DragonflyWCNonMinimal(h, p int) float64 {
	return float64(h) / float64(2*p)
}

// CreditLimitedChannelRate returns the maximum utilization a single
// virtual channel can sustain across a channel given its buffer depth
// and the credit round-trip time (forward latency + reverse credit
// latency + one processing cycle): min(1, depth/RTT) — the mechanism
// behind Fig. 12(b)'s throughput degradation when 64 flits per physical
// channel are split across many VCs.
func CreditLimitedChannelRate(depth, forwardLatency, creditLatency int) float64 {
	rtt := forwardLatency + creditLatency + 1
	if rtt <= 0 || depth >= rtt {
		return 1
	}
	return float64(depth) / float64(rtt)
}
