package snapshot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	uvals := []uint64{0, 1, 127, 128, 1<<32 - 1, math.MaxUint64}
	ivals := []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64}
	w.Section(7)
	for _, v := range uvals {
		w.Uvarint(v)
	}
	for _, v := range ivals {
		w.Varint(v)
	}
	w.U64(0xdeadbeefcafef00d)
	w.Bool(true)
	w.Bool(false)
	w.String("ugal-s")
	w.String("")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Section(7)
	for _, want := range uvals {
		if got := r.Uvarint(); got != want {
			t.Fatalf("uvarint: got %d, want %d", got, want)
		}
	}
	for _, want := range ivals {
		if got := r.Varint(); got != want {
			t.Fatalf("varint: got %d, want %d", got, want)
		}
	}
	if got := r.U64(); got != 0xdeadbeefcafef00d {
		t.Fatalf("u64: got %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool round-trip failed")
	}
	if got := r.String(); got != "ugal-s" {
		t.Fatalf("string: got %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty string: got %q", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicBytes(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Section(1)
		w.Varint(-42)
		w.U64(99)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(emit(), emit()) {
		t.Fatal("identical writes produced different bytes")
	}
}

func TestRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section(1)
	w.Uvarint(5)
	w.String("hello")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	readAll := func(b []byte) error {
		r, err := NewReader(bytes.NewReader(b))
		if err != nil {
			return err
		}
		r.Section(1)
		r.Uvarint()
		_ = r.String()
		return r.Finish()
	}
	if err := readAll(data); err != nil {
		t.Fatalf("pristine stream failed: %v", err)
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x80
		if readAll(mut) == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	for l := 0; l < len(data); l++ {
		if readAll(data[:l]) == nil {
			t.Fatalf("truncation to %d bytes went undetected", l)
		}
	}
}

func TestReaderGuards(t *testing.T) {
	// Bad magic.
	if _, err := NewReader(strings.NewReader("NOTASNAP\x01")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Wrong version.
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(Version + 1)
	if _, err := NewReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("future version accepted")
	}

	// Section mismatch.
	buf.Reset()
	w := NewWriter(&buf)
	w.Section(2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Section(3)
	if r.Err() == nil {
		t.Fatal("section mismatch accepted")
	}

	// Count cap.
	buf.Reset()
	w = NewWriter(&buf)
	w.Uvarint(1000)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err = NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Count(10, "widget"); got != 0 || r.Err() == nil {
		t.Fatalf("count over limit returned %d, err %v", got, r.Err())
	}

	// Hostile string length must not allocate.
	buf.Reset()
	w = NewWriter(&buf)
	w.Uvarint(1 << 40)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err = NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.String(); got != "" || r.Err() == nil {
		t.Fatalf("hostile string length returned %q, err %v", got, r.Err())
	}
}
